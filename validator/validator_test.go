package validator

import (
	"strings"
	"testing"
	"time"
)

func TestPublicScenarioEndToEnd(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	injection := &AlarmRateScale{OS: v.OS, Alarm: v.SafeSpeedAlarm, Scale: 8}
	if err := v.Injector.Window(2*Second, 3*Second, injection); err != nil {
		t.Fatalf("Window: %v", err)
	}
	if err := v.Run(4 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.Watchdog.Results().Aliveness == 0 {
		t.Fatal("no detections through the public API")
	}
	am := v.Recorder.Series("AM Result")
	if am == nil {
		t.Fatal("no AM Result series")
	}
	plot := Plot(am, 40, 6)
	if !strings.Contains(plot, "AM Result") {
		t.Fatalf("plot = %q", plot)
	}
	log := v.Injector.Log()
	if len(log) != 2 {
		t.Fatalf("injection log = %+v", log)
	}
}

func TestUnitConversions(t *testing.T) {
	if KphToMs(36) != 10 || MsToKph(10) != 36 {
		t.Fatal("conversions broken")
	}
	if Second != 1000*Millisecond {
		t.Fatal("time constants broken")
	}
}

func TestFlagFaultThroughFacade(t *testing.T) {
	v, err := NewFromOptions(Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	branch := &FlagFault{
		Label: "invalid-branch",
		Set:   func() { v.SafeSpeed.FaultBranch = 1 },
	}
	v.Injector.ApplyAt(1*Second, branch)
	if err := v.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.Watchdog.Results().ProgramFlow == 0 {
		t.Fatal("flow fault not detected through the facade")
	}
}
