package core

import (
	"testing"
	"unsafe"
)

// Compile-time layout assertions: the hot-path structs are sized to exact
// cache-line multiples so adjacent array elements never share a line
// (hotState spans two lines to also defeat adjacent-line prefetching;
// predReg and shardOut span one). A zero-length array with a negative
// length is a compile error, so each pair of declarations pins the size
// from both sides — growing or shrinking any struct breaks the build
// here, next to the explanation, instead of silently reintroducing false
// sharing.
var (
	_ [unsafe.Sizeof(hotState{}) - 2*cacheLineSize]byte
	_ [2*cacheLineSize - unsafe.Sizeof(hotState{})]byte

	_ [unsafe.Sizeof(predReg{}) - cacheLineSize]byte
	_ [cacheLineSize - unsafe.Sizeof(predReg{})]byte

	_ [unsafe.Sizeof(shardOut{}) - cacheLineSize]byte
	_ [cacheLineSize - unsafe.Sizeof(shardOut{})]byte
)

// TestHotLayout reports the sizes so a failing compile-time assertion is
// easy to diagnose with `go test -run TestHotLayout -v`.
func TestHotLayout(t *testing.T) {
	if got := unsafe.Sizeof(hotState{}); got != 2*cacheLineSize {
		t.Errorf("sizeof(hotState) = %d, want %d", got, 2*cacheLineSize)
	}
	if got := unsafe.Sizeof(predReg{}); got != cacheLineSize {
		t.Errorf("sizeof(predReg) = %d, want %d", got, cacheLineSize)
	}
	if got := unsafe.Sizeof(shardOut{}); got != cacheLineSize {
		t.Errorf("sizeof(shardOut) = %d, want %d", got, cacheLineSize)
	}
}
