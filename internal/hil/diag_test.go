package hil

import (
	"testing"
	"time"

	"swwd/internal/core"
	"swwd/internal/inject"
	"swwd/internal/sim"
)

func TestDiagnosticsHealthyNoInterference(t *testing.T) {
	v := newValidator(t, Options{WithDiagnostics: true})
	if err := v.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Nominal 200µs bus accesses every 100ms disturb nothing.
	if res := v.Watchdog.Results(); res != (core.Results{}) {
		t.Fatalf("diagnostics disturbed the healthy run: %+v", res)
	}
	if v.OS.ExecCount(v.DiagRunnable) == 0 {
		t.Fatal("diagnostic task never ran")
	}
	// No PCP configuration faults reported.
	if count := v.FMF.CountByKind(core.ProgramFlowError); count != 0 {
		t.Fatalf("flow errors: %d", count)
	}
}

func TestResourceBlockingCausesAliveness(t *testing.T) {
	// The category-1 fault: the diagnostic task's bus hold is stretched
	// to ~80ms of every 100ms. Under the priority-ceiling protocol the
	// held resource raises DiagTask to SafeSpeed's priority, so
	// GetSensorValue is blocked and SafeSpeed's heartbeats starve.
	v := newValidator(t, Options{WithDiagnostics: true})
	hold := &inject.ExecStretch{OS: v.OS, Runnable: v.DiagRunnable, Scale: 400}
	if err := v.Injector.Window(5*sim.Second, 10*sim.Second, hold); err != nil {
		t.Fatalf("Window: %v", err)
	}
	if err := v.Run(15 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	res := v.Watchdog.Results()
	if res.Aliveness == 0 {
		t.Fatalf("resource blocking produced no aliveness errors: %+v", res)
	}
	// The faults must be attributed to SafeSpeed's runnables (the blocked
	// object), with evidence in the fault log.
	sawSafeSpeed := false
	for _, f := range v.FMF.FaultLog() {
		if f.Kind == core.AlivenessError && f.Task == v.SafeSpeed.Task {
			sawSafeSpeed = true
			if f.Time < 5*sim.Second {
				t.Fatalf("detection before injection: %+v", f)
			}
		}
	}
	if !sawSafeSpeed {
		t.Fatal("no aliveness faults on the blocked SafeSpeed task")
	}
	// After the window the system runs clean again (counters were reset
	// on each error; no new errors in the last 4s).
	// Note: the task may have been marked faulty; without treatment that
	// state persists by design.
}

func TestDiagnosticsWithTreatmentRecovers(t *testing.T) {
	v := newValidator(t, Options{WithDiagnostics: true, EnableTreatment: true})
	hold := &inject.ExecStretch{OS: v.OS, Runnable: v.DiagRunnable, Scale: 400}
	if err := v.Injector.Window(5*sim.Second, 10*sim.Second, hold); err != nil {
		t.Fatalf("Window: %v", err)
	}
	if err := v.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(v.FMF.Treatments()) == 0 {
		t.Fatal("no treatments under persistent blocking")
	}
	if st, _ := v.Watchdog.TaskState(v.SafeSpeed.Task); st != core.StateOK {
		t.Fatalf("task state after recovery = %v", st)
	}
}
