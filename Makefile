GO ?= go

.PHONY: all build vet test test-short race bench bench-hotpath bench-json cover experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector run, including the Beat/Cycle/Activate stress tests.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Just the lock-free hot-path benchmarks (README §Performance).
bench-hotpath:
	$(GO) test -run xxx -bench 'Heartbeat|MonitorBeat|ConcurrentCycle|WatchdogCycle' -benchmem -count=3 .

# Cycle-sweep + hot-path benchmarks as machine-readable JSON
# (BENCH_cycle.json) plus the telemetry benchmarks (BENCH_stats.json),
# both uploaded as CI artifacts. Override BENCHTIME for a quick smoke
# run: make bench-json BENCHTIME=1x
BENCHTIME ?= 1s
bench-json:
	$(GO) test -run xxx -bench 'CycleSweep|Heartbeat|MonitorBeat|ConcurrentCycle|WatchdogCycle' \
		-benchmem -benchtime $(BENCHTIME) . | tee bench_output.txt
	$(GO) run ./cmd/benchjson -o BENCH_cycle.json bench_output.txt
	$(GO) test -run xxx -bench 'Snapshot|BeatWithStats|Journal' \
		-benchmem -benchtime $(BENCHTIME) . | tee bench_stats_output.txt
	$(GO) run ./cmd/benchjson -o BENCH_stats.json bench_stats_output.txt

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments

# Run all example programs (each terminates on its own).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/safespeed
	$(GO) run ./examples/safelane
	$(GO) run ./examples/gateway
	$(GO) run ./examples/specfile
	$(GO) run ./examples/calibrate

clean:
	rm -f cover.out test_output.txt bench_output.txt bench_stats_output.txt
