package experiments

import (
	"fmt"
	"time"

	"swwd/internal/deadline"
	"swwd/internal/hil"
	"swwd/internal/inject"
	"swwd/internal/sim"
)

// GranularityResult compares what each monitoring mechanism saw for the
// same runnable-level fault (E5): an invalid execution branch silently
// skips SAFE_CC_process. The task still completes — faster than before —
// so the task-granularity monitors of the related work ([8], [9]) stay
// silent while the Software Watchdog's runnable-granularity units detect
// the fault. This reproduces the paper's motivating claim: "the
// granularity of fault detection on the layer of tasks is not fine enough
// for runnables" (§2).
type GranularityResult struct {
	// Task-level baselines.
	DeadlineMisses uint64
	BudgetOverruns uint64
	// Runnable-level Software Watchdog units.
	AlivenessErrors   uint64
	ProgramFlowErrors uint64
	// Sanity: the control law really stopped executing while everything
	// kept "meeting its deadline".
	ControlStarved bool
}

// Granularity runs E5: a 10s scenario with the invalid-branch injection
// from 2s on, a deadline monitor configured with the task's healthy
// worst-case response time, and a budget monitor with its healthy
// worst-case execution time.
func Granularity() (*GranularityResult, error) {
	v, err := hil.New(hil.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: granularity: %w", err)
	}
	mon, err := deadline.New(v.Model, v.Kernel)
	if err != nil {
		return nil, fmt.Errorf("experiments: granularity: %w", err)
	}
	// Healthy SafeSpeed activation: 150µs + 400µs + 150µs = 700µs of
	// execution inside a 10ms period. Generous task-level bounds that a
	// healthy run never violates:
	if err := mon.SetDeadline(v.SafeSpeed.Task, 5*time.Millisecond); err != nil {
		return nil, fmt.Errorf("experiments: granularity: %w", err)
	}
	if err := mon.SetBudget(v.SafeSpeed.Task, 2*time.Millisecond); err != nil {
		return nil, fmt.Errorf("experiments: granularity: %w", err)
	}
	v.OS.AddObserver(mon)

	branch := &inject.FlagFault{
		Label: "invalid-branch",
		Set:   func() { v.SafeSpeed.FaultBranch = 1 },
	}
	v.Injector.ApplyAt(2*sim.Second, branch)

	execBefore := uint64(0)
	v.Kernel.At(2*sim.Second, func() { execBefore = v.SafeSpeed.ControlExecutions() })
	if err := v.Run(10 * time.Second); err != nil {
		return nil, fmt.Errorf("experiments: granularity: %w", err)
	}

	viol, err := mon.Violations(v.SafeSpeed.Task)
	if err != nil {
		return nil, fmt.Errorf("experiments: granularity: %w", err)
	}
	res := v.Watchdog.Results()
	return &GranularityResult{
		DeadlineMisses:    viol.DeadlineMisses,
		BudgetOverruns:    viol.BudgetOverruns,
		AlivenessErrors:   res.Aliveness,
		ProgramFlowErrors: res.ProgramFlow,
		ControlStarved:    v.SafeSpeed.ControlExecutions() == execBefore,
	}, nil
}
