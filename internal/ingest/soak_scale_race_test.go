//go:build race

package ingest_test

import "time"

// Race-detector soak parameters: the race runtime multiplies every
// atomic and channel operation, so the soak shrinks to a scale that
// still exercises every concurrent path (reader, shard workers, client
// flushers, watchdog sweeps) without timing out a CI worker.
const (
	soakNodes     = 100
	soakRunnables = 10
	soakDuration  = 5 * time.Second
)
