// Package wire defines the binary wire protocol of the networked
// Software Watchdog: the batched heartbeat frames a remote node flushes
// to the ingestion server (internal/ingest) every client tick, and —
// since version 3 — the command frames the server sends back on the
// same UDP flow to treat faults (internal/treat): quarantine, resume,
// restart-runnable and set-hypothesis.
//
// A heartbeat frame coalesces everything a node observed since its
// previous flush:
//
//   - per-runnable heartbeat *counts* (not individual beats — a runnable
//     that beat 47 times since the last frame travels as one varint pair),
//     replayed on the server through Monitor.BeatN;
//   - the ordered list of executed flow-monitored runnables ("successor
//     IDs"), replayed through Watchdog.FlowEvent so the server-side PFC
//     look-up-table check sees the same predecessor/successor pairs it
//     would have seen locally;
//   - a session epoch, chosen once per reporter process (swwdclient uses
//     its start time in nanoseconds), so the server can tell a restarted
//     reporter — whose sequence numbers begin again at 1 — from a
//     duplicated or re-ordered datagram and reset its sequence tracking
//     instead of discarding the new session's frames;
//   - a monotonic per-session sequence number, so the server can detect
//     lost, duplicated and re-ordered datagrams;
//   - the command acknowledgement pair (CmdAckEpoch, CmdAckSeq): the
//     highest command the reporter has applied, in the server's command
//     epoch. Zeros mean "no command applied yet". Acks piggyback on the
//     heartbeat cadence — the command channel needs no extra datagrams
//     in the steady state;
//   - the node's declared flush interval. The *registration-time*
//     interval is authoritative for the link-runnable aliveness
//     hypothesis (internal/ingest derives it when the node is
//     registered); the declared field is cross-checked against it on
//     every frame and mismatches are counted as a diagnostic
//     (Stats.IntervalMismatch), never silently ignored.
//
// One UDP datagram carries exactly one frame. Byte 3 of every frame is
// the frame kind: KindHeartbeat (reporter → server) or KindCommand
// (server → reporter). The layout is fixed-header + varint payload, all
// multi-byte header fields little-endian.
//
// Heartbeat frame (KindHeartbeat):
//
//	offset size field
//	0      2    magic 0x5357 ("SW")
//	2      1    version (currently 3)
//	3      1    kind (0 = heartbeat)
//	4      4    node ID
//	8      8    session epoch (> 0; larger epoch = newer session)
//	16     8    sequence number (first frame of a session is 1)
//	24     8    command-ack epoch (0 = no command applied yet)
//	32     8    command-ack sequence number
//	40     4    declared flush interval in milliseconds (> 0)
//	44     2    beat record count
//	46     2    flow record count
//	48     ...  beat records: { runnable uvarint, beats uvarint } ...
//	     	...  flow records: { runnable uvarint } ...
//
// The command frame layout lives in command.go. Version 3 added the
// frame kind, the command channel and the heartbeat ack pair; version-2
// frames (32-byte header, no kind or acks) and version-1 frames are
// rejected with ErrVersion.
//
// Decoding is strict (unknown magic/version/kind, truncated payloads,
// out-of-range values and trailing bytes are all errors) and allocation
// free in the steady state: DecodeFrame and DecodeCommand reuse the
// destination's slices, so a per-source decode loop settles into zero
// allocations per frame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol constants.
const (
	// Magic identifies a Software Watchdog wire frame ("SW").
	Magic uint16 = 0x5357
	// Version is the wire version this package encodes and decodes.
	// Version 3 added the frame kind, the server→reporter command
	// channel and the heartbeat command-ack pair.
	Version uint8 = 3
	// KindHeartbeat marks a reporter→server batched heartbeat frame.
	KindHeartbeat uint8 = 0
	// KindCommand marks a server→reporter treatment command frame.
	KindCommand uint8 = 1
	// HeaderSize is the fixed heartbeat frame header length in bytes.
	HeaderSize = 48
	// MaxFrameSize is the largest encoded frame this package produces or
	// accepts — comfortably under the 65507-byte UDP payload ceiling.
	MaxFrameSize = 60000
	// MaxRunnableIndex bounds the per-node runnable index of beat, flow
	// and command records.
	MaxRunnableIndex = 1 << 20
	// MaxBeatsPerRecord bounds the coalesced beat count of one record,
	// mirroring core.MaxBatchBeats so a decoded record always replays in
	// a single Monitor.BeatN call.
	MaxBeatsPerRecord = 1 << 24
)

// Decode/encode errors. Match with errors.Is; returned errors may wrap
// these with offset context.
var (
	// ErrMagic marks a datagram that is not a Software Watchdog frame.
	ErrMagic = errors.New("wire: bad magic")
	// ErrVersion marks an unsupported wire version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrKind marks a frame kind the decoder was not asked to accept:
	// an unknown kind byte, a command frame handed to DecodeFrame or a
	// heartbeat frame handed to DecodeCommand.
	ErrKind = errors.New("wire: unexpected frame kind")
	// ErrTruncated marks a frame shorter than its header and counts
	// promise.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrRange marks a header or payload value outside protocol limits.
	ErrRange = errors.New("wire: value out of range")
	// ErrTrailing marks bytes after the last declared record — one
	// datagram carries exactly one frame.
	ErrTrailing = errors.New("wire: trailing bytes after frame")
	// ErrTooLarge marks an encode whose result would exceed MaxFrameSize.
	ErrTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
)

// BeatRec is one coalesced heartbeat record: the node-local runnable
// index and how many times it beat since the previous frame.
type BeatRec struct {
	Runnable uint32
	Beats    uint32
}

// Frame is the decoded form of one heartbeat frame. Beats and Flow are
// reused across DecodeFrame calls on the same Frame value.
type Frame struct {
	// Node is the reporting node's ID, assigned at registration.
	Node uint32
	// Epoch identifies the reporter session (process lifetime) the frame
	// belongs to. It is chosen once at client start, must be non-zero,
	// and a larger epoch marks a newer session: the server resets its
	// per-node sequence tracking when the epoch advances, so a restarted
	// reporter (whose Seq begins again at 1) is never mistaken for a
	// storm of duplicates.
	Epoch uint64
	// Seq is the session's monotonic frame sequence number, starting
	// at 1.
	Seq uint64
	// CmdAckEpoch and CmdAckSeq acknowledge the highest command the
	// reporter has applied: the server's command epoch and the per-node
	// command sequence number within it. Both zero means no command has
	// been applied yet; CmdAckSeq must be zero when CmdAckEpoch is zero.
	// The server ignores acks whose epoch is not its current command
	// epoch, so a reporter acking a superseded server incarnation can
	// never confirm commands it did not receive.
	CmdAckEpoch uint64
	CmdAckSeq   uint64
	// IntervalMs is the node's declared flush cadence in milliseconds.
	IntervalMs uint32
	// Beats are the coalesced per-runnable heartbeat counts.
	Beats []BeatRec
	// Flow is the ordered list of executed flow-monitored runnable
	// indices since the previous frame.
	Flow []uint32
}

// AppendFrame appends the encoded form of f to dst and returns the
// extended slice. It validates f against the protocol limits and returns
// dst unmodified on error.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if f.Epoch == 0 {
		return dst, fmt.Errorf("%w: epoch must be positive", ErrRange)
	}
	if f.IntervalMs == 0 {
		return dst, fmt.Errorf("%w: interval must be positive", ErrRange)
	}
	if f.CmdAckEpoch == 0 && f.CmdAckSeq != 0 {
		return dst, fmt.Errorf("%w: command ack seq without epoch", ErrRange)
	}
	if len(f.Beats) > 0xFFFF || len(f.Flow) > 0xFFFF {
		return dst, fmt.Errorf("%w: %d beat / %d flow records", ErrRange, len(f.Beats), len(f.Flow))
	}
	start := len(dst)
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = KindHeartbeat
	binary.LittleEndian.PutUint32(hdr[4:8], f.Node)
	binary.LittleEndian.PutUint64(hdr[8:16], f.Epoch)
	binary.LittleEndian.PutUint64(hdr[16:24], f.Seq)
	binary.LittleEndian.PutUint64(hdr[24:32], f.CmdAckEpoch)
	binary.LittleEndian.PutUint64(hdr[32:40], f.CmdAckSeq)
	binary.LittleEndian.PutUint32(hdr[40:44], f.IntervalMs)
	binary.LittleEndian.PutUint16(hdr[44:46], uint16(len(f.Beats)))
	binary.LittleEndian.PutUint16(hdr[46:48], uint16(len(f.Flow)))
	dst = append(dst, hdr[:]...)
	for i := range f.Beats {
		r := &f.Beats[i]
		if r.Runnable > MaxRunnableIndex {
			return dst[:start], fmt.Errorf("%w: beat record %d runnable %d", ErrRange, i, r.Runnable)
		}
		if r.Beats == 0 || r.Beats > MaxBeatsPerRecord {
			return dst[:start], fmt.Errorf("%w: beat record %d count %d", ErrRange, i, r.Beats)
		}
		dst = binary.AppendUvarint(dst, uint64(r.Runnable))
		dst = binary.AppendUvarint(dst, uint64(r.Beats))
	}
	for i, rid := range f.Flow {
		if rid > MaxRunnableIndex {
			return dst[:start], fmt.Errorf("%w: flow record %d runnable %d", ErrRange, i, rid)
		}
		dst = binary.AppendUvarint(dst, uint64(rid))
	}
	if len(dst)-start > MaxFrameSize {
		return dst[:start], fmt.Errorf("%w: %d bytes", ErrTooLarge, len(dst)-start)
	}
	return dst, nil
}

// PeekNode extracts the node ID from an encoded frame after validating
// only the fixed header prefix — the cheap dispatch step the ingestion
// reader uses to route a datagram to its per-source shard worker before
// the worker runs the full decode. It accepts both frame kinds; the
// full decoders enforce the kind.
func PeekNode(buf []byte) (uint32, error) {
	if len(buf) < CommandHeaderSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(buf))
	}
	if binary.LittleEndian.Uint16(buf[0:2]) != Magic {
		return 0, ErrMagic
	}
	if buf[2] != Version {
		return 0, fmt.Errorf("%w: %d", ErrVersion, buf[2])
	}
	return binary.LittleEndian.Uint32(buf[4:8]), nil
}

// DecodeFrame decodes one heartbeat frame from buf into f, reusing f's
// Beats and Flow slices. On error f's contents are unspecified but the
// call never panics, whatever buf holds; a per-source decode loop with a
// retained Frame performs zero allocations per frame in the steady
// state. A command frame is rejected with ErrKind — the ingestion
// server never accepts its own downstream frame kind.
func DecodeFrame(buf []byte, f *Frame) error {
	if len(buf) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(buf))
	}
	if len(buf) < HeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(buf))
	}
	if binary.LittleEndian.Uint16(buf[0:2]) != Magic {
		return ErrMagic
	}
	if buf[2] != Version {
		return fmt.Errorf("%w: %d", ErrVersion, buf[2])
	}
	if buf[3] != KindHeartbeat {
		return fmt.Errorf("%w: 0x%02x", ErrKind, buf[3])
	}
	f.Node = binary.LittleEndian.Uint32(buf[4:8])
	f.Epoch = binary.LittleEndian.Uint64(buf[8:16])
	f.Seq = binary.LittleEndian.Uint64(buf[16:24])
	f.CmdAckEpoch = binary.LittleEndian.Uint64(buf[24:32])
	f.CmdAckSeq = binary.LittleEndian.Uint64(buf[32:40])
	f.IntervalMs = binary.LittleEndian.Uint32(buf[40:44])
	if f.Epoch == 0 {
		return fmt.Errorf("%w: zero session epoch", ErrRange)
	}
	if f.Seq == 0 {
		return fmt.Errorf("%w: zero sequence number", ErrRange)
	}
	if f.CmdAckEpoch == 0 && f.CmdAckSeq != 0 {
		return fmt.Errorf("%w: command ack seq without epoch", ErrRange)
	}
	if f.IntervalMs == 0 {
		return fmt.Errorf("%w: zero interval", ErrRange)
	}
	nBeats := int(binary.LittleEndian.Uint16(buf[44:46]))
	nFlow := int(binary.LittleEndian.Uint16(buf[46:48]))
	f.Beats = f.Beats[:0]
	f.Flow = f.Flow[:0]
	p := buf[HeaderSize:]
	for i := 0; i < nBeats; i++ {
		rid, n, err := uvarint(p, "beat runnable")
		if err != nil {
			return err
		}
		p = p[n:]
		beats, n, err := uvarint(p, "beat count")
		if err != nil {
			return err
		}
		p = p[n:]
		if rid > MaxRunnableIndex {
			return fmt.Errorf("%w: beat record %d runnable %d", ErrRange, i, rid)
		}
		if beats == 0 || beats > MaxBeatsPerRecord {
			return fmt.Errorf("%w: beat record %d count %d", ErrRange, i, beats)
		}
		f.Beats = append(f.Beats, BeatRec{Runnable: uint32(rid), Beats: uint32(beats)})
	}
	for i := 0; i < nFlow; i++ {
		rid, n, err := uvarint(p, "flow runnable")
		if err != nil {
			return err
		}
		p = p[n:]
		if rid > MaxRunnableIndex {
			return fmt.Errorf("%w: flow record %d runnable %d", ErrRange, i, rid)
		}
		f.Flow = append(f.Flow, uint32(rid))
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(p))
	}
	return nil
}

// uvarint decodes one varint from p, classifying both failure modes
// (empty/short buffer and >64-bit overlong encodings) as protocol errors.
func uvarint(p []byte, what string) (uint64, int, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		if n == 0 {
			return 0, 0, fmt.Errorf("%w: %s", ErrTruncated, what)
		}
		return 0, 0, fmt.Errorf("%w: %s varint overflow", ErrRange, what)
	}
	return v, n, nil
}
