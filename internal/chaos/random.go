package chaos

// The randomized campaign generator behind the nightly chaos gate.
// RandomScenario draws a template and its parameters from the seed —
// and nothing else — so a failing nightly run reproduces from the one
// printed seed. Templates randomize within *sound envelopes* only:
// loss stays burst-capped under the grace window, reorder windows stay
// well inside the grace window, and oracles that depend on a
// probabilistic injection actually firing are conditional on the
// chaos layer's own counters (if nothing was injected, nothing is
// asserted) — a randomized run must never be able to fail by
// drawing an unlucky-but-legal parameter set.

import (
	"fmt"
	"time"
)

// genSalt separates the generator's RNG stream from the per-node link
// streams and the command-epoch derivation.
const genSalt = 0x9999

// RandomScenario generates one campaign as a pure function of seed.
func RandomScenario(seed uint64) *Scenario {
	rng := NewRNG(Derive(seed, genSalt))
	templates := []func(*RNG, uint64) *Scenario{
		randUniformLoss,
		randDupReplay,
		randReorder,
		randBlipPartition,
		randBurstPartition,
		randClockSkew,
		randByzantine,
		randHerd,
		randEpochLie,
	}
	sc := templates[rng.Intn(len(templates))](rng, seed)
	sc.Seed = seed
	sc.Name = fmt.Sprintf("rand/%s#%x", sc.Name, seed)
	sc.Warmup = stdWarmup
	return sc
}

// victimSubset draws a non-empty victim set from a 4-node fleet.
func victimSubset(rng *RNG) []uint32 {
	var v []uint32
	for n := uint32(0); n < 4; n++ {
		if rng.Chance(0.5) {
			v = append(v, n)
		}
	}
	if len(v) == 0 {
		v = []uint32{uint32(rng.Intn(4))}
	}
	return v
}

// others returns the 4-node complement of the victim set.
func others(victims []uint32) []uint32 {
	in := make(map[uint32]bool, len(victims))
	for _, n := range victims {
		in[n] = true
	}
	var out []uint32
	for n := uint32(0); n < 4; n++ {
		if !in[n] {
			out = append(out, n)
		}
	}
	return out
}

// ms draws a duration uniformly from [lo, hi] milliseconds.
func ms(rng *RNG, lo, hi int) time.Duration {
	return time.Duration(lo+rng.Intn(hi-lo+1)) * time.Millisecond
}

func randUniformLoss(rng *RNG, seed uint64) *Scenario {
	victims := victimSubset(rng)
	drop := 0.25 + 0.2*rng.Float64()
	dur := ms(rng, 1400, 1900)
	return &Scenario{
		Name:     "uniform-loss",
		Topology: Topology{GraceFrames: 5 + rng.Intn(2)},
		Duration: dur + 300*time.Millisecond,
		Steps: []Step{{At: 0, For: dur, Fault: &LinkFault{
			Nodes: victims,
			Rules: Rules{UpDrop: drop, LossBurstCap: 2},
		}}},
		Oracle: Oracle{
			Zero: cleanWire("seq_gaps", "seq_gap_events"),
			Extra: func(res *Result) []string {
				v := linkDropped(nil, others(victims))(res)
				var injected uint64
				for _, n := range victims {
					injected += res.Links[n].UpDropped
				}
				if injected > 0 && res.Delta.SeqGaps == 0 {
					v = append(v, fmt.Sprintf("chaos dropped %d frames but seq_gaps stayed 0", injected))
				}
				return v
			},
		},
	}
}

func randDupReplay(rng *RNG, seed uint64) *Scenario {
	victims := victimSubset(rng)
	dur := ms(rng, 1400, 1900)
	return &Scenario{
		Name:     "dup-replay",
		Duration: dur + 300*time.Millisecond,
		Steps: []Step{{At: 0, For: dur, Fault: &LinkFault{
			Nodes: victims,
			Rules: Rules{DupProb: 0.3 + 0.3*rng.Float64(), ReplayProb: 0.4 * rng.Float64()},
		}}},
		Oracle: Oracle{
			Zero: cleanWire("duplicate_drops"),
			Extra: func(res *Result) []string {
				var injected uint64
				for _, n := range victims {
					injected += res.Links[n].Duplicated + res.Links[n].Replayed
				}
				if injected > 0 && res.Delta.DuplicateDrops == 0 {
					return []string{fmt.Sprintf("chaos injected %d duplicate/replay frames but duplicate_drops stayed 0", injected)}
				}
				return nil
			},
		},
	}
}

func randReorder(rng *RNG, seed uint64) *Scenario {
	victims := victimSubset(rng)
	window := 3 + rng.Intn(3) // 3..5 frames, well inside the grace window
	dur := ms(rng, 1500, 2000)
	return &Scenario{
		Name:     "reorder",
		Topology: Topology{GraceFrames: 12},
		Duration: dur + 400*time.Millisecond,
		Steps: []Step{{At: 0, For: dur, Fault: &LinkFault{
			Nodes: victims,
			Rules: Rules{ReorderWindow: window},
		}}},
		Oracle: Oracle{
			Zero: cleanWire("duplicate_drops", "seq_gaps", "seq_gap_events"),
			Extra: func(res *Result) []string {
				var shuffled uint64
				for _, n := range victims {
					shuffled += res.Links[n].Reordered
				}
				// Enough shuffled batches make at least one inversion a
				// statistical certainty (p(all-identity) < (1/w!)^batches).
				if shuffled >= uint64(4*window) && res.Delta.DuplicateDrops == 0 && res.Delta.SeqGapEvents == 0 {
					return []string{fmt.Sprintf("chaos shuffled %d frames but the server saw perfect order", shuffled)}
				}
				return nil
			},
		},
	}
}

func randBlipPartition(rng *RNG, seed uint64) *Scenario {
	grace := 6
	window := time.Duration(grace) * 50 * time.Millisecond
	blip := time.Duration(float64(window) * (0.3 + 0.3*rng.Float64()))
	return &Scenario{
		Name:     "blip-partition",
		Topology: Topology{GraceFrames: grace},
		Duration: blip + 700*time.Millisecond,
		Steps: []Step{{At: 0, For: blip, Fault: &LinkFault{
			Nodes: []uint32{0, 1, 2, 3},
			Rules: Rules{Partition: true},
		}}},
		Oracle: Oracle{
			NonZero: []string{"seq_gaps", "seq_gap_events"},
			Zero:    cleanWire("seq_gaps", "seq_gap_events"),
		},
	}
}

func randBurstPartition(rng *RNG, seed uint64) *Scenario {
	victim := uint32(rng.Intn(4))
	grace := 4
	window := time.Duration(grace) * 50 * time.Millisecond
	hold := time.Duration(float64(window) * (2 + rng.Float64()))
	return &Scenario{
		Name:     "burst-partition",
		Duration: hold + 600*time.Millisecond,
		Steps: []Step{{At: 0, For: hold, Fault: &LinkFault{
			Nodes: []uint32{victim},
			Rules: Rules{Partition: true},
		}}},
		Oracle: Oracle{
			Victims:       []uint32{victim},
			MustFaultLink: []uint32{victim},
			NonZero:       []string{"seq_gaps", "seq_gap_events"},
			Zero:          cleanWire("seq_gaps", "seq_gap_events"),
		},
	}
}

func randClockSkew(rng *RNG, seed uint64) *Scenario {
	victims := victimSubset(rng)
	skew := uint32(75 + rng.Intn(150)) // never the true 50ms
	dur := ms(rng, 1200, 1700)
	return &Scenario{
		Name:     "clock-skew",
		Duration: dur + 300*time.Millisecond,
		Steps: []Step{{At: 0, For: dur, Fault: &LinkFault{
			Nodes: victims,
			Rules: Rules{SkewIntervalMs: skew},
		}}},
		Oracle: Oracle{
			NonZero: []string{"interval_mismatch"},
			Zero:    cleanWire("interval_mismatch"),
		},
	}
}

func randByzantine(rng *RNG, seed uint64) *Scenario {
	victim := uint32(rng.Intn(4))
	dur := ms(rng, 1400, 1900)
	return &Scenario{
		Name:     "byzantine",
		Topology: Topology{GraceFrames: 5},
		Duration: dur + 300*time.Millisecond,
		Steps: []Step{{At: 0, For: dur, Fault: &LinkFault{
			Nodes: []uint32{victim},
			Rules: Rules{
				CorruptProb: 0.2 + 0.15*rng.Float64(), LossBurstCap: 2,
				ReplayProb: 0.2 + 0.3*rng.Float64(),
				StaleProb:  0.2 + 0.2*rng.Float64(),
			},
		}}},
		Oracle: Oracle{
			// Corruption is also loss from the sequence discipline's view.
			Zero: cleanWire("decode_errors", "duplicate_drops", "stale_epoch_drops", "seq_gaps", "seq_gap_events"),
			Extra: func(res *Result) []string {
				var v []string
				l := res.Links[victim]
				if l.Corrupted > 0 && res.Delta.DecodeErrors == 0 {
					v = append(v, fmt.Sprintf("chaos corrupted %d frames but decode_errors stayed 0", l.Corrupted))
				}
				if l.Replayed > 0 && res.Delta.DuplicateDrops == 0 {
					v = append(v, fmt.Sprintf("chaos replayed %d frames but duplicate_drops stayed 0", l.Replayed))
				}
				if l.Stale > 0 && res.Delta.StaleEpochDrops == 0 {
					v = append(v, fmt.Sprintf("chaos sent %d stale stragglers but stale_epoch_drops stayed 0", l.Stale))
				}
				return v
			},
		},
	}
}

func randHerd(rng *RNG, seed uint64) *Scenario {
	waves := 1 + rng.Intn(3)
	var steps []Step
	for w := 0; w < waves; w++ {
		steps = append(steps, Step{
			At:    time.Duration(300+400*w) * time.Millisecond,
			Fault: &RestartWave{Nodes: []uint32{0, 1, 2, 3}},
		})
	}
	return &Scenario{
		Name:     "herd",
		Duration: time.Duration(300+400*waves) * time.Millisecond,
		Steps:    steps,
		Oracle: Oracle{
			Min:  map[string]uint64{"node_restarts": uint64(4 * waves)},
			Max:  map[string]uint64{"node_restarts": uint64(4 * waves)},
			Zero: cleanWire("node_restarts"),
		},
	}
}

func randEpochLie(rng *RNG, seed uint64) *Scenario {
	victim := uint32(rng.Intn(4))
	lie := ms(rng, 400, 800)
	return &Scenario{
		Name:     "epoch-lie",
		Duration: lie + 800*time.Millisecond,
		Steps: []Step{{At: 0, For: lie, Fault: &LinkFault{
			Nodes: []uint32{victim},
			Rules: Rules{EpochLie: uint64(1 + rng.Intn(1_000_000))},
		}}},
		Oracle: Oracle{
			Victims:       []uint32{victim},
			MustFaultLink: []uint32{victim},
			Min:           map[string]uint64{"node_restarts": 1},
			Max:           map[string]uint64{"node_restarts": 1},
			NonZero:       []string{"stale_epoch_drops", "seq_gaps"},
			Zero:          cleanWire("node_restarts", "stale_epoch_drops", "seq_gaps", "seq_gap_events"),
		},
	}
}
