package osek

import "errors"

// OSEK/VDX StatusType values, surfaced as Go sentinel errors. E_OK maps to
// a nil error.
var (
	// ErrAccess corresponds to E_OS_ACCESS: object access without rights.
	ErrAccess = errors.New("osek: E_OS_ACCESS")
	// ErrCallLevel corresponds to E_OS_CALLEVEL: service called from a
	// forbidden context.
	ErrCallLevel = errors.New("osek: E_OS_CALLEVEL")
	// ErrID corresponds to E_OS_ID: invalid object identifier.
	ErrID = errors.New("osek: E_OS_ID")
	// ErrLimit corresponds to E_OS_LIMIT: too many task activations.
	ErrLimit = errors.New("osek: E_OS_LIMIT")
	// ErrNoFunc corresponds to E_OS_NOFUNC: object in wrong mode for the
	// requested service (e.g. cancelling an unarmed alarm).
	ErrNoFunc = errors.New("osek: E_OS_NOFUNC")
	// ErrResource corresponds to E_OS_RESOURCE: illegal resource usage,
	// e.g. waiting for an event while holding a resource or non-LIFO
	// release.
	ErrResource = errors.New("osek: E_OS_RESOURCE")
	// ErrState corresponds to E_OS_STATE: object in an incompatible state,
	// e.g. setting an event for a suspended task.
	ErrState = errors.New("osek: E_OS_STATE")
	// ErrValue corresponds to E_OS_VALUE: parameter outside the admissible
	// range.
	ErrValue = errors.New("osek: E_OS_VALUE")
	// ErrRunaway is an implementation-defined status reported when a task
	// executes an implausible number of instantaneous steps without
	// consuming time — the software analogue of a stuck loop. The task is
	// forcibly terminated.
	ErrRunaway = errors.New("osek: runaway task (instantaneous step limit exceeded)")
)
