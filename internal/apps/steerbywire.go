package apps

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"swwd/internal/core"
	"swwd/internal/osek"
	"swwd/internal/runnable"
	"swwd/internal/vehicle"
)

// SteerByWireConfig parametrises the steer-by-wire application.
type SteerByWireConfig struct {
	// Driver supplies the steering demand.
	Driver *vehicle.Driver
	// Now reports scenario time for the driver profiles.
	Now func() time.Duration
	// Period is the task dispatch period; zero means 5ms (fast loop).
	Period time.Duration
	// Priority is the OSEK task priority; zero means 12 (highest).
	Priority int
}

// SteerByWire models the fault-tolerant steer-by-wire pipeline of the
// validator's actuator/sensor nodes: three redundant hand-wheel sensors, a
// two-out-of-three vote, and the steering actuator.
type SteerByWire struct {
	cfg SteerByWireConfig

	App         runnable.AppID
	Task        runnable.TaskID
	ReadSensors runnable.ID
	Vote        runnable.ID
	ActuateSbW  runnable.ID

	// FaultBranch is the injection seam (Branch* constants, applied to
	// the Vote runnable).
	FaultBranch int
	// SensorFault corrupts one redundant channel (index 0..2) by the
	// given offset; nil means all healthy.
	SensorFault *SensorFault

	readings   [3]float64
	voted      float64
	actuated   float64
	mismatches uint64
}

// SensorFault describes a corrupted redundant channel.
type SensorFault struct {
	Channel int
	Offset  float64
}

// NewSteerByWire validates the configuration and registers the
// application.
func NewSteerByWire(m *runnable.Model, cfg SteerByWireConfig) (*SteerByWire, error) {
	if m == nil {
		return nil, errors.New("apps: model is required")
	}
	if cfg.Driver == nil || cfg.Now == nil {
		return nil, errors.New("apps: SteerByWire requires Driver and Now")
	}
	if cfg.Period <= 0 {
		cfg.Period = 5 * time.Millisecond
	}
	if cfg.Priority == 0 {
		cfg.Priority = 12
	}
	s := &SteerByWire{cfg: cfg}
	var err error
	if s.App, err = m.AddApp("SteerByWire", runnable.SafetyCritical); err != nil {
		return nil, fmt.Errorf("apps: SteerByWire: %w", err)
	}
	if s.Task, err = m.AddTask(s.App, "SteerByWireTask", cfg.Priority); err != nil {
		return nil, fmt.Errorf("apps: SteerByWire: %w", err)
	}
	type reg struct {
		name string
		exec time.Duration
		dst  *runnable.ID
	}
	for _, r := range []reg{
		{"ReadSteerSensors", 100 * time.Microsecond, &s.ReadSensors},
		{"VoteSteer", 200 * time.Microsecond, &s.Vote},
		{"ActuateSteer", 100 * time.Microsecond, &s.ActuateSbW},
	} {
		if *r.dst, err = m.AddRunnable(s.Task, r.name, r.exec, runnable.SafetyCritical); err != nil {
			return nil, fmt.Errorf("apps: SteerByWire: %w", err)
		}
	}
	return s, nil
}

// Period reports the task dispatch period.
func (s *SteerByWire) Period() time.Duration { return s.cfg.Period }

// FlowSequence reports the legal runnable order.
func (s *SteerByWire) FlowSequence() []runnable.ID {
	return []runnable.ID{s.ReadSensors, s.Vote, s.ActuateSbW}
}

// Hypothesis mirrors the other applications' construction.
func (s *SteerByWire) Hypothesis(cyclePeriod time.Duration) map[runnable.ID]core.Hypothesis {
	cyclesPerTask := int(s.cfg.Period / cyclePeriod)
	if cyclesPerTask < 1 {
		cyclesPerTask = 1
	}
	window := 5 * cyclesPerTask
	h := core.Hypothesis{
		AlivenessCycles: window,
		MinHeartbeats:   3,
		ArrivalCycles:   window,
		MaxArrivals:     2*5 + 2,
	}
	out := make(map[runnable.ID]core.Hypothesis, 3)
	for _, rid := range s.FlowSequence() {
		out[rid] = h
	}
	return out
}

// Program builds the OSEK task body.
func (s *SteerByWire) Program() osek.Program {
	vote := osek.Exec{Runnable: s.Vote, OnDone: s.vote}
	return osek.Program{
		osek.Exec{Runnable: s.ReadSensors, OnDone: s.read},
		osek.Select{
			Choose: func() int { return s.FaultBranch },
			Arms: []osek.Program{
				{vote},
				{},
				{vote, vote},
			},
		},
		osek.Exec{Runnable: s.ActuateSbW, OnDone: s.actuate},
	}
}

// Register defines the task and its dispatch alarm.
func (s *SteerByWire) Register(o *osek.OS) (osek.AlarmID, error) {
	if err := o.DefineTask(s.Task, osek.TaskAttrs{MaxActivations: 3}, s.Program()); err != nil {
		return -1, fmt.Errorf("apps: SteerByWire: %w", err)
	}
	alarm, err := o.CreateAlarm("SteerByWireAlarm", osek.ActivateAlarm(s.Task), true, s.cfg.Period, s.cfg.Period)
	if err != nil {
		return -1, fmt.Errorf("apps: SteerByWire: %w", err)
	}
	return alarm, nil
}

func (s *SteerByWire) read() {
	demand := s.cfg.Driver.Steering(s.cfg.Now())
	for i := range s.readings {
		s.readings[i] = demand
	}
	if s.SensorFault != nil && s.SensorFault.Channel >= 0 && s.SensorFault.Channel < 3 {
		s.readings[s.SensorFault.Channel] += s.SensorFault.Offset
	}
}

// vote selects the median of the three channels (2oo3 agreement) and
// counts disagreements.
func (s *SteerByWire) vote() {
	vals := []float64{s.readings[0], s.readings[1], s.readings[2]}
	sort.Float64s(vals)
	s.voted = vals[1]
	const tolerance = 1e-6
	if vals[2]-vals[0] > tolerance {
		s.mismatches++
	}
}

func (s *SteerByWire) actuate() { s.actuated = s.voted }

// SteerCommand reports the actuated steering angle for the plant.
func (s *SteerByWire) SteerCommand() float64 { return s.actuated }

// Mismatches reports how often the redundant channels disagreed.
func (s *SteerByWire) Mismatches() uint64 { return s.mismatches }
