package core

import (
	"testing"
	"time"

	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// --- bitset -----------------------------------------------------------

func TestBitsetBasics(t *testing.T) {
	b := newBitset(700)
	ids := []int{0, 63, 64, 127, 128, 500, 699}
	for _, id := range ids {
		if b.contains(id) {
			t.Fatalf("contains(%d) before set", id)
		}
		b.set(id)
		b.set(id) // duplicate insert must be a no-op
	}
	if b.len() != len(ids) {
		t.Fatalf("len = %d, want %d", b.len(), len(ids))
	}
	for _, id := range ids {
		if !b.contains(id) {
			t.Fatalf("contains(%d) after set = false", id)
		}
	}
	got := b.appendMembers(nil)
	for i, id := range ids {
		if int(got[i]) != id {
			t.Fatalf("appendMembers[%d] = %d, want %d", i, got[i], id)
		}
	}
	if b.len() != len(ids) {
		t.Fatalf("appendMembers drained the set: len = %d", b.len())
	}
	b.clear(63)
	b.clear(63) // duplicate clear must be a no-op
	if b.contains(63) || b.len() != len(ids)-1 {
		t.Fatalf("clear(63): contains=%v len=%d", b.contains(63), b.len())
	}
	drained := b.drainInto(nil)
	want := []int{0, 64, 127, 128, 500, 699}
	if len(drained) != len(want) {
		t.Fatalf("drainInto = %v, want %v", drained, want)
	}
	for i, id := range want {
		if int(drained[i]) != id {
			t.Fatalf("drainInto[%d] = %d, want %d", i, drained[i], id)
		}
	}
	if b.len() != 0 {
		t.Fatalf("len after drain = %d", b.len())
	}
	for _, id := range ids {
		if b.contains(id) {
			t.Fatalf("contains(%d) after drain", id)
		}
	}
	// The set must be reusable after a drain (buckets are recycled).
	b.set(42)
	if !b.contains(42) || b.len() != 1 {
		t.Fatalf("reuse after drain failed")
	}
}

func TestMergeDue(t *testing.T) {
	got := mergeDue(nil, []uint32{1, 3, 5}, []uint32{2, 3, 7})
	want := []dueItem{
		{rid: 1, alive: true},
		{rid: 2, arr: true},
		{rid: 3, alive: true, arr: true},
		{rid: 5, alive: true},
		{rid: 7, arr: true},
	}
	if len(got) != len(want) {
		t.Fatalf("mergeDue = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeDue[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// --- wheel fixtures ---------------------------------------------------

// wheelFixture builds a single-runnable watchdog with a tiny wheel so the
// overflow and slot-alias paths are exercised in a handful of cycles.
func wheelFixture(t *testing.T, size uint64, hyp Hypothesis) (*Watchdog, *collector, runnable.ID, runnable.TaskID) {
	t.Helper()
	m := runnable.NewModel()
	app, _ := m.AddApp("wheel", runnable.SafetyCritical)
	task, _ := m.AddTask(app, "T", 1)
	rid, err := m.AddRunnable(task, "r", time.Millisecond, runnable.SafetyCritical)
	if err != nil {
		t.Fatalf("AddRunnable: %v", err)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	sink := &collector{}
	w, err := New(Config{Model: m, Clock: sim.NewManualClock(), Sink: sink, wheelSize: size})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := w.SetHypothesis(rid, hyp); err != nil {
		t.Fatalf("SetHypothesis: %v", err)
	}
	if err := w.Activate(rid); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	return w, sink, rid, task
}

func faultCycles(sink *collector) []uint64 {
	var cs []uint64
	for _, f := range sink.faults {
		cs = append(cs, f.Cycle)
	}
	return cs
}

// --- wheel behavior ---------------------------------------------------

// TestWheelOverflowMigration parks a deadline beyond the wheel horizon
// (L=9 on a 4-slot wheel) and checks it is migrated in and fires exactly
// on schedule, including the re-armed second window.
func TestWheelOverflowMigration(t *testing.T) {
	w, sink, _, _ := wheelFixture(t, 4, Hypothesis{AlivenessCycles: 9, MinHeartbeats: 1})
	for i := 0; i < 18; i++ {
		w.Cycle()
	}
	got := faultCycles(sink)
	if len(got) != 2 || got[0] != 9 || got[1] != 18 {
		t.Fatalf("fault cycles = %v, want [9 18]", got)
	}
}

// TestWheelPeriodEqualsSize re-arms a window whose period equals the
// wheel size, so the fresh deadline lands in the very slot being swept.
// The drain-before-process design must not re-process it on the same
// cycle nor lose it.
func TestWheelPeriodEqualsSize(t *testing.T) {
	w, sink, _, _ := wheelFixture(t, 8, Hypothesis{AlivenessCycles: 8, MinHeartbeats: 1})
	for i := 0; i < 24; i++ {
		w.Cycle()
	}
	got := faultCycles(sink)
	if len(got) != 3 || got[0] != 8 || got[1] != 16 || got[2] != 24 {
		t.Fatalf("fault cycles = %v, want [8 16 24]", got)
	}
}

// TestWheelDeactivateFromOverflow deactivates a runnable whose deadline
// still sits in the overflow set (before any migration) and checks the
// stale deadline neither fires nor corrupts a later re-activation — the
// regression for the explicit per-runnable location tracking.
func TestWheelDeactivateFromOverflow(t *testing.T) {
	w, sink, rid, _ := wheelFixture(t, 4, Hypothesis{AlivenessCycles: 40, MinHeartbeats: 1})
	w.Cycle()
	w.Cycle() // cycle 2: deadline 40 still parked in overflow
	if err := w.Deactivate(rid); err != nil {
		t.Fatalf("Deactivate: %v", err)
	}
	for i := 0; i < 60; i++ {
		w.Cycle()
	}
	if got := faultCycles(sink); len(got) != 0 {
		t.Fatalf("faults after deactivate = %v, want none", got)
	}
	// Re-activate at cycle 62: the fresh window must expire at 102.
	if err := w.Activate(rid); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	for i := 0; i < 45; i++ {
		w.Cycle()
	}
	got := faultCycles(sink)
	if len(got) != 1 || got[0] != 102 {
		t.Fatalf("fault cycles = %v, want [102]", got)
	}
}

// TestWheelClearAllRebuild checks ClearAll resets the cycle counter and
// reindexes every deadline: the wheel's bucket keys are absolute cycle
// numbers, so the rebuild must restart windows from the new cycle zero.
func TestWheelClearAllRebuild(t *testing.T) {
	w, sink, _, _ := wheelFixture(t, 4, Hypothesis{AlivenessCycles: 6, MinHeartbeats: 1})
	for i := 0; i < 7; i++ {
		w.Cycle()
	}
	if got := faultCycles(sink); len(got) != 1 || got[0] != 6 {
		t.Fatalf("pre-ClearAll fault cycles = %v, want [6]", got)
	}
	w.ClearAll()
	sink.faults = nil
	for i := 0; i < 13; i++ {
		w.Cycle()
	}
	got := faultCycles(sink)
	if len(got) != 2 || got[0] != 6 || got[1] != 12 {
		t.Fatalf("post-ClearAll fault cycles = %v, want [6 12]", got)
	}
}

// TestWheelSetHypothesisPreservesElapsed shrinks a window mid-flight and
// checks the already-elapsed cycles are honored: after 4 cycles of an
// L=10 window, shrinking to L=3 means the window is already overdue and
// must fire on the next cycle, exactly like the legacy per-cycle counter
// hitting its new limit.
func TestWheelSetHypothesisPreservesElapsed(t *testing.T) {
	w, sink, rid, _ := wheelFixture(t, 8, Hypothesis{AlivenessCycles: 10, MinHeartbeats: 1})
	for i := 0; i < 4; i++ {
		w.Cycle()
	}
	if err := w.SetHypothesis(rid, Hypothesis{AlivenessCycles: 3, MinHeartbeats: 1}); err != nil {
		t.Fatalf("SetHypothesis: %v", err)
	}
	w.Cycle() // cycle 5: overdue window fires immediately
	got := faultCycles(sink)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("fault cycles = %v, want [5]", got)
	}
}

// TestWheelCounterSnapshotAnchors checks the anchor-derived CCA matches
// the per-cycle counter semantics across freeze (Suspend) and resume.
func TestWheelCounterSnapshotAnchors(t *testing.T) {
	w, _, rid, tid := wheelFixture(t, 8, Hypothesis{AlivenessCycles: 50, MinHeartbeats: 1})
	for i := 0; i < 4; i++ {
		w.Cycle()
	}
	if c, _ := w.CounterSnapshot(rid); c.CCA != 4 {
		t.Fatalf("CCA after 4 cycles = %d, want 4", c.CCA)
	}
	if err := w.SuspendTaskMonitoring(tid); err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	for i := 0; i < 3; i++ {
		w.Cycle()
	}
	if c, _ := w.CounterSnapshot(rid); c.CCA != 0 {
		t.Fatalf("CCA while suspended = %d, want 0 (frozen at reset)", c.CCA)
	}
}

// TestCloseIdempotent retires a sharded watchdog's worker pool twice.
func TestCloseIdempotent(t *testing.T) {
	m := runnable.NewModel()
	app, _ := m.AddApp("close", runnable.QM)
	task, _ := m.AddTask(app, "T", 1)
	if _, err := m.AddRunnable(task, "r", time.Millisecond, runnable.QM); err != nil {
		t.Fatalf("AddRunnable: %v", err)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	w, err := New(Config{Model: m, Clock: sim.NewManualClock(), SweepShards: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w.Cycle()
	w.Close()
	w.Close()
	// The serial sweep must keep working after the pool is gone.
	w.Cycle()
}
