package osek

import (
	"fmt"

	"swwd/internal/runnable"
)

// ResourceID identifies an OSEK resource within one OS instance.
type ResourceID int

// resource implements the OSEK priority-ceiling protocol (OSEK PCP): while
// a task holds the resource its dynamic priority is raised to the ceiling,
// the highest base priority of any task that uses the resource. This
// prevents priority inversion and deadlock — but a task that simply holds
// a resource too long still starves its peers, which is exactly the
// category-1 timing fault ("an object hangs as a result of a requested
// resource being blocked") the Software Watchdog detects.
type resource struct {
	id      ResourceID
	name    string
	ceiling int
	holder  *tcb // nil when free
}

// DeclareResource registers a resource used by the given tasks; the
// ceiling priority is the maximum of their base priorities. Must be called
// before Start.
func (o *OS) DeclareResource(name string, users ...runnable.TaskID) (ResourceID, error) {
	if o.started {
		return -1, fmt.Errorf("osek: DeclareResource %q after Start: %w", name, ErrAccess)
	}
	if len(users) == 0 {
		return -1, fmt.Errorf("osek: DeclareResource %q with no users: %w", name, ErrValue)
	}
	ceiling := 0
	for _, tid := range users {
		t, err := o.model.Task(tid)
		if err != nil {
			return -1, fmt.Errorf("osek: DeclareResource %q: %w", name, err)
		}
		if t.Priority > ceiling {
			ceiling = t.Priority
		}
	}
	id := ResourceID(len(o.resources))
	o.resources = append(o.resources, &resource{id: id, name: name, ceiling: ceiling})
	return id, nil
}

// getResource implements the Lock step for the running task.
func (o *OS) getResource(t *tcb, rid ResourceID) error {
	if int(rid) < 0 || int(rid) >= len(o.resources) {
		return fmt.Errorf("osek: GetResource(%d): %w", rid, ErrID)
	}
	res := o.resources[rid]
	if res.holder != nil {
		// Under correct PCP usage this cannot happen (the ceiling blocks
		// contenders from being dispatched); it indicates a configuration
		// fault such as an undeclared user.
		return fmt.Errorf("osek: GetResource(%s): already held by %s: %w",
			res.name, res.holder.static.Name, ErrAccess)
	}
	res.holder = t
	t.held = append(t.held, rid)
	if res.ceiling > t.dynPrio {
		t.dynPrio = res.ceiling
	}
	return nil
}

// releaseResource implements the Unlock step; releases must be LIFO.
func (o *OS) releaseResource(t *tcb, rid ResourceID) error {
	if int(rid) < 0 || int(rid) >= len(o.resources) {
		return fmt.Errorf("osek: ReleaseResource(%d): %w", rid, ErrID)
	}
	if len(t.held) == 0 || t.held[len(t.held)-1] != rid {
		return fmt.Errorf("osek: ReleaseResource(%s): non-LIFO release: %w",
			o.resources[rid].name, ErrResource)
	}
	t.held = t.held[:len(t.held)-1]
	o.resources[rid].holder = nil
	t.dynPrio = t.static.Priority
	for _, held := range t.held {
		if c := o.resources[held].ceiling; c > t.dynPrio {
			t.dynPrio = c
		}
	}
	return nil
}

// releaseAll force-releases everything a task still holds, used on
// (forced) termination per the OSEK rule that a terminating task must not
// hold resources.
func (o *OS) releaseAll(t *tcb) {
	for i := len(t.held) - 1; i >= 0; i-- {
		o.resources[t.held[i]].holder = nil
	}
	t.held = t.held[:0]
	t.dynPrio = t.static.Priority
}
