// Package trace records named time series during simulation runs and
// renders them as CSV and ASCII plots. It stands in for the dSPACE
// ControlDesk experiment environment the paper uses to "trigger the error
// injection ... and visualize the results" (§4.5): the experiment
// harnesses sample the watchdog counters every 10 ms tick and plot the
// same series as Figs. 5 and 6 (AC, CCA, AM Result, PFC Result, task
// state, …).
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"swwd/internal/sim"
)

// Point is one sample of a series.
type Point struct {
	Time  sim.Time
	Value float64
}

// Series is one named signal over time.
type Series struct {
	Name   string
	Points []Point
}

// Last returns the most recent value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Value
}

// Min and Max report the value range; both are 0 for an empty series.
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, p := range s.Points {
		if p.Value < min {
			min = p.Value
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// Max reports the largest value of the series.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, p := range s.Points {
		if p.Value > max {
			max = p.Value
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Recorder collects samples against a clock.
type Recorder struct {
	clock  sim.Clock
	series map[string]*Series
	order  []string
}

// NewRecorder creates a recorder reading timestamps from clock.
func NewRecorder(clock sim.Clock) (*Recorder, error) {
	if clock == nil {
		return nil, errors.New("trace: clock is required")
	}
	return &Recorder{clock: clock, series: make(map[string]*Series)}, nil
}

// Record appends a sample at the current clock instant.
func (r *Recorder) Record(name string, v float64) {
	r.RecordAt(r.clock.Now(), name, v)
}

// RecordAt appends a sample with an explicit timestamp; timestamps within
// one series must be non-decreasing.
func (r *Recorder) RecordAt(t sim.Time, name string, v float64) {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	if n := len(s.Points); n > 0 && s.Points[n-1].Time > t {
		// Out-of-order samples would silently corrupt plots.
		panic(fmt.Sprintf("trace: out-of-order sample for %q (%v after %v)", name, t, s.Points[n-1].Time))
	}
	s.Points = append(s.Points, Point{Time: t, Value: v})
}

// Names reports the recorded series names in registration order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Series returns a recorded series, or nil when the name is unknown. The
// returned value is live; callers must not mutate it while recording.
func (r *Recorder) Series(name string) *Series {
	return r.series[name]
}

// WriteCSV renders all series as one table: a time column (in units of
// tick, e.g. 10ms to match the paper's x-axes) followed by one column per
// series. Samples are aligned on the union of timestamps; missing values
// repeat the previous sample (step semantics).
func (r *Recorder) WriteCSV(w io.Writer, tick sim.Time) error {
	if tick <= 0 {
		return errors.New("trace: tick must be positive")
	}
	times := r.timeline()
	cw := csv.NewWriter(w)
	header := append([]string{"tick"}, r.order...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	idx := make(map[string]int, len(r.order))
	last := make(map[string]float64, len(r.order))
	row := make([]string, len(header))
	for _, t := range times {
		row[0] = strconv.FormatFloat(float64(t)/float64(tick), 'g', -1, 64)
		for i, name := range r.order {
			s := r.series[name]
			j := idx[name]
			for j < len(s.Points) && s.Points[j].Time <= t {
				last[name] = s.Points[j].Value
				j++
			}
			idx[name] = j
			row[i+1] = strconv.FormatFloat(last[name], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// timeline returns the sorted union of all sample timestamps.
func (r *Recorder) timeline() []sim.Time {
	seen := make(map[sim.Time]bool)
	var times []sim.Time
	for _, s := range r.series {
		for _, p := range s.Points {
			if !seen[p.Time] {
				seen[p.Time] = true
				times = append(times, p.Time)
			}
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times
}

// Plot renders one series as a step-style ASCII chart of the given
// dimensions, with the value range auto-scaled — the terminal counterpart
// of a ControlDesk plotter lane.
func Plot(s *Series, width, height int) string {
	if s == nil || len(s.Points) == 0 || width < 8 || height < 2 {
		return ""
	}
	lo, hi := s.Min(), s.Max()
	if hi == lo {
		hi = lo + 1
	}
	t0 := s.Points[0].Time
	t1 := s.Points[len(s.Points)-1].Time
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	idx := 0
	value := s.Points[0].Value
	for col := 0; col < width; col++ {
		t := t0 + sim.Time(int64(span)*int64(col)/int64(width-1))
		for idx < len(s.Points) && s.Points[idx].Time <= t {
			value = s.Points[idx].Value
			idx++
		}
		rowF := (value - lo) / (hi - lo)
		row := height - 1 - int(rowF*float64(height-1)+0.5)
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][col] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%g .. %g]\n", s.Name, lo, hi)
	for _, line := range grid {
		b.WriteString("  |")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "   %v .. %v\n", t0, t1)
	return b.String()
}
