package hil

import (
	"fmt"
	"time"

	"swwd/internal/core"
	"swwd/internal/fmf"
	"swwd/internal/osek"
	"swwd/internal/reconfig"
	"swwd/internal/runnable"
	"swwd/internal/vehicle"
)

// limpHome is the degraded-mode speed governor: no driver throttle, brake
// whenever the vehicle is above the limp-home cap. It is deliberately
// simpler than SAFE_CC_process — the point of a fallback configuration.
type limpHome struct {
	plant *vehicle.Longitudinal
	capMs float64

	throttle float64
	brake    float64
	execs    uint64
}

// control is a bang-bang degraded cruise: brake above the cap, gentle
// throttle below 90% of it, coast in between — far simpler than
// SAFE_CC_process but enough to keep the function alive.
func (l *limpHome) control() {
	l.execs++
	v := l.plant.Speed()
	switch {
	case v > l.capMs:
		l.throttle, l.brake = 0, 0.3
	case v < 0.9*l.capMs:
		l.throttle, l.brake = 0.3, 0
	default:
		l.throttle, l.brake = 0, 0
	}
}

// Controls reports the fallback actuator demand.
func (l *limpHome) Controls() (throttle, brake float64) { return l.throttle, l.brake }

// registerFallback adds the limp-home application to the model. Must run
// before Freeze.
func (v *Validator) registerFallback() error {
	capKph := v.opts.FallbackSpeedKph
	if capKph <= 0 {
		capKph = 60
	}
	v.limp = &limpHome{plant: v.Long, capMs: vehicle.KphToMs(capKph)}
	var err error
	if v.FallbackApp, err = v.Model.AddApp("SafeSpeedFallback", runnable.SafetyRelevant); err != nil {
		return fmt.Errorf("hil: fallback: %w", err)
	}
	if v.FallbackTask, err = v.Model.AddTask(v.FallbackApp, "LimpHomeTask", 9); err != nil {
		return fmt.Errorf("hil: fallback: %w", err)
	}
	if v.FallbackRunnable, err = v.Model.AddRunnable(v.FallbackTask, "LimpHome_process",
		100*time.Microsecond, runnable.SafetyRelevant); err != nil {
		return fmt.Errorf("hil: fallback: %w", err)
	}
	return nil
}

// wireFallback defines the limp-home task and the reconfiguration
// manager. Must run after the OS and FMF exist.
func (v *Validator) wireFallback() error {
	if err := v.OS.DefineTask(v.FallbackTask, osek.TaskAttrs{MaxActivations: 2}, osek.Program{
		osek.Exec{Runnable: v.FallbackRunnable, OnDone: v.limp.control},
	}); err != nil {
		return fmt.Errorf("hil: fallback: %w", err)
	}
	var err error
	// Not autostarted: the reconfiguration manager arms it on demand.
	if v.fallbackAlarm, err = v.OS.CreateAlarm("LimpHomeAlarm",
		osek.ActivateAlarm(v.FallbackTask), false, 0, 0); err != nil {
		return fmt.Errorf("hil: fallback: %w", err)
	}
	if v.Reconfig, err = reconfig.New(v.OS); err != nil {
		return fmt.Errorf("hil: fallback: %w", err)
	}
	if err := v.Reconfig.AddFallback(reconfig.Fallback{
		ForApp: v.SafeSpeed.App,
		Task:   v.FallbackTask,
		Alarm:  v.fallbackAlarm,
		Offset: 50 * time.Millisecond,
		Cycle:  50 * time.Millisecond,
	}); err != nil {
		return fmt.Errorf("hil: fallback: %w", err)
	}
	v.FMF.Subscribe(v.Reconfig.Notify)
	// Toggle the fallback runnable's Activation Status with engagement so
	// the watchdog supervises the degraded mode too (§3.3 AS usage).
	// Limp-home runs every 50ms; with a 10ms cycle a 25-cycle window sees
	// 5 nominal heartbeats.
	hyp := core.Hypothesis{AlivenessCycles: 25, MinHeartbeats: 3, ArrivalCycles: 25, MaxArrivals: 7}
	if err := v.Watchdog.SetHypothesis(v.FallbackRunnable, hyp); err != nil {
		return fmt.Errorf("hil: fallback: %w", err)
	}
	v.FMF.Subscribe(func(n fmf.Notification) {
		if n.Treatment == nil || n.Treatment.App != v.SafeSpeed.App {
			return
		}
		switch n.Treatment.Action {
		case fmf.TerminateAppAction:
			_ = v.Watchdog.Activate(v.FallbackRunnable)
		case fmf.RestartAppAction:
			_ = v.Watchdog.Deactivate(v.FallbackRunnable)
		}
	})
	return nil
}

// FallbackEngaged reports whether the limp-home mode is active.
func (v *Validator) FallbackEngaged() bool {
	return v.Reconfig != nil && v.Reconfig.Engaged(v.SafeSpeed.App)
}

// FallbackExecutions reports how often the limp-home control ran.
func (v *Validator) FallbackExecutions() uint64 {
	if v.limp == nil {
		return 0
	}
	return v.limp.execs
}
