// Package can simulates a Controller Area Network bus at the frame level:
// 11-bit identifiers, lowest-identifier-wins arbitration, and a bit-time
// transmission model including worst-case stuffing. It is one of the
// vehicle domains joined by the EASIS validator's gateway node (§4.1).
package can

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"swwd/internal/sim"
)

// FrameID is an 11-bit CAN identifier; lower values win arbitration.
type FrameID uint16

// MaxID is the largest standard (11-bit) identifier.
const MaxID FrameID = 0x7FF

// MaxData is the classic CAN payload limit.
const MaxData = 8

// Frame is one CAN data frame.
type Frame struct {
	ID   FrameID
	Data []byte
}

// Validate checks identifier range and payload length.
func (f Frame) Validate() error {
	if f.ID > MaxID {
		return fmt.Errorf("can: id 0x%X exceeds 11 bits", f.ID)
	}
	if len(f.Data) > MaxData {
		return fmt.Errorf("can: payload %d bytes exceeds %d", len(f.Data), MaxData)
	}
	return nil
}

// FrameBits is the worst-case on-wire size of a standard data frame: 47
// framing bits + payload, plus worst-case bit stuffing of the 34+8n
// stuff-relevant bits.
func FrameBits(dataLen int) int {
	return 47 + 8*dataLen + (34+8*dataLen)/5
}

// BusStats aggregates bus-level counters.
type BusStats struct {
	FramesDelivered   uint64
	ArbitrationLosses uint64
	BusyTime          time.Duration
	ErrorFrames       uint64
	Retransmissions   uint64
}

// errorFrameBits approximates an error frame plus the suspended
// transmission overhead on the wire.
const errorFrameBits = 20

// Bus is one CAN segment. All nodes share the medium; one frame is on the
// wire at a time.
type Bus struct {
	kernel  *sim.Kernel
	bitrate int // bits per second
	nodes   []*Node
	busy    bool
	stats   BusStats

	// fault injection (see errors.go)
	errRate     float64
	errRng      *rand.Rand
	corruptNext bool
}

// NewBus creates a bus on the simulation kernel. Typical automotive
// bitrates are 125k (body) and 500k (chassis/powertrain).
func NewBus(k *sim.Kernel, bitrate int) (*Bus, error) {
	if k == nil {
		return nil, errors.New("can: kernel is required")
	}
	if bitrate <= 0 {
		return nil, fmt.Errorf("can: bitrate %d must be positive", bitrate)
	}
	return &Bus{kernel: k, bitrate: bitrate}, nil
}

// Stats reports the bus counters.
func (b *Bus) Stats() BusStats { return b.stats }

// Utilization reports the fraction of elapsed time the bus was busy.
func (b *Bus) Utilization() float64 {
	now := b.kernel.Now()
	if now == 0 {
		return 0
	}
	return float64(b.stats.BusyTime) / float64(now.Duration())
}

// AttachNode adds a node to the bus.
func (b *Bus) AttachNode(name string) *Node {
	n := &Node{name: name, bus: b}
	b.nodes = append(b.nodes, n)
	return n
}

// txTime is the wire time of a frame at the bus bitrate.
func (b *Bus) txTime(f Frame) time.Duration {
	bits := FrameBits(len(f.Data))
	return time.Duration(int64(bits) * int64(time.Second) / int64(b.bitrate))
}

// arbitrate starts transmission of the highest-priority pending frame if
// the bus is idle.
func (b *Bus) arbitrate() {
	if b.busy {
		return
	}
	var winner *Node
	contenders := 0
	for _, n := range b.nodes {
		if len(n.txQueue) == 0 {
			continue
		}
		contenders++
		if winner == nil || n.txQueue[0].ID < winner.txQueue[0].ID {
			winner = n
		}
	}
	if winner == nil {
		return
	}
	if contenders > 1 {
		b.stats.ArbitrationLosses += uint64(contenders - 1)
	}
	frame := winner.txQueue[0]
	winner.txQueue = winner.txQueue[1:]
	b.busy = true
	dur := b.txTime(frame)
	b.stats.BusyTime += dur
	b.kernel.After(dur, func() {
		corrupted := b.corruptNext || (b.errRate > 0 && b.errRng.Float64() < b.errRate)
		b.corruptNext = false
		if corrupted {
			b.signalError(winner, frame)
			return
		}
		b.busy = false
		b.stats.FramesDelivered++
		winner.stats.Sent++
		if winner.tec > 0 {
			winner.tec--
		}
		for _, n := range b.nodes {
			if n == winner {
				continue
			}
			if n.rec > 0 {
				n.rec--
			}
			n.deliver(frame)
		}
		b.arbitrate()
	})
}

// signalError models the CAN error-signalling and retransmission path: an
// error frame occupies the bus, the transmitter's TEC rises by 8 and the
// receivers' REC by 1, then the frame is retransmitted — unless the
// transmitter has bus-offed, in which case it drops out with its queue.
func (b *Bus) signalError(winner *Node, frame Frame) {
	b.stats.ErrorFrames++
	winner.tec += tecTransmitError
	for _, n := range b.nodes {
		if n != winner {
			n.rec++
		}
	}
	if winner.errorState() == BusOff {
		winner.stats.Dropped += uint64(len(winner.txQueue)) + 1
		winner.txQueue = nil
	} else {
		b.stats.Retransmissions++
		// Re-queue at the head: the frame had won arbitration, so its ID
		// is <= everything still queued on this node.
		winner.txQueue = append([]Frame{frame}, winner.txQueue...)
	}
	errDur := time.Duration(int64(errorFrameBits) * int64(time.Second) / int64(b.bitrate))
	b.stats.BusyTime += errDur
	b.kernel.After(errDur, func() {
		b.busy = false
		b.arbitrate()
	})
}

// NodeStats aggregates per-node counters.
type NodeStats struct {
	Sent     uint64
	Received uint64
	Dropped  uint64
}

// Node is one CAN controller on the bus.
type Node struct {
	name     string
	bus      *Bus
	txQueue  []Frame
	handlers []func(Frame)
	filters  []func(FrameID) bool
	stats    NodeStats
	maxQueue int

	// fault-confinement counters (see errors.go)
	tec int
	rec int
}

// Name reports the node name.
func (n *Node) Name() string { return n.name }

// Stats reports the node counters.
func (n *Node) Stats() NodeStats { return n.stats }

// SetQueueLimit bounds the transmit queue; zero means unbounded. Frames
// beyond the bound are dropped and counted.
func (n *Node) SetQueueLimit(limit int) { n.maxQueue = limit }

// Send enqueues a frame for transmission; the queue is kept sorted by
// identifier (controller mailbox priority) with FIFO order among equal
// identifiers.
func (n *Node) Send(f Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if n.errorState() == BusOff {
		n.stats.Dropped++
		return fmt.Errorf("can: node %s: %w", n.name, ErrBusOff)
	}
	if n.maxQueue > 0 && len(n.txQueue) >= n.maxQueue {
		n.stats.Dropped++
		return fmt.Errorf("can: node %s: tx queue full", n.name)
	}
	data := make([]byte, len(f.Data))
	copy(data, f.Data)
	f.Data = data
	pos := len(n.txQueue)
	for i, q := range n.txQueue {
		if f.ID < q.ID {
			pos = i
			break
		}
	}
	n.txQueue = append(n.txQueue, Frame{})
	copy(n.txQueue[pos+1:], n.txQueue[pos:])
	n.txQueue[pos] = f
	n.bus.arbitrate()
	return nil
}

// Subscribe registers a receive handler; filter may be nil to accept all
// identifiers.
func (n *Node) Subscribe(filter func(FrameID) bool, handler func(Frame)) {
	if handler == nil {
		return
	}
	n.filters = append(n.filters, filter)
	n.handlers = append(n.handlers, handler)
}

func (n *Node) deliver(f Frame) {
	accepted := false
	for i, h := range n.handlers {
		if n.filters[i] != nil && !n.filters[i](f.ID) {
			continue
		}
		accepted = true
		data := make([]byte, len(f.Data))
		copy(data, f.Data)
		h(Frame{ID: f.ID, Data: data})
	}
	if accepted {
		n.stats.Received++
	}
}
