package export

import (
	"bytes"
	"fmt"

	"swwd/internal/ingest"
)

// WriteCalib renders the swwd_calib_* families from a calibration
// status snapshot (ingest.CalibController.Status). A separate writer,
// like the rest of this band: WriteSnapshot's families stay
// byte-identical and exporters append calibration series only when the
// loop is enabled.
func WriteCalib(b *bytes.Buffer, st ingest.CalibStatus, names []string) {
	Header(b, "swwd_calib_stage", "gauge", "Rollout stage of the calibration loop (0 idle, 1 shadow, 2 canary, 3 fleet, 4 rolled back).")
	fmt.Fprintf(b, "swwd_calib_stage %d\n", int(st.Stage))
	Header(b, "swwd_calib_rounds_total", "counter", "Completed calibration rounds (fleet-wide hypothesis adoptions).")
	fmt.Fprintf(b, "swwd_calib_rounds_total %d\n", st.Rounds)
	Header(b, "swwd_calib_rollbacks_total", "counter", "Canary regressions rolled back to the prior hypothesis.")
	fmt.Fprintf(b, "swwd_calib_rollbacks_total %d\n", st.Rollbacks)
	Header(b, "swwd_calib_rejected_total", "counter", "Candidates the shadow guard refused to promote.")
	fmt.Fprintf(b, "swwd_calib_rejected_total %d\n", st.Rejected)
	Header(b, "swwd_calib_proposals", "gauge", "Candidates in the current rollout round.")
	fmt.Fprintf(b, "swwd_calib_proposals %d\n", len(st.Candidates))
	Header(b, "swwd_calib_canary_nodes", "gauge", "Canary subset size of the current round.")
	fmt.Fprintf(b, "swwd_calib_canary_nodes %d\n", st.CanaryNodes)
	Header(b, "swwd_calib_pending_acks", "gauge", "Nodes still owing a command ack for the current round.")
	fmt.Fprintf(b, "swwd_calib_pending_acks %d\n", st.PendingAcks)

	if len(st.Candidates) == 0 {
		return
	}
	Header(b, "swwd_calib_shadow_windows_total", "counter", "Shadow windows judged for the runnable's candidate.")
	for _, c := range st.Candidates {
		if c.HasShadow {
			fmt.Fprintf(b, "swwd_calib_shadow_windows_total{runnable=%q} %d\n", label(names, int(c.Runnable)), c.Shadow.Windows)
		}
	}
	Header(b, "swwd_calib_shadow_would_faults_total", "counter", "Faults the candidate would have raised, by kind (no live fault is raised).")
	for _, c := range st.Candidates {
		if c.HasShadow {
			n := label(names, int(c.Runnable))
			fmt.Fprintf(b, "swwd_calib_shadow_would_faults_total{runnable=%q,kind=\"aliveness\"} %d\n", n, c.Shadow.WouldAliveness)
			fmt.Fprintf(b, "swwd_calib_shadow_would_faults_total{runnable=%q,kind=\"arrival_rate\"} %d\n", n, c.Shadow.WouldArrival)
		}
	}
	Header(b, "swwd_calib_shadow_clean_streak", "gauge", "Consecutive clean shadow windows (promotion criterion).")
	for _, c := range st.Candidates {
		if c.HasShadow {
			fmt.Fprintf(b, "swwd_calib_shadow_clean_streak{runnable=%q} %d\n", label(names, int(c.Runnable)), c.Shadow.CleanStreak)
		}
	}
	Header(b, "swwd_calib_candidate_applied", "gauge", "Whether the round's candidate hypothesis is live on the runnable.")
	for _, c := range st.Candidates {
		fmt.Fprintf(b, "swwd_calib_candidate_applied{runnable=%q} %d\n", label(names, int(c.Runnable)), b2i(c.Applied))
	}
}
