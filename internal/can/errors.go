package can

import (
	"fmt"
	"math/rand"
)

// ErrorState is the CAN fault-confinement state of a node.
type ErrorState int

// Fault-confinement states per the CAN specification.
const (
	ErrorActive ErrorState = iota + 1
	ErrorPassive
	BusOff
)

// String names the state.
func (s ErrorState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	default:
		return fmt.Sprintf("ErrorState(%d)", int(s))
	}
}

// Fault-confinement thresholds per the CAN specification.
const (
	errorPassiveLimit = 128
	busOffLimit       = 256
	// tecTransmitError is added to the transmit error counter per failed
	// transmission.
	tecTransmitError = 8
)

// ErrBusOff is wrapped by Send when the node has bus-offed.
var ErrBusOff = fmt.Errorf("can: node is bus-off")

// SetBitErrorRate corrupts the given fraction of frames on the wire with
// a deterministic seeded source — the network-level fault injection.
// Corrupted frames are signalled by an error frame and retransmitted by
// the sender, consuming bandwidth and raising error counters.
func (b *Bus) SetBitErrorRate(rate float64, seed int64) error {
	if rate < 0 || rate >= 1 {
		return fmt.Errorf("can: bit error rate %v must be in [0,1)", rate)
	}
	b.errRate = rate
	b.errRng = rand.New(rand.NewSource(seed))
	return nil
}

// CorruptNext forces the next transmitted frame to be corrupted — a
// single-shot injection for targeted tests.
func (b *Bus) CorruptNext() { b.corruptNext = true }

// ErrorFrames reports how many error frames have been signalled.
func (b *Bus) ErrorFrames() uint64 { return b.stats.ErrorFrames }

// nodeErrorState recomputes a node's fault-confinement state from its
// transmit error counter.
func (n *Node) errorState() ErrorState {
	switch {
	case n.tec >= busOffLimit:
		return BusOff
	case n.tec >= errorPassiveLimit || n.rec >= errorPassiveLimit:
		return ErrorPassive
	default:
		return ErrorActive
	}
}

// ErrorState reports the node's current fault-confinement state.
func (n *Node) ErrorState() ErrorState { return n.errorState() }

// TEC reports the transmit error counter.
func (n *Node) TEC() int { return n.tec }

// REC reports the receive error counter.
func (n *Node) REC() int { return n.rec }

// Recover resets a bus-off node (the simplified equivalent of the 128 x
// 11-recessive-bit rule): error counters clear and the node may transmit
// again.
func (n *Node) Recover() {
	n.tec = 0
	n.rec = 0
}
