package trace

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"swwd/internal/sim"
)

// Property: for any set of series with random (sorted) timestamps, the CSV
// has one row per distinct timestamp, every row has one cell per series
// plus the tick column, and the last row carries each series' final value
// (step semantics).
func TestQuickCSVAlignment(t *testing.T) {
	f := func(seed int64, nSeries, nPoints uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		series := int(nSeries%4) + 1
		points := int(nPoints%20) + 1
		clk := sim.NewManualClock()
		r, err := NewRecorder(clk)
		if err != nil {
			return false
		}
		distinct := map[sim.Time]bool{}
		finals := make(map[string]float64)
		for s := 0; s < series; s++ {
			name := "s" + strconv.Itoa(s)
			t := sim.Time(0)
			for p := 0; p < points; p++ {
				t += sim.Time(rng.Intn(5)+1) * sim.Millisecond
				v := float64(rng.Intn(100))
				r.RecordAt(t, name, v)
				distinct[t] = true
				finals[name] = v
			}
		}
		var sb strings.Builder
		if err := r.WriteCSV(&sb, sim.Millisecond); err != nil {
			return false
		}
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		if len(lines) != len(distinct)+1 {
			return false
		}
		header := strings.Split(lines[0], ",")
		if len(header) != series+1 {
			return false
		}
		last := strings.Split(lines[len(lines)-1], ",")
		if len(last) != series+1 {
			return false
		}
		for i, name := range header[1:] {
			want := finals[name]
			got, err := strconv.ParseFloat(last[i+1], 64)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
