package wire

import "testing"

// BenchmarkWireDecode measures the per-frame decode cost on the
// steady-state path (retained Frame, reused slices). The benchdiff CI
// gate holds this to 0 allocs/op.
func BenchmarkWireDecode(b *testing.B) {
	buf := mustEncode(b, sampleFrame())
	var f Frame
	if err := DecodeFrame(buf, &f); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeFrame(buf, &f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncode measures AppendFrame into a reused buffer.
func BenchmarkWireEncode(b *testing.B) {
	f := sampleFrame()
	buf, err := AppendFrame(nil, f)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		if buf, err = AppendFrame(buf, f); err != nil {
			b.Fatal(err)
		}
	}
}
