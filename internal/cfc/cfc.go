// Package cfc implements the control-flow-checking baselines the paper
// compares its look-up-table approach against (§2, §3.4):
//
//   - CFCSS, "Control-Flow Checking by Software Signatures" (Oh, Shirvani,
//     McCluskey, IEEE Trans. Reliability 2002, the paper's [10]): every
//     basic block carries an embedded signature; a run-time signature
//     register is updated with pre-computed XOR differences at each block
//     entry and compared against the block's signature.
//   - A table-based checker equivalent to the Software Watchdog's PFC
//     look-up table, implemented lock-free here so the two mechanisms'
//     per-check costs can be compared head-to-head (experiment T1).
//
// The package also quantifies instrumentation overhead: CFCSS needs
// signature update/check code in every block plus adjusting-signature
// assignments in branch-fan-in predecessors, while the look-up table only
// needs the aliveness-indication glue call the watchdog already requires.
package cfc

import (
	"errors"
	"fmt"
	"math/rand"
)

// BlockID identifies a basic block (for the watchdog: a runnable) within
// one control-flow graph. IDs are dense from 0.
type BlockID int

// Graph is a control-flow graph over basic blocks.
type Graph struct {
	succs [][]BlockID
}

// NewGraph creates a graph with n blocks and no edges.
func NewGraph(n int) (*Graph, error) {
	if n <= 0 {
		return nil, errors.New("cfc: graph needs at least one block")
	}
	return &Graph{succs: make([][]BlockID, n)}, nil
}

// NumBlocks reports the number of blocks.
func (g *Graph) NumBlocks() int { return len(g.succs) }

// AddEdge allows execution to flow from a to b.
func (g *Graph) AddEdge(a, b BlockID) error {
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("cfc: AddEdge(%d,%d): block out of range", a, b)
	}
	for _, s := range g.succs[a] {
		if s == b {
			return nil
		}
	}
	g.succs[a] = append(g.succs[a], b)
	return nil
}

// Successors returns the successors of a block; the slice must not be
// mutated.
func (g *Graph) Successors(b BlockID) []BlockID {
	if !g.valid(b) {
		return nil
	}
	return g.succs[b]
}

// HasEdge reports whether b may follow a.
func (g *Graph) HasEdge(a, b BlockID) bool {
	if !g.valid(a) {
		return false
	}
	for _, s := range g.succs[a] {
		if s == b {
			return true
		}
	}
	return false
}

// predecessors computes the predecessor lists.
func (g *Graph) predecessors() [][]BlockID {
	preds := make([][]BlockID, len(g.succs))
	for a, ss := range g.succs {
		for _, b := range ss {
			preds[b] = append(preds[b], BlockID(a))
		}
	}
	return preds
}

func (g *Graph) valid(b BlockID) bool { return b >= 0 && int(b) < len(g.succs) }

// Checker is the common behaviour of both mechanisms: feed it the executed
// block sequence; it reports detected control-flow violations.
type Checker interface {
	// Reset prepares for a fresh execution starting at entry.
	Reset(entry BlockID)
	// Enter records execution of block b and reports whether the
	// transition was legal per the mechanism.
	Enter(b BlockID) bool
	// Detected reports the cumulative number of violations.
	Detected() uint64
}

// TablePFC is the look-up-table mechanism of the Software Watchdog,
// re-implemented without locking for mechanism-level benchmarking: allowed
// predecessor/successor pairs in a bitset, one load+mask per check.
type TablePFC struct {
	allowed  [][]uint64
	prev     BlockID
	started  bool
	detected uint64
}

var _ Checker = (*TablePFC)(nil)

// NewTablePFC builds the look-up table from the graph.
func NewTablePFC(g *Graph) *TablePFC {
	n := g.NumBlocks()
	words := (n + 63) / 64
	allowed := make([][]uint64, n)
	for i := range allowed {
		allowed[i] = make([]uint64, words)
	}
	for a, ss := range g.succs {
		for _, b := range ss {
			allowed[a][b/64] |= 1 << (uint(b) % 64)
		}
	}
	return &TablePFC{allowed: allowed, prev: -1}
}

// Reset implements Checker.
func (t *TablePFC) Reset(entry BlockID) {
	t.prev = entry
	t.started = true
}

// Enter implements Checker.
func (t *TablePFC) Enter(b BlockID) bool {
	if !t.started {
		t.prev = b
		t.started = true
		return true
	}
	ok := t.allowed[t.prev][b/64]&(1<<(uint(b)%64)) != 0
	t.prev = b
	if !ok {
		t.detected++
	}
	return ok
}

// Detected implements Checker.
func (t *TablePFC) Detected() uint64 { return t.detected }

// InstrumentationPoints reports how many code sites the mechanism must
// touch in the application: one glue call per block (the same call the
// watchdog's heartbeat monitoring already inserts, so the *additional*
// cost over heartbeat monitoring is zero).
func (t *TablePFC) InstrumentationPoints() int { return len(t.allowed) }

// CFCSS is the embedded-signature mechanism of the paper's reference [10].
type CFCSS struct {
	sig  []uint32 // compile-time signature s_i per block
	diff []uint32 // d_i = s_i XOR s_base-predecessor(i)
	// adjust marks branch-fan-in blocks that XOR the run-time adjusting
	// signature D into G.
	adjust []bool
	// dOut[i] is the adjusting signature block i assigns to D for its
	// fan-in successors (0 when none).
	dOut []uint32
	// aliased records blocks whose predecessors impose conflicting D
	// requirements — the known aliasing limitation of CFCSS, surfaced
	// instead of hidden.
	aliased []BlockID

	g        uint32 // run-time signature register G
	d        uint32 // run-time adjusting signature register D
	detected uint64
	// resync controls whether G is resynchronised after a detection so
	// subsequent legal transitions check cleanly again.
	resync bool
}

var _ Checker = (*CFCSS)(nil)

// NewCFCSS instruments the graph per the CFCSS construction. Signatures
// are drawn from a deterministic seeded source so runs are reproducible.
func NewCFCSS(g *Graph, seed int64) (*CFCSS, error) {
	n := g.NumBlocks()
	rng := rand.New(rand.NewSource(seed))
	sig := make([]uint32, n)
	used := make(map[uint32]bool, n)
	for i := range sig {
		for {
			s := rng.Uint32()
			if !used[s] {
				used[s] = true
				sig[i] = s
				break
			}
		}
	}
	preds := g.predecessors()
	c := &CFCSS{
		sig:    sig,
		diff:   make([]uint32, n),
		adjust: make([]bool, n),
		dOut:   make([]uint32, n),
		resync: true,
	}
	// For every block choose a base predecessor; d_i = s_i ^ s_base. Blocks
	// with multiple predecessors are branch-fan-in: every predecessor p
	// must set D = s_base ^ s_p before transferring control.
	needD := make(map[BlockID]uint32, n) // predecessor → required D value
	for v := 0; v < n; v++ {
		ps := preds[v]
		if len(ps) == 0 {
			c.diff[v] = 0 // entry block: G is seeded with its signature
			continue
		}
		base := ps[0]
		c.diff[v] = sig[v] ^ sig[base]
		if len(ps) > 1 {
			c.adjust[v] = true
			for _, p := range ps {
				want := sig[base] ^ sig[p]
				if prev, ok := needD[p]; ok && prev != want {
					// p already assigns a different D for another fan-in
					// successor: signature aliasing.
					c.aliased = append(c.aliased, BlockID(v))
					continue
				}
				needD[p] = want
			}
		}
	}
	for p, dv := range needD {
		c.dOut[p] = dv
	}
	return c, nil
}

// Reset implements Checker.
func (c *CFCSS) Reset(entry BlockID) {
	c.g = c.sig[entry]
	c.d = c.dOut[entry]
}

// Enter implements Checker: G = G ⊕ d_b (⊕ D for fan-in blocks), then
// compare with s_b; finally publish this block's D assignment.
func (c *CFCSS) Enter(b BlockID) bool {
	g := c.g ^ c.diff[b]
	if c.adjust[b] {
		g ^= c.d
	}
	ok := g == c.sig[b]
	if !ok {
		c.detected++
		if c.resync {
			g = c.sig[b]
		}
	}
	c.g = g
	c.d = c.dOut[b]
	return ok
}

// Detected implements Checker.
func (c *CFCSS) Detected() uint64 { return c.detected }

// Aliased reports the fan-in blocks whose predecessors required
// conflicting adjusting signatures; illegal jumps between aliased paths
// are undetectable — a structural limitation the look-up table does not
// share.
func (c *CFCSS) Aliased() []BlockID {
	out := make([]BlockID, len(c.aliased))
	copy(out, c.aliased)
	return out
}

// InstrumentationPoints reports how many code sites CFCSS must modify: a
// signature update+check in every block plus a D assignment in every
// predecessor of a fan-in block.
func (c *CFCSS) InstrumentationPoints() int {
	points := len(c.sig)
	for _, d := range c.dOut {
		if d != 0 {
			points++
		}
	}
	return points
}
