package wal

// Crash-recovery harness: the parent test re-execs this test binary as
// a writer child (TestWALCrashWriterHelper), lets it append and
// group-commit against a shared directory while reporting every
// acknowledged (fsync-covered) sequence number on stdout, then SIGKILLs
// it at an arbitrary moment — mid-append, mid-group-commit, mid-
// rotation, wherever the clock lands. The invariant under test is the
// WAL's durability contract:
//
//   - every record acknowledged before the kill replays intact and in
//     order (bit-identical to the reference the generator rebuilds),
//   - the unsynced tail is truncated by recovery and accounted, never
//     silently mangled into the history,
//   - a reopened writer continues the sequence without gaps.

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

const (
	crashHelperEnv = "SWWD_WAL_CRASH_HELPER"
	crashDirEnv    = "SWWD_WAL_CRASH_DIR"
	walSoakEnv     = "SWWD_WAL_SOAK"
)

// TestWALCrashWriterHelper is the re-exec'd child, not a test: it
// appends deterministic detections as fast as it can, explicitly
// group-commits every few records and prints "SYNCED <seq>" after each
// completed fsync until it is killed.
func TestWALCrashWriterHelper(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("crash-harness child; run via TestWALCrashRecovery")
	}
	dir := os.Getenv(crashDirEnv)
	w, err := Open(dir,
		WithSegmentBytes(4096),        // rotate often: crashes land near boundaries too
		WithRetainSegments(1_000_000), // the parent replays from seq 1
		WithSyncInterval(time.Millisecond))
	if err != nil {
		fmt.Printf("OPENFAIL %v\n", err)
		os.Exit(1)
	}
	for i := w.Recovery().LastSeq + 1; ; i++ {
		if !w.AppendDetection(det(i)) {
			// Ring full: let the writer catch up, retry the same record.
			i--
			continue
		}
		if i%7 == 0 {
			if err := w.Sync(); err != nil {
				fmt.Printf("SYNCFAIL %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("SYNCED %d\n", w.Stats().SyncedSeq)
		}
	}
}

// crashRound runs one child against dir, kills it after killAfter, and
// returns the last sequence number the child acknowledged.
func crashRound(t *testing.T, dir string, killAfter time.Duration) uint64 {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestWALCrashWriterHelper$")
	cmd.Env = append(os.Environ(), crashHelperEnv+"=1", crashDirEnv+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	acked := make(chan uint64, 4096)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			if seq, ok := strings.CutPrefix(line, "SYNCED "); ok {
				n, err := strconv.ParseUint(seq, 10, 64)
				if err == nil {
					acked <- n
				}
				continue
			}
			// Anything else is a child failure report.
			panic("wal crash child: " + line)
		}
		close(acked)
	}()

	// Wait for the first ack so the kill always lands on a live log,
	// then let the child run and pull the trigger mid-flight.
	var lastAcked uint64
	select {
	case lastAcked = <-acked:
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("child produced no ack within 10s")
	}
	deadline := time.After(killAfter)
drain:
	for {
		select {
		case n, ok := <-acked:
			if !ok {
				break drain
			}
			lastAcked = n
		case <-deadline:
			break drain
		}
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no deferred cleanup runs
		t.Fatalf("kill: %v", err)
	}
	// Collect stragglers the pipe still holds: an fsync that completed
	// before the kill counts as acknowledged even if we read its report
	// after pulling the trigger.
	for n := range acked {
		lastAcked = n
	}
	_ = cmd.Wait()
	if lastAcked == 0 {
		t.Fatal("child acknowledged nothing")
	}
	return lastAcked
}

// verifyAfterCrash asserts the durability contract for dir after a
// kill: the acknowledged prefix replays bit-identically, recovery
// truncates and accounts the tail, and the log accepts appends again.
func verifyAfterCrash(t *testing.T, dir string, lastAcked uint64) {
	t.Helper()
	// Read-only replay of the crashed directory. The history must be a
	// clean contiguous prefix from seq 1 covering at least lastAcked;
	// anything beyond it is the unacknowledged-but-written tail, which
	// may legitimately survive.
	h, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h.FirstSeq != 1 {
		t.Fatalf("replay starts at seq %d, want 1", h.FirstSeq)
	}
	if h.LastSeq < lastAcked {
		t.Fatalf("replay ends at seq %d, but %d was acknowledged", h.LastSeq, lastAcked)
	}
	for i, r := range h.Records {
		wantSeq := uint64(i) + 1
		if r.Seq != wantSeq {
			t.Fatalf("record %d carries seq %d", i, r.Seq)
		}
		if r.Kind != KindDetection || !reflect.DeepEqual(r.Det, det(wantSeq)) {
			t.Fatalf("record %d not bit-identical to reference: %+v", i, r.Det)
		}
	}

	// The replayed view of the acknowledged prefix must be bit-identical
	// to the reference view built from the generator alone.
	ackedHist := &History{Records: h.Records[:lastAcked]}
	ref := &History{}
	for i := uint64(1); i <= lastAcked; i++ {
		ref.Records = append(ref.Records, Record{Seq: i, Kind: KindDetection, Det: det(i)})
	}
	if got, want := ackedHist.View(), ref.View(); !reflect.DeepEqual(got, want) {
		t.Fatalf("acknowledged view diverges from reference:\n got %+v\nwant %+v", got, want)
	}

	// Recovery truncates whatever torn tail the kill produced; the
	// reopened log must be append-ready and replay clean afterwards.
	w, err := Open(dir, WithRetainSegments(1_000_000), WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	rs := w.Recovery()
	if rs.LastSeq < lastAcked {
		t.Fatalf("recovery lost acknowledged records: recovered to %d, acked %d", rs.LastSeq, lastAcked)
	}
	if rs.LastSeq != h.LastSeq {
		t.Fatalf("recovery kept %d, read-only replay saw %d", rs.LastSeq, h.LastSeq)
	}
	probe := rs.LastSeq + 1
	if !w.AppendDetection(det(probe)) {
		t.Fatal("post-recovery append refused")
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	h2, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h2.TornBytes != 0 || h2.TornSegments != 0 {
		t.Fatalf("post-recovery replay still torn: %+v", h2)
	}
	if h2.LastSeq != probe {
		t.Fatalf("post-recovery replay ends at %d, want %d", h2.LastSeq, probe)
	}
	// Remove the probe so a following round's generator stays aligned
	// with the sequence numbers (probe == det(probe) by construction,
	// so nothing is actually misaligned — rounds simply continue).
}

// TestWALCrashRecovery is the tier-1 crash test: three kill -9 rounds
// against one directory, each verifying the durability contract and
// chaining recovery into the next round's writer.
func TestWALCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	for round, killAfter := range []time.Duration{
		60 * time.Millisecond, 35 * time.Millisecond, 90 * time.Millisecond,
	} {
		lastAcked := crashRound(t, dir, killAfter)
		verifyAfterCrash(t, dir, lastAcked)
		t.Logf("round %d: killed after %v, acked seq %d verified", round, killAfter, lastAcked)
	}
}

// TestWALCrashSoak is the long randomized tier (make wal-soak): many
// rounds with jittered kill points, exercising kills during rotation,
// group commit and recovery itself.
func TestWALCrashSoak(t *testing.T) {
	if os.Getenv(walSoakEnv) == "" {
		t.Skipf("set %s=1 (make wal-soak) to run the randomized crash soak", walSoakEnv)
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	const rounds = 20
	for round := 0; round < rounds; round++ {
		killAfter := time.Duration(10+rng.Intn(120)) * time.Millisecond
		lastAcked := crashRound(t, dir, killAfter)
		verifyAfterCrash(t, dir, lastAcked)
		t.Logf("round %d/%d: killed after %v, acked seq %d verified", round+1, rounds, killAfter, lastAcked)
	}
}
