// Multi-socket listener front end: N UDP sockets bound to one address
// via SO_REUSEPORT, each drained by its own batched read loop feeding
// the shard workers through the shared free list.
//
// The kernel spreads inbound flows across the sockets of a reuseport
// group by a hash of the 4-tuple, so one reporter's datagrams land on
// one socket in the steady state and each read loop touches a disjoint
// slice of the fleet. Correctness never depends on that affinity: the
// node-to-shard pinning (node % Shards) serializes every node's frames
// behind a single worker regardless of the receiving socket, and any
// cross-socket reordering — a reporter redialing onto a new flow hash
// mid-session — surfaces through the existing sequence discipline as
// duplicate drops or gaps, exactly like network-level reordering.
package ingest

import (
	"context"
	"net"
	"net/netip"
	"sync/atomic"

	"swwd/internal/wire"
)

// listenerState is one listener socket and its receive counters. The
// counters have a single writer (the listener's read loop) and are read
// by ListenerStats.
type listenerState struct {
	conn     *net.UDPConn
	packets  atomic.Uint64
	batches  atomic.Uint64
	maxBatch atomic.Uint64
}

// shardState is one shard worker's queue plus its depth high-water
// mark, maintained at enqueue time by the read loops.
type shardState struct {
	ch  chan *packet
	hwm atomic.Uint64
}

// reusePortEnabled gates the SO_REUSEPORT bind path; it starts at the
// platform capability (reuseport_*.go) and exists as a variable so
// tests can force the single-socket fallback.
var reusePortEnabled = reusePortSupported

// listenConns binds addr n times via SO_REUSEPORT, or once without it.
// The boolean result reports whether the reuseport group was used. The
// fallback triggers when n <= 1, when the platform lacks SO_REUSEPORT,
// or when the kernel refuses it on the first socket; a bind failure
// after the first socket accepted SO_REUSEPORT is a real error.
func listenConns(addr string, n int) ([]*net.UDPConn, error) {
	if n <= 1 || !reusePortEnabled {
		c, err := listenPlain(addr)
		if err != nil {
			return nil, err
		}
		return []*net.UDPConn{c}, nil
	}
	lc := net.ListenConfig{Control: reusePortControl}
	ctx := context.Background()
	pc, err := lc.ListenPacket(ctx, "udp", addr)
	if err != nil {
		// The kernel (or the Control hook) refused SO_REUSEPORT:
		// degrade to the single-socket path rather than fail startup.
		c, perr := listenPlain(addr)
		if perr != nil {
			return nil, perr
		}
		return []*net.UDPConn{c}, nil
	}
	conns := []*net.UDPConn{pc.(*net.UDPConn)}
	// Re-bind the *resolved* address so ":0" ephemeral-port listens
	// join the first socket's group instead of picking fresh ports.
	bound := conns[0].LocalAddr().String()
	for i := 1; i < n; i++ {
		pc, err := lc.ListenPacket(ctx, "udp", bound)
		if err != nil {
			for _, c := range conns {
				_ = c.Close()
			}
			return nil, err
		}
		conns = append(conns, pc.(*net.UDPConn))
	}
	return conns, nil
}

// listenPlain is the single-socket bind shared by the n<=1 and the
// no-SO_REUSEPORT paths.
func listenPlain(addr string) (*net.UDPConn, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.ListenUDP("udp", udpAddr)
}

// readLoop drains one listener socket: it arms up to BatchSize receive
// slots with free-list buffers, receives a batch of datagrams directly
// into them (zero-copy — the kernel writes into the same buffer the
// shard worker will decode) and dispatches each to its owning shard.
// Slots the free list could not fill receive into a shared scratch
// buffer; those datagrams are dropped and accounted as BuffersExhausted
// so pool pressure is visible instead of silent.
func (s *Server) readLoop(ls *listenerState) {
	defer s.readerWG.Done()
	r := newBatchReader(ls.conn, s.cfg.BatchSize)
	batch := r.Batch()
	pkts := make([]*packet, batch)
	bufs := make([][]byte, batch)
	sizes := make([]int, batch)
	srcs := make([]netip.AddrPort, batch)
	var scratch []byte // shared by every dry slot: those datagrams are dropped anyway
	for {
		for i := 0; i < batch; i++ {
			if pkts[i] != nil {
				continue // still armed from the previous receive
			}
			select {
			case p := <-s.free:
				pkts[i] = p
				bufs[i] = p.buf
			default:
				if scratch == nil {
					scratch = make([]byte, s.cfg.MaxPacket)
				}
				bufs[i] = scratch
			}
		}
		m, err := r.ReadBatch(bufs, sizes, srcs)
		if err != nil {
			if isClosed(err) {
				// Hand the armed buffers back before exiting so a
				// closed socket never leaks pool capacity.
				for i, p := range pkts {
					if p != nil {
						pkts[i] = nil
						s.free <- p
					}
				}
				return
			}
			s.readErrs.Add(1)
			continue
		}
		ls.batches.Add(1)
		ls.packets.Add(uint64(m))
		if um := uint64(m); um > ls.maxBatch.Load() {
			ls.maxBatch.Store(um) // single writer per listener
		}
		for i := 0; i < m; i++ {
			p := pkts[i]
			if p == nil {
				// The free list was dry when the slot was armed: the
				// datagram landed in scratch and is gone.
				s.exhausted.Add(1)
				s.dropped.Add(1)
				continue
			}
			pkts[i] = nil
			p.n = sizes[i]
			p.src = srcs[i]
			s.dispatch(p)
		}
	}
}

// dispatch peeks the node ID and hands the packet — the same free-list
// buffer the kernel filled, never a copy — to the owning shard worker.
func (s *Server) dispatch(p *packet) {
	node, err := wire.PeekNode(p.buf[:p.n])
	if err != nil {
		s.frames.Add(1)
		s.bytes.Add(uint64(p.n))
		s.decodeErrs.Add(1)
		s.free <- p
		return
	}
	sh := s.shards[node%uint32(len(s.shards))]
	select {
	case sh.ch <- p:
		// Track the enqueue-time depth high-water mark. len(ch) is
		// approximate under concurrent listeners; the gauge separates
		// listener starvation (low HWM, drops at the free list) from
		// shard overload (HWM pinned at capacity).
		if d := uint64(len(sh.ch)); d > sh.hwm.Load() {
			for {
				cur := sh.hwm.Load()
				if d <= cur || sh.hwm.CompareAndSwap(cur, d) {
					break
				}
			}
		}
	default:
		s.dropped.Add(1)
		s.free <- p
	}
}
