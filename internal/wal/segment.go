package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment files are named <firstseq>.wal with the first record's WAL
// sequence number zero-padded hex, so lexical order is replay order.
// Each begins with a 16-byte header:
//
//	[0:8)   magic "SWWDWAL\x01"
//	[8:12)  format version (little-endian u32, currently 1)
//	[12:16) reserved (zero)
//
// Records follow back to back in the frame layout of record.go. A
// segment is immutable once the writer rotates past it; only the
// newest segment ever grows, and only recovery ever truncates.
const (
	segMagic      = "SWWDWAL\x01"
	segVersion    = 1
	segHeaderSize = 16
	segSuffix     = ".wal"
)

// ErrSegmentHeader is reported for a segment whose header is missing,
// foreign or from an unreadable future version.
var ErrSegmentHeader = fmt.Errorf("wal: bad segment header")

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%016x%s", firstSeq, segSuffix)
}

func parseSegmentName(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, segSuffix)
	if !ok || len(base) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(base, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// segInfo is one on-disk segment in listing order.
type segInfo struct {
	path     string
	firstSeq uint64
	size     int64
	modNs    int64
}

// listSegments returns the directory's segments sorted by first
// sequence number. Foreign files are ignored.
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segInfo{
			path:     filepath.Join(dir, e.Name()),
			firstSeq: seq,
			size:     fi.Size(),
			modNs:    fi.ModTime().UnixNano(),
		})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// createSegment opens a fresh segment for firstSeq and writes its
// header (not yet synced; the first group commit covers it).
func createSegment(dir string, firstSeq uint64) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, segmentName(firstSeq)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// checkSegmentHeader validates the first segHeaderSize bytes of a
// segment file's contents.
func checkSegmentHeader(data []byte) error {
	if len(data) < segHeaderSize || string(data[:8]) != segMagic {
		return ErrSegmentHeader
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != segVersion {
		return fmt.Errorf("%w: version %d", ErrSegmentHeader, v)
	}
	return nil
}

// scanSegment walks the records of one segment's contents, calling fn
// for each intact frame, and returns the byte offset just past the last
// intact record plus the error that stopped the scan (nil at a clean
// end-of-file, ErrTorn/ErrCorrupt at a torn tail). wantSeq enforces
// sequence continuity: the first record must carry *wantSeq (0 accepts
// any start), and each record must follow its predecessor without a
// gap — a break is corruption and stops the scan.
func scanSegment(data []byte, wantSeq *uint64, fn func(*Record)) (int64, error) {
	if err := checkSegmentHeader(data); err != nil {
		return 0, err
	}
	off := int64(segHeaderSize)
	var rec Record
	for int(off) < len(data) {
		n, err := decodeRecord(data[off:], &rec)
		if err != nil {
			return off, err
		}
		if *wantSeq != 0 && rec.Seq != *wantSeq {
			return off, fmt.Errorf("%w: sequence %d where %d expected", ErrCorrupt, rec.Seq, *wantSeq)
		}
		if fn != nil {
			fn(&rec)
		}
		*wantSeq = rec.Seq + 1
		off += int64(n)
	}
	return off, nil
}
