// Package wal is the durable fault-history log of the Software
// Watchdog: an append-only, segmented write-ahead log that streams
// journal detections, treatment actions and ingest counter deltas to
// disk off the hot path, survives crashes, and replays into a
// Snapshot-equivalent view for "what happened at 03:12" queries.
//
// # Why a WAL
//
// The in-core fault-event journal (internal/core journal.go) is a
// volatile ring: a daemon restart erases exactly the evidence a fleet
// supervisor needs after an incident. The paper's watchdog exists to
// record dependability evidence; this package is the recording half at
// fleet scale — the persistent event memory of a central
// health-monitoring node.
//
// # Architecture
//
//	producers ──► lock-free ring ──► writer goroutine ──► segment files
//	(journal sink,  (bounded MPMC,     (group-commit        (CRC32C-framed
//	 treat actions,  drop-counted)      batching, fsync      records, rotation,
//	 ingest deltas)                     cadence)             retention)
//
// Producers hand fixed-size records to a bounded lock-free ring and
// return immediately — a full ring drops the record and counts it, so
// the detection and ingest paths never block on disk. A single writer
// goroutine drains the ring in batches, assigns monotonic sequence
// numbers, appends CRC32C-framed records to the current segment and
// fsyncs on a configurable cadence (group commit). A record is
// *acknowledged* — guaranteed to survive kill -9 — once a completed
// fsync covers it; Stats.SyncedSeq is the durability horizon.
//
// Recovery on Open scans the segments in order, verifies every frame's
// CRC and sequence continuity, truncates the torn tail the crash left
// behind and resumes appending after the last intact record. Replay
// never mutates: it stops at the first invalid frame and reports how
// many torn bytes it skipped.
package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"swwd/internal/core"
)

// Kind classifies one WAL record.
type Kind uint8

const (
	// KindDetection is a fault detection streamed from the in-core
	// journal, freeze-frame included.
	KindDetection Kind = iota + 1
	// KindAction is one executed fault-treatment action.
	KindAction
	// KindDelta is a periodic snapshot of the ingest server's counter
	// deltas since the previous delta record.
	KindDelta
	kindMax
)

// String names the kind for logs and the /history endpoint.
func (k Kind) String() string {
	switch k {
	case KindDetection:
		return "detection"
	case KindAction:
		return "action"
	case KindDelta:
		return "ingest-delta"
	}
	return "unknown"
}

// Detection is the durable form of one journal entry: the detection
// plus its freeze-frame, exactly as recorded by the in-core journal.
// JournalSeq is the journal's monotonic entry sequence (also exported
// as swwd_journal_seq), so WAL records, live journal reads and /history
// results can be correlated and dedup'd across restarts.
type Detection struct {
	JournalSeq uint64 `json:"journal_seq"`
	SimTimeNs  int64  `json:"sim_time_ns"`
	Cycle      uint64 `json:"cycle"`
	Kind       uint8  `json:"kind"`

	Runnable    int32 `json:"runnable"`
	Task        int32 `json:"task"`
	App         int32 `json:"app"`
	Predecessor int32 `json:"predecessor"`

	Observed   int32 `json:"observed"`
	Expected   int32 `json:"expected"`
	Correlated bool  `json:"correlated"`

	// Freeze-frame: the runnable's live monitoring counters at
	// detection time, plus its lifetime beat count and cumulative
	// error-indication vector *after* this detection.
	Active         bool   `json:"active"`
	AC             int32  `json:"ac"`
	ARC            int32  `json:"arc"`
	CCA            int32  `json:"cca"`
	CCAR           int32  `json:"ccar"`
	Beats          uint64 `json:"beats"`
	ErrAliveness   uint64 `json:"err_aliveness"`
	ErrArrivalRate uint64 `json:"err_arrival_rate"`
	ErrProgramFlow uint64 `json:"err_program_flow"`
}

// FromJournal converts an in-core journal entry to its durable form.
func FromJournal(e core.JournalEntry) Detection {
	return Detection{
		JournalSeq:     e.Seq,
		SimTimeNs:      int64(e.Time),
		Cycle:          e.Cycle,
		Kind:           uint8(e.Kind),
		Runnable:       int32(e.Runnable),
		Task:           int32(e.Task),
		App:            int32(e.App),
		Predecessor:    int32(e.Predecessor),
		Observed:       int32(e.Observed),
		Expected:       int32(e.Expected),
		Correlated:     e.Correlated,
		Active:         e.Frame.Active,
		AC:             int32(e.Frame.AC),
		ARC:            int32(e.Frame.ARC),
		CCA:            int32(e.Frame.CCA),
		CCAR:           int32(e.Frame.CCAR),
		Beats:          e.Beats,
		ErrAliveness:   e.ErrAliveness,
		ErrArrivalRate: e.ErrArrivalRate,
		ErrProgramFlow: e.ErrProgramFlow,
	}
}

// Action is the durable form of one executed treatment action
// (internal/treat Action semantics: Node acted on, Cause traced to).
// ExecErr marks actions whose executor reported an error.
type Action struct {
	Kind      uint8  `json:"kind"`
	Node      uint32 `json:"node"`
	Cause     uint32 `json:"cause"`
	SimTimeNs int64  `json:"sim_time_ns"`
	ExecErr   bool   `json:"exec_err"`
}

// Delta is one periodic snapshot of ingest counter deltas: every field
// is the increase since the previous Delta record (ingest.Stats.Delta).
// Summing a contiguous run of deltas reconstructs the counters over any
// replayed window.
type Delta struct {
	Frames           uint64 `json:"frames"`
	Bytes            uint64 `json:"bytes"`
	Accepted         uint64 `json:"accepted"`
	DecodeErrors     uint64 `json:"decode_errors"`
	UnknownNode      uint64 `json:"unknown_node"`
	SeqGaps          uint64 `json:"seq_gaps"`
	SeqGapEvents     uint64 `json:"seq_gap_events"`
	DuplicateDrops   uint64 `json:"duplicate_drops"`
	NodeRestarts     uint64 `json:"node_restarts"`
	StaleEpochDrops  uint64 `json:"stale_epoch_drops"`
	IntervalMismatch uint64 `json:"interval_mismatch"`
	DroppedPackets   uint64 `json:"dropped_packets"`
	BuffersExhausted uint64 `json:"buffers_exhausted"`
	ReadErrors       uint64 `json:"read_errors"`
	CommandsSent     uint64 `json:"commands_sent"`
	CommandsAcked    uint64 `json:"commands_acked"`
	CommandsDropped  uint64 `json:"commands_dropped"`
	CommandStaleAcks uint64 `json:"command_stale_acks"`
}

// IsZero reports whether no counter moved — zero deltas are not worth a
// record.
func (d Delta) IsZero() bool { return d == Delta{} }

// Record is one WAL entry: the monotonic WAL sequence number, the
// wall-clock append time, and exactly one kind-selected payload. The
// struct is fixed-size and pointer-free so the ring hand-off is one
// copy and zero allocations.
type Record struct {
	// Seq is the record's WAL sequence number: contiguous, ascending,
	// assigned by the writer goroutine, monotonic across restarts.
	Seq uint64 `json:"seq"`
	// TimeNs is the wall-clock append time in Unix nanoseconds — the
	// time base of /history -since/-until windows.
	TimeNs int64 `json:"time_ns"`
	Kind   Kind  `json:"record_kind"`

	Det   Detection `json:"detection,omitempty"`
	Act   Action    `json:"action,omitempty"`
	Delta Delta     `json:"delta,omitempty"`
}

// Frame layout (little-endian):
//
//	u32 length   — byte count of the body that follows the CRC
//	u32 crc32c   — Castagnoli CRC over the body
//	body: u8 kind | u64 seq | i64 timeNs | fixed payload(kind)
//
// The length and CRC let recovery detect a torn tail: a partially
// written frame fails the length bound or the CRC and scanning stops
// exactly at the last intact record.
const (
	frameOverhead = 8 // length + crc
	recPrefix     = 1 + 8 + 8

	detPayloadLen   = 8 + 8 + 8 + 1 + 4*4 + 4 + 4 + 1 + 1 + 4*4 + 8 + 3*8
	actPayloadLen   = 1 + 4 + 4 + 8 + 1
	deltaPayloadLen = 18 * 8

	// maxBody bounds the length field during decode; anything larger is
	// corruption (or a future record kind this build cannot read).
	maxBody = recPrefix + deltaPayloadLen
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrTorn marks a frame that ends past the available
// bytes (an interrupted append); ErrCorrupt a frame whose CRC, kind or
// payload size is wrong. Recovery treats both as end-of-log.
var (
	ErrTorn    = errors.New("wal: torn record")
	ErrCorrupt = errors.New("wal: corrupt record")
)

func payloadLen(k Kind) int {
	switch k {
	case KindDetection:
		return detPayloadLen
	case KindAction:
		return actPayloadLen
	case KindDelta:
		return deltaPayloadLen
	}
	return -1
}

// appendRecord encodes r onto dst and returns the extended slice.
func appendRecord(dst []byte, r *Record) []byte {
	n := recPrefix + payloadLen(r.Kind)
	start := len(dst)
	dst = append(dst, make([]byte, frameOverhead)...)
	dst = append(dst, byte(r.Kind))
	dst = appendU64(dst, r.Seq)
	dst = appendU64(dst, uint64(r.TimeNs))
	switch r.Kind {
	case KindDetection:
		d := &r.Det
		dst = appendU64(dst, d.JournalSeq)
		dst = appendU64(dst, uint64(d.SimTimeNs))
		dst = appendU64(dst, d.Cycle)
		dst = append(dst, d.Kind)
		dst = appendU32(dst, uint32(d.Runnable))
		dst = appendU32(dst, uint32(d.Task))
		dst = appendU32(dst, uint32(d.App))
		dst = appendU32(dst, uint32(d.Predecessor))
		dst = appendU32(dst, uint32(d.Observed))
		dst = appendU32(dst, uint32(d.Expected))
		dst = append(dst, b2u8(d.Correlated), b2u8(d.Active))
		dst = appendU32(dst, uint32(d.AC))
		dst = appendU32(dst, uint32(d.ARC))
		dst = appendU32(dst, uint32(d.CCA))
		dst = appendU32(dst, uint32(d.CCAR))
		dst = appendU64(dst, d.Beats)
		dst = appendU64(dst, d.ErrAliveness)
		dst = appendU64(dst, d.ErrArrivalRate)
		dst = appendU64(dst, d.ErrProgramFlow)
	case KindAction:
		a := &r.Act
		dst = append(dst, a.Kind)
		dst = appendU32(dst, a.Node)
		dst = appendU32(dst, a.Cause)
		dst = appendU64(dst, uint64(a.SimTimeNs))
		dst = append(dst, b2u8(a.ExecErr))
	case KindDelta:
		d := &r.Delta
		for _, v := range [...]uint64{
			d.Frames, d.Bytes, d.Accepted, d.DecodeErrors, d.UnknownNode,
			d.SeqGaps, d.SeqGapEvents, d.DuplicateDrops, d.NodeRestarts,
			d.StaleEpochDrops, d.IntervalMismatch, d.DroppedPackets,
			d.BuffersExhausted, d.ReadErrors, d.CommandsSent,
			d.CommandsAcked, d.CommandsDropped, d.CommandStaleAcks,
		} {
			dst = appendU64(dst, v)
		}
	default:
		panic("wal: appendRecord of unknown kind")
	}
	body := dst[start+frameOverhead:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(n))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, castagnoli))
	return dst
}

// decodeRecord parses the frame at the head of data into r and reports
// the frame's total byte length. ErrTorn / ErrCorrupt mark end-of-log.
func decodeRecord(data []byte, r *Record) (int, error) {
	if len(data) < frameOverhead {
		return 0, ErrTorn
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n < recPrefix || n > maxBody {
		return 0, ErrCorrupt
	}
	if len(data) < frameOverhead+n {
		return 0, ErrTorn
	}
	body := data[frameOverhead : frameOverhead+n]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[4:]) {
		return 0, ErrCorrupt
	}
	k := Kind(body[0])
	if pl := payloadLen(k); pl < 0 || recPrefix+pl != n {
		return 0, ErrCorrupt
	}
	*r = Record{
		Kind:   k,
		Seq:    binary.LittleEndian.Uint64(body[1:]),
		TimeNs: int64(binary.LittleEndian.Uint64(body[9:])),
	}
	p := body[recPrefix:]
	switch k {
	case KindDetection:
		d := &r.Det
		d.JournalSeq = getU64(p, 0)
		d.SimTimeNs = int64(getU64(p, 8))
		d.Cycle = getU64(p, 16)
		d.Kind = p[24]
		d.Runnable = int32(getU32(p, 25))
		d.Task = int32(getU32(p, 29))
		d.App = int32(getU32(p, 33))
		d.Predecessor = int32(getU32(p, 37))
		d.Observed = int32(getU32(p, 41))
		d.Expected = int32(getU32(p, 45))
		d.Correlated = p[49] != 0
		d.Active = p[50] != 0
		d.AC = int32(getU32(p, 51))
		d.ARC = int32(getU32(p, 55))
		d.CCA = int32(getU32(p, 59))
		d.CCAR = int32(getU32(p, 63))
		d.Beats = getU64(p, 67)
		d.ErrAliveness = getU64(p, 75)
		d.ErrArrivalRate = getU64(p, 83)
		d.ErrProgramFlow = getU64(p, 91)
	case KindAction:
		a := &r.Act
		a.Kind = p[0]
		a.Node = getU32(p, 1)
		a.Cause = getU32(p, 5)
		a.SimTimeNs = int64(getU64(p, 9))
		a.ExecErr = p[17] != 0
	case KindDelta:
		d := &r.Delta
		for i, f := range [...]*uint64{
			&d.Frames, &d.Bytes, &d.Accepted, &d.DecodeErrors, &d.UnknownNode,
			&d.SeqGaps, &d.SeqGapEvents, &d.DuplicateDrops, &d.NodeRestarts,
			&d.StaleEpochDrops, &d.IntervalMismatch, &d.DroppedPackets,
			&d.BuffersExhausted, &d.ReadErrors, &d.CommandsSent,
			&d.CommandsAcked, &d.CommandsDropped, &d.CommandStaleAcks,
		} {
			*f = getU64(p, i*8)
		}
	}
	return frameOverhead + n, nil
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func getU64(b []byte, off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
func getU32(b []byte, off int) uint32 { return binary.LittleEndian.Uint32(b[off:]) }

func b2u8(v bool) byte {
	if v {
		return 1
	}
	return 0
}
