package chaos

// The schedulable fault vocabulary. LinkFault covers everything the
// conn wrapper can do (loss, partition, duplication, reordering,
// byzantine mutation); RestartWave restarts reporters wholesale; and
// Injected bridges internal/inject — the process-level error-injection
// framework of the simulated-ECU campaigns — into the networked
// timeline, so one schedule can hang a runnable *under* network loss
// and the oracle can check the fault is still attributed to the
// runnable, not the link.

import (
	"fmt"
	"sort"
	"strings"

	"swwd/internal/inject"
)

// LinkFault applies Rules to a victim set for the step's duration.
type LinkFault struct {
	Nodes []uint32
	Rules Rules
}

// Describe implements Fault.
func (f *LinkFault) Describe() string {
	return fmt.Sprintf("link(nodes=%s rules=[%s])", nodeList(f.Nodes), f.Rules)
}

// Apply implements Fault.
func (f *LinkFault) Apply(rt *Runtime) error {
	for _, n := range f.Nodes {
		rt.Network.SetRules(n, f.Rules)
	}
	return nil
}

// Revert implements Fault.
func (f *LinkFault) Revert(rt *Runtime) error {
	for _, n := range f.Nodes {
		rt.Network.Clear(n)
	}
	return nil
}

// RestartWave restarts every listed reporter back to back: each victim
// is closed and redialed, producing a fresh session epoch — the
// thundering-herd shape when the victim set is the whole fleet.
// One-shot: schedule it with Step.For zero.
type RestartWave struct {
	Nodes []uint32
}

// Describe implements Fault.
func (f *RestartWave) Describe() string {
	return fmt.Sprintf("restart-wave(nodes=%s)", nodeList(f.Nodes))
}

// Apply implements Fault.
func (f *RestartWave) Apply(rt *Runtime) error {
	for _, n := range f.Nodes {
		if err := rt.RestartNode(n); err != nil {
			return fmt.Errorf("restart node %d: %w", n, err)
		}
	}
	return nil
}

// Revert implements Fault.
func (f *RestartWave) Revert(*Runtime) error { return nil }

// Injected wraps an inject.Injection built against the live Runtime.
// Make runs at Apply time because the injection needs runtime state
// (the beat loops, the fleet) that doesn't exist when the scenario is
// declared; Describe must not depend on it.
type Injected struct {
	Label string
	Make  func(rt *Runtime) inject.Injection

	inj inject.Injection
}

// Describe implements Fault.
func (f *Injected) Describe() string { return fmt.Sprintf("inject(%s)", f.Label) }

// Apply implements Fault.
func (f *Injected) Apply(rt *Runtime) error {
	f.inj = f.Make(rt)
	return f.inj.Apply()
}

// Revert implements Fault.
func (f *Injected) Revert(*Runtime) error {
	if f.inj == nil {
		return nil
	}
	err := f.inj.Revert()
	f.inj = nil
	return err
}

// HangRunnable is the process-level hang: node's beat loop stops
// beating runnable r while every other runnable (and the link frames
// carrying them) flows on. Held longer than the aliveness window it
// faults exactly that runnable.
func HangRunnable(node uint32, r int) *Injected {
	return &Injected{
		Label: fmt.Sprintf("hang-runnable(node=%d r=%d)", node, r),
		Make: func(rt *Runtime) inject.Injection {
			return &inject.Func{
				Label:    fmt.Sprintf("hang(node=%d r=%d)", node, r),
				OnApply:  func() error { rt.PauseRunnable(node, r); return nil },
				OnRevert: func() error { rt.ResumeRunnable(node, r); return nil },
			}
		},
	}
}

// nodeList renders a victim set deterministically.
func nodeList(nodes []uint32) string {
	sorted := append([]uint32(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	parts := make([]string, len(sorted))
	for i, n := range sorted {
		parts[i] = fmt.Sprintf("%d", n)
	}
	return strings.Join(parts, ",")
}
