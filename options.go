package swwd

import "time"

// Option configures a Watchdog built with New. Options are applied in
// order over the zero Config, so later options win; anything expressible
// with an Option can equally be set on a Config passed to NewFromConfig.
type Option func(*Config)

// WithClock sets the time source stamped onto reports. The default is a
// wall clock anchored at construction, the right choice for live
// services; simulations pass their virtual clock.
func WithClock(c Clock) Option {
	return func(cfg *Config) { cfg.Clock = c }
}

// WithSink attaches the receiver of fault reports and state events,
// typically a Fault Management Framework. Without a sink, output is
// discarded but stays queryable through Results and the state accessors.
func WithSink(s Sink) Option {
	return func(cfg *Config) { cfg.Sink = s }
}

// WithCyclePeriod documents the intended spacing of monitoring cycles
// (the Service ticker default). Zero or negative falls back to
// CyclePeriodDefault (10ms, the tick of the paper's plots).
func WithCyclePeriod(d time.Duration) Option {
	return func(cfg *Config) { cfg.CyclePeriod = d }
}

// WithThresholds sets the TSI error-indication-vector limits; the zero
// value means DefaultThresholds (3/3/3, the paper's evaluation setup).
func WithThresholds(t Thresholds) Option {
	return func(cfg *Config) { cfg.Thresholds = t }
}

// WithEagerArrivalCheck trips an arrival-rate error the moment ARC
// exceeds MaxArrivals instead of at period end (ablation; the paper
// checks "shortly before the next period begins").
func WithEagerArrivalCheck() Option {
	return func(cfg *Config) { cfg.EagerArrivalCheck = true }
}

// WithoutCorrelation disables the Fig. 6 collaboration between the PFC
// and heartbeat units (ablation): aliveness errors are accumulated even
// when a program-flow root cause was just detected on the same task.
func WithoutCorrelation() Option {
	return func(cfg *Config) { cfg.DisableCorrelation = true }
}

// WithCorrelationWindow sets how many cycles after a program-flow error
// an aliveness error on the same task is attributed to the flow root
// cause. Zero or negative means the default of 2.
func WithCorrelationWindow(cycles int) Option {
	return func(cfg *Config) { cfg.CorrelationWindowCycles = cycles }
}

// WithECUFaultyAppCount sets how many simultaneously faulty applications
// mark the global ECU state faulty. Zero or negative means the default
// of 2; 1 makes any faulty application an ECU-level fault.
func WithECUFaultyAppCount(n int) Option {
	return func(cfg *Config) { cfg.ECUFaultyAppCount = n }
}

// WithSweepShards enables the sharded parallel Cycle sweep: the
// runnables whose monitoring window expires in a cycle are split across
// a persistent pool of n workers. Useful for very large monitored
// populations; small due populations are swept serially regardless.
// 0 or 1 keeps the sweep serial. A watchdog with a worker pool should
// be retired with Close when no longer needed.
func WithSweepShards(n int) Option {
	return func(cfg *Config) { cfg.SweepShards = n }
}

// WithJournalSize sets the fault-event journal capacity in entries
// (rounded up to a power of two). Zero keeps the default of 256. The
// journal records every detection with a freeze-frame of the runnable's
// counters; when full, the oldest entry is overwritten and the drop
// counter advances. Journal writes happen only on the detection cold
// path, never on the healthy beat path.
func WithJournalSize(n int) Option {
	return func(cfg *Config) { cfg.JournalSize = n }
}

// WithoutJournal disables the fault-event journal entirely: Journal()
// returns nil and JournalStats() is zero. Detection counters and sinks
// are unaffected.
func WithoutJournal() Option {
	return func(cfg *Config) { cfg.JournalSize = -1 }
}

// WithJournalSink installs a per-detection callback: every journaled
// detection is handed to sink, Seq stamped, immediately after it lands
// in the ring. The sink runs on the detection cold path while the
// watchdog's internal mutex is held, so it MUST be non-blocking and
// must not call back into the watchdog — hand the entry off to a
// lock-free ring (the WAL does) or drop it. Ignored together with
// WithoutJournal. Watchdog.SetJournalSink replaces it at runtime.
func WithJournalSink(sink func(JournalEntry)) Option {
	return func(cfg *Config) { cfg.JournalSink = sink }
}

// WithMetricsSink installs a telemetry callback: every everyCycles
// monitoring cycles (zero means 100) the watchdog assembles a Snapshot
// and hands it to sink on the goroutine that drove the Cycle. The
// pointed-to Snapshot is a buffer the watchdog reuses across emissions —
// copy whatever must outlive the call. Typical use is pushing gauges to
// a metrics registry without polling from a second goroutine.
func WithMetricsSink(sink func(*Snapshot), everyCycles int) Option {
	return func(cfg *Config) {
		cfg.MetricsSink = sink
		cfg.MetricsEveryCycles = everyCycles
	}
}

// WithLegacySweep selects the retired O(N) full-table Cycle sweep
// instead of the due-cycle timer wheel. It exists as the bit-identical
// reference for equivalence testing and benchmarking; production
// deployments should not use it.
func WithLegacySweep() Option {
	return func(cfg *Config) { cfg.LegacySweep = true }
}

// WithEstimatorWindow enables the online calibration estimator: every
// cycles monitoring cycles the per-runnable banked beat counts are
// sampled into one observation window (arrival-rate EWMA, extremes and
// a quantile sketch), queryable via Watchdog.Estimator and feeding
// SuggestHypotheses. Sampling happens on the goroutine that called
// Cycle; the heartbeat hot path is unchanged.
func WithEstimatorWindow(cycles int) Option {
	return func(cfg *Config) { cfg.EstimatorWindowCycles = cycles }
}
