package osek

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// quickRig builds n single-runnable tasks with the given priorities and
// execution times.
func quickRig(priorities []int, execs []time.Duration) (*sim.Kernel, *OS, []runnable.TaskID, []runnable.ID, error) {
	k := sim.NewKernel()
	m := runnable.NewModel()
	app, err := m.AddApp("A", runnable.QM)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	tids := make([]runnable.TaskID, len(priorities))
	rids := make([]runnable.ID, len(priorities))
	for i, p := range priorities {
		tids[i], err = m.AddTask(app, "T"+string(rune('A'+i%26))+string(rune('0'+i/26)), p)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		rids[i], err = m.AddRunnable(tids[i], "R"+string(rune('A'+i%26))+string(rune('0'+i/26)), execs[i], runnable.QM)
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	if err := m.Freeze(); err != nil {
		return nil, nil, nil, nil, err
	}
	o, err := New(Config{Model: m, Kernel: k})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	for i, tid := range tids {
		if err := o.DefineTask(tid, TaskAttrs{MaxActivations: 8}, Program{Exec{Runnable: rids[i]}}); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	if err := o.Start(); err != nil {
		return nil, nil, nil, nil, err
	}
	return k, o, tids, rids, nil
}

// Property: tasks with distinct priorities activated at the same instant
// complete in strictly descending priority order, and the makespan equals
// the sum of execution times (work conservation, no idle gaps).
func TestQuickPriorityOrderAndWorkConservation(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		n := int(count%6) + 2
		rng := rand.New(rand.NewSource(seed))
		prios := rng.Perm(n) // distinct priorities 0..n-1
		execs := make([]time.Duration, n)
		var total time.Duration
		for i := range execs {
			execs[i] = time.Duration(rng.Intn(9)+1) * time.Millisecond
			total += execs[i]
		}
		k, o, tids, rids, err := quickRig(prios, execs)
		if err != nil {
			return false
		}
		var endOrder []runnable.ID
		var lastEnd sim.Time
		o.AddObserver(ObserverFuncs{OnRunnableEnd: func(rid runnable.ID, _ runnable.TaskID) {
			endOrder = append(endOrder, rid)
			lastEnd = k.Now()
		}})
		for _, tid := range tids {
			if err := o.ActivateTask(tid); err != nil {
				return false
			}
		}
		if err := k.RunUntilIdle(); err != nil {
			return false
		}
		if len(endOrder) != n {
			return false
		}
		// Completion order: strictly descending priority.
		prioOf := make(map[runnable.ID]int, n)
		for i, rid := range rids {
			prioOf[rid] = prios[i]
		}
		for i := 1; i < n; i++ {
			if prioOf[endOrder[i]] > prioOf[endOrder[i-1]] {
				return false
			}
		}
		return lastEnd == sim.Time(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: no activation is lost — every accepted ActivateTask leads to
// exactly one completed execution of the task's runnable.
func TestQuickActivationConservation(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		n := int(count%4) + 1
		rng := rand.New(rand.NewSource(seed))
		prios := rng.Perm(n)
		execs := make([]time.Duration, n)
		for i := range execs {
			execs[i] = time.Duration(rng.Intn(3)+1) * time.Millisecond
		}
		k, o, tids, rids, err := quickRig(prios, execs)
		if err != nil {
			return false
		}
		accepted := make([]uint64, n)
		// Random activations over 200ms of virtual time.
		for i := 0; i < 60; i++ {
			at := sim.Time(rng.Intn(200)) * sim.Millisecond
			idx := rng.Intn(n)
			k.At(at, func() {
				if err := o.ActivateTask(tids[idx]); err == nil {
					accepted[idx]++
				}
			})
		}
		if err := k.RunUntilIdle(); err != nil {
			return false
		}
		for i := range tids {
			if o.ExecCount(rids[i]) != accepted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinism — the same random scenario replayed on a fresh
// kernel produces the identical completion trace.
func TestQuickSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) ([]runnable.ID, []sim.Time, bool) {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		prios := rng.Perm(n)
		execs := make([]time.Duration, n)
		for i := range execs {
			execs[i] = time.Duration(rng.Intn(5)+1) * time.Millisecond
		}
		k, o, tids, _, err := quickRig(prios, execs)
		if err != nil {
			return nil, nil, false
		}
		var order []runnable.ID
		var times []sim.Time
		o.AddObserver(ObserverFuncs{OnRunnableEnd: func(rid runnable.ID, _ runnable.TaskID) {
			order = append(order, rid)
			times = append(times, k.Now())
		}})
		for i := 0; i < 40; i++ {
			at := sim.Time(rng.Intn(100)) * sim.Millisecond
			idx := rng.Intn(n)
			k.At(at, func() { _ = o.ActivateTask(tids[idx]) })
		}
		if err := k.RunUntilIdle(); err != nil {
			return nil, nil, false
		}
		return order, times, true
	}
	f := func(seed int64) bool {
		o1, t1, ok1 := run(seed)
		o2, t2, ok2 := run(seed)
		if !ok1 || !ok2 || len(o1) != len(o2) {
			return false
		}
		for i := range o1 {
			if o1[i] != o2[i] || t1[i] != t2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the priority-ceiling protocol guarantees mutual exclusion —
// for any interleaving of activations, at most one task is ever inside
// the critical section of the shared resource.
func TestQuickPCPMutualExclusion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel()
		m := runnable.NewModel()
		app, _ := m.AddApp("A", runnable.QM)
		const n = 3
		tids := make([]runnable.TaskID, n)
		rids := make([]runnable.ID, n)
		for i := 0; i < n; i++ {
			tids[i], _ = m.AddTask(app, "T"+string(rune('0'+i)), i+1)
			var err error
			rids[i], err = m.AddRunnable(tids[i], "R"+string(rune('0'+i)),
				time.Duration(rng.Intn(4)+1)*time.Millisecond, runnable.QM)
			if err != nil {
				return false
			}
		}
		if err := m.Freeze(); err != nil {
			return false
		}
		o, err := New(Config{Model: m, Kernel: k})
		if err != nil {
			return false
		}
		res, err := o.DeclareResource("shared", tids...)
		if err != nil {
			return false
		}
		inside := 0
		maxInside := 0
		for i := 0; i < n; i++ {
			i := i
			if err := o.DefineTask(tids[i], TaskAttrs{MaxActivations: 4}, Program{
				Lock{Resource: res},
				Call{Fn: func() {
					inside++
					if inside > maxInside {
						maxInside = inside
					}
				}},
				Exec{Runnable: rids[i]},
				Call{Fn: func() { inside-- }},
				Unlock{Resource: res},
			}); err != nil {
				return false
			}
		}
		if err := o.Start(); err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			at := sim.Time(rng.Intn(100)) * sim.Millisecond
			idx := rng.Intn(n)
			k.At(at, func() { _ = o.ActivateTask(tids[idx]) })
		}
		if err := k.RunUntilIdle(); err != nil {
			return false
		}
		return maxInside == 1 && inside == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
