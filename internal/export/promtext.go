// Package export is the unified telemetry-export layer: one set of
// writers renders watchdog telemetry as Prometheus text exposition
// format 0.0.4 with no client library, and pluggable sinks move the
// rendered payload out — the pull path behind the cmd/swwdmon and
// cmd/swwdd /metrics endpoints, and a batched push client (Pusher) with
// retry, backoff and drop accounting for deployments where the
// collector cannot scrape. Writers append to a caller-owned
// bytes.Buffer, so an exporter that retains its buffer and snapshot
// allocates only HTTP plumbing per scrape.
//
// This file holds the text writers (formerly package promtext); their
// output is pinned byte-for-byte by the golden-file tests in
// golden_test.go, so dashboards keyed on the existing series never see
// a format change.
package export

import (
	"bytes"
	"fmt"
	"time"

	"swwd/internal/core"
	"swwd/internal/ingest"
	"swwd/internal/treat"
)

// WriteSnapshot renders s: watchdog counters and state, per-runnable
// series labelled via names (falling back to the numeric ID), journal
// accounting, driver tick drift and the sweep-duration histogram. Label
// values go through %q: Go string quoting matches the Prometheus
// escaping rules for backslash, double-quote and newline.
func WriteSnapshot(b *bytes.Buffer, s *core.Snapshot, names []string) {
	// Watchdog-level counters and state.
	Header(b, "swwd_cycles_total", "counter", "Monitoring cycles swept.")
	fmt.Fprintf(b, "swwd_cycles_total %d\n", s.Cycle)
	Header(b, "swwd_detections_total", "counter", "Cumulative detections by error kind (AM/AR/PFC Result).")
	fmt.Fprintf(b, "swwd_detections_total{kind=\"aliveness\"} %d\n", s.Results.Aliveness)
	fmt.Fprintf(b, "swwd_detections_total{kind=\"arrival_rate\"} %d\n", s.Results.ArrivalRate)
	fmt.Fprintf(b, "swwd_detections_total{kind=\"program_flow\"} %d\n", s.Results.ProgramFlow)
	Header(b, "swwd_ecu_state", "gauge", "TSI-derived ECU state (1=OK 2=faulty).")
	fmt.Fprintf(b, "swwd_ecu_state %d\n", int(s.ECUState))

	// Per-runnable series.
	Header(b, "swwd_runnable_active", "gauge", "Activation Status (AS) of the runnable.")
	for i := range s.Runnables {
		fmt.Fprintf(b, "swwd_runnable_active{runnable=%q} %d\n", label(names, i), b2i(s.Runnables[i].Active))
	}
	Header(b, "swwd_runnable_beats_total", "counter", "Heartbeats recorded while the runnable was active.")
	for i := range s.Runnables {
		fmt.Fprintf(b, "swwd_runnable_beats_total{runnable=%q} %d\n", label(names, i), s.Runnables[i].Beats)
	}
	Header(b, "swwd_runnable_faults_total", "counter", "Detections attributed to the runnable, by error kind.")
	for i := range s.Runnables {
		r := &s.Runnables[i]
		n := label(names, i)
		fmt.Fprintf(b, "swwd_runnable_faults_total{runnable=%q,kind=\"aliveness\"} %d\n", n, r.ErrAliveness)
		fmt.Fprintf(b, "swwd_runnable_faults_total{runnable=%q,kind=\"arrival_rate\"} %d\n", n, r.ErrArrivalRate)
		fmt.Fprintf(b, "swwd_runnable_faults_total{runnable=%q,kind=\"program_flow\"} %d\n", n, r.ErrProgramFlow)
	}

	// Fault-event journal accounting.
	Header(b, "swwd_journal_entries", "gauge", "Fault-event journal entries currently retained.")
	fmt.Fprintf(b, "swwd_journal_entries %d\n", s.Journal.Len)
	Header(b, "swwd_journal_capacity", "gauge", "Fault-event journal ring capacity.")
	fmt.Fprintf(b, "swwd_journal_capacity %d\n", s.Journal.Cap)
	Header(b, "swwd_journal_written_total", "counter", "Detections journaled over the watchdog's lifetime.")
	fmt.Fprintf(b, "swwd_journal_written_total %d\n", s.Journal.Written)
	Header(b, "swwd_journal_dropped_total", "counter", "Journal entries overwritten by the ring wrapping.")
	fmt.Fprintf(b, "swwd_journal_dropped_total %d\n", s.Journal.Dropped)

	// Service tick drift.
	Header(b, "swwd_ticks_total", "counter", "Monitoring cycles driven by the service ticker.")
	fmt.Fprintf(b, "swwd_ticks_total %d\n", s.Driver.Ticks)
	Header(b, "swwd_missed_cycles_total", "counter", "Cycles lost to tick overruns.")
	fmt.Fprintf(b, "swwd_missed_cycles_total %d\n", s.Driver.MissedCycles)
	Header(b, "swwd_tick_overruns_total", "counter", "Tick overrun events.")
	fmt.Fprintf(b, "swwd_tick_overruns_total %d\n", s.Driver.Overruns)
	Header(b, "swwd_tick_max_late_seconds", "gauge", "Worst observed tick lateness.")
	fmt.Fprintf(b, "swwd_tick_max_late_seconds %g\n", time.Duration(s.Driver.MaxLateNs).Seconds())

	// Sweep-duration histogram, cumulative per Prometheus convention.
	// Buckets below the first observation and the saturated tail above
	// the last one are elided; the +Inf bucket completes the series, so
	// the exposition stays a handful of lines around the observed range.
	Header(b, "swwd_sweep_duration_seconds", "histogram", "Duration of one monitoring-cycle sweep.")
	var cum uint64
	for i := 0; i < core.HistBuckets; i++ {
		cum += s.Sweep.Buckets[i]
		if cum == 0 {
			continue
		}
		bound := float64(core.HistBucketBound(i)) / 1e9
		fmt.Fprintf(b, "swwd_sweep_duration_seconds_bucket{le=\"%g\"} %d\n", bound, cum)
		if cum == s.Sweep.Count {
			break
		}
	}
	fmt.Fprintf(b, "swwd_sweep_duration_seconds_bucket{le=\"+Inf\"} %d\n", s.Sweep.Count)
	fmt.Fprintf(b, "swwd_sweep_duration_seconds_sum %g\n", float64(s.Sweep.SumNs)/1e9)
	fmt.Fprintf(b, "swwd_sweep_duration_seconds_count %d\n", s.Sweep.Count)
	Header(b, "swwd_sweep_duration_max_seconds", "gauge", "Longest sweep observed.")
	fmt.Fprintf(b, "swwd_sweep_duration_max_seconds %g\n", float64(s.Sweep.MaxNs)/1e9)
}

// WriteIngest renders the ingestion server's wire counters: frames,
// bytes, decode errors, sequence gaps, duplicate and queue drops.
func WriteIngest(b *bytes.Buffer, st ingest.Stats) {
	Header(b, "swwd_ingest_nodes", "gauge", "Remote nodes registered with the ingestion server.")
	fmt.Fprintf(b, "swwd_ingest_nodes %d\n", st.Nodes)
	Header(b, "swwd_ingest_frames_total", "counter", "Heartbeat frames handed to ingest workers.")
	fmt.Fprintf(b, "swwd_ingest_frames_total %d\n", st.Frames)
	Header(b, "swwd_ingest_bytes_total", "counter", "Frame payload bytes received.")
	fmt.Fprintf(b, "swwd_ingest_bytes_total %d\n", st.Bytes)
	Header(b, "swwd_ingest_accepted_total", "counter", "Frames decoded, sequence-checked and replayed into the watchdog.")
	fmt.Fprintf(b, "swwd_ingest_accepted_total %d\n", st.Accepted)
	Header(b, "swwd_ingest_decode_errors_total", "counter", "Malformed frames, including unknown runnable indices.")
	fmt.Fprintf(b, "swwd_ingest_decode_errors_total %d\n", st.DecodeErrors)
	Header(b, "swwd_ingest_unknown_node_total", "counter", "Frames from unregistered node IDs.")
	fmt.Fprintf(b, "swwd_ingest_unknown_node_total %d\n", st.UnknownNode)
	Header(b, "swwd_ingest_sequence_gaps_total", "counter", "Missing sequence numbers observed across all nodes (frames lost in flight).")
	fmt.Fprintf(b, "swwd_ingest_sequence_gaps_total %d\n", st.SeqGaps)
	Header(b, "swwd_ingest_sequence_gap_events_total", "counter", "Accepted frames whose sequence number jumped.")
	fmt.Fprintf(b, "swwd_ingest_sequence_gap_events_total %d\n", st.SeqGapEvents)
	Header(b, "swwd_ingest_duplicate_drops_total", "counter", "Duplicate or re-ordered frames dropped without replay.")
	fmt.Fprintf(b, "swwd_ingest_duplicate_drops_total %d\n", st.DuplicateDrops)
	Header(b, "swwd_ingest_node_restarts_total", "counter", "Reporter restarts detected via an advanced session epoch.")
	fmt.Fprintf(b, "swwd_ingest_node_restarts_total %d\n", st.NodeRestarts)
	Header(b, "swwd_ingest_stale_epoch_drops_total", "counter", "Frames dropped because their session epoch was superseded.")
	fmt.Fprintf(b, "swwd_ingest_stale_epoch_drops_total %d\n", st.StaleEpochDrops)
	Header(b, "swwd_ingest_interval_mismatch_total", "counter", "Accepted frames declaring a flush interval different from the node's registration.")
	fmt.Fprintf(b, "swwd_ingest_interval_mismatch_total %d\n", st.IntervalMismatch)
	Header(b, "swwd_ingest_dropped_packets_total", "counter", "Datagrams discarded because buffers or worker queues were full.")
	fmt.Fprintf(b, "swwd_ingest_dropped_packets_total %d\n", st.DroppedPackets)
	Header(b, "swwd_ingest_buffers_exhausted_total", "counter", "Datagrams received into scratch because the packet free list was dry (subset of dropped packets).")
	fmt.Fprintf(b, "swwd_ingest_buffers_exhausted_total %d\n", st.BuffersExhausted)
	Header(b, "swwd_ingest_listeners", "gauge", "UDP sockets serving the ingest address (SO_REUSEPORT group size).")
	fmt.Fprintf(b, "swwd_ingest_listeners %d\n", st.Listeners)
	Header(b, "swwd_ingest_read_errors_total", "counter", "Transient socket read errors.")
	fmt.Fprintf(b, "swwd_ingest_read_errors_total %d\n", st.ReadErrors)
	Header(b, "swwd_ingest_commands_sent_total", "counter", "Treatment command frames written to reporters.")
	fmt.Fprintf(b, "swwd_ingest_commands_sent_total %d\n", st.CommandsSent)
	Header(b, "swwd_ingest_commands_acked_total", "counter", "Treatment commands acknowledged on heartbeat frames.")
	fmt.Fprintf(b, "swwd_ingest_commands_acked_total %d\n", st.CommandsAcked)
	Header(b, "swwd_ingest_commands_dropped_total", "counter", "Treatment commands that could not be sent (no address, socket down, write error).")
	fmt.Fprintf(b, "swwd_ingest_commands_dropped_total %d\n", st.CommandsDropped)
	Header(b, "swwd_ingest_command_stale_acks_total", "counter", "Command acknowledgements carrying a superseded command epoch.")
	fmt.Fprintf(b, "swwd_ingest_command_stale_acks_total %d\n", st.CommandStaleAcks)
}

// WriteIngestDetail renders the per-listener and per-shard series of
// the multi-socket read path: packet/batch counters per listener socket
// (batch-size efficiency shows as packets/batches) and queue depth,
// high-water mark and capacity per shard worker.
func WriteIngestDetail(b *bytes.Buffer, listeners []ingest.ListenerStat, shards []ingest.ShardStat) {
	Header(b, "swwd_ingest_listener_packets_total", "counter", "Datagrams received per listener socket.")
	for i := range listeners {
		fmt.Fprintf(b, "swwd_ingest_listener_packets_total{listener=\"%d\"} %d\n", i, listeners[i].Packets)
	}
	Header(b, "swwd_ingest_listener_batches_total", "counter", "Receive wakeups per listener socket (recvmmsg batches; 1 packet each without batching).")
	for i := range listeners {
		fmt.Fprintf(b, "swwd_ingest_listener_batches_total{listener=\"%d\"} %d\n", i, listeners[i].Batches)
	}
	Header(b, "swwd_ingest_listener_max_batch", "gauge", "Largest datagram batch one receive returned per listener socket.")
	for i := range listeners {
		fmt.Fprintf(b, "swwd_ingest_listener_max_batch{listener=\"%d\"} %d\n", i, listeners[i].MaxBatch)
	}
	Header(b, "swwd_ingest_shard_queue_depth", "gauge", "Packets waiting in the shard worker's queue.")
	for i := range shards {
		fmt.Fprintf(b, "swwd_ingest_shard_queue_depth{shard=\"%d\"} %d\n", i, shards[i].Depth)
	}
	Header(b, "swwd_ingest_shard_queue_hwm", "gauge", "High-water mark of the shard worker's queue depth.")
	for i := range shards {
		fmt.Fprintf(b, "swwd_ingest_shard_queue_hwm{shard=\"%d\"} %d\n", i, shards[i].DepthHWM)
	}
	Header(b, "swwd_ingest_shard_queue_capacity", "gauge", "Capacity of the shard worker's queue.")
	for i := range shards {
		fmt.Fprintf(b, "swwd_ingest_shard_queue_capacity{shard=\"%d\"} %d\n", i, shards[i].Capacity)
	}
}

// WriteTreat renders the fault-treatment controller's counters and
// gauges.
func WriteTreat(b *bytes.Buffer, st treat.Stats) {
	Header(b, "swwd_treat_events_total", "counter", "Fault events accepted by the treatment controller.")
	fmt.Fprintf(b, "swwd_treat_events_total %d\n", st.Events)
	Header(b, "swwd_treat_events_dropped_total", "counter", "Fault events dropped at the controller queue cap.")
	fmt.Fprintf(b, "swwd_treat_events_dropped_total %d\n", st.EventsDropped)
	Header(b, "swwd_treat_actions_total", "counter", "Treatment actions executed, by kind.")
	fmt.Fprintf(b, "swwd_treat_actions_total{kind=\"quarantine\"} %d\n", st.Quarantines)
	fmt.Fprintf(b, "swwd_treat_actions_total{kind=\"resume\"} %d\n", st.Resumes)
	fmt.Fprintf(b, "swwd_treat_actions_total{kind=\"scale_down\"} %d\n", st.ScaleDowns)
	fmt.Fprintf(b, "swwd_treat_actions_total{kind=\"scale_up\"} %d\n", st.ScaleUps)
	fmt.Fprintf(b, "swwd_treat_actions_total{kind=\"notify_quarantine\"} %d\n", st.NotifyQuarantine)
	fmt.Fprintf(b, "swwd_treat_actions_total{kind=\"restart_runnables\"} %d\n", st.RestartRunnables)
	Header(b, "swwd_treat_quarantines_active", "gauge", "Nodes currently quarantined.")
	fmt.Fprintf(b, "swwd_treat_quarantines_active %d\n", st.ActiveQuarantines)
	Header(b, "swwd_treat_scaled_down_active", "gauge", "Nodes currently scaled down on account of a quarantined dependency.")
	fmt.Fprintf(b, "swwd_treat_scaled_down_active %d\n", st.ActiveScaledDown)
	Header(b, "swwd_treat_exec_errors_total", "counter", "Treatment actions whose execution reported an error.")
	fmt.Fprintf(b, "swwd_treat_exec_errors_total %d\n", st.ExecErrors)
}

// Header emits the HELP/TYPE preamble for one metric family.
func Header(b *bytes.Buffer, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// label returns the label value for runnable i, falling back to the
// numeric ID when the name table is short.
func label(names []string, i int) string {
	if i < len(names) && names[i] != "" {
		return names[i]
	}
	return fmt.Sprintf("runnable-%d", i)
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
