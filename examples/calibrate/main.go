// Calibrate: derive fault hypotheses from live observation instead of
// hand-tuning them — online, with a shadow-guarded zero-downtime swap.
//
// Setting the per-runnable fault hypothesis (how many heartbeats per
// window are normal) is the design-time step of deploying the Software
// Watchdog. This example starts supervision on day-0 guesses that are
// deliberately loose, lets the online estimator watch the healthy
// workload, derives tightened hypotheses with a 30% safety margin,
// evaluates them as *shadows* against live traffic (would they have
// faulted?), and only then swaps them in — without ever deactivating a
// runnable, so there is no supervision gap. The tightened watchdog
// stays quiet on the healthy workload but detects a stall immediately.
// The offline one-shot path (NewCalibrator) remains as a compat wrapper
// and must agree with the online suggestion on the same workload.
//
// Run with:
//
//	go run ./examples/calibrate
package main

import (
	"fmt"
	"log"
	"time"

	"swwd"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("calibrate: %v", err)
	}
}

// healthyWindow drives one 10-cycle window of the uneven healthy
// workload (2 or 3 beats per window — exactly the kind of jitter that
// makes hand-written hypotheses flap).
func healthyWindow(beat func(swwd.RunnableID), cycle func(), stages [2]swwd.RunnableID, window int) {
	beats := 2 + window%2
	for b := 0; b < beats; b++ {
		for _, rid := range stages {
			beat(rid)
		}
	}
	for c := 0; c < 10; c++ {
		cycle()
	}
}

func run() error {
	model := swwd.NewModel()
	app, err := model.AddApp("sensorFusion", swwd.SafetyCritical)
	if err != nil {
		return err
	}
	task, err := model.AddTask(app, "fusionTask", 1)
	if err != nil {
		return err
	}
	var stages [2]swwd.RunnableID
	for i, name := range []string{"acquire", "fuse"} {
		if stages[i], err = model.AddRunnable(task, name, time.Millisecond, swwd.SafetyCritical); err != nil {
			return err
		}
	}
	if err := model.Freeze(); err != nil {
		return err
	}

	// Day 0: supervise with loose guesses, estimator enabled. The
	// estimator samples banked beat counts every 10 cycles on the Cycle
	// caller's goroutine — the heartbeat hot path is untouched.
	w, err := swwd.New(model, swwd.WithEstimatorWindow(10))
	if err != nil {
		return err
	}
	loose := swwd.Hypothesis{AlivenessCycles: 10, MinHeartbeats: 1, ArrivalCycles: 10, MaxArrivals: 100}
	for _, rid := range stages {
		if err := w.SetHypothesis(rid, loose); err != nil {
			return err
		}
		if err := w.Activate(rid); err != nil {
			return err
		}
	}

	// Phase 1: the estimator observes the healthy workload in-line with
	// normal supervision (the first, warmup-inflated window is
	// discarded automatically).
	for window := 0; window < 7; window++ {
		healthyWindow(w.Heartbeat, w.Cycle, stages, window)
	}
	base := w.Estimator().Baseline()
	fmt.Printf("observed %d healthy windows\n", w.Estimator().Windows())

	// Phase 2: derive tightened proposals. Suggest is pure: the same
	// baseline and policy always yield bit-identical proposals.
	props := swwd.SuggestHypotheses(base, swwd.CalibrationPolicy{Margin: 0.3})
	if len(props) != len(stages) {
		return fmt.Errorf("got %d proposals, want %d", len(props), len(stages))
	}
	byRunnable := make(map[int]swwd.CalibrationProposal, len(props))
	for _, p := range props {
		byRunnable[p.Runnable] = p
		r, _ := model.Runnable(swwd.RunnableID(p.Runnable))
		fmt.Printf("  %-8s -> min %d, max %d per %d cycles (observed %d..%d beats/window)\n",
			r.Name, p.Hyp.MinHeartbeats, p.Hyp.MaxArrivals, p.Hyp.AlivenessCycles, p.Min, p.Max)
	}

	// Phase 3: evaluate the candidates as shadows. A shadow rides the
	// live beat stream and counts windows it *would* have faulted on —
	// it never raises a fault, and the loose hypotheses keep
	// supervising untouched.
	for _, rid := range stages {
		if err := w.SetShadow(rid, swwd.Hypothesis(byRunnable[int(rid)].Hyp)); err != nil {
			return err
		}
	}
	for window := 0; window < 4; window++ {
		healthyWindow(w.Heartbeat, w.Cycle, stages, window)
	}
	for _, rid := range stages {
		v, err := w.ShadowVerdict(rid)
		if err != nil {
			return err
		}
		r, _ := model.Runnable(rid)
		fmt.Printf("shadow %-8s windows %d, would-be faults %d/%d, clean streak %d\n",
			r.Name, v.Windows, v.WouldAliveness, v.WouldArrival, v.CleanStreak)
		if v.WouldAliveness != 0 || v.WouldArrival != 0 || v.CleanStreak < 3 {
			return fmt.Errorf("candidate for %s not clean enough to promote: %+v", r.Name, v)
		}
	}

	// Phase 4: promote. SetHypothesis swaps the active hypothesis on a
	// live runnable — no Deactivate, no supervision gap.
	for _, rid := range stages {
		if err := w.SetHypothesis(rid, swwd.Hypothesis(byRunnable[int(rid)].Hyp)); err != nil {
			return err
		}
		if err := w.ClearShadow(rid); err != nil {
			return err
		}
	}
	if w.Results() != (swwd.Results{}) {
		return fmt.Errorf("supervision gap during rollout: %+v", w.Results())
	}

	// Phase 5: the tightened watchdog is quiet on the healthy workload.
	for window := 0; window < 6; window++ {
		healthyWindow(w.Heartbeat, w.Cycle, stages, window)
	}
	fmt.Printf("healthy replay:  %+v\n", w.Results())
	if w.Results().Aliveness != 0 {
		return fmt.Errorf("calibrated hypothesis false-positived")
	}

	// Phase 6: the fuse stage stalls — detected within one window.
	for window := 0; window < 2; window++ {
		for b := 0; b < 2; b++ {
			w.Heartbeat(stages[0])
		}
		for c := 0; c < 10; c++ {
			w.Cycle()
		}
	}
	fmt.Printf("after stall:     %+v\n", w.Results())
	if w.Results().Aliveness == 0 {
		return fmt.Errorf("stall not detected")
	}

	// Compat: the offline one-shot Calibrator (a wrapper over the same
	// estimator) must agree with the online suggestion when it watches
	// the same workload.
	cal, err := swwd.NewCalibrator(model, 10)
	if err != nil {
		return err
	}
	for window := 0; window < 6; window++ {
		healthyWindow(cal.Heartbeat, cal.Cycle, stages, window)
	}
	for _, rid := range stages {
		h, err := cal.Suggest(rid, 0.3)
		if err != nil {
			return err
		}
		if h != swwd.Hypothesis(byRunnable[int(rid)].Hyp) {
			return fmt.Errorf("offline calibrator disagrees with online suggestion: %+v vs %+v",
				h, byRunnable[int(rid)].Hyp)
		}
	}
	fmt.Println("offline calibrator agrees with the online suggestion")
	fmt.Println("calibration example complete")
	return nil
}
