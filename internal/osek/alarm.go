package osek

import (
	"fmt"
	"time"

	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// AlarmID identifies an alarm within one OS instance.
type AlarmID int

// AlarmAction is what an alarm does on expiry: exactly one of the fields
// must be configured.
type AlarmAction struct {
	// ActivateTask activates the given task.
	ActivateTask runnable.TaskID
	// SetEventTask/SetEventMask set events for an extended task.
	SetEventTask runnable.TaskID
	SetEventMask EventMask
	// Callback runs an arbitrary function (OSEK ALARMCALLBACK).
	Callback func()

	// kind disambiguates; set by the constructor helpers.
	kind alarmKind
}

type alarmKind int

const (
	alarmActivate alarmKind = iota + 1
	alarmSetEvent
	alarmCallback
)

// ActivateAlarm returns an action that activates tid on expiry.
func ActivateAlarm(tid runnable.TaskID) AlarmAction {
	return AlarmAction{ActivateTask: tid, kind: alarmActivate}
}

// EventAlarm returns an action that sets mask for tid on expiry.
func EventAlarm(tid runnable.TaskID, mask EventMask) AlarmAction {
	return AlarmAction{SetEventTask: tid, SetEventMask: mask, kind: alarmSetEvent}
}

// CallbackAlarm returns an action that runs fn on expiry.
func CallbackAlarm(fn func()) AlarmAction {
	return AlarmAction{Callback: fn, kind: alarmCallback}
}

type alarm struct {
	id     AlarmID
	name   string
	action AlarmAction

	armed bool
	cycle time.Duration
	scale float64 // injected cycle scalar; 1 when unset
	ev    *sim.Event

	autostart  bool
	autoOffset time.Duration
	autoCycle  time.Duration

	expiries uint64
}

// CreateAlarm registers an alarm. If autostart is true the alarm is armed
// at Start (and after each ECU reset) with the given offset and cycle; a
// zero cycle makes it one-shot.
func (o *OS) CreateAlarm(name string, action AlarmAction, autostart bool, offset, cycle time.Duration) (AlarmID, error) {
	if o.started {
		return -1, fmt.Errorf("osek: CreateAlarm %q after Start: %w", name, ErrAccess)
	}
	switch action.kind {
	case alarmActivate, alarmSetEvent, alarmCallback:
	default:
		return -1, fmt.Errorf("osek: CreateAlarm %q: action not constructed via helper: %w", name, ErrValue)
	}
	if offset < 0 || cycle < 0 {
		return -1, fmt.Errorf("osek: CreateAlarm %q: negative offset/cycle: %w", name, ErrValue)
	}
	id := AlarmID(len(o.alarms))
	o.alarms = append(o.alarms, &alarm{
		id: id, name: name, action: action, scale: 1,
		autostart: autostart, autoOffset: offset, autoCycle: cycle,
	})
	return id, nil
}

// SetRelAlarm arms an alarm relative to now (OSEK SetRelAlarm). Arming an
// already-armed alarm returns E_OS_STATE.
func (o *OS) SetRelAlarm(id AlarmID, offset, cycle time.Duration) error {
	a, err := o.alarmOf(id)
	if err != nil {
		return err
	}
	if a.armed {
		return fmt.Errorf("osek: SetRelAlarm(%s): already armed: %w", a.name, ErrState)
	}
	if offset < 0 || cycle < 0 {
		return fmt.Errorf("osek: SetRelAlarm(%s): negative offset/cycle: %w", a.name, ErrValue)
	}
	o.armAlarm(a, offset, cycle)
	return nil
}

// CancelAlarm disarms an alarm (OSEK CancelAlarm); cancelling an unarmed
// alarm returns E_OS_NOFUNC.
func (o *OS) CancelAlarm(id AlarmID) error {
	a, err := o.alarmOf(id)
	if err != nil {
		return err
	}
	if !a.armed {
		return fmt.Errorf("osek: CancelAlarm(%s): not armed: %w", a.name, ErrNoFunc)
	}
	o.disarmAlarm(a)
	return nil
}

// SetAlarmCycleScale stretches (scale > 1) or compresses (scale < 1) the
// effective cycle of an alarm from its next expiry on. This is the
// injection seam for the paper's "change the execution frequency" slider:
// scaling the alarm that dispatches a task changes the arrival rate of all
// its runnables.
func (o *OS) SetAlarmCycleScale(id AlarmID, scale float64) error {
	a, err := o.alarmOf(id)
	if err != nil {
		return err
	}
	if scale <= 0 {
		return fmt.Errorf("osek: SetAlarmCycleScale(%s, %v): %w", a.name, scale, ErrValue)
	}
	a.scale = scale
	return nil
}

// AlarmsActivating reports the alarms whose expiry activates the given
// task; fault treatment uses this to stop dispatching a terminated
// application.
func (o *OS) AlarmsActivating(tid runnable.TaskID) []AlarmID {
	var out []AlarmID
	for _, a := range o.alarms {
		if a.action.kind == alarmActivate && a.action.ActivateTask == tid {
			out = append(out, a.id)
		}
	}
	return out
}

// AlarmArmed reports whether the alarm is currently armed.
func (o *OS) AlarmArmed(id AlarmID) (bool, error) {
	a, err := o.alarmOf(id)
	if err != nil {
		return false, err
	}
	return a.armed, nil
}

// AlarmExpiries reports how often the alarm has expired.
func (o *OS) AlarmExpiries(id AlarmID) (uint64, error) {
	a, err := o.alarmOf(id)
	if err != nil {
		return 0, err
	}
	return a.expiries, nil
}

func (o *OS) alarmOf(id AlarmID) (*alarm, error) {
	if int(id) < 0 || int(id) >= len(o.alarms) {
		return nil, fmt.Errorf("osek: alarm id %d: %w", id, ErrID)
	}
	return o.alarms[id], nil
}

func (o *OS) armAlarm(a *alarm, offset, cycle time.Duration) {
	a.armed = true
	a.cycle = cycle
	a.ev = o.kernel.After(offset, func() { o.expireAlarm(a) })
}

func (o *OS) disarmAlarm(a *alarm) {
	if !a.armed {
		return
	}
	a.armed = false
	o.kernel.Cancel(a.ev)
	a.ev = nil
}

func (o *OS) expireAlarm(a *alarm) {
	a.ev = nil
	a.expiries++
	if a.cycle > 0 {
		next := time.Duration(float64(a.cycle) * a.scale)
		if next <= 0 {
			next = time.Nanosecond
		}
		a.ev = o.kernel.After(next, func() { o.expireAlarm(a) })
	} else {
		a.armed = false
	}
	switch a.action.kind {
	case alarmActivate:
		// The service reports failures (e.g. E_OS_LIMIT on overload)
		// through the error hook itself.
		_ = o.ActivateTask(a.action.ActivateTask)
	case alarmSetEvent:
		_ = o.SetEvent(a.action.SetEventTask, a.action.SetEventMask)
	case alarmCallback:
		if a.action.Callback != nil {
			a.action.Callback()
		}
	}
}
