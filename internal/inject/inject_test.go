package inject

import (
	"testing"
	"time"

	"swwd/internal/osek"
	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// rig wires a minimal one-task ECU.
type rig struct {
	k     *sim.Kernel
	os    *osek.OS
	task  runnable.TaskID
	rid   runnable.ID
	alarm osek.AlarmID
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	m := runnable.NewModel()
	app, _ := m.AddApp("App", runnable.SafetyCritical)
	task, _ := m.AddTask(app, "T", 5)
	rid, err := m.AddRunnable(task, "R", time.Millisecond, runnable.SafetyCritical)
	if err != nil {
		t.Fatalf("AddRunnable: %v", err)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	os, err := osek.New(osek.Config{Model: m, Kernel: k})
	if err != nil {
		t.Fatalf("osek.New: %v", err)
	}
	if err := os.DefineTask(task, osek.TaskAttrs{MaxActivations: 5}, osek.Program{osek.Exec{Runnable: rid}}); err != nil {
		t.Fatalf("DefineTask: %v", err)
	}
	alarm, err := os.CreateAlarm("cyc", osek.ActivateAlarm(task), true, 10*time.Millisecond, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("CreateAlarm: %v", err)
	}
	if err := os.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return &rig{k: k, os: os, task: task, rid: rid, alarm: alarm}
}

func TestExecStretchAppliesAndReverts(t *testing.T) {
	r := newRig(t)
	inj := &ExecStretch{OS: r.os, Runnable: r.rid, Scale: 3}
	if inj.Name() == "" {
		t.Error("empty name")
	}
	if err := inj.Apply(); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := inj.Revert(); err != nil {
		t.Fatalf("Revert: %v", err)
	}
}

func TestAlarmRateScaleWindowSlowsDispatch(t *testing.T) {
	r := newRig(t)
	s, err := NewScheduler(r.k)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	inj := &AlarmRateScale{OS: r.os, Alarm: r.alarm, Scale: 2}
	if err := s.Window(50*sim.Millisecond, 100*sim.Millisecond, inj); err != nil {
		t.Fatalf("Window: %v", err)
	}
	if err := r.k.Run(200 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Nominal: expiries every 10ms. Slowed x2 in [50,100): expiries at
	// 10..50 (5), then 70, 90 (2, still slowed when scheduled), then the
	// revert at 100 restores 10ms from the next reschedule: 110,120,...
	got := r.os.ExecCount(r.rid)
	if got < 12 || got > 18 {
		t.Fatalf("ExecCount = %d, want roughly 15 with a slowed window", got)
	}
	log := s.Log()
	if len(log) != 2 || !log[0].Applied || log[1].Applied {
		t.Fatalf("log = %+v", log)
	}
	if log[0].Err != nil || log[1].Err != nil {
		t.Fatalf("injection errors: %+v", log)
	}
}

func TestBurstDispatchDoublesRate(t *testing.T) {
	r := newRig(t)
	s, _ := NewScheduler(r.k)
	inj := &BurstDispatch{OS: r.os, Task: r.task, Period: 10 * time.Millisecond}
	s.ApplyAt(100*sim.Millisecond, inj)
	s.RevertAt(200*sim.Millisecond, inj)
	if err := r.k.Run(300 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 30 nominal dispatches + ~10 extra during [100,200].
	got := r.os.ExecCount(r.rid)
	if got < 38 || got > 42 {
		t.Fatalf("ExecCount = %d, want ~40", got)
	}
}

func TestBurstDispatchValidation(t *testing.T) {
	r := newRig(t)
	bad := &BurstDispatch{OS: r.os, Task: r.task, Period: 0}
	if err := bad.Apply(); err == nil {
		t.Fatal("zero period accepted")
	}
	inj := &BurstDispatch{OS: r.os, Task: r.task, Period: time.Millisecond}
	if err := inj.Apply(); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := inj.Apply(); err == nil {
		t.Fatal("double Apply accepted")
	}
	if err := inj.Revert(); err != nil {
		t.Fatalf("Revert: %v", err)
	}
	if err := inj.Revert(); err != nil {
		t.Fatalf("second Revert should be a no-op: %v", err)
	}
}

func TestFlagFault(t *testing.T) {
	flag := false
	inj := &FlagFault{
		Label: "invalid-branch",
		Set:   func() { flag = true },
		Unset: func() { flag = false },
	}
	if err := inj.Apply(); err != nil || !flag {
		t.Fatalf("Apply: err=%v flag=%v", err, flag)
	}
	if err := inj.Revert(); err != nil || flag {
		t.Fatalf("Revert: err=%v flag=%v", err, flag)
	}
	empty := &FlagFault{Label: "broken"}
	if err := empty.Apply(); err == nil {
		t.Fatal("FlagFault without Set accepted")
	}
	if err := empty.Revert(); err != nil {
		t.Fatalf("Revert without Unset should be a no-op: %v", err)
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(nil); err == nil {
		t.Fatal("nil kernel accepted")
	}
	r := newRig(t)
	s, _ := NewScheduler(r.k)
	inj := &FlagFault{Label: "x", Set: func() {}}
	if err := s.Window(10*sim.Millisecond, 10*sim.Millisecond, inj); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestSchedulerLogsErrors(t *testing.T) {
	r := newRig(t)
	s, _ := NewScheduler(r.k)
	inj := &FlagFault{Label: "broken"} // Apply fails
	s.ApplyAt(5*sim.Millisecond, inj)
	if err := r.k.Run(10 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	log := s.Log()
	if len(log) != 1 || log[0].Err == nil {
		t.Fatalf("log = %+v", log)
	}
}

func TestFuncInjection(t *testing.T) {
	var applied, reverted int
	f := &Func{
		Label:    "pause-beats",
		OnApply:  func() error { applied++; return nil },
		OnRevert: func() error { reverted++; return nil },
	}
	if got, want := f.Name(), "func(pause-beats)"; got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
	if err := f.Apply(); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := f.Revert(); err != nil {
		t.Fatalf("Revert: %v", err)
	}
	if applied != 1 || reverted != 1 {
		t.Fatalf("applied=%d reverted=%d, want 1/1", applied, reverted)
	}

	// Nil halves are no-ops, like FlagFault's optional Unset.
	empty := &Func{Label: "noop"}
	if err := empty.Apply(); err != nil {
		t.Fatalf("Apply without OnApply should be a no-op: %v", err)
	}
	if err := empty.Revert(); err != nil {
		t.Fatalf("Revert without OnRevert should be a no-op: %v", err)
	}
}
