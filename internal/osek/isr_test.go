package osek

import (
	"errors"
	"testing"
	"time"

	"swwd/internal/sim"
)

func TestISRPreemptsRunningTask(t *testing.T) {
	r := newRig(t)
	tid := r.task("T", 1)
	rid := r.runnable(tid, "R", 10*time.Millisecond)
	o := r.build(0)
	isrID, err := o.DeclareISR("rx", time.Millisecond, nil)
	if err != nil {
		t.Fatalf("DeclareISR: %v", err)
	}
	var done sim.Time
	r.define(tid, TaskAttrs{Autostart: true}, Program{Exec{Runnable: rid, OnDone: func() { done = r.k.Now() }}})
	r.start()
	r.k.At(3*sim.Millisecond, func() {
		if err := o.RaiseISR(isrID); err != nil {
			t.Errorf("RaiseISR: %v", err)
		}
	})
	r.run(sim.Second)
	// Task: 3ms before the ISR, 1ms ISR, 7ms remaining → done at 11ms.
	if done != 11*sim.Millisecond {
		t.Fatalf("task done at %v, want 11ms (delayed by ISR)", done)
	}
	count, err := o.ISRCount(isrID)
	if err != nil || count != 1 {
		t.Fatalf("ISRCount = %d, %v", count, err)
	}
}

func TestISRActivatesTask(t *testing.T) {
	r := newRig(t)
	tid := r.task("T", 5)
	rid := r.runnable(tid, "R", time.Millisecond)
	o := r.build(0)
	var isrID ISRID
	var err error
	isrID, err = o.DeclareISR("rx", 100*time.Microsecond, func() {
		if err := o.ActivateTask(tid); err != nil {
			t.Errorf("ActivateTask from ISR: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("DeclareISR: %v", err)
	}
	r.define(tid, TaskAttrs{}, Program{Exec{Runnable: rid}})
	r.start()
	r.k.At(5*sim.Millisecond, func() { _ = o.RaiseISR(isrID) })
	r.run(sim.Second)
	if o.ExecCount(rid) != 1 {
		t.Fatalf("ExecCount = %d, want 1 (task activated from ISR)", o.ExecCount(rid))
	}
}

func TestNestedISRsServicedFIFO(t *testing.T) {
	r := newRig(t)
	tid := r.task("T", 1)
	rid := r.runnable(tid, "R", time.Millisecond)
	o := r.build(0)
	var order []int
	a, _ := o.DeclareISR("a", time.Millisecond, func() { order = append(order, 1) })
	b, _ := o.DeclareISR("b", time.Millisecond, func() { order = append(order, 2) })
	r.define(tid, TaskAttrs{}, Program{Exec{Runnable: rid}})
	r.start()
	r.k.At(0, func() {
		_ = o.RaiseISR(a)
		_ = o.RaiseISR(b) // raised while a is in service → queued
	})
	r.run(sim.Second)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestISRValidation(t *testing.T) {
	r := newRig(t)
	tid := r.task("T", 1)
	rid := r.runnable(tid, "R", time.Millisecond)
	o := r.build(0)
	if _, err := o.DeclareISR("bad", -time.Second, nil); !errors.Is(err, ErrValue) {
		t.Errorf("negative exec accepted: %v", err)
	}
	r.define(tid, TaskAttrs{}, Program{Exec{Runnable: rid}})
	r.start()
	if _, err := o.DeclareISR("late", time.Millisecond, nil); !errors.Is(err, ErrAccess) {
		t.Errorf("DeclareISR after Start accepted: %v", err)
	}
	if err := o.RaiseISR(ISRID(9)); !errors.Is(err, ErrID) {
		t.Errorf("unknown ISR accepted: %v", err)
	}
	if _, err := o.ISRCount(ISRID(9)); !errors.Is(err, ErrID) {
		t.Errorf("unknown ISR count accepted: %v", err)
	}
}

func TestISRDoesNotRunTasksWhileActive(t *testing.T) {
	// A task activated during a long ISR must only start after the ISR
	// completes.
	r := newRig(t)
	tid := r.task("T", 9)
	rid := r.runnable(tid, "R", time.Millisecond)
	o := r.build(0)
	var started sim.Time
	isrID, _ := o.DeclareISR("slow", 5*time.Millisecond, nil)
	r.define(tid, TaskAttrs{}, Program{Exec{Runnable: rid, OnStart: func() { started = r.k.Now() }}})
	r.start()
	r.k.At(0, func() {
		_ = o.RaiseISR(isrID)
		_ = o.ActivateTask(tid) // ready, but the CPU belongs to the ISR
	})
	r.run(sim.Second)
	if started != 5*sim.Millisecond {
		t.Fatalf("task started at %v, want 5ms (after the ISR)", started)
	}
}
