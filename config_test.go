package swwd

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

const validSpec = `{
  "apps": [
    {
      "name": "SafeSpeed",
      "criticality": "safety-critical",
      "tasks": [
        {
          "name": "SafeSpeedTask",
          "priority": 10,
          "flow": true,
          "runnables": [
            {"name": "GetSensorValue", "exec_time": "150us",
             "hypothesis": {"aliveness_cycles": 5, "min_heartbeats": 3,
                            "arrival_cycles": 5, "max_arrivals": 7}},
            {"name": "SAFE_CC_process", "exec_time": "400us",
             "hypothesis": {"aliveness_cycles": 5, "min_heartbeats": 3,
                            "arrival_cycles": 5, "max_arrivals": 7}},
            {"name": "Speed_process", "exec_time": "150us",
             "hypothesis": {"aliveness_cycles": 5, "min_heartbeats": 3,
                            "arrival_cycles": 5, "max_arrivals": 7}}
          ]
        }
      ]
    },
    {
      "name": "Diag",
      "criticality": "QM",
      "tasks": [
        {
          "name": "DiagTask",
          "priority": 1,
          "runnables": [
            {"name": "DiagPoll", "exec_time": "1ms"}
          ]
        }
      ]
    }
  ],
  "watchdog": {
    "cycle_period": "10ms",
    "program_flow_threshold": 3
  }
}`

func TestLoadSpecAndBuild(t *testing.T) {
	spec, err := LoadSpec(strings.NewReader(validSpec))
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	sys, err := spec.Build(nil, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if sys.Model.NumApps() != 2 || sys.Model.NumTasks() != 2 || sys.Model.NumRunnables() != 4 {
		t.Fatalf("model counts %d/%d/%d", sys.Model.NumApps(), sys.Model.NumTasks(), sys.Model.NumRunnables())
	}
	if _, ok := sys.App("SafeSpeed"); !ok {
		t.Fatal("App lookup failed")
	}
	if _, ok := sys.Task("SafeSpeedTask"); !ok {
		t.Fatal("Task lookup failed")
	}
	rid, ok := sys.Runnable("SAFE_CC_process")
	if !ok {
		t.Fatal("Runnable lookup failed")
	}
	hyp, err := sys.Watchdog.Hypothesis(rid)
	if err != nil || hyp.MinHeartbeats != 3 {
		t.Fatalf("hypothesis = %+v, %v", hyp, err)
	}
	c, err := sys.Watchdog.CounterSnapshot(rid)
	if err != nil || !c.Active {
		t.Fatalf("runnable with hypothesis not activated: %+v %v", c, err)
	}
	// Flow table installed: A→C is illegal.
	sys.Heartbeat("GetSensorValue")
	sys.Heartbeat("Speed_process")
	if got := sys.Watchdog.Results().ProgramFlow; got != 1 {
		t.Fatalf("ProgramFlow = %d, want 1", got)
	}
	// Unknown heartbeat names are tolerated.
	sys.Heartbeat("NoSuchRunnable")
	// Partial thresholds filled with the default 3.
	if sys.Watchdog.CyclePeriod().String() != "10ms" {
		t.Fatalf("cycle period = %v", sys.Watchdog.CyclePeriod())
	}
}

func TestLoadSpecErrors(t *testing.T) {
	cases := map[string]string{
		"empty apps":    `{"apps": []}`,
		"unknown field": `{"apps": [{"name":"a"}], "bogus": 1}`,
		"not json":      `{`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadSpec(strings.NewReader(body)); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

func TestBuildErrors(t *testing.T) {
	build := func(t *testing.T, body string) error {
		t.Helper()
		spec, err := LoadSpec(strings.NewReader(body))
		if err != nil {
			t.Fatalf("LoadSpec: %v", err)
		}
		_, err = spec.Build(nil, nil)
		return err
	}
	cases := map[string]string{
		"bad criticality": `{"apps":[{"name":"a","criticality":"extreme","tasks":[
			{"name":"t","priority":1,"runnables":[{"name":"r","exec_time":"1ms"}]}]}]}`,
		"bad exec time": `{"apps":[{"name":"a","tasks":[
			{"name":"t","priority":1,"runnables":[{"name":"r","exec_time":"fast"}]}]}]}`,
		"duplicate runnable": `{"apps":[{"name":"a","tasks":[
			{"name":"t","priority":1,"runnables":[
				{"name":"r","exec_time":"1ms"},{"name":"r","exec_time":"1ms"}]}]}]}`,
		"duplicate task": `{"apps":[{"name":"a","tasks":[
			{"name":"t","priority":1,"runnables":[{"name":"r1","exec_time":"1ms"}]},
			{"name":"t","priority":1,"runnables":[{"name":"r2","exec_time":"1ms"}]}]}]}`,
		"duplicate app": `{"apps":[
			{"name":"a","tasks":[{"name":"t1","priority":1,"runnables":[{"name":"r1","exec_time":"1ms"}]}]},
			{"name":"a","tasks":[{"name":"t2","priority":1,"runnables":[{"name":"r2","exec_time":"1ms"}]}]}]}`,
		"flow with one runnable": `{"apps":[{"name":"a","tasks":[
			{"name":"t","priority":1,"flow":true,"runnables":[{"name":"r","exec_time":"1ms"}]}]}]}`,
		"empty task": `{"apps":[{"name":"a","tasks":[
			{"name":"t","priority":1,"runnables":[]}]}]}`,
		"bad cycle period": `{"apps":[{"name":"a","tasks":[
			{"name":"t","priority":1,"runnables":[{"name":"r","exec_time":"1ms"}]}]}],
			"watchdog":{"cycle_period":"soon"}}`,
		"bad hypothesis": `{"apps":[{"name":"a","tasks":[
			{"name":"t","priority":1,"runnables":[{"name":"r","exec_time":"1ms",
			 "hypothesis":{"aliveness_cycles":5}}]}]}]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if err := build(t, body); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

func TestBuildMinimalDefaults(t *testing.T) {
	body := `{"apps":[{"name":"a","tasks":[
		{"name":"t","priority":1,"runnables":[{"name":"r","exec_time":"1ms"}]}]}]}`
	spec, err := LoadSpec(strings.NewReader(body))
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	sys, err := spec.Build(nil, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if sys.Watchdog.CyclePeriod() != CyclePeriodDefault {
		t.Fatalf("cycle period = %v", sys.Watchdog.CyclePeriod())
	}
	if _, ok := sys.Runnable("r"); !ok {
		t.Fatal("runnable lookup failed")
	}
}

// TestTreatmentSpecRoundTrip: the treatment section survives a JSON
// marshal/parse round trip and converts to the engine's edge list and
// policy, both embedded in a full Spec and as a standalone document.
func TestTreatmentSpecRoundTrip(t *testing.T) {
	body := `{"apps":[{"name":"a","tasks":[
		{"name":"t","priority":1,"runnables":[{"name":"r","exec_time":"1ms"}]}]}],
		"treatment":{"edges":[{"node":1,"depends_on":0},{"node":2,"depends_on":0}],
		"recovery_frames":5,"scale_down":"dependents","restart_dependents":true}}`
	spec, err := LoadSpec(strings.NewReader(body))
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	if spec.Treatment == nil {
		t.Fatal("treatment section not parsed")
	}

	// Marshal and re-parse: the section must survive unchanged.
	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	spec2, err := LoadSpec(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if spec2.Treatment.RecoveryFrames != 5 || !spec2.Treatment.RestartDependents ||
		spec2.Treatment.ScaleDown != "dependents" ||
		len(spec2.Treatment.Edges) != 2 ||
		spec2.Treatment.Edges[0] != (TreatmentEdgeSpec{Node: 1, DependsOn: 0}) ||
		spec2.Treatment.Edges[1] != (TreatmentEdgeSpec{Node: 2, DependsOn: 0}) {
		t.Fatalf("round-tripped treatment = %+v, want %+v", spec2.Treatment, spec.Treatment)
	}

	edges, pol, err := spec2.Treatment.Treatment(3)
	if err != nil {
		t.Fatalf("Treatment: %v", err)
	}
	if len(edges) != 2 || edges[0] != (TreatmentEdge{Node: 1, DependsOn: 0}) {
		t.Fatalf("edges = %+v", edges)
	}
	if pol.RecoveryFrames != 5 || !pol.RestartDependents || pol.DisableScaleDown {
		t.Fatalf("policy = %+v", pol)
	}

	// The standalone loader parses just the section.
	ts, err := LoadTreatment(strings.NewReader(
		`{"edges":[{"node":1,"depends_on":0}],"scale_down":"off"}`))
	if err != nil {
		t.Fatalf("LoadTreatment: %v", err)
	}
	if _, pol, err := ts.Treatment(2); err != nil || !pol.DisableScaleDown {
		t.Fatalf("standalone treatment = %+v, %v", pol, err)
	}
}

// TestTreatmentSpecErrors: malformed treatment sections fail with
// errors.Is-able sentinels.
func TestTreatmentSpecErrors(t *testing.T) {
	if _, err := LoadTreatment(strings.NewReader(`{"edges":1}`)); !errors.Is(err, ErrTreatmentSpec) {
		t.Fatalf("parse error = %v, want ErrTreatmentSpec", err)
	}
	if _, err := LoadTreatment(strings.NewReader(`{"bogus":true}`)); !errors.Is(err, ErrTreatmentSpec) {
		t.Fatalf("unknown field error = %v, want ErrTreatmentSpec", err)
	}
	cases := map[string]struct {
		spec  TreatmentSpec
		nodes int
		also  error
	}{
		"negative recovery": {TreatmentSpec{RecoveryFrames: -1}, 2, nil},
		"bad scale_down":    {TreatmentSpec{ScaleDown: "sideways"}, 2, nil},
		"unknown node": {TreatmentSpec{
			Edges: []TreatmentEdgeSpec{{Node: 9, DependsOn: 0}}}, 2, ErrTreatmentUnknownNode},
		"self dependency": {TreatmentSpec{
			Edges: []TreatmentEdgeSpec{{Node: 1, DependsOn: 1}}}, 2, ErrTreatmentSelfDependency},
		"duplicate edge": {TreatmentSpec{
			Edges: []TreatmentEdgeSpec{{Node: 1, DependsOn: 0}, {Node: 1, DependsOn: 0}}}, 2, ErrTreatmentDuplicateEdge},
		"cycle": {TreatmentSpec{
			Edges: []TreatmentEdgeSpec{{Node: 1, DependsOn: 0}, {Node: 0, DependsOn: 1}}}, 2, ErrTreatmentCycle},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, err := tc.spec.Treatment(tc.nodes)
			if !errors.Is(err, ErrTreatmentSpec) {
				t.Fatalf("err = %v, want ErrTreatmentSpec", err)
			}
			if tc.also != nil && !errors.Is(err, tc.also) {
				t.Fatalf("err = %v, want it to also match %v", err, tc.also)
			}
		})
	}
}

// TestCalibrationSpecRoundTrip: the calibration section survives a
// JSON marshal/parse round trip and converts to defaulted, validated
// calibration parameters, both embedded in a full Spec and standalone.
func TestCalibrationSpecRoundTrip(t *testing.T) {
	body := `{"apps":[{"name":"a","tasks":[
		{"name":"t","priority":1,"runnables":[{"name":"r","exec_time":"1ms"}]}]}],
		"calibration":{"window_cycles":200,"margin":0.4,"promote_after":4,"canary_fraction":0.5}}`
	spec, err := LoadSpec(strings.NewReader(body))
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	if spec.Calibration == nil {
		t.Fatal("calibration section not parsed")
	}

	// Marshal and re-parse: the section must survive unchanged.
	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	spec2, err := LoadSpec(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	want := CalibrationSpec{WindowCycles: 200, Margin: 0.4, PromoteAfter: 4, CanaryFraction: 0.5}
	if *spec2.Calibration != want {
		t.Fatalf("round-tripped calibration = %+v, want %+v", *spec2.Calibration, want)
	}

	p, err := spec2.Calibration.Params()
	if err != nil {
		t.Fatalf("Params: %v", err)
	}
	if p.WindowCycles != 200 || p.Margin != 0.4 || p.PromoteAfter != 4 || p.CanaryFraction != 0.5 {
		t.Fatalf("params = %+v", p)
	}

	// Standalone document with knobs left to their defaults.
	cs, err := LoadCalibration(strings.NewReader(`{"window_cycles":100}`))
	if err != nil {
		t.Fatalf("LoadCalibration: %v", err)
	}
	p, err = cs.Params()
	if err != nil {
		t.Fatalf("Params: %v", err)
	}
	if p.WindowCycles != 100 || p.Margin <= 0 || p.PromoteAfter <= 0 || p.CanaryFraction <= 0 {
		t.Fatalf("defaulted params = %+v", p)
	}
}

// TestCalibrationSpecErrors: malformed calibration sections fail with
// the ErrCalibrationSpec sentinel.
func TestCalibrationSpecErrors(t *testing.T) {
	if _, err := LoadCalibration(strings.NewReader(`{"margin":"wide"}`)); !errors.Is(err, ErrCalibrationSpec) {
		t.Fatalf("parse error = %v, want ErrCalibrationSpec", err)
	}
	if _, err := LoadCalibration(strings.NewReader(`{"bogus":true}`)); !errors.Is(err, ErrCalibrationSpec) {
		t.Fatalf("unknown field error = %v, want ErrCalibrationSpec", err)
	}
	for name, cs := range map[string]CalibrationSpec{
		"missing window":  {},
		"negative window": {WindowCycles: -5},
		"margin too big":  {WindowCycles: 100, Margin: 1.5},
		"bad promote":     {WindowCycles: 100, PromoteAfter: -1},
		"canary too big":  {WindowCycles: 100, CanaryFraction: 2},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := cs.Params(); !errors.Is(err, ErrCalibrationSpec) {
				t.Fatalf("err = %v, want ErrCalibrationSpec", err)
			}
		})
	}
}
