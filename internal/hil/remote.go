package hil

import (
	"encoding/binary"
	"fmt"
	"time"

	"swwd/internal/can"
	"swwd/internal/core"
	"swwd/internal/fmf"
	"swwd/internal/osek"
	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// CANRemoteFaultID carries Software Watchdog fault reports from remote
// ECUs to the central node — the service deployed "in distributed
// in-vehicle embedded systems" (§5 conclusions).
const CANRemoteFaultID can.FrameID = 0x300

// RemoteFault is a decoded remote fault report as received centrally.
type RemoteFault struct {
	Time     sim.Time
	Kind     core.ErrorKind
	Runnable uint16
	Cycle    uint32
}

// RemoteECU is a second ECU on the shared CAN bus: its own mapping model,
// OSEK instance, Software Watchdog and Fault Management Framework. Every
// locally detected fault is also serialised onto CAN for the central
// node.
type RemoteECU struct {
	Model    *runnable.Model
	OS       *osek.OS
	Watchdog *core.Watchdog
	FMF      *fmf.Framework

	App     runnable.AppID
	Task    runnable.TaskID
	Sense   runnable.ID
	Process runnable.ID

	// FaultBranch is the remote injection seam (Branch* constants from
	// package apps apply by convention: 1 skips Process).
	FaultBranch int

	node     *can.Node
	reported uint64
}

// canFaultSink tees watchdog reports to the local FMF and onto the bus.
type canFaultSink struct {
	ecu   *RemoteECU
	local core.Sink
}

var _ core.Sink = (*canFaultSink)(nil)

func (s *canFaultSink) Fault(r core.Report) {
	s.local.Fault(r)
	payload := make([]byte, 7)
	payload[0] = byte(r.Kind)
	binary.BigEndian.PutUint16(payload[1:3], uint16(r.Runnable))
	binary.BigEndian.PutUint32(payload[3:7], uint32(r.Cycle))
	if err := s.ecu.node.Send(can.Frame{ID: CANRemoteFaultID, Data: payload}); err == nil {
		s.ecu.reported++
	}
}

func (s *canFaultSink) StateChanged(e core.StateEvent) { s.local.StateChanged(e) }

// newRemoteECU assembles the remote node on the validator's kernel and
// CAN bus.
func newRemoteECU(v *Validator) (*RemoteECU, error) {
	if v.Net == nil {
		return nil, fmt.Errorf("hil: remote ECU requires WithNetworks")
	}
	r := &RemoteECU{Model: runnable.NewModel()}
	var err error
	if r.App, err = r.Model.AddApp("BodyControl", runnable.SafetyRelevant); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}
	if r.Task, err = r.Model.AddTask(r.App, "BodyControlTask", 5); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}
	if r.Sense, err = r.Model.AddRunnable(r.Task, "RemoteSense", 100*time.Microsecond, runnable.SafetyRelevant); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}
	if r.Process, err = r.Model.AddRunnable(r.Task, "RemoteProcess", 200*time.Microsecond, runnable.SafetyRelevant); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}
	if err := r.Model.Freeze(); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}

	if r.OS, err = osek.New(osek.Config{Model: r.Model, Kernel: v.Kernel}); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}
	r.node = v.Net.CANBus.AttachNode("remote-ecu")

	if r.FMF, err = fmf.New(fmf.Config{Model: r.Model, Clock: v.Kernel}); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}
	if r.Watchdog, err = core.New(core.Config{
		Model: r.Model,
		Clock: v.Kernel,
		Sink:  &canFaultSink{ecu: r, local: r.FMF},
	}); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}
	hyp := core.Hypothesis{AlivenessCycles: 5, MinHeartbeats: 3, ArrivalCycles: 5, MaxArrivals: 7}
	for _, rid := range []runnable.ID{r.Sense, r.Process} {
		if err := r.Watchdog.SetHypothesis(rid, hyp); err != nil {
			return nil, fmt.Errorf("hil: remote: %w", err)
		}
		if err := r.Watchdog.Activate(rid); err != nil {
			return nil, fmt.Errorf("hil: remote: %w", err)
		}
	}
	if err := r.Watchdog.AddFlowSequence(r.Sense, r.Process); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}
	monitors := make([]*core.Monitor, r.Model.NumRunnables())
	for rid := range monitors {
		m, err := r.Watchdog.Register(runnable.ID(rid))
		if err != nil {
			return nil, fmt.Errorf("hil: remote: %w", err)
		}
		monitors[rid] = m
	}
	r.OS.AddObserver(osek.ObserverFuncs{OnRunnableEnd: func(rid runnable.ID, _ runnable.TaskID) {
		monitors[rid].Beat()
	}})

	process := osek.Exec{Runnable: r.Process}
	if err := r.OS.DefineTask(r.Task, osek.TaskAttrs{MaxActivations: 3}, osek.Program{
		osek.Exec{Runnable: r.Sense},
		osek.Select{
			Choose: func() int { return r.FaultBranch },
			Arms:   []osek.Program{{process}, {}, {process, process}},
		},
	}); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}
	if _, err := r.OS.CreateAlarm("BodyControlAlarm",
		osek.ActivateAlarm(r.Task), true, 10*time.Millisecond, 10*time.Millisecond); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}
	if _, err := r.OS.CreateAlarm("RemoteWatchdogCycle",
		osek.CallbackAlarm(r.Watchdog.Cycle), true, 10*time.Millisecond, 10*time.Millisecond); err != nil {
		return nil, fmt.Errorf("hil: remote: %w", err)
	}

	// Central node collects the remote reports.
	v.Net.centralCAN.Subscribe(func(id can.FrameID) bool { return id == CANRemoteFaultID }, func(f can.Frame) {
		if len(f.Data) < 7 {
			return
		}
		v.Net.remoteFaults = append(v.Net.remoteFaults, RemoteFault{
			Time:     v.Kernel.Now(),
			Kind:     core.ErrorKind(f.Data[0]),
			Runnable: binary.BigEndian.Uint16(f.Data[1:3]),
			Cycle:    binary.BigEndian.Uint32(f.Data[3:7]),
		})
	})
	return r, nil
}

// start launches the remote OS.
func (r *RemoteECU) start() error {
	if err := r.OS.Start(); err != nil {
		return fmt.Errorf("hil: remote: %w", err)
	}
	return nil
}

// Reported counts fault frames successfully queued onto the bus.
func (r *RemoteECU) Reported() uint64 { return r.reported }

// RemoteFaults reports the remote fault reports received by the central
// node, oldest first.
func (n *Network) RemoteFaults() []RemoteFault {
	out := make([]RemoteFault, len(n.remoteFaults))
	copy(out, n.remoteFaults)
	return out
}
