package core

import (
	"sync"
	"time"

	"swwd/internal/runnable"
)

// This file holds the Cycle sweep implementations: the default
// wheel-based sweep (serial and sharded-parallel) and the retired O(N)
// full-table walk, kept in-tree both as the bit-identical reference for
// the equivalence replay tests and as a benchmark/ablation baseline
// (Config.LegacySweep).

// sweepParallelDefaultMin is the minimum number of due runnables in one
// cycle before the sharded pool is engaged; below it the fan-out/join
// overhead dwarfs the sweep itself and the serial path wins.
const sweepParallelDefaultMin = 256

// detection is one deferred fault found by the sweep; detections are
// batched so w.mu is taken once per cycle, not once per fault.
type detection struct {
	kind               ErrorKind
	rid                runnable.ID
	observed, expected int
}

// resched is one deadline re-index computed by a sweep worker and
// applied serially after the join (workers never mutate the wheel).
type resched struct {
	rid  uint32
	kind uint8
	due  uint64
}

// shardOut is the result buffer of one sweep worker, padded so adjacent
// workers do not publish into the same cache line.
type shardOut struct {
	dets []detection
	res  []resched
	_    [cacheLineSize - 2*24]byte // two slice headers per worker
}

// sweepPool is the persistent worker pool of the sharded sweep. Workers
// park on the job channel between cycles; Watchdog.Close retires them.
type sweepPool struct {
	jobs chan func()
	done sync.WaitGroup
}

func newSweepPool(n int) *sweepPool {
	p := &sweepPool{jobs: make(chan func(), n)}
	p.done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.done.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

func (p *sweepPool) submit(f func()) { p.jobs <- f }

func (p *sweepPool) close() {
	close(p.jobs)
	p.done.Wait()
}

// Close retires the sharded-sweep worker pool, if one was configured
// (Config.SweepShards > 1). It is idempotent and safe to call
// concurrently with Cycle; after Close the sweep continues serially.
// Watchdogs without a worker pool need no Close.
func (w *Watchdog) Close() {
	s := w.sched
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pool != nil {
		s.pool.close()
		s.pool = nil
	}
}

// Cycle advances the time-triggered part of the watchdog by one
// monitoring cycle (§3.3: counters are "checked shortly before the next
// period begins" and "reset to zero, if the periods ... expire or an
// error is detected").
//
// The sweep is deadline-driven: only runnables whose aliveness or
// arrival window expires on this very cycle are visited — O(due work)
// via the timer wheel's bitmap buckets instead of the retired O(N) walk
// over every padded counter line. Expiring windows are closed with
// atomic swaps so concurrent heartbeats land in either the closing or
// the next window; detections are batched and reported under one
// acquisition of the cold-path mutex per cycle.
//
// Telemetry: every Cycle is timed into the sweep-duration histogram
// (two monotonic clock reads per cycle, amortized over a whole
// monitoring period), and the optional MetricsSink fires after the
// sweep's locks are released.
func (w *Watchdog) Cycle() {
	start := time.Now()
	var c uint64
	if w.sched == nil {
		c = w.cycleLegacy()
	} else {
		c = w.cycleWheel()
	}
	w.sweepHist.record(time.Since(start))
	w.maybeEmitMetrics(c)
	w.maybeSampleEstimator(c)
}

// cycleWheel is the wheel-based sweep; it returns the new cycle number.
func (w *Watchdog) cycleWheel() uint64 {
	s := w.sched
	s.mu.Lock()
	c := w.cycle.Add(1)
	if c&s.mask == 0 {
		s.migrate(c)
	}
	b := &s.buckets[c&s.mask]
	na, nr, ns := 0, 0, 0
	if b.alive != nil {
		na = b.alive.len()
	}
	if b.arr != nil {
		nr = b.arr.len()
	}
	if b.shadow != nil {
		ns = b.shadow.len()
	}
	if na == 0 && nr == 0 && ns == 0 {
		s.mu.Unlock()
		return c
	}
	s.dueAlive = s.dueAlive[:0]
	s.dueArr = s.dueArr[:0]
	s.dueShadow = s.dueShadow[:0]
	if na > 0 {
		s.dueAlive = b.alive.drainInto(s.dueAlive)
	}
	if nr > 0 {
		s.dueArr = b.arr.drainInto(s.dueArr)
	}
	if ns > 0 {
		s.dueShadow = b.shadow.drainInto(s.dueShadow)
	}
	// The drained deadlines are consumed: mark them unscheduled before
	// processing so the per-item reschedule starts from a clean slate.
	for _, rid := range s.dueAlive {
		r := &s.rs[rid]
		r.aliveDue, r.aliveLoc = 0, locNone
	}
	for _, rid := range s.dueArr {
		r := &s.rs[rid]
		r.arrDue, r.arrLoc = 0, locNone
	}
	for _, rid := range s.dueShadow {
		r := &s.rs[rid]
		r.shadowDue, r.shadowLoc = 0, locNone
	}
	s.items = mergeDue(s.items[:0], s.dueAlive, s.dueArr)
	s.batch = s.batch[:0]
	if s.pool != nil && len(s.items) >= s.parallelMin {
		w.sweepParallel(c)
	} else {
		w.sweepSerial(c)
	}
	if len(s.dueShadow) > 0 {
		// Shadow windows are judged after the active ones closed, still
		// under s.mu: due-cycle work inside the same sweep, never a fault.
		w.sweepShadows(c)
	}
	if len(s.batch) > 0 {
		w.mu.Lock()
		for _, d := range s.batch {
			w.detectLocked(d.kind, d.rid, d.observed, d.expected, runnable.NoID)
		}
		w.mu.Unlock()
	}
	s.mu.Unlock()
	return c
}

// sweepSerial processes the due items inline: close expiring windows,
// collect detections, restart and re-index the windows. Holds s.mu.
func (w *Watchdog) sweepSerial(c uint64) {
	s := w.sched
	for _, it := range s.items {
		rid := int(it.rid)
		hs := &w.hot[rid]
		if hs.active.Load() == 0 {
			continue // defensive: deactivation unschedules under s.mu
		}
		hyp := hs.hyp.Load()
		if it.alive && hyp.AlivenessCycles > 0 {
			ac := hs.closeAliveness()
			if int(ac) < hyp.MinHeartbeats {
				s.batch = append(s.batch, detection{AlivenessError, runnable.ID(rid), int(ac), hyp.MinHeartbeats})
			}
			s.rs[rid].aliveAnchor.Store(c)
			s.schedule(rid, kindAlive, c+uint64(hyp.AlivenessCycles), c)
		}
		if it.arr && hyp.ArrivalCycles > 0 {
			arc := hs.closeArrival()
			if int(arc) > hyp.MaxArrivals {
				s.batch = append(s.batch, detection{ArrivalRateError, runnable.ID(rid), int(arc), hyp.MaxArrivals})
			}
			s.rs[rid].arrAnchor.Store(c)
			s.schedule(rid, kindArr, c+uint64(hyp.ArrivalCycles), c)
		}
	}
}

// sweepParallel fans the due items out over the persistent worker pool
// in contiguous (hence runnable-ascending) chunks. Workers only perform
// atomic window closes and record their detections and deadline
// re-indexes locally; the wheel mutation and the detection batch are
// applied serially after the join, in shard order, so the observable
// sequence is identical to the serial sweep. Holds s.mu.
func (w *Watchdog) sweepParallel(c uint64) {
	s := w.sched
	n := s.shards
	chunk := (len(s.items) + n - 1) / n
	var wg sync.WaitGroup
	used := 0
	for i := 0; i < n; i++ {
		lo := i * chunk
		if lo >= len(s.items) {
			break
		}
		hi := lo + chunk
		if hi > len(s.items) {
			hi = len(s.items)
		}
		o := &s.outs[i]
		o.dets = o.dets[:0]
		o.res = o.res[:0]
		sub := s.items[lo:hi]
		used++
		wg.Add(1)
		s.pool.submit(func() {
			defer wg.Done()
			w.sweepShard(c, sub, o)
		})
	}
	wg.Wait()
	for i := 0; i < used; i++ {
		o := &s.outs[i]
		for _, r := range o.res {
			s.schedule(int(r.rid), int(r.kind), r.due, c)
		}
		s.batch = append(s.batch, o.dets...)
	}
}

// sweepShard is the worker half of the parallel sweep: pure hot-state
// atomics plus private result buffers, no wheel access.
func (w *Watchdog) sweepShard(c uint64, items []dueItem, o *shardOut) {
	s := w.sched
	for _, it := range items {
		rid := int(it.rid)
		hs := &w.hot[rid]
		if hs.active.Load() == 0 {
			continue
		}
		hyp := hs.hyp.Load()
		if it.alive && hyp.AlivenessCycles > 0 {
			ac := hs.closeAliveness()
			if int(ac) < hyp.MinHeartbeats {
				o.dets = append(o.dets, detection{AlivenessError, runnable.ID(rid), int(ac), hyp.MinHeartbeats})
			}
			s.rs[rid].aliveAnchor.Store(c)
			o.res = append(o.res, resched{rid: it.rid, kind: kindAlive, due: c + uint64(hyp.AlivenessCycles)})
		}
		if it.arr && hyp.ArrivalCycles > 0 {
			arc := hs.closeArrival()
			if int(arc) > hyp.MaxArrivals {
				o.dets = append(o.dets, detection{ArrivalRateError, runnable.ID(rid), int(arc), hyp.MaxArrivals})
			}
			s.rs[rid].arrAnchor.Store(c)
			o.res = append(o.res, resched{rid: it.rid, kind: kindArr, due: c + uint64(hyp.ArrivalCycles)})
		}
	}
}

// cycleLegacy is the retired full-table sweep (Config.LegacySweep): one
// pass over every runnable's padded counter line per cycle, per-cycle
// CCA/CCAR increments, one w.mu acquisition per fault. Kept as the
// reference implementation the equivalence tests replay against and as
// the "before" side of BenchmarkCycleSweep.
func (w *Watchdog) cycleLegacy() uint64 {
	c := w.cycle.Add(1)
	for i := range w.hot {
		hs := &w.hot[i]
		if hs.active.Load() == 0 {
			continue
		}
		hyp := hs.hyp.Load()
		if hyp.AlivenessCycles > 0 {
			if hs.cca.Add(1) >= uint32(hyp.AlivenessCycles) {
				ac := hs.closeAliveness()
				hs.cca.Store(0)
				if int(ac) < hyp.MinHeartbeats {
					w.mu.Lock()
					w.detectLocked(AlivenessError, runnable.ID(i), int(ac), hyp.MinHeartbeats, runnable.NoID)
					w.mu.Unlock()
				}
			}
		}
		if hyp.ArrivalCycles > 0 {
			if hs.ccar.Add(1) >= uint32(hyp.ArrivalCycles) {
				arc := hs.closeArrival()
				hs.ccar.Store(0)
				if int(arc) > hyp.MaxArrivals {
					w.mu.Lock()
					w.detectLocked(ArrivalRateError, runnable.ID(i), int(arc), hyp.MaxArrivals, runnable.NoID)
					w.mu.Unlock()
				}
			}
		}
	}
	return c
}

// lockSched acquires the scheduler mutex when the wheel sweep is active
// and returns the matching unlock. Lock order: sched.mu before w.mu.
func (w *Watchdog) lockSched() func() {
	if s := w.sched; s != nil {
		s.mu.Lock()
		return s.mu.Unlock
	}
	return func() {}
}

// reschedFreshLocked re-derives both deadlines of a runnable after its
// counters were reset (activation changes, fault treatment): monitored
// windows restart at the current cycle; everything else freezes at zero.
// Requires sched.mu.
func (w *Watchdog) reschedFreshLocked(rid runnable.ID) {
	s := w.sched
	c := w.cycle.Load()
	i := int(rid)
	s.unschedule(i, kindAlive)
	s.unschedule(i, kindArr)
	hs := &w.hot[i]
	hyp := hs.hyp.Load()
	active := hs.active.Load() != 0
	r := &s.rs[i]
	if active && hyp.AlivenessCycles > 0 {
		r.aliveAnchor.Store(c)
		s.schedule(i, kindAlive, c+uint64(hyp.AlivenessCycles), c)
	} else {
		r.aliveAnchor.Store(frozenFlag)
	}
	if active && hyp.ArrivalCycles > 0 {
		r.arrAnchor.Store(c)
		s.schedule(i, kindArr, c+uint64(hyp.ArrivalCycles), c)
	} else {
		r.arrAnchor.Store(frozenFlag)
	}
}

// reschedPreserveLocked re-derives both deadlines of a runnable after a
// hypothesis change, preserving the elapsed cycle-counter value exactly
// like the reference sweep does (SetHypothesis never resets counters):
// the in-flight window keeps its age, a shortened period that is already
// exceeded expires on the next cycle, and disabling a unit freezes the
// counter where it stands. Requires sched.mu.
func (w *Watchdog) reschedPreserveLocked(rid runnable.ID) {
	s := w.sched
	c := w.cycle.Load()
	i := int(rid)
	hs := &w.hot[i]
	hyp := hs.hyp.Load()
	active := hs.active.Load() != 0
	r := &s.rs[i]

	elapsed := anchorElapsed(r.aliveAnchor.Load(), c)
	if elapsed > c {
		elapsed = c // defensive: anchors never precede cycle zero
	}
	s.unschedule(i, kindAlive)
	if active && hyp.AlivenessCycles > 0 {
		start := c - elapsed
		due := start + uint64(hyp.AlivenessCycles)
		if due <= c {
			due = c + 1
		}
		r.aliveAnchor.Store(start)
		s.schedule(i, kindAlive, due, c)
	} else {
		r.aliveAnchor.Store(frozenFlag | elapsed)
	}

	elapsed = anchorElapsed(r.arrAnchor.Load(), c)
	if elapsed > c {
		elapsed = c
	}
	s.unschedule(i, kindArr)
	if active && hyp.ArrivalCycles > 0 {
		start := c - elapsed
		due := start + uint64(hyp.ArrivalCycles)
		if due <= c {
			due = c + 1
		}
		r.arrAnchor.Store(start)
		s.schedule(i, kindArr, due, c)
	} else {
		r.arrAnchor.Store(frozenFlag | elapsed)
	}
}

// reschedArrivalRestartLocked restarts the arrival window after an eager
// arrival detection reset ARC mid-period (the reference sweep's
// ccar.Store(0)). Requires sched.mu.
func (w *Watchdog) reschedArrivalRestartLocked(rid runnable.ID, hyp *Hypothesis) {
	s := w.sched
	c := w.cycle.Load()
	i := int(rid)
	s.unschedule(i, kindArr)
	r := &s.rs[i]
	if hyp.ArrivalCycles > 0 {
		r.arrAnchor.Store(c)
		s.schedule(i, kindArr, c+uint64(hyp.ArrivalCycles), c)
	} else {
		r.arrAnchor.Store(frozenFlag)
	}
}
