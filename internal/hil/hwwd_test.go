package hil

import (
	"testing"
	"time"

	"swwd/internal/inject"
	"swwd/internal/sim"
)

func TestHardwareWatchdogQuietOnHealthyRun(t *testing.T) {
	v := newValidator(t, Options{WithHardwareWatchdog: true})
	if err := v.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.HWWatchdog.Expiries() != 0 {
		t.Fatalf("hardware watchdog fired %d times on a healthy run", v.HWWatchdog.Expiries())
	}
	if v.HWWatchdog.Kicks() < 150 {
		t.Fatalf("kicks = %d, want ~200 (every 50ms)", v.HWWatchdog.Kicks())
	}
}

func TestHardwareWatchdogBlindToRunnableFault(t *testing.T) {
	// The §2 division of labour: an invalid branch (runnable-level fault)
	// is invisible to the hardware watchdog but caught by the Software
	// Watchdog.
	v := newValidator(t, Options{WithHardwareWatchdog: true})
	branch := &inject.FlagFault{
		Label: "invalid-branch",
		Set:   func() { v.SafeSpeed.FaultBranch = 1 },
	}
	v.Injector.ApplyAt(2*sim.Second, branch)
	if err := v.Run(8 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.HWWatchdog.Expiries() != 0 {
		t.Fatalf("hardware watchdog fired on a runnable-level fault")
	}
	if v.Watchdog.Results().ProgramFlow == 0 {
		t.Fatal("software watchdog missed the fault")
	}
}

func TestHardwareWatchdogCatchesCPUMonopolisation(t *testing.T) {
	// Total overload: the highest-priority steer task's Vote stretched to
	// consume far beyond its 5ms period monopolises the CPU. The lowest-
	// priority kick task starves, the hardware watchdog fires and resets
	// the ECU. (The Software Watchdog's cycle alarm keeps detecting too —
	// both layers see this one, but only the hardware watchdog can act
	// when the whole software stack is wedged.)
	v := newValidator(t, Options{WithHardwareWatchdog: true})
	hog := &inject.ExecStretch{OS: v.OS, Runnable: v.SteerByWire.Vote, Scale: 10000}
	if err := v.Injector.Window(2*sim.Second, 4*sim.Second, hog); err != nil {
		t.Fatalf("Window: %v", err)
	}
	if err := v.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.HWWatchdog.Expiries() == 0 {
		t.Fatal("hardware watchdog did not fire under CPU monopolisation")
	}
	if v.OS.ResetCount() == 0 {
		t.Fatal("no ECU reset performed")
	}
	first := v.HWWatchdog.LastExpiry()
	if first < 2*sim.Second {
		t.Fatalf("expiry before the overload window: %v", first)
	}
	// After the window the system recovers: kicks resume, no more firing.
	expiries := v.HWWatchdog.Expiries()
	if err := v.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.HWWatchdog.Expiries() != expiries {
		t.Fatalf("hardware watchdog still firing after recovery: %d -> %d",
			expiries, v.HWWatchdog.Expiries())
	}
}
