// Microbenchmarks for the auxiliary monitoring units.
package swwd_test

import (
	"testing"
	"time"

	"swwd"
	"swwd/internal/deadline"
	"swwd/internal/hwwd"
	"swwd/internal/osek"
	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// newHW builds a started hardware watchdog for benchmarking.
func newHW(b *testing.B, k *sim.Kernel) *hwwd.Watchdog {
	b.Helper()
	w, err := hwwd.New(hwwd.Config{Kernel: k, Timeout: time.Second})
	if err != nil {
		b.Fatalf("hwwd.New: %v", err)
	}
	if err := w.Start(); err != nil {
		b.Fatalf("Start: %v", err)
	}
	return w
}

// BenchmarkCalibratorHeartbeat measures the observation hot path.
func BenchmarkCalibratorHeartbeat(b *testing.B) {
	m := swwd.NewModel()
	app, _ := m.AddApp("bench", swwd.QM)
	task, _ := m.AddTask(app, "t", 1)
	rid, err := m.AddRunnable(task, "r", time.Millisecond, swwd.QM)
	if err != nil {
		b.Fatalf("AddRunnable: %v", err)
	}
	if err := m.Freeze(); err != nil {
		b.Fatalf("Freeze: %v", err)
	}
	cal, err := swwd.NewCalibrator(m, 10)
	if err != nil {
		b.Fatalf("NewCalibrator: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cal.Heartbeat(rid)
		if i%8 == 7 {
			cal.Cycle()
		}
	}
}

// BenchmarkDeadlineMonitorTransition measures the task-level baseline's
// observer cost per task state transition.
func BenchmarkDeadlineMonitorTransition(b *testing.B) {
	m := runnable.NewModel()
	app, _ := m.AddApp("bench", runnable.QM)
	task, _ := m.AddTask(app, "t", 1)
	if _, err := m.AddRunnable(task, "r", time.Millisecond, runnable.QM); err != nil {
		b.Fatalf("AddRunnable: %v", err)
	}
	if err := m.Freeze(); err != nil {
		b.Fatalf("Freeze: %v", err)
	}
	clk := sim.NewManualClock()
	mon, err := deadline.New(m, clk)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	if err := mon.SetDeadline(task, 10*time.Millisecond); err != nil {
		b.Fatalf("SetDeadline: %v", err)
	}
	if err := mon.SetBudget(task, 5*time.Millisecond); err != nil {
		b.Fatalf("SetBudget: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.TaskTransition(task, osek.Suspended, osek.Ready)
		mon.TaskTransition(task, osek.Ready, osek.Running)
		clk.Advance(time.Millisecond)
		mon.TaskTransition(task, osek.Running, osek.Suspended)
	}
}

// BenchmarkHWWatchdogKick measures the hardware-watchdog service path via
// the hil assembly's components (kernel event cancel + re-arm).
func BenchmarkHWWatchdogKick(b *testing.B) {
	k := sim.NewKernel()
	w := newHW(b, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Kick()
		if i%1024 == 1023 {
			// Drain the cancelled-event garbage occasionally.
			b.StopTimer()
			if err := k.Run(k.Now() + 1); err != nil {
				b.Fatalf("Run: %v", err)
			}
			b.StartTimer()
		}
	}
}
