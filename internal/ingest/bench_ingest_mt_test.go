package ingest

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swwd/internal/sim"
	"swwd/internal/wire"
)

// BenchmarkIngestMT measures end-to-end ingestion throughput over real
// loopback UDP across the multi-socket design space: single vs
// SO_REUSEPORT listener groups, batched (recvmmsg) vs single-datagram
// receives, and shard-worker fan-out. One iteration is one heartbeat
// frame of a 4-runnable reporter pushed by one of four concurrent
// sender flows. The interesting outputs are the custom metrics —
// frames/s (accepted aggregate rate) and delivered (accepted/sent
// ratio; loss under overload is legal UDP behaviour, so it is reported
// rather than asserted) — emitted into BENCH_ingest_mt.json for the
// benchdiff gate. Aggregate speedup of listeners=4 over listeners=1
// requires a multi-core runner; on one core the group still must not
// regress.
func BenchmarkIngestMT(b *testing.B) {
	for _, listeners := range []int{1, 4} {
		for _, batch := range []int{1, 32} {
			for _, shards := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("listeners=%d/batch=%d/shards=%d", listeners, batch, shards),
					func(b *testing.B) { benchIngestMT(b, listeners, batch, shards) })
			}
		}
	}
}

func benchIngestMT(b *testing.B, listeners, batch, shards int) {
	const nodes, rpn, senders = 256, 4, 4
	f, err := BuildFleet(FleetConfig{
		Nodes:            nodes,
		RunnablesPerNode: rpn,
		Interval:         100 * time.Millisecond,
		CyclePeriod:      10 * time.Millisecond,
		GraceFrames:      3,
		Listeners:        listeners,
		BatchSize:        batch,
		Shards:           shards,
		QueueLen:         2048,
		Clock:            sim.NewManualClock(),
	})
	if err != nil {
		b.Fatalf("BuildFleet: %v", err)
	}
	addr, err := f.Server.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatalf("Listen: %v", err)
	}
	defer f.Server.Close()

	// Split b.N frames across the sender flows; each flow owns a
	// disjoint node subset so per-node sequence numbers stay monotonic.
	var sent atomic.Uint64
	var wg sync.WaitGroup
	b.ResetTimer()
	for sdr := 0; sdr < senders; sdr++ {
		share := b.N / senders
		if sdr < b.N%senders {
			share++
		}
		if share == 0 {
			continue
		}
		wg.Add(1)
		go func(sdr, share int) {
			defer wg.Done()
			conn, err := net.Dial("udp", addr.String())
			if err != nil {
				b.Errorf("Dial: %v", err)
				return
			}
			defer conn.Close()
			frame := wire.Frame{Epoch: 1, IntervalMs: 100}
			for r := 0; r < rpn; r++ {
				frame.Beats = append(frame.Beats, wire.BeatRec{Runnable: uint32(r), Beats: 1})
			}
			own := make([]uint32, 0, nodes/senders)
			for n := sdr; n < nodes; n += senders {
				own = append(own, uint32(n))
			}
			seqs := make([]uint64, len(own))
			buf := make([]byte, 0, 128)
			for i := 0; i < share; i++ {
				k := i % len(own)
				seqs[k]++
				frame.Node = own[k]
				frame.Seq = seqs[k]
				var err error
				buf, err = wire.AppendFrame(buf[:0], &frame)
				if err != nil {
					b.Errorf("AppendFrame: %v", err)
					return
				}
				if _, err := conn.Write(buf); err == nil {
					sent.Add(1)
				}
			}
		}(sdr, share)
	}
	wg.Wait()

	// Quiesce: every datagram still in flight is either counted by a
	// listener or already lost in the kernel; wait for the frame counter
	// to go stable before stopping the clock.
	var last uint64
	stable := 0
	for stable < 10 {
		cur := f.Server.Stats().Frames
		if cur == last {
			stable++
		} else {
			stable, last = 0, cur
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := b.Elapsed()
	b.StopTimer()

	// Overload shows up as loss (kernel drops, full queues, a dry free
	// list) and is reported via the delivered ratio — legal UDP
	// behaviour, not a failure. Only protocol errors are fatal.
	st := f.Server.Stats()
	if st.DecodeErrors != 0 || st.UnknownNode != 0 {
		b.Fatalf("ingest errors under benchmark load: %+v", st)
	}
	if elapsed > 0 {
		b.ReportMetric(float64(st.Accepted)/elapsed.Seconds(), "frames/s")
	}
	if s := sent.Load(); s > 0 {
		b.ReportMetric(float64(st.Frames)/float64(s), "delivered")
	}
}
