package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel()
	if got := k.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestAtFiresInTimestampOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30*Millisecond, func() { order = append(order, 3) })
	k.At(10*Millisecond, func() { order = append(order, 1) })
	k.At(20*Millisecond, func() { order = append(order, 2) })
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := k.Now(); got != 30*Millisecond {
		t.Fatalf("Now() = %v, want 30ms", got)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5*Millisecond, func() { order = append(order, i) })
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of scheduling order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel()
	var at Time
	k.At(7*Millisecond, func() {
		k.After(3*time.Millisecond, func() { at = k.Now() })
	})
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if at != 10*Millisecond {
		t.Fatalf("nested After fired at %v, want 10ms", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5*Millisecond, func() {})
	})
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
}

func TestNilEventFuncPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("nil EventFunc did not panic")
		}
	}()
	k.At(0, nil)
}

func TestCancelPreventsFiring(t *testing.T) {
	k := NewKernel()
	fired := false
	ev := k.At(10*Millisecond, func() { fired = true })
	if !k.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if k.Cancel(ev) {
		t.Fatal("second Cancel returned true")
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	k := NewKernel()
	ev := k.At(1*Millisecond, func() {})
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if k.Cancel(ev) {
		t.Fatal("Cancel of fired event returned true")
	}
}

func TestCancelNilIsNoop(t *testing.T) {
	k := NewKernel()
	if k.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	k := NewKernel()
	var fired []int
	evs := make([]*Event, 0, 20)
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, k.At(Time(i)*Millisecond, func() { fired = append(fired, i) }))
	}
	// Cancel every third event, from the middle of the heap.
	for i := 2; i < 20; i += 3 {
		if !k.Cancel(evs[i]) {
			t.Fatalf("Cancel(evs[%d]) = false", i)
		}
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	for _, v := range fired {
		if v >= 2 && (v-2)%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if !sort.IntsAreSorted(fired) {
		t.Fatalf("events fired out of order after heap removal: %v", fired)
	}
	if len(fired) != 14 {
		t.Fatalf("fired %d events, want 14", len(fired))
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for i := 1; i <= 5; i++ {
		tm := Time(i) * 10 * Millisecond
		k.At(tm, func() { fired = append(fired, tm) })
	}
	if err := k.Run(25 * Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if k.Now() != 25*Millisecond {
		t.Fatalf("Now() = %v after Run, want horizon 25ms", k.Now())
	}
	if k.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3", k.Pending())
	}
	// Resuming picks up the remaining events.
	if err := k.Run(100 * Millisecond); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunEventAtHorizonFires(t *testing.T) {
	k := NewKernel()
	fired := false
	k.At(10*Millisecond, func() { fired = true })
	if err := k.Run(10 * Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestStopAbortsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 0; i < 10; i++ {
		k.At(Time(i)*Millisecond, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	err := k.RunUntilIdle()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("RunUntilIdle = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestReentrantRunFails(t *testing.T) {
	k := NewKernel()
	var inner error
	k.At(0, func() { inner = k.Run(Second) })
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if inner == nil {
		t.Fatal("re-entrant Run did not error")
	}
}

func TestEveryTicksAtPeriod(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	k.Every(10*Millisecond, 10*time.Millisecond, func() bool {
		ticks = append(ticks, k.Now())
		return len(ticks) < 5
	})
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(ticks) != 5 {
		t.Fatalf("ticker fired %d times, want 5", len(ticks))
	}
	for i, tm := range ticks {
		want := Time(i+1) * 10 * Millisecond
		if tm != want {
			t.Fatalf("tick %d at %v, want %v", i, tm, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	k := NewKernel()
	ticker := (*Ticker)(nil)
	count := 0
	ticker = k.Every(0, 5*time.Millisecond, func() bool {
		count++
		if count == 3 {
			ticker.Stop()
		}
		return true
	})
	if err := k.Run(Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop, want 3", count)
	}
	if ticker.Ticks() != 3 {
		t.Fatalf("Ticks() = %d, want 3", ticker.Ticks())
	}
	ticker.Stop() // second Stop is a no-op
}

func TestEveryNonPositivePeriodPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("Every with zero period did not panic")
		}
	}()
	k.Every(0, 0, func() bool { return true })
}

func TestEventsFiredCounter(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 7; i++ {
		k.At(Time(i), func() {})
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if k.EventsFired() != 7 {
		t.Fatalf("EventsFired() = %d, want 7", k.EventsFired())
	}
}

// Property: for any multiset of scheduling instants, events fire in
// non-decreasing time order and the clock never moves backwards.
func TestQuickEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, off := range offsets {
			at := Time(off) * Microsecond
			k.At(at, func() { fired = append(fired, k.Now()) })
		}
		if err := k.RunUntilIdle(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset never disturbs the order of the
// survivors, and exactly the survivors fire.
func TestQuickCancelSubset(t *testing.T) {
	f := func(offsets []uint16, cancelMask []bool) bool {
		k := NewKernel()
		fired := map[int]bool{}
		var order []Time
		evs := make([]*Event, len(offsets))
		for i, off := range offsets {
			i := i
			at := Time(off) * Microsecond
			evs[i] = k.At(at, func() {
				fired[i] = true
				order = append(order, k.Now())
			})
		}
		wantFired := len(offsets)
		for i := range offsets {
			if i < len(cancelMask) && cancelMask[i] {
				k.Cancel(evs[i])
				wantFired--
			}
		}
		if err := k.RunUntilIdle(); err != nil {
			return false
		}
		if len(fired) != wantFired {
			return false
		}
		for i := range offsets {
			cancelled := i < len(cancelMask) && cancelMask[i]
			if cancelled == fired[i] {
				return false
			}
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two kernels fed the same pseudo-random schedule produce the
// identical firing sequence (determinism).
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		runOnce := func() []int {
			rng := rand.New(rand.NewSource(seed))
			k := NewKernel()
			var ids []int
			for i := 0; i < 50; i++ {
				i := i
				k.At(Time(rng.Intn(1000))*Microsecond, func() { ids = append(ids, i) })
			}
			if err := k.RunUntilIdle(); err != nil {
				return nil
			}
			return ids
		}
		a, b := runOnce(), runOnce()
		if len(a) != len(b) || len(a) != 50 {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(15 * time.Millisecond)
	if tm != 15*Millisecond {
		t.Fatalf("Add = %v, want 15ms", tm)
	}
	if d := tm.Sub(5 * Millisecond); d != 10*time.Millisecond {
		t.Fatalf("Sub = %v, want 10ms", d)
	}
	if tm.Duration() != 15*time.Millisecond {
		t.Fatalf("Duration = %v", tm.Duration())
	}
	if tm.String() != "15ms" {
		t.Fatalf("String = %q", tm.String())
	}
}
