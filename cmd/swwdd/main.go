// Command swwdd is the Software Watchdog ingestion daemon: the
// dedicated health-monitoring node of a distributed deployment. It
// listens for batched heartbeat frames (internal/wire) from remote
// reporter nodes over UDP, replays them into a local watchdog on the
// lock-free hot path (internal/ingest), supervises each node's link
// through a synthetic link runnable, and serves the combined telemetry —
// watchdog snapshot plus wire counters — on an HTTP metrics endpoint.
//
// Usage:
//
//	swwdd -listen :9400 -metrics :9401 -nodes 8 -runnables 10 -interval 100ms
//
// The fleet topology is uniform: -nodes nodes, each reporting
// -runnables runnables and flushing one frame per -interval. Remote
// reporters use the swwdclient library (see examples/remotenode) with a
// node ID below -nodes and a matching runnable count. A node that stops
// reporting — crashed process, unplugged network — raises an aliveness
// fault on its link runnable within one monitoring window, printed to
// stdout and visible on /metrics like any local fault.
//
// Two-terminal quickstart:
//
//	go run ./cmd/swwdd -listen :9400 -metrics :9401 &
//	go run ./examples/remotenode -addr localhost:9400 -node 0
//	curl -s localhost:9401/metrics | grep swwd_ingest_
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"swwd"
	"swwd/internal/ingest"
	"swwd/internal/promtext"
	"swwd/internal/treat"
)

// printSink streams watchdog output to stdout.
type printSink struct {
	mu    sync.Mutex
	quiet bool

	faults uint64
	states uint64
}

func (s *printSink) Fault(r swwd.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults++
	if !s.quiet {
		fmt.Printf("%v FAULT %s runnable=%d task=%d observed=%d expected=%d\n",
			time.Duration(r.Time), r.Kind, r.Runnable, r.Task, r.Observed, r.Expected)
	}
}

func (s *printSink) StateChanged(e swwd.StateEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.states++
	fmt.Printf("%v STATE %s -> %s (cause %s)\n", time.Duration(e.Time), e.Scope, e.State, e.Cause)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "swwdd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", ":9400", "UDP address to ingest heartbeat frames on")
	metrics := flag.String("metrics", "", "serve /metrics and /debug/pprof on this HTTP address (e.g. :9401)")
	nodes := flag.Int("nodes", 8, "number of remote reporter nodes to pre-register")
	runnables := flag.Int("runnables", 10, "monitored runnables per node")
	interval := flag.Duration("interval", 100*time.Millisecond, "declared per-node frame flush interval")
	cycle := flag.Duration("cycle", 10*time.Millisecond, "watchdog monitoring cycle period")
	grace := flag.Int("grace", ingest.DefaultGraceFrames, "flush intervals a node may stay silent before a link aliveness fault")
	shards := flag.Int("shards", ingest.DefaultShards, "ingest worker shards (a node is pinned to node%shards)")
	listeners := flag.Int("listeners", 0, "UDP sockets bound to -listen via SO_REUSEPORT (0 = one per CPU up to 8; platforms without SO_REUSEPORT fall back to 1)")
	readBatch := flag.Int("read-batch", ingest.DefaultBatchSize, "datagrams one socket receive may return (recvmmsg batching; 1 disables)")
	duration := flag.Duration("duration", 0, "exit after this long (0 = run until SIGINT/SIGTERM)")
	quiet := flag.Bool("quiet", false, "suppress per-fault output")
	treatDeps := flag.String("treat-deps", "", "fault-treatment dependency edges as node:depends_on pairs (e.g. \"1:0,2:0\"); enables the treatment control plane")
	treatRecovery := flag.Int("treat-recovery", 0, "heartbeat frames a quarantined node must deliver before resuming (0 = default)")
	treatRestart := flag.Bool("treat-restart-dependents", false, "send restart-runnables commands to dependents scaled back up after recovery")
	treatSpec := flag.String("treat-spec", "", "JSON treatment spec file (see swwd.TreatmentSpec); mutually exclusive with -treat-deps")
	flag.Parse()

	treatment, err := treatmentConfig(*treatSpec, *treatDeps, *treatRecovery, *treatRestart, *nodes)
	if err != nil {
		return err
	}

	if *listeners <= 0 {
		*listeners = runtime.NumCPU()
		if *listeners > 8 {
			*listeners = 8
		}
	}
	sink := &printSink{quiet: *quiet}
	fleet, err := ingest.BuildFleet(ingest.FleetConfig{
		Nodes:            *nodes,
		RunnablesPerNode: *runnables,
		Interval:         *interval,
		CyclePeriod:      *cycle,
		GraceFrames:      *grace,
		Shards:           *shards,
		Listeners:        *listeners,
		BatchSize:        *readBatch,
		Sink:             sink,
		Treatment:        treatment,
	})
	if err != nil {
		return err
	}
	if fleet.Treat != nil {
		defer fleet.Treat.Close()
	}
	addr, err := fleet.Server.Listen(*listen)
	if err != nil {
		return err
	}
	defer fleet.Server.Close()

	svc, err := swwd.NewService(fleet.Watchdog, *cycle)
	if err != nil {
		return err
	}
	if err := svc.Start(); err != nil {
		return err
	}
	defer func() { _ = svc.Stop() }()

	if *metrics != "" {
		exp := &exporter{svc: svc, srv: fleet.Server, names: fleet.Names, treat: fleet.Treat}
		http.HandleFunc("/metrics", exp.handle)
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return err
		}
		fmt.Printf("swwdd: metrics on http://%s/metrics\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}
	fmt.Printf("swwdd: ingesting on %s (%d nodes x %d runnables, interval %v, cycle %v)\n",
		addr, *nodes, *runnables, *interval, *cycle)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	<-ctx.Done()

	st := fleet.Server.Stats()
	res := fleet.Watchdog.Results()
	fmt.Printf("swwdd: frames=%d accepted=%d bytes=%d decode_errors=%d seq_gaps=%d dup_drops=%d restarts=%d stale_epochs=%d interval_mismatch=%d dropped=%d buffers_exhausted=%d\n",
		st.Frames, st.Accepted, st.Bytes, st.DecodeErrors, st.SeqGaps, st.DuplicateDrops,
		st.NodeRestarts, st.StaleEpochDrops, st.IntervalMismatch, st.DroppedPackets, st.BuffersExhausted)
	fmt.Printf("swwdd: listeners=%d", st.Listeners)
	for i, ls := range fleet.Server.ListenerStats() {
		fmt.Printf(" [%d packets=%d batches=%d max_batch=%d]", i, ls.Packets, ls.Batches, ls.MaxBatch)
	}
	fmt.Println()
	fmt.Printf("swwdd: commands sent=%d acked=%d dropped=%d stale_acks=%d\n",
		st.CommandsSent, st.CommandsAcked, st.CommandsDropped, st.CommandStaleAcks)
	fmt.Printf("swwdd: detections aliveness=%d arrival_rate=%d program_flow=%d\n",
		res.Aliveness, res.ArrivalRate, res.ProgramFlow)
	if fleet.Treat != nil {
		ts := fleet.Treat.Stats()
		fmt.Printf("swwdd: treatment quarantines=%d resumes=%d scale_downs=%d scale_ups=%d active_quarantines=%d exec_errors=%d\n",
			ts.Quarantines, ts.Resumes, ts.ScaleDowns, ts.ScaleUps, ts.ActiveQuarantines, ts.ExecErrors)
	}
	return nil
}

// treatmentConfig derives the fleet treatment configuration from the
// -treat-* flags: a JSON spec file, or inline node:depends_on edges
// with the policy knobs. Nil means the control plane stays off.
func treatmentConfig(specPath, deps string, recovery int, restart bool, nodes int) (*ingest.TreatmentConfig, error) {
	if specPath != "" && deps != "" {
		return nil, fmt.Errorf("-treat-spec and -treat-deps are mutually exclusive")
	}
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ts, err := swwd.LoadTreatment(f)
		if err != nil {
			return nil, err
		}
		edges, pol, err := ts.Treatment(nodes)
		if err != nil {
			return nil, err
		}
		return &ingest.TreatmentConfig{Edges: edges, Policy: pol}, nil
	}
	if deps == "" {
		return nil, nil
	}
	var edges []swwd.TreatmentEdge
	for _, part := range strings.Split(deps, ",") {
		var n, d uint32
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d:%d", &n, &d); err != nil {
			return nil, fmt.Errorf("-treat-deps entry %q: want node:depends_on", part)
		}
		edges = append(edges, swwd.TreatmentEdge{Node: n, DependsOn: d})
	}
	pol := swwd.TreatmentPolicy{RecoveryFrames: recovery, RestartDependents: restart}
	return &ingest.TreatmentConfig{Edges: edges, Policy: pol}, nil
}

// exporter renders the combined telemetry: the watchdog snapshot plus
// the ingestion server's wire counters, with one reused buffer.
type exporter struct {
	svc   *swwd.Service
	srv   *ingest.Server
	names []string
	treat *treat.Controller // nil when the control plane is off

	mu   sync.Mutex
	snap swwd.Snapshot
	buf  bytes.Buffer
}

func (e *exporter) handle(w http.ResponseWriter, _ *http.Request) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.svc.SnapshotInto(&e.snap)
	e.buf.Reset()
	promtext.WriteSnapshot(&e.buf, &e.snap, e.names)
	promtext.WriteIngest(&e.buf, e.srv.Stats())
	promtext.WriteIngestDetail(&e.buf, e.srv.ListenerStats(), e.srv.ShardStats())
	if e.treat != nil {
		promtext.WriteTreat(&e.buf, e.treat.Stats())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(e.buf.Bytes())
}
