package swwd

import (
	"sync"
	"testing"
	"time"
)

// buildModel returns a one-app, one-task, two-runnable model.
func buildModel(t *testing.T) (*Model, TaskID, RunnableID, RunnableID) {
	t.Helper()
	m := NewModel()
	app, err := m.AddApp("service", SafetyCritical)
	if err != nil {
		t.Fatalf("AddApp: %v", err)
	}
	task, err := m.AddTask(app, "worker", 1)
	if err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	producer, err := m.AddRunnable(task, "producer", time.Millisecond, SafetyCritical)
	if err != nil {
		t.Fatalf("AddRunnable: %v", err)
	}
	consumer, err := m.AddRunnable(task, "consumer", time.Millisecond, SafetyCritical)
	if err != nil {
		t.Fatalf("AddRunnable: %v", err)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return m, task, producer, consumer
}

func TestNewDefaultsToWallClock(t *testing.T) {
	m, _, _, _ := buildModel(t)
	w, err := New(m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if w.CyclePeriod() != CyclePeriodDefault {
		t.Fatalf("CyclePeriod = %v", w.CyclePeriod())
	}
}

func TestReexportedConstantsMatch(t *testing.T) {
	if AlivenessError.String() != "aliveness" || StateOK.String() != "OK" {
		t.Fatal("re-exports broken")
	}
	if DefaultThresholds().ProgramFlow != 3 {
		t.Fatal("default thresholds changed")
	}
}

func TestServiceValidation(t *testing.T) {
	if _, err := NewService(nil, time.Second); err == nil {
		t.Fatal("nil watchdog accepted")
	}
}

func TestServiceLifecycle(t *testing.T) {
	m, _, producer, _ := buildModel(t)
	w, err := New(m, WithCyclePeriod(2*time.Millisecond))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := w.SetHypothesis(producer, Hypothesis{AlivenessCycles: 2, MinHeartbeats: 1}); err != nil {
		t.Fatalf("SetHypothesis: %v", err)
	}
	if err := w.Activate(producer); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	svc, err := NewService(w, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	if svc.Watchdog() != w {
		t.Fatal("Watchdog() mismatch")
	}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := svc.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	// A healthy goroutine beats faster than the hypothesis requires.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				w.Heartbeat(producer)
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if got := w.Results().Aliveness; got != 0 {
		t.Fatalf("healthy goroutine produced %d aliveness errors", got)
	}
	// Stall the goroutine: errors accumulate.
	close(stop)
	wg.Wait()
	time.Sleep(50 * time.Millisecond)
	if got := w.Results().Aliveness; got == 0 {
		t.Fatal("stalled goroutine not detected")
	}
	svc.Stop()
	svc.Stop() // idempotent
	after := w.CycleCount()
	time.Sleep(20 * time.Millisecond)
	if w.CycleCount() != after {
		t.Fatal("cycles still advancing after Stop")
	}
}

func TestServiceRestart(t *testing.T) {
	m, _, _, _ := buildModel(t)
	w, err := New(m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	svc, err := NewService(w, time.Millisecond)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := svc.Start(); err != nil {
			t.Fatalf("Start #%d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
		svc.Stop()
	}
	if w.CycleCount() == 0 {
		t.Fatal("no cycles across restarts")
	}
}

func TestEndToEndFlowCheckingViaFacade(t *testing.T) {
	m, _, producer, consumer := buildModel(t)
	w, err := New(m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := w.AddFlowSequence(producer, consumer); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	w.Heartbeat(producer)
	w.Heartbeat(consumer)
	w.Heartbeat(producer)
	w.Heartbeat(producer) // illegal producer→producer
	if got := w.Results().ProgramFlow; got != 1 {
		t.Fatalf("ProgramFlow = %d, want 1", got)
	}
}
