// Package vehicle provides the plant and environment models behind the
// validator's driving-dynamics and environment-simulation nodes (§4.1):
// a longitudinal vehicle model for SafeSpeed (automatic limitation of
// vehicle speed to an externally commanded maximum), a lateral lane model
// for SafeLane (lane departure warning), and deterministic driver and
// environment profiles.
package vehicle

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Gravity is the standard gravitational acceleration in m/s².
const Gravity = 9.81

// airDensity is the standard air density in kg/m³.
const airDensity = 1.204

// LongitudinalParams parametrise the one-dimensional vehicle model.
type LongitudinalParams struct {
	// Mass in kg.
	Mass float64
	// MaxDriveForce in N at full throttle.
	MaxDriveForce float64
	// MaxBrakeForce in N at full braking.
	MaxBrakeForce float64
	// DragArea is Cd·A in m² for aerodynamic drag.
	DragArea float64
	// RollCoeff is the rolling-resistance coefficient.
	RollCoeff float64
}

// DefaultLongitudinalParams model a mid-size passenger car.
func DefaultLongitudinalParams() LongitudinalParams {
	return LongitudinalParams{
		Mass:          1500,
		MaxDriveForce: 6000,
		MaxBrakeForce: 12000,
		DragArea:      0.7,
		RollCoeff:     0.012,
	}
}

// Validate checks physical plausibility.
func (p LongitudinalParams) Validate() error {
	if p.Mass <= 0 || p.MaxDriveForce <= 0 || p.MaxBrakeForce <= 0 {
		return errors.New("vehicle: mass and forces must be positive")
	}
	if p.DragArea < 0 || p.RollCoeff < 0 {
		return errors.New("vehicle: drag and rolling coefficients must be non-negative")
	}
	return nil
}

// Longitudinal integrates vehicle speed under throttle and brake inputs.
type Longitudinal struct {
	params LongitudinalParams
	speed  float64 // m/s
	dist   float64 // m travelled
}

// NewLongitudinal creates the model at standstill.
func NewLongitudinal(p LongitudinalParams) (*Longitudinal, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Longitudinal{params: p}, nil
}

// Speed reports the current speed in m/s.
func (l *Longitudinal) Speed() float64 { return l.speed }

// Distance reports the travelled distance in m.
func (l *Longitudinal) Distance() float64 { return l.dist }

// SetSpeed overrides the state, e.g. for scenario setup.
func (l *Longitudinal) SetSpeed(v float64) {
	if v < 0 {
		v = 0
	}
	l.speed = v
}

// Step advances the model by dt with throttle and brake in [0,1] (values
// outside are clamped — actuator saturation).
func (l *Longitudinal) Step(dt time.Duration, throttle, brake float64) {
	if dt <= 0 {
		return
	}
	throttle = clamp01(throttle)
	brake = clamp01(brake)
	drive := throttle * l.params.MaxDriveForce
	braking := brake * l.params.MaxBrakeForce
	drag := 0.5 * airDensity * l.params.DragArea * l.speed * l.speed
	roll := 0.0
	if l.speed > 0 {
		roll = l.params.RollCoeff * l.params.Mass * Gravity
	}
	accel := (drive - braking - drag - roll) / l.params.Mass
	h := dt.Seconds()
	l.speed += accel * h
	if l.speed < 0 {
		l.speed = 0
	}
	l.dist += l.speed * h
}

// LateralParams parametrise the lane-tracking model.
type LateralParams struct {
	// Wheelbase in m.
	Wheelbase float64
	// LaneHalfWidth is the distance from lane centre to marking in m.
	LaneHalfWidth float64
}

// DefaultLateralParams model a passenger car in a standard lane.
func DefaultLateralParams() LateralParams {
	return LateralParams{Wheelbase: 2.7, LaneHalfWidth: 1.75}
}

// Validate checks plausibility.
func (p LateralParams) Validate() error {
	if p.Wheelbase <= 0 || p.LaneHalfWidth <= 0 {
		return errors.New("vehicle: wheelbase and lane width must be positive")
	}
	return nil
}

// Lateral integrates lateral lane offset under a steering input and road
// curvature, using the kinematic bicycle approximation for small angles.
type Lateral struct {
	params  LateralParams
	offset  float64 // m from lane centre, positive left
	heading float64 // rad relative to lane direction
}

// NewLateral creates the model centred in the lane.
func NewLateral(p LateralParams) (*Lateral, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Lateral{params: p}, nil
}

// Offset reports the lateral offset from the lane centre in m.
func (l *Lateral) Offset() float64 { return l.offset }

// Heading reports the heading error in rad.
func (l *Lateral) Heading() float64 { return l.heading }

// SetOffset overrides the lateral state for scenario setup.
func (l *Lateral) SetOffset(offset, heading float64) {
	l.offset = offset
	l.heading = heading
}

// Step advances the model by dt at speed v (m/s) with front steering angle
// steer (rad) on a road of the given curvature (1/m).
func (l *Lateral) Step(dt time.Duration, v, steer, curvature float64) {
	if dt <= 0 || v <= 0 {
		return
	}
	h := dt.Seconds()
	yawRate := v / l.params.Wheelbase * math.Tan(steer)
	l.heading += (yawRate - v*curvature) * h
	l.offset += v * math.Sin(l.heading) * h
}

// Departed reports whether the vehicle centre has crossed a lane marking.
func (l *Lateral) Departed() bool {
	return math.Abs(l.offset) >= l.params.LaneHalfWidth
}

// Segment is one piece of a piecewise-constant profile.
type Segment struct {
	Until time.Duration // segment applies while t < Until
	Value float64
}

// Profile is a piecewise-constant function of scenario time, used for
// commanded speed limits and road curvature.
type Profile struct {
	segments []Segment
	fallback float64
}

// NewProfile builds a profile; segments must be ordered by Until.
// fallback applies beyond the last segment.
func NewProfile(fallback float64, segments ...Segment) (*Profile, error) {
	for i := 1; i < len(segments); i++ {
		if segments[i].Until <= segments[i-1].Until {
			return nil, fmt.Errorf("vehicle: profile segments out of order at %d", i)
		}
	}
	return &Profile{segments: segments, fallback: fallback}, nil
}

// At evaluates the profile at scenario time t.
func (p *Profile) At(t time.Duration) float64 {
	for _, s := range p.segments {
		if t < s.Until {
			return s.Value
		}
	}
	return p.fallback
}

// Driver is a deterministic open-loop driver model: a desired-speed
// profile translated to throttle via a proportional law, plus a steering
// profile for lateral scenarios.
type Driver struct {
	// DesiredSpeed is the driver's target speed profile in m/s.
	DesiredSpeed *Profile
	// Steer is the steering-angle profile in rad.
	Steer *Profile
	// ThrottleGain converts speed error to throttle demand.
	ThrottleGain float64
}

// NewDriver builds a driver; profiles may be nil (zero demand).
func NewDriver(desired, steer *Profile, gain float64) (*Driver, error) {
	if gain <= 0 {
		return nil, errors.New("vehicle: driver gain must be positive")
	}
	return &Driver{DesiredSpeed: desired, Steer: steer, ThrottleGain: gain}, nil
}

// Throttle reports the driver throttle demand in [0,1] at time t given the
// current speed.
func (d *Driver) Throttle(t time.Duration, speed float64) float64 {
	if d.DesiredSpeed == nil {
		return 0
	}
	return clamp01((d.DesiredSpeed.At(t) - speed) * d.ThrottleGain)
}

// Steering reports the steering angle at time t.
func (d *Driver) Steering(t time.Duration) float64 {
	if d.Steer == nil {
		return 0
	}
	return d.Steer.At(t)
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

// KphToMs converts km/h to m/s.
func KphToMs(kph float64) float64 { return kph / 3.6 }

// MsToKph converts m/s to km/h.
func MsToKph(ms float64) float64 { return ms * 3.6 }
