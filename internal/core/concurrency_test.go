package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// buildConcurrencyFixture builds a model with nTasks tasks of
// runnablesPerTask runnables each, a full hypothesis on every runnable,
// every runnable active, and the straight-line flow sequence installed per
// task.
func buildConcurrencyFixture(t testing.TB, nTasks, runnablesPerTask int) (*Watchdog, []runnable.ID, []runnable.TaskID) {
	t.Helper()
	m := runnable.NewModel()
	app, err := m.AddApp("stress", runnable.SafetyCritical)
	if err != nil {
		t.Fatalf("AddApp: %v", err)
	}
	var rids []runnable.ID
	var tids []runnable.TaskID
	for ti := 0; ti < nTasks; ti++ {
		task, err := m.AddTask(app, "T"+string(rune('A'+ti)), ti+1)
		if err != nil {
			t.Fatalf("AddTask: %v", err)
		}
		tids = append(tids, task)
		for ri := 0; ri < runnablesPerTask; ri++ {
			rid, err := m.AddRunnable(task, "r"+string(rune('A'+ti))+string(rune('0'+ri)), time.Millisecond, runnable.SafetyCritical)
			if err != nil {
				t.Fatalf("AddRunnable: %v", err)
			}
			rids = append(rids, rid)
		}
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	w, err := New(Config{
		Model: m, Clock: sim.NewManualClock(),
		EagerArrivalCheck: true, // exercise the eager cold path too
		JournalSize:       16,   // tiny ring so the stress run wraps it constantly
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, rid := range rids {
		if err := w.SetHypothesis(rid, Hypothesis{
			AlivenessCycles: 4, MinHeartbeats: 1,
			ArrivalCycles: 4, MaxArrivals: 64,
		}); err != nil {
			t.Fatalf("SetHypothesis: %v", err)
		}
		if err := w.Activate(rid); err != nil {
			t.Fatalf("Activate: %v", err)
		}
	}
	for ti := 0; ti < nTasks; ti++ {
		seq := rids[ti*runnablesPerTask : (ti+1)*runnablesPerTask]
		if len(seq) >= 2 {
			if err := w.AddFlowSequence(seq...); err != nil {
				t.Fatalf("AddFlowSequence: %v", err)
			}
		}
	}
	return w, rids, tids
}

// TestConcurrentBeatCycle_Race hammers the watchdog from many goroutines
// at once — heartbeats via both the legacy Heartbeat entry point and
// Monitor handles, the time-triggered Cycle sweep, activation toggles and
// fault treatment — and is intended to run under `go test -race`. It
// asserts only invariants that hold under any interleaving: no panics, no
// data races, a bounded snapshot, and that results remain monotonic.
func TestConcurrentBeatCycle_Race(t *testing.T) {
	const (
		nTasks     = 8
		perTask    = 8
		goroutines = 8
		iterations = 2000
	)
	w, rids, tids := buildConcurrencyFixture(t, nTasks, perTask)

	monitors := make([]*Monitor, len(rids))
	for i, rid := range rids {
		var err error
		monitors[i], err = w.Register(rid)
		if err != nil {
			t.Fatalf("Register(%d): %v", rid, err)
		}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})

	// Beaters: half through handles, half through the legacy wrapper.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			<-start
			for i := 0; i < iterations; i++ {
				k := rng.Intn(len(rids))
				if seed%2 == 0 {
					monitors[k].Beat()
				} else {
					w.Heartbeat(rids[k])
				}
			}
		}(int64(g))
	}

	// Cycle ticker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < iterations/4; i++ {
			w.Cycle()
		}
	}()

	// Activation churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		<-start
		for i := 0; i < iterations/4; i++ {
			rid := rids[rng.Intn(len(rids))]
			if i%2 == 0 {
				_ = w.Deactivate(rid)
			} else {
				_ = w.Activate(rid)
			}
		}
	}()

	// Fault treatment: ClearTask plus suspend/resume.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		<-start
		for i := 0; i < iterations/8; i++ {
			tid := tids[rng.Intn(len(tids))]
			switch i % 3 {
			case 0:
				_ = w.ClearTask(tid)
			case 1:
				_ = w.SuspendTaskMonitoring(tid)
			default:
				_ = w.ResumeTaskMonitoring(tid)
			}
		}
	}()

	// Readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < iterations/4; i++ {
			_ = w.Results()
			_, _ = w.CounterSnapshot(rids[i%len(rids)])
			_ = w.ECUState()
			_ = w.CycleCount()
		}
	}()

	// Telemetry scrapers: full snapshots and journal copies with reused
	// buffers, racing the beaters, the sweep and the treatment paths —
	// the shape of a live metrics endpoint scraping a busy watchdog.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var snap Snapshot
		var entries []JournalEntry
		<-start
		for i := 0; i < iterations/4; i++ {
			w.SnapshotInto(&snap)
			if len(snap.Runnables) != len(rids) {
				t.Errorf("snapshot has %d runnables, want %d", len(snap.Runnables), len(rids))
				return
			}
			entries = w.JournalInto(entries[:0])
			for j := 1; j < len(entries); j++ {
				if entries[j].Seq != entries[j-1].Seq+1 {
					t.Errorf("journal copy not contiguous: seq %d after %d",
						entries[j].Seq, entries[j-1].Seq)
					return
				}
			}
			_ = w.JournalStats()
			_ = w.SweepHistogram()
		}
	}()

	close(start)
	wg.Wait()

	// Monotonicity / sanity: one more quiet window must be observable.
	before := w.Results()
	w.Cycle()
	after := w.Results()
	if after.Aliveness < before.Aliveness || after.ArrivalRate < before.ArrivalRate ||
		after.ProgramFlow < before.ProgramFlow {
		t.Fatalf("results went backwards: %+v -> %+v", before, after)
	}

	// Journal accounting closes consistent: written = retained + dropped,
	// and the drop counter only exceeds zero once the ring has wrapped.
	st := w.JournalStats()
	if uint64(st.Len) != st.Written-st.Dropped {
		t.Fatalf("journal accounting: Len %d != Written %d - Dropped %d", st.Len, st.Written, st.Dropped)
	}
	if st.Written > uint64(st.Cap) && st.Dropped == 0 {
		t.Fatalf("journal wrapped (%d written into %d slots) but dropped nothing", st.Written, st.Cap)
	}
}

// TestConcurrentRegisterAndConfig races Register/SetHypothesis/flow-table
// growth against live heartbeats: configuration is copy-on-write, so
// beats in flight must always see either the old or the new table.
func TestConcurrentRegisterAndConfig(t *testing.T) {
	w, rids, _ := buildConcurrencyFixture(t, 4, 4)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			<-start
			for i := 0; i < 1000; i++ {
				w.Heartbeat(rids[rng.Intn(len(rids))])
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 500; i++ {
			m, err := w.Register(rids[i%len(rids)])
			if err != nil {
				t.Errorf("Register: %v", err)
				return
			}
			m.Beat()
			_ = m.Counters()
			_ = w.SetHypothesis(rids[i%len(rids)], Hypothesis{
				AlivenessCycles: 3, MinHeartbeats: 1,
				ArrivalCycles: 3, MaxArrivals: 32,
			})
			_ = w.MonitorFlow(rids[i%len(rids)])
		}
	}()
	close(start)
	wg.Wait()
}
