package export

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the push half of the export layer: a Pusher
// periodically renders a payload via a caller-supplied collect function
// and delivers it to an HTTP endpoint as Prometheus text. Collection
// and delivery are decoupled by a bounded backlog so a slow or dead
// collector endpoint never blocks the process being observed: when the
// backlog is full the oldest payload is dropped and counted, matching
// the WAL's drop-don't-block discipline. Delivery retries transient
// failures with exponential backoff before declaring the payload lost.

// contentType is the Prometheus text exposition media type the pull
// endpoints serve and the Pusher posts.
const contentType = "text/plain; version=0.0.4; charset=utf-8"

// Push defaults, chosen so an unconfigured Pusher is gentle: one
// payload per interval, a short backlog, and well under a second of
// retrying before giving a payload up.
const (
	DefaultPushInterval = 5 * time.Second
	DefaultPushTimeout  = 2 * time.Second
	DefaultPushBacklog  = 8
	DefaultPushRetries  = 3
	DefaultPushBackoff  = 100 * time.Millisecond
)

// PushConfig configures a Pusher.
type PushConfig struct {
	// URL is the endpoint POSTed to. Required.
	URL string
	// Collect renders one payload into buf. Required. It is called from
	// the Pusher's collector goroutine once per interval.
	Collect func(buf *bytes.Buffer)
	// Interval is the collection cadence (default DefaultPushInterval).
	Interval time.Duration
	// Timeout bounds one delivery attempt (default DefaultPushTimeout).
	Timeout time.Duration
	// Backlog is the number of collected payloads buffered while the
	// sender retries (default DefaultPushBacklog). When full, the oldest
	// payload is dropped so the backlog always holds the freshest data.
	Backlog int
	// Retries is the number of re-attempts after a failed delivery
	// before the payload is dropped. Zero means DefaultPushRetries;
	// negative disables retrying entirely.
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt
	// (default DefaultPushBackoff).
	Backoff time.Duration
	// Client overrides the HTTP client (its Timeout wins over Timeout).
	Client *http.Client
}

// PushStats is a point-in-time copy of a Pusher's counters.
type PushStats struct {
	// Collected counts payloads rendered; Delivered the payloads
	// accepted by the endpoint with a 2xx status.
	Collected uint64
	Delivered uint64
	// Retries counts re-attempts after a failed delivery; Errors the
	// individual failed attempts (network error or non-2xx status).
	Retries uint64
	Errors  uint64
	// Dropped counts payloads lost — evicted from a full backlog or
	// abandoned after the retry budget.
	Dropped uint64
	// Backlog is the number of payloads currently queued; LastPushNs the
	// wall clock of the last successful delivery (Unix ns, 0 = never).
	Backlog    int
	LastPushNs int64
}

// Pusher periodically collects a payload and POSTs it, decoupled by a
// bounded backlog. Create with NewPusher, then Start; Stop flushes
// nothing (pending payloads are abandoned) and returns once both
// goroutines exited.
type Pusher struct {
	cfg    PushConfig
	client *http.Client
	queue  chan []byte
	stop   chan struct{}
	wg     sync.WaitGroup

	collected atomic.Uint64
	delivered atomic.Uint64
	retries   atomic.Uint64
	errors    atomic.Uint64
	dropped   atomic.Uint64
	lastPush  atomic.Int64
}

// NewPusher builds a Pusher from cfg, applying defaults. It does not
// start goroutines; call Start.
func NewPusher(cfg PushConfig) (*Pusher, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("export: push URL required")
	}
	if cfg.Collect == nil {
		return nil, fmt.Errorf("export: push Collect required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultPushInterval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultPushTimeout
	}
	if cfg.Backlog <= 0 {
		cfg.Backlog = DefaultPushBacklog
	}
	if cfg.Retries == 0 {
		cfg.Retries = DefaultPushRetries
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultPushBackoff
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	return &Pusher{
		cfg:    cfg,
		client: client,
		queue:  make(chan []byte, cfg.Backlog),
		stop:   make(chan struct{}),
	}, nil
}

// Start launches the collector and sender goroutines.
func (p *Pusher) Start() {
	p.wg.Add(2)
	go p.collector()
	go p.sender()
}

// Stop terminates both goroutines and waits for them. Queued payloads
// are abandoned (the process is exiting; the next run re-collects).
func (p *Pusher) Stop() {
	close(p.stop)
	p.wg.Wait()
}

// Stats returns a point-in-time copy of the counters.
func (p *Pusher) Stats() PushStats {
	return PushStats{
		Collected:  p.collected.Load(),
		Delivered:  p.delivered.Load(),
		Retries:    p.retries.Load(),
		Errors:     p.errors.Load(),
		Dropped:    p.dropped.Load(),
		Backlog:    len(p.queue),
		LastPushNs: p.lastPush.Load(),
	}
}

// Healthy reports whether the sink keeps up: a delivery succeeded
// within staleAfter (or none was due yet) and the backlog is not full.
func (p *Pusher) Healthy(staleAfter time.Duration) bool {
	if len(p.queue) == cap(p.queue) {
		return false
	}
	last := p.lastPush.Load()
	if last == 0 {
		// Nothing delivered yet: healthy until the first delivery is
		// overdue, judged by whether anything has been dropped.
		return p.dropped.Load() == 0
	}
	return time.Now().UnixNano()-last < int64(staleAfter)
}

// collector renders one payload per interval and enqueues it, evicting
// the oldest queued payload when the backlog is full.
func (p *Pusher) collector() {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.Interval)
	defer tick.Stop()
	var buf bytes.Buffer
	for {
		select {
		case <-p.stop:
			return
		case <-tick.C:
		}
		buf.Reset()
		p.cfg.Collect(&buf)
		payload := append([]byte(nil), buf.Bytes()...)
		p.collected.Add(1)
		for {
			select {
			case p.queue <- payload:
			default:
				// Full: evict the oldest so the queue trends fresh.
				select {
				case <-p.queue:
					p.dropped.Add(1)
				default:
				}
				continue
			}
			break
		}
	}
}

// sender delivers queued payloads, retrying with exponential backoff.
func (p *Pusher) sender() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case payload := <-p.queue:
			p.deliver(payload)
		}
	}
}

// deliver attempts one payload up to 1+Retries times.
func (p *Pusher) deliver(payload []byte) {
	backoff := p.cfg.Backoff
	for attempt := 0; ; attempt++ {
		if p.post(payload) {
			p.delivered.Add(1)
			p.lastPush.Store(time.Now().UnixNano())
			return
		}
		p.errors.Add(1)
		if attempt >= p.cfg.Retries {
			p.dropped.Add(1)
			return
		}
		select {
		case <-p.stop:
			p.dropped.Add(1)
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		p.retries.Add(1)
	}
}

// post performs one HTTP delivery attempt.
func (p *Pusher) post(payload []byte) bool {
	req, err := http.NewRequest(http.MethodPost, p.cfg.URL, bytes.NewReader(payload))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}
