package swwdclient

import (
	"errors"
	"net"
	"testing"
	"time"

	"swwd/internal/wire"
)

// loopback opens a local UDP sink and returns it plus its address.
func loopback(t *testing.T) *net.UDPConn {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// dialQuiet connects a client whose ticker never fires inside a test, so
// frames leave only on manual Flush.
func dialQuiet(t *testing.T, addr string, runnables int, opts ...Option) *Client {
	t.Helper()
	all := append([]Option{WithNode(7), WithRunnables(runnables), WithInterval(time.Hour)}, opts...)
	c, err := Dial(addr, all...)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// recvFrame reads and decodes one datagram from the sink.
func recvFrame(t *testing.T, conn *net.UDPConn) *wire.Frame {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, wire.MaxFrameSize)
	n, _, err := conn.ReadFromUDP(buf)
	if err != nil {
		t.Fatalf("ReadFromUDP: %v", err)
	}
	var f wire.Frame
	if err := wire.DecodeFrame(buf[:n], &f); err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	return &f
}

func TestClientCoalescesBeatsIntoOneFrame(t *testing.T) {
	sink := loopback(t)
	c := dialQuiet(t, sink.LocalAddr().String(), 4)

	c.Beat(0)
	c.Beat(0)
	c.Beat(0)
	c.BeatN(1, 5)
	c.Exec(2)
	c.Beat(99) // out of range: ignored
	c.Flush()

	f := recvFrame(t, sink)
	if f.Node != 7 || f.Seq != 1 {
		t.Fatalf("frame node/seq = %d/%d, want 7/1", f.Node, f.Seq)
	}
	want := []wire.BeatRec{{Runnable: 0, Beats: 3}, {Runnable: 1, Beats: 5}, {Runnable: 2, Beats: 1}}
	if len(f.Beats) != len(want) {
		t.Fatalf("beats = %v, want %v", f.Beats, want)
	}
	for i := range want {
		if f.Beats[i] != want[i] {
			t.Fatalf("beats = %v, want %v", f.Beats, want)
		}
	}
	if len(f.Flow) != 1 || f.Flow[0] != 2 {
		t.Fatalf("flow = %v, want [2]", f.Flow)
	}

	// Counters were swapped out: the next flush carries only new beats.
	c.Beat(3)
	c.Flush()
	f = recvFrame(t, sink)
	if f.Seq != 2 || len(f.Beats) != 1 || f.Beats[0] != (wire.BeatRec{Runnable: 3, Beats: 1}) {
		t.Fatalf("second frame = %+v, want seq 2 with beats [{3 1}]", f)
	}
	if st := c.Stats(); st.FramesSent != 2 || st.Seq != 2 || st.SendErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientIdleFlushSendsEmptyFrame(t *testing.T) {
	sink := loopback(t)
	c := dialQuiet(t, sink.LocalAddr().String(), 2)
	c.Flush()
	f := recvFrame(t, sink)
	if f.Seq != 1 || len(f.Beats) != 0 || len(f.Flow) != 0 {
		t.Fatalf("idle frame = %+v, want empty seq 1", f)
	}
}

func TestClientFlowBacklogCap(t *testing.T) {
	sink := loopback(t)
	c := dialQuiet(t, sink.LocalAddr().String(), 2, WithMaxFlowBacklog(4))
	for i := 0; i < 6; i++ {
		c.FlowEvent(i % 2)
	}
	if st := c.Stats(); st.FlowDropped != 2 {
		t.Fatalf("FlowDropped = %d, want 2", st.FlowDropped)
	}
	c.Flush()
	if f := recvFrame(t, sink); len(f.Flow) != 4 {
		t.Fatalf("flow = %v, want 4 events", f.Flow)
	}
}

// failingConn always errors on Write, standing in for a broken link.
type failingConn struct{ net.Conn }

func (failingConn) Write([]byte) (int, error) { return 0, errors.New("link down") }
func (failingConn) Close() error              { return nil }

func TestClientFoldsBackOnSendErrorAndReconnects(t *testing.T) {
	sink := loopback(t)
	c := dialQuiet(t, sink.LocalAddr().String(), 2)

	c.flushMu.Lock()
	c.conn = failingConn{}
	c.flushMu.Unlock()

	c.Beat(0)
	c.FlowEvent(1)
	c.Flush()
	st := c.Stats()
	if st.SendErrors != 1 || st.FramesSent != 0 || st.Seq != 0 {
		t.Fatalf("after failed send: stats = %+v", st)
	}

	// Within the backoff window nothing is sent, and nothing is lost.
	c.Flush()
	if st := c.Stats(); st.SendErrors != 1 || st.FramesSent != 0 {
		t.Fatalf("flush inside backoff window sent a frame: %+v", st)
	}

	// Expire the backoff: the next flush redials and the folded-back
	// beats and re-queued flow events travel in the first healthy frame.
	c.flushMu.Lock()
	c.nextDial = time.Time{}
	c.flushMu.Unlock()
	c.Flush()
	f := recvFrame(t, sink)
	if f.Seq != 1 || len(f.Beats) != 1 || f.Beats[0] != (wire.BeatRec{Runnable: 0, Beats: 1}) {
		t.Fatalf("recovery frame = %+v, want seq 1 with beats [{0 1}]", f)
	}
	if len(f.Flow) != 1 || f.Flow[0] != 1 {
		t.Fatalf("recovery flow = %v, want [1]", f.Flow)
	}
	if st := c.Stats(); st.Reconnects != 1 || st.FramesSent != 1 || st.Seq != 1 {
		t.Fatalf("after recovery: stats = %+v", st)
	}
}

func TestClientTickerFlushes(t *testing.T) {
	sink := loopback(t)
	c, err := Dial(sink.LocalAddr().String(),
		WithNode(1), WithRunnables(1), WithInterval(5*time.Millisecond))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	c.Beat(0)
	f := recvFrame(t, sink) // arrives without any manual Flush
	if f.Node != 1 || f.Seq != 1 {
		t.Fatalf("ticker frame = %+v", f)
	}
}

func TestClientCloseSendsFinalFrameAndRefusesReuse(t *testing.T) {
	sink := loopback(t)
	c := dialQuiet(t, sink.LocalAddr().String(), 2)
	c.Beat(1)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f := recvFrame(t, sink)
	if len(f.Beats) != 1 || f.Beats[0] != (wire.BeatRec{Runnable: 1, Beats: 1}) {
		t.Fatalf("final frame = %+v", f)
	}
	if err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	c.Flush() // must not panic or send
	_ = sink.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 64)
	if n, _, err := sink.ReadFromUDP(buf); err == nil {
		t.Fatalf("received %d bytes after Close", n)
	}
}

// TestClientSessionEpoch: every frame carries the client's session
// epoch, constant within one client and strictly newer for a restarted
// one — the property the server uses to reset its sequence tracking
// instead of dropping the new session's frames as duplicates.
func TestClientSessionEpoch(t *testing.T) {
	sink := loopback(t)
	c1 := dialQuiet(t, sink.LocalAddr().String(), 1)
	c1.Flush()
	f1 := recvFrame(t, sink)
	if f1.Epoch == 0 {
		t.Fatal("frame carries zero epoch")
	}
	c1.Beat(0)
	c1.Flush()
	if f := recvFrame(t, sink); f.Epoch != f1.Epoch {
		t.Fatalf("epoch changed within one session: %d then %d", f1.Epoch, f.Epoch)
	}

	// "Restart" the reporter: a second client for the same node.
	if err := c1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recvFrame(t, sink)           // drain the final frame
	time.Sleep(time.Millisecond) // ensure a later wall-clock nanosecond
	c2 := dialQuiet(t, sink.LocalAddr().String(), 1)
	c2.Flush()
	f2 := recvFrame(t, sink)
	if f2.Epoch <= f1.Epoch {
		t.Fatalf("restarted client epoch %d not newer than %d", f2.Epoch, f1.Epoch)
	}
	if f2.Seq != 1 {
		t.Fatalf("restarted session Seq = %d, want 1", f2.Seq)
	}
}

// TestClientClampsOversizedBeatCount: a coalesced count beyond the wire
// per-record cap (a hot runnable after a long outage) is clamped to the
// cap, the remainder travels with the next frame, and — crucially — the
// frame still encodes and sends, so one hot runnable can never poison
// every flush forever and starve the link heartbeat.
func TestClientClampsOversizedBeatCount(t *testing.T) {
	sink := loopback(t)
	c := dialQuiet(t, sink.LocalAddr().String(), 2)
	c.counts[0].Store(wire.MaxBeatsPerRecord + 5)
	c.Beat(1)
	c.Flush()
	f := recvFrame(t, sink)
	want := []wire.BeatRec{{Runnable: 0, Beats: wire.MaxBeatsPerRecord}, {Runnable: 1, Beats: 1}}
	if len(f.Beats) != 2 || f.Beats[0] != want[0] || f.Beats[1] != want[1] {
		t.Fatalf("clamped frame beats = %v, want %v", f.Beats, want)
	}
	if st := c.Stats(); st.EncodeErrors != 0 || st.FramesSent != 1 {
		t.Fatalf("stats after clamped flush = %+v", st)
	}
	// The remainder was folded back and travels with the next frame.
	c.Flush()
	f = recvFrame(t, sink)
	if len(f.Beats) != 1 || f.Beats[0] != (wire.BeatRec{Runnable: 0, Beats: 5}) {
		t.Fatalf("remainder frame beats = %v, want [{0 5}]", f.Beats)
	}
}

// TestClientCountsFlowDroppedOnEncodeError: flow events discarded with
// an unencodable frame must show up in Stats.FlowDropped, and the beat
// counts must fold back for a later frame.
func TestClientCountsFlowDroppedOnEncodeError(t *testing.T) {
	sink := loopback(t)
	const overflow = 0x10000 // one past the wire's 16-bit flow record count
	c := dialQuiet(t, sink.LocalAddr().String(), 2, WithMaxFlowBacklog(overflow))
	c.Beat(0)
	for i := 0; i < overflow; i++ {
		c.FlowEvent(1)
	}
	c.Flush()
	st := c.Stats()
	if st.EncodeErrors != 1 || st.FramesSent != 0 {
		t.Fatalf("stats after unencodable flush = %+v", st)
	}
	if st.FlowDropped != overflow {
		t.Fatalf("FlowDropped = %d, want %d (dropped flow must be accounted)", st.FlowDropped, overflow)
	}
	// The beats survived the encode failure and travel with the next
	// (now well-formed) frame.
	c.Flush()
	f := recvFrame(t, sink)
	if f.Seq != 1 || len(f.Beats) != 1 || f.Beats[0] != (wire.BeatRec{Runnable: 0, Beats: 1}) {
		t.Fatalf("recovery frame = %+v, want seq 1 with beats [{0 1}]", f)
	}
	if len(f.Flow) != 0 {
		t.Fatalf("recovery flow = %d events, want 0", len(f.Flow))
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("", WithRunnables(1)); err == nil {
		t.Fatal("Dial accepted empty Addr")
	}
	if _, err := Dial("localhost:1"); err == nil {
		t.Fatal("Dial accepted zero Runnables")
	}
	if _, err := Dial("localhost:1", WithRunnables(MaxRunnables+1)); err == nil {
		t.Fatal("Dial accepted oversized Runnables")
	}
	// The deprecated Config path keeps working.
	if _, err := DialConfig(Config{Runnables: 1}); err == nil {
		t.Fatal("DialConfig accepted empty Addr")
	}
}

// countingConn wraps a net.Conn and counts datagrams written through it,
// standing in for the fault-injecting wrapper internal/chaos interposes.
type countingConn struct {
	net.Conn
	writes *int
}

func (c *countingConn) Write(b []byte) (int, error) {
	*c.writes++
	return c.Conn.Write(b)
}

func TestClientCustomDialer(t *testing.T) {
	sink := loopback(t)

	var dials, writes int
	dialer := func(addr string) (net.Conn, error) {
		dials++
		inner, err := net.Dial("udp", addr)
		if err != nil {
			return nil, err
		}
		return &countingConn{Conn: inner, writes: &writes}, nil
	}

	c := dialQuiet(t, sink.LocalAddr().String(), 2, WithDialer(dialer))
	if dials != 1 {
		t.Fatalf("dials = %d, want 1", dials)
	}

	c.Beat(0)
	c.Flush()
	if writes != 1 {
		t.Fatalf("writes through custom conn = %d, want 1", writes)
	}
	f := recvFrame(t, sink)
	if f.Node != 7 {
		t.Fatalf("frame node = %d, want 7", f.Node)
	}
}
