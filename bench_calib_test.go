// Calibration benchmarks (BENCH_calib.json): the healthy-beat cost
// with the online estimator enabled (must match BenchmarkMonitorBeat —
// the estimator is fed from banked counts on the Cycle goroutine, never
// the beat path), the per-window estimator sampling cost, and the pure
// Suggest derivation over a fleet-sized baseline.
//
// Run with: make bench-json  (or: go test -bench 'CalibEstimatorSample|CalibSuggest|MonitorBeatCalib' -benchmem)
package swwd_test

import (
	"fmt"
	"testing"

	"swwd"
	"swwd/internal/calib"
)

// BenchmarkMonitorBeatCalib measures the handle fast path with the
// online estimator configured. The estimator samples banked beat
// counts every window on the Cycle caller's goroutine, so this must
// match BenchmarkMonitorBeat to within noise — the zero-cost-when-
// healthy contract of the calibration subsystem, enforced at exactly
// zero allocations by the benchdiff gate.
func BenchmarkMonitorBeatCalib(b *testing.B) {
	w, monitors := buildParallelWatchdog(b, 1, 3, swwd.WithEstimatorWindow(1<<20))
	_ = w
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		monitors[i%3].Beat()
	}
}

// BenchmarkCalibEstimatorSample measures one complete observation
// window landing in the estimator: a single lock acquisition folding
// every runnable's banked beat count into the EWMA, extremes and
// quantile sketch. This is the whole per-window cost of online
// calibration for a fleet of n runnables.
func BenchmarkCalibEstimatorSample(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := calib.NewEstimator(n, calib.EstimatorConfig{WindowCycles: 100})
			counts := make([]uint64, n)
			for i := range counts {
				counts[i] = uint64(2 + i%7)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.SampleWindows(counts)
			}
		})
	}
}

// BenchmarkCalibSuggest10k measures the pure hypothesis derivation
// over a 10k-runnable baseline — the deterministic replay unit of a
// rollout decision (rebuilding the proposal set from the recorded
// baseline must be cheap enough to audit on every round).
func BenchmarkCalibSuggest10k(b *testing.B) {
	const n = 10_000
	base := calib.Baseline{WindowCycles: 100, Runnables: make([]calib.RunnableBaseline, n)}
	for i := range base.Runnables {
		base.Runnables[i] = calib.RunnableBaseline{
			Runnable: i, Windows: 50,
			Min: uint64(2 + i%3), Max: uint64(5 + i%4),
			Rate: 3.4, P50: 3, P95: 6,
		}
	}
	pol := calib.Policy{Margin: 0.3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if props := calib.Suggest(base, pol); len(props) != n {
			b.Fatalf("got %d proposals, want %d", len(props), n)
		}
	}
}
