package validator_test

import (
	"fmt"
	"time"

	"swwd/validator"
)

// Example runs a short validator scenario: the dispatch alarm of the
// SafeSpeed task is slowed 8x at t = 1s (the paper's time-scalar
// injection) and the Software Watchdog reports the starved heartbeats.
func Example() {
	v, err := validator.New()
	if err != nil {
		fmt.Println(err)
		return
	}
	injection := &validator.AlarmRateScale{OS: v.OS, Alarm: v.SafeSpeedAlarm, Scale: 8}
	v.Injector.ApplyAt(1*validator.Second, injection)
	if err := v.Run(2 * time.Second); err != nil {
		fmt.Println(err)
		return
	}
	res := v.Watchdog.Results()
	fmt.Printf("aliveness detected: %v\n", res.Aliveness > 0)
	fmt.Printf("flow errors: %d\n", res.ProgramFlow)
	// Output:
	// aliveness detected: true
	// flow errors: 0
}
