package core

import (
	"sync"
	"sync/atomic"
)

// This file implements the due-cycle timer wheel behind the Cycle sweep.
//
// The seed design swept every runnable's padded 128-byte hotState line on
// every monitoring cycle — O(N) per cycle even when no window expired,
// measured 2.6× slower than the seed's packed-array walk (README
// §Performance history). The wheel replaces that with deadline-based
// scheduling: each runnable stores the absolute cycle number at which its
// aliveness and arrival windows next expire, and those deadlines are
// indexed in a ring of bitmap buckets keyed by `due % wheelSize`.
// `Cycle()` then visits only the runnables whose window expires on that
// very cycle — O(due work) plus a handful of summary-bitmap words —
// instead of walking the whole table.
//
// Deadlines at least wheelSize cycles away cannot live in a bucket (the
// slot would alias an earlier cycle), so they park in a per-kind overflow
// bitset; every wheelSize cycles the sweep migrates overflow entries that
// have come within the horizon into their bucket. A deadline parked in
// overflow is always migrated before it is due: between `due-wheelSize`
// and `due` there is exactly one multiple of wheelSize, migration runs at
// that cycle before the bucket is drained, and at that point
// `due - now < wheelSize` holds.
//
// All wheel state is guarded by scheduler.mu, which is ordered BEFORE the
// watchdog's cold-path mutex (sched.mu < w.mu): configuration paths that
// reschedule deadlines take sched.mu first, and the sweep batch-reports
// detections under w.mu while still holding sched.mu. The heartbeat hot
// path never touches the wheel; the only beat-path entry is the eager
// arrival cold branch, which restarts the arrival window.

// defaultWheelSize is the bucket count of the timer wheel (power of two).
// Hypothesis periods are typically a handful of cycles (the paper uses 5),
// so almost all live deadlines sit in buckets; longer periods overflow and
// are migrated in once per wheel revolution.
const defaultWheelSize = 256

// deadline kinds. kindShadow is the shadow-guard window of a candidate
// hypothesis (see shadow.go): it rides the same buckets as the active
// deadlines, so shadow evaluation is due-cycle work, not a second walk.
const (
	kindAlive  = 0
	kindArr    = 1
	kindShadow = 2
)

// runnableSched locations.
const (
	locNone = iota
	locBucket
	locOverflow
)

// frozenFlag marks a counter anchor as frozen: the low 63 bits hold the
// cycle-counter value directly instead of the window's start cycle.
const frozenFlag = uint64(1) << 63

// anchorElapsed decodes a counter anchor at cycle c: a running anchor
// stores the window's start cycle (elapsed = c - start); a frozen anchor
// stores the elapsed value itself (monitoring disabled or inactive, the
// counter no longer advances).
func anchorElapsed(a, c uint64) uint64 {
	if a&frozenFlag != 0 {
		return a &^ frozenFlag
	}
	return c - a
}

// runnableSched is the per-runnable deadline state. due/loc are guarded
// by scheduler.mu; the anchors are atomics so CounterSnapshot can derive
// CCA/CCAR lock-free (the hot path equivalent of the retired per-cycle
// counter increments).
type runnableSched struct {
	aliveDue  uint64 // absolute cycle the aliveness window expires; 0 = unscheduled
	arrDue    uint64
	shadowDue uint64
	aliveLoc  uint8
	arrLoc    uint8
	shadowLoc uint8

	aliveAnchor atomic.Uint64
	arrAnchor   atomic.Uint64
}

// dueLoc returns the deadline state for kind.
func (r *runnableSched) dueLoc(kind int) (uint64, uint8) {
	switch kind {
	case kindArr:
		return r.arrDue, r.arrLoc
	case kindShadow:
		return r.shadowDue, r.shadowLoc
	default:
		return r.aliveDue, r.aliveLoc
	}
}

// setDueLoc stores the deadline state for kind.
func (r *runnableSched) setDueLoc(kind int, due uint64, loc uint8) {
	switch kind {
	case kindArr:
		r.arrDue, r.arrLoc = due, loc
	case kindShadow:
		r.shadowDue, r.shadowLoc = due, loc
	default:
		r.aliveDue, r.aliveLoc = due, loc
	}
}

// wheelBucket holds the deadlines of one wheel slot, one bitmap per kind.
// Bitsets are allocated lazily: periodic hypotheses cluster on a few
// slots, so most buckets of a big wheel stay nil.
type wheelBucket struct {
	alive  *bitset
	arr    *bitset
	shadow *bitset
}

// get returns the bucket's bitset for kind, allocating on first use.
func (b *wheelBucket) get(kind, n int) *bitset {
	p := &b.alive
	switch kind {
	case kindArr:
		p = &b.arr
	case kindShadow:
		p = &b.shadow
	}
	if *p == nil {
		*p = newBitset(n)
	}
	return *p
}

// peek returns the bucket's bitset for kind without allocating.
func (b *wheelBucket) peek(kind int) *bitset {
	switch kind {
	case kindArr:
		return b.arr
	case kindShadow:
		return b.shadow
	default:
		return b.alive
	}
}

// scheduler is the due-cycle index driving the wheel-based sweep.
type scheduler struct {
	mu   sync.Mutex
	size uint64 // bucket count, power of two
	mask uint64

	buckets    []wheelBucket
	overAlive  *bitset // deadlines ≥ size cycles away
	overArr    *bitset
	overShadow *bitset
	rs         []runnableSched
	n          int // number of runnables

	// Parallel sweep.
	shards      int
	parallelMin int // minimum due items before the pool is engaged
	pool        *sweepPool
	outs        []shardOut

	// Reusable sweep buffers.
	dueAlive  []uint32
	dueArr    []uint32
	dueShadow []uint32
	migr      []uint32
	items     []dueItem
	batch     []detection
}

// newScheduler builds the wheel for n runnables. size must be a power of
// two; shards > 1 enables the parallel sweep (workers are started by the
// caller via startPool).
func newScheduler(n int, size uint64, shards, parallelMin int) *scheduler {
	if size == 0 {
		size = defaultWheelSize
	}
	s := &scheduler{
		size:        size,
		mask:        size - 1,
		buckets:     make([]wheelBucket, size),
		overAlive:   newBitset(n),
		overArr:     newBitset(n),
		overShadow:  newBitset(n),
		rs:          make([]runnableSched, n),
		n:           n,
		shards:      shards,
		parallelMin: parallelMin,
	}
	for i := range s.rs {
		// Everything starts inactive: counters frozen at zero.
		s.rs[i].aliveAnchor.Store(frozenFlag)
		s.rs[i].arrAnchor.Store(frozenFlag)
	}
	if shards > 1 {
		s.pool = newSweepPool(shards)
		s.outs = make([]shardOut, shards)
	}
	return s
}

// overflow returns the overflow bitset for kind.
func (s *scheduler) overflow(kind int) *bitset {
	switch kind {
	case kindArr:
		return s.overArr
	case kindShadow:
		return s.overShadow
	default:
		return s.overAlive
	}
}

// schedule indexes a deadline. due must be > now. Callers hold s.mu and
// have unscheduled any previous deadline of the same kind.
func (s *scheduler) schedule(rid, kind int, due, now uint64) {
	var loc uint8
	if due-now < s.size {
		s.buckets[due&s.mask].get(kind, s.n).set(rid)
		loc = locBucket
	} else {
		s.overflow(kind).set(rid)
		loc = locOverflow
	}
	s.rs[rid].setDueLoc(kind, due, loc)
}

// unschedule removes a deadline if one is indexed. Callers hold s.mu.
func (s *scheduler) unschedule(rid, kind int) {
	r := &s.rs[rid]
	due, loc := r.dueLoc(kind)
	switch loc {
	case locBucket:
		if bs := s.buckets[due&s.mask].peek(kind); bs != nil {
			bs.clear(rid)
		}
	case locOverflow:
		s.overflow(kind).clear(rid)
	}
	r.setDueLoc(kind, 0, locNone)
}

// migrate moves overflow deadlines that have come within the wheel
// horizon into their bucket. Called once per wheel revolution, before the
// current bucket is drained, so a deadline due this very cycle is still
// swept on time.
func (s *scheduler) migrate(now uint64) {
	for kind := kindAlive; kind <= kindShadow; kind++ {
		ov := s.overflow(kind)
		if ov.len() == 0 {
			continue
		}
		s.migr = ov.appendMembers(s.migr[:0])
		for _, rid := range s.migr {
			r := &s.rs[rid]
			due, _ := r.dueLoc(kind)
			if due-now >= s.size {
				continue
			}
			ov.clear(int(rid))
			s.buckets[due&s.mask].get(kind, s.n).set(int(rid))
			r.setDueLoc(kind, due, locBucket)
		}
	}
}

// resetAll clears every indexed deadline (ClearAll rebuilds the wheel
// after resetting the cycle counter, since bucket slots are keyed by
// absolute cycle numbers).
func (s *scheduler) resetAll() {
	scratch := s.migr[:0]
	for i := range s.buckets {
		if b := s.buckets[i].alive; b != nil {
			scratch = b.drainInto(scratch[:0])
		}
		if b := s.buckets[i].arr; b != nil {
			scratch = b.drainInto(scratch[:0])
		}
		if b := s.buckets[i].shadow; b != nil {
			scratch = b.drainInto(scratch[:0])
		}
	}
	scratch = s.overAlive.drainInto(scratch[:0])
	scratch = s.overArr.drainInto(scratch[:0])
	scratch = s.overShadow.drainInto(scratch[:0])
	s.migr = scratch[:0]
	for i := range s.rs {
		s.rs[i].aliveDue, s.rs[i].aliveLoc = 0, locNone
		s.rs[i].arrDue, s.rs[i].arrLoc = 0, locNone
		s.rs[i].shadowDue, s.rs[i].shadowLoc = 0, locNone
	}
}

// dueItem is one runnable with at least one window expiring this cycle.
type dueItem struct {
	rid   uint32
	alive bool
	arr   bool
}

// mergeDue merges the two ascending due lists into per-runnable items,
// preserving ascending runnable order so the sweep reports detections in
// exactly the order of the reference full-table walk (runnable ascending,
// aliveness before arrival per runnable).
func mergeDue(dst []dueItem, alive, arr []uint32) []dueItem {
	i, j := 0, 0
	for i < len(alive) && j < len(arr) {
		switch {
		case alive[i] < arr[j]:
			dst = append(dst, dueItem{rid: alive[i], alive: true})
			i++
		case alive[i] > arr[j]:
			dst = append(dst, dueItem{rid: arr[j], arr: true})
			j++
		default:
			dst = append(dst, dueItem{rid: alive[i], alive: true, arr: true})
			i++
			j++
		}
	}
	for ; i < len(alive); i++ {
		dst = append(dst, dueItem{rid: alive[i], alive: true})
	}
	for ; j < len(arr); j++ {
		dst = append(dst, dueItem{rid: arr[j], arr: true})
	}
	return dst
}
