package export

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func getHealth(t *testing.T, h *Health) (int, healthReport) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var rep healthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad /healthz body %q: %v", rec.Body.String(), err)
	}
	return rec.Code, rep
}

func TestHealthAllPassing(t *testing.T) {
	var h Health
	h.Register(func() Check { return Check{Name: "wal", Healthy: true, Detail: "fsync 12ms ago"} })
	h.Register(func() Check { return Check{Name: "push", Healthy: true} })
	code, rep := getHealth(t, &h)
	if code != 200 || rep.Status != "ok" {
		t.Fatalf("code %d status %q, want 200 ok", code, rep.Status)
	}
	if len(rep.Checks) != 2 || rep.Checks[0].Name != "push" || rep.Checks[1].Name != "wal" {
		t.Fatalf("checks not sorted by name: %+v", rep.Checks)
	}
}

func TestHealthDegraded(t *testing.T) {
	var h Health
	h.Register(func() Check { return Check{Name: "wal", Healthy: true} })
	h.Register(func() Check { return Check{Name: "push", Healthy: false, Detail: "backlog full"} })
	code, rep := getHealth(t, &h)
	if code != 503 || rep.Status != "degraded" {
		t.Fatalf("code %d status %q, want 503 degraded", code, rep.Status)
	}
	for _, c := range rep.Checks {
		if c.Name == "push" && c.Detail != "backlog full" {
			t.Fatalf("failure detail lost: %+v", c)
		}
	}
}

func TestHealthEmpty(t *testing.T) {
	var h Health
	code, rep := getHealth(t, &h)
	if code != 200 || rep.Status != "ok" {
		t.Fatalf("empty registry: code %d status %q", code, rep.Status)
	}
}
