package can

import (
	"errors"
	"testing"
)

func TestCorruptNextRetransmits(t *testing.T) {
	k, b := newBus(t, 500000)
	tx := b.AttachNode("tx")
	rx := b.AttachNode("rx")
	delivered := 0
	rx.Subscribe(nil, func(Frame) { delivered++ })
	b.CorruptNext()
	if err := tx.Send(Frame{ID: 0x100, Data: []byte{1}}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (after retransmission)", delivered)
	}
	st := b.Stats()
	if st.ErrorFrames != 1 || st.Retransmissions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if tx.TEC() != 7 { // +8 on error, -1 on successful retransmission
		t.Fatalf("TEC = %d, want 7", tx.TEC())
	}
	if rx.REC() != 0 { // +1 on error, -1 on successful reception
		t.Fatalf("REC = %d, want 0", rx.REC())
	}
	if tx.ErrorState() != ErrorActive {
		t.Fatalf("state = %v", tx.ErrorState())
	}
}

func TestErrorPassiveThreshold(t *testing.T) {
	k, b := newBus(t, 500000)
	tx := b.AttachNode("tx")
	b.AttachNode("rx")
	// Certain corruption: every attempt fails, TEC climbs by 8. The node
	// passes through error-passive (TEC >= 128) on its way to bus-off.
	if err := b.SetBitErrorRate(0.999999, 1); err != nil {
		t.Fatalf("SetBitErrorRate: %v", err)
	}
	if err := tx.Send(Frame{ID: 1}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	sawPassive := false
	for steps := 0; steps < 10000 && k.Step(); steps++ {
		if tx.ErrorState() == ErrorPassive {
			sawPassive = true
		}
	}
	if !sawPassive {
		t.Fatalf("node never became error-passive (TEC=%d state=%v)", tx.TEC(), tx.ErrorState())
	}
	if tx.ErrorState() != BusOff {
		t.Fatalf("final state = %v (TEC=%d), want bus-off", tx.ErrorState(), tx.TEC())
	}
}

func TestBusOffDropsNode(t *testing.T) {
	k, b := newBus(t, 500000)
	tx := b.AttachNode("tx")
	rx := b.AttachNode("rx")
	delivered := 0
	rx.Subscribe(nil, func(Frame) { delivered++ })
	if err := b.SetBitErrorRate(0.999999, 42); err != nil {
		t.Fatalf("SetBitErrorRate: %v", err)
	}
	if err := tx.Send(Frame{ID: 1}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if tx.ErrorState() != BusOff {
		t.Fatalf("state = %v (TEC=%d), want bus-off", tx.ErrorState(), tx.TEC())
	}
	if delivered != 0 {
		t.Fatalf("delivered = %d under certain corruption", delivered)
	}
	// A bus-off node rejects further sends...
	if err := tx.Send(Frame{ID: 2}); !errors.Is(err, ErrBusOff) {
		t.Fatalf("Send = %v, want ErrBusOff", err)
	}
	// ...until recovered.
	if err := b.SetBitErrorRate(0, 42); err != nil {
		t.Fatalf("SetBitErrorRate: %v", err)
	}
	tx.Recover()
	if tx.ErrorState() != ErrorActive {
		t.Fatalf("state after Recover = %v", tx.ErrorState())
	}
	if err := tx.Send(Frame{ID: 2}); err != nil {
		t.Fatalf("Send after Recover: %v", err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d after recovery", delivered)
	}
}

func TestBitErrorRateValidation(t *testing.T) {
	_, b := newBus(t, 500000)
	if err := b.SetBitErrorRate(-0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if err := b.SetBitErrorRate(1, 1); err == nil {
		t.Error("rate 1 accepted")
	}
}

func TestLossyBusStillDeliversWithRetries(t *testing.T) {
	k, b := newBus(t, 500000)
	tx := b.AttachNode("tx")
	rx := b.AttachNode("rx")
	delivered := 0
	rx.Subscribe(nil, func(Frame) { delivered++ })
	if err := b.SetBitErrorRate(0.3, 7); err != nil {
		t.Fatalf("SetBitErrorRate: %v", err)
	}
	for i := 0; i < 50; i++ {
		if err := tx.Send(Frame{ID: 0x100, Data: []byte{byte(i)}}); err != nil {
			t.Fatalf("Send #%d: %v", i, err)
		}
		if err := k.RunUntilIdle(); err != nil {
			t.Fatalf("RunUntilIdle: %v", err)
		}
	}
	if delivered != 50 {
		t.Fatalf("delivered = %d, want all 50 via retransmission", delivered)
	}
	st := b.Stats()
	if st.ErrorFrames == 0 || st.Retransmissions == 0 {
		t.Fatalf("no errors on a 30%% lossy bus: %+v", st)
	}
	// Error signalling costs bandwidth: busy time exceeds the clean-wire
	// time of 50 frames.
	clean := 50 * b.txTime(Frame{ID: 0x100, Data: []byte{0}})
	if st.BusyTime <= clean {
		t.Fatalf("busy %v not above clean %v", st.BusyTime, clean)
	}
	if tx.ErrorState() == BusOff {
		t.Fatal("interleaved successes should keep TEC below bus-off")
	}
}

func TestErrorStateString(t *testing.T) {
	for s, want := range map[ErrorState]string{
		ErrorActive:   "error-active",
		ErrorPassive:  "error-passive",
		BusOff:        "bus-off",
		ErrorState(9): "ErrorState(9)",
	} {
		if s.String() != want {
			t.Errorf("%d = %q, want %q", int(s), s.String(), want)
		}
	}
}
