// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md): counter traces as CSV
// and ASCII plots for the figure experiments, and formatted tables for the
// overhead, coverage and treatment experiments.
//
// Usage:
//
//	experiments [-run all|fig5|fig6|arrival|pfc|overhead|coverage|treatment] [-outdir DIR] [-plots]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"swwd/internal/experiments"
	"swwd/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	which := flag.String("run", "all", "experiment to run: all|fig5|fig6|arrival|pfc|overhead|coverage|treatment|granularity|reconfig|hwwd|distributed|sharedtask")
	outdir := flag.String("outdir", "", "directory for CSV traces (omit to skip CSV output)")
	plots := flag.Bool("plots", true, "render ASCII plots for trace experiments")
	flag.Parse()

	runAll := *which == "all"
	ran := false
	type traceExp struct {
		name   string
		header string
		series []string
		fn     func() (*experiments.TraceResult, error)
	}
	traceExps := []traceExp{
		{"fig5", "E1 / Fig. 5 — test with injected aliveness error",
			[]string{"GetSensorValue.AC", "GetSensorValue.CCA", "AM Result"}, experiments.Fig5},
		{"fig6", "E2 / Fig. 6 — collaboration of fault detection units",
			[]string{"PFC Result", "AM Result", "TaskState"}, experiments.Fig6},
		{"arrival", "E3 — test with injected arrival rate error",
			[]string{"Speed_process.ARC", "AR Result"}, experiments.ArrivalRate},
		{"pfc", "E4 — standalone control flow error test (correlation ablated)",
			[]string{"PFC Result", "AM Result"}, experiments.PFC},
	}
	for _, e := range traceExps {
		if !runAll && *which != e.name {
			continue
		}
		ran = true
		r, err := e.fn()
		if err != nil {
			return err
		}
		printTrace(e.header, e.series, r, *plots)
		if *outdir != "" {
			if err := writeCSV(*outdir, e.name+".csv", r.Recorder); err != nil {
				return err
			}
		}
	}

	if runAll || *which == "overhead" {
		ran = true
		rows, err := experiments.Overhead(nil)
		if err != nil {
			return err
		}
		printOverhead(rows)
	}
	if runAll || *which == "coverage" {
		ran = true
		rows, err := experiments.Coverage()
		if err != nil {
			return err
		}
		printCoverage(rows)
	}
	if runAll || *which == "treatment" {
		ran = true
		rows, err := experiments.Treatment()
		if err != nil {
			return err
		}
		printTreatment(rows)
	}
	if runAll || *which == "granularity" {
		ran = true
		r, err := experiments.Granularity()
		if err != nil {
			return err
		}
		printGranularity(r)
	}
	if runAll || *which == "reconfig" {
		ran = true
		r, err := experiments.Reconfig()
		if err != nil {
			return err
		}
		printReconfig(r)
	}
	if runAll || *which == "distributed" {
		ran = true
		r, err := experiments.Distributed()
		if err != nil {
			return err
		}
		printDistributed(r)
	}
	if runAll || *which == "sharedtask" {
		ran = true
		r, err := experiments.SharedTask()
		if err != nil {
			return err
		}
		printSharedTask(r)
	}
	if runAll || *which == "hwwd" {
		ran = true
		r, err := experiments.HardwareWatchdog()
		if err != nil {
			return err
		}
		printHWWD(r)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return nil
}

func printTrace(header string, series []string, r *experiments.TraceResult, plots bool) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(header)
	fmt.Println(strings.Repeat("=", 72))
	fmt.Printf("injected at:        %v\n", r.InjectedAt)
	if r.FirstDetection > 0 {
		fmt.Printf("first detection:    %v (latency %v)\n", r.FirstDetection, r.FirstDetection.Sub(r.InjectedAt))
	} else {
		fmt.Println("first detection:    none")
	}
	if r.TaskFaultyAt > 0 {
		fmt.Printf("task faulty at:     %v\n", r.TaskFaultyAt)
	}
	fmt.Printf("final results:      AM=%d AR=%d PFC=%d\n",
		r.Results.Aliveness, r.Results.ArrivalRate, r.Results.ProgramFlow)
	if plots {
		for _, name := range series {
			if s := r.Recorder.Series(name); s != nil {
				fmt.Println()
				fmt.Print(trace.Plot(s, 64, 8))
			}
		}
	}
	fmt.Println()
}

func writeCSV(dir, name string, rec *trace.Recorder) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("outdir: %w", err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := rec.WriteCSV(f, experiments.Tick); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func printOverhead(rows []experiments.OverheadRow) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println("T1 — look-up-table PFC vs embedded-signature CFC (CFCSS)")
	fmt.Println(strings.Repeat("=", 72))
	fmt.Printf("%8s %14s %14s %12s %12s %12s\n",
		"blocks", "table ns/chk", "cfcss ns/chk", "table sites", "cfcss sites", "table bytes")
	for _, r := range rows {
		fmt.Printf("%8d %14.1f %14.1f %12d %12d %12d\n",
			r.Blocks, r.TableNsPerCheck, r.CFCSSNsPerCheck, r.TablePoints, r.CFCSSPoints, r.TableBytes)
	}
	fmt.Println("\n(table 'sites' are the glue calls heartbeat monitoring already needs;")
	fmt.Println(" CFCSS additionally embeds signature updates and D-assignments in the code)")
	fmt.Println()
}

func printCoverage(rows []experiments.CoverageRow) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println("T2 — fault detection coverage & latency campaign")
	fmt.Println(strings.Repeat("=", 72))
	fmt.Printf("%-20s %-10s %9s %8s %14s %14s\n",
		"fault class", "intensity", "detected", "expect", "mean latency", "max latency")
	for _, r := range rows {
		expect := "miss-ok"
		if r.ExpectDetect {
			expect = "detect"
		}
		fmt.Printf("%-20s %-10s %6d/%-2d %8s %14v %14v\n",
			r.FaultClass, r.Intensity, r.Detected, r.Runs, expect, r.MeanLatency, r.MaxLatency)
	}
	fmt.Println()
}

func printGranularity(r *experiments.GranularityResult) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println("E5 — task-level vs runnable-level monitoring granularity (§2 claim)")
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println("fault: invalid branch silently skips SAFE_CC_process from t=2s")
	fmt.Printf("%-44s %10s\n", "mechanism", "detections")
	fmt.Printf("%-44s %10d\n", "deadline monitoring (OSEKtime-style, task)", r.DeadlineMisses)
	fmt.Printf("%-44s %10d\n", "execution budget (AUTOSAR-OS-style, task)", r.BudgetOverruns)
	fmt.Printf("%-44s %10d\n", "SW watchdog heartbeat (runnable)", r.AlivenessErrors)
	fmt.Printf("%-44s %10d\n", "SW watchdog program flow (runnable)", r.ProgramFlowErrors)
	fmt.Printf("control law starved while task met its deadline: %v\n\n", r.ControlStarved)
}

func printReconfig(r *experiments.ReconfigResult) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println("X1 — dynamic reconfiguration: limp-home fallback (§5 outlook)")
	fmt.Println(strings.Repeat("=", 72))
	fmt.Printf("SafeSpeed terminated at:   %v\n", r.TerminatedAt)
	fmt.Printf("fallback engaged at:       %v\n", r.EngagedAt)
	fmt.Printf("speed before fault:        %.1f km/h (80 km/h command)\n", r.SpeedBeforeKph)
	fmt.Printf("speed under limp-home:     %.1f km/h (60 km/h cap)\n", r.SpeedAfterKph)
	fmt.Printf("limp-home control runs:    %d\n", r.FallbackExecutions)
	fmt.Printf("degraded mode supervised:  %v\n\n", r.FallbackSupervised)
}

func printDistributed(r *experiments.DistributedResult) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println("X3 — distributed monitoring: remote ECU reports over CAN (§5)")
	fmt.Println(strings.Repeat("=", 72))
	fmt.Printf("remote detections (local):   %d\n", r.RemoteDetections)
	fmt.Printf("fault frames sent on CAN:    %d\n", r.ReportsSent)
	fmt.Printf("reports received centrally:  %d\n", r.ReportsReceived)
	fmt.Printf("first report latency:        %v\n", r.FirstReportLatency)
	fmt.Printf("central ECU unaffected:      %v\n\n", r.CentralClean)
}

func printSharedTask(r *experiments.SharedTaskResult) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println("E7 — runnables of two applications mapped onto one task (§1)")
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println("fault: CruiseControl's A_write silently skipped in the shared task")
	fmt.Printf("flow errors (broken transition %s -> %s): %d\n",
		r.FirstPredecessor, r.FirstRunnable, r.FlowErrors)
	fmt.Printf("aliveness errors attributed to CruiseControl: %d\n", r.AlivenessOnA)
	fmt.Printf("CruiseControl ever faulty: %v, LaneKeeper ever faulty: %v\n", r.AEverFaulty, r.BEverFaulty)
	fmt.Printf("treatment collateral on LaneKeeper's private task: %v\n\n", r.PrivateBRestarted)
}

func printHWWD(r *experiments.HWWDResult) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println("X2 — hardware vs software watchdog: the §2 division of labour")
	fmt.Println(strings.Repeat("=", 72))
	fmt.Printf("%-36s %14s %14s\n", "fault", "HW expiries", "SW detections")
	fmt.Printf("%-36s %14d %14d (flow)\n", "invalid branch (runnable level)", r.BranchHWExpiries, r.BranchSWFlow)
	fmt.Printf("%-36s %14d %14s\n", "CPU monopolisation (whole ECU)", r.HogHWExpiries, "n/a (wedged)")
	fmt.Printf("ECU resets by hardware watchdog: %d, recovered: %v\n\n", r.HogResets, r.HogRecovered)
}

func printTreatment(rows []experiments.TreatmentRow) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println("T3 — §3.5 fault treatment decision rules")
	fmt.Println(strings.Repeat("=", 72))
	for _, r := range rows {
		counts := map[string]int{}
		var order []string
		for _, a := range r.Actions {
			name := a.String()
			if counts[name] == 0 {
				order = append(order, name)
			}
			counts[name]++
		}
		parts := make([]string, 0, len(order))
		for _, name := range order {
			parts = append(parts, fmt.Sprintf("%s×%d", name, counts[name]))
		}
		fmt.Printf("%-32s actions=%-56s recovered=%-5v resets=%d\n",
			r.Scenario, strings.Join(parts, " "), r.Recovered, r.Resets)
	}
	fmt.Println()
}
