// SafeLane scenario: lane departure warning under program-flow fault
// injection.
//
// The vehicle drifts out of its lane during a steering pulse and SafeLane
// raises a warning — the application works. Then an invalid execution
// branch is injected into the SafeLane task (the LaneDetect runnable is
// skipped): functionally the warning logic goes silent, and the Software
// Watchdog's program flow checking unit reports the broken
// GetLanePosition→LaneDetect→WarnActuate sequence, declaring the task
// faulty at the third error.
//
// Run with:
//
//	go run ./examples/safelane
package main

import (
	"fmt"
	"log"
	"time"

	"swwd/validator"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("safelane: %v", err)
	}
}

func run() error {
	v, err := validator.New(
		validator.WithTraceRunnables("GetLanePosition", "LaneDetect", "WarnActuate"),
	)
	if err != nil {
		return err
	}

	// Invalid branch in SafeLane from t=6s on.
	branch := &validator.FlagFault{
		Label: "safelane-invalid-branch",
		Set:   func() { v.SafeLane.FaultBranch = 1 },
		Unset: func() { v.SafeLane.FaultBranch = 0 },
	}
	v.Injector.ApplyAt(6*validator.Second, branch)

	fmt.Println("phase 1: cruise; steering pulse at 20s drifts the car (built-in scenario)")
	if err := v.Run(6 * time.Second); err != nil {
		return err
	}
	fmt.Printf("  t=%v offset=%.2f m, warnings=%d, detections=%+v\n",
		v.Kernel.Now(), v.Lat.Offset(), v.SafeLane.Warnings(), v.Watchdog.Results())

	fmt.Println("phase 2: invalid branch injected — LaneDetect skipped")
	if err := v.Run(4 * time.Second); err != nil {
		return err
	}
	res := v.Watchdog.Results()
	st, err := v.Watchdog.TaskState(v.SafeLane.Task)
	if err != nil {
		return err
	}
	fmt.Printf("  t=%v detections=%+v task=%v\n", v.Kernel.Now(), res, st)

	fmt.Println("\nfault log (first 5):")
	for i, f := range v.FMF.FaultLog() {
		if i >= 5 {
			break
		}
		fmt.Printf("  %v %s\n", f.Time, f.String())
	}

	if pfc := v.Recorder.Series("PFC Result"); pfc != nil {
		fmt.Println()
		fmt.Print(validator.Plot(pfc, 64, 8))
	}
	if res.ProgramFlow < 3 {
		return fmt.Errorf("program-flow errors not detected (got %d)", res.ProgramFlow)
	}
	fmt.Println("scenario complete")
	return nil
}
