package chaos

// The named campaign library: each entry is one adversarial condition
// from the fault model — loss, asymmetry, duplication, reordering,
// partitions, skew, byzantine reporters, epoch lies, restart storms,
// treatment recovery, and process-level hangs layered under loss —
// with an oracle pinning exactly what the stack must and must not do
// about it. Campaign durations are sized in link grace windows (the
// unit detection latency is specified in), not absolute time.
//
// Oracle-soundness invariant: every probabilistic loss rule a
// zero-false-positive campaign uses carries a LossBurstCap strictly
// below GraceFrames, so no window can starve by bad luck; only
// partition campaigns — whose oracles *require* the fault — starve
// windows on purpose.

import (
	"fmt"
	"time"

	"swwd/internal/calib"
	"swwd/internal/treat"
)

// Builder constructs one named campaign for a given seed.
type Builder struct {
	Name  string
	Notes string
	Build func(seed uint64) *Scenario
}

// stdWarmup is the healthy soak before the fault phase: long enough
// for several grace windows of clean frames, so warm-up effects never
// bleed into the bracketed deltas.
const stdWarmup = 400 * time.Millisecond

// alwaysZero lists the counters no campaign is ever allowed to move:
// environment failures, not injected faults.
func alwaysZero() []string {
	return []string{"unknown_node", "dropped_packets", "buffers_exhausted", "read_errors", "command_stale_acks"}
}

// cleanWire extends alwaysZero with every fault-induced counter except
// the listed ones — the "nothing else moved" half of an oracle.
func cleanWire(except ...string) []string {
	all := []string{
		"decode_errors", "seq_gaps", "seq_gap_events", "duplicate_drops",
		"node_restarts", "stale_epoch_drops", "interval_mismatch",
		"commands_sent", "commands_acked", "commands_dropped",
	}
	skip := make(map[string]bool, len(except))
	for _, e := range except {
		skip[e] = true
	}
	out := alwaysZero()
	for _, name := range all {
		if !skip[name] {
			out = append(out, name)
		}
	}
	return out
}

// linkDropped returns an Extra check asserting which links the chaos
// layer actually dropped frames on — attribution of the injection
// itself, complementing the server-side counter assertions.
func linkDropped(dropped []uint32, clean []uint32) func(*Result) []string {
	return func(res *Result) []string {
		var v []string
		for _, n := range dropped {
			if res.Links[n].UpDropped == 0 {
				v = append(v, fmt.Sprintf("chaos layer dropped no frames on victim link %d", n))
			}
		}
		for _, n := range clean {
			if res.Links[n].UpDropped != 0 {
				v = append(v, fmt.Sprintf("chaos layer dropped %d frames on non-victim link %d", res.Links[n].UpDropped, n))
			}
		}
		return v
	}
}

// Named returns the campaign library in its canonical order.
func Named() []Builder {
	return []Builder{
		{
			Name:  "baseline-quiet",
			Notes: "no faults: the fleet soaks clean and every fault counter stays zero",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "baseline-quiet", Seed: seed,
					Warmup: stdWarmup, Duration: 1200 * time.Millisecond,
					Oracle: Oracle{
						NonZero: []string{"frames", "bytes", "accepted"},
						Zero:    cleanWire(),
					},
				}
			},
		},
		{
			Name:  "uniform-loss",
			Notes: "35% loss on every link, burst-capped below the grace window: gaps counted, zero faults",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "uniform-loss", Seed: seed,
					Topology: Topology{GraceFrames: 5},
					Warmup:   stdWarmup, Duration: 1800 * time.Millisecond,
					Steps: []Step{{At: 0, For: 1500 * time.Millisecond, Fault: &LinkFault{
						Nodes: []uint32{0, 1, 2, 3},
						Rules: Rules{UpDrop: 0.35, LossBurstCap: 2},
					}}},
					Oracle: Oracle{
						NonZero: []string{"seq_gaps", "seq_gap_events"},
						Zero:    cleanWire("seq_gaps", "seq_gap_events"),
						Extra:   linkDropped([]uint32{0, 1, 2, 3}, nil),
					},
				}
			},
		},
		{
			Name:  "asym-loss",
			Notes: "loss on two links only: gaps appear, and the chaos layer attributes every drop to the victims",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "asym-loss", Seed: seed,
					Topology: Topology{GraceFrames: 5},
					Warmup:   stdWarmup, Duration: 1800 * time.Millisecond,
					Steps: []Step{{At: 0, For: 1500 * time.Millisecond, Fault: &LinkFault{
						Nodes: []uint32{0, 1},
						Rules: Rules{UpDrop: 0.4, LossBurstCap: 2},
					}}},
					Oracle: Oracle{
						NonZero: []string{"seq_gaps", "seq_gap_events"},
						Zero:    cleanWire("seq_gaps", "seq_gap_events"),
						Extra:   linkDropped([]uint32{0, 1}, []uint32{2, 3}),
					},
				}
			},
		},
		{
			Name:  "dup-storm",
			Notes: "heavy duplication plus byzantine replay of stale frames: every copy dropped, nothing else moves",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "dup-storm", Seed: seed,
					Warmup: stdWarmup, Duration: 1800 * time.Millisecond,
					Steps: []Step{{At: 0, For: 1500 * time.Millisecond, Fault: &LinkFault{
						Nodes: []uint32{0, 1, 2, 3},
						Rules: Rules{DupProb: 0.5, ReplayProb: 0.3},
					}}},
					Oracle: Oracle{
						NonZero: []string{"duplicate_drops"},
						Zero:    cleanWire("duplicate_drops"),
					},
				}
			},
		},
		{
			Name:  "reorder-window",
			Notes: "4-frame shuffled reordering on every link: gap events and duplicate drops, zero faults",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "reorder-window", Seed: seed,
					// Reordering delays frames by up to window×interval, so
					// the grace window must comfortably exceed the reorder
					// window for the zero-faults assertion to be sound.
					Topology: Topology{GraceFrames: 10},
					Warmup:   stdWarmup, Duration: 2 * time.Second,
					Steps: []Step{{At: 0, For: 1600 * time.Millisecond, Fault: &LinkFault{
						Nodes: []uint32{0, 1, 2, 3},
						Rules: Rules{ReorderWindow: 4},
					}}},
					Oracle: Oracle{
						NonZero: []string{"duplicate_drops", "seq_gap_events"},
						Zero:    cleanWire("duplicate_drops", "seq_gaps", "seq_gap_events"),
					},
				}
			},
		},
		{
			Name:  "blip-partition-all",
			Notes: "full-fleet partition shorter than the grace window: gaps but no detection — the blip is absorbed",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "blip-partition-all", Seed: seed,
					Topology: Topology{GraceFrames: 6},
					Warmup:   stdWarmup, Duration: 1200 * time.Millisecond,
					Steps: []Step{{At: 0, For: 150 * time.Millisecond, Fault: &LinkFault{
						Nodes: []uint32{0, 1, 2, 3},
						Rules: Rules{Partition: true},
					}}},
					Oracle: Oracle{
						NonZero: []string{"seq_gaps", "seq_gap_events"},
						Zero:    cleanWire("seq_gaps", "seq_gap_events"),
					},
				}
			},
		},
		{
			Name:  "burst-partition-node",
			Notes: "one node partitioned for 2.5 grace windows: its link faults, every other node stays silent",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "burst-partition-node", Seed: seed,
					Warmup: stdWarmup, Duration: 1300 * time.Millisecond,
					Steps: []Step{{At: 0, For: 500 * time.Millisecond, Fault: &LinkFault{
						Nodes: []uint32{1},
						Rules: Rules{Partition: true},
					}}},
					Oracle: Oracle{
						Victims:       []uint32{1},
						MustFaultLink: []uint32{1},
						NonZero:       []string{"seq_gaps", "seq_gap_events"},
						Zero:          cleanWire("seq_gaps", "seq_gap_events"),
					},
				}
			},
		},
		{
			Name:  "clock-skew",
			Notes: "two reporters lie about their flush cadence: interval mismatches counted, frames still replay, zero faults",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "clock-skew", Seed: seed,
					Warmup: stdWarmup, Duration: 1600 * time.Millisecond,
					Steps: []Step{{At: 0, For: 1300 * time.Millisecond, Fault: &LinkFault{
						Nodes: []uint32{0, 2},
						Rules: Rules{SkewIntervalMs: 100},
					}}},
					Oracle: Oracle{
						NonZero: []string{"interval_mismatch"},
						Zero:    cleanWire("interval_mismatch"),
					},
				}
			},
		},
		{
			Name:  "byzantine-reporter",
			Notes: "one reporter corrupts, replays and sends stale-epoch stragglers: each mutation lands on its own counter, zero faults anywhere",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "byzantine-reporter", Seed: seed,
					Topology: Topology{GraceFrames: 5},
					Warmup:   stdWarmup, Duration: 1800 * time.Millisecond,
					Steps: []Step{{At: 0, For: 1500 * time.Millisecond, Fault: &LinkFault{
						Nodes: []uint32{3},
						Rules: Rules{CorruptProb: 0.3, LossBurstCap: 2, ReplayProb: 0.4, StaleProb: 0.3},
					}}},
					Oracle: Oracle{
						NonZero: []string{"decode_errors", "duplicate_drops", "stale_epoch_drops"},
						// Corruption is also loss: a corrupted frame never
						// reaches the sequence discipline, so the next clean
						// frame shows a gap.
						Zero: cleanWire("decode_errors", "duplicate_drops", "stale_epoch_drops", "seq_gaps", "seq_gap_events"),
						Extra: func(res *Result) []string {
							var v []string
							l := res.Links[3]
							if l.Corrupted == 0 || l.Replayed == 0 || l.Stale == 0 {
								v = append(v, fmt.Sprintf("byzantine link 3 under-injected: %+v", l))
							}
							for n := 0; n < 3; n++ {
								if res.Links[n] != (LinkStats{}) {
									v = append(v, fmt.Sprintf("non-victim link %d saw chaos activity: %+v", n, res.Links[n]))
								}
							}
							return v
						},
					},
				}
			},
		},
		{
			Name:  "lying-epoch",
			Notes: "one reporter claims a newer session epoch, then reverts to the truth: one spurious restart, then permanent stale drops and a link fault",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "lying-epoch", Seed: seed,
					Warmup: stdWarmup, Duration: 1400 * time.Millisecond,
					Steps: []Step{{At: 0, For: 600 * time.Millisecond, Fault: &LinkFault{
						Nodes: []uint32{2},
						Rules: Rules{EpochLie: 1000},
					}}},
					Oracle: Oracle{
						Victims:       []uint32{2},
						MustFaultLink: []uint32{2},
						// The lie's onset is one epoch advance (a spurious
						// "restart" with the session's sequence counter mid-
						// stream, hence gaps); its revert regresses the epoch,
						// so every truthful frame after it is stale-dropped.
						Min:     map[string]uint64{"node_restarts": 1},
						Max:     map[string]uint64{"node_restarts": 1},
						NonZero: []string{"stale_epoch_drops", "seq_gaps"},
						Zero:    cleanWire("node_restarts", "stale_epoch_drops", "seq_gaps", "seq_gap_events"),
					},
				}
			},
		},
		{
			Name:  "thundering-herd",
			Notes: "two full-fleet restart waves: exactly one restart per node per wave, no gaps, no faults",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "thundering-herd", Seed: seed,
					Warmup: stdWarmup, Duration: 1400 * time.Millisecond,
					Steps: []Step{
						{At: 300 * time.Millisecond, Fault: &RestartWave{Nodes: []uint32{0, 1, 2, 3}}},
						{At: 900 * time.Millisecond, Fault: &RestartWave{Nodes: []uint32{0, 1, 2, 3}}},
					},
					Oracle: Oracle{
						Min:  map[string]uint64{"node_restarts": 8},
						Max:  map[string]uint64{"node_restarts": 8},
						Zero: cleanWire("node_restarts"),
					},
				}
			},
		},
		{
			Name:  "quarantine-recovery",
			Notes: "partition one node under the treatment plane: quarantine plus dependent scale-down, then full recovery once frames resume, with the trace replaying exactly",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "quarantine-recovery", Seed: seed,
					Topology: Topology{
						Treatment: &Treatment{
							Edges:  []treat.Edge{{Node: 2, DependsOn: 1}},
							Policy: treat.Policy{RecoveryFrames: 3},
						},
					},
					Warmup: stdWarmup, Duration: 1800 * time.Millisecond,
					Steps: []Step{{At: 0, For: 600 * time.Millisecond, Fault: &LinkFault{
						Nodes: []uint32{1},
						Rules: Rules{Partition: true},
					}}},
					Oracle: Oracle{
						Victims:       []uint32{1},
						MustFaultLink: []uint32{1},
						NonZero:       []string{"seq_gaps", "commands_sent", "commands_acked"},
						Zero:          alwaysZero(),
						MustAct: []ActionMatch{
							{Kind: treat.ActQuarantine, Node: 1},
							{Kind: treat.ActScaleDown, Node: 2},
							{Kind: treat.ActResume, Node: 1},
							{Kind: treat.ActScaleUp, Node: 1},
							{Kind: treat.ActScaleUp, Node: 2},
						},
						ReplayTreatment: true,
					},
				}
			},
		},
		{
			Name:  "calib-rollout-lossy",
			Notes: "calibration rollout over a lossy, duplicating, reordering command channel: re-sent batches converge, every ack lands, no rollback",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "calib-rollout-lossy", Seed: seed,
					Topology: Topology{Calibration: &calib.Params{
						WindowCycles: 20, Margin: 0.5, PromoteAfter: 2, CanaryFraction: 0.25,
					}},
					// The beats flow up clean; only the server→client command
					// path is adversarial. The controller re-sends unacked
					// hypothesis batches each tick with fresh sequence numbers,
					// so the rollout must converge through 40% loss plus
					// duplication and a 3-frame reorder hold, and the clean
					// tail after the rules lift drains the reorder buffers.
					Warmup: stdWarmup, Duration: 3 * time.Second,
					Steps: []Step{{At: 0, For: 2500 * time.Millisecond, Fault: &LinkFault{
						Nodes: []uint32{0, 1, 2, 3},
						Rules: Rules{DownDrop: 0.4, DownDup: 0.4, DownReorder: 3},
					}}},
					Oracle: Oracle{
						NonZero: []string{"commands_sent", "commands_acked"},
						// Command-epoch acks are high-water clamped, so even a
						// duplicated or reordered ack pair never reads as stale:
						// the full cleanWire list (which pins command_stale_acks
						// and commands_dropped to zero) stays sound here.
						Zero: cleanWire("commands_sent", "commands_acked"),
						Extra: func(res *Result) []string {
							var v []string
							c := res.Calib
							if c == nil {
								return []string{"no calibration status collected"}
							}
							if c.Rounds < 1 {
								v = append(v, fmt.Sprintf("calibration completed %d rounds, want >= 1", c.Rounds))
							}
							if c.Rollbacks != 0 || c.Rejected != 0 {
								v = append(v, fmt.Sprintf("calibration regressed under command-channel chaos: rollbacks=%d rejected=%d, want 0/0", c.Rollbacks, c.Rejected))
							}
							if c.PendingAcks != 0 {
								v = append(v, fmt.Sprintf("%d hypothesis commands still unacked after the clean tail", c.PendingAcks))
							}
							var dropped, shuffled uint64
							for _, l := range res.Links {
								dropped += l.DownDropped
								shuffled += l.DownDuplicated + l.DownReordered
							}
							if dropped == 0 {
								v = append(v, "chaos layer dropped no command frames")
							}
							if shuffled == 0 {
								v = append(v, "chaos layer neither duplicated nor reordered any command frame")
							}
							return v
						},
					},
				}
			},
		},
		{
			Name:  "hang-under-loss",
			Notes: "a process-level runnable hang layered under link loss: the fault is attributed to the hung runnable, never the (lossy but alive) link",
			Build: func(seed uint64) *Scenario {
				return &Scenario{
					Name: "hang-under-loss", Seed: seed,
					Topology: Topology{GraceFrames: 5},
					Warmup:   stdWarmup, Duration: 1800 * time.Millisecond,
					Steps: []Step{
						{At: 0, For: 1500 * time.Millisecond, Fault: &LinkFault{
							Nodes: []uint32{2},
							Rules: Rules{UpDrop: 0.3, LossBurstCap: 2},
						}},
						// Held for several grace windows: the hang must be
						// detected *through* the lossy link.
						{At: 100 * time.Millisecond, For: 1200 * time.Millisecond, Fault: HangRunnable(2, 1)},
					},
					Oracle: Oracle{
						Victims:           []uint32{2},
						MustFaultRunnable: []NodeRunnable{{Node: 2, Runnable: 1}},
						NoLinkFault:       []uint32{2},
						NonZero:           []string{"seq_gaps"},
						Zero:              cleanWire("seq_gaps", "seq_gap_events"),
						Extra: func(res *Result) []string {
							v := linkDropped([]uint32{2}, []uint32{0, 1, 3})(res)
							// Attribution must be surgical: the victim node's
							// *other* runnables beat on through the loss.
							for r, fc := range res.Nodes[2].Runnables {
								if r != 1 && fc.Any() {
									v = append(v, fmt.Sprintf("node 2 runnable %d faulted alongside the hang: %+v", r, fc))
								}
							}
							return v
						},
					},
				}
			},
		},
	}
}

// Build constructs the named campaign for a seed.
func Build(name string, seed uint64) (*Scenario, error) {
	for _, b := range Named() {
		if b.Name == name {
			return b.Build(seed), nil
		}
	}
	return nil, fmt.Errorf("chaos: unknown campaign %q", name)
}

// All builds every named campaign, deriving each campaign's seed from
// the root seed and its library index.
func All(seed uint64) []*Scenario {
	var out []*Scenario
	for i, b := range Named() {
		out = append(out, b.Build(Derive(seed, uint64(i))))
	}
	return out
}
