package sim

import (
	"sync"
	"testing"
	"time"
)

func TestWallClockAdvances(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("WallClock did not advance: a=%v b=%v", a, b)
	}
}

func TestManualClockAdvance(t *testing.T) {
	c := NewManualClock()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
	c.Advance(10 * time.Millisecond)
	if c.Now() != 10*Millisecond {
		t.Fatalf("Now() = %v, want 10ms", c.Now())
	}
	c.Set(Second)
	if c.Now() != Second {
		t.Fatalf("Now() = %v, want 1s", c.Now())
	}
}

func TestManualClockBackwardsPanics(t *testing.T) {
	c := NewManualClock()
	c.Advance(time.Second)
	defer func() {
		if recover() == nil {
			t.Error("Set backwards did not panic")
		}
	}()
	c.Set(Millisecond)
}

func TestManualClockNegativeAdvancePanics(t *testing.T) {
	c := NewManualClock()
	defer func() {
		if recover() == nil {
			t.Error("negative Advance did not panic")
		}
	}()
	c.Advance(-time.Second)
}

func TestManualClockConcurrent(t *testing.T) {
	c := NewManualClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
				_ = c.Now()
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8*1000*Microsecond {
		t.Fatalf("Now() = %v, want 8ms", c.Now())
	}
}
