package deadline

import (
	"testing"
	"time"

	"swwd/internal/osek"
	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// rig builds a one-task ECU with a deadline monitor attached.
type rig struct {
	t    *testing.T
	k    *sim.Kernel
	m    *runnable.Model
	os   *osek.OS
	mon  *Monitor
	task runnable.TaskID
	rids []runnable.ID
}

func newRig(t *testing.T, execTimes ...time.Duration) *rig {
	t.Helper()
	r := &rig{t: t, k: sim.NewKernel(), m: runnable.NewModel()}
	app, _ := r.m.AddApp("App", runnable.SafetyCritical)
	task, _ := r.m.AddTask(app, "T", 5)
	r.task = task
	for i, d := range execTimes {
		rid, err := r.m.AddRunnable(task, "R"+string(rune('0'+i)), d, runnable.SafetyCritical)
		if err != nil {
			t.Fatalf("AddRunnable: %v", err)
		}
		r.rids = append(r.rids, rid)
	}
	if err := r.m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	os, err := osek.New(osek.Config{Model: r.m, Kernel: r.k})
	if err != nil {
		t.Fatalf("osek.New: %v", err)
	}
	r.os = os
	mon, err := New(r.m, r.k)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.mon = mon
	os.AddObserver(mon)
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, sim.NewManualClock()); err == nil {
		t.Error("nil model accepted")
	}
	m := runnable.NewModel()
	if _, err := New(m, sim.NewManualClock()); err == nil {
		t.Error("unfrozen model accepted")
	}
	app, _ := m.AddApp("A", runnable.QM)
	task, _ := m.AddTask(app, "T", 1)
	if _, err := m.AddRunnable(task, "R", time.Millisecond, runnable.QM); err != nil {
		t.Fatalf("AddRunnable: %v", err)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if _, err := New(m, nil); err == nil {
		t.Error("nil clock accepted")
	}
	mon, err := New(m, sim.NewManualClock())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := mon.SetDeadline(runnable.TaskID(9), time.Second); err == nil {
		t.Error("unknown task accepted")
	}
	if err := mon.SetDeadline(task, -time.Second); err == nil {
		t.Error("negative deadline accepted")
	}
	if err := mon.SetBudget(task, -time.Second); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := mon.Violations(runnable.TaskID(9)); err == nil {
		t.Error("unknown task accepted in Violations")
	}
}

func TestHealthyTaskNoViolations(t *testing.T) {
	r := newRig(t, 2*time.Millisecond, 3*time.Millisecond)
	if err := r.mon.SetDeadline(r.task, 10*time.Millisecond); err != nil {
		t.Fatalf("SetDeadline: %v", err)
	}
	if err := r.mon.SetBudget(r.task, 6*time.Millisecond); err != nil {
		t.Fatalf("SetBudget: %v", err)
	}
	prog, _ := osek.SequentialProgram(r.m, r.task, nil)
	if err := r.os.DefineTask(r.task, osek.TaskAttrs{}, prog); err != nil {
		t.Fatalf("DefineTask: %v", err)
	}
	if _, err := r.os.CreateAlarm("cyc", osek.ActivateAlarm(r.task), true, 20*time.Millisecond, 20*time.Millisecond); err != nil {
		t.Fatalf("CreateAlarm: %v", err)
	}
	if err := r.os.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.k.Run(200 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	v, _ := r.mon.Violations(r.task)
	if v.Activations < 8 {
		t.Fatalf("activations = %d", v.Activations)
	}
	if v.DeadlineMisses != 0 || v.BudgetOverruns != 0 {
		t.Fatalf("violations on healthy task: %+v", v)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	r := newRig(t, 8*time.Millisecond)
	if err := r.mon.SetDeadline(r.task, 5*time.Millisecond); err != nil {
		t.Fatalf("SetDeadline: %v", err)
	}
	prog, _ := osek.SequentialProgram(r.m, r.task, nil)
	if err := r.os.DefineTask(r.task, osek.TaskAttrs{Autostart: true}, prog); err != nil {
		t.Fatalf("DefineTask: %v", err)
	}
	if err := r.os.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.k.Run(50 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	v, _ := r.mon.Violations(r.task)
	if v.DeadlineMisses != 1 {
		t.Fatalf("misses = %d, want 1", v.DeadlineMisses)
	}
}

func TestBudgetOverrunDetectedWithPreemption(t *testing.T) {
	// The budget counts pure execution time: a preempted task that
	// resumes must not be charged the waiting time, but a genuinely
	// long-running one overruns.
	r := newRig(t, 8*time.Millisecond)
	if err := r.mon.SetBudget(r.task, 5*time.Millisecond); err != nil {
		t.Fatalf("SetBudget: %v", err)
	}
	prog, _ := osek.SequentialProgram(r.m, r.task, nil)
	if err := r.os.DefineTask(r.task, osek.TaskAttrs{Autostart: true}, prog); err != nil {
		t.Fatalf("DefineTask: %v", err)
	}
	if err := r.os.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.k.Run(50 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	v, _ := r.mon.Violations(r.task)
	if v.BudgetOverruns != 1 {
		t.Fatalf("overruns = %d, want 1", v.BudgetOverruns)
	}
}

func TestBudgetExcludesPreemptionDelay(t *testing.T) {
	// Low task: 4ms work, 6ms budget, 20ms deadline. High task preempts
	// for 10ms in the middle: response time 14ms but execution 4ms — no
	// budget overrun, no deadline miss at 20ms.
	r := &rig{t: t, k: sim.NewKernel(), m: runnable.NewModel()}
	app, _ := r.m.AddApp("App", runnable.SafetyCritical)
	lo, _ := r.m.AddTask(app, "Lo", 1)
	hi, _ := r.m.AddTask(app, "Hi", 9)
	loR, _ := r.m.AddRunnable(lo, "LR", 4*time.Millisecond, runnable.QM)
	hiR, _ := r.m.AddRunnable(hi, "HR", 10*time.Millisecond, runnable.QM)
	if err := r.m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	os, err := osek.New(osek.Config{Model: r.m, Kernel: r.k})
	if err != nil {
		t.Fatalf("osek.New: %v", err)
	}
	mon, err := New(r.m, r.k)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	os.AddObserver(mon)
	if err := mon.SetBudget(lo, 6*time.Millisecond); err != nil {
		t.Fatalf("SetBudget: %v", err)
	}
	if err := mon.SetDeadline(lo, 20*time.Millisecond); err != nil {
		t.Fatalf("SetDeadline: %v", err)
	}
	if err := os.DefineTask(lo, osek.TaskAttrs{Autostart: true}, osek.Program{osek.Exec{Runnable: loR}}); err != nil {
		t.Fatalf("DefineTask: %v", err)
	}
	if err := os.DefineTask(hi, osek.TaskAttrs{}, osek.Program{osek.Exec{Runnable: hiR}}); err != nil {
		t.Fatalf("DefineTask: %v", err)
	}
	if err := os.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	r.k.At(2*sim.Millisecond, func() {
		if err := os.ActivateTask(hi); err != nil {
			t.Errorf("ActivateTask: %v", err)
		}
	})
	if err := r.k.Run(50 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	v, _ := mon.Violations(lo)
	if v.BudgetOverruns != 0 {
		t.Fatalf("preemption delay charged to budget: %+v", v)
	}
	if v.DeadlineMisses != 0 {
		t.Fatalf("deadline falsely missed: %+v", v)
	}
	// Same scenario with a 10ms deadline DOES miss (response time 14ms).
	// Verified via a second monitor to keep state clean.
}

func TestOnViolationCallback(t *testing.T) {
	r := newRig(t, 8*time.Millisecond)
	var calls []bool
	r.mon.OnViolation = func(_ runnable.TaskID, deadlineMiss bool) {
		calls = append(calls, deadlineMiss)
	}
	if err := r.mon.SetDeadline(r.task, time.Millisecond); err != nil {
		t.Fatalf("SetDeadline: %v", err)
	}
	if err := r.mon.SetBudget(r.task, time.Millisecond); err != nil {
		t.Fatalf("SetBudget: %v", err)
	}
	prog, _ := osek.SequentialProgram(r.m, r.task, nil)
	if err := r.os.DefineTask(r.task, osek.TaskAttrs{Autostart: true}, prog); err != nil {
		t.Fatalf("DefineTask: %v", err)
	}
	if err := r.os.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.k.Run(50 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(calls) != 2 {
		t.Fatalf("callback calls = %v, want deadline+budget", calls)
	}
}

// TestGranularityBlindSpot is the unit-level version of experiment E5:
// skipping one runnable makes the task faster, so the task-level monitor
// stays silent.
func TestGranularityBlindSpot(t *testing.T) {
	r := newRig(t, 2*time.Millisecond, 3*time.Millisecond)
	if err := r.mon.SetDeadline(r.task, 10*time.Millisecond); err != nil {
		t.Fatalf("SetDeadline: %v", err)
	}
	if err := r.mon.SetBudget(r.task, 6*time.Millisecond); err != nil {
		t.Fatalf("SetBudget: %v", err)
	}
	skip := false
	prog := osek.Program{
		osek.Exec{Runnable: r.rids[0]},
		osek.Select{
			Choose: func() int {
				if skip {
					return -1
				}
				return 0
			},
			Arms: []osek.Program{{osek.Exec{Runnable: r.rids[1]}}},
		},
	}
	if err := r.os.DefineTask(r.task, osek.TaskAttrs{}, prog); err != nil {
		t.Fatalf("DefineTask: %v", err)
	}
	if _, err := r.os.CreateAlarm("cyc", osek.ActivateAlarm(r.task), true, 20*time.Millisecond, 20*time.Millisecond); err != nil {
		t.Fatalf("CreateAlarm: %v", err)
	}
	if err := r.os.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.k.Run(100 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	skip = true // the runnable-level fault begins
	if err := r.k.Run(300 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	v, _ := r.mon.Violations(r.task)
	if v.DeadlineMisses != 0 || v.BudgetOverruns != 0 {
		t.Fatalf("task-level monitor saw the skipped runnable: %+v", v)
	}
	if r.os.ExecCount(r.rids[1]) >= r.os.ExecCount(r.rids[0]) {
		t.Fatal("setup broken: runnable was not skipped")
	}
}
