package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"swwd/internal/runnable"
)

// Calibrator derives fault hypotheses from observation: run it alongside
// the glue code during a known-healthy phase (system integration, the
// paper's validation campaign) and it records the minimum and maximum
// heartbeat counts per monitoring window for every runnable. Suggest then
// produces a Hypothesis with a configurable safety margin — the
// design-time step of filling the fault hypothesis tables without
// hand-estimating arrival rates.
type Calibrator struct {
	mu     sync.Mutex
	model  *runnable.Model
	window int

	cycleInWindow int
	windows       int
	counts        []int
	minArr        []int
	maxArr        []int
}

// NewCalibrator creates a calibrator observing windows of the given
// length in watchdog cycles.
func NewCalibrator(model *runnable.Model, windowCycles int) (*Calibrator, error) {
	if model == nil {
		return nil, errors.New("core: calibrator requires a model")
	}
	if !model.Frozen() {
		return nil, errors.New("core: calibrator requires a frozen model")
	}
	if windowCycles <= 0 {
		return nil, errors.New("core: window must be positive")
	}
	n := model.NumRunnables()
	c := &Calibrator{
		model:  model,
		window: windowCycles,
		counts: make([]int, n),
		minArr: make([]int, n),
		maxArr: make([]int, n),
	}
	for i := range c.minArr {
		c.minArr[i] = math.MaxInt
	}
	return c, nil
}

// Heartbeat records one execution of the runnable.
func (c *Calibrator) Heartbeat(rid runnable.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(rid) < 0 || int(rid) >= len(c.counts) {
		return
	}
	c.counts[rid]++
}

// Cycle advances the observation clock; at each window boundary the
// per-runnable extremes are updated and the counts reset.
func (c *Calibrator) Cycle() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cycleInWindow++
	if c.cycleInWindow < c.window {
		return
	}
	c.cycleInWindow = 0
	c.windows++
	for i, n := range c.counts {
		if n < c.minArr[i] {
			c.minArr[i] = n
		}
		if n > c.maxArr[i] {
			c.maxArr[i] = n
		}
		c.counts[i] = 0
	}
}

// Windows reports how many complete observation windows have elapsed.
func (c *Calibrator) Windows() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.windows
}

// Observed reports the recorded per-window extremes for a runnable.
func (c *Calibrator) Observed(rid runnable.ID) (min, max int, err error) {
	if _, err := c.model.Runnable(rid); err != nil {
		return 0, 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.windows == 0 {
		return 0, 0, errors.New("core: no complete observation window yet")
	}
	return c.minArr[rid], c.maxArr[rid], nil
}

// Suggest derives a Hypothesis for the runnable: the aliveness floor is
// the observed minimum reduced by margin (but at least 1), the arrival
// ceiling the observed maximum increased by margin. At least three
// windows of observation are required. A margin of 0.3 tolerates 30%
// jitter around the healthy behaviour.
func (c *Calibrator) Suggest(rid runnable.ID, margin float64) (Hypothesis, error) {
	if margin < 0 || margin >= 1 {
		return Hypothesis{}, fmt.Errorf("core: margin %v must be in [0,1)", margin)
	}
	min, max, err := c.Observed(rid)
	if err != nil {
		return Hypothesis{}, err
	}
	c.mu.Lock()
	windows := c.windows
	c.mu.Unlock()
	if windows < 3 {
		return Hypothesis{}, fmt.Errorf("core: only %d observation windows, need >= 3", windows)
	}
	if min == 0 {
		return Hypothesis{}, fmt.Errorf("core: runnable %d had silent windows in the healthy run; aliveness monitoring would false-positive", rid)
	}
	floor := int(math.Floor(float64(min) * (1 - margin)))
	if floor < 1 {
		floor = 1
	}
	ceiling := int(math.Ceil(float64(max) * (1 + margin)))
	if ceiling < floor {
		ceiling = floor
	}
	return Hypothesis{
		AlivenessCycles: c.window,
		MinHeartbeats:   floor,
		ArrivalCycles:   c.window,
		MaxArrivals:     ceiling,
	}, nil
}
