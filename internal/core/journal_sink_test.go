package core

import (
	"reflect"
	"testing"
)

func TestJournalSinkReceivesStampedEntries(t *testing.T) {
	var sunk []JournalEntry
	f := newFixture(t, func(cfg *Config) {
		cfg.JournalSink = func(e JournalEntry) { sunk = append(sunk, e) }
	})
	f.monitorAll()
	f.w.Heartbeat(f.a) // a beats once, b and c starve
	cycleN(f.w, 5)     // aliveness window expires: b and c trip

	entries := f.w.Journal()
	if len(entries) != 2 {
		t.Fatalf("journal has %d entries, want 2", len(entries))
	}
	if !reflect.DeepEqual(sunk, entries) {
		t.Fatalf("sink saw %+v, journal holds %+v", sunk, entries)
	}
	for i, e := range sunk {
		if e.Seq != uint64(i) {
			t.Fatalf("sink entry %d carries seq %d", i, e.Seq)
		}
	}
}

func TestSetJournalSinkAtRuntime(t *testing.T) {
	var sunk []JournalEntry
	f := newFixture(t, nil)
	f.monitorAll()
	cycleN(f.w, 5) // detections before the sink exists are not replayed to it

	f.w.SetJournalSink(func(e JournalEntry) { sunk = append(sunk, e) })
	before := f.w.JournalStats().Written
	cycleN(f.w, 5) // all three starve: another round of detections
	after := f.w.JournalStats().Written

	if got, want := uint64(len(sunk)), after-before; got != want {
		t.Fatalf("sink saw %d entries, want the %d journaled after installation", got, want)
	}
	if len(sunk) == 0 {
		t.Fatal("no detections reached the late-installed sink")
	}
	if sunk[0].Seq != before {
		t.Fatalf("first sunk entry has seq %d, want %d", sunk[0].Seq, before)
	}

	f.w.SetJournalSink(nil) // removal must stick
	n := len(sunk)
	cycleN(f.w, 5)
	if len(sunk) != n {
		t.Fatalf("removed sink still invoked (%d -> %d entries)", n, len(sunk))
	}
}

func TestJournalSinkIgnoredWhenJournalDisabled(t *testing.T) {
	called := false
	f := newFixture(t, func(cfg *Config) {
		cfg.JournalSize = -1
		cfg.JournalSink = func(JournalEntry) { called = true }
	})
	f.monitorAll()
	cycleN(f.w, 10)
	f.w.SetJournalSink(func(JournalEntry) { called = true }) // no-op too
	cycleN(f.w, 10)
	if called {
		t.Fatal("journal sink invoked with the journal disabled")
	}
}
