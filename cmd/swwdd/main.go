// Command swwdd is the Software Watchdog ingestion daemon: the
// dedicated health-monitoring node of a distributed deployment. It
// listens for batched heartbeat frames (internal/wire) from remote
// reporter nodes over UDP, replays them into a local watchdog on the
// lock-free hot path (internal/ingest), supervises each node's link
// through a synthetic link runnable, and serves the combined telemetry —
// watchdog snapshot plus wire counters — on an HTTP metrics endpoint.
//
// Usage:
//
//	swwdd -listen :9400 -metrics :9401 -nodes 8 -runnables 10 -interval 100ms
//
// The fleet topology is uniform: -nodes nodes, each reporting
// -runnables runnables and flushing one frame per -interval. Remote
// reporters use the swwdclient library (see examples/remotenode) with a
// node ID below -nodes and a matching runnable count. A node that stops
// reporting — crashed process, unplugged network — raises an aliveness
// fault on its link runnable within one monitoring window, printed to
// stdout and visible on /metrics like any local fault.
//
// Two-terminal quickstart:
//
//	go run ./cmd/swwdd -listen :9400 -metrics :9401 &
//	go run ./examples/remotenode -addr localhost:9400 -node 0
//	curl -s localhost:9401/metrics | grep swwd_ingest_
//
// Durable history: -wal-dir streams every journaled detection,
// treatment action and ingest counter delta to a crash-safe segmented
// write-ahead log (internal/wal). The retained window is queryable
// three ways: the /history HTTP endpoint (?since=10m&until=5m), the
// offline query mode (-wal-dir d -since 1h prints the window and
// exits without serving), and wal.Replay in code. -push-url adds a
// push export sink delivering the /metrics payload to a collector
// endpoint on an interval, with retry, backoff and drop accounting.
// /healthz reports readiness: WAL writer liveness and fsync age, push
// backlog, ingest listeners.
//
// The full networked pipeline this daemon fronts — client flusher,
// wire codec, ingest sequence/epoch discipline, link supervision and
// treatment — is exercised adversarially by the seed-reproducible
// chaos campaign engine (internal/chaos): `make chaos-smoke` runs the
// named campaigns deterministically, `make chaos CHAOS_RUNS=20` the
// randomized nightly gate. A failing run prints its root seed;
// re-running with SWWD_CHAOS_SEED=<seed> reproduces it exactly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"swwd"
	"swwd/internal/export"
	"swwd/internal/ingest"
	"swwd/internal/treat"
	"swwd/internal/wal"
)

// printSink streams watchdog output to stdout.
type printSink struct {
	mu    sync.Mutex
	quiet bool

	faults uint64
	states uint64
}

func (s *printSink) Fault(r swwd.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults++
	if !s.quiet {
		fmt.Printf("%v FAULT %s runnable=%d task=%d observed=%d expected=%d\n",
			time.Duration(r.Time), r.Kind, r.Runnable, r.Task, r.Observed, r.Expected)
	}
}

func (s *printSink) StateChanged(e swwd.StateEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.states++
	fmt.Printf("%v STATE %s -> %s (cause %s)\n", time.Duration(e.Time), e.Scope, e.State, e.Cause)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "swwdd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", ":9400", "UDP address to ingest heartbeat frames on")
	metrics := flag.String("metrics", "", "serve /metrics and /debug/pprof on this HTTP address (e.g. :9401)")
	nodes := flag.Int("nodes", 8, "number of remote reporter nodes to pre-register")
	runnables := flag.Int("runnables", 10, "monitored runnables per node")
	interval := flag.Duration("interval", 100*time.Millisecond, "declared per-node frame flush interval")
	cycle := flag.Duration("cycle", 10*time.Millisecond, "watchdog monitoring cycle period")
	grace := flag.Int("grace", ingest.DefaultGraceFrames, "flush intervals a node may stay silent before a link aliveness fault")
	shards := flag.Int("shards", ingest.DefaultShards, "ingest worker shards (a node is pinned to node%shards)")
	listeners := flag.Int("listeners", 0, "UDP sockets bound to -listen via SO_REUSEPORT (0 = one per CPU up to 8; platforms without SO_REUSEPORT fall back to 1)")
	readBatch := flag.Int("read-batch", ingest.DefaultBatchSize, "datagrams one socket receive may return (recvmmsg batching; 1 disables)")
	duration := flag.Duration("duration", 0, "exit after this long (0 = run until SIGINT/SIGTERM)")
	quiet := flag.Bool("quiet", false, "suppress per-fault output")
	treatDeps := flag.String("treat-deps", "", "fault-treatment dependency edges as node:depends_on pairs (e.g. \"1:0,2:0\"); enables the treatment control plane")
	treatRecovery := flag.Int("treat-recovery", 0, "heartbeat frames a quarantined node must deliver before resuming (0 = default)")
	treatRestart := flag.Bool("treat-restart-dependents", false, "send restart-runnables commands to dependents scaled back up after recovery")
	treatSpec := flag.String("treat-spec", "", "JSON treatment spec file (see swwd.TreatmentSpec); mutually exclusive with -treat-deps")
	walDir := flag.String("wal-dir", "", "directory for the durable fault-history write-ahead log (empty = WAL off)")
	walSegBytes := flag.Int64("wal-segment-bytes", wal.DefaultSegmentBytes, "WAL segment rotation size in bytes")
	walFsync := flag.Duration("wal-fsync", wal.DefaultSyncInterval, "WAL group-commit fsync cadence (<=0 fsyncs every batch)")
	walRetain := flag.Int("wal-retain", wal.DefaultRetainSegments, "sealed WAL segments kept before retention deletes the oldest")
	walRetainAge := flag.Duration("wal-retain-age", 0, "delete sealed WAL segments older than this (0 = no age limit)")
	walDelta := flag.Duration("wal-delta-interval", time.Second, "cadence of ingest counter-delta records written to the WAL")
	since := flag.Duration("since", 0, "query mode: replay the WAL window starting this long ago and exit (requires -wal-dir)")
	until := flag.Duration("until", 0, "query mode: upper window bound, this long ago (0 = now; only with -since)")
	pushURL := flag.String("push-url", "", "POST the /metrics payload to this URL on an interval (push export sink)")
	pushInterval := flag.Duration("push-interval", export.DefaultPushInterval, "push sink delivery cadence")
	calibOn := flag.Bool("calib", false, "enable the online auto-calibration loop (shadow-guarded staged hypothesis rollouts)")
	calibWindow := flag.Int("calib-window", 100, "calibration observation window in watchdog cycles")
	calibMargin := flag.Float64("calib-margin", 0, "slack around observed beat extremes when suggesting hypotheses (0 = default)")
	calibPromote := flag.Int("calib-promote-after", 0, "consecutive clean shadow windows before a candidate is promoted (0 = default)")
	calibSpec := flag.String("calib-spec", "", "JSON calibration spec file (see swwd.CalibrationSpec); overrides the -calib-* knobs")
	flag.Parse()

	if *since > 0 || *until > 0 {
		return queryHistory(*walDir, *since, *until)
	}

	treatment, err := treatmentConfig(*treatSpec, *treatDeps, *treatRecovery, *treatRestart, *nodes)
	if err != nil {
		return err
	}
	calibration, err := calibrationConfig(*calibOn, *calibSpec, *calibWindow, *calibMargin, *calibPromote)
	if err != nil {
		return err
	}

	// Open the WAL before the fleet: the treatment controller's action
	// sink must exist at fleet build time.
	var hist *wal.WAL
	if *walDir != "" {
		hist, err = wal.Open(*walDir,
			wal.WithSegmentBytes(*walSegBytes),
			wal.WithSyncInterval(*walFsync),
			wal.WithRetainSegments(*walRetain),
			wal.WithRetainAge(*walRetainAge))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		defer hist.Close()
		rs := hist.Recovery()
		fmt.Printf("swwdd: wal %s recovered segments=%d records=%d last_seq=%d torn_bytes=%d dropped_segments=%d\n",
			*walDir, rs.Segments, rs.Records, rs.LastSeq, rs.TornBytes, rs.SegmentsDropped)
		if treatment != nil {
			treatment.ActionSink = func(a treat.Action, execErr bool) {
				hist.AppendAction(wal.Action{
					Kind: uint8(a.Kind), Node: a.Node, Cause: a.Cause,
					SimTimeNs: int64(a.Time), ExecErr: execErr,
				})
			}
		}
	}

	if *listeners <= 0 {
		*listeners = runtime.NumCPU()
		if *listeners > 8 {
			*listeners = 8
		}
	}
	sink := &printSink{quiet: *quiet}
	fleet, err := ingest.BuildFleet(ingest.FleetConfig{
		Nodes:            *nodes,
		RunnablesPerNode: *runnables,
		Interval:         *interval,
		CyclePeriod:      *cycle,
		GraceFrames:      *grace,
		Shards:           *shards,
		Listeners:        *listeners,
		BatchSize:        *readBatch,
		Sink:             sink,
		Treatment:        treatment,
		Calibration:      calibration,
	})
	if err != nil {
		return err
	}
	if fleet.Treat != nil {
		defer fleet.Treat.Close()
	}
	if fleet.Calib != nil {
		defer fleet.Calib.Close()
	}
	addr, err := fleet.Server.Listen(*listen)
	if err != nil {
		return err
	}
	defer fleet.Server.Close()

	if hist != nil {
		// Stream every journaled detection into the WAL. The sink runs
		// under the watchdog mutex; AppendDetection is one lock-free
		// ring push (a full ring drops and counts, never blocks).
		fleet.Watchdog.SetJournalSink(func(e swwd.JournalEntry) {
			hist.AppendDetection(wal.FromJournal(e))
		})
	}

	svc, err := swwd.NewService(fleet.Watchdog, *cycle)
	if err != nil {
		return err
	}
	if err := svc.Start(); err != nil {
		return err
	}
	defer func() { _ = svc.Stop() }()

	// Ship ingest counter deltas to the WAL on a fixed cadence so
	// replay can integrate the wire counters over any time window.
	shipperDone := make(chan struct{})
	shipperStop := make(chan struct{})
	if hist != nil && *walDelta > 0 {
		go func() {
			defer close(shipperDone)
			tick := time.NewTicker(*walDelta)
			defer tick.Stop()
			prev := fleet.Server.Stats()
			for {
				select {
				case <-shipperStop:
					return
				case <-tick.C:
				}
				cur := fleet.Server.Stats()
				if d := statsToDelta(cur.Delta(prev)); !d.IsZero() {
					hist.AppendDelta(d)
				}
				prev = cur
			}
		}()
	} else {
		close(shipperDone)
	}
	defer func() { close(shipperStop); <-shipperDone }()

	exp := &exporter{svc: svc, srv: fleet.Server, names: fleet.Names, treat: fleet.Treat, calib: fleet.Calib, wal: hist}
	if *pushURL != "" {
		pusher, err := export.NewPusher(export.PushConfig{
			URL:      *pushURL,
			Interval: *pushInterval,
			Collect:  exp.render,
		})
		if err != nil {
			return err
		}
		exp.push = pusher
		pusher.Start()
		defer pusher.Stop()
		fmt.Printf("swwdd: pushing metrics to %s every %v\n", *pushURL, *pushInterval)
	}

	if *metrics != "" {
		http.HandleFunc("/metrics", exp.handle)
		http.Handle("/healthz", healthFor(fleet, hist, exp.push, *walFsync, *pushInterval))
		if hist != nil {
			http.HandleFunc("/history", historyHandler(*walDir))
		}
		if fleet.Calib != nil {
			http.HandleFunc("/calib", calibHandler(fleet))
		}
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return err
		}
		fmt.Printf("swwdd: metrics on http://%s/metrics\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}
	fmt.Printf("swwdd: ingesting on %s (%d nodes x %d runnables, interval %v, cycle %v)\n",
		addr, *nodes, *runnables, *interval, *cycle)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	<-ctx.Done()

	st := fleet.Server.Stats()
	res := fleet.Watchdog.Results()
	fmt.Printf("swwdd: frames=%d accepted=%d bytes=%d decode_errors=%d seq_gaps=%d dup_drops=%d restarts=%d stale_epochs=%d interval_mismatch=%d dropped=%d buffers_exhausted=%d\n",
		st.Frames, st.Accepted, st.Bytes, st.DecodeErrors, st.SeqGaps, st.DuplicateDrops,
		st.NodeRestarts, st.StaleEpochDrops, st.IntervalMismatch, st.DroppedPackets, st.BuffersExhausted)
	fmt.Printf("swwdd: listeners=%d", st.Listeners)
	for i, ls := range fleet.Server.ListenerStats() {
		fmt.Printf(" [%d packets=%d batches=%d max_batch=%d]", i, ls.Packets, ls.Batches, ls.MaxBatch)
	}
	fmt.Println()
	fmt.Printf("swwdd: commands sent=%d acked=%d dropped=%d stale_acks=%d\n",
		st.CommandsSent, st.CommandsAcked, st.CommandsDropped, st.CommandStaleAcks)
	fmt.Printf("swwdd: detections aliveness=%d arrival_rate=%d program_flow=%d\n",
		res.Aliveness, res.ArrivalRate, res.ProgramFlow)
	if fleet.Treat != nil {
		ts := fleet.Treat.Stats()
		fmt.Printf("swwdd: treatment quarantines=%d resumes=%d scale_downs=%d scale_ups=%d active_quarantines=%d exec_errors=%d\n",
			ts.Quarantines, ts.Resumes, ts.ScaleDowns, ts.ScaleUps, ts.ActiveQuarantines, ts.ExecErrors)
	}
	if fleet.Calib != nil {
		cs := fleet.Calib.Status()
		fmt.Printf("swwdd: calibration stage=%s rounds=%d rollbacks=%d rejected=%d pending_acks=%d\n",
			cs.Stage, cs.Rounds, cs.Rollbacks, cs.Rejected, cs.PendingAcks)
	}
	if hist != nil {
		ws := hist.Stats()
		fmt.Printf("swwdd: wal appended=%d dropped=%d synced=%d synced_seq=%d syncs=%d bytes=%d rotations=%d segments=%d write_errors=%d\n",
			ws.Appended, ws.Dropped, ws.Synced, ws.SyncedSeq, ws.Syncs, ws.BytesWritten, ws.Rotations, ws.Segments, ws.WriteErrors)
	}
	if exp.push != nil {
		ps := exp.push.Stats()
		fmt.Printf("swwdd: push collected=%d delivered=%d retries=%d errors=%d dropped=%d\n",
			ps.Collected, ps.Delivered, ps.Retries, ps.Errors, ps.Dropped)
	}
	return nil
}

// statsToDelta maps an ingest counter difference onto the WAL's
// fixed-size delta record.
func statsToDelta(d ingest.Stats) wal.Delta {
	return wal.Delta{
		Frames:           d.Frames,
		Bytes:            d.Bytes,
		Accepted:         d.Accepted,
		DecodeErrors:     d.DecodeErrors,
		UnknownNode:      d.UnknownNode,
		SeqGaps:          d.SeqGaps,
		SeqGapEvents:     d.SeqGapEvents,
		DuplicateDrops:   d.DuplicateDrops,
		NodeRestarts:     d.NodeRestarts,
		StaleEpochDrops:  d.StaleEpochDrops,
		IntervalMismatch: d.IntervalMismatch,
		DroppedPackets:   d.DroppedPackets,
		BuffersExhausted: d.BuffersExhausted,
		ReadErrors:       d.ReadErrors,
		CommandsSent:     d.CommandsSent,
		CommandsAcked:    d.CommandsAcked,
		CommandsDropped:  d.CommandsDropped,
		CommandStaleAcks: d.CommandStaleAcks,
	}
}

// queryHistory is the offline query mode: replay the WAL, fold the
// [since, until] window ("this long ago" durations) into the
// Snapshot-equivalent view and print both as JSON, then exit.
func queryHistory(dir string, since, until time.Duration) error {
	if dir == "" {
		return fmt.Errorf("-since/-until require -wal-dir")
	}
	if until > 0 && until > since {
		return fmt.Errorf("-until (%v ago) must not be earlier than -since (%v ago)", until, since)
	}
	h, err := wal.Replay(dir)
	if err != nil {
		return err
	}
	now := time.Now()
	sinceNs := int64(0)
	if since > 0 {
		sinceNs = now.Add(-since).UnixNano()
	}
	untilNs := int64(0)
	if until > 0 {
		untilNs = now.Add(-until).UnixNano()
	}
	win := h.Window(sinceNs, untilNs)
	view := (&wal.History{Records: win}).View()
	out := struct {
		Dir          string `json:"dir"`
		Segments     int    `json:"segments"`
		TornBytes    int64  `json:"torn_bytes"`
		TotalRecords int    `json:"total_records"`
		Window       struct {
			SinceNs int64 `json:"since_ns"`
			UntilNs int64 `json:"until_ns"`
			Records int   `json:"records"`
		} `json:"window"`
		View wal.View `json:"view"`
	}{Dir: dir, Segments: h.Segments, TornBytes: h.TornBytes, TotalRecords: len(h.Records), View: view}
	out.Window.SinceNs = sinceNs
	out.Window.UntilNs = untilNs
	out.Window.Records = len(win)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// historyHandler serves the /history endpoint: a read-only WAL replay
// folded over an optional ?since=10m&until=5m window (durations ago).
func historyHandler(dir string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var since, until time.Duration
		var err error
		if v := r.URL.Query().Get("since"); v != "" {
			if since, err = time.ParseDuration(v); err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if v := r.URL.Query().Get("until"); v != "" {
			if until, err = time.ParseDuration(v); err != nil {
				http.Error(w, "bad until: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		h, err := wal.Replay(dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		now := time.Now()
		sinceNs := int64(0)
		if since > 0 {
			sinceNs = now.Add(-since).UnixNano()
		}
		untilNs := int64(0)
		if until > 0 {
			untilNs = now.Add(-until).UnixNano()
		}
		win := h.Window(sinceNs, untilNs)
		view := (&wal.History{Records: win}).View()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Records int      `json:"records"`
			View    wal.View `json:"view"`
		}{Records: len(win), View: view})
	}
}

// healthFor assembles the /healthz probe set: WAL writer liveness and
// fsync age, push-sink delivery and backlog, ingest listeners.
func healthFor(fleet *ingest.Fleet, hist *wal.WAL, push *export.Pusher, fsync, pushEvery time.Duration) *export.Health {
	h := &export.Health{}
	h.Register(func() export.Check {
		st := fleet.Server.Stats()
		return export.Check{
			Name:    "ingest",
			Healthy: st.Listeners > 0,
			Detail:  fmt.Sprintf("listeners=%d nodes=%d", st.Listeners, st.Nodes),
		}
	})
	if hist != nil {
		stale := 4 * fsync
		if stale < 2*time.Second {
			stale = 2 * time.Second
		}
		h.Register(func() export.Check {
			st := hist.Stats()
			detail := fmt.Sprintf("synced_seq=%d ring_depth=%d write_errors=%d", st.SyncedSeq, st.RingDepth, st.WriteErrors)
			if st.LastSyncNs > 0 {
				detail += fmt.Sprintf(" fsync_age=%v", time.Duration(time.Now().UnixNano()-st.LastSyncNs).Round(time.Millisecond))
			}
			return export.Check{Name: "wal", Healthy: hist.Healthy(stale), Detail: detail}
		})
	}
	if push != nil {
		stale := 4 * pushEvery
		h.Register(func() export.Check {
			st := push.Stats()
			return export.Check{
				Name:    "push",
				Healthy: push.Healthy(stale),
				Detail:  fmt.Sprintf("delivered=%d dropped=%d backlog=%d", st.Delivered, st.Dropped, st.Backlog),
			}
		})
	}
	return h
}

// treatmentConfig derives the fleet treatment configuration from the
// -treat-* flags: a JSON spec file, or inline node:depends_on edges
// with the policy knobs. Nil means the control plane stays off.
func treatmentConfig(specPath, deps string, recovery int, restart bool, nodes int) (*ingest.TreatmentConfig, error) {
	if specPath != "" && deps != "" {
		return nil, fmt.Errorf("-treat-spec and -treat-deps are mutually exclusive")
	}
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ts, err := swwd.LoadTreatment(f)
		if err != nil {
			return nil, err
		}
		edges, pol, err := ts.Treatment(nodes)
		if err != nil {
			return nil, err
		}
		return &ingest.TreatmentConfig{Edges: edges, Policy: pol}, nil
	}
	if deps == "" {
		return nil, nil
	}
	var edges []swwd.TreatmentEdge
	for _, part := range strings.Split(deps, ",") {
		var n, d uint32
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d:%d", &n, &d); err != nil {
			return nil, fmt.Errorf("-treat-deps entry %q: want node:depends_on", part)
		}
		edges = append(edges, swwd.TreatmentEdge{Node: n, DependsOn: d})
	}
	pol := swwd.TreatmentPolicy{RecoveryFrames: recovery, RestartDependents: restart}
	return &ingest.TreatmentConfig{Edges: edges, Policy: pol}, nil
}

// calibrationConfig derives the fleet calibration configuration from
// the -calib-* flags: a JSON spec file, or the inline knobs. Nil means
// the loop stays off.
func calibrationConfig(on bool, specPath string, window int, margin float64, promoteAfter int) (*ingest.CalibrationConfig, error) {
	if !on && specPath == "" {
		return nil, nil
	}
	spec := &swwd.CalibrationSpec{WindowCycles: window, Margin: margin, PromoteAfter: promoteAfter}
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if spec, err = swwd.LoadCalibration(f); err != nil {
			return nil, err
		}
	}
	p, err := spec.Params()
	if err != nil {
		return nil, err
	}
	return &ingest.CalibrationConfig{Params: p}, nil
}

// calibHandler serves the /calib endpoint: the rollout stage and the
// current round's candidates, plus the per-runnable baseline the last
// suggestion was derived from.
func calibHandler(fleet *ingest.Fleet) http.HandlerFunc {
	type candidate struct {
		Runnable  uint32            `json:"runnable"`
		Name      string            `json:"name"`
		Node      uint32            `json:"node"`
		Candidate swwd.Hypothesis   `json:"candidate"`
		Prior     *swwd.Hypothesis  `json:"prior,omitempty"`
		Shadow    *swwd.ShadowStats `json:"shadow,omitempty"`
		Applied   bool              `json:"applied"`
	}
	type runnableBaseline struct {
		Runnable uint32  `json:"runnable"`
		Name     string  `json:"name"`
		Windows  uint64  `json:"windows"`
		Min      uint64  `json:"min"`
		Max      uint64  `json:"max"`
		Rate     float64 `json:"rate"`
		P50      uint64  `json:"p50"`
		P95      uint64  `json:"p95"`
	}
	name := func(rid int) string {
		if rid >= 0 && rid < len(fleet.Names) {
			return fleet.Names[rid]
		}
		return ""
	}
	return func(w http.ResponseWriter, _ *http.Request) {
		st := fleet.Calib.Status()
		base := fleet.Calib.LastBaseline()
		out := struct {
			Stage       string             `json:"stage"`
			Rounds      uint64             `json:"rounds"`
			Rollbacks   uint64             `json:"rollbacks"`
			Rejected    uint64             `json:"rejected"`
			CanaryNodes int                `json:"canary_nodes"`
			PendingAcks int                `json:"pending_acks"`
			Candidates  []candidate        `json:"candidates"`
			Baseline    []runnableBaseline `json:"baseline"`
		}{
			Stage: st.Stage.String(), Rounds: st.Rounds, Rollbacks: st.Rollbacks,
			Rejected: st.Rejected, CanaryNodes: st.CanaryNodes, PendingAcks: st.PendingAcks,
			Candidates: make([]candidate, 0, len(st.Candidates)),
			Baseline:   make([]runnableBaseline, 0, len(base.Runnables)),
		}
		for _, c := range st.Candidates {
			cd := candidate{
				Runnable: uint32(c.Runnable), Name: name(int(c.Runnable)), Node: c.Node,
				Candidate: c.Hyp, Applied: c.Applied,
			}
			if c.Applied {
				prior := c.Prior
				cd.Prior = &prior
			}
			if c.HasShadow {
				shadow := c.Shadow
				cd.Shadow = &shadow
			}
			out.Candidates = append(out.Candidates, cd)
		}
		for _, rb := range base.Runnables {
			out.Baseline = append(out.Baseline, runnableBaseline{
				Runnable: uint32(rb.Runnable), Name: name(rb.Runnable),
				Windows: rb.Windows, Min: rb.Min, Max: rb.Max,
				Rate: rb.Rate, P50: rb.P50, P95: rb.P95,
			})
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	}
}

// exporter renders the combined telemetry — the watchdog snapshot, the
// ingestion server's wire counters, treatment, WAL and push-sink
// accounting — with one reused buffer. The same rendering backs the
// /metrics pull endpoint and the push sink's Collect.
type exporter struct {
	svc   *swwd.Service
	srv   *ingest.Server
	names []string
	treat *treat.Controller       // nil when the control plane is off
	calib *ingest.CalibController // nil when -calib is off
	wal   *wal.WAL                // nil when -wal-dir is off
	push  *export.Pusher          // nil when -push-url is off

	mu   sync.Mutex
	snap swwd.Snapshot
	buf  bytes.Buffer
}

// render writes the full exposition into out (used by the push sink).
func (e *exporter) render(out *bytes.Buffer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.renderLocked()
	out.Write(e.buf.Bytes())
}

// renderLocked fills e.buf; callers hold e.mu.
func (e *exporter) renderLocked() {
	e.svc.SnapshotInto(&e.snap)
	e.buf.Reset()
	export.WriteSnapshot(&e.buf, &e.snap, e.names)
	export.WriteJournalSeq(&e.buf, e.snap.Journal)
	export.WriteIngest(&e.buf, e.srv.Stats())
	export.WriteIngestDetail(&e.buf, e.srv.ListenerStats(), e.srv.ShardStats())
	if e.treat != nil {
		export.WriteTreat(&e.buf, e.treat.Stats())
	}
	if e.calib != nil {
		export.WriteCalib(&e.buf, e.calib.Status(), e.names)
	}
	if e.wal != nil {
		export.WriteWAL(&e.buf, e.wal.Stats())
	}
	if e.push != nil {
		export.WritePush(&e.buf, e.push.Stats())
	}
}

func (e *exporter) handle(w http.ResponseWriter, _ *http.Request) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.renderLocked()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(e.buf.Bytes())
}
