// Package core implements the paper's primary contribution: the Software
// Watchdog, a dependability software service that monitors the timing
// behaviour and program flow of individual application runnables at run
// time (§3).
//
// The service has the paper's three basic units:
//
//   - the heartbeat monitoring unit, tracking per-runnable aliveness and
//     arrival rate with the Aliveness Counter (AC), Arrival Rate Counter
//     (ARC), Cycle Counter for Aliveness (CCA), Cycle Counter for Arrival
//     Rate (CCAR) and an Activation Status (AS) per runnable (§3.3);
//   - the program flow checking (PFC) unit, validating executed successors
//     against a predefined look-up table of allowed predecessor/successor
//     pairs (§3.4);
//   - the task state indication (TSI) unit, accumulating per-runnable error
//     indications in error indication vectors and deriving task,
//     application and global ECU state (§3.5).
//
// The watchdog is clock-agnostic: driven by an OSEK alarm on virtual time
// in the HIL reproduction, or by a time.Ticker when deployed as a live Go
// service (see the root swwd package).
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// Hypothesis is the per-runnable fault hypothesis: how many heartbeats the
// runnable must (aliveness) and may (arrival rate) produce within its
// monitoring periods, both expressed in watchdog cycles.
type Hypothesis struct {
	// AlivenessCycles is the aliveness monitoring period in watchdog
	// cycles (the CCA limit); zero disables aliveness monitoring.
	AlivenessCycles int
	// MinHeartbeats is the minimum number of heartbeats required per
	// aliveness period.
	MinHeartbeats int
	// ArrivalCycles is the arrival-rate monitoring period in watchdog
	// cycles (the CCAR limit); zero disables arrival-rate monitoring.
	ArrivalCycles int
	// MaxArrivals is the maximum number of heartbeats tolerated per
	// arrival-rate period.
	MaxArrivals int
}

// Validate checks internal consistency.
func (h Hypothesis) Validate() error {
	if h.AlivenessCycles < 0 || h.ArrivalCycles < 0 {
		return errors.New("core: negative monitoring period")
	}
	if h.AlivenessCycles > 0 && h.MinHeartbeats <= 0 {
		return errors.New("core: aliveness monitoring requires MinHeartbeats >= 1")
	}
	if h.ArrivalCycles > 0 && h.MaxArrivals <= 0 {
		return errors.New("core: arrival-rate monitoring requires MaxArrivals >= 1")
	}
	return nil
}

// Thresholds are the error-indication-vector limits of the TSI unit: how
// many errors of each kind one runnable may accumulate before its task is
// declared faulty (Fig. 6 uses a program-flow threshold of 3).
type Thresholds struct {
	Aliveness   int
	ArrivalRate int
	ProgramFlow int
}

// DefaultThresholds mirror the evaluation setup of the paper.
func DefaultThresholds() Thresholds {
	return Thresholds{Aliveness: 3, ArrivalRate: 3, ProgramFlow: 3}
}

func (t Thresholds) of(kind ErrorKind) int {
	switch kind {
	case AlivenessError:
		return t.Aliveness
	case ArrivalRateError:
		return t.ArrivalRate
	case ProgramFlowError:
		return t.ProgramFlow
	default:
		return 0
	}
}

// Config assembles a Watchdog.
type Config struct {
	Model *runnable.Model
	Clock sim.Clock
	// Sink receives fault reports and state events; nil attaches a
	// discarding sink (reports remain queryable via counters).
	Sink Sink
	// CyclePeriod documents the intended spacing of Cycle calls; the
	// driver (OSEK alarm or ticker) owns the actual cadence. Used only
	// for reporting. Defaults to 10ms, the tick of the paper's plots.
	CyclePeriod time.Duration
	// Thresholds for the TSI unit; zero value means DefaultThresholds.
	Thresholds Thresholds
	// EagerArrivalCheck trips an arrival-rate error the moment ARC
	// exceeds MaxArrivals instead of at period end (ablation; the paper
	// checks "shortly before the next period begins").
	EagerArrivalCheck bool
	// DisableCorrelation turns off the Fig. 6 collaboration between the
	// PFC and heartbeat units (ablation).
	DisableCorrelation bool
	// CorrelationWindowCycles is how many cycles after a program-flow
	// error an aliveness error on the same task is attributed to the flow
	// root cause. Zero means 2.
	CorrelationWindowCycles int
	// ECUFaultyAppCount is how many simultaneously faulty applications
	// mark the global ECU state faulty. Zero means 2; set to 1 to make
	// any faulty application an ECU-level fault.
	ECUFaultyAppCount int
}

// rstate is the heartbeat-monitoring state of one runnable.
type rstate struct {
	active bool
	hyp    Hypothesis

	ac   int // Aliveness Counter
	arc  int // Arrival Rate Counter
	cca  int // Cycle Counter for Aliveness
	ccar int // Cycle Counter for Arrival Rate

	errs [3]uint64 // error-indication vector element, indexed by kind-1
}

// tstate is the TSI state of one task.
type tstate struct {
	state HealthState
	// lastFlowCycle is the cycle of the most recent program-flow error on
	// this task, for the correlation window.
	lastFlowCycle uint64
	flowSeen      bool
	// correlatedAlivenessReported implements the paper's "only one
	// accumulated aliveness error is reported" during a flow-error burst.
	correlatedAlivenessReported bool
	// lastExec is the previously executed monitored runnable of this
	// task, the PFC predecessor register.
	lastExec runnable.ID
	// suspendedAS remembers which runnables had their Activation Status
	// on when SuspendTaskMonitoring switched the task off.
	suspendedAS []runnable.ID
}

// astate is the TSI state of one application.
type astate struct {
	state HealthState
}

// Counters is a snapshot of one runnable's heartbeat-monitoring counters.
type Counters struct {
	Active bool
	AC     int
	ARC    int
	CCA    int
	CCAR   int
}

// Results are cumulative detection counts — the "AM Result", "AR Result"
// and "PFC Result" series of the paper's plots.
type Results struct {
	Aliveness   uint64
	ArrivalRate uint64
	ProgramFlow uint64
}

// Watchdog is the Software Watchdog service instance for one ECU.
type Watchdog struct {
	mu  sync.Mutex
	cfg Config

	model *runnable.Model
	clock sim.Clock
	sink  Sink

	cycle uint64

	rs []rstate
	ts []tstate
	as []astate

	// successors[p] is a bitset over runnable IDs allowed to follow p.
	successors [][]uint64
	monitored  []bool // PFC-monitored runnables

	ecuState HealthState
	results  Results
}

// New validates the configuration and builds a watchdog with all
// activation statuses off; configure runnables with SetHypothesis and the
// flow table with AddFlowPair/AddFlowSequence, then Activate them.
func New(cfg Config) (*Watchdog, error) {
	if cfg.Model == nil {
		return nil, errors.New("core: Config.Model is required")
	}
	if !cfg.Model.Frozen() {
		return nil, errors.New("core: model must be frozen")
	}
	if cfg.Clock == nil {
		return nil, errors.New("core: Config.Clock is required")
	}
	if cfg.Sink == nil {
		cfg.Sink = nopSink{}
	}
	if cfg.CyclePeriod <= 0 {
		cfg.CyclePeriod = 10 * time.Millisecond
	}
	if (cfg.Thresholds == Thresholds{}) {
		cfg.Thresholds = DefaultThresholds()
	}
	if cfg.Thresholds.Aliveness <= 0 || cfg.Thresholds.ArrivalRate <= 0 || cfg.Thresholds.ProgramFlow <= 0 {
		return nil, errors.New("core: thresholds must be positive")
	}
	if cfg.CorrelationWindowCycles <= 0 {
		cfg.CorrelationWindowCycles = 2
	}
	if cfg.ECUFaultyAppCount <= 0 {
		cfg.ECUFaultyAppCount = 2
	}
	n := cfg.Model.NumRunnables()
	words := (n + 63) / 64
	w := &Watchdog{
		cfg:        cfg,
		model:      cfg.Model,
		clock:      cfg.Clock,
		sink:       cfg.Sink,
		rs:         make([]rstate, n),
		ts:         make([]tstate, cfg.Model.NumTasks()),
		as:         make([]astate, cfg.Model.NumApps()),
		successors: make([][]uint64, n),
		monitored:  make([]bool, n),
		ecuState:   StateOK,
	}
	for i := range w.successors {
		w.successors[i] = make([]uint64, words)
	}
	for i := range w.ts {
		w.ts[i].state = StateOK
		w.ts[i].lastExec = runnable.NoID
	}
	for i := range w.as {
		w.as[i].state = StateOK
	}
	return w, nil
}

// CyclePeriod reports the configured watchdog cycle period.
func (w *Watchdog) CyclePeriod() time.Duration { return w.cfg.CyclePeriod }

// SetHypothesis installs the fault hypothesis for a runnable. The runnable
// is not activated; call Activate.
func (w *Watchdog) SetHypothesis(rid runnable.ID, h Hypothesis) error {
	if err := h.Validate(); err != nil {
		return fmt.Errorf("core: SetHypothesis(%d): %w", rid, err)
	}
	if _, err := w.model.Runnable(rid); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rs[rid].hyp = h
	return nil
}

// Hypothesis reports the installed fault hypothesis of a runnable.
func (w *Watchdog) Hypothesis(rid runnable.ID) (Hypothesis, error) {
	if _, err := w.model.Runnable(rid); err != nil {
		return Hypothesis{}, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rs[rid].hyp, nil
}

// Activate sets a runnable's Activation Status: its heartbeats are
// recorded and its hypothesis checked.
func (w *Watchdog) Activate(rid runnable.ID) error {
	return w.setActive(rid, true)
}

// Deactivate clears a runnable's Activation Status and resets its
// counters.
func (w *Watchdog) Deactivate(rid runnable.ID) error {
	return w.setActive(rid, false)
}

func (w *Watchdog) setActive(rid runnable.ID, active bool) error {
	if _, err := w.model.Runnable(rid); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	rs := &w.rs[rid]
	rs.active = active
	rs.ac, rs.arc, rs.cca, rs.ccar = 0, 0, 0, 0
	return nil
}

// MonitorFlow enrols a runnable in program-flow checking. Only enrolled
// (typically safety-critical, §3.4) runnables update and are checked
// against the flow look-up table.
func (w *Watchdog) MonitorFlow(rid runnable.ID) error {
	if _, err := w.model.Runnable(rid); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.monitored[rid] = true
	return nil
}

// AddFlowPair allows succ to execute immediately after pred within their
// common task. Both runnables are implicitly enrolled in flow monitoring.
func (w *Watchdog) AddFlowPair(pred, succ runnable.ID) error {
	if _, err := w.model.Runnable(pred); err != nil {
		return err
	}
	if _, err := w.model.Runnable(succ); err != nil {
		return err
	}
	if w.model.TaskOf(pred) != w.model.TaskOf(succ) {
		return fmt.Errorf("core: AddFlowPair(%d,%d): runnables belong to different tasks", pred, succ)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.successors[pred][succ/64] |= 1 << (uint(succ) % 64)
	w.monitored[pred] = true
	w.monitored[succ] = true
	return nil
}

// AddFlowSequence allows the straight-line order r0→r1→…→rn and the
// wrap-around rn→r0 (the task re-executes its sequence every activation).
func (w *Watchdog) AddFlowSequence(rids ...runnable.ID) error {
	if len(rids) < 2 {
		return errors.New("core: AddFlowSequence needs at least two runnables")
	}
	for i := 0; i < len(rids)-1; i++ {
		if err := w.AddFlowPair(rids[i], rids[i+1]); err != nil {
			return err
		}
	}
	return w.AddFlowPair(rids[len(rids)-1], rids[0])
}

// allowed reports whether succ may follow pred per the look-up table.
func (w *Watchdog) allowed(pred, succ runnable.ID) bool {
	return w.successors[pred][succ/64]&(1<<(uint(succ)%64)) != 0
}

// Heartbeat is the aliveness indication routine runnables call (directly,
// or via the OSEK observer glue). It records the heartbeat in AC and ARC
// and runs the event-triggered program-flow check.
func (w *Watchdog) Heartbeat(rid runnable.ID) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if int(rid) < 0 || int(rid) >= len(w.rs) {
		return
	}
	rs := &w.rs[rid]
	if rs.active {
		rs.ac++
		rs.arc++
		if w.cfg.EagerArrivalCheck && rs.hyp.ArrivalCycles > 0 && rs.arc > rs.hyp.MaxArrivals {
			w.detectLocked(ArrivalRateError, rid, rs.arc, rs.hyp.MaxArrivals, runnable.NoID)
			rs.arc, rs.ccar = 0, 0
		}
	}
	w.checkFlowLocked(rid)
}

// checkFlowLocked implements the PFC unit: compare the actually executed
// successor with the predefined successors of the predecessor. Flow is
// tracked per task, so legal preemption interleavings between tasks are
// not flagged.
func (w *Watchdog) checkFlowLocked(rid runnable.ID) {
	if !w.monitored[rid] {
		return
	}
	tid := w.model.TaskOf(rid)
	ts := &w.ts[tid]
	pred := ts.lastExec
	ts.lastExec = rid
	if pred == runnable.NoID {
		return // first monitored execution of this task: no predecessor yet
	}
	if w.allowed(pred, rid) {
		return
	}
	ts.lastFlowCycle = w.cycle
	if !ts.flowSeen {
		ts.flowSeen = true
		ts.correlatedAlivenessReported = false
	}
	w.detectLocked(ProgramFlowError, rid, 0, 0, pred)
}

// Cycle advances the time-triggered part of the watchdog by one monitoring
// cycle: cycle counters are incremented and hypotheses whose period
// expires are checked, then reset (§3.3: counters are "checked shortly
// before the next period begins" and "reset to zero, if the periods ...
// expire or an error is detected").
func (w *Watchdog) Cycle() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cycle++
	for rid := range w.rs {
		rs := &w.rs[rid]
		if !rs.active {
			continue
		}
		if rs.hyp.AlivenessCycles > 0 {
			rs.cca++
			if rs.cca >= rs.hyp.AlivenessCycles {
				if rs.ac < rs.hyp.MinHeartbeats {
					w.detectLocked(AlivenessError, runnable.ID(rid), rs.ac, rs.hyp.MinHeartbeats, runnable.NoID)
				}
				rs.ac, rs.cca = 0, 0
			}
		}
		if rs.hyp.ArrivalCycles > 0 {
			rs.ccar++
			if rs.ccar >= rs.hyp.ArrivalCycles {
				if rs.arc > rs.hyp.MaxArrivals {
					w.detectLocked(ArrivalRateError, runnable.ID(rid), rs.arc, rs.hyp.MaxArrivals, runnable.NoID)
				}
				rs.arc, rs.ccar = 0, 0
			}
		}
	}
}

// detectLocked routes one detected error through the collaboration logic
// and the TSI unit, and reports it to the sink. Callers hold w.mu.
func (w *Watchdog) detectLocked(kind ErrorKind, rid runnable.ID, observed, expected int, pred runnable.ID) {
	tid := w.model.TaskOf(rid)
	app := w.model.AppOfRunnable(rid)
	ts := &w.ts[tid]

	correlated := false
	if kind == AlivenessError && !w.cfg.DisableCorrelation && ts.flowSeen &&
		w.cycle-ts.lastFlowCycle <= uint64(w.cfg.CorrelationWindowCycles) {
		// Collaboration of the units (Fig. 6): this aliveness error is a
		// symptom of the program-flow fault. Accumulate it at most once.
		correlated = true
		if ts.correlatedAlivenessReported {
			return
		}
		ts.correlatedAlivenessReported = true
	}

	switch kind {
	case AlivenessError:
		w.results.Aliveness++
	case ArrivalRateError:
		w.results.ArrivalRate++
	case ProgramFlowError:
		w.results.ProgramFlow++
	}
	rs := &w.rs[rid]
	rs.errs[kind-1]++

	w.sink.Fault(Report{
		Time:        w.clock.Now(),
		Cycle:       w.cycle,
		Kind:        kind,
		Runnable:    rid,
		Task:        tid,
		App:         app,
		Observed:    observed,
		Expected:    expected,
		Predecessor: pred,
		Correlated:  correlated,
	})

	// TSI: element of the error indication vector reached its threshold →
	// the whole task is considered faulty (§3.5).
	if ts.state == StateOK && rs.errs[kind-1] >= uint64(w.cfg.Thresholds.of(kind)) {
		w.setTaskStateLocked(tid, StateFaulty, kind)
	}
}

// setTaskStateLocked performs the TSI derivation chain: task → application
// → global ECU state.
func (w *Watchdog) setTaskStateLocked(tid runnable.TaskID, state HealthState, cause ErrorKind) {
	ts := &w.ts[tid]
	if ts.state == state {
		return
	}
	ts.state = state
	w.sink.StateChanged(StateEvent{
		Time: w.clock.Now(), Cycle: w.cycle,
		Scope: TaskScope, Task: tid, App: w.model.AppOf(tid),
		State: state, Cause: cause,
	})

	// A shared task hosts runnables of several applications; its state
	// feeds into every one of them (§1: runnables from different software
	// components can be mapped to the same task).
	for _, app := range w.model.AppsOfTask(tid) {
		appState := StateOK
		appModel, err := w.model.App(app)
		if err == nil {
			for _, t := range appModel.Tasks {
				if w.ts[t].state == StateFaulty {
					appState = StateFaulty
					break
				}
			}
		}
		if w.as[app].state != appState {
			w.as[app].state = appState
			w.sink.StateChanged(StateEvent{
				Time: w.clock.Now(), Cycle: w.cycle,
				Scope: AppScope, Task: runnable.NoID, App: app,
				State: appState, Cause: cause,
			})
		}
	}

	faultyApps := 0
	for i := range w.as {
		if w.as[i].state == StateFaulty {
			faultyApps++
		}
	}
	ecu := StateOK
	if faultyApps >= w.cfg.ECUFaultyAppCount {
		ecu = StateFaulty
	}
	if w.ecuState != ecu {
		w.ecuState = ecu
		w.sink.StateChanged(StateEvent{
			Time: w.clock.Now(), Cycle: w.cycle,
			Scope: ECUScope, Task: runnable.NoID, App: runnable.NoID,
			State: ecu, Cause: cause,
		})
	}
}

// ClearTask resets the TSI state and heartbeat counters of one task after
// fault treatment (task or application restart), returning it to OK.
func (w *Watchdog) ClearTask(tid runnable.TaskID) error {
	t, err := w.model.Task(tid)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ts := &w.ts[tid]
	ts.flowSeen = false
	ts.correlatedAlivenessReported = false
	ts.lastExec = runnable.NoID
	for _, rid := range t.Runnables {
		rs := &w.rs[rid]
		rs.ac, rs.arc, rs.cca, rs.ccar = 0, 0, 0, 0
		rs.errs = [3]uint64{}
	}
	if ts.state != StateOK {
		w.setTaskStateLocked(tid, StateOK, 0)
	}
	return nil
}

// SuspendTaskMonitoring clears the Activation Status of every runnable of
// a task and remembers the previous set, used when the task's application
// is terminated: a deliberately stopped application must not accumulate
// aliveness errors (§3.3 AS semantics).
func (w *Watchdog) SuspendTaskMonitoring(tid runnable.TaskID) error {
	t, err := w.model.Task(tid)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ts := &w.ts[tid]
	ts.suspendedAS = ts.suspendedAS[:0]
	for _, rid := range t.Runnables {
		rs := &w.rs[rid]
		if rs.active {
			ts.suspendedAS = append(ts.suspendedAS, rid)
			rs.active = false
			rs.ac, rs.arc, rs.cca, rs.ccar = 0, 0, 0, 0
		}
	}
	return nil
}

// ResumeTaskMonitoring restores the Activation Statuses recorded by
// SuspendTaskMonitoring.
func (w *Watchdog) ResumeTaskMonitoring(tid runnable.TaskID) error {
	if _, err := w.model.Task(tid); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ts := &w.ts[tid]
	for _, rid := range ts.suspendedAS {
		rs := &w.rs[rid]
		rs.active = true
		rs.ac, rs.arc, rs.cca, rs.ccar = 0, 0, 0, 0
	}
	ts.suspendedAS = ts.suspendedAS[:0]
	return nil
}

// ClearAll resets every task and resumes suspended monitoring, e.g. after
// an ECU software reset (the boot configuration is re-applied).
func (w *Watchdog) ClearAll() {
	for tid := range w.ts {
		// tid is always valid here.
		_ = w.ResumeTaskMonitoring(runnable.TaskID(tid))
		_ = w.ClearTask(runnable.TaskID(tid))
	}
	w.mu.Lock()
	w.cycle = 0
	w.mu.Unlock()
}

// CycleCount reports how many monitoring cycles have elapsed.
func (w *Watchdog) CycleCount() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cycle
}

// CounterSnapshot reports the live heartbeat-monitoring counters of a
// runnable — the series plotted in Fig. 5.
func (w *Watchdog) CounterSnapshot(rid runnable.ID) (Counters, error) {
	if _, err := w.model.Runnable(rid); err != nil {
		return Counters{}, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	rs := &w.rs[rid]
	return Counters{Active: rs.active, AC: rs.ac, ARC: rs.arc, CCA: rs.cca, CCAR: rs.ccar}, nil
}

// Results reports the cumulative detection counts (the AM/AR/PFC Result
// series).
func (w *Watchdog) Results() Results {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.results
}

// RunnableErrors reports the error-indication-vector element of one
// runnable: accumulated error counts by kind.
func (w *Watchdog) RunnableErrors(rid runnable.ID) (aliveness, arrival, flow uint64, err error) {
	if _, err := w.model.Runnable(rid); err != nil {
		return 0, 0, 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	e := w.rs[rid].errs
	return e[0], e[1], e[2], nil
}

// TaskState reports the TSI-derived state of a task.
func (w *Watchdog) TaskState(tid runnable.TaskID) (HealthState, error) {
	if _, err := w.model.Task(tid); err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ts[tid].state, nil
}

// AppState reports the TSI-derived state of an application.
func (w *Watchdog) AppState(app runnable.AppID) (HealthState, error) {
	if _, err := w.model.App(app); err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.as[app].state, nil
}

// ECUState reports the derived global ECU state.
func (w *Watchdog) ECUState() HealthState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ecuState
}
