package hwwd

import (
	"testing"
	"time"

	"swwd/internal/sim"
)

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil kernel accepted")
	}
	if _, err := New(Config{Kernel: sim.NewKernel()}); err == nil {
		t.Error("zero timeout accepted")
	}
}

func TestKickedWatchdogNeverFires(t *testing.T) {
	k := sim.NewKernel()
	w, err := New(Config{Kernel: k, Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := w.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	k.Every(50*sim.Millisecond, 50*time.Millisecond, func() bool {
		w.Kick()
		return true
	})
	if err := k.Run(5 * sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w.Expiries() != 0 {
		t.Fatalf("kicked watchdog fired %d times", w.Expiries())
	}
	if w.Kicks() == 0 {
		t.Fatal("no kicks recorded")
	}
}

func TestMissingKickFires(t *testing.T) {
	k := sim.NewKernel()
	fired := 0
	w, err := New(Config{Kernel: k, Timeout: 100 * time.Millisecond, OnExpire: func() { fired++ }})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := w.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Kick twice, then go silent.
	k.At(50*sim.Millisecond, w.Kick)
	k.At(100*sim.Millisecond, w.Kick)
	if err := k.Run(450 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Silence from 100ms: expiries at 200, 300, 400ms (re-armed each time).
	if fired != 3 || w.Expiries() != 3 {
		t.Fatalf("fired %d/%d times, want 3", fired, w.Expiries())
	}
	if w.LastExpiry() != 400*sim.Millisecond {
		t.Fatalf("LastExpiry = %v", w.LastExpiry())
	}
}

func TestStopDisarms(t *testing.T) {
	k := sim.NewKernel()
	w, err := New(Config{Kernel: k, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := w.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := w.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	w.Stop()
	w.Stop() // idempotent
	w.Kick() // no-op when stopped
	if err := k.Run(sim.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w.Expiries() != 0 {
		t.Fatalf("stopped watchdog fired %d times", w.Expiries())
	}
	if w.Kicks() != 0 {
		t.Fatal("kick counted while stopped")
	}
}
