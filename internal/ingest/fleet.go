// Fleet assembly: a declarative helper that builds the model, watchdog
// and ingestion server for a uniform fleet of remote reporter nodes —
// the deployment shape of a dedicated health-monitoring ECU aggregating
// aliveness across the in-vehicle network. cmd/swwdd and the loopback
// soak test share this code path.
package ingest

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"swwd/internal/core"
	"swwd/internal/runnable"
	"swwd/internal/sim"
	"swwd/internal/treat"
)

// FleetConfig describes a uniform fleet: Nodes remote nodes, each
// reporting RunnablesPerNode runnables and flushing one frame every
// Interval.
type FleetConfig struct {
	// Nodes is the number of remote reporter nodes (must be positive).
	Nodes int
	// RunnablesPerNode is the monitored runnable count per node (must be
	// positive).
	RunnablesPerNode int
	// Interval is the declared per-node frame flush cadence. Zero means
	// 100ms.
	Interval time.Duration
	// CyclePeriod is the watchdog monitoring cycle. Zero means 10ms.
	CyclePeriod time.Duration
	// BeatsPerWindow is the MinHeartbeats each remote runnable must
	// deliver per aliveness window (the window spans GraceFrames flush
	// intervals, like the link hypothesis). Zero means 1.
	BeatsPerWindow int
	// GraceFrames, Shards, QueueLen, MaxPacket, ReadBuffer, Listeners
	// and BatchSize configure the Server (see Config).
	GraceFrames int
	Shards      int
	QueueLen    int
	MaxPacket   int
	ReadBuffer  int
	Listeners   int
	BatchSize   int
	// JournalSize forwards to core.Config.JournalSize.
	JournalSize int
	// SweepShards forwards to core.Config.SweepShards.
	SweepShards int
	// Sink receives watchdog output; nil discards.
	Sink core.Sink
	// Clock defaults to a wall clock.
	Clock sim.Clock
	// Treatment, when non-nil, enables the fault-treatment control
	// plane: link aliveness faults quarantine the node and scale down
	// its dependents per the declared edges, and resumed heartbeats
	// expedite recovery. Fleet.Treat exposes the controller.
	Treatment *TreatmentConfig
	// CommandEpoch forwards to Config.CommandEpoch (zero derives it
	// from the wall clock).
	CommandEpoch uint64
	// Calibration, when non-nil, enables the online auto-calibration
	// loop: the watchdog's estimator records per-runnable baselines and
	// the Fleet.Calib controller drives shadow-guarded, staged
	// hypothesis rollouts over the command channel.
	Calibration *CalibrationConfig
}

// Fleet is an assembled fleet system: the frozen model, the configured
// watchdog, the ingestion server with every node registered, and the
// name/ID tables the metrics exporter needs.
type Fleet struct {
	Model    *runnable.Model
	Watchdog *core.Watchdog
	Server   *Server
	// Specs[i] is the registration of node ID i (0-based node IDs).
	Specs []NodeSpec
	// Names[rid] is the runnable name for metric labels.
	Names []string
	// Treat is the fault-treatment controller; nil unless
	// FleetConfig.Treatment was set. Callers own its Close.
	Treat *treat.Controller
	// Calib is the calibration controller; nil unless
	// FleetConfig.Calibration was set. Callers own its Close.
	Calib *CalibController
}

// BuildFleet assembles the model (one application, one task per node,
// RunnablesPerNode monitored runnables plus one link runnable per
// node), creates the watchdog, derives and installs every hypothesis,
// and registers all nodes with a new ingestion server. The server is
// not yet listening: call Fleet.Server.Listen, then drive
// Fleet.Watchdog.Cycle (e.g. via swwd.Service).
func BuildFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Nodes <= 0 || cfg.RunnablesPerNode <= 0 {
		return nil, errors.New("ingest: fleet needs positive Nodes and RunnablesPerNode")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.CyclePeriod <= 0 {
		cfg.CyclePeriod = 10 * time.Millisecond
	}
	if cfg.BeatsPerWindow <= 0 {
		cfg.BeatsPerWindow = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = sim.NewWallClock()
	}

	// The treatment sink and frame hook must exist before the watchdog
	// and server that invoke them, but the controller they forward to
	// can only be built after both: bind it late through atomics.
	var tsink *treatSink
	var hookCtrl atomic.Pointer[treat.Controller]
	sink := cfg.Sink
	var frameHook func(node uint32, restarted bool)
	if cfg.Treatment != nil {
		tsink = &treatSink{inner: cfg.Sink, linkToNode: make(map[runnable.ID]uint32, cfg.Nodes)}
		sink = tsink
		frameHook = func(node uint32, restarted bool) {
			if c := hookCtrl.Load(); c != nil {
				c.OnFrame(node, restarted)
			}
		}
	}

	model := runnable.NewModel()
	app, err := model.AddApp("fleet", runnable.SafetyRelevant)
	if err != nil {
		return nil, err
	}
	specs := make([]NodeSpec, cfg.Nodes)
	for n := 0; n < cfg.Nodes; n++ {
		task, err := model.AddTask(app, fmt.Sprintf("node%04d", n), 1)
		if err != nil {
			return nil, err
		}
		spec := NodeSpec{Node: uint32(n), Interval: cfg.Interval}
		for r := 0; r < cfg.RunnablesPerNode; r++ {
			rid, err := model.AddRunnable(task, fmt.Sprintf("node%04d/r%d", n, r), time.Millisecond, runnable.SafetyRelevant)
			if err != nil {
				return nil, err
			}
			spec.Runnables = append(spec.Runnables, rid)
		}
		link, err := model.AddRunnable(task, fmt.Sprintf("node%04d/link", n), time.Millisecond, runnable.SafetyCritical)
		if err != nil {
			return nil, err
		}
		spec.Link = link
		specs[n] = spec
		if tsink != nil {
			tsink.linkToNode[link] = uint32(n)
		}
	}
	if err := model.Freeze(); err != nil {
		return nil, err
	}

	estWindow := 0
	if cfg.Calibration != nil {
		p := cfg.Calibration.Params.WithDefaults()
		if err := p.Validate(); err != nil {
			return nil, err
		}
		estWindow = p.WindowCycles
	}
	w, err := core.New(core.Config{
		Model:                 model,
		Clock:                 cfg.Clock,
		Sink:                  sink,
		CyclePeriod:           cfg.CyclePeriod,
		JournalSize:           cfg.JournalSize,
		SweepShards:           cfg.SweepShards,
		EstimatorWindowCycles: estWindow,
	})
	if err != nil {
		return nil, err
	}

	// Remote runnable hypothesis: like the link, the window spans
	// GraceFrames flush intervals, requiring BeatsPerWindow heartbeats —
	// a runnable whose beats stop flowing (locally dead, or its node's
	// frames lost) faults within one window.
	hyp := LinkHypothesis(cfg.Interval, cfg.CyclePeriod, cfg.GraceFrames)
	hyp.MinHeartbeats = cfg.BeatsPerWindow
	for n := range specs {
		for _, rid := range specs[n].Runnables {
			if err := w.SetHypothesis(rid, hyp); err != nil {
				return nil, err
			}
			if err := w.Activate(rid); err != nil {
				return nil, err
			}
		}
	}

	srv, err := newServer(Config{
		Watchdog:     w,
		Shards:       cfg.Shards,
		QueueLen:     cfg.QueueLen,
		MaxPacket:    cfg.MaxPacket,
		GraceFrames:  cfg.GraceFrames,
		ReadBuffer:   cfg.ReadBuffer,
		Listeners:    cfg.Listeners,
		BatchSize:    cfg.BatchSize,
		CommandEpoch: cfg.CommandEpoch,
		FrameHook:    frameHook,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.RegisterNodes(specs); err != nil {
		return nil, err
	}

	names := make([]string, model.NumRunnables())
	for i := range names {
		if r, err := model.Runnable(runnable.ID(i)); err == nil {
			names[i] = r.Name
		}
	}
	f := &Fleet{Model: model, Watchdog: w, Server: srv, Specs: specs, Names: names}
	if cfg.Treatment != nil {
		if err := buildTreatment(f, cfg.Treatment, cfg.Clock, tsink, &hookCtrl); err != nil {
			return nil, err
		}
	}
	if cfg.Calibration != nil {
		ctrl, err := buildCalibration(f, cfg.Calibration, cfg.CyclePeriod)
		if err != nil {
			return nil, err
		}
		f.Calib = ctrl
	}
	return f, nil
}
