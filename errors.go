package swwd

import (
	"errors"

	"swwd/internal/core"
)

// Sentinel errors of the facade. Match with errors.Is; returned errors
// may wrap these with call-site context.
var (
	// ErrUnknownRunnable is reported by every watchdog method that takes
	// a runnable identifier — SetHypothesis, Register, Activate,
	// Deactivate, MonitorFlow, AddFlowPair, CounterSnapshot,
	// RunnableErrors — when the identifier is not part of the model.
	ErrUnknownRunnable = core.ErrUnknownRunnable

	// ErrAlreadyRunning is reported by Service.Start and Service.Run when
	// the monitoring loop is already active.
	ErrAlreadyRunning = errors.New("swwd: service already running")

	// ErrNotRunning is reported by Service.Stop when no monitoring loop
	// is active. Callers treating Stop as idempotent may ignore it.
	ErrNotRunning = errors.New("swwd: service not running")
)
