//go:build linux && (amd64 || arm64)

package ingest

import (
	"testing"
	"unsafe"
)

// TestMmsghdrLayout pins the hand-mirrored struct mmsghdr to the kernel
// ABI for the 64-bit targets this file builds on: a 56-byte msghdr, the
// 4-byte received length, and 4 bytes of tail padding for an 8-byte
// array stride. recvmmsg(2) walks the vector with exactly this stride;
// a drifting layout would corrupt every entry past the first.
func TestMmsghdrLayout(t *testing.T) {
	if got := unsafe.Sizeof(mmsghdr{}); got != 64 {
		t.Fatalf("sizeof(mmsghdr) = %d, want 64", got)
	}
	if got := unsafe.Offsetof(mmsghdr{}.len); got != 56 {
		t.Fatalf("offsetof(mmsghdr.len) = %d, want 56", got)
	}
}
