// Package ingest is the multi-node ingestion side of the networked
// Software Watchdog: a UDP-first server that receives batched heartbeat
// frames (internal/wire) from remote reporter nodes and replays them
// into a local core.Watchdog on the existing lock-free hot path.
//
// This moves the paper's single-ECU service into the role of a dedicated
// health-monitoring ECU: remote applications keep their in-process
// heartbeat call sites (the swwdclient library coalesces them), and the
// watchdog — hypotheses, detection, TSI derivation, journal, telemetry —
// runs unchanged on the aggregating node.
//
// # Architecture
//
//	UDP sockets ──► read loops ──► per-source shard workers ──► Monitor.BeatN
//	(SO_REUSEPORT)  (batched recv,  (decode + seq + replay)     Watchdog.FlowEvent
//	                 PeekNode)                                  link Monitor.Beat
//
// The front end is N listener sockets bound to the same address via
// SO_REUSEPORT (Config.Listeners; one socket where the platform lacks
// it), each drained by its own read loop. A loop receives datagrams in
// batches (recvmmsg on linux/amd64 and linux/arm64, see batch.go)
// directly into buffers drawn from a fixed free list, peeks the node ID
// from the frame header and hands the same buffer — never a copy — to
// the worker that owns the node (node ID modulo shard count). Pinning a
// node to one worker serializes its frames no matter which socket they
// arrived on, so the per-node sequence bookkeeping needs no locks, and
// decode buffers are per-worker, so the steady-state ingest path —
// decode, validate, sequence-check, replay — performs zero allocations
// per frame (see BenchmarkIngestFrame; BenchmarkIngestMT measures the
// socket-to-replay aggregate).
//
// # Link supervision
//
// Link loss is itself supervised, through the same machinery as any
// other aliveness fault: every registered node owns a synthetic "link
// runnable" in the model. Each accepted in-order frame beats it once,
// and its aliveness hypothesis is derived from the node's declared frame
// interval (one required beat per GraceFrames intervals). A node that
// goes silent — crashed client, unplugged network — stops producing link
// beats, and the ordinary Cycle sweep raises an aliveness error on the
// link runnable within one monitoring period, visible in the sink, the
// fault journal and the metrics endpoint exactly like a local fault.
// Duplicated or re-ordered datagrams are dropped without replay (a beat
// must never count twice); lost datagrams surface as sequence gaps in
// the server stats and, if the loss persists, as link aliveness faults.
//
// # Reporter restarts
//
// Sequence numbers are scoped to a reporter *session*: every frame
// carries a session epoch chosen at client start (larger epoch = newer
// session). When a node's epoch advances, the server resets its
// sequence tracking and counts a restart, so the restarted reporter's
// frames — whose sequence numbers begin again at 1 — replay immediately
// instead of being misread as duplicates of the old session. Stale
// frames still in flight from the previous session (smaller epoch) are
// dropped and counted separately. The registration-time Interval is
// authoritative for the link hypothesis; a frame declaring a different
// interval is still replayed but counted in Stats.IntervalMismatch as a
// configuration diagnostic.
package ingest

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"swwd/internal/core"
	"swwd/internal/runnable"
	"swwd/internal/wire"
)

// Defaults for Config zero values.
const (
	DefaultShards      = 4
	DefaultQueueLen    = 512
	DefaultMaxPacket   = 9000
	DefaultGraceFrames = 3
	DefaultReadBuffer  = 4 << 20
	// DefaultListeners keeps the single-socket front end: multi-socket
	// ingestion is opt-in via Config.Listeners / WithListeners.
	DefaultListeners = 1
	// DefaultBatchSize is the per-receive datagram budget of one read
	// loop (the recvmmsg vector length on platforms that batch).
	DefaultBatchSize = 32
	// MaxListeners and MaxBatchSize cap the corresponding Config fields.
	MaxListeners = 32
	MaxBatchSize = 256
)

// ErrNodeExists is reported by RegisterNode for a duplicate node ID.
var ErrNodeExists = errors.New("ingest: node already registered")

// ErrClosed is reported by Listen after Close.
var ErrClosed = errors.New("ingest: server closed")

// ErrUnknownNode is reported by SendCommand for an unregistered node ID.
var ErrUnknownNode = errors.New("ingest: unknown node")

// ErrNoAddress is reported by SendCommand when the node has not yet
// delivered a frame, so the server has no return address to command.
var ErrNoAddress = errors.New("ingest: node has no known address")

// ErrNotListening is reported by SendCommand before Listen.
var ErrNotListening = errors.New("ingest: server not listening")

// NodeSpec describes one remote reporter node at registration time.
type NodeSpec struct {
	// Node is the wire node ID the reporter stamps on its frames.
	Node uint32
	// Interval is the node's declared frame flush cadence; the link
	// runnable's aliveness hypothesis is derived from it.
	Interval time.Duration
	// Runnables maps the node-local runnable index used on the wire
	// (position in this slice) to the model runnable ID.
	Runnables []runnable.ID
	// Link is the node's synthetic link runnable in the model. The
	// server installs its aliveness hypothesis and activates it.
	Link runnable.ID
}

// Config assembles a Server.
type Config struct {
	// Watchdog receives the replayed heartbeats. Required.
	Watchdog *core.Watchdog
	// Shards is the worker count frames are decoded on; a node is pinned
	// to the worker node%Shards, so frames of one node always replay in
	// order. Zero means DefaultShards.
	Shards int
	// QueueLen is the per-worker packet queue depth. Zero means
	// DefaultQueueLen. The free list holds Shards*QueueLen buffers; when
	// it runs dry the reader drops datagrams and counts them.
	QueueLen int
	// MaxPacket is the largest datagram accepted, and the size of each
	// pooled buffer. Zero means DefaultMaxPacket; senders must keep
	// frames within it or they are counted as decode errors.
	MaxPacket int
	// GraceFrames is how many declared flush intervals a node may stay
	// silent before its link runnable accumulates an aliveness error:
	// the link hypothesis requires one beat per GraceFrames*Interval
	// window. Zero means DefaultGraceFrames (tolerates GraceFrames-1
	// consecutive lost datagrams without a false positive).
	GraceFrames int
	// ReadBuffer is the requested SO_RCVBUF of each UDP socket. Zero
	// means DefaultReadBuffer.
	ReadBuffer int
	// Listeners is the number of UDP sockets bound to the listen
	// address via SO_REUSEPORT, each drained by its own read loop (the
	// kernel spreads sources across them by flow hash). On platforms or
	// kernels without SO_REUSEPORT the server degrades to one socket
	// and Stats.Listeners reports the active count. Zero means
	// DefaultListeners; capped at MaxListeners.
	Listeners int
	// BatchSize is how many datagrams one receive call may return
	// (recvmmsg on linux/amd64 and linux/arm64; other platforms read
	// one datagram per call regardless). 1 disables batching. Zero
	// means DefaultBatchSize; capped at MaxBatchSize.
	BatchSize int
	// CommandEpoch is the server's command epoch, stamped on every
	// command frame (wire v3): larger epoch = newer server incarnation,
	// and reporters drop commands from superseded epochs. Zero means the
	// construction wall time in nanoseconds, which is strictly larger
	// across restarts. Tests pin it for determinism.
	CommandEpoch uint64
	// FrameHook, when set, observes every accepted frame after replay:
	// the node ID and whether the frame advanced the node's session
	// epoch (reporter restart). The treatment controller subscribes
	// here. Called on the shard worker goroutine — implementations must
	// be non-blocking.
	FrameHook func(node uint32, restarted bool)
}

// Stats is a point-in-time copy of the server's ingestion counters.
type Stats struct {
	// Frames is the number of datagrams handed to workers; Bytes their
	// cumulative payload size.
	Frames uint64
	Bytes  uint64
	// Accepted counts frames that passed decode, registration and
	// sequence checks and were replayed into the watchdog.
	Accepted uint64
	// DecodeErrors counts malformed frames, including frames naming a
	// runnable index outside the node's registered table.
	DecodeErrors uint64
	// UnknownNode counts well-formed frames from unregistered node IDs.
	UnknownNode uint64
	// SeqGaps is the cumulative count of missing sequence numbers
	// (frames lost in flight, as observed from jumps in Seq).
	SeqGaps uint64
	// SeqGapEvents counts accepted frames whose Seq jumped.
	SeqGapEvents uint64
	// DuplicateDrops counts frames dropped because their Seq was not
	// beyond the node's last accepted frame within the same session
	// epoch (duplicate or re-ordered delivery) — dropped without replay
	// so no beat counts twice.
	DuplicateDrops uint64
	// NodeRestarts counts accepted frames whose session epoch advanced:
	// the reporter restarted, and the server reset its sequence tracking
	// for the node.
	NodeRestarts uint64
	// StaleEpochDrops counts frames dropped because their session epoch
	// was older than the node's current one (late datagrams from a
	// superseded reporter session).
	StaleEpochDrops uint64
	// IntervalMismatch counts accepted frames whose declared flush
	// interval differed from the node's registration-time interval. The
	// registered interval is authoritative for the link hypothesis; this
	// counter is the diagnostic for a client flushing on a different
	// cadence than the server expects.
	IntervalMismatch uint64
	// DroppedPackets counts datagrams discarded because the buffer free
	// list or a worker queue was full.
	DroppedPackets uint64
	// BuffersExhausted counts the free-list-dry subset of
	// DroppedPackets: datagrams read into scratch and discarded because
	// no pooled buffer was available. A non-zero value means the pool
	// (Shards*QueueLen plus listener batch headroom) is undersized for
	// the offered load.
	BuffersExhausted uint64
	// ReadErrors counts transient socket read errors.
	ReadErrors uint64
	// CommandsSent counts command frames written to reporters;
	// CommandsAcked the commands confirmed by a heartbeat ack pair in
	// the current command epoch; CommandsDropped the commands that could
	// not be sent (unknown return address, socket error).
	CommandsSent    uint64
	CommandsAcked   uint64
	CommandsDropped uint64
	// CommandStaleAcks counts heartbeat ack pairs ignored because their
	// command epoch was not the server's current one (a reporter still
	// acking a superseded server incarnation).
	CommandStaleAcks uint64
	// Nodes is the number of registered nodes.
	Nodes int
	// Listeners is the number of active listener sockets: the
	// configured count when SO_REUSEPORT took, 1 on the single-socket
	// fallback, 0 before Listen.
	Listeners int
}

// Delta returns the field-wise counter difference s - prev: what
// happened between two Stats() reads. The WAL shipper persists these
// increments so replay can integrate the counter series back over any
// time window. The Nodes and Listeners gauges are copied from s, not
// differenced. Counters are monotonic, so with prev taken earlier every
// delta field is non-negative.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Frames:           s.Frames - prev.Frames,
		Bytes:            s.Bytes - prev.Bytes,
		Accepted:         s.Accepted - prev.Accepted,
		DecodeErrors:     s.DecodeErrors - prev.DecodeErrors,
		UnknownNode:      s.UnknownNode - prev.UnknownNode,
		SeqGaps:          s.SeqGaps - prev.SeqGaps,
		SeqGapEvents:     s.SeqGapEvents - prev.SeqGapEvents,
		DuplicateDrops:   s.DuplicateDrops - prev.DuplicateDrops,
		NodeRestarts:     s.NodeRestarts - prev.NodeRestarts,
		StaleEpochDrops:  s.StaleEpochDrops - prev.StaleEpochDrops,
		IntervalMismatch: s.IntervalMismatch - prev.IntervalMismatch,
		DroppedPackets:   s.DroppedPackets - prev.DroppedPackets,
		BuffersExhausted: s.BuffersExhausted - prev.BuffersExhausted,
		ReadErrors:       s.ReadErrors - prev.ReadErrors,
		CommandsSent:     s.CommandsSent - prev.CommandsSent,
		CommandsAcked:    s.CommandsAcked - prev.CommandsAcked,
		CommandsDropped:  s.CommandsDropped - prev.CommandsDropped,
		CommandStaleAcks: s.CommandStaleAcks - prev.CommandStaleAcks,
		Nodes:            s.Nodes,
		Listeners:        s.Listeners,
	}
}

// ListenerStat is the per-listener slice of the ingestion counters,
// reported by Server.ListenerStats in listener order.
type ListenerStat struct {
	// Packets is the number of datagrams the listener's read loop
	// received (including scratch reads that were dropped); Batches the
	// number of receive calls that returned at least one datagram.
	// Packets/Batches is the achieved amortization of the batched read
	// path — 1 means the socket never had more than one datagram queued.
	Packets uint64
	Batches uint64
	// MaxBatch is the largest single receive observed.
	MaxBatch uint64
}

// ShardStat is the per-shard queue occupancy, reported by
// Server.ShardStats in shard order. DepthHWM is the high-water mark of
// the queue depth observed at enqueue time (approximate under
// concurrent listeners): a high mark with an idle queue now means a
// past burst; a mark pinned at Capacity means the shard worker is the
// bottleneck, not the listeners.
type ShardStat struct {
	Depth    int
	DepthHWM int
	Capacity int
}

// packet is one pooled datagram buffer.
type packet struct {
	buf []byte
	n   int
	src netip.AddrPort
}

// nodeState is the server-side state of one registered node. Everything
// except the sequence fields is immutable after registration; epoch,
// lastSeq and haveSeq are touched only by the node's owning shard
// worker.
type nodeState struct {
	spec NodeSpec
	// mons[i] is the Monitor handle of wire runnable index i.
	mons []*core.Monitor
	// link is the handle of the synthetic link runnable.
	link *core.Monitor
	// intervalMs is the registration-time interval in wire units, the
	// authoritative value frames' declared IntervalMs is checked against.
	intervalMs uint32

	// epoch is the session epoch of the node's current reporter session;
	// lastSeq the last accepted sequence number within it.
	epoch   uint64
	lastSeq uint64
	haveSeq bool

	// cmdAcked is the highest command sequence number the reporter has
	// confirmed in the current command epoch. Written only by the owning
	// shard worker; read atomically by NodeCommandAcked (the calibration
	// controller polls per-node ack progress).
	cmdAcked atomic.Uint64

	// addr is the source address of the node's most recent accepted
	// frame — the return path for command frames. Updated by the shard
	// worker (allocating only when the address actually changes), read
	// by SendCommand.
	addr atomic.Pointer[netip.AddrPort]
	// cmdSeq is the per-node command sequence counter, advanced under
	// the server's cmdMu and read atomically by the shard worker to
	// clamp runaway acks.
	cmdSeq atomic.Uint64
}

// Server ingests heartbeat frames into a watchdog.
type Server struct {
	w   *core.Watchdog
	cfg Config

	// nodes is a copy-on-write map: readers load it with one atomic
	// pointer load; RegisterNode clones under regMu.
	nodes atomic.Pointer[map[uint32]*nodeState]
	regMu sync.Mutex

	// conn is the first listener's socket: the bound-address handle and
	// the write side of the command channel. listeners holds every
	// socket (len 1 on the single-socket fallback).
	conn      *net.UDPConn
	listeners []*listenerState
	shards    []*shardState
	free      chan *packet
	// readerWG tracks the per-listener read loops; wg tracks the shard
	// workers and the closer goroutine that shuts the shard queues once
	// every read loop has drained out.
	readerWG sync.WaitGroup
	wg       sync.WaitGroup
	started  bool
	closed   bool

	// cmdEpoch is fixed at construction; cmdMu serializes command
	// sequence allocation and the reused encode buffer.
	cmdEpoch uint64
	cmdMu    sync.Mutex
	cmdBuf   []byte

	frames       atomic.Uint64
	bytes        atomic.Uint64
	accepted     atomic.Uint64
	decodeErrs   atomic.Uint64
	unknown      atomic.Uint64
	seqGaps      atomic.Uint64
	gapEvents    atomic.Uint64
	dupDrops     atomic.Uint64
	restarts     atomic.Uint64
	staleEpochs  atomic.Uint64
	intervalMism atomic.Uint64
	dropped      atomic.Uint64
	exhausted    atomic.Uint64
	readErrs     atomic.Uint64
	cmdSent      atomic.Uint64
	cmdAcked     atomic.Uint64
	cmdDropped   atomic.Uint64
	cmdStale     atomic.Uint64
}

// NewServer validates the configuration and builds an idle server;
// register nodes with RegisterNode, then bind it with Listen.
//
// Deprecated: use New with functional options; NewServer remains as a
// thin wrapper over the same construction path.
func NewServer(cfg Config) (*Server, error) {
	return newServer(cfg)
}

// newServer is the shared construction path of New and NewServer.
func newServer(cfg Config) (*Server, error) {
	if cfg.Watchdog == nil {
		return nil, errors.New("ingest: Config.Watchdog is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards > 64 {
		cfg.Shards = 64
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultQueueLen
	}
	if cfg.MaxPacket <= 0 {
		cfg.MaxPacket = DefaultMaxPacket
	}
	if cfg.MaxPacket > wire.MaxFrameSize {
		cfg.MaxPacket = wire.MaxFrameSize
	}
	if cfg.GraceFrames <= 0 {
		cfg.GraceFrames = DefaultGraceFrames
	}
	if cfg.ReadBuffer <= 0 {
		cfg.ReadBuffer = DefaultReadBuffer
	}
	if cfg.Listeners <= 0 {
		cfg.Listeners = DefaultListeners
	}
	if cfg.Listeners > MaxListeners {
		cfg.Listeners = MaxListeners
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.BatchSize > MaxBatchSize {
		cfg.BatchSize = MaxBatchSize
	}
	if cfg.CommandEpoch == 0 {
		// The wall clock in nanoseconds is strictly larger across server
		// restarts — the property the reporter's epoch comparison relies
		// on — and never zero.
		cfg.CommandEpoch = uint64(time.Now().UnixNano())
		if cfg.CommandEpoch == 0 {
			cfg.CommandEpoch = 1
		}
	}
	s := &Server{w: cfg.Watchdog, cfg: cfg, cmdEpoch: cfg.CommandEpoch}
	empty := make(map[uint32]*nodeState)
	s.nodes.Store(&empty)
	return s, nil
}

// LinkHypothesis derives the aliveness hypothesis of a node's link
// runnable from its declared frame interval: one required beat (one
// accepted frame) per grace*interval window, expressed in watchdog
// cycles of the given period. Exported so operators can inspect what a
// registration will install.
func LinkHypothesis(interval, cyclePeriod time.Duration, graceFrames int) core.Hypothesis {
	if graceFrames <= 0 {
		graceFrames = DefaultGraceFrames
	}
	window := time.Duration(graceFrames) * interval
	cycles := int((window + cyclePeriod - 1) / cyclePeriod)
	if cycles < 2 {
		cycles = 2 // never race a frame against the very next sweep
	}
	return core.Hypothesis{AlivenessCycles: cycles, MinHeartbeats: 1}
}

// RegisterNode registers one remote node: resolves Monitor handles for
// its runnable table, installs the derived link hypothesis and activates
// the link runnable. Frames from unregistered nodes are counted and
// dropped, so registration must precede the node's first frame.
func (s *Server) RegisterNode(spec NodeSpec) error {
	return s.RegisterNodes([]NodeSpec{spec})
}

// RegisterNodes registers a batch of nodes with one copy-on-write step.
// Per-node RegisterNode clones the whole lock-free node table for every
// insert — O(fleet) per call, quadratic across a fleet build and the
// dominant cost of assembling 100k+ nodes. The batch form resolves
// every spec first and publishes them with a single clone, so building
// an N-node fleet is O(N) total. On any error nothing is published.
func (s *Server) RegisterNodes(specs []NodeSpec) error {
	states := make([]*nodeState, len(specs))
	for i := range specs {
		ns, err := s.resolveNode(&specs[i])
		if err != nil {
			return err
		}
		states[i] = ns
	}

	s.regMu.Lock()
	defer s.regMu.Unlock()
	old := *s.nodes.Load()
	next := make(map[uint32]*nodeState, len(old)+len(specs))
	for k, v := range old {
		next[k] = v
	}
	for i := range specs {
		if _, dup := next[specs[i].Node]; dup {
			return fmt.Errorf("%w: %d", ErrNodeExists, specs[i].Node)
		}
		next[specs[i].Node] = states[i]
	}
	s.nodes.Store(&next)
	return nil
}

// resolveNode turns a NodeSpec into runtime state: Monitor handles for
// the runnable table, the derived link hypothesis installed and the
// link runnable activated. It touches only the watchdog, never the
// node table.
func (s *Server) resolveNode(spec *NodeSpec) (*nodeState, error) {
	if spec.Interval <= 0 {
		return nil, fmt.Errorf("ingest: node %d: interval must be positive", spec.Node)
	}
	intervalMs := uint32(spec.Interval / time.Millisecond)
	if intervalMs == 0 {
		intervalMs = 1 // mirrors the client's floor: IntervalMs encodes as >= 1
	}
	ns := &nodeState{
		spec:       *spec,
		mons:       make([]*core.Monitor, len(spec.Runnables)),
		intervalMs: intervalMs,
	}
	for i, rid := range spec.Runnables {
		m, err := s.w.Register(rid)
		if err != nil {
			return nil, fmt.Errorf("ingest: node %d runnable %d: %w", spec.Node, i, err)
		}
		ns.mons[i] = m
	}
	link, err := s.w.Register(spec.Link)
	if err != nil {
		return nil, fmt.Errorf("ingest: node %d link: %w", spec.Node, err)
	}
	ns.link = link
	hyp := LinkHypothesis(spec.Interval, s.w.CyclePeriod(), s.cfg.GraceFrames)
	if err := s.w.SetHypothesis(spec.Link, hyp); err != nil {
		return nil, fmt.Errorf("ingest: node %d link hypothesis: %w", spec.Node, err)
	}
	if err := s.w.Activate(spec.Link); err != nil {
		return nil, fmt.Errorf("ingest: node %d link activate: %w", spec.Node, err)
	}
	return ns, nil
}

// Listen binds the UDP socket(s) and starts the read loops and the
// shard workers. addr is a host:port as for net.ListenUDP (":0" picks
// an ephemeral port); the bound address is returned for clients to
// dial. With Config.Listeners > 1 the address is bound that many times
// via SO_REUSEPORT, falling back to a single socket where the platform
// or kernel lacks it.
func (s *Server) Listen(addr string) (net.Addr, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.started {
		return nil, errors.New("ingest: server already listening")
	}
	conns, err := listenConns(addr, s.cfg.Listeners)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	for _, c := range conns {
		_ = c.SetReadBuffer(s.cfg.ReadBuffer) // best effort; kernel may clamp
	}
	s.conn = conns[0]
	s.started = true

	// The free list covers the worker queues at full depth plus the
	// buffers the batch readers keep armed in their receive slots, so a
	// full set of in-flight batches cannot by itself starve the pool.
	total := s.cfg.Shards*s.cfg.QueueLen + len(conns)*s.cfg.BatchSize
	s.free = make(chan *packet, total)
	for i := 0; i < total; i++ {
		s.free <- &packet{buf: make([]byte, s.cfg.MaxPacket)}
	}
	s.shards = make([]*shardState, s.cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shardState{ch: make(chan *packet, s.cfg.QueueLen)}
		s.wg.Add(1)
		go s.worker(s.shards[i].ch)
	}
	s.listeners = make([]*listenerState, len(conns))
	for i, c := range conns {
		ls := &listenerState{conn: c}
		s.listeners[i] = ls
		s.readerWG.Add(1)
		go s.readLoop(ls)
	}
	// The shard queues close only after every read loop has exited, so
	// one listener erroring out (or being closed externally) can never
	// strand packets of the surviving loops on a closed channel.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.readerWG.Wait()
		for _, sh := range s.shards {
			close(sh.ch)
		}
	}()
	return s.conn.LocalAddr(), nil
}

// Addr reports the bound address, nil before Listen.
func (s *Server) Addr() net.Addr {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.conn == nil {
		return nil
	}
	return s.conn.LocalAddr()
}

// Close stops the read loops and the workers and releases every
// socket. The watchdog is left running — link runnables of silent nodes
// will keep accumulating aliveness faults until the caller deactivates
// them.
func (s *Server) Close() error {
	s.regMu.Lock()
	if s.closed {
		s.regMu.Unlock()
		return nil
	}
	s.closed = true
	listeners := s.listeners
	s.regMu.Unlock()
	for _, ls := range listeners {
		_ = ls.conn.Close() // unblocks the read loop
	}
	s.wg.Wait()
	return nil
}

// worker decodes and replays the frames of the nodes pinned to one
// shard. The wire.Frame is per-worker and reused, so the steady state
// allocates nothing per frame.
func (s *Server) worker(in <-chan *packet) {
	defer s.wg.Done()
	var frame wire.Frame
	for p := range in {
		s.ingestFrame(p.buf[:p.n], &frame, p.src)
		s.free <- p
	}
}

// ingestFrame is the per-frame ingest path: decode, validate against the
// node's registered runnable table, enforce the sequence discipline and
// replay. Frames of one node are processed by exactly one goroutine at a
// time (shard pinning), which makes the nodeState sequence fields safe
// without locks.
func (s *Server) ingestFrame(buf []byte, f *wire.Frame, src netip.AddrPort) {
	s.frames.Add(1)
	s.bytes.Add(uint64(len(buf)))
	if err := wire.DecodeFrame(buf, f); err != nil {
		s.decodeErrs.Add(1)
		return
	}
	ns := (*s.nodes.Load())[f.Node]
	if ns == nil {
		s.unknown.Add(1)
		return
	}
	// Validate every index before replaying anything: a frame naming an
	// unknown runnable is counted as a decode error and dropped whole,
	// never partially applied and never a panic.
	for i := range f.Beats {
		if int(f.Beats[i].Runnable) >= len(ns.mons) {
			s.decodeErrs.Add(1)
			return
		}
	}
	for _, idx := range f.Flow {
		if int(idx) >= len(ns.mons) {
			s.decodeErrs.Add(1)
			return
		}
	}
	// The registered interval is authoritative; a differing declared
	// interval is a configuration diagnostic, not a reason to drop.
	if f.IntervalMs != ns.intervalMs {
		s.intervalMism.Add(1)
	}
	// Sequence discipline, scoped to the session epoch. Within one
	// session, duplicates and re-ordered frames are dropped without
	// replay (a beat must never count twice) and gaps are counted while
	// the frame itself replays. An advanced epoch is a reporter restart:
	// sequence tracking resets so the new session's frames — starting
	// again at Seq 1 — replay immediately instead of being misread as
	// duplicates. A regressed epoch is a stale datagram from the
	// superseded session and is dropped.
	restarted := false
	if ns.haveSeq {
		switch {
		case f.Epoch < ns.epoch:
			// Dropping the whole stale frame also discards its command
			// ack pair: a superseded reporter session can never confirm
			// commands sent to its successor.
			s.staleEpochs.Add(1)
			return
		case f.Epoch == ns.epoch:
			if f.Seq <= ns.lastSeq {
				s.dupDrops.Add(1)
				return
			}
			if gap := f.Seq - ns.lastSeq - 1; gap > 0 {
				s.seqGaps.Add(gap)
				s.gapEvents.Add(1)
			}
		default: // f.Epoch > ns.epoch: the reporter restarted
			restarted = true
			s.restarts.Add(1)
			if f.Seq > 1 {
				// The new session's first frames were lost in flight.
				s.seqGaps.Add(f.Seq - 1)
				s.gapEvents.Add(1)
			}
		}
	}
	ns.epoch = f.Epoch
	ns.lastSeq = f.Seq
	ns.haveSeq = true

	// Remember the frame's source as the node's command return address.
	// The pointer swap allocates only when the address actually changes
	// (reporter re-dial from a new port), keeping the steady state
	// allocation free.
	if src.IsValid() {
		if cur := ns.addr.Load(); cur == nil || *cur != src {
			a := src
			ns.addr.Store(&a)
		}
	}
	// Command ack accounting: the ack pair confirms delivery only in the
	// server's current command epoch; acks for a superseded epoch are
	// counted as stale and otherwise ignored. The ack is clamped to the
	// highest sequence number actually issued, so a corrupt or lying
	// reporter can never inflate the acked counter.
	if f.CmdAckSeq != 0 {
		if f.CmdAckEpoch != s.cmdEpoch {
			s.cmdStale.Add(1)
		} else if prev := ns.cmdAcked.Load(); f.CmdAckSeq > prev {
			acked := f.CmdAckSeq
			if issued := ns.cmdSeq.Load(); acked > issued {
				acked = issued
			}
			if acked > prev {
				s.cmdAcked.Add(acked - prev)
				ns.cmdAcked.Store(acked)
			}
		}
	}

	for i := range f.Beats {
		ns.mons[f.Beats[i].Runnable].BeatN(int(f.Beats[i].Beats))
	}
	for _, idx := range f.Flow {
		s.w.FlowEvent(ns.spec.Runnables[idx])
	}
	// The accepted frame is the link runnable's heartbeat: aliveness of
	// the *reporting channel*, supervised like any other runnable.
	ns.link.Beat()
	s.accepted.Add(1)
	if s.cfg.FrameHook != nil {
		s.cfg.FrameHook(f.Node, restarted)
	}
}

// SendCommand encodes one command frame for node and sends it to the
// address the node's heartbeats last arrived from, returning the
// assigned per-node command sequence number. The frame carries the
// server's command epoch; delivery is confirmed when a later heartbeat
// acks (epoch, seq). Safe for concurrent use; commands to one node are
// sequence-ordered by the internal lock. A node that has never
// delivered a frame has no return address — ErrNoAddress — and an
// unsendable command counts as dropped.
func (s *Server) SendCommand(node uint32, recs ...wire.CmdRec) (uint64, error) {
	ns := (*s.nodes.Load())[node]
	if ns == nil {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, node)
	}
	s.regMu.Lock()
	conn := s.conn
	s.regMu.Unlock()
	if conn == nil {
		s.cmdDropped.Add(1)
		return 0, ErrNotListening
	}
	addr := ns.addr.Load()
	if addr == nil {
		s.cmdDropped.Add(1)
		return 0, fmt.Errorf("%w: %d", ErrNoAddress, node)
	}
	s.cmdMu.Lock()
	defer s.cmdMu.Unlock()
	seq := ns.cmdSeq.Add(1)
	cmd := wire.Command{Node: node, Epoch: s.cmdEpoch, Seq: seq, Recs: recs}
	buf, err := wire.AppendCommand(s.cmdBuf[:0], &cmd)
	if err != nil {
		s.cmdDropped.Add(1)
		return 0, err
	}
	s.cmdBuf = buf
	if _, err := conn.WriteToUDPAddrPort(buf, *addr); err != nil {
		s.cmdDropped.Add(1)
		return 0, fmt.Errorf("ingest: command send: %w", err)
	}
	s.cmdSent.Add(1)
	return seq, nil
}

// CommandEpoch reports the server's command epoch.
func (s *Server) CommandEpoch() uint64 { return s.cmdEpoch }

// NodeCommandAcked reports the highest command sequence number node has
// acknowledged in the server's command epoch (zero for an unknown node
// or one that has acked nothing).
func (s *Server) NodeCommandAcked(node uint32) uint64 {
	ns := (*s.nodes.Load())[node]
	if ns == nil {
		return 0
	}
	return ns.cmdAcked.Load()
}

// Stats returns a copy of the ingestion counters.
func (s *Server) Stats() Stats {
	return Stats{
		Frames:           s.frames.Load(),
		Bytes:            s.bytes.Load(),
		Accepted:         s.accepted.Load(),
		DecodeErrors:     s.decodeErrs.Load(),
		UnknownNode:      s.unknown.Load(),
		SeqGaps:          s.seqGaps.Load(),
		SeqGapEvents:     s.gapEvents.Load(),
		DuplicateDrops:   s.dupDrops.Load(),
		NodeRestarts:     s.restarts.Load(),
		StaleEpochDrops:  s.staleEpochs.Load(),
		IntervalMismatch: s.intervalMism.Load(),
		DroppedPackets:   s.dropped.Load(),
		BuffersExhausted: s.exhausted.Load(),
		ReadErrors:       s.readErrs.Load(),
		CommandsSent:     s.cmdSent.Load(),
		CommandsAcked:    s.cmdAcked.Load(),
		CommandsDropped:  s.cmdDropped.Load(),
		CommandStaleAcks: s.cmdStale.Load(),
		Nodes:            len(*s.nodes.Load()),
		Listeners:        len(s.snapshotListeners()),
	}
}

// ListenerStats returns the per-listener receive counters in listener
// order; empty before Listen.
func (s *Server) ListenerStats() []ListenerStat {
	listeners := s.snapshotListeners()
	out := make([]ListenerStat, len(listeners))
	for i, ls := range listeners {
		out[i] = ListenerStat{
			Packets:  ls.packets.Load(),
			Batches:  ls.batches.Load(),
			MaxBatch: ls.maxBatch.Load(),
		}
	}
	return out
}

// ShardStats returns the per-shard queue occupancy in shard order;
// empty before Listen.
func (s *Server) ShardStats() []ShardStat {
	s.regMu.Lock()
	shards := s.shards
	s.regMu.Unlock()
	out := make([]ShardStat, len(shards))
	for i, sh := range shards {
		out[i] = ShardStat{
			Depth:    len(sh.ch),
			DepthHWM: int(sh.hwm.Load()),
			Capacity: cap(sh.ch),
		}
	}
	return out
}

// snapshotListeners reads the listener slice under the registration
// lock (it is assigned once, by Listen).
func (s *Server) snapshotListeners() []*listenerState {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	return s.listeners
}

// isClosed reports whether err marks the socket shut by Close.
func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
