// Package core implements the paper's primary contribution: the Software
// Watchdog, a dependability software service that monitors the timing
// behaviour and program flow of individual application runnables at run
// time (§3).
//
// The service has the paper's three basic units:
//
//   - the heartbeat monitoring unit, tracking per-runnable aliveness and
//     arrival rate with the Aliveness Counter (AC), Arrival Rate Counter
//     (ARC), Cycle Counter for Aliveness (CCA), Cycle Counter for Arrival
//     Rate (CCAR) and an Activation Status (AS) per runnable (§3.3);
//   - the program flow checking (PFC) unit, validating executed successors
//     against a predefined look-up table of allowed predecessor/successor
//     pairs (§3.4);
//   - the task state indication (TSI) unit, accumulating per-runnable error
//     indications in error indication vectors and deriving task,
//     application and global ECU state (§3.5).
//
// The heartbeat hot path is lock-free in the common (healthy) case: see
// hot.go for the layout and monitor.go for the per-runnable handle API.
// Detections and configuration changes take the single cold-path mutex.
//
// The watchdog is clock-agnostic: driven by an OSEK alarm on virtual time
// in the HIL reproduction, or by a time.Ticker when deployed as a live Go
// service (see the root swwd package).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"swwd/internal/calib"
	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// ErrUnknownRunnable is returned (wrapped) by every method taking a
// runnable identifier when the identifier is not part of the model. Test
// with errors.Is.
var ErrUnknownRunnable = errors.New("unknown runnable")

// Hypothesis is the per-runnable fault hypothesis: how many heartbeats the
// runnable must (aliveness) and may (arrival rate) produce within its
// monitoring periods, both expressed in watchdog cycles.
type Hypothesis struct {
	// AlivenessCycles is the aliveness monitoring period in watchdog
	// cycles (the CCA limit); zero disables aliveness monitoring.
	AlivenessCycles int
	// MinHeartbeats is the minimum number of heartbeats required per
	// aliveness period.
	MinHeartbeats int
	// ArrivalCycles is the arrival-rate monitoring period in watchdog
	// cycles (the CCAR limit); zero disables arrival-rate monitoring.
	ArrivalCycles int
	// MaxArrivals is the maximum number of heartbeats tolerated per
	// arrival-rate period.
	MaxArrivals int
}

// Validate checks internal consistency.
func (h Hypothesis) Validate() error {
	if h.AlivenessCycles < 0 || h.ArrivalCycles < 0 {
		return errors.New("core: negative monitoring period")
	}
	if h.AlivenessCycles > 0 && h.MinHeartbeats <= 0 {
		return errors.New("core: aliveness monitoring requires MinHeartbeats >= 1")
	}
	if h.ArrivalCycles > 0 && h.MaxArrivals <= 0 {
		return errors.New("core: arrival-rate monitoring requires MaxArrivals >= 1")
	}
	return nil
}

// Thresholds are the error-indication-vector limits of the TSI unit: how
// many errors of each kind one runnable may accumulate before its task is
// declared faulty (Fig. 6 uses a program-flow threshold of 3).
type Thresholds struct {
	Aliveness   int
	ArrivalRate int
	ProgramFlow int
}

// DefaultThresholds mirror the evaluation setup of the paper.
func DefaultThresholds() Thresholds {
	return Thresholds{Aliveness: 3, ArrivalRate: 3, ProgramFlow: 3}
}

func (t Thresholds) of(kind ErrorKind) int {
	switch kind {
	case AlivenessError:
		return t.Aliveness
	case ArrivalRateError:
		return t.ArrivalRate
	case ProgramFlowError:
		return t.ProgramFlow
	default:
		return 0
	}
}

// Config assembles a Watchdog.
type Config struct {
	Model *runnable.Model
	Clock sim.Clock
	// Sink receives fault reports and state events; nil attaches a
	// discarding sink (reports remain queryable via counters).
	Sink Sink
	// CyclePeriod documents the intended spacing of Cycle calls; the
	// driver (OSEK alarm or ticker) owns the actual cadence. Used only
	// for reporting. Defaults to 10ms, the tick of the paper's plots.
	CyclePeriod time.Duration
	// Thresholds for the TSI unit; zero value means DefaultThresholds.
	Thresholds Thresholds
	// EagerArrivalCheck trips an arrival-rate error the moment ARC
	// exceeds MaxArrivals instead of at period end (ablation; the paper
	// checks "shortly before the next period begins").
	EagerArrivalCheck bool
	// DisableCorrelation turns off the Fig. 6 collaboration between the
	// PFC and heartbeat units (ablation).
	DisableCorrelation bool
	// CorrelationWindowCycles is how many cycles after a program-flow
	// error an aliveness error on the same task is attributed to the flow
	// root cause. Zero means 2.
	CorrelationWindowCycles int
	// ECUFaultyAppCount is how many simultaneously faulty applications
	// mark the global ECU state faulty. Zero means 2; set to 1 to make
	// any faulty application an ECU-level fault.
	ECUFaultyAppCount int
	// SweepShards enables the sharded parallel Cycle sweep: the due
	// runnables of a cycle are split across a persistent pool of
	// SweepShards workers. 0 or 1 keeps the sweep serial. Only large due
	// populations engage the pool (small sweeps stay serial regardless);
	// watchdogs with a pool should be retired with Close. Ignored with
	// LegacySweep.
	SweepShards int
	// LegacySweep selects the retired O(N) full-table sweep instead of
	// the due-cycle timer wheel. It exists as the bit-identical reference
	// the equivalence tests replay against and as the benchmark baseline;
	// production deployments should leave it off.
	LegacySweep bool
	// JournalSize is the fault-event journal capacity in entries, rounded
	// up to a power of two. Zero selects the default (256); negative
	// disables the journal entirely. Journal writes happen only on the
	// detection cold path, never on the healthy beat path.
	JournalSize int
	// JournalSink, when set, receives a copy of every journaled
	// detection immediately after it lands in the ring, with its Seq
	// stamped. Invoked on the detection cold path while the watchdog
	// mutex is held, so implementations MUST be non-blocking and must
	// not call back into the watchdog — hand the entry to a lock-free
	// ring or drop it (the WAL shipper does exactly that). Ignored when
	// the journal is disabled (JournalSize < 0). Replaceable at runtime
	// via SetJournalSink.
	JournalSink func(JournalEntry)
	// MetricsSink, when set, receives a telemetry snapshot every
	// MetricsEveryCycles monitoring cycles, invoked on the goroutine that
	// called Cycle after the sweep finished. The *Snapshot points at a
	// buffer the watchdog reuses: copy what must outlive the call.
	MetricsSink func(*Snapshot)
	// MetricsEveryCycles spaces MetricsSink invocations in cycles; zero
	// means 100 (one emission per second at the default 10 ms cycle).
	MetricsEveryCycles int
	// EstimatorWindowCycles enables the online calibration estimator
	// (internal/calib): every EstimatorWindowCycles monitoring cycles the
	// banked per-runnable beat counts are sampled into one observation
	// window, on the goroutine that called Cycle. Zero disables the
	// estimator; the heartbeat hot path is identical either way.
	EstimatorWindowCycles int
	// wheelSize overrides the timer-wheel bucket count (power of two;
	// zero means defaultWheelSize). In-package test hook.
	wheelSize uint64
	// sweepParallelMin overrides the due-population threshold above which
	// SweepShards engages the pool (zero means the default). In-package
	// test hook.
	sweepParallelMin int
}

// tstate is the TSI state of one task. All fields are cold-path state
// guarded by the watchdog mutex; the PFC predecessor register lives
// separately under the flow shards (see hot.go).
type tstate struct {
	state HealthState
	// lastFlowCycle is the cycle of the most recent program-flow error on
	// this task, for the correlation window.
	lastFlowCycle uint64
	flowSeen      bool
	// correlatedAlivenessReported implements the paper's "only one
	// accumulated aliveness error is reported" during a flow-error burst.
	correlatedAlivenessReported bool
	// suspendedAS remembers which runnables had their Activation Status
	// on when SuspendTaskMonitoring switched the task off.
	suspendedAS []runnable.ID
}

// astate is the TSI state of one application.
type astate struct {
	state HealthState
}

// Counters is a snapshot of one runnable's heartbeat-monitoring counters.
type Counters struct {
	Active bool
	AC     int
	ARC    int
	CCA    int
	CCAR   int
}

// Results are cumulative detection counts — the "AM Result", "AR Result"
// and "PFC Result" series of the paper's plots.
type Results struct {
	Aliveness   uint64
	ArrivalRate uint64
	ProgramFlow uint64
}

// Watchdog is the Software Watchdog service instance for one ECU.
//
// Concurrency model: Heartbeat / Monitor.Beat and Cycle are safe for
// unrestricted concurrent use; heartbeats are lock-free on the healthy
// path (see hot.go) and the Cycle sweep visits only runnables whose
// monitoring window expires this cycle (see wheel.go / sweep.go).
// Configuration methods (SetHypothesis, Activate, AddFlowPair, Clear*,
// Suspend/Resume) serialize on internal mutexes and may run concurrently
// with heartbeats; a heartbeat racing a configuration change lands on
// either side of it. Watchdogs configured with SweepShards > 1 own a
// worker pool and should be retired with Close.
type Watchdog struct {
	cfg   Config
	model *runnable.Model
	clock sim.Clock
	sink  Sink

	// Hot state (lock-free): per-runnable counters, the PFC look-up table
	// snapshot, per-task predecessor registers and the cycle counter.
	hot    []hotState
	taskOf []runnable.TaskID // rid → hosting task, precomputed
	flow   atomic.Pointer[flowTable]
	preds  []predReg
	cycle  atomic.Uint64

	// sched is the due-cycle timer wheel driving the Cycle sweep; nil
	// when Config.LegacySweep selects the reference full-table walk. Its
	// mutex is ordered before mu (see wheel.go).
	sched *scheduler

	// Cold state, guarded by mu: detections, error-indication vectors and
	// the TSI derivation chain. The fault-event journal shares mu: its
	// only writers (detections) already hold it.
	mu       sync.Mutex
	errv     [][3]uint64 // error-indication vector, indexed by kind-1
	ts       []tstate
	as       []astate
	ecuState HealthState
	results  Results
	journal  *journal // nil when Config.JournalSize < 0
	// journalSink mirrors Config.JournalSink; guarded by mu (its only
	// call site, journalLocked, already holds it).
	journalSink func(JournalEntry)

	// Telemetry: the Cycle-duration histogram (atomic, written once per
	// cycle) and the reused MetricsSink snapshot buffer.
	sweepHist    histogram
	metricsEvery uint64
	metricsMu    sync.Mutex
	metricsBuf   Snapshot

	// shadows holds the shadow-guard candidate hypotheses, guarded by
	// sched.mu like the wheel state it rides (see shadow.go). Nil until
	// the first SetShadow.
	shadows map[runnable.ID]*shadowState

	// Online calibration estimator state (nil/zero unless
	// Config.EstimatorWindowCycles > 0); see maybeSampleEstimator.
	est       *calib.Estimator
	estEvery  uint64
	estMu     sync.Mutex
	estPrimed bool
	estLast   []uint64
	estCounts []uint64
}

// New validates the configuration and builds a watchdog with all
// activation statuses off; configure runnables with SetHypothesis and the
// flow table with AddFlowPair/AddFlowSequence, then Activate them.
func New(cfg Config) (*Watchdog, error) {
	if cfg.Model == nil {
		return nil, errors.New("core: Config.Model is required")
	}
	if !cfg.Model.Frozen() {
		return nil, errors.New("core: model must be frozen")
	}
	if cfg.Clock == nil {
		return nil, errors.New("core: Config.Clock is required")
	}
	if cfg.Sink == nil {
		cfg.Sink = nopSink{}
	}
	if cfg.CyclePeriod <= 0 {
		cfg.CyclePeriod = 10 * time.Millisecond
	}
	if (cfg.Thresholds == Thresholds{}) {
		cfg.Thresholds = DefaultThresholds()
	}
	if cfg.Thresholds.Aliveness <= 0 || cfg.Thresholds.ArrivalRate <= 0 || cfg.Thresholds.ProgramFlow <= 0 {
		return nil, errors.New("core: thresholds must be positive")
	}
	if cfg.CorrelationWindowCycles <= 0 {
		cfg.CorrelationWindowCycles = 2
	}
	if cfg.ECUFaultyAppCount <= 0 {
		cfg.ECUFaultyAppCount = 2
	}
	if cfg.SweepShards < 0 {
		return nil, errors.New("core: SweepShards must be non-negative")
	}
	if cfg.SweepShards > 256 {
		cfg.SweepShards = 256
	}
	if cfg.wheelSize != 0 && cfg.wheelSize&(cfg.wheelSize-1) != 0 {
		return nil, errors.New("core: wheel size must be a power of two")
	}
	if cfg.sweepParallelMin <= 0 {
		cfg.sweepParallelMin = sweepParallelDefaultMin
	}
	if cfg.MetricsEveryCycles <= 0 {
		cfg.MetricsEveryCycles = 100
	}
	if cfg.EstimatorWindowCycles < 0 {
		return nil, errors.New("core: EstimatorWindowCycles must be non-negative")
	}
	n := cfg.Model.NumRunnables()
	w := &Watchdog{
		cfg:      cfg,
		model:    cfg.Model,
		clock:    cfg.Clock,
		sink:     cfg.Sink,
		hot:      make([]hotState, n),
		taskOf:   make([]runnable.TaskID, n),
		preds:    make([]predReg, cfg.Model.NumTasks()),
		errv:     make([][3]uint64, n),
		ts:       make([]tstate, cfg.Model.NumTasks()),
		as:       make([]astate, cfg.Model.NumApps()),
		ecuState: StateOK,
	}
	w.metricsEvery = uint64(cfg.MetricsEveryCycles)
	if cfg.EstimatorWindowCycles > 0 {
		w.est = calib.NewEstimator(n, calib.EstimatorConfig{WindowCycles: cfg.EstimatorWindowCycles})
		w.estEvery = uint64(cfg.EstimatorWindowCycles)
		w.estLast = make([]uint64, n)
		w.estCounts = make([]uint64, n)
	}
	if cfg.JournalSize >= 0 {
		w.journal = newJournal(cfg.JournalSize)
		w.journalSink = cfg.JournalSink
	}
	disabled := &Hypothesis{}
	for i := range w.hot {
		w.hot[i].hyp.Store(disabled)
		w.hot[i].eagerLimit.Store(eagerDisabled)
		w.taskOf[i] = cfg.Model.TaskOf(runnable.ID(i))
		w.hot[i].tid = w.taskOf[i]
	}
	if !cfg.LegacySweep {
		size := cfg.wheelSize
		if size == 0 {
			size = defaultWheelSize
		}
		shards := cfg.SweepShards
		if shards == 1 {
			shards = 0
		}
		w.sched = newScheduler(n, size, shards, cfg.sweepParallelMin)
	}
	w.flow.Store(newFlowTable(n))
	for i := range w.preds {
		w.preds[i].last.Store(int64(runnable.NoID))
	}
	for i := range w.ts {
		w.ts[i].state = StateOK
	}
	for i := range w.as {
		w.as[i].state = StateOK
	}
	return w, nil
}

// CyclePeriod reports the configured watchdog cycle period.
func (w *Watchdog) CyclePeriod() time.Duration { return w.cfg.CyclePeriod }

// checkRunnable validates a runnable identifier against the model.
func (w *Watchdog) checkRunnable(rid runnable.ID) error {
	if uint(rid) >= uint(len(w.hot)) {
		return fmt.Errorf("core: %w: id %d", ErrUnknownRunnable, rid)
	}
	return nil
}

// SetHypothesis installs the fault hypothesis for a runnable. The runnable
// is not activated; call Activate. Unknown identifiers report
// ErrUnknownRunnable.
func (w *Watchdog) SetHypothesis(rid runnable.ID, h Hypothesis) error {
	if err := h.Validate(); err != nil {
		return fmt.Errorf("core: SetHypothesis(%d): %w", rid, err)
	}
	if err := w.checkRunnable(rid); err != nil {
		return err
	}
	defer w.lockSched()()
	w.mu.Lock()
	defer w.mu.Unlock()
	hs := &w.hot[rid]
	if old := hs.hyp.Load(); old.ArrivalCycles == 0 && h.ArrivalCycles > 0 {
		// Arrival monitoring switches on: ARC has been accumulating since
		// the unit was last off (beats always increment both halves) and
		// must not count against the first monitored window. Drain it; AC
		// is preserved, so aliveness supervision sees no gap.
		hs.closeArrival()
	}
	hyp := h // private copy; the pointer is published to the hot path
	hs.hyp.Store(&hyp)
	hs.eagerLimit.Store(eagerLimitFor(w.cfg.EagerArrivalCheck, h))
	if w.sched != nil {
		// Re-derive the deadlines under the new hypothesis, preserving
		// the in-flight windows' elapsed cycles (the reference sweep does
		// not reset counters on a hypothesis change).
		w.reschedPreserveLocked(rid)
	}
	return nil
}

// Hypothesis reports the installed fault hypothesis of a runnable.
func (w *Watchdog) Hypothesis(rid runnable.ID) (Hypothesis, error) {
	if err := w.checkRunnable(rid); err != nil {
		return Hypothesis{}, err
	}
	return *w.hot[rid].hyp.Load(), nil
}

// Activate sets a runnable's Activation Status: its heartbeats are
// recorded and its hypothesis checked.
func (w *Watchdog) Activate(rid runnable.ID) error {
	return w.setActive(rid, true)
}

// Deactivate clears a runnable's Activation Status and resets its
// counters.
func (w *Watchdog) Deactivate(rid runnable.ID) error {
	return w.setActive(rid, false)
}

func (w *Watchdog) setActive(rid runnable.ID, active bool) error {
	if err := w.checkRunnable(rid); err != nil {
		return err
	}
	defer w.lockSched()()
	w.mu.Lock()
	defer w.mu.Unlock()
	hs := &w.hot[rid]
	if active {
		hs.active.Store(1)
	} else {
		hs.active.Store(0)
	}
	hs.resetCounters()
	if w.sched != nil {
		w.reschedFreshLocked(rid)
	}
	return nil
}

// MonitorFlow enrols a runnable in program-flow checking. Only enrolled
// (typically safety-critical, §3.4) runnables update and are checked
// against the flow look-up table.
func (w *Watchdog) MonitorFlow(rid runnable.ID) error {
	if err := w.checkRunnable(rid); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ft := w.flow.Load().clone()
	ft.setMonitored(rid)
	w.flow.Store(ft)
	return nil
}

// AddFlowPair allows succ to execute immediately after pred within their
// common task. Both runnables are implicitly enrolled in flow monitoring.
func (w *Watchdog) AddFlowPair(pred, succ runnable.ID) error {
	if err := w.checkRunnable(pred); err != nil {
		return err
	}
	if err := w.checkRunnable(succ); err != nil {
		return err
	}
	if w.taskOf[pred] != w.taskOf[succ] {
		return fmt.Errorf("core: AddFlowPair(%d,%d): runnables belong to different tasks", pred, succ)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	ft := w.flow.Load().clone()
	ft.addPair(pred, succ)
	w.flow.Store(ft)
	return nil
}

// AddFlowSequence allows the straight-line order r0→r1→…→rn and the
// wrap-around rn→r0 (the task re-executes its sequence every activation).
func (w *Watchdog) AddFlowSequence(rids ...runnable.ID) error {
	if len(rids) < 2 {
		return errors.New("core: AddFlowSequence needs at least two runnables")
	}
	for i := 0; i < len(rids)-1; i++ {
		if err := w.AddFlowPair(rids[i], rids[i+1]); err != nil {
			return err
		}
	}
	return w.AddFlowPair(rids[len(rids)-1], rids[0])
}

// Heartbeat is the aliveness indication routine runnables call (directly,
// or via the OSEK observer glue). It records the heartbeat in AC and ARC
// and runs the event-triggered program-flow check. Unknown identifiers
// are ignored, matching the tolerance required of glue code.
//
// Heartbeat is lock-free in the healthy case; prefer Register and
// Monitor.Beat on hot call sites to also skip the bounds check and the
// task lookup.
func (w *Watchdog) Heartbeat(rid runnable.ID) {
	if uint(rid) >= uint(len(w.hot)) {
		return
	}
	w.beat(rid, &w.hot[rid])
}

// beat is the shared hot path of Heartbeat and Monitor.Beat. rid has been
// validated; hs is the runnable's hot state (which carries the hosting
// task). The telemetry layer adds NOTHING here: lifetime beat counts are
// derived by banking AC at window closes and resets (see
// hotState.bankBeats), so a healthy beat costs exactly what it did
// before the observability layer existed.
func (w *Watchdog) beat(rid runnable.ID, hs *hotState) {
	if hs.active.Load() != 0 {
		v := hs.addBeat()
		if uint32(v) > hs.eagerLimit.Load() {
			w.eagerArrival(rid, hs, v)
		}
	}
	ft := w.flow.Load()
	if ft.isMonitored(rid) {
		w.checkFlow(ft, rid, hs.tid)
	}
}

// MaxBatchBeats bounds one BeatN call. The packed AC|ARC counter word
// gives each half 32 bits; capping a single batch far below 2^32 keeps
// one add from carrying the ARC half into AC even when windows run long.
const MaxBatchBeats = 1 << 24

// beatN is the batched-aliveness hot path behind Monitor.BeatN: n
// heartbeats recorded with one atomic add. Like beat it is lock-free in
// the healthy case; unlike beat it skips the program-flow check (order
// information does not survive coalescing — see FlowEvent).
func (w *Watchdog) beatN(rid runnable.ID, hs *hotState, n int) {
	if n <= 0 {
		return
	}
	if n > MaxBatchBeats {
		n = MaxBatchBeats
	}
	if hs.active.Load() == 0 {
		return
	}
	v := hs.acArc.Add(uint64(n)<<32 | uint64(n))
	if uint32(v) > hs.eagerLimit.Load() {
		w.eagerArrival(rid, hs, v)
	}
}

// FlowEvent replays one ordered execution of a PFC-enrolled runnable
// without recording a heartbeat: the program-flow half of Heartbeat. The
// batched wire protocol splits the two concerns — beat *counts* travel
// compactly and land via Monitor.BeatN, while the ordered successor list
// of flow-monitored runnables replays here so the look-up-table check
// sees the same predecessor/successor pairs it would have seen locally.
// Unknown identifiers and unenrolled runnables are ignored, matching
// Heartbeat's tolerance.
func (w *Watchdog) FlowEvent(rid runnable.ID) {
	if uint(rid) >= uint(len(w.hot)) {
		return
	}
	ft := w.flow.Load()
	if ft.isMonitored(rid) {
		w.checkFlow(ft, rid, w.hot[rid].tid)
	}
}

// eagerArrival is the cold path of the EagerArrivalCheck ablation: the
// heartbeat that pushed ARC beyond MaxArrivals reports the arrival-rate
// error immediately and resets the window. The CompareAndSwap elects
// exactly one reporter when several heartbeats race past the limit.
func (w *Watchdog) eagerArrival(rid runnable.ID, hs *hotState, v uint64) {
	defer w.lockSched()()
	w.mu.Lock()
	defer w.mu.Unlock()
	// Clear the ARC half, preserving AC. The CAS elects exactly one
	// reporter: it fails if another heartbeat or a Cycle sweep already
	// moved the counter word.
	if !hs.acArc.CompareAndSwap(v, v&^uint64(1<<32-1)) {
		return // another heartbeat or a Cycle sweep already closed the window
	}
	hs.ccar.Store(0)
	hyp := hs.hyp.Load()
	if w.sched != nil {
		// The mid-period ARC reset restarts the arrival window; move its
		// deadline accordingly.
		w.reschedArrivalRestartLocked(rid, hyp)
	}
	w.detectLocked(ArrivalRateError, rid, int(uint32(v)), hyp.MaxArrivals, runnable.NoID)
}

// checkFlow implements the PFC unit: compare the actually executed
// successor with the predefined successors of the predecessor. Flow is
// tracked per task, so legal preemption interleavings between tasks are
// not flagged. The read-predecessor/set-current step is one atomic
// exchange on the task's padded register; the look-up itself reads the
// immutable table snapshot.
func (w *Watchdog) checkFlow(ft *flowTable, rid runnable.ID, tid runnable.TaskID) {
	pred := runnable.ID(w.preds[tid].last.Swap(int64(rid)))
	if pred == runnable.NoID {
		return // first monitored execution of this task: no predecessor yet
	}
	if ft.allowed(pred, rid) {
		return
	}
	w.mu.Lock()
	ts := &w.ts[tid]
	ts.lastFlowCycle = w.cycle.Load()
	if !ts.flowSeen {
		ts.flowSeen = true
		ts.correlatedAlivenessReported = false
	}
	w.detectLocked(ProgramFlowError, rid, 0, 0, pred)
	w.mu.Unlock()
}

// Cycle is implemented in sweep.go: the wheel-based due-cycle sweep by
// default, or the legacy full-table walk with Config.LegacySweep.

// detectLocked routes one detected error through the collaboration logic
// and the TSI unit, and reports it to the sink. Callers hold w.mu.
func (w *Watchdog) detectLocked(kind ErrorKind, rid runnable.ID, observed, expected int, pred runnable.ID) {
	tid := w.taskOf[rid]
	app := w.model.AppOfRunnable(rid)
	ts := &w.ts[tid]

	cycle := w.cycle.Load()
	correlated := false
	if kind == AlivenessError && !w.cfg.DisableCorrelation && ts.flowSeen &&
		cycle-ts.lastFlowCycle <= uint64(w.cfg.CorrelationWindowCycles) {
		// Collaboration of the units (Fig. 6): this aliveness error is a
		// symptom of the program-flow fault. Accumulate it at most once.
		correlated = true
		if ts.correlatedAlivenessReported {
			return
		}
		ts.correlatedAlivenessReported = true
	}

	switch kind {
	case AlivenessError:
		w.results.Aliveness++
	case ArrivalRateError:
		w.results.ArrivalRate++
	case ProgramFlowError:
		w.results.ProgramFlow++
	}
	w.errv[rid][kind-1]++
	w.journalLocked(kind, rid, tid, app, cycle, observed, expected, pred, correlated)

	w.sink.Fault(Report{
		Time:        w.clock.Now(),
		Cycle:       cycle,
		Kind:        kind,
		Runnable:    rid,
		Task:        tid,
		App:         app,
		Observed:    observed,
		Expected:    expected,
		Predecessor: pred,
		Correlated:  correlated,
	})

	// TSI: element of the error indication vector reached its threshold →
	// the whole task is considered faulty (§3.5).
	if ts.state == StateOK && w.errv[rid][kind-1] >= uint64(w.cfg.Thresholds.of(kind)) {
		w.setTaskStateLocked(tid, StateFaulty, kind)
	}
}

// setTaskStateLocked performs the TSI derivation chain: task → application
// → global ECU state.
func (w *Watchdog) setTaskStateLocked(tid runnable.TaskID, state HealthState, cause ErrorKind) {
	ts := &w.ts[tid]
	if ts.state == state {
		return
	}
	ts.state = state
	cycle := w.cycle.Load()
	w.sink.StateChanged(StateEvent{
		Time: w.clock.Now(), Cycle: cycle,
		Scope: TaskScope, Task: tid, App: w.model.AppOf(tid),
		State: state, Cause: cause,
	})

	// A shared task hosts runnables of several applications; its state
	// feeds into every one of them (§1: runnables from different software
	// components can be mapped to the same task).
	for _, app := range w.model.AppsOfTask(tid) {
		appState := StateOK
		appModel, err := w.model.App(app)
		if err == nil {
			for _, t := range appModel.Tasks {
				if w.ts[t].state == StateFaulty {
					appState = StateFaulty
					break
				}
			}
		}
		if w.as[app].state != appState {
			w.as[app].state = appState
			w.sink.StateChanged(StateEvent{
				Time: w.clock.Now(), Cycle: cycle,
				Scope: AppScope, Task: runnable.NoID, App: app,
				State: appState, Cause: cause,
			})
		}
	}

	faultyApps := 0
	for i := range w.as {
		if w.as[i].state == StateFaulty {
			faultyApps++
		}
	}
	ecu := StateOK
	if faultyApps >= w.cfg.ECUFaultyAppCount {
		ecu = StateFaulty
	}
	if w.ecuState != ecu {
		w.ecuState = ecu
		w.sink.StateChanged(StateEvent{
			Time: w.clock.Now(), Cycle: cycle,
			Scope: ECUScope, Task: runnable.NoID, App: runnable.NoID,
			State: ecu, Cause: cause,
		})
	}
}

// ClearTask resets the TSI state and heartbeat counters of one task after
// fault treatment (task or application restart), returning it to OK.
func (w *Watchdog) ClearTask(tid runnable.TaskID) error {
	t, err := w.model.Task(tid)
	if err != nil {
		return err
	}
	// Reset the PFC predecessor register; a racing beat lands before or
	// after the reset, exactly as with a lock.
	w.preds[tid].last.Store(int64(runnable.NoID))

	defer w.lockSched()()
	w.mu.Lock()
	defer w.mu.Unlock()
	ts := &w.ts[tid]
	ts.flowSeen = false
	ts.correlatedAlivenessReported = false
	for _, rid := range t.Runnables {
		w.hot[rid].resetCounters()
		w.errv[rid] = [3]uint64{}
		if w.sched != nil {
			w.reschedFreshLocked(rid)
		}
	}
	if ts.state != StateOK {
		w.setTaskStateLocked(tid, StateOK, 0)
	}
	return nil
}

// SuspendTaskMonitoring clears the Activation Status of every runnable of
// a task and remembers the previous set, used when the task's application
// is terminated: a deliberately stopped application must not accumulate
// aliveness errors (§3.3 AS semantics).
func (w *Watchdog) SuspendTaskMonitoring(tid runnable.TaskID) error {
	t, err := w.model.Task(tid)
	if err != nil {
		return err
	}
	defer w.lockSched()()
	w.mu.Lock()
	defer w.mu.Unlock()
	ts := &w.ts[tid]
	ts.suspendedAS = ts.suspendedAS[:0]
	for _, rid := range t.Runnables {
		hs := &w.hot[rid]
		if hs.active.Load() != 0 {
			ts.suspendedAS = append(ts.suspendedAS, rid)
			hs.active.Store(0)
			hs.resetCounters()
			if w.sched != nil {
				w.reschedFreshLocked(rid)
			}
		}
	}
	return nil
}

// ResumeTaskMonitoring restores the Activation Statuses recorded by
// SuspendTaskMonitoring.
func (w *Watchdog) ResumeTaskMonitoring(tid runnable.TaskID) error {
	if _, err := w.model.Task(tid); err != nil {
		return err
	}
	defer w.lockSched()()
	w.mu.Lock()
	defer w.mu.Unlock()
	ts := &w.ts[tid]
	for _, rid := range ts.suspendedAS {
		hs := &w.hot[rid]
		hs.active.Store(1)
		hs.resetCounters()
		if w.sched != nil {
			w.reschedFreshLocked(rid)
		}
	}
	ts.suspendedAS = ts.suspendedAS[:0]
	return nil
}

// ClearAll resets every task and resumes suspended monitoring, e.g. after
// an ECU software reset (the boot configuration is re-applied).
func (w *Watchdog) ClearAll() {
	for tid := range w.ts {
		// tid is always valid here.
		_ = w.ResumeTaskMonitoring(runnable.TaskID(tid))
		_ = w.ClearTask(runnable.TaskID(tid))
	}
	if s := w.sched; s != nil {
		// Bucket slots are keyed by absolute cycle numbers: rewinding the
		// counter invalidates every indexed deadline, so rebuild the wheel
		// from the (freshly reset) per-runnable state.
		s.mu.Lock()
		w.cycle.Store(0)
		s.resetAll()
		for i := range w.hot {
			w.reschedFreshLocked(runnable.ID(i))
		}
		// Shadow candidates survive the reset: reopen their windows at
		// cycle zero from the (monotonic) lifetime beat counts.
		for rid, st := range w.shadows {
			st.startBeats = w.hot[rid].lifetimeBeats()
			s.schedule(int(rid), kindShadow, st.window(), 0)
		}
		s.mu.Unlock()
		return
	}
	w.cycle.Store(0)
}

// CycleCount reports how many monitoring cycles have elapsed.
func (w *Watchdog) CycleCount() uint64 { return w.cycle.Load() }

// CounterSnapshot reports the live heartbeat-monitoring counters of a
// runnable — the series plotted in Fig. 5. Under concurrent heartbeats
// the four counters are individually, not jointly, consistent.
func (w *Watchdog) CounterSnapshot(rid runnable.ID) (Counters, error) {
	if err := w.checkRunnable(rid); err != nil {
		return Counters{}, err
	}
	return w.counters(rid), nil
}

// counters is the lock-free read behind CounterSnapshot, shared with the
// telemetry Snapshot and the journal's freeze-frames. rid must be valid.
func (w *Watchdog) counters(rid runnable.ID) Counters {
	hs := &w.hot[rid]
	c := Counters{
		Active: hs.active.Load() != 0,
		AC:     int(hs.loadAC()),
		ARC:    int(hs.loadARC()),
	}
	if s := w.sched; s != nil {
		// The wheel sweep no longer increments CCA/CCAR every cycle; the
		// values are derived lock-free from the window anchors instead.
		now := w.cycle.Load()
		r := &s.rs[rid]
		c.CCA = int(uint32(anchorElapsed(r.aliveAnchor.Load(), now)))
		c.CCAR = int(uint32(anchorElapsed(r.arrAnchor.Load(), now)))
	} else {
		c.CCA = int(hs.cca.Load())
		c.CCAR = int(hs.ccar.Load())
	}
	return c
}

// Results reports the cumulative detection counts (the AM/AR/PFC Result
// series).
func (w *Watchdog) Results() Results {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.results
}

// RunnableErrors reports the error-indication-vector element of one
// runnable: accumulated error counts by kind.
func (w *Watchdog) RunnableErrors(rid runnable.ID) (aliveness, arrival, flow uint64, err error) {
	if err := w.checkRunnable(rid); err != nil {
		return 0, 0, 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	e := w.errv[rid]
	return e[0], e[1], e[2], nil
}

// TaskState reports the TSI-derived state of a task.
func (w *Watchdog) TaskState(tid runnable.TaskID) (HealthState, error) {
	if _, err := w.model.Task(tid); err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ts[tid].state, nil
}

// AppState reports the TSI-derived state of an application.
func (w *Watchdog) AppState(app runnable.AppID) (HealthState, error) {
	if _, err := w.model.App(app); err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.as[app].state, nil
}

// ECUState reports the derived global ECU state.
func (w *Watchdog) ECUState() HealthState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ecuState
}
