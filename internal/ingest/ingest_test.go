package ingest

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"swwd/internal/core"
	"swwd/internal/runnable"
	"swwd/internal/sim"
	"swwd/internal/wire"
)

// testFleet builds a small deterministic fleet on a manual clock: cycles
// are driven by hand, so window expiry is exact.
func testFleet(t *testing.T, nodes, rpn int) *Fleet {
	t.Helper()
	f, err := BuildFleet(FleetConfig{
		Nodes:            nodes,
		RunnablesPerNode: rpn,
		Interval:         100 * time.Millisecond,
		CyclePeriod:      10 * time.Millisecond,
		GraceFrames:      3,
		Clock:            sim.NewManualClock(),
	})
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	return f
}

// encode builds one frame's bytes.
func encode(t *testing.T, f *wire.Frame) []byte {
	t.Helper()
	if f.Epoch == 0 {
		f.Epoch = 1
	}
	if f.IntervalMs == 0 {
		f.IntervalMs = 100
	}
	buf, err := wire.AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	return buf
}

// inject pushes raw bytes through the worker ingest path.
func inject(s *Server, buf []byte) {
	var frame wire.Frame
	s.ingestFrame(buf, &frame, netip.AddrPort{})
}

func TestLinkHypothesis(t *testing.T) {
	h := LinkHypothesis(100*time.Millisecond, 10*time.Millisecond, 3)
	if h.AlivenessCycles != 30 || h.MinHeartbeats != 1 {
		t.Fatalf("hypothesis = %+v, want 30 cycles / 1 beat", h)
	}
	// Rounding up and the floor of 2.
	h = LinkHypothesis(15*time.Millisecond, 10*time.Millisecond, 1)
	if h.AlivenessCycles != 2 {
		t.Fatalf("AlivenessCycles = %d, want 2", h.AlivenessCycles)
	}
	h = LinkHypothesis(time.Millisecond, 10*time.Millisecond, 1)
	if h.AlivenessCycles != 2 {
		t.Fatalf("floor: AlivenessCycles = %d, want 2", h.AlivenessCycles)
	}
}

func TestIngestReplaysBeatsAndLink(t *testing.T) {
	f := testFleet(t, 2, 3)
	spec := f.Specs[0]
	inject(f.Server, encode(t, &wire.Frame{
		Node: 0, Seq: 1,
		Beats: []wire.BeatRec{{Runnable: 0, Beats: 5}, {Runnable: 2, Beats: 1}},
	}))
	for i, want := range []int{5, 0, 1} {
		c, err := f.Watchdog.CounterSnapshot(spec.Runnables[i])
		if err != nil {
			t.Fatal(err)
		}
		if c.AC != want {
			t.Errorf("runnable %d AC = %d, want %d", i, c.AC, want)
		}
	}
	c, _ := f.Watchdog.CounterSnapshot(spec.Link)
	if c.AC != 1 {
		t.Errorf("link AC = %d, want 1 (one accepted frame = one link beat)", c.AC)
	}
	st := f.Server.Stats()
	if st.Accepted != 1 || st.Frames != 1 || st.DecodeErrors != 0 {
		t.Errorf("stats = %+v, want 1 accepted / 1 frame / 0 decode errors", st)
	}
	// The second node saw nothing.
	c, _ = f.Watchdog.CounterSnapshot(f.Specs[1].Link)
	if c.AC != 0 {
		t.Errorf("node 1 link AC = %d, want 0", c.AC)
	}
}

func TestIngestSequenceDiscipline(t *testing.T) {
	f := testFleet(t, 1, 1)
	spec := f.Specs[0]
	beat1 := func(seq uint64) []byte {
		return encode(t, &wire.Frame{Node: 0, Seq: seq, Beats: []wire.BeatRec{{Runnable: 0, Beats: 1}}})
	}
	ac := func() int {
		c, _ := f.Watchdog.CounterSnapshot(spec.Runnables[0])
		return c.AC
	}

	inject(f.Server, beat1(1))
	inject(f.Server, beat1(2))
	if got := ac(); got != 2 {
		t.Fatalf("AC after seq 1,2 = %d, want 2", got)
	}
	// Duplicate: dropped without replay — a beat never counts twice.
	inject(f.Server, beat1(2))
	// Out-of-order (old): dropped too.
	inject(f.Server, beat1(1))
	if got := ac(); got != 2 {
		t.Fatalf("AC after dup + stale = %d, want 2 (no double count)", got)
	}
	st := f.Server.Stats()
	if st.DuplicateDrops != 2 {
		t.Fatalf("DuplicateDrops = %d, want 2", st.DuplicateDrops)
	}
	if st.SeqGaps != 0 {
		t.Fatalf("SeqGaps = %d, want 0 so far", st.SeqGaps)
	}
	// Jump 2→5: two frames lost in flight; the frame itself replays.
	inject(f.Server, beat1(5))
	if got := ac(); got != 3 {
		t.Fatalf("AC after gap frame = %d, want 3", got)
	}
	st = f.Server.Stats()
	if st.SeqGaps != 2 || st.SeqGapEvents != 1 {
		t.Fatalf("gaps = %d/%d events, want 2/1", st.SeqGaps, st.SeqGapEvents)
	}
	// Link beat once per *accepted* frame: 3 accepted of 5 handed over.
	c, _ := f.Watchdog.CounterSnapshot(spec.Link)
	if c.AC != 3 || st.Accepted != 3 {
		t.Fatalf("link AC = %d, accepted = %d; want 3, 3", c.AC, st.Accepted)
	}
}

// TestIngestReporterRestart is the session-epoch discipline: a restarted
// reporter (fresh epoch, sequence numbers starting again at 1) must have
// its frames replayed immediately — not discarded as duplicates of the
// old session — while stale datagrams from the superseded session are
// dropped without replay.
func TestIngestReporterRestart(t *testing.T) {
	f := testFleet(t, 1, 1)
	spec := f.Specs[0]
	send := func(epoch, seq uint64) {
		inject(f.Server, encode(t, &wire.Frame{Node: 0, Epoch: epoch, Seq: seq,
			Beats: []wire.BeatRec{{Runnable: 0, Beats: 1}}}))
	}
	ac := func() int {
		c, _ := f.Watchdog.CounterSnapshot(spec.Runnables[0])
		return c.AC
	}

	// First session: epoch 10, frames 1..3.
	for s := uint64(1); s <= 3; s++ {
		send(10, s)
	}
	if got := ac(); got != 3 {
		t.Fatalf("AC after first session = %d, want 3", got)
	}

	// The reporter restarts: epoch 20, Seq back at 1 — far below the old
	// session's lastSeq. Without epoch handling this frame (and every one
	// after it, for 3 frames' worth of sequence numbers) would be dropped
	// as a duplicate and the healthy node declared link-dead.
	send(20, 1)
	if got := ac(); got != 4 {
		t.Fatalf("AC after restart frame = %d, want 4 (frame must replay)", got)
	}
	st := f.Server.Stats()
	if st.NodeRestarts != 1 {
		t.Fatalf("NodeRestarts = %d, want 1", st.NodeRestarts)
	}
	if st.DuplicateDrops != 0 {
		t.Fatalf("DuplicateDrops = %d, want 0 — restart misread as duplicate", st.DuplicateDrops)
	}
	if st.SeqGaps != 0 {
		t.Fatalf("SeqGaps = %d, want 0 (restart at Seq 1 lost nothing)", st.SeqGaps)
	}
	// The restarted session's link heartbeat flows like any other.
	c, _ := f.Watchdog.CounterSnapshot(spec.Link)
	if c.AC != 4 {
		t.Fatalf("link AC = %d, want 4", c.AC)
	}

	// A late datagram from the dead session (old epoch, any seq) must be
	// dropped: its beats may already have been counted.
	send(10, 4)
	if got := ac(); got != 4 {
		t.Fatalf("AC after stale-epoch frame = %d, want 4 (no replay)", got)
	}
	if st := f.Server.Stats(); st.StaleEpochDrops != 1 {
		t.Fatalf("StaleEpochDrops = %d, want 1", st.StaleEpochDrops)
	}

	// Ordinary sequence discipline continues within the new session.
	send(20, 2)
	send(20, 2) // duplicate
	st = f.Server.Stats()
	if got := ac(); got != 5 || st.DuplicateDrops != 1 {
		t.Fatalf("AC = %d, DuplicateDrops = %d; want 5, 1", got, st.DuplicateDrops)
	}

	// A restart whose first frames were lost in flight (epoch 30 arriving
	// at Seq 3) counts the new session's missing prefix as a gap.
	send(30, 3)
	st = f.Server.Stats()
	if st.NodeRestarts != 2 || st.SeqGaps != 2 || st.SeqGapEvents != 1 {
		t.Fatalf("restart with loss: restarts=%d gaps=%d events=%d, want 2/2/1",
			st.NodeRestarts, st.SeqGaps, st.SeqGapEvents)
	}
}

// TestIngestIntervalMismatch: the registration interval is authoritative
// for the link hypothesis; a frame declaring a different flush cadence
// still replays but is counted as a configuration diagnostic.
func TestIngestIntervalMismatch(t *testing.T) {
	f := testFleet(t, 1, 1) // registered at 100ms
	inject(f.Server, encode(t, &wire.Frame{Node: 0, Seq: 1, IntervalMs: 100,
		Beats: []wire.BeatRec{{Runnable: 0, Beats: 1}}}))
	if st := f.Server.Stats(); st.IntervalMismatch != 0 {
		t.Fatalf("matching interval counted as mismatch: %+v", st)
	}
	inject(f.Server, encode(t, &wire.Frame{Node: 0, Seq: 2, IntervalMs: 250,
		Beats: []wire.BeatRec{{Runnable: 0, Beats: 1}}}))
	st := f.Server.Stats()
	if st.IntervalMismatch != 1 {
		t.Fatalf("IntervalMismatch = %d, want 1", st.IntervalMismatch)
	}
	if st.Accepted != 2 {
		t.Fatalf("Accepted = %d, want 2 (mismatch must not drop the frame)", st.Accepted)
	}
}

func TestIngestRejectsWithoutPartialReplay(t *testing.T) {
	f := testFleet(t, 1, 2)
	spec := f.Specs[0]
	ac0 := func() int {
		c, _ := f.Watchdog.CounterSnapshot(spec.Runnables[0])
		return c.AC
	}

	// Unknown node ID.
	inject(f.Server, encode(t, &wire.Frame{Node: 99, Seq: 1, Beats: []wire.BeatRec{{Runnable: 0, Beats: 1}}}))
	if st := f.Server.Stats(); st.UnknownNode != 1 {
		t.Fatalf("UnknownNode = %d, want 1", st.UnknownNode)
	}

	// Unknown runnable index: counted as decode error, frame dropped
	// whole — the valid first record must not have been applied.
	inject(f.Server, encode(t, &wire.Frame{Node: 0, Seq: 1, Beats: []wire.BeatRec{
		{Runnable: 0, Beats: 7}, {Runnable: 9, Beats: 1},
	}}))
	if got := ac0(); got != 0 {
		t.Fatalf("AC after rejected frame = %d, want 0 (no partial replay)", got)
	}
	// Same for an unknown flow index.
	inject(f.Server, encode(t, &wire.Frame{Node: 0, Seq: 1, Beats: []wire.BeatRec{{Runnable: 0, Beats: 3}}, Flow: []uint32{9}}))
	if got := ac0(); got != 0 {
		t.Fatalf("AC after rejected flow frame = %d, want 0", got)
	}

	// Truncated garbage.
	inject(f.Server, []byte{0x57, 0x53, 1})
	st := f.Server.Stats()
	if st.DecodeErrors != 3 {
		t.Fatalf("DecodeErrors = %d, want 3", st.DecodeErrors)
	}
	if st.Accepted != 0 {
		t.Fatalf("Accepted = %d, want 0", st.Accepted)
	}
	// Rejected frames never advance the sequence: seq 1 still usable.
	inject(f.Server, encode(t, &wire.Frame{Node: 0, Seq: 1, Beats: []wire.BeatRec{{Runnable: 0, Beats: 2}}}))
	if got := ac0(); got != 2 {
		t.Fatalf("AC after clean frame = %d, want 2", got)
	}
}

// TestIngestLinkFaultPerWindow drives cycles by hand: a node that stops
// reporting raises exactly one aliveness fault on its link runnable per
// monitoring window, while a healthy node stays clean.
func TestIngestLinkFaultPerWindow(t *testing.T) {
	f := testFleet(t, 2, 2) // window = 3*100ms/10ms = 30 cycles
	const window = 30
	send := func(node uint32, seq uint64) {
		inject(f.Server, encode(t, &wire.Frame{Node: node, Seq: seq,
			Beats: []wire.BeatRec{{Runnable: 0, Beats: 2}, {Runnable: 1, Beats: 2}}}))
	}
	linkFaults := func(n int) uint64 {
		a, _, _, err := f.Watchdog.RunnableErrors(f.Specs[n].Link)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	// One healthy window: both nodes report every 10 cycles.
	seq := uint64(0)
	for c := 0; c < window; c++ {
		if c%10 == 0 {
			seq++
			send(0, seq)
			send(1, seq)
		}
		f.Watchdog.Cycle()
	}
	if got := f.Watchdog.Results(); got != (core.Results{}) {
		t.Fatalf("healthy window produced detections: %+v", got)
	}

	// Node 1 dies. Node 0 keeps reporting.
	for w := 1; w <= 2; w++ {
		for c := 0; c < window; c++ {
			if c%10 == 0 {
				seq++
				send(0, seq)
			}
			f.Watchdog.Cycle()
		}
		if got := linkFaults(1); got != uint64(w) {
			t.Fatalf("after %d silent windows: link faults = %d, want exactly %d", w, got, w)
		}
		if got := linkFaults(0); got != 0 {
			t.Fatalf("healthy node accumulated %d link faults", got)
		}
	}

	// The fault is journaled with the link runnable attributed.
	var found bool
	for _, e := range f.Watchdog.Journal() {
		if e.Kind == core.AlivenessError && e.Runnable == f.Specs[1].Link {
			found = true
		}
	}
	if !found {
		t.Fatal("no aliveness journal entry for the dead node's link runnable")
	}
}

func TestIngestFlowReplay(t *testing.T) {
	// Hand-build a model with a PFC-enrolled pair so flow records replay
	// through the look-up-table check.
	model := runnable.NewModel()
	app, _ := model.AddApp("a", runnable.SafetyCritical)
	task, _ := model.AddTask(app, "t", 1)
	r0, _ := model.AddRunnable(task, "r0", time.Millisecond, runnable.SafetyCritical)
	r1, _ := model.AddRunnable(task, "r1", time.Millisecond, runnable.SafetyCritical)
	link, _ := model.AddRunnable(task, "link", time.Millisecond, runnable.SafetyCritical)
	if err := model.Freeze(); err != nil {
		t.Fatal(err)
	}
	w, err := core.New(core.Config{Model: model, Clock: sim.NewManualClock()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddFlowSequence(r0, r1); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{Watchdog: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterNode(NodeSpec{Node: 0, Interval: 100 * time.Millisecond,
		Runnables: []runnable.ID{r0, r1}, Link: link}); err != nil {
		t.Fatal(err)
	}

	// Legal order r0→r1→r0: no flow errors.
	inject(srv, encode(t, &wire.Frame{Node: 0, Seq: 1, Flow: []uint32{0, 1, 0}}))
	if got := w.Results().ProgramFlow; got != 0 {
		t.Fatalf("legal order produced %d flow errors", got)
	}
	// Illegal r0→r0 (r0 may only follow r1).
	inject(srv, encode(t, &wire.Frame{Node: 0, Seq: 2, Flow: []uint32{0}}))
	if got := w.Results().ProgramFlow; got != 1 {
		t.Fatalf("illegal order produced %d flow errors, want 1", got)
	}
}

func TestRegisterNodeValidation(t *testing.T) {
	f := testFleet(t, 1, 1)
	spec := f.Specs[0]
	if err := f.Server.RegisterNode(spec); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate registration err = %v, want ErrNodeExists", err)
	}
	if err := f.Server.RegisterNode(NodeSpec{Node: 7, Interval: time.Second,
		Runnables: []runnable.ID{999}, Link: spec.Link}); !errors.Is(err, core.ErrUnknownRunnable) {
		t.Fatalf("unknown runnable err = %v, want ErrUnknownRunnable", err)
	}
	if err := f.Server.RegisterNode(NodeSpec{Node: 8, Interval: 0,
		Runnables: spec.Runnables, Link: spec.Link}); err == nil {
		t.Fatal("zero interval accepted")
	}
}

// TestIngestFrameZeroAlloc pins the steady-state cost contract of the
// ingest path: decode + validate + sequence check + replay allocates
// nothing per frame.
func TestIngestFrameZeroAlloc(t *testing.T) {
	f := testFleet(t, 1, 10)
	frame := &wire.Frame{Node: 0, Epoch: 1, Seq: 0, IntervalMs: 100}
	for i := uint32(0); i < 10; i++ {
		frame.Beats = append(frame.Beats, wire.BeatRec{Runnable: i, Beats: 3})
	}
	var dec wire.Frame
	seq := uint64(0)
	bufs := make([][]byte, 200)
	for i := range bufs {
		seq++
		frame.Seq = seq
		b, err := wire.AppendFrame(nil, frame)
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = b
	}
	i := 0
	f.Server.ingestFrame(bufs[i], &dec, netip.AddrPort{}) // warm the decoder slices
	i++
	allocs := testing.AllocsPerRun(100, func() {
		f.Server.ingestFrame(bufs[i], &dec, netip.AddrPort{})
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state ingestFrame allocates %.1f/op, want 0", allocs)
	}
}
