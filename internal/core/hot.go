package core

import (
	"math"
	"sync/atomic"

	"swwd/internal/runnable"
)

// This file holds the lock-free heartbeat hot path state. The design goal
// is the paper's "minimize performance penalty" requirement (§5, Table 2):
// a heartbeat from a healthy runnable must cost a handful of uncontended
// atomic operations, never a global lock. The layout follows three rules:
//
//   - Per-runnable counters (AC, ARC, CCA, CCAR) and the Activation Status
//     live in a cache-line-padded hotState so heartbeats from different
//     runnables never write the same cache line (no false sharing). AC and
//     ARC share one 64-bit word, so recording a heartbeat in both is a
//     single atomic add.
//   - The program-flow look-up table is an immutable snapshot swapped with
//     an atomic pointer (copy-on-write on the rare AddFlowPair), so the
//     per-beat flow check is two loads and a bit test.
//   - PFC predecessor tracking shards by task: each task owns a padded
//     atomic register, and the per-beat read-predecessor/set-current step
//     is one atomic exchange. (An earlier iteration guarded the registers
//     with 16 sharded mutexes; benchmarking showed the uncontended
//     lock/unlock pair alone cost more than half of the seed's entire
//     hot path, so the shards degenerated to one lock-free register per
//     task — perfect sharding.)
//
// The cold path — detections, the TSI unit, configuration — stays behind
// the watchdog's single mutex; it runs only when something is wrong or
// being reconfigured.

// cacheLineSize is the assumed coherence granularity. Padding to two lines
// also defeats the adjacent-line prefetcher on common x86 parts.
const cacheLineSize = 64

// eagerDisabled parks the eager arrival limit out of reach so the hot path
// pays a single always-false compare when the eager check is off.
const eagerDisabled = math.MaxUint32

// hotState is the lock-free heartbeat-monitoring state of one runnable
// (§3.3): the Aliveness Counter, Arrival Rate Counter, the two cycle
// counters and the Activation Status bit, all updated with atomics.
//
// Ownership discipline:
//
//   - acArc packs AC (high 32 bits) and ARC (low 32 bits) into one word,
//     so the hot path records a heartbeat in both counters with a single
//     atomic add. Window closes clear one half with a CAS loop (cold,
//     once per expired window). The packing is sound because both halves
//     reset every few monitoring cycles; a window would need 2^32 beats
//     for ARC to carry into AC.
//   - active gates the counters; it is written by Activate/Deactivate and
//     the treatment paths (cold).
//   - cca and ccar are written only by Cycle and by counter resets; the
//     hot path never touches them.
//   - eagerLimit caches the immediate arrival-rate trip point
//     (MaxArrivals when armed, eagerDisabled otherwise) so the hot path
//     needs no hypothesis load.
//   - hyp is the installed fault hypothesis, replaced wholesale by
//     SetHypothesis; Cycle reads it once per runnable per sweep.
//   - tid is the hosting task, precomputed at construction and immutable
//     thereafter; keeping it on the runnable's own cache line saves the
//     compat wrapper a second slice load.
//   - beatsAcc is the banked half of the lifetime heartbeat counter
//     feeding the telemetry Snapshot. The hot path never touches it:
//     every beat already lands in AC, so whenever AC is about to be
//     consumed (a window close) or discarded (a counter reset), the cold
//     path folds the outgoing AC into beatsAcc first. Lifetime beats are
//     then beatsAcc + live AC — the cumulative "beats seen while active"
//     series at zero added cost per beat.
type hotState struct {
	acArc      atomic.Uint64
	beatsAcc   atomic.Uint64
	active     atomic.Uint32
	cca        atomic.Uint32
	ccar       atomic.Uint32
	eagerLimit atomic.Uint32
	hyp        atomic.Pointer[Hypothesis]
	tid        runnable.TaskID

	_ [2*cacheLineSize - 48]byte
}

// addBeat records one heartbeat in AC and ARC with a single atomic add
// and returns the packed post-add value.
func (h *hotState) addBeat() uint64 { return h.acArc.Add(1<<32 | 1) }

// loadAC returns the current Aliveness Counter.
func (h *hotState) loadAC() uint32 { return uint32(h.acArc.Load() >> 32) }

// loadARC returns the current Arrival Rate Counter.
func (h *hotState) loadARC() uint32 { return uint32(h.acArc.Load()) }

// closeAliveness atomically zeroes AC, preserving ARC, and returns the
// closed window's AC. Concurrent heartbeats land in either the closing or
// the fresh window, exactly as with a dedicated counter swap. The closed
// window's beats are banked into the lifetime counter here, so the
// telemetry series never loses them to the reset.
func (h *hotState) closeAliveness() uint32 {
	for {
		old := h.acArc.Load()
		if h.acArc.CompareAndSwap(old, old&(1<<32-1)) {
			ac := uint32(old >> 32)
			h.bankBeats(ac)
			return ac
		}
	}
}

// closeArrival atomically zeroes ARC, preserving AC, and returns the
// closed window's ARC.
func (h *hotState) closeArrival() uint32 {
	for {
		old := h.acArc.Load()
		if h.acArc.CompareAndSwap(old, old&^uint64(1<<32-1)) {
			return uint32(old)
		}
	}
}

// resetCounters zeroes AC, ARC, CCA and CCAR ("reset to zero, if the
// periods ... expire or an error is detected", §3.3; also on activation
// changes and fault treatment). The discarded AC is banked into the
// lifetime beat counter first so the telemetry series survives resets.
// A beat racing the reset lands on either side of it, exactly as the
// monitoring semantics already allow.
func (h *hotState) resetCounters() {
	h.bankBeats(h.loadAC())
	h.acArc.Store(0)
	h.cca.Store(0)
	h.ccar.Store(0)
}

// bankBeats folds an AC amount that is about to be consumed or
// discarded into the lifetime beat accumulator.
func (h *hotState) bankBeats(ac uint32) {
	if ac != 0 {
		h.beatsAcc.Add(uint64(ac))
	}
}

// lifetimeBeats reports the cumulative heartbeats recorded while the
// runnable's Activation Status was on: the banked closed windows plus
// the live AC. The two loads are individually atomic; a window closing
// between them can transiently under-report by that window, which the
// next read corrects.
func (h *hotState) lifetimeBeats() uint64 {
	return h.beatsAcc.Load() + uint64(h.loadAC())
}

// eagerLimitFor computes the hot-path arrival trip point for a hypothesis.
func eagerLimitFor(eager bool, h Hypothesis) uint32 {
	if !eager || h.ArrivalCycles <= 0 || h.MaxArrivals <= 0 {
		return eagerDisabled
	}
	if uint64(h.MaxArrivals) >= uint64(eagerDisabled) {
		return eagerDisabled
	}
	return uint32(h.MaxArrivals)
}

// flowTable is an immutable snapshot of the PFC configuration: which
// runnables are enrolled and which successor pairs are allowed (§3.4).
// Readers load it once per heartbeat through an atomic pointer; writers
// clone-and-swap under the watchdog mutex.
type flowTable struct {
	words int
	// monitored is a bitset over runnable IDs of PFC-enrolled runnables.
	monitored []uint64
	// successors[p] is a bitset over runnable IDs allowed to follow p.
	successors [][]uint64
}

// newFlowTable returns an empty table for n runnables.
func newFlowTable(n int) *flowTable {
	words := (n + 63) / 64
	if words == 0 {
		words = 1
	}
	t := &flowTable{
		words:      words,
		monitored:  make([]uint64, words),
		successors: make([][]uint64, n),
	}
	for i := range t.successors {
		t.successors[i] = make([]uint64, words)
	}
	return t
}

// clone deep-copies the table for copy-on-write mutation.
func (t *flowTable) clone() *flowTable {
	nt := &flowTable{
		words:      t.words,
		monitored:  append([]uint64(nil), t.monitored...),
		successors: make([][]uint64, len(t.successors)),
	}
	for i := range t.successors {
		nt.successors[i] = append([]uint64(nil), t.successors[i]...)
	}
	return nt
}

// isMonitored reports whether rid is PFC-enrolled. rid must be in range.
func (t *flowTable) isMonitored(rid runnable.ID) bool {
	return t.monitored[uint(rid)>>6]&(1<<(uint(rid)&63)) != 0
}

// setMonitored enrols rid. Callers mutate only fresh clones.
func (t *flowTable) setMonitored(rid runnable.ID) {
	t.monitored[uint(rid)>>6] |= 1 << (uint(rid) & 63)
}

// allowed reports whether succ may follow pred per the look-up table.
func (t *flowTable) allowed(pred, succ runnable.ID) bool {
	return t.successors[pred][uint(succ)>>6]&(1<<(uint(succ)&63)) != 0
}

// addPair allows succ after pred. Callers mutate only fresh clones.
func (t *flowTable) addPair(pred, succ runnable.ID) {
	t.successors[pred][uint(succ)>>6] |= 1 << (uint(succ) & 63)
	t.setMonitored(pred)
	t.setMonitored(succ)
}

// predReg is the per-task PFC predecessor register ("the previously
// executed monitored runnable"), padded so neighbouring tasks do not
// share a cache line. The beat path reads-and-replaces it with a single
// atomic exchange — predecessor tracking sharded by task with one
// lock-free register per shard.
type predReg struct {
	last atomic.Int64 // runnable.ID; runnable.NoID when no predecessor
	_    [cacheLineSize - 8]byte
}
