package osek

import (
	"fmt"
	"time"
)

// ISRID identifies a category-2 interrupt service routine.
type ISRID int

// isr is a category-2 ISR: it runs above every task priority, consumes
// CPU time, and may call OS services (ActivateTask, SetEvent) from its
// body — the OSEK interrupt model the validator's bus receive paths use.
type isr struct {
	id    ISRID
	name  string
	exec  time.Duration
	body  func()
	count uint64
}

// DeclareISR registers a category-2 ISR with its execution time and body.
// Must be called before Start.
func (o *OS) DeclareISR(name string, exec time.Duration, body func()) (ISRID, error) {
	if o.started {
		return -1, fmt.Errorf("osek: DeclareISR %q after Start: %w", name, ErrAccess)
	}
	if exec < 0 {
		return -1, fmt.Errorf("osek: DeclareISR %q: negative execution time: %w", name, ErrValue)
	}
	id := ISRID(len(o.isrs))
	o.isrs = append(o.isrs, &isr{id: id, name: name, exec: exec, body: body})
	return id, nil
}

// RaiseISR requests execution of the ISR at the current instant.
// Interrupts preempt the running task immediately; further interrupts
// raised while one is in service are queued FIFO (a single interrupt
// priority level).
func (o *OS) RaiseISR(id ISRID) error {
	if int(id) < 0 || int(id) >= len(o.isrs) {
		return fmt.Errorf("osek: ISR id %d: %w", id, ErrID)
	}
	o.isrQueue = append(o.isrQueue, o.isrs[id])
	if !o.isrActive {
		o.serviceISR()
	}
	return nil
}

// ISRCount reports how often the ISR has completed.
func (o *OS) ISRCount(id ISRID) (uint64, error) {
	if int(id) < 0 || int(id) >= len(o.isrs) {
		return 0, fmt.Errorf("osek: ISR id %d: %w", id, ErrID)
	}
	return o.isrs[id].count, nil
}

// serviceISR starts the next queued ISR: the running task is preempted
// and the CPU is occupied for the ISR's execution time, after which the
// body runs and normal scheduling resumes.
func (o *OS) serviceISR() {
	next := o.isrQueue[0]
	o.isrQueue = o.isrQueue[1:]
	o.isrActive = true
	if o.running != nil {
		o.preempt(o.running)
	}
	o.kernel.After(next.exec, func() {
		next.count++
		if next.body != nil {
			next.body()
		}
		if len(o.isrQueue) > 0 {
			o.serviceISR()
			return
		}
		o.isrActive = false
		o.dispatch()
	})
}
