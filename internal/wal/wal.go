package wal

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// Defaults for Option zero values.
const (
	// DefaultSegmentBytes is the rotation threshold of one segment.
	DefaultSegmentBytes = 8 << 20
	// DefaultSyncInterval is the group-commit fsync cadence: records
	// are acknowledged (durable) at most this long after they were
	// appended.
	DefaultSyncInterval = 50 * time.Millisecond
	// DefaultRetainSegments is how many rotated segments are kept.
	DefaultRetainSegments = 64
	// DefaultRingSize is the hand-off ring capacity in records.
	DefaultRingSize = 1024

	// flushChunk bounds the encode buffer: a drain writes to the OS at
	// least every flushChunk bytes so one enormous backlog cannot grow
	// the buffer unboundedly.
	flushChunk = 1 << 20
)

// ErrClosed is reported by Sync and Close after the WAL shut down.
var ErrClosed = errors.New("wal: closed")

// Option tunes an opened WAL.
type Option func(*options)

type options struct {
	segmentBytes int64
	syncInterval time.Duration
	syncEvery    bool // fsync after every write batch (max durability)
	retainSegs   int
	retainAge    time.Duration
	ringSize     int
}

// WithSegmentBytes sets the segment rotation threshold.
func WithSegmentBytes(n int64) Option {
	return func(o *options) {
		if n > 0 {
			o.segmentBytes = n
		}
	}
}

// WithSyncInterval sets the group-commit fsync cadence. d <= 0 selects
// maximum durability: an fsync after every write batch.
func WithSyncInterval(d time.Duration) Option {
	return func(o *options) {
		o.syncInterval = d
		o.syncEvery = d <= 0
	}
}

// WithRetainSegments keeps at most n segments (including the active
// one); older segments are removed at rotation. n < 1 is ignored.
func WithRetainSegments(n int) Option {
	return func(o *options) {
		if n >= 1 {
			o.retainSegs = n
		}
	}
}

// WithRetainAge additionally removes rotated segments not modified for
// d (0 disables age-based compaction).
func WithRetainAge(d time.Duration) Option {
	return func(o *options) { o.retainAge = d }
}

// WithRingSize sets the hand-off ring capacity (rounded up to a power
// of two).
func WithRingSize(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.ringSize = n
		}
	}
}

// RecoveryStats reports what Open found and repaired.
type RecoveryStats struct {
	// Segments is the segment count after recovery; Records the intact
	// records scanned; LastSeq the highest surviving sequence number (0
	// on a fresh log).
	Segments int
	Records  uint64
	LastSeq  uint64
	// TornBytes is how many trailing bytes were truncated as an
	// interrupted append; SegmentsDropped how many whole segments after
	// the corruption point were removed.
	TornBytes       int64
	SegmentsDropped int
}

// Stats is a point-in-time copy of the WAL's counters.
type Stats struct {
	// Appended counts records accepted into the hand-off ring; Dropped
	// the records refused because the ring was full or the WAL closed
	// (the producers never block).
	Appended uint64
	Dropped  uint64
	// Written counts records handed to the OS; Synced the records
	// covered by a completed fsync — the durability horizon. SyncedSeq
	// is the last acknowledged sequence number: every record with
	// Seq <= SyncedSeq survives kill -9.
	Written   uint64
	Synced    uint64
	SyncedSeq uint64
	// Syncs counts fsync calls; BytesWritten the record bytes written;
	// WriteErrors failed writes or fsyncs (records in a failed batch
	// are lost and the health probe degrades).
	Syncs        uint64
	BytesWritten uint64
	WriteErrors  uint64
	// Rotations counts segment rotations; SegmentsRemoved the segments
	// deleted by retention; Segments the current on-disk segment count.
	Rotations       uint64
	SegmentsRemoved uint64
	Segments        int
	// RingDepth is the approximate hand-off backlog; LastSyncNs the
	// wall clock of the last completed fsync (0 = never); WriterBeatNs
	// the writer goroutine's last liveness beat — both in Unix
	// nanoseconds, for the /healthz probe.
	RingDepth    int
	LastSyncNs   int64
	WriterBeatNs int64
}

// WAL is an opened write-ahead log: concurrent producers append through
// a lock-free ring, one writer goroutine owns the segment files.
type WAL struct {
	dir      string
	opt      options
	ring     *ring
	wake     chan struct{}
	syncReq  chan chan error
	stop     chan struct{}
	done     chan struct{}
	recovery RecoveryStats

	// Writer-goroutine-only state.
	f           *os.File
	curSize     int64
	encBuf      []byte
	nextSeq     uint64
	writtenSeq  uint64
	pendingSync bool

	// Counters shared with Stats readers.
	appended  atomic.Uint64
	dropped   atomic.Uint64
	written   atomic.Uint64
	synced    atomic.Uint64
	syncedSeq atomic.Uint64
	syncs     atomic.Uint64
	bytes     atomic.Uint64
	writeErrs atomic.Uint64
	rotations atomic.Uint64
	removed   atomic.Uint64
	segments  atomic.Int64
	lastSync  atomic.Int64
	beatNs    atomic.Int64
	closed    atomic.Bool
}

// Open recovers the log in dir (created if missing) — scanning every
// segment, truncating the torn tail a crash left behind, dropping
// segments past a corruption point — and starts the writer goroutine.
// Sequence numbers continue after the last intact record.
func Open(dir string, opts ...Option) (*WAL, error) {
	opt := options{
		segmentBytes: DefaultSegmentBytes,
		syncInterval: DefaultSyncInterval,
		retainSegs:   DefaultRetainSegments,
		ringSize:     DefaultRingSize,
	}
	for _, o := range opts {
		o(&opt)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{
		dir:     dir,
		opt:     opt,
		ring:    newRing(opt.ringSize),
		wake:    make(chan struct{}, 1),
		syncReq: make(chan chan error),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if err := w.recover(); err != nil {
		return nil, err
	}
	w.beatNs.Store(time.Now().UnixNano())
	go w.run()
	return w, nil
}

// Recovery reports what Open found and repaired.
func (w *WAL) Recovery() RecoveryStats { return w.recovery }

// Dir reports the log directory.
func (w *WAL) Dir() string { return w.dir }

// recover scans the segments, truncates the torn tail and opens the
// last segment for appending (or creates the first one).
func (w *WAL) recover() error {
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	rs := RecoveryStats{}
	var want uint64
	broken := -1 // index of the segment where scanning stopped
	var validOff int64
	for i := range segs {
		data, err := os.ReadFile(segs[i].path)
		if err != nil {
			return err
		}
		off, scanErr := scanSegment(data, &want, func(r *Record) {
			rs.Records++
			rs.LastSeq = r.Seq
		})
		if scanErr != nil {
			broken, validOff = i, off
			break
		}
	}
	if broken >= 0 {
		// Truncate the interrupted segment at the last intact record —
		// or remove it outright when not even the header survived —
		// and drop everything after it: records beyond a corruption
		// point have no contiguous history to belong to.
		seg := segs[broken]
		rs.TornBytes += seg.size - validOff
		if validOff < segHeaderSize {
			if err := os.Remove(seg.path); err != nil {
				return err
			}
			rs.SegmentsDropped++
			segs = segs[:broken]
		} else {
			if err := os.Truncate(seg.path, validOff); err != nil {
				return err
			}
			segs = segs[:broken+1]
		}
		// Remove every segment past the corruption point.
		all, err := listSegments(w.dir)
		if err != nil {
			return err
		}
		for _, s := range all {
			keep := false
			for _, k := range segs {
				if s.path == k.path {
					keep = true
					break
				}
			}
			if !keep {
				rs.TornBytes += s.size
				rs.SegmentsDropped++
				if err := os.Remove(s.path); err != nil {
					return err
				}
			}
		}
	}

	w.nextSeq = rs.LastSeq + 1
	if len(segs) == 0 {
		f, err := createSegment(w.dir, w.nextSeq)
		if err != nil {
			return err
		}
		w.f, w.curSize = f, segHeaderSize
		w.segments.Store(1)
		rs.Segments = 1
	} else {
		last := segs[len(segs)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		w.f, w.curSize = f, fi.Size()
		w.segments.Store(int64(len(segs)))
		rs.Segments = len(segs)
	}
	if rs.TornBytes > 0 || rs.SegmentsDropped > 0 {
		if err := syncDir(w.dir); err != nil {
			w.f.Close()
			return err
		}
	}
	w.writtenSeq = rs.LastSeq
	w.syncedSeq.Store(rs.LastSeq)
	w.recovery = rs
	return nil
}

// AppendDetection hands a detection record to the writer. It never
// blocks; false means the ring was full (or the WAL closed) and the
// record was dropped and counted. Safe from any goroutine, including
// under the watchdog's cold-path mutex.
func (w *WAL) AppendDetection(d Detection) bool {
	r := Record{Kind: KindDetection, Det: d}
	return w.append(&r)
}

// AppendAction hands a treatment-action record to the writer.
func (w *WAL) AppendAction(a Action) bool {
	r := Record{Kind: KindAction, Act: a}
	return w.append(&r)
}

// AppendDelta hands an ingest counter-delta record to the writer.
func (w *WAL) AppendDelta(d Delta) bool {
	r := Record{Kind: KindDelta, Delta: d}
	return w.append(&r)
}

func (w *WAL) append(r *Record) bool {
	if w.closed.Load() {
		w.dropped.Add(1)
		return false
	}
	r.TimeNs = time.Now().UnixNano()
	if !w.ring.push(r) {
		w.dropped.Add(1)
		return false
	}
	w.appended.Add(1)
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return true
}

// Sync forces a group commit: it returns once every record appended
// before the call is fsync'd (or the write failed).
func (w *WAL) Sync() error {
	ch := make(chan error, 1)
	select {
	case w.syncReq <- ch:
		return <-ch
	case <-w.done:
		return ErrClosed
	}
}

// Close drains the ring, commits the tail and stops the writer.
func (w *WAL) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		<-w.done
		return nil
	}
	close(w.stop)
	<-w.done
	return nil
}

// Stats returns a point-in-time copy of the counters.
func (w *WAL) Stats() Stats {
	return Stats{
		Appended:        w.appended.Load(),
		Dropped:         w.dropped.Load(),
		Written:         w.written.Load(),
		Synced:          w.synced.Load(),
		SyncedSeq:       w.syncedSeq.Load(),
		Syncs:           w.syncs.Load(),
		BytesWritten:    w.bytes.Load(),
		WriteErrors:     w.writeErrs.Load(),
		Rotations:       w.rotations.Load(),
		SegmentsRemoved: w.removed.Load(),
		Segments:        int(w.segments.Load()),
		RingDepth:       w.ring.depth(),
		LastSyncNs:      w.lastSync.Load(),
		WriterBeatNs:    w.beatNs.Load(),
	}
}

// Healthy reports whether the writer goroutine has shown liveness
// within staleAfter and has not hit a write error. The /healthz probes
// call it with a few sync intervals of slack.
func (w *WAL) Healthy(staleAfter time.Duration) bool {
	if w.closed.Load() || w.writeErrs.Load() > 0 {
		return false
	}
	return time.Now().UnixNano()-w.beatNs.Load() < int64(staleAfter)
}

// run is the writer goroutine: drain, encode, write, group-commit.
func (w *WAL) run() {
	tick := w.opt.syncInterval
	if tick <= 0 {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	var rec Record
	for {
		var ack chan error
		select {
		case <-w.wake:
		case <-ticker.C:
		case ack = <-w.syncReq:
		case <-w.stop:
			w.drainAndWrite(&rec)
			_ = w.fsync()
			if w.f != nil {
				_ = w.f.Close()
			}
			close(w.done)
			return
		}
		now := time.Now().UnixNano()
		w.beatNs.Store(now)
		w.drainAndWrite(&rec)
		due := w.opt.syncEvery || now-w.lastSync.Load() >= int64(w.opt.syncInterval)
		if ack != nil || (due && w.pendingSync) {
			err := w.fsync()
			if ack != nil {
				ack <- err
			}
		}
	}
}

// drainAndWrite empties the ring into the encode buffer, flushing to
// the current segment in flushChunk slices and rotating at record
// granularity: a record that would push the active segment past its
// size budget opens the next segment instead (records never span
// segments).
func (w *WAL) drainAndWrite(rec *Record) {
	buf := w.encBuf[:0]
	n, firstSeq := 0, uint64(0)
	flush := func() {
		if n > 0 {
			w.writeChunk(buf, n, firstSeq)
			buf, n = buf[:0], 0
		}
	}
	for w.ring.pop(rec) {
		rec.Seq = w.nextSeq
		w.nextSeq++
		recLen := int64(frameOverhead + recPrefix + payloadLen(rec.Kind))
		if w.curSize+int64(len(buf))+recLen > w.opt.segmentBytes &&
			w.curSize+int64(len(buf)) > segHeaderSize {
			flush()
			w.rotate(rec.Seq)
		}
		if n == 0 {
			firstSeq = rec.Seq
		}
		buf = appendRecord(buf, rec)
		n++
		if len(buf) >= flushChunk {
			flush()
		}
	}
	flush()
	w.encBuf = buf[:0]
}

// writeChunk appends one encoded batch to the active segment.
func (w *WAL) writeChunk(buf []byte, n int, firstSeq uint64) {
	if w.f == nil {
		w.writeErrs.Add(1)
		return
	}
	if _, err := w.f.Write(buf); err != nil {
		w.writeErrs.Add(1)
		return
	}
	w.curSize += int64(len(buf))
	w.writtenSeq = firstSeq + uint64(n) - 1
	w.written.Add(uint64(n))
	w.bytes.Add(uint64(len(buf)))
	w.pendingSync = true
}

// fsync completes the group commit: everything written so far becomes
// acknowledged. A no-op when nothing is pending.
func (w *WAL) fsync() error {
	if !w.pendingSync || w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.writeErrs.Add(1)
		return err
	}
	w.pendingSync = false
	w.syncs.Add(1)
	w.syncedSeq.Store(w.writtenSeq)
	w.synced.Store(w.written.Load())
	w.lastSync.Store(time.Now().UnixNano())
	return nil
}

// rotate commits and closes the active segment, starts a fresh one
// whose name is the next record's sequence number, and applies the
// retention policy to the rotated-out tail.
func (w *WAL) rotate(nextFirst uint64) {
	if err := w.fsync(); err != nil {
		return // keep appending to the old segment; the error is counted
	}
	_ = w.f.Close()
	f, err := createSegment(w.dir, nextFirst)
	if err != nil {
		w.writeErrs.Add(1)
		w.f = nil
		return
	}
	w.f, w.curSize = f, segHeaderSize
	w.rotations.Add(1)
	w.segments.Add(1)
	w.applyRetention()
	if err := syncDir(w.dir); err != nil {
		w.writeErrs.Add(1)
	}
}

// applyRetention removes the oldest rotated segments beyond the
// configured count and age budgets. The active segment never goes.
func (w *WAL) applyRetention() {
	segs, err := listSegments(w.dir)
	if err != nil {
		w.writeErrs.Add(1)
		return
	}
	if len(segs) == 0 {
		return
	}
	cutoff := int64(0)
	if w.opt.retainAge > 0 {
		cutoff = time.Now().Add(-w.opt.retainAge).UnixNano()
	}
	for i, s := range segs[:len(segs)-1] { // never the active (newest) segment
		excess := len(segs)-i > w.opt.retainSegs
		tooOld := cutoff > 0 && s.modNs < cutoff
		if !excess && !tooOld {
			break
		}
		if err := os.Remove(s.path); err != nil {
			w.writeErrs.Add(1)
			return
		}
		w.removed.Add(1)
		w.segments.Add(-1)
	}
}

// syncDir fsyncs the log directory so segment creates and removes are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
