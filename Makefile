GO ?= go

.PHONY: all build vet test test-short race bench bench-hotpath bench-json bench-suite bench-baseline bench-gate soak soak-scale wal-soak chaos chaos-smoke cover experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector run, including the Beat/Cycle/Activate stress tests.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Just the lock-free hot-path benchmarks (README §Performance).
bench-hotpath:
	$(GO) test -run xxx -bench 'Heartbeat|MonitorBeat|ConcurrentCycle|WatchdogCycle' -benchmem -count=3 .

# Machine-readable benchmark suites under ./bench/ (gitignored): the
# cycle-sweep + hot-path suite, the telemetry suite, the wire/ingest
# suite (heartbeat + command codecs), the treatment-engine suite, the
# WAL suite (append hand-off + replay throughput) and the calibration
# suite (estimator sampling, Suggest derivation, beat-path parity).
# Override BENCHTIME for a quick smoke run: make bench-json BENCHTIME=1x
BENCHTIME ?= 1s
bench-json:
	mkdir -p bench
	$(GO) test -run xxx -bench 'CycleSweep|Heartbeat|MonitorBeat|ConcurrentCycle|WatchdogCycle' \
		-benchmem -benchtime $(BENCHTIME) . | tee bench/cycle.txt
	$(GO) run ./cmd/benchjson -o bench/BENCH_cycle.json bench/cycle.txt
	$(GO) test -run xxx -bench 'Snapshot|BeatWithStats|Journal' \
		-benchmem -benchtime $(BENCHTIME) . | tee bench/stats.txt
	$(GO) run ./cmd/benchjson -o bench/BENCH_stats.json bench/stats.txt
	$(GO) test -run xxx -bench 'WireDecode|WireEncode|CommandEncode|CommandDecode|IngestFrame' \
		-benchmem -benchtime $(BENCHTIME) ./internal/wire ./internal/ingest | tee bench/wire.txt
	$(GO) run ./cmd/benchjson -o bench/BENCH_wire.json bench/wire.txt
	$(GO) test -run xxx -bench 'TreatDecide' \
		-benchmem -benchtime $(BENCHTIME) ./internal/treat | tee bench/treat.txt
	$(GO) run ./cmd/benchjson -o bench/BENCH_treat.json bench/treat.txt
	$(GO) test -run xxx -bench 'IngestMT' \
		-benchmem -benchtime $(BENCHTIME) ./internal/ingest | tee bench/ingest_mt.txt
	$(GO) run ./cmd/benchjson -o bench/BENCH_ingest_mt.json bench/ingest_mt.txt
	$(GO) test -run xxx -bench 'WALHandoff|WALAppend|WALEncodeRecord|WALReplay' \
		-benchmem -benchtime $(BENCHTIME) ./internal/wal | tee bench/wal.txt
	$(GO) run ./cmd/benchjson -o bench/BENCH_wal.json bench/wal.txt
	$(GO) test -run xxx -bench 'CalibEstimatorSample|CalibSuggest|MonitorBeatCalib' \
		-benchmem -benchtime $(BENCHTIME) . | tee bench/calib.txt
	$(GO) run ./cmd/benchjson -o bench/BENCH_calib.json bench/calib.txt

# Regenerate one benchmark suite instead of all seven: pick SUITE from
# cycle, stats, wire, treat, ingest_mt, wal or calib. Refreshes only that
# suite's bench/BENCH_<suite>.json; copy it over the repo-root baseline
# by hand if the change is intentional.
# Example: make bench-suite SUITE=wal BENCHTIME=1x
SUITE ?= wal
bench-suite:
	mkdir -p bench
	@case "$(SUITE)" in \
	cycle)     pat='CycleSweep|Heartbeat|MonitorBeat|ConcurrentCycle|WatchdogCycle'; pkgs='.' ;; \
	stats)     pat='Snapshot|BeatWithStats|Journal'; pkgs='.' ;; \
	wire)      pat='WireDecode|WireEncode|CommandEncode|CommandDecode|IngestFrame'; pkgs='./internal/wire ./internal/ingest' ;; \
	treat)     pat='TreatDecide'; pkgs='./internal/treat' ;; \
	ingest_mt) pat='IngestMT'; pkgs='./internal/ingest' ;; \
	wal)       pat='WALHandoff|WALAppend|WALEncodeRecord|WALReplay'; pkgs='./internal/wal' ;; \
	calib)     pat='CalibEstimatorSample|CalibSuggest|MonitorBeatCalib'; pkgs='.' ;; \
	*) echo "unknown SUITE '$(SUITE)' (want cycle, stats, wire, treat, ingest_mt, wal or calib)"; exit 2 ;; \
	esac; \
	set -x; \
	$(GO) test -run xxx -bench "$$pat" -benchmem -benchtime $(BENCHTIME) $$pkgs | tee bench/$(SUITE).txt && \
	$(GO) run ./cmd/benchjson -o bench/BENCH_$(SUITE).json bench/$(SUITE).txt

# Refresh the committed baselines from a fresh full-length run: the
# per-suite documents at the repo root plus the merged gate baseline.
bench-baseline: bench-json
	cp bench/BENCH_cycle.json BENCH_cycle.json
	cp bench/BENCH_stats.json BENCH_stats.json
	cp bench/BENCH_wire.json BENCH_wire.json
	cp bench/BENCH_treat.json BENCH_treat.json
	cp bench/BENCH_ingest_mt.json BENCH_ingest_mt.json
	cp bench/BENCH_wal.json BENCH_wal.json
	cp bench/BENCH_calib.json BENCH_calib.json
	$(GO) run ./cmd/benchdiff -merge -o BENCH_baseline.json \
		bench/BENCH_cycle.json bench/BENCH_stats.json bench/BENCH_wire.json \
		bench/BENCH_treat.json bench/BENCH_ingest_mt.json bench/BENCH_wal.json \
		bench/BENCH_calib.json

# Benchmark-regression gate: fresh results vs the committed baseline.
# Fails on >30% ns/op regressions or any allocation on the gated
# zero-alloc hot paths (see cmd/benchdiff).
bench-gate: bench-json
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json \
		bench/BENCH_cycle.json bench/BENCH_stats.json bench/BENCH_wire.json \
		bench/BENCH_treat.json bench/BENCH_ingest_mt.json bench/BENCH_wal.json \
		bench/BENCH_calib.json

# Smoke-tier loopback soak: 1000 swwdclient nodes x 10 runnables over
# real UDP, with a mid-run client kill (see internal/ingest/soak_test.go),
# plus the treatment soak: kill + quarantine + scale-down + recovery over
# the wire v3 command channel (see internal/ingest/treat_soak_test.go).
soak:
	$(GO) test -run 'TestIngestSoak|TestIngestTreatSoak' -count=1 -v ./internal/ingest

# WAL crash soak: repeated kill -9 mid-group-commit + recovery rounds
# verifying every acknowledged record survives bit-identically (see
# internal/wal/crash_test.go).
wal-soak:
	SWWD_WAL_SOAK=1 $(GO) test -run TestWALCrashSoak -count=1 -v -timeout 10m ./internal/wal

# Scaled soak: 100k synthetic nodes through the SO_REUSEPORT +
# recvmmsg read path (see internal/ingest/soak_mt_test.go). Un-raced by
# design — the fleet does not fit the race runtime.
soak-scale:
	SWWD_SOAK_SCALE=1 $(GO) test -run TestIngestScaledSoak -count=1 -v -timeout 15m ./internal/ingest

# Deterministic chaos smoke: every named campaign under fixed seeds
# (see internal/chaos/campaigns.go). Override the seed set with
# SWWD_CHAOS_SEEDS (comma-separated) or a single SWWD_CHAOS_SEED; add
# -race via GOFLAGS, e.g. make chaos-smoke GOFLAGS=-race
SWWD_CHAOS_SEEDS ?= 1,2,3
chaos-smoke:
	SWWD_CHAOS_SEEDS=$(SWWD_CHAOS_SEEDS) \
		$(GO) test -run 'TestChaosCampaigns|TestChaosBrokenOracle' -count=1 -v -timeout 20m ./internal/chaos

# Randomized nightly-style chaos gate: CHAOS_RUNS generated campaigns
# from one root seed. The run prints the root seed; re-running with
# SWWD_CHAOS_SEED=<that seed> reproduces the identical plans and
# verdicts. SWWD_CHAOS_OUT collects per-campaign JSON artifacts.
CHAOS_RUNS ?= 10
chaos:
	SWWD_CHAOS=1 SWWD_CHAOS_RUNS=$(CHAOS_RUNS) \
		$(GO) test -run TestChaosRandomized -count=1 -v -timeout 30m ./internal/chaos

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments

# Run all example programs (each terminates on its own).
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/safespeed
	$(GO) run ./examples/safelane
	$(GO) run ./examples/gateway
	$(GO) run ./examples/specfile
	$(GO) run ./examples/calibrate

clean:
	rm -f cover.out test_output.txt
	rm -rf bench
