// Package chaos is the campaign engine validating the networked
// watchdog stack under adversarial conditions. The paper injects
// errors from outside the system under test (§4.5's ControlDesk
// sliders); internal/inject reproduces that for the simulated ECU, but
// the networked stack of PRs 4–6 — swwdclient reporters, the wire v3
// protocol, the ingest server, link supervision and the treatment
// control plane — needs faults *on the wire*: loss, duplication,
// reordering, partitions, clock skew, byzantine mutation, restart
// storms. This package composes those into declarative, seeded
// campaigns over the loopback soak topology and checks each against an
// oracle that knows exactly which counters may move and which
// link/aliveness faults may fire.
//
// The moving parts:
//
//   - Network (link.go) interposes a fault-injecting conn between each
//     reporter and the server via swwdclient.WithDialer. Per-node Rules
//     describe the active faults; every probabilistic decision draws
//     from a per-node, per-direction RNG stream derived from the
//     campaign seed.
//   - Fault (faults.go) is one schedulable manipulation: link rules on
//     a victim set, a restart wave, or a bridged process-level
//     injection (internal/inject) such as hanging a runnable.
//   - Scenario is the declarative campaign: topology, schedule of
//     Steps, victim set and Oracle. Runtime.Run (run.go) builds the
//     fleet, drives the schedule in real time and hands the collected
//     Result to the oracle.
//   - Oracle (oracle.go) asserts which ingest counters moved, which
//     runnables faulted, that healthy nodes stayed silent, and that
//     treat.Replay of the recorded event trace reproduces the live
//     treatment actions.
//
// Reproducibility contract: the *plan* — everything the scenario will
// do, when, to whom, with what parameters — is a pure function of
// (scenario, seed); Scenario.Plan renders it and re-running with the
// same seed re-derives it bit for bit. Oracles therefore assert
// structural facts (this counter moved, that one stayed zero, this
// runnable faulted) rather than exact counts that depend on kernel
// scheduling.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"swwd/internal/calib"
	"swwd/internal/treat"
)

// Topology sizes the loopback fleet a scenario runs against. The zero
// value is completed by Defaults.
type Topology struct {
	// Nodes and RunnablesPerNode size the fleet.
	Nodes            int
	RunnablesPerNode int
	// Interval is the reporters' declared flush cadence; CyclePeriod the
	// watchdog sweep period; GraceFrames the missed-frame budget before
	// a link aliveness fault.
	Interval    time.Duration
	CyclePeriod time.Duration
	GraceFrames int
	// BeatEvery is the beat-loop tick; several beats coalesce per frame.
	BeatEvery time.Duration
	// Treatment, when set, attaches the fault-treatment control plane.
	Treatment *Treatment
	// Calibration, when set, attaches the online auto-calibration loop
	// (shadow-guarded staged hypothesis rollouts over the command
	// channel).
	Calibration *calib.Params
}

// Treatment configures the control plane for scenarios that exercise
// quarantine/recovery.
type Treatment struct {
	Edges  []treat.Edge
	Policy treat.Policy
}

// Defaults fills unset Topology fields with the standard chaos fleet:
// 4 nodes × 3 runnables at a 50 ms interval, 5 ms sweeps, 25 ms beats.
func (tp Topology) Defaults() Topology {
	if tp.Nodes == 0 {
		tp.Nodes = 4
	}
	if tp.RunnablesPerNode == 0 {
		tp.RunnablesPerNode = 3
	}
	if tp.Interval == 0 {
		tp.Interval = 50 * time.Millisecond
	}
	if tp.CyclePeriod == 0 {
		tp.CyclePeriod = 5 * time.Millisecond
	}
	if tp.GraceFrames == 0 {
		tp.GraceFrames = 4
	}
	if tp.BeatEvery == 0 {
		tp.BeatEvery = 25 * time.Millisecond
	}
	return tp
}

// Window is the link grace window: the silence budget before a link
// aliveness fault.
func (tp Topology) Window() time.Duration {
	return time.Duration(tp.GraceFrames) * tp.Interval
}

// Fault is one schedulable manipulation. Apply activates it against
// the running fleet, Revert removes it; Describe renders it for the
// plan, so it must be deterministic and parameter-complete.
type Fault interface {
	Describe() string
	Apply(rt *Runtime) error
	Revert(rt *Runtime) error
}

// Step schedules one fault on the campaign timeline. At is the offset
// from the start of the fault phase (after warm-up); For is the active
// duration, with zero meaning one-shot (Apply only, Revert immediately
// after — used for restart waves).
type Step struct {
	At    time.Duration
	For   time.Duration
	Fault Fault
}

// Scenario is one declarative campaign.
type Scenario struct {
	// Name identifies the campaign in logs, plans and artifacts.
	Name string
	// Seed is the campaign's root randomness; every RNG stream in the
	// run derives from it.
	Seed uint64
	// Topology sizes the fleet (zero fields completed by Defaults).
	Topology Topology
	// Warmup is how long the healthy fleet soaks before the first step;
	// Duration is the length of the fault phase measured from its start.
	Warmup   time.Duration
	Duration time.Duration
	// Steps is the fault schedule, offsets relative to the fault phase.
	Steps []Step
	// Oracle is checked against the collected Result after the run.
	Oracle Oracle
	// Notes documents the campaign's intent in plans and docs.
	Notes string
}

// Plan renders everything the scenario will do — topology, schedule,
// fault parameters — as a deterministic string. Two runs with the same
// (scenario, seed) produce identical plans; the nightly gate records
// the plan as the reproducibility witness.
func (sc *Scenario) Plan() string {
	tp := sc.Topology.Defaults()
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %s seed=%#x\n", sc.Name, sc.Seed)
	fmt.Fprintf(&b, "topology nodes=%d runnables=%d interval=%v cycle=%v grace=%d beat=%v treatment=%v calibration=%v\n",
		tp.Nodes, tp.RunnablesPerNode, tp.Interval, tp.CyclePeriod, tp.GraceFrames, tp.BeatEvery, tp.Treatment != nil, tp.Calibration != nil)
	fmt.Fprintf(&b, "phase warmup=%v duration=%v\n", sc.Warmup, sc.Duration)
	steps := append([]Step(nil), sc.Steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	for _, st := range steps {
		fmt.Fprintf(&b, "step at=%v for=%v %s\n", st.At, st.For, st.Fault.Describe())
	}
	return b.String()
}
