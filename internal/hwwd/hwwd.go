// Package hwwd models the ECU hardware watchdog the paper positions the
// Software Watchdog against (§2): "A hardware watchdog treats the
// embedded software as a whole. With the increasing density of
// applications on one ECU, the hardware watchdog should be supplemented
// with software services for the monitoring execution on a more detailed
// level."
//
// The model is the classic windowless timeout watchdog: it must be kicked
// (serviced) within its timeout or it fires and resets the ECU. In the
// validator a lowest-priority task performs the kicking, so the hardware
// watchdog catches total CPU monopolisation — the fault class the
// Software Watchdog's per-runnable units are *not* needed for — while
// staying blind to everything the paper's service detects.
package hwwd

import (
	"errors"
	"time"

	"swwd/internal/sim"
)

// Config parametrises the hardware watchdog.
type Config struct {
	Kernel *sim.Kernel
	// Timeout is the service deadline; a missing kick fires the watchdog.
	Timeout time.Duration
	// OnExpire runs when the watchdog fires — typically the ECU reset.
	// After firing, the watchdog re-arms itself (the reset system must
	// resume kicking).
	OnExpire func()
}

// Watchdog is one hardware watchdog instance.
type Watchdog struct {
	kernel   *sim.Kernel
	timeout  time.Duration
	onExpire func()

	ev      *sim.Event
	running bool

	kicks      uint64
	expiries   uint64
	lastExpiry sim.Time
}

// New validates the configuration.
func New(cfg Config) (*Watchdog, error) {
	if cfg.Kernel == nil {
		return nil, errors.New("hwwd: kernel is required")
	}
	if cfg.Timeout <= 0 {
		return nil, errors.New("hwwd: timeout must be positive")
	}
	return &Watchdog{kernel: cfg.Kernel, timeout: cfg.Timeout, onExpire: cfg.OnExpire}, nil
}

// Start arms the watchdog; the first kick is due within one timeout.
func (w *Watchdog) Start() error {
	if w.running {
		return errors.New("hwwd: already running")
	}
	w.running = true
	w.arm()
	return nil
}

// Stop disarms the watchdog (e.g. controlled shutdown).
func (w *Watchdog) Stop() {
	if !w.running {
		return
	}
	w.running = false
	w.kernel.Cancel(w.ev)
	w.ev = nil
}

// Kick services the watchdog, restarting the timeout. Kicking a stopped
// watchdog is a no-op.
func (w *Watchdog) Kick() {
	if !w.running {
		return
	}
	w.kicks++
	w.kernel.Cancel(w.ev)
	w.arm()
}

// Kicks reports how often the watchdog has been serviced.
func (w *Watchdog) Kicks() uint64 { return w.kicks }

// Expiries reports how often the watchdog has fired.
func (w *Watchdog) Expiries() uint64 { return w.expiries }

// LastExpiry reports the instant of the most recent firing (zero when it
// never fired).
func (w *Watchdog) LastExpiry() sim.Time { return w.lastExpiry }

func (w *Watchdog) arm() {
	w.ev = w.kernel.After(w.timeout, w.expire)
}

func (w *Watchdog) expire() {
	w.expiries++
	w.lastExpiry = w.kernel.Now()
	if w.onExpire != nil {
		w.onExpire()
	}
	if w.running {
		w.arm()
	}
}
