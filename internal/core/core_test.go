package core

import (
	"testing"
	"time"

	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// collector is a test Sink recording everything.
type collector struct {
	faults []Report
	states []StateEvent
}

func (c *collector) Fault(r Report)            { c.faults = append(c.faults, r) }
func (c *collector) StateChanged(e StateEvent) { c.states = append(c.states, e) }

// fixture builds the SafeSpeed-shaped model: one app, one task, three
// runnables A→B→C.
type fixture struct {
	t     *testing.T
	m     *runnable.Model
	clock *sim.ManualClock
	sink  *collector
	w     *Watchdog
	app   runnable.AppID
	task  runnable.TaskID
	a     runnable.ID
	b     runnable.ID
	c     runnable.ID
}

func newFixture(t *testing.T, mutate func(*Config)) *fixture {
	t.Helper()
	f := &fixture{t: t, m: runnable.NewModel(), clock: sim.NewManualClock(), sink: &collector{}}
	var err error
	f.app, err = f.m.AddApp("SafeSpeed", runnable.SafetyCritical)
	if err != nil {
		t.Fatalf("AddApp: %v", err)
	}
	f.task, err = f.m.AddTask(f.app, "SafeSpeedTask", 5)
	if err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	for i, name := range []string{"GetSensorValue", "SAFE_CC_process", "Speed_process"} {
		id, err := f.m.AddRunnable(f.task, name, 100*time.Microsecond, runnable.SafetyCritical)
		if err != nil {
			t.Fatalf("AddRunnable: %v", err)
		}
		switch i {
		case 0:
			f.a = id
		case 1:
			f.b = id
		case 2:
			f.c = id
		}
	}
	if err := f.m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	cfg := Config{Model: f.m, Clock: f.clock, Sink: f.sink}
	if mutate != nil {
		mutate(&cfg)
	}
	f.w, err = New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

// monitorAll installs a standard hypothesis on all three runnables and
// activates them: at least 1 heartbeat per 5 cycles, at most 7 per 5
// (one-per-cycle nominal dispatch fits; doubled dispatch does not).
func (f *fixture) monitorAll() {
	f.t.Helper()
	h := Hypothesis{AlivenessCycles: 5, MinHeartbeats: 1, ArrivalCycles: 5, MaxArrivals: 7}
	for _, rid := range []runnable.ID{f.a, f.b, f.c} {
		if err := f.w.SetHypothesis(rid, h); err != nil {
			f.t.Fatalf("SetHypothesis: %v", err)
		}
		if err := f.w.Activate(rid); err != nil {
			f.t.Fatalf("Activate: %v", err)
		}
	}
}

// spin advances n watchdog cycles, invoking beat before each Cycle call.
func (f *fixture) spin(n int, beat func(cycle int)) {
	for i := 0; i < n; i++ {
		if beat != nil {
			beat(i)
		}
		f.clock.Advance(10 * time.Millisecond)
		f.w.Cycle()
	}
}

func TestNewValidation(t *testing.T) {
	m := runnable.NewModel()
	if _, err := New(Config{Model: m, Clock: sim.NewManualClock()}); err == nil {
		t.Error("unfrozen model accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	app, _ := m.AddApp("A", runnable.QM)
	task, _ := m.AddTask(app, "T", 1)
	if _, err := m.AddRunnable(task, "R", time.Millisecond, runnable.QM); err != nil {
		t.Fatalf("AddRunnable: %v", err)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if _, err := New(Config{Model: m}); err == nil {
		t.Error("missing clock accepted")
	}
	if _, err := New(Config{Model: m, Clock: sim.NewManualClock(),
		Thresholds: Thresholds{Aliveness: -1, ArrivalRate: 1, ProgramFlow: 1}}); err == nil {
		t.Error("negative threshold accepted")
	}
	w, err := New(Config{Model: m, Clock: sim.NewManualClock()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if w.CyclePeriod() != 10*time.Millisecond {
		t.Errorf("default CyclePeriod = %v", w.CyclePeriod())
	}
}

func TestHypothesisValidate(t *testing.T) {
	cases := []struct {
		name string
		h    Hypothesis
		ok   bool
	}{
		{"disabled", Hypothesis{}, true},
		{"aliveness only", Hypothesis{AlivenessCycles: 5, MinHeartbeats: 1}, true},
		{"arrival only", Hypothesis{ArrivalCycles: 5, MaxArrivals: 2}, true},
		{"both", Hypothesis{AlivenessCycles: 5, MinHeartbeats: 1, ArrivalCycles: 5, MaxArrivals: 2}, true},
		{"negative period", Hypothesis{AlivenessCycles: -1}, false},
		{"aliveness without min", Hypothesis{AlivenessCycles: 5}, false},
		{"arrival without max", Hypothesis{ArrivalCycles: 5}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.h.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestAlivenessErrorDetectedAtPeriodEnd(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	// Healthy phase: heartbeat every cycle for 10 cycles.
	f.spin(10, func(int) {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.b)
		f.w.Heartbeat(f.c)
	})
	if got := f.w.Results(); got.Aliveness != 0 {
		t.Fatalf("healthy phase produced %d aliveness errors", got.Aliveness)
	}
	// Fault phase: runnable A stops beating; B and C continue.
	f.spin(10, func(int) {
		f.w.Heartbeat(f.b)
		f.w.Heartbeat(f.c)
	})
	got := f.w.Results()
	if got.Aliveness != 2 {
		t.Fatalf("Aliveness = %d, want 2 (two 5-cycle periods without heartbeats)", got.Aliveness)
	}
	if got.ArrivalRate != 0 || got.ProgramFlow != 0 {
		t.Fatalf("unexpected other detections: %+v", got)
	}
	if len(f.sink.faults) != 2 {
		t.Fatalf("sink got %d faults, want 2", len(f.sink.faults))
	}
	r := f.sink.faults[0]
	if r.Kind != AlivenessError || r.Runnable != f.a || r.Task != f.task || r.App != f.app {
		t.Fatalf("report = %+v", r)
	}
	if r.Observed != 0 || r.Expected != 1 {
		t.Fatalf("report evidence = observed %d expected %d", r.Observed, r.Expected)
	}
}

func TestCountersResetOnPeriodExpiry(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	f.spin(4, func(int) { f.w.Heartbeat(f.a) })
	c, err := f.w.CounterSnapshot(f.a)
	if err != nil {
		t.Fatalf("CounterSnapshot: %v", err)
	}
	if c.AC != 4 || c.CCA != 4 {
		t.Fatalf("mid-period counters = %+v", c)
	}
	f.spin(1, func(int) { f.w.Heartbeat(f.a) })
	c, _ = f.w.CounterSnapshot(f.a)
	if c.AC != 0 || c.CCA != 0 || c.ARC != 0 || c.CCAR != 0 {
		t.Fatalf("counters not reset at period expiry: %+v", c)
	}
}

func TestArrivalRateErrorAtPeriodEnd(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	// 3 heartbeats per cycle against MaxArrivals 2 per 5 cycles.
	f.spin(5, func(int) {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.a)
	})
	got := f.w.Results()
	if got.ArrivalRate != 1 {
		t.Fatalf("ArrivalRate = %d, want 1 (checked at period end)", got.ArrivalRate)
	}
	r := f.sink.faults[0]
	if r.Kind != ArrivalRateError || r.Observed != 15 || r.Expected != 7 {
		t.Fatalf("report = %+v", r)
	}
}

func TestEagerArrivalCheckDetectsImmediately(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.EagerArrivalCheck = true })
	f.monitorAll()
	// Eight heartbeats in the very first cycle trip MaxArrivals=7 at once.
	for i := 0; i < 8; i++ {
		f.w.Heartbeat(f.a)
	}
	got := f.w.Results()
	if got.ArrivalRate != 1 {
		t.Fatalf("eager ArrivalRate = %d, want 1 before any Cycle", got.ArrivalRate)
	}
}

func TestInactiveRunnableNotMonitored(t *testing.T) {
	f := newFixture(t, nil)
	h := Hypothesis{AlivenessCycles: 5, MinHeartbeats: 1}
	if err := f.w.SetHypothesis(f.a, h); err != nil {
		t.Fatalf("SetHypothesis: %v", err)
	}
	// Never activated: no heartbeats, no errors.
	f.spin(20, nil)
	if got := f.w.Results(); got.Aliveness != 0 {
		t.Fatalf("inactive runnable produced %d aliveness errors", got.Aliveness)
	}
	// Activate, then deactivate resets counters and stops checking.
	if err := f.w.Activate(f.a); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	f.spin(3, nil)
	if err := f.w.Deactivate(f.a); err != nil {
		t.Fatalf("Deactivate: %v", err)
	}
	c, _ := f.w.CounterSnapshot(f.a)
	if c.Active || c.CCA != 0 {
		t.Fatalf("deactivation did not reset: %+v", c)
	}
	f.spin(20, nil)
	if got := f.w.Results(); got.Aliveness != 0 {
		t.Fatalf("deactivated runnable produced %d aliveness errors", got.Aliveness)
	}
}

func TestProgramFlowLookupTable(t *testing.T) {
	f := newFixture(t, nil)
	if err := f.w.AddFlowSequence(f.a, f.b, f.c); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	// Legal: A B C A B C
	for _, rid := range []runnable.ID{f.a, f.b, f.c, f.a, f.b, f.c} {
		f.w.Heartbeat(rid)
	}
	if got := f.w.Results(); got.ProgramFlow != 0 {
		t.Fatalf("legal sequence flagged: %+v", got)
	}
	// Illegal: A followed by C (skipping B — an invalid execution branch).
	f.w.Heartbeat(f.a)
	f.w.Heartbeat(f.c)
	got := f.w.Results()
	if got.ProgramFlow != 1 {
		t.Fatalf("ProgramFlow = %d, want 1", got.ProgramFlow)
	}
	r := f.sink.faults[0]
	if r.Kind != ProgramFlowError || r.Runnable != f.c || r.Predecessor != f.a {
		t.Fatalf("report = %+v", r)
	}
}

func TestProgramFlowRepeatedRunnableFlagged(t *testing.T) {
	f := newFixture(t, nil)
	if err := f.w.AddFlowSequence(f.a, f.b, f.c); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	f.w.Heartbeat(f.a)
	f.w.Heartbeat(f.b)
	f.w.Heartbeat(f.b) // double execution
	if got := f.w.Results(); got.ProgramFlow != 1 {
		t.Fatalf("ProgramFlow = %d, want 1 for B→B", got.ProgramFlow)
	}
}

func TestProgramFlowSelfLoopAllowedWhenDeclared(t *testing.T) {
	f := newFixture(t, nil)
	if err := f.w.AddFlowPair(f.a, f.a); err != nil {
		t.Fatalf("AddFlowPair self: %v", err)
	}
	f.w.Heartbeat(f.a)
	f.w.Heartbeat(f.a)
	f.w.Heartbeat(f.a)
	if got := f.w.Results(); got.ProgramFlow != 0 {
		t.Fatalf("declared self-loop flagged: %+v", got)
	}
}

func TestUnmonitoredRunnableDoesNotDisturbFlow(t *testing.T) {
	f := newFixture(t, nil)
	if err := f.w.AddFlowPair(f.a, f.c); err != nil {
		t.Fatalf("AddFlowPair: %v", err)
	}
	// B is not enrolled: its heartbeats must not update the predecessor
	// register, so A→(B)→C remains legal.
	f.w.Heartbeat(f.a)
	f.w.Heartbeat(f.b)
	f.w.Heartbeat(f.c)
	if got := f.w.Results(); got.ProgramFlow != 0 {
		t.Fatalf("unmonitored runnable disturbed flow: %+v", got)
	}
}

func TestFlowPairAcrossTasksRejected(t *testing.T) {
	m := runnable.NewModel()
	app, _ := m.AddApp("A", runnable.QM)
	t1, _ := m.AddTask(app, "T1", 1)
	t2, _ := m.AddTask(app, "T2", 1)
	r1, _ := m.AddRunnable(t1, "R1", time.Millisecond, runnable.QM)
	r2, _ := m.AddRunnable(t2, "R2", time.Millisecond, runnable.QM)
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	w, err := New(Config{Model: m, Clock: sim.NewManualClock()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := w.AddFlowPair(r1, r2); err == nil {
		t.Fatal("cross-task flow pair accepted")
	}
}

func TestPerTaskFlowTrackingIgnoresPreemption(t *testing.T) {
	// Two tasks, each with a legal sequence; the interleaving produced by
	// preemption (a1 x1 a2 x2) must not be flagged. A naive global
	// last-runnable register would flag a1→x1 and x1→a2.
	m := runnable.NewModel()
	app, _ := m.AddApp("A", runnable.QM)
	t1, _ := m.AddTask(app, "T1", 1)
	t2, _ := m.AddTask(app, "T2", 9)
	a1, _ := m.AddRunnable(t1, "a1", time.Millisecond, runnable.SafetyCritical)
	a2, _ := m.AddRunnable(t1, "a2", time.Millisecond, runnable.SafetyCritical)
	x1, _ := m.AddRunnable(t2, "x1", time.Millisecond, runnable.SafetyCritical)
	x2, _ := m.AddRunnable(t2, "x2", time.Millisecond, runnable.SafetyCritical)
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	sink := &collector{}
	w, err := New(Config{Model: m, Clock: sim.NewManualClock(), Sink: sink})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := w.AddFlowSequence(a1, a2); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	if err := w.AddFlowSequence(x1, x2); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	for _, rid := range []runnable.ID{a1, x1, a2, x2} {
		w.Heartbeat(rid)
	}
	if got := w.Results(); got.ProgramFlow != 0 {
		t.Fatalf("preemption interleaving flagged: %+v (faults %v)", got, sink.faults)
	}
}

func TestTSITaskFaultyAtThreshold(t *testing.T) {
	f := newFixture(t, nil) // default thresholds: 3
	if err := f.w.AddFlowSequence(f.a, f.b, f.c); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	for i := 0; i < 2; i++ {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.c) // illegal A→C
	}
	st, _ := f.w.TaskState(f.task)
	if st != StateOK {
		t.Fatalf("task faulty after 2 errors, threshold is 3")
	}
	f.w.Heartbeat(f.a) // C→A legal (wrap), then A→C illegal again
	f.w.Heartbeat(f.c)
	st, _ = f.w.TaskState(f.task)
	if st != StateFaulty {
		t.Fatalf("task not faulty after 3 errors")
	}
	// Derivation chain: app and (with ECUFaultyAppCount=2 default) not ECU.
	as, _ := f.w.AppState(f.app)
	if as != StateFaulty {
		t.Fatalf("app state = %v, want faulty", as)
	}
	if f.w.ECUState() != StateOK {
		t.Fatalf("ECU state = %v, want OK (only 1 faulty app, threshold 2)", f.w.ECUState())
	}
	// State events: task then app.
	if len(f.sink.states) != 2 {
		t.Fatalf("state events = %+v", f.sink.states)
	}
	if f.sink.states[0].Scope != TaskScope || f.sink.states[0].State != StateFaulty ||
		f.sink.states[0].Cause != ProgramFlowError {
		t.Fatalf("task event = %+v", f.sink.states[0])
	}
	if f.sink.states[1].Scope != AppScope || f.sink.states[1].App != f.app {
		t.Fatalf("app event = %+v", f.sink.states[1])
	}
}

func TestECUFaultyWithSingleAppPolicy(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.ECUFaultyAppCount = 1 })
	if err := f.w.AddFlowSequence(f.a, f.b, f.c); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	for i := 0; i < 3; i++ {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.c)
	}
	if f.w.ECUState() != StateFaulty {
		t.Fatalf("ECU state = %v, want faulty with ECUFaultyAppCount=1", f.w.ECUState())
	}
	var scopes []Scope
	for _, e := range f.sink.states {
		scopes = append(scopes, e.Scope)
	}
	if len(scopes) != 3 || scopes[0] != TaskScope || scopes[1] != AppScope || scopes[2] != ECUScope {
		t.Fatalf("state event order = %v", scopes)
	}
}

func TestCollaborationReportsAlivenessOnce(t *testing.T) {
	// Fig. 6: program-flow errors also starve the skipped runnable's
	// heartbeats. The collaboration logic attributes those aliveness
	// errors to the flow root cause and accumulates only one.
	f := newFixture(t, nil)
	f.monitorAll()
	if err := f.w.AddFlowSequence(f.a, f.b, f.c); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	// 30 cycles of A→C flow (B never runs → B has aliveness errors every
	// 5 cycles; A→C is a flow error every round).
	f.spin(30, func(int) {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.c)
	})
	got := f.w.Results()
	if got.ProgramFlow < 3 {
		t.Fatalf("ProgramFlow = %d, want >= 3", got.ProgramFlow)
	}
	if got.Aliveness != 1 {
		t.Fatalf("Aliveness = %d, want exactly 1 (correlated suppression)", got.Aliveness)
	}
	st, _ := f.w.TaskState(f.task)
	if st != StateFaulty {
		t.Fatal("task not faulty after repeated flow errors")
	}
	// Cause of the faulty transition must be the flow error, threshold 3.
	if f.sink.states[0].Cause != ProgramFlowError {
		t.Fatalf("faulty cause = %v, want program-flow", f.sink.states[0].Cause)
	}
}

func TestCollaborationDisabledAccumulatesAll(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.DisableCorrelation = true })
	f.monitorAll()
	if err := f.w.AddFlowSequence(f.a, f.b, f.c); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	f.spin(30, func(int) {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.c)
	})
	got := f.w.Results()
	if got.Aliveness < 5 {
		t.Fatalf("Aliveness = %d, want >= 5 without correlation (ablation)", got.Aliveness)
	}
}

func TestCorrelatedReportMarked(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	if err := f.w.AddFlowSequence(f.a, f.b, f.c); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	f.spin(10, func(int) {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.c)
	})
	var correlated *Report
	for i := range f.sink.faults {
		if f.sink.faults[i].Kind == AlivenessError {
			correlated = &f.sink.faults[i]
			break
		}
	}
	if correlated == nil {
		t.Fatal("no aliveness report delivered")
	}
	if !correlated.Correlated {
		t.Fatalf("aliveness report not marked correlated: %+v", *correlated)
	}
}

func TestAlivenessWithoutFlowErrorsNotSuppressed(t *testing.T) {
	// Pure aliveness faults (no flow errors) must accumulate normally even
	// with correlation enabled.
	f := newFixture(t, nil)
	f.monitorAll()
	if err := f.w.AddFlowSequence(f.a, f.b, f.c); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	// All three beat in legal order, then B stops (but A and C keep the
	// legal wrap order A→C? No — A→C is illegal. Stop all three to avoid
	// flow errors entirely.)
	f.spin(5, func(int) {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.b)
		f.w.Heartbeat(f.c)
	})
	f.spin(20, nil) // silence: aliveness errors for all, no flow errors
	got := f.w.Results()
	if got.ProgramFlow != 0 {
		t.Fatalf("unexpected flow errors: %+v", got)
	}
	if got.Aliveness != 12 {
		t.Fatalf("Aliveness = %d, want 12 (3 runnables x 4 periods)", got.Aliveness)
	}
	st, _ := f.w.TaskState(f.task)
	if st != StateFaulty {
		t.Fatal("task not faulty from pure aliveness errors")
	}
	if f.sink.states[0].Cause != AlivenessError {
		t.Fatalf("cause = %v, want aliveness", f.sink.states[0].Cause)
	}
}

func TestClearTaskRecovers(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	f.spin(20, nil) // aliveness faults everywhere
	st, _ := f.w.TaskState(f.task)
	if st != StateFaulty {
		t.Fatal("setup: task should be faulty")
	}
	if err := f.w.ClearTask(f.task); err != nil {
		t.Fatalf("ClearTask: %v", err)
	}
	st, _ = f.w.TaskState(f.task)
	if st != StateOK {
		t.Fatal("task not OK after ClearTask")
	}
	as, _ := f.w.AppState(f.app)
	if as != StateOK {
		t.Fatal("app not OK after ClearTask")
	}
	al, ar, fl, _ := f.w.RunnableErrors(f.a)
	if al != 0 || ar != 0 || fl != 0 {
		t.Fatalf("runnable errors not cleared: %d/%d/%d", al, ar, fl)
	}
	// Recovery state event delivered.
	last := f.sink.states[len(f.sink.states)-1]
	if last.State != StateOK {
		t.Fatalf("last state event = %+v", last)
	}
	// Healthy again: no stale counters trip immediately.
	f.spin(4, func(int) { f.w.Heartbeat(f.a); f.w.Heartbeat(f.b); f.w.Heartbeat(f.c) })
	if got := f.w.Results(); got.Aliveness != 12 {
		t.Fatalf("new aliveness errors after recovery: %+v", got)
	}
}

func TestClearAllResetsCycle(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	f.spin(7, nil)
	if f.w.CycleCount() != 7 {
		t.Fatalf("CycleCount = %d", f.w.CycleCount())
	}
	f.w.ClearAll()
	if f.w.CycleCount() != 0 {
		t.Fatalf("CycleCount after ClearAll = %d", f.w.CycleCount())
	}
}

func TestHeartbeatUnknownRunnableIgnored(t *testing.T) {
	f := newFixture(t, nil)
	f.w.Heartbeat(runnable.ID(-1))
	f.w.Heartbeat(runnable.ID(999))
	if got := f.w.Results(); got != (Results{}) {
		t.Fatalf("unknown heartbeat produced detections: %+v", got)
	}
}

func TestAccessorErrorsOnUnknownIDs(t *testing.T) {
	f := newFixture(t, nil)
	if _, err := f.w.CounterSnapshot(runnable.ID(99)); err == nil {
		t.Error("CounterSnapshot unknown id")
	}
	if _, err := f.w.TaskState(runnable.TaskID(99)); err == nil {
		t.Error("TaskState unknown id")
	}
	if _, err := f.w.AppState(runnable.AppID(99)); err == nil {
		t.Error("AppState unknown id")
	}
	if _, _, _, err := f.w.RunnableErrors(runnable.ID(99)); err == nil {
		t.Error("RunnableErrors unknown id")
	}
	if err := f.w.SetHypothesis(runnable.ID(99), Hypothesis{}); err == nil {
		t.Error("SetHypothesis unknown id")
	}
	if err := f.w.Activate(runnable.ID(99)); err == nil {
		t.Error("Activate unknown id")
	}
	if err := f.w.MonitorFlow(runnable.ID(99)); err == nil {
		t.Error("MonitorFlow unknown id")
	}
	if err := f.w.ClearTask(runnable.TaskID(99)); err == nil {
		t.Error("ClearTask unknown id")
	}
	if err := f.w.AddFlowSequence(f.a); err == nil {
		t.Error("AddFlowSequence with one runnable")
	}
}

func TestStringers(t *testing.T) {
	if AlivenessError.String() != "aliveness" || ArrivalRateError.String() != "arrival-rate" ||
		ProgramFlowError.String() != "program-flow" || ErrorKind(9).String() == "" {
		t.Error("ErrorKind.String")
	}
	if StateOK.String() != "OK" || StateFaulty.String() != "faulty" || HealthState(9).String() == "" {
		t.Error("HealthState.String")
	}
	if TaskScope.String() != "task" || AppScope.String() != "application" ||
		ECUScope.String() != "ECU" || Scope(9).String() == "" {
		t.Error("Scope.String")
	}
	r := Report{Kind: AlivenessError, Cycle: 3, Runnable: 1, Observed: 0, Expected: 1}
	if r.String() == "" {
		t.Error("Report.String aliveness")
	}
	r = Report{Kind: ProgramFlowError, Cycle: 3, Runnable: 1, Predecessor: 0}
	if r.String() == "" {
		t.Error("Report.String flow")
	}
}

func TestSuspendResumeTaskMonitoring(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	if err := f.w.SuspendTaskMonitoring(f.task); err != nil {
		t.Fatalf("SuspendTaskMonitoring: %v", err)
	}
	// No heartbeats while suspended: no aliveness errors.
	f.spin(20, nil)
	if got := f.w.Results().Aliveness; got != 0 {
		t.Fatalf("suspended task accumulated %d aliveness errors", got)
	}
	c, _ := f.w.CounterSnapshot(f.a)
	if c.Active {
		t.Fatal("runnable still active while suspended")
	}
	if err := f.w.ResumeTaskMonitoring(f.task); err != nil {
		t.Fatalf("ResumeTaskMonitoring: %v", err)
	}
	c, _ = f.w.CounterSnapshot(f.a)
	if !c.Active {
		t.Fatal("runnable not re-activated on resume")
	}
	// Silence now counts again.
	f.spin(10, nil)
	if got := f.w.Results().Aliveness; got == 0 {
		t.Fatal("resumed monitoring detected nothing")
	}
	// Unknown task ids error.
	if err := f.w.SuspendTaskMonitoring(runnable.TaskID(99)); err == nil {
		t.Error("unknown task accepted in Suspend")
	}
	if err := f.w.ResumeTaskMonitoring(runnable.TaskID(99)); err == nil {
		t.Error("unknown task accepted in Resume")
	}
}

func TestSuspendPreservesExplicitDeactivation(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	if err := f.w.Deactivate(f.b); err != nil {
		t.Fatalf("Deactivate: %v", err)
	}
	if err := f.w.SuspendTaskMonitoring(f.task); err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	if err := f.w.ResumeTaskMonitoring(f.task); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	// b was deactivated before the suspension; resume must not turn it on.
	c, _ := f.w.CounterSnapshot(f.b)
	if c.Active {
		t.Fatal("resume re-activated an explicitly deactivated runnable")
	}
	c, _ = f.w.CounterSnapshot(f.a)
	if !c.Active {
		t.Fatal("resume lost an active runnable")
	}
}

func TestClearAllResumesSuspended(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	if err := f.w.SuspendTaskMonitoring(f.task); err != nil {
		t.Fatalf("Suspend: %v", err)
	}
	f.w.ClearAll()
	c, _ := f.w.CounterSnapshot(f.a)
	if !c.Active {
		t.Fatal("ClearAll did not resume suspended monitoring")
	}
}

func TestMonitorFlowEnrolsWithoutPairs(t *testing.T) {
	f := newFixture(t, nil)
	// Only b is enrolled, with no allowed successors at all: any monitored
	// transition b→b is illegal.
	if err := f.w.MonitorFlow(f.b); err != nil {
		t.Fatalf("MonitorFlow: %v", err)
	}
	f.w.Heartbeat(f.b)
	f.w.Heartbeat(f.b)
	if got := f.w.Results().ProgramFlow; got != 1 {
		t.Fatalf("ProgramFlow = %d, want 1", got)
	}
	// a remains unmonitored: a→a is invisible.
	f.w.Heartbeat(f.a)
	f.w.Heartbeat(f.a)
	if got := f.w.Results().ProgramFlow; got != 1 {
		t.Fatalf("unmonitored runnable flagged: %d", got)
	}
}

func TestHypothesisAccessor(t *testing.T) {
	f := newFixture(t, nil)
	want := Hypothesis{AlivenessCycles: 7, MinHeartbeats: 2}
	if err := f.w.SetHypothesis(f.a, want); err != nil {
		t.Fatalf("SetHypothesis: %v", err)
	}
	got, err := f.w.Hypothesis(f.a)
	if err != nil || got != want {
		t.Fatalf("Hypothesis = %+v, %v", got, err)
	}
	if _, err := f.w.Hypothesis(runnable.ID(99)); err == nil {
		t.Error("unknown runnable accepted")
	}
}

func TestSharedTaskAffectsBothApps(t *testing.T) {
	// Two applications share one task (§1). A fault in A's runnable is
	// attributed to A's runnable specifically, but the corrupted task
	// state affects both applications.
	m := runnable.NewModel()
	appA, _ := m.AddApp("A", runnable.SafetyCritical)
	appB, _ := m.AddApp("B", runnable.SafetyRelevant)
	task, _ := m.AddTask(appA, "Shared", 5)
	ra, _ := m.AddRunnable(task, "ra", time.Millisecond, runnable.SafetyCritical)
	rb, err := m.AddSharedRunnable(task, appB, "rb", time.Millisecond, runnable.SafetyRelevant)
	if err != nil {
		t.Fatalf("AddSharedRunnable: %v", err)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	sink := &collector{}
	w, err := New(Config{Model: m, Clock: sim.NewManualClock(), Sink: sink})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := w.AddFlowSequence(ra, rb); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	// Three ra→ra violations: errors attributed to ra (app A).
	w.Heartbeat(ra)
	for i := 0; i < 3; i++ {
		w.Heartbeat(ra)
	}
	for _, f := range sink.faults {
		if f.App != appA {
			t.Fatalf("fault attributed to app %d, want %d (A): %+v", f.App, appA, f)
		}
	}
	// The shared task is faulty — and BOTH applications derive faulty.
	st, _ := w.TaskState(task)
	if st != StateFaulty {
		t.Fatal("task not faulty")
	}
	sa, _ := w.AppState(appA)
	sb, _ := w.AppState(appB)
	if sa != StateFaulty || sb != StateFaulty {
		t.Fatalf("app states A=%v B=%v, want both faulty (shared execution context)", sa, sb)
	}
	// Both app-scope events were emitted.
	appEvents := 0
	for _, e := range sink.states {
		if e.Scope == AppScope {
			appEvents++
		}
	}
	if appEvents != 2 {
		t.Fatalf("app events = %d, want 2", appEvents)
	}
}
