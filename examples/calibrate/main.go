// Calibrate: derive fault hypotheses from observation instead of
// hand-tuning them.
//
// Setting the per-runnable fault hypothesis (how many heartbeats per
// window are normal) is the design-time step of deploying the Software
// Watchdog. This example runs a pipeline in a healthy phase under a
// Calibrator, asks it to Suggest hypotheses with a 30% safety margin,
// installs them, and shows that the calibrated watchdog is quiet on the
// healthy workload but detects a stall immediately.
//
// Run with:
//
//	go run ./examples/calibrate
package main

import (
	"fmt"
	"log"
	"time"

	"swwd"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("calibrate: %v", err)
	}
}

func run() error {
	model := swwd.NewModel()
	app, err := model.AddApp("sensorFusion", swwd.SafetyCritical)
	if err != nil {
		return err
	}
	task, err := model.AddTask(app, "fusionTask", 1)
	if err != nil {
		return err
	}
	var stages [2]swwd.RunnableID
	for i, name := range []string{"acquire", "fuse"} {
		if stages[i], err = model.AddRunnable(task, name, time.Millisecond, swwd.SafetyCritical); err != nil {
			return err
		}
	}
	if err := model.Freeze(); err != nil {
		return err
	}

	// Phase 1: observe the healthy workload. The pipeline beats at an
	// uneven rate (2 or 3 beats per 10-cycle window) — exactly the kind
	// of jitter that makes hand-written hypotheses flap.
	cal, err := swwd.NewCalibrator(model, 10)
	if err != nil {
		return err
	}
	for window := 0; window < 6; window++ {
		beats := 2 + window%2
		for b := 0; b < beats; b++ {
			cal.Heartbeat(stages[0])
			cal.Heartbeat(stages[1])
		}
		for c := 0; c < 10; c++ {
			cal.Cycle()
		}
	}
	fmt.Printf("observed %d healthy windows\n", cal.Windows())

	// Phase 2: install the suggested hypotheses.
	w, err := swwd.New(model)
	if err != nil {
		return err
	}
	for _, rid := range stages {
		h, err := cal.Suggest(rid, 0.3)
		if err != nil {
			return err
		}
		r, _ := model.Runnable(rid)
		fmt.Printf("  %-8s -> min %d, max %d per %d cycles\n",
			r.Name, h.MinHeartbeats, h.MaxArrivals, h.AlivenessCycles)
		if err := w.SetHypothesis(rid, h); err != nil {
			return err
		}
		if err := w.Activate(rid); err != nil {
			return err
		}
	}

	// Phase 3: replay the healthy pattern — no detections.
	for window := 0; window < 6; window++ {
		beats := 2 + window%2
		for b := 0; b < beats; b++ {
			w.Heartbeat(stages[0])
			w.Heartbeat(stages[1])
		}
		for c := 0; c < 10; c++ {
			w.Cycle()
		}
	}
	fmt.Printf("healthy replay:  %+v\n", w.Results())
	if w.Results().Aliveness != 0 {
		return fmt.Errorf("calibrated hypothesis false-positived")
	}

	// Phase 4: the fuse stage stalls — detected within one window.
	for window := 0; window < 2; window++ {
		for b := 0; b < 2; b++ {
			w.Heartbeat(stages[0])
		}
		for c := 0; c < 10; c++ {
			w.Cycle()
		}
	}
	fmt.Printf("after stall:     %+v\n", w.Results())
	if w.Results().Aliveness == 0 {
		return fmt.Errorf("stall not detected")
	}
	fmt.Println("calibration example complete")
	return nil
}
