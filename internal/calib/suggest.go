package calib

import "math"

// Hypothesis mirrors the core's per-runnable fault hypothesis without
// importing it (the core imports this package for the estimator, so the
// dependency must point this way). All four fields are watchdog-cycle /
// beat counts; see core.Hypothesis for the field semantics.
type Hypothesis struct {
	AlivenessCycles int
	MinHeartbeats   int
	ArrivalCycles   int
	MaxArrivals     int
}

// DefaultMinWindows is how many observation windows a runnable needs
// before Suggest will propose for it when Policy.MinWindows is zero —
// the offline Calibrator's long-standing "at least three windows" rule.
const DefaultMinWindows = 3

// Policy is the suggestion policy.
type Policy struct {
	// Margin is the jitter tolerance in [0,1): the aliveness floor is
	// the observed minimum reduced by Margin, the arrival ceiling the
	// observed maximum increased by Margin. 0.3 tolerates 30% jitter
	// around the recorded healthy behaviour.
	Margin float64
	// MinWindows is the observation-window count a runnable needs
	// before it is proposed for; zero means DefaultMinWindows.
	MinWindows uint64
}

// Valid reports whether the policy is usable by Suggest.
func (p Policy) Valid() bool { return p.Margin >= 0 && p.Margin < 1 }

// Proposal is one suggested hypothesis, carrying the baseline evidence
// it was derived from (the confidence band a reviewer — human or the
// shadow guard — judges it by).
type Proposal struct {
	// Runnable is the runnable's index in the model.
	Runnable int
	// Hyp is the proposed hypothesis: both monitoring periods equal the
	// baseline's observation window.
	Hyp Hypothesis
	// Windows/Min/Max/Rate/P50/P95 are the baseline evidence.
	Windows  uint64
	Min, Max uint64
	Rate     float64
	P50, P95 uint64
}

// Suggest derives tightened hypothesis proposals from a recorded
// baseline. It is pure and deterministic: no clocks, no map iteration —
// the same (baseline, policy) input always yields the bit-identical
// proposal slice, so a rollout decision can be replayed and audited
// like a treatment trace (treat.Replay).
//
// A runnable is skipped when it has fewer than MinWindows observation
// windows, or when any window was silent (Min == 0: aliveness
// monitoring would false-positive on the recorded behaviour). An
// invalid policy yields no proposals.
func Suggest(b Baseline, p Policy) []Proposal {
	if !p.Valid() {
		return nil
	}
	minW := p.MinWindows
	if minW == 0 {
		minW = DefaultMinWindows
	}
	var out []Proposal
	for _, rb := range b.Runnables {
		if rb.Windows < minW || rb.Min == 0 {
			continue
		}
		floor := int(math.Floor(float64(rb.Min) * (1 - p.Margin)))
		if floor < 1 {
			floor = 1
		}
		ceiling := int(math.Ceil(float64(rb.Max) * (1 + p.Margin)))
		if ceiling < floor {
			ceiling = floor
		}
		out = append(out, Proposal{
			Runnable: rb.Runnable,
			Hyp: Hypothesis{
				AlivenessCycles: b.WindowCycles,
				MinHeartbeats:   floor,
				ArrivalCycles:   b.WindowCycles,
				MaxArrivals:     ceiling,
			},
			Windows: rb.Windows,
			Min:     rb.Min,
			Max:     rb.Max,
			Rate:    rb.Rate,
			P50:     rb.P50,
			P95:     rb.P95,
		})
	}
	return out
}
