package treat

import (
	"testing"

	"swwd/internal/sim"
)

// testGraph builds the canonical fixture: node 1 provides a service,
// nodes 2 and 3 depend on it, node 4 is unrelated.
func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph([]uint32{1, 2, 3, 4}, []Edge{
		{Node: 2, DependsOn: 1},
		{Node: 3, DependsOn: 1},
	})
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	return g
}

func assertActions(t *testing.T, got []Action, want []Action) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("actions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("action %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestEngineQuarantineScalesDownDependents(t *testing.T) {
	e := NewEngine(testGraph(t), Policy{})
	at := sim.Time(1000)
	got := e.Decide(Event{Kind: EvLinkFault, Node: 1, Time: at}, nil)
	assertActions(t, got, []Action{
		{Kind: ActQuarantine, Node: 1, Cause: 1, Time: at},
		{Kind: ActScaleDown, Node: 2, Cause: 1, Time: at},
		{Kind: ActScaleDown, Node: 3, Cause: 1, Time: at},
	})
	if !e.Quarantined(1) || !e.ScaledDown(2) || !e.ScaledDown(3) || e.ScaledDown(4) {
		t.Fatal("engine state does not match emitted actions")
	}

	// A repeated fault inside the quarantine is absorbed silently.
	if got := e.Decide(Event{Kind: EvLinkFault, Node: 1, Time: at + 1}, nil); len(got) != 0 {
		t.Fatalf("repeated fault emitted %v", got)
	}
}

func TestEngineRecoveryAfterStreak(t *testing.T) {
	e := NewEngine(testGraph(t), Policy{RecoveryFrames: 3})
	e.Decide(Event{Kind: EvLinkFault, Node: 1, Time: 10}, nil)

	// Two steady frames: not yet.
	for i := sim.Time(11); i <= 12; i++ {
		if got := e.Decide(Event{Kind: EvFrame, Node: 1, Time: i}, nil); len(got) != 0 {
			t.Fatalf("frame %d emitted %v", i, got)
		}
	}
	// The third completes the streak: resume, self scale-up, dependents
	// scale up in ascending order.
	got := e.Decide(Event{Kind: EvFrame, Node: 1, Time: 13}, nil)
	assertActions(t, got, []Action{
		{Kind: ActResume, Node: 1, Cause: 1, Time: 13},
		{Kind: ActScaleUp, Node: 1, Cause: 1, Time: 13},
		{Kind: ActScaleUp, Node: 2, Cause: 1, Time: 13},
		{Kind: ActScaleUp, Node: 3, Cause: 1, Time: 13},
	})
	if e.Quarantined(1) || e.ScaledDown(2) || e.ScaledDown(3) {
		t.Fatal("engine state not reset after recovery")
	}

	// Frames on a healthy node are no-ops.
	if got := e.Decide(Event{Kind: EvFrame, Node: 1, Time: 14}, nil); len(got) != 0 {
		t.Fatalf("healthy frame emitted %v", got)
	}
}

func TestEngineRestartMidQuarantineNotifiesAndResetsStreak(t *testing.T) {
	e := NewEngine(testGraph(t), Policy{RecoveryFrames: 3})
	e.Decide(Event{Kind: EvLinkFault, Node: 1, Time: 10}, nil)
	e.Decide(Event{Kind: EvFrame, Node: 1, Time: 11}, nil)
	e.Decide(Event{Kind: EvFrame, Node: 1, Time: 12}, nil)

	// The reporter restarts on what would have been the recovering
	// frame: the new process must be re-told it is quarantined, and the
	// streak restarts at 1 — recovery needs two more frames, not zero.
	got := e.Decide(Event{Kind: EvFrame, Node: 1, Restarted: true, Time: 13}, nil)
	assertActions(t, got, []Action{
		{Kind: ActNotifyQuarantine, Node: 1, Cause: 1, Time: 13},
	})
	if got := e.Decide(Event{Kind: EvFrame, Node: 1, Time: 14}, nil); len(got) != 0 {
		t.Fatalf("frame after restart emitted %v", got)
	}
	got = e.Decide(Event{Kind: EvFrame, Node: 1, Time: 15}, nil)
	if len(got) == 0 || got[0].Kind != ActResume {
		t.Fatalf("expected resume after restarted streak, got %v", got)
	}
}

func TestEngineDiamondHoldsDependentUntilAllResume(t *testing.T) {
	// Node 3 depends on both 1 and 2.
	g, err := NewGraph([]uint32{1, 2, 3}, []Edge{
		{Node: 3, DependsOn: 1},
		{Node: 3, DependsOn: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, Policy{RecoveryFrames: 1})

	got := e.Decide(Event{Kind: EvLinkFault, Node: 1, Time: 1}, nil)
	assertActions(t, got, []Action{
		{Kind: ActQuarantine, Node: 1, Cause: 1, Time: 1},
		{Kind: ActScaleDown, Node: 3, Cause: 1, Time: 1},
	})
	// Second dependency faults: node 3 is already down, no second
	// scale-down action.
	got = e.Decide(Event{Kind: EvLinkFault, Node: 2, Time: 2}, nil)
	assertActions(t, got, []Action{
		{Kind: ActQuarantine, Node: 2, Cause: 2, Time: 2},
	})

	// Node 1 recovers: node 3 stays held by node 2.
	got = e.Decide(Event{Kind: EvFrame, Node: 1, Time: 3}, nil)
	assertActions(t, got, []Action{
		{Kind: ActResume, Node: 1, Cause: 1, Time: 3},
		{Kind: ActScaleUp, Node: 1, Cause: 1, Time: 3},
	})
	if !e.ScaledDown(3) {
		t.Fatal("dependent released while second dependency still quarantined")
	}
	// Node 2 recovers: now node 3 comes back.
	got = e.Decide(Event{Kind: EvFrame, Node: 2, Time: 4}, nil)
	assertActions(t, got, []Action{
		{Kind: ActResume, Node: 2, Cause: 2, Time: 4},
		{Kind: ActScaleUp, Node: 2, Cause: 2, Time: 4},
		{Kind: ActScaleUp, Node: 3, Cause: 2, Time: 4},
	})
}

func TestEngineQuarantinedDependentStaysDownOnResume(t *testing.T) {
	// Node 2 depends on node 1; both fault. When node 1 recovers, node 2
	// must not scale up — it is quarantined in its own right.
	g, err := NewGraph([]uint32{1, 2}, []Edge{{Node: 2, DependsOn: 1}})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g, Policy{RecoveryFrames: 1})
	e.Decide(Event{Kind: EvLinkFault, Node: 1, Time: 1}, nil)
	e.Decide(Event{Kind: EvLinkFault, Node: 2, Time: 2}, nil)

	got := e.Decide(Event{Kind: EvFrame, Node: 1, Time: 3}, nil)
	assertActions(t, got, []Action{
		{Kind: ActResume, Node: 1, Cause: 1, Time: 3},
		{Kind: ActScaleUp, Node: 1, Cause: 1, Time: 3},
	})
	// Node 2 recovers afterwards: resume plus its own scale-up (no
	// dependency holds it any more).
	got = e.Decide(Event{Kind: EvFrame, Node: 2, Time: 4}, nil)
	assertActions(t, got, []Action{
		{Kind: ActResume, Node: 2, Cause: 2, Time: 4},
		{Kind: ActScaleUp, Node: 2, Cause: 2, Time: 4},
	})
}

func TestEngineRestartDependentsPolicy(t *testing.T) {
	e := NewEngine(testGraph(t), Policy{RecoveryFrames: 1, RestartDependents: true})
	e.Decide(Event{Kind: EvLinkFault, Node: 1, Time: 1}, nil)
	got := e.Decide(Event{Kind: EvFrame, Node: 1, Time: 2}, nil)
	assertActions(t, got, []Action{
		{Kind: ActResume, Node: 1, Cause: 1, Time: 2},
		{Kind: ActScaleUp, Node: 1, Cause: 1, Time: 2},
		{Kind: ActScaleUp, Node: 2, Cause: 1, Time: 2},
		{Kind: ActRestartRunnables, Node: 2, Cause: 1, Time: 2},
		{Kind: ActScaleUp, Node: 3, Cause: 1, Time: 2},
		{Kind: ActRestartRunnables, Node: 3, Cause: 1, Time: 2},
	})
}

func TestEngineDisableScaleDown(t *testing.T) {
	e := NewEngine(testGraph(t), Policy{RecoveryFrames: 1, DisableScaleDown: true})
	got := e.Decide(Event{Kind: EvLinkFault, Node: 1, Time: 1}, nil)
	assertActions(t, got, []Action{
		{Kind: ActQuarantine, Node: 1, Cause: 1, Time: 1},
	})
	got = e.Decide(Event{Kind: EvFrame, Node: 1, Time: 2}, nil)
	assertActions(t, got, []Action{
		{Kind: ActResume, Node: 1, Cause: 1, Time: 2},
		{Kind: ActScaleUp, Node: 1, Cause: 1, Time: 2},
	})
}

func TestEngineIgnoresUnknownNodes(t *testing.T) {
	e := NewEngine(testGraph(t), Policy{})
	if got := e.Decide(Event{Kind: EvLinkFault, Node: 99, Time: 1}, nil); len(got) != 0 {
		t.Fatalf("unknown node emitted %v", got)
	}
}

// TestReplayDeterminism is the core determinism contract: the same
// event trace through fresh engines yields the identical action
// sequence, and Replay matches a manually driven engine.
func TestReplayDeterminism(t *testing.T) {
	g := testGraph(t)
	pol := Policy{RecoveryFrames: 2, RestartDependents: true}
	trace := []Event{
		{Kind: EvLinkFault, Node: 1, Time: 10},
		{Kind: EvFrame, Node: 1, Time: 11},
		{Kind: EvLinkFault, Node: 4, Time: 12},
		{Kind: EvFrame, Node: 1, Restarted: true, Time: 13},
		{Kind: EvFrame, Node: 1, Time: 14},
		{Kind: EvFrame, Node: 4, Time: 15},
		{Kind: EvFrame, Node: 4, Time: 16},
		{Kind: EvFrame, Node: 1, Time: 17},
	}
	live := NewEngine(g, pol)
	var liveActions []Action
	for _, ev := range trace {
		liveActions = live.Decide(ev, liveActions)
	}
	for i := 0; i < 10; i++ {
		replayed := Replay(g, pol, trace)
		assertActions(t, replayed, liveActions)
	}
	if len(liveActions) == 0 {
		t.Fatal("trace produced no actions — fixture is not exercising the engine")
	}
	// Sanity: the trace ends fully recovered.
	for _, n := range g.Nodes() {
		if NewEngine(g, pol).Quarantined(n) {
			t.Fatalf("fresh engine quarantines node %d", n)
		}
	}
}
