// Package reconfig implements the dynamic reconfiguration of applications
// the paper's outlook calls for ("fault handling strategies, especially
// concerning dynamic reconfiguration of applications", §5): when the
// Fault Management Framework terminates a faulty application, a
// pre-registered fallback configuration — typically a simpler limp-home
// task at a lower rate — is activated so the vehicle function degrades
// instead of disappearing. When the primary application is restored the
// fallback is retired again.
package reconfig

import (
	"errors"
	"fmt"
	"time"

	"swwd/internal/fmf"
	"swwd/internal/osek"
	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// Fallback describes one degraded-mode configuration.
type Fallback struct {
	// ForApp is the primary application whose termination engages the
	// fallback.
	ForApp runnable.AppID
	// Task is the fallback task to dispatch while engaged.
	Task runnable.TaskID
	// Alarm is the (non-autostart) cyclic alarm dispatching Task.
	Alarm osek.AlarmID
	// Offset and Cycle arm the alarm.
	Offset, Cycle time.Duration
}

// Event records one reconfiguration for the scenario log.
type Event struct {
	Time    sim.Time
	App     runnable.AppID
	Engaged bool // true = fallback engaged, false = retired
	Err     error
}

// Manager performs the reconfigurations. Wire it to the framework with
// fmf.Subscribe(manager.Notify).
type Manager struct {
	os        *osek.OS
	fallbacks map[runnable.AppID]Fallback
	engaged   map[runnable.AppID]bool
	log       []Event
}

// New creates a manager operating on the given OS.
func New(os *osek.OS) (*Manager, error) {
	if os == nil {
		return nil, errors.New("reconfig: OS is required")
	}
	return &Manager{
		os:        os,
		fallbacks: make(map[runnable.AppID]Fallback),
		engaged:   make(map[runnable.AppID]bool),
	}, nil
}

// AddFallback registers a degraded-mode configuration for an application.
func (m *Manager) AddFallback(fb Fallback) error {
	if _, dup := m.fallbacks[fb.ForApp]; dup {
		return fmt.Errorf("reconfig: app %d already has a fallback", fb.ForApp)
	}
	if fb.Cycle <= 0 {
		return fmt.Errorf("reconfig: fallback for app %d: cycle must be positive", fb.ForApp)
	}
	m.fallbacks[fb.ForApp] = fb
	return nil
}

// Engaged reports whether the fallback for app is currently active.
func (m *Manager) Engaged(app runnable.AppID) bool { return m.engaged[app] }

// Log returns the reconfiguration events so far.
func (m *Manager) Log() []Event {
	out := make([]Event, len(m.log))
	copy(out, m.log)
	return out
}

// Notify is the fmf.Notification subscriber: terminate treatments engage
// the fallback, restart treatments retire it (the primary is back).
func (m *Manager) Notify(n fmf.Notification) {
	if n.Treatment == nil {
		return
	}
	switch n.Treatment.Action {
	case fmf.TerminateAppAction:
		m.engage(n.Treatment.App, n.Treatment.Time)
	case fmf.RestartAppAction:
		m.retire(n.Treatment.App, n.Treatment.Time)
	case fmf.ResetECUAction:
		// The reset re-applies the autostart configuration; fallbacks are
		// not autostarted, so mark everything retired.
		for app, on := range m.engaged {
			if on {
				m.retire(app, n.Treatment.Time)
			}
		}
	}
}

func (m *Manager) engage(app runnable.AppID, at sim.Time) {
	fb, ok := m.fallbacks[app]
	if !ok || m.engaged[app] {
		return
	}
	err := m.os.SetRelAlarm(fb.Alarm, fb.Offset, fb.Cycle)
	if err == nil {
		m.engaged[app] = true
	}
	m.log = append(m.log, Event{Time: at, App: app, Engaged: true, Err: err})
}

// Restore retires the fallback and restores the primary application's
// boot configuration (autostart tasks and alarms) — the manual recovery
// path, e.g. after maintenance.
func (m *Manager) Restore(app runnable.AppID) error {
	if _, ok := m.fallbacks[app]; !ok {
		return fmt.Errorf("reconfig: app %d has no fallback", app)
	}
	if !m.engaged[app] {
		return nil
	}
	m.retire(app, m.os.Kernel().Now())
	m.os.ReapplyAutostart()
	return nil
}

func (m *Manager) retire(app runnable.AppID, at sim.Time) {
	fb, ok := m.fallbacks[app]
	if !ok || !m.engaged[app] {
		return
	}
	err := m.os.CancelAlarm(fb.Alarm)
	if terr := m.os.ForceTerminate(fb.Task); err == nil {
		err = terr
	}
	m.engaged[app] = false
	m.log = append(m.log, Event{Time: at, App: app, Engaged: false, Err: err})
}
