package swwd

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSentinelErrorsUnknownRunnable pins the errors.Is contract of every
// facade method that takes a runnable identifier.
func TestSentinelErrorsUnknownRunnable(t *testing.T) {
	m, _, producer, _ := buildModel(t)
	w, err := New(m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	bogus := RunnableID(9999)
	if err := w.SetHypothesis(bogus, Hypothesis{AlivenessCycles: 1, MinHeartbeats: 1}); !errors.Is(err, ErrUnknownRunnable) {
		t.Fatalf("SetHypothesis: got %v, want ErrUnknownRunnable", err)
	}
	if _, err := w.Register(bogus); !errors.Is(err, ErrUnknownRunnable) {
		t.Fatalf("Register: got %v, want ErrUnknownRunnable", err)
	}
	if err := w.Activate(bogus); !errors.Is(err, ErrUnknownRunnable) {
		t.Fatalf("Activate: got %v, want ErrUnknownRunnable", err)
	}
	if err := w.Deactivate(bogus); !errors.Is(err, ErrUnknownRunnable) {
		t.Fatalf("Deactivate: got %v, want ErrUnknownRunnable", err)
	}
	if err := w.MonitorFlow(bogus); !errors.Is(err, ErrUnknownRunnable) {
		t.Fatalf("MonitorFlow: got %v, want ErrUnknownRunnable", err)
	}
	if err := w.AddFlowPair(bogus, producer); !errors.Is(err, ErrUnknownRunnable) {
		t.Fatalf("AddFlowPair pred: got %v, want ErrUnknownRunnable", err)
	}
	if err := w.AddFlowPair(producer, bogus); !errors.Is(err, ErrUnknownRunnable) {
		t.Fatalf("AddFlowPair succ: got %v, want ErrUnknownRunnable", err)
	}
	if _, err := w.CounterSnapshot(bogus); !errors.Is(err, ErrUnknownRunnable) {
		t.Fatalf("CounterSnapshot: got %v, want ErrUnknownRunnable", err)
	}
	if _, _, _, err := w.RunnableErrors(bogus); !errors.Is(err, ErrUnknownRunnable) {
		t.Fatalf("RunnableErrors: got %v, want ErrUnknownRunnable", err)
	}
	// The happy path stays error-free.
	if _, err := w.Register(producer); err != nil {
		t.Fatalf("Register(valid): %v", err)
	}
}

// TestServiceSentinelErrors pins ErrAlreadyRunning / ErrNotRunning across
// both driving styles.
func TestServiceSentinelErrors(t *testing.T) {
	m, _, _, _ := buildModel(t)
	w, err := New(m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	svc, err := NewService(w, time.Millisecond)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	if err := svc.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("Stop idle: got %v, want ErrNotRunning", err)
	}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := svc.Start(); !errors.Is(err, ErrAlreadyRunning) {
		t.Fatalf("double Start: got %v, want ErrAlreadyRunning", err)
	}
	if err := svc.Run(context.Background()); !errors.Is(err, ErrAlreadyRunning) {
		t.Fatalf("Run while started: got %v, want ErrAlreadyRunning", err)
	}
	if err := svc.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := svc.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("second Stop: got %v, want ErrNotRunning", err)
	}
}

// TestServiceRunContextCancel verifies the blocking variant honours
// context cancellation and returns the context's error.
func TestServiceRunContextCancel(t *testing.T) {
	m, _, _, _ := buildModel(t)
	w, err := New(m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	svc, err := NewService(w, time.Millisecond)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Run(ctx) }()
	// Let a few cycles run, then cancel.
	deadline := time.Now().Add(time.Second)
	for w.CycleCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("service never cycled")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Run did not return after cancel")
	}
	// The loop claim is released: a fresh Run works.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := svc.Run(ctx2); !errors.Is(err, context.Canceled) {
		t.Fatalf("second Run: got %v, want context.Canceled", err)
	}
}

// TestServiceRunStoppedByStop verifies Stop ends a blocked Run with a nil
// return, the documented "stopped, not cancelled" contract.
func TestServiceRunStoppedByStop(t *testing.T) {
	m, _, _, _ := buildModel(t)
	w, err := New(m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	svc, err := NewService(w, time.Millisecond)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- svc.Run(context.Background()) }()
	// Wait until the loop owns the claim, then Stop it.
	deadline := time.Now().Add(time.Second)
	for {
		if err := svc.Stop(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Run never claimed the loop")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v after Stop, want nil", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Run did not return after Stop")
	}
}
