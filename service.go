package swwd

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Service drives a Watchdog's time-triggered units from the wall clock,
// deploying it as a live dependability service for ordinary Go programs:
// goroutines play the role of runnables and call Heartbeat (or
// Monitor.Beat); the service runs the monitoring cycle on a ticker.
//
// Two driving styles are supported. Run(ctx) is the blocking,
// context-aware variant for errgroup-style lifecycles; Start/Stop manage
// a background goroutine for main-function wiring. Both share one
// exclusive monitoring loop: starting while running reports
// ErrAlreadyRunning.
type Service struct {
	w      *Watchdog
	period time.Duration

	mu      sync.Mutex
	running bool
	stop    chan struct{} // closed by Stop to end the current loop
	done    chan struct{} // closed by the loop on exit
}

// NewService wraps a watchdog; period is the monitoring cycle (zero means
// the watchdog's configured CyclePeriod).
func NewService(w *Watchdog, period time.Duration) (*Service, error) {
	if w == nil {
		return nil, errors.New("swwd: watchdog is required")
	}
	if period <= 0 {
		period = w.CyclePeriod()
	}
	return &Service{w: w, period: period}, nil
}

// Run drives the monitoring cycle on the calling goroutine until ctx is
// cancelled (returning ctx.Err()) or Stop is called (returning nil).
// It reports ErrAlreadyRunning if a loop is already active.
//
// Goroutine-leak guarantee: Run spawns no goroutines; its ticker is
// stopped and all service state is released before it returns, so a
// cancelled Run leaves nothing behind.
func (s *Service) Run(ctx context.Context) error {
	stop, done, err := s.begin()
	if err != nil {
		return err
	}
	defer s.end(done)
	return s.loop(ctx, stop)
}

// Start launches the cycle loop on a background goroutine and returns
// immediately. It reports ErrAlreadyRunning if a loop is already active.
//
// Goroutine-leak guarantee: Start spawns exactly one goroutine, which
// exits when Stop is called; Stop blocks until it has exited, so no
// goroutine outlives a completed Stop.
func (s *Service) Start() error {
	stop, done, err := s.begin()
	if err != nil {
		return err
	}
	go func() {
		defer s.end(done)
		_ = s.loop(context.Background(), stop)
	}()
	return nil
}

// Stop halts the active loop — whether launched by Start or blocked in
// Run — and waits for it to exit. It reports ErrNotRunning when no loop
// is active; callers treating Stop as idempotent may ignore the error.
func (s *Service) Stop() error {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return ErrNotRunning
	}
	select {
	case <-s.stop: // a concurrent Stop already signalled this loop
	default:
		close(s.stop)
	}
	done := s.done
	s.mu.Unlock()
	<-done
	return nil
}

// begin claims the exclusive monitoring loop.
func (s *Service) begin() (stop, done chan struct{}, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return nil, nil, ErrAlreadyRunning
	}
	s.running = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	return s.stop, s.done, nil
}

// end releases the loop claim and signals waiters.
func (s *Service) end(done chan struct{}) {
	s.mu.Lock()
	s.running = false
	s.mu.Unlock()
	close(done)
}

// loop runs monitoring cycles until ctx is cancelled or stop is closed.
func (s *Service) loop(ctx context.Context, stop <-chan struct{}) error {
	ticker := time.NewTicker(s.period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-stop:
			return nil
		case <-ticker.C:
			s.w.Cycle()
		}
	}
}

// Watchdog exposes the wrapped watchdog, e.g. for Register/Heartbeat
// calls.
func (s *Service) Watchdog() *Watchdog { return s.w }
