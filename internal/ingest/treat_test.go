package ingest

// White-box tests of the wire v3 command channel and its treatment
// wiring: delivery accounting on the server side (sent / acked /
// dropped / stale), the session-epoch discipline protecting the ack
// path, and the reporter-restart-mid-quarantine renotification.

import (
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	"swwd/internal/sim"
	"swwd/internal/treat"
	"swwd/internal/wire"
)

// treatTestFleet builds a fleet on a manual clock with a pinned command
// epoch (so ack assertions are deterministic) and, optionally, the
// treatment control plane.
func treatTestFleet(t *testing.T, nodes int, cmdEpoch uint64, tc *TreatmentConfig) *Fleet {
	t.Helper()
	f, err := BuildFleet(FleetConfig{
		Nodes:            nodes,
		RunnablesPerNode: 1,
		Interval:         100 * time.Millisecond,
		CyclePeriod:      10 * time.Millisecond,
		GraceFrames:      3,
		Clock:            sim.NewManualClock(),
		CommandEpoch:     cmdEpoch,
		Treatment:        tc,
	})
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	if tc != nil {
		t.Cleanup(f.Treat.Close)
	}
	return f
}

// reporterSocket opens a loopback UDP socket standing in for one
// reporter: commands sent to its frames' source address arrive here.
func reporterSocket(t *testing.T) (*net.UDPConn, netip.AddrPort) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	ap := conn.LocalAddr().(*net.UDPAddr).AddrPort()
	return conn, ap
}

// recvCommand reads and decodes one command frame from a reporter
// socket.
func recvCommand(t *testing.T, conn *net.UDPConn) *wire.Command {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 2048)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("reading command: %v", err)
	}
	var cmd wire.Command
	if err := wire.DecodeCommand(buf[:n], &cmd); err != nil {
		t.Fatalf("DecodeCommand: %v", err)
	}
	return &cmd
}

// injectFrom pushes one heartbeat frame through the ingest path with an
// explicit source address, the way the shard worker sees it.
func injectFrom(t *testing.T, s *Server, f *wire.Frame, src netip.AddrPort) {
	t.Helper()
	var dec wire.Frame
	s.ingestFrame(encode(t, f), &dec, src)
}

func TestCommandSendAndAckAccounting(t *testing.T) {
	fleet := treatTestFleet(t, 1, 77, nil)
	if _, err := fleet.Server.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer fleet.Server.Close()
	srv := fleet.Server
	rep, repAddr := reporterSocket(t)

	// No frame has arrived yet: the node has no return address.
	if _, err := srv.SendCommand(0, wire.CmdRec{Op: wire.CmdQuarantine, Runnable: wire.CmdNodeTarget}); !errors.Is(err, ErrNoAddress) {
		t.Fatalf("SendCommand before any frame = %v, want ErrNoAddress", err)
	}
	if st := srv.Stats(); st.CommandsDropped != 1 {
		t.Fatalf("CommandsDropped = %d, want 1", st.CommandsDropped)
	}

	// A frame teaches the server the return address; the command goes
	// out carrying the pinned epoch and seq 1.
	injectFrom(t, srv, &wire.Frame{Node: 0, Epoch: 5, Seq: 1}, repAddr)
	seq, err := srv.SendCommand(0, wire.CmdRec{Op: wire.CmdQuarantine, Runnable: wire.CmdNodeTarget})
	if err != nil || seq != 1 {
		t.Fatalf("SendCommand = %d, %v, want seq 1", seq, err)
	}
	cmd := recvCommand(t, rep)
	if cmd.Node != 0 || cmd.Epoch != 77 || cmd.Seq != 1 ||
		len(cmd.Recs) != 1 || cmd.Recs[0].Op != wire.CmdQuarantine || cmd.Recs[0].Runnable != wire.CmdNodeTarget {
		t.Fatalf("received command = %+v", cmd)
	}

	// The ack pair on the next heartbeat confirms delivery.
	injectFrom(t, srv, &wire.Frame{Node: 0, Epoch: 5, Seq: 2, CmdAckEpoch: 77, CmdAckSeq: 1}, repAddr)
	if st := srv.Stats(); st.CommandsAcked != 1 || st.CommandStaleAcks != 0 {
		t.Fatalf("after valid ack: %+v", st)
	}

	// An ack carrying a superseded command epoch is stale: counted,
	// never credited.
	seq2, err := srv.SendCommand(0, wire.CmdRec{Op: wire.CmdResume, Runnable: wire.CmdNodeTarget})
	if err != nil || seq2 != 2 {
		t.Fatalf("second SendCommand = %d, %v", seq2, err)
	}
	recvCommand(t, rep)
	injectFrom(t, srv, &wire.Frame{Node: 0, Epoch: 5, Seq: 3, CmdAckEpoch: 76, CmdAckSeq: 2}, repAddr)
	if st := srv.Stats(); st.CommandsAcked != 1 || st.CommandStaleAcks != 1 {
		t.Fatalf("after stale-command-epoch ack: %+v", st)
	}

	// A whole frame from a superseded *session* epoch is dropped before
	// ack processing: a dead reporter incarnation cannot confirm
	// commands addressed to its successor.
	injectFrom(t, srv, &wire.Frame{Node: 0, Epoch: 4, Seq: 9, CmdAckEpoch: 77, CmdAckSeq: 2}, repAddr)
	st := srv.Stats()
	if st.StaleEpochDrops != 1 {
		t.Fatalf("StaleEpochDrops = %d, want 1", st.StaleEpochDrops)
	}
	if st.CommandsAcked != 1 {
		t.Fatalf("stale-session frame credited an ack: %+v", st)
	}

	// The live session acks seq 2; an absurd ack beyond anything issued
	// is clamped to the issued sequence and credits nothing further.
	injectFrom(t, srv, &wire.Frame{Node: 0, Epoch: 5, Seq: 4, CmdAckEpoch: 77, CmdAckSeq: 2}, repAddr)
	injectFrom(t, srv, &wire.Frame{Node: 0, Epoch: 5, Seq: 5, CmdAckEpoch: 77, CmdAckSeq: 99}, repAddr)
	if st := srv.Stats(); st.CommandsAcked != 2 {
		t.Fatalf("CommandsAcked = %d, want 2 (clamped to issued)", st.CommandsAcked)
	}
	if st := srv.Stats(); st.CommandsSent != 2 {
		t.Fatalf("CommandsSent = %d, want 2", st.CommandsSent)
	}
}

func TestCommandSendWithoutListen(t *testing.T) {
	fleet := treatTestFleet(t, 1, 7, nil)
	if _, err := fleet.Server.SendCommand(0, wire.CmdRec{Op: wire.CmdResume, Runnable: wire.CmdNodeTarget}); !errors.Is(err, ErrNotListening) {
		t.Fatalf("SendCommand without Listen = %v, want ErrNotListening", err)
	}
	if _, err := fleet.Server.SendCommand(9, wire.CmdRec{Op: wire.CmdResume}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("SendCommand to unknown node = %v, want ErrUnknownNode", err)
	}
}

// TestReporterRestartMidQuarantineRenotified: a reporter that restarts
// while its node is quarantined starts a fresh session knowing nothing
// of its quarantine; the session-epoch advance on its first frame must
// make the control plane resend the quarantine state.
func TestReporterRestartMidQuarantineRenotified(t *testing.T) {
	fleet := treatTestFleet(t, 2, 99, &TreatmentConfig{
		Edges: []treat.Edge{{Node: 1, DependsOn: 0}},
		// A huge recovery grace keeps node 0 quarantined for the whole
		// test, whatever frames trickle in.
		Policy: treat.Policy{RecoveryFrames: 1 << 20},
	})
	if _, err := fleet.Server.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer fleet.Server.Close()
	srv := fleet.Server
	rep0, rep0Addr := reporterSocket(t)
	rep1, rep1Addr := reporterSocket(t)

	// Both nodes report once so the server knows their return addresses.
	injectFrom(t, srv, &wire.Frame{Node: 0, Epoch: 10, Seq: 1}, rep0Addr)
	injectFrom(t, srv, &wire.Frame{Node: 1, Epoch: 10, Seq: 1}, rep1Addr)

	// A link fault on node 0 quarantines it and scales down node 1;
	// both learn their state over the command channel.
	fleet.Treat.OnLinkFault(0)
	if cmd := recvCommand(t, rep0); cmd.Epoch != 99 || cmd.Seq != 1 || cmd.Recs[0].Op != wire.CmdQuarantine {
		t.Fatalf("node 0 quarantine command = %+v", cmd)
	}
	if cmd := recvCommand(t, rep1); cmd.Seq != 1 || cmd.Recs[0].Op != wire.CmdQuarantine {
		t.Fatalf("node 1 scale-down command = %+v", cmd)
	}

	// The reporter restarts mid-quarantine: its next frame advances the
	// session epoch, and the controller must resend the quarantine. The
	// controller applies its quarantine bookkeeping asynchronously, so
	// the restart frame is retried with ever-newer epochs until the
	// interest set has caught up; each dropped frame never reaches the
	// engine, so exactly one notification is counted in the end.
	var notify *wire.Command
	var sessionEpoch uint64
	for attempt := uint64(0); attempt < 100; attempt++ {
		sessionEpoch = 11 + attempt
		injectFrom(t, srv, &wire.Frame{Node: 0, Epoch: sessionEpoch, Seq: 1}, rep0Addr)
		_ = rep0.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		buf := make([]byte, 2048)
		n, err := rep0.Read(buf)
		if err != nil {
			continue
		}
		var cmd wire.Command
		if err := wire.DecodeCommand(buf[:n], &cmd); err != nil {
			t.Fatalf("DecodeCommand: %v", err)
		}
		notify = &cmd
		break
	}
	if notify == nil {
		t.Fatal("restarted reporter never re-received its quarantine state")
	}
	if notify.Recs[0].Op != wire.CmdQuarantine || notify.Recs[0].Runnable != wire.CmdNodeTarget {
		t.Fatalf("renotification = %+v, want node-target quarantine", notify)
	}
	if notify.Seq != 2 {
		t.Fatalf("renotification seq = %d, want 2 (sequences are per node)", notify.Seq)
	}
	if st := fleet.Treat.Stats(); st.NotifyQuarantine != 1 || st.Quarantines != 1 {
		t.Fatalf("treatment stats = %+v, want exactly one quarantine and one renotification", st)
	}

	// A plain same-session frame (no restart) must not renotify.
	injectFrom(t, srv, &wire.Frame{Node: 0, Epoch: sessionEpoch, Seq: 2}, rep0Addr)
	_ = rep0.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 2048)
	if n, err := rep0.Read(buf); err == nil {
		t.Fatalf("non-restart frame triggered a %d-byte command", n)
	}
}
