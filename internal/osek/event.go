package osek

// EventMask is a bit set of OSEK events. Extended tasks wait on masks and
// other tasks (or alarms) set them.
type EventMask uint64

// Event returns the mask with only bit n set; n must be in [0,64).
func Event(n uint) EventMask {
	if n >= 64 {
		panic("osek: event bit out of range")
	}
	return EventMask(1) << n
}

// Has reports whether all events of q are set in m.
func (m EventMask) Has(q EventMask) bool { return m&q == q }

// Any reports whether at least one event of q is set in m.
func (m EventMask) Any(q EventMask) bool { return m&q != 0 }
