// Package flexray simulates the time-triggered FlexRay protocol at the
// communication-cycle level: a static TDMA segment with per-node slot
// ownership, an optional minislot-based dynamic segment, and the 0..63
// cycle counter. FlexRay carries the safety-critical x-by-wire traffic in
// the EASIS validator (§4.1, [16]).
package flexray

import (
	"errors"
	"fmt"
	"time"

	"swwd/internal/sim"
)

// MaxPayload is the FlexRay payload limit (254 bytes / 127 two-byte
// words).
const MaxPayload = 254

// cycleCounterPeriod is the number of communication cycles counted before
// wrap-around (0..63).
const cycleCounterPeriod = 64

// Config sizes the communication cycle.
type Config struct {
	// StaticSlots is the number of static TDMA slots per cycle.
	StaticSlots int
	// SlotDuration is the wire time of one static slot.
	SlotDuration time.Duration
	// Minislots is the number of dynamic-segment minislots per cycle
	// (zero disables the dynamic segment).
	Minislots int
	// MinislotDuration is the wire time of one minislot.
	MinislotDuration time.Duration
}

// CycleDuration reports the total communication-cycle length.
func (c Config) CycleDuration() time.Duration {
	return time.Duration(c.StaticSlots)*c.SlotDuration +
		time.Duration(c.Minislots)*c.MinislotDuration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.StaticSlots <= 0 {
		return errors.New("flexray: at least one static slot required")
	}
	if c.SlotDuration <= 0 {
		return errors.New("flexray: slot duration must be positive")
	}
	if c.Minislots < 0 || (c.Minislots > 0 && c.MinislotDuration <= 0) {
		return errors.New("flexray: invalid dynamic segment")
	}
	return nil
}

// Frame is one FlexRay frame as seen by receivers.
type Frame struct {
	Slot    int // static slot number (1-based) or dynamic frame ID
	Cycle   int // cycle counter 0..63 at transmission
	Dynamic bool
	Data    []byte
}

// Stats aggregates bus counters.
type Stats struct {
	Cycles         uint64
	StaticFrames   uint64
	DynamicFrames  uint64
	EmptySlots     uint64
	DynamicDropped uint64 // dynamic requests that did not fit the segment
}

// Bus is one FlexRay channel.
type Bus struct {
	kernel *sim.Kernel
	cfg    Config
	nodes  []*Node
	// static slot ownership: slot (1-based) → node
	owners map[int]*Node
	cycle  int
	stats  Stats
	// dynamic send requests for the coming dynamic segment, keyed by
	// frame ID (lower = earlier minislot = higher priority).
	dynPending map[int][]byte
	started    bool
}

// NewBus creates a FlexRay bus; Start begins the cycle schedule.
func NewBus(k *sim.Kernel, cfg Config) (*Bus, error) {
	if k == nil {
		return nil, errors.New("flexray: kernel is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bus{
		kernel:     k,
		cfg:        cfg,
		owners:     make(map[int]*Node),
		dynPending: make(map[int][]byte),
	}, nil
}

// Config reports the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Stats reports the bus counters.
func (b *Bus) Stats() Stats { return b.stats }

// CycleCounter reports the current communication cycle counter (0..63).
func (b *Bus) CycleCounter() int { return b.cycle % cycleCounterPeriod }

// AttachNode adds a node.
func (b *Bus) AttachNode(name string) *Node {
	n := &Node{name: name, bus: b, txBuf: make(map[int][]byte)}
	b.nodes = append(b.nodes, n)
	return n
}

// AssignSlot gives a node exclusive ownership of a static slot (1-based).
func (b *Bus) AssignSlot(slot int, n *Node) error {
	if slot < 1 || slot > b.cfg.StaticSlots {
		return fmt.Errorf("flexray: slot %d out of range 1..%d", slot, b.cfg.StaticSlots)
	}
	if owner, taken := b.owners[slot]; taken {
		return fmt.Errorf("flexray: slot %d already owned by %s", slot, owner.name)
	}
	if n == nil || n.bus != b {
		return errors.New("flexray: node does not belong to this bus")
	}
	b.owners[slot] = n
	return nil
}

// Start launches the communication schedule.
func (b *Bus) Start() error {
	if b.started {
		return errors.New("flexray: already started")
	}
	b.started = true
	b.scheduleCycle()
	return nil
}

func (b *Bus) scheduleCycle() {
	// Static segment: each slot fires at its offset within the cycle.
	for slot := 1; slot <= b.cfg.StaticSlots; slot++ {
		slot := slot
		offset := time.Duration(slot-1) * b.cfg.SlotDuration
		b.kernel.After(offset+b.cfg.SlotDuration, func() { b.fireStaticSlot(slot) })
	}
	if b.cfg.Minislots > 0 {
		staticEnd := time.Duration(b.cfg.StaticSlots) * b.cfg.SlotDuration
		b.kernel.After(staticEnd, func() { b.fireDynamicSegment() })
	}
	b.kernel.After(b.cfg.CycleDuration(), func() {
		b.cycle++
		b.stats.Cycles++
		b.scheduleCycle()
	})
}

func (b *Bus) fireStaticSlot(slot int) {
	owner := b.owners[slot]
	if owner == nil {
		b.stats.EmptySlots++
		return
	}
	data, ok := owner.takeFrame(slot)
	if !ok {
		b.stats.EmptySlots++
		return
	}
	b.stats.StaticFrames++
	owner.stats.Sent++
	f := Frame{Slot: slot, Cycle: b.CycleCounter(), Data: data}
	for _, n := range b.nodes {
		if n == owner {
			continue
		}
		n.deliver(f)
	}
}

// fireDynamicSegment transmits pending dynamic frames in frame-ID order
// until the minislots are exhausted: each frame consumes minislots
// proportional to its size, unsent requests are dropped (counted), as the
// real protocol defers them past the cycle.
func (b *Bus) fireDynamicSegment() {
	if len(b.dynPending) == 0 {
		return
	}
	ids := make([]int, 0, len(b.dynPending))
	for id := range b.dynPending {
		ids = append(ids, id)
	}
	// Insertion sort: small n, no need for package sort.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	budget := b.cfg.Minislots
	offset := time.Duration(0)
	for _, id := range ids {
		data := b.dynPending[id]
		// One minislot per started 16-byte chunk, minimum 1.
		needed := (len(data) + 15) / 16
		if needed == 0 {
			needed = 1
		}
		if needed > budget {
			b.stats.DynamicDropped++
			continue
		}
		budget -= needed
		f := Frame{Slot: id, Cycle: b.CycleCounter(), Dynamic: true, Data: data}
		dur := time.Duration(needed) * b.cfg.MinislotDuration
		deliverAt := offset + dur
		b.kernel.After(deliverAt, func() {
			b.stats.DynamicFrames++
			for _, n := range b.nodes {
				n.deliver(f)
			}
		})
		offset += dur
	}
	b.dynPending = make(map[int][]byte)
}

// NodeStats aggregates per-node counters.
type NodeStats struct {
	Sent     uint64
	Received uint64
}

// Node is one FlexRay communication controller.
type Node struct {
	name     string
	bus      *Bus
	txBuf    map[int][]byte // slot → pending payload
	handlers []func(Frame)
	stats    NodeStats
}

// Name reports the node name.
func (n *Node) Name() string { return n.name }

// Stats reports the node counters.
func (n *Node) Stats() NodeStats { return n.stats }

// WriteSlot stages a payload for the node's next occurrence of its static
// slot; it overwrites any previously staged payload (latest-value
// semantics, as in a time-triggered buffer).
func (n *Node) WriteSlot(slot int, data []byte) error {
	if n.bus.owners[slot] != n {
		return fmt.Errorf("flexray: node %s does not own slot %d", n.name, slot)
	}
	if len(data) > MaxPayload {
		return fmt.Errorf("flexray: payload %d exceeds %d bytes", len(data), MaxPayload)
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	n.txBuf[slot] = buf
	return nil
}

// SendDynamic requests transmission of a frame in the next dynamic
// segment; lower frame IDs win earlier minislots. A second request with
// the same ID before the segment runs overwrites the first.
func (n *Node) SendDynamic(frameID int, data []byte) error {
	if n.bus.cfg.Minislots == 0 {
		return errors.New("flexray: bus has no dynamic segment")
	}
	if frameID < 1 {
		return fmt.Errorf("flexray: dynamic frame id %d must be >= 1", frameID)
	}
	if len(data) > MaxPayload {
		return fmt.Errorf("flexray: payload %d exceeds %d bytes", len(data), MaxPayload)
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	n.bus.dynPending[frameID] = buf
	return nil
}

// Subscribe registers a receive handler for all frames on the channel.
func (n *Node) Subscribe(handler func(Frame)) {
	if handler != nil {
		n.handlers = append(n.handlers, handler)
	}
}

func (n *Node) takeFrame(slot int) ([]byte, bool) {
	data, ok := n.txBuf[slot]
	if ok {
		delete(n.txBuf, slot)
	}
	return data, ok
}

func (n *Node) deliver(f Frame) {
	if len(n.handlers) == 0 {
		return
	}
	n.stats.Received++
	for _, h := range n.handlers {
		data := make([]byte, len(f.Data))
		copy(data, f.Data)
		h(Frame{Slot: f.Slot, Cycle: f.Cycle, Dynamic: f.Dynamic, Data: data})
	}
}
