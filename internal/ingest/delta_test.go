package ingest

import (
	"reflect"
	"testing"
)

func TestStatsDelta(t *testing.T) {
	prev := Stats{
		Frames: 100, Bytes: 3200, Accepted: 90, DecodeErrors: 1,
		UnknownNode: 2, SeqGaps: 3, SeqGapEvents: 1, DuplicateDrops: 4,
		NodeRestarts: 1, StaleEpochDrops: 2, IntervalMismatch: 1,
		DroppedPackets: 5, BuffersExhausted: 1, ReadErrors: 1,
		CommandsSent: 10, CommandsAcked: 9, CommandsDropped: 1,
		CommandStaleAcks: 1, Nodes: 4, Listeners: 2,
	}
	cur := Stats{
		Frames: 150, Bytes: 4800, Accepted: 138, DecodeErrors: 1,
		UnknownNode: 2, SeqGaps: 7, SeqGapEvents: 2, DuplicateDrops: 4,
		NodeRestarts: 2, StaleEpochDrops: 2, IntervalMismatch: 1,
		DroppedPackets: 6, BuffersExhausted: 1, ReadErrors: 1,
		CommandsSent: 13, CommandsAcked: 12, CommandsDropped: 1,
		CommandStaleAcks: 2, Nodes: 5, Listeners: 2,
	}
	want := Stats{
		Frames: 50, Bytes: 1600, Accepted: 48, DecodeErrors: 0,
		UnknownNode: 0, SeqGaps: 4, SeqGapEvents: 1, DuplicateDrops: 0,
		NodeRestarts: 1, StaleEpochDrops: 0, IntervalMismatch: 0,
		DroppedPackets: 1, BuffersExhausted: 0, ReadErrors: 0,
		CommandsSent: 3, CommandsAcked: 3, CommandsDropped: 0,
		CommandStaleAcks: 1, Nodes: 5, Listeners: 2, // gauges carried, not differenced
	}
	if got := cur.Delta(prev); !reflect.DeepEqual(got, want) {
		t.Fatalf("Delta = %+v, want %+v", got, want)
	}
	// A delta against itself is zero counters with carried gauges.
	zero := cur.Delta(cur)
	if zero.Frames != 0 || zero.Accepted != 0 || zero.Nodes != cur.Nodes || zero.Listeners != cur.Listeners {
		t.Fatalf("self-delta = %+v", zero)
	}
}
