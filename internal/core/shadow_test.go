package core

import (
	"errors"
	"sync"
	"testing"

	"swwd/internal/calib"
	"swwd/internal/runnable"
)

// TestShadowGuardRejectsTooTight is the shadow-guard safety property: a
// candidate hypothesis tighter than the live behaviour accumulates
// would-be faults and never builds a clean streak — and not a single
// live fault is raised while it is evaluated.
func TestShadowGuardRejectsTooTight(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()

	// A beats once per cycle: 5 beats per 5-cycle window. A candidate
	// demanding 8 is too tight.
	tooTight := Hypothesis{AlivenessCycles: 5, MinHeartbeats: 8, ArrivalCycles: 5, MaxArrivals: 9}
	if err := f.w.SetShadow(f.a, tooTight); err != nil {
		t.Fatalf("SetShadow: %v", err)
	}
	f.spin(25, func(int) {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.b)
		f.w.Heartbeat(f.c)
	})

	st, err := f.w.ShadowVerdict(f.a)
	if err != nil {
		t.Fatalf("ShadowVerdict: %v", err)
	}
	if st.Windows != 5 {
		t.Fatalf("shadow windows = %d, want 5", st.Windows)
	}
	if st.WouldAliveness != 5 || st.CleanStreak != 0 {
		t.Fatalf("verdict = %+v, want 5 would-aliveness and zero streak", st)
	}
	if got := f.w.Results(); got != (Results{}) {
		t.Fatalf("shadow raised live faults: %+v", got)
	}
	if n := len(f.sink.faults); n != 0 {
		t.Fatalf("sink saw %d reports during shadow evaluation", n)
	}
}

// TestShadowCleanStreakAndPromotion drives a fitting candidate to a
// clean streak, then verifies promotion via SetHypothesis keeps the
// runnable fault-free (the zero-downtime path) and that ClearShadow
// retires the evaluation.
func TestShadowCleanStreak(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()

	fits := Hypothesis{AlivenessCycles: 5, MinHeartbeats: 4, ArrivalCycles: 5, MaxArrivals: 6}
	if err := f.w.SetShadow(f.a, fits); err != nil {
		t.Fatalf("SetShadow: %v", err)
	}
	f.spin(20, func(int) {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.b)
		f.w.Heartbeat(f.c)
	})
	st, err := f.w.ShadowVerdict(f.a)
	if err != nil {
		t.Fatalf("ShadowVerdict: %v", err)
	}
	if st.Windows != 4 || st.CleanStreak != 4 || st.WouldAliveness != 0 || st.WouldArrival != 0 {
		t.Fatalf("verdict = %+v, want 4 clean windows", st)
	}
	reports := f.w.Shadows()
	if len(reports) != 1 || reports[0].Runnable != f.a || reports[0].CleanStreak != 4 {
		t.Fatalf("Shadows() = %+v", reports)
	}

	// Promote: apply the candidate live, retire the shadow, keep beating.
	if err := f.w.SetHypothesis(f.a, fits); err != nil {
		t.Fatalf("SetHypothesis: %v", err)
	}
	if err := f.w.ClearShadow(f.a); err != nil {
		t.Fatalf("ClearShadow: %v", err)
	}
	if _, err := f.w.ShadowVerdict(f.a); err == nil {
		t.Fatal("verdict survived ClearShadow")
	}
	f.spin(20, func(int) {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.b)
		f.w.Heartbeat(f.c)
	})
	if got := f.w.Results(); got != (Results{}) {
		t.Fatalf("promotion caused faults: %+v", got)
	}
}

// TestShadowSkipsInactiveWindows: a deactivated runnable's shadow
// windows render no verdict (and the reactivated stream judges cleanly
// from the resynchronized baseline).
func TestShadowSkipsInactiveWindows(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	if err := f.w.SetShadow(f.a, Hypothesis{AlivenessCycles: 5, MinHeartbeats: 4}); err != nil {
		t.Fatalf("SetShadow: %v", err)
	}
	if err := f.w.Deactivate(f.a); err != nil {
		t.Fatalf("Deactivate: %v", err)
	}
	f.spin(20, nil)
	st, _ := f.w.ShadowVerdict(f.a)
	if st.Windows != 0 || st.WouldAliveness != 0 {
		t.Fatalf("inactive runnable was judged: %+v", st)
	}
	if err := f.w.Activate(f.a); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	f.spin(20, func(int) { f.w.Heartbeat(f.a) })
	st, _ = f.w.ShadowVerdict(f.a)
	if st.Windows == 0 || st.WouldAliveness != 0 || st.CleanStreak != st.Windows {
		t.Fatalf("post-reactivation verdict = %+v, want all-clean windows", st)
	}
}

// TestShadowValidation pins the SetShadow argument contract.
func TestShadowValidation(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	if err := f.w.SetShadow(99, Hypothesis{AlivenessCycles: 5, MinHeartbeats: 1}); !errors.Is(err, ErrUnknownRunnable) {
		t.Errorf("unknown runnable: err = %v", err)
	}
	if err := f.w.SetShadow(f.a, Hypothesis{}); err == nil {
		t.Error("monitors-nothing candidate accepted")
	}
	if err := f.w.SetShadow(f.a, Hypothesis{AlivenessCycles: 5, MinHeartbeats: 1, ArrivalCycles: 7, MaxArrivals: 9}); err == nil {
		t.Error("unequal-period candidate accepted")
	}
	if err := f.w.SetShadow(f.a, Hypothesis{AlivenessCycles: -1}); err == nil {
		t.Error("invalid hypothesis accepted")
	}
	if _, err := f.w.ShadowVerdict(f.b); err == nil {
		t.Error("verdict without a shadow installed")
	}

	legacy := newFixture(t, func(c *Config) { c.LegacySweep = true })
	legacy.monitorAll()
	if err := legacy.w.SetShadow(legacy.a, Hypothesis{AlivenessCycles: 5, MinHeartbeats: 1}); err == nil {
		t.Error("LegacySweep accepted a shadow hypothesis")
	}
}

// TestShadowSurvivesClearAll: ClearAll rewinds the cycle counter and
// rebuilds the wheel; installed shadows must keep evaluating.
func TestShadowSurvivesClearAll(t *testing.T) {
	f := newFixture(t, nil)
	f.monitorAll()
	if err := f.w.SetShadow(f.a, Hypothesis{AlivenessCycles: 5, MinHeartbeats: 4}); err != nil {
		t.Fatalf("SetShadow: %v", err)
	}
	f.spin(7, func(int) { f.w.Heartbeat(f.a) })
	f.w.ClearAll()
	f.spin(20, func(int) { f.w.Heartbeat(f.a) })
	st, err := f.w.ShadowVerdict(f.a)
	if err != nil {
		t.Fatalf("ShadowVerdict after ClearAll: %v", err)
	}
	if st.Windows < 4 || st.WouldAliveness != 0 {
		t.Fatalf("post-ClearAll verdict = %+v, want clean windows", st)
	}
}

// TestEstimatorSampling checks the Cycle-driven estimator feed: window
// counts equal the beats banked between samples, and inactive runnables
// are excluded rather than recorded as silent.
func TestEstimatorSampling(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.EstimatorWindowCycles = 5 })
	f.monitorAll()
	if err := f.w.Deactivate(f.c); err != nil {
		t.Fatalf("Deactivate: %v", err)
	}
	f.spin(25, func(int) {
		f.w.Heartbeat(f.a)
		f.w.Heartbeat(f.b)
		f.w.Heartbeat(f.b)
		f.w.Heartbeat(f.c) // inactive: not recorded
	})
	est := f.w.Estimator()
	if est == nil {
		t.Fatal("estimator not wired")
	}
	// 25 cycles = 5 window boundaries; the first only primes.
	if est.Windows() != 4 {
		t.Fatalf("estimator windows = %d, want 4", est.Windows())
	}
	rb, _ := est.RunnableBaseline(int(f.a))
	if rb.Min != 5 || rb.Max != 5 || rb.Windows != 4 {
		t.Fatalf("runnable A baseline = %+v, want steady 5", rb)
	}
	rb, _ = est.RunnableBaseline(int(f.b))
	if rb.Min != 10 || rb.Max != 10 {
		t.Fatalf("runnable B baseline = %+v, want steady 10", rb)
	}
	rb, _ = est.RunnableBaseline(int(f.c))
	if rb.Windows != 0 {
		t.Fatalf("inactive runnable C accumulated windows: %+v", rb)
	}

	// The baseline feeds Suggest directly.
	props := calib.Suggest(est.Baseline(), calib.Policy{Margin: 0.3})
	if len(props) != 2 {
		t.Fatalf("got %d proposals, want 2 (A and B): %+v", len(props), props)
	}
	if props[0].Runnable != int(f.a) || props[0].Hyp.MinHeartbeats != 3 || props[0].Hyp.MaxArrivals != 7 {
		t.Fatalf("proposal for A = %+v", props[0])
	}

	// Estimator off → nil accessor, zero extra work.
	off := newFixture(t, nil)
	if off.w.Estimator() != nil {
		t.Fatal("estimator present without EstimatorWindowCycles")
	}
}

// TestCalibRaceStress exercises the estimator sampling and the shadow
// guard concurrently with beats, cycles, snapshots and verdict reads —
// the satellite race test, meaningful under -race.
func TestCalibRaceStress(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.EstimatorWindowCycles = 3 })
	f.monitorAll()
	if err := f.w.SetShadow(f.a, Hypothesis{AlivenessCycles: 5, MinHeartbeats: 1, ArrivalCycles: 5, MaxArrivals: 50}); err != nil {
		t.Fatalf("SetShadow: %v", err)
	}

	const iters = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, rid := range []runnable.ID{f.a, f.b, f.c} {
		rid := rid
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f.w.Heartbeat(rid)
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // concurrent Cycle driver (second caller next to spin below)
		defer wg.Done()
		for i := 0; i < iters; i++ {
			f.w.Cycle()
		}
	}()
	wg.Add(1)
	go func() { // snapshot + journal-style scrapes
		defer wg.Done()
		var snap Snapshot
		for i := 0; i < iters; i++ {
			f.w.SnapshotInto(&snap)
			_, _ = f.w.ShadowVerdict(f.a)
			_ = f.w.Shadows()
			if est := f.w.Estimator(); est != nil {
				_ = est.Baseline()
			}
		}
	}()
	wg.Add(1)
	go func() { // shadow churn
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = f.w.SetShadow(f.b, Hypothesis{AlivenessCycles: 4, MinHeartbeats: 1})
			_ = f.w.ClearShadow(f.b)
		}
	}()
	for i := 0; i < iters; i++ {
		f.w.Cycle()
	}
	close(stop)
	wg.Wait()
}
