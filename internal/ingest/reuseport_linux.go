//go:build linux

package ingest

import "syscall"

// reusePortSupported reports platform capability; the kernel-level
// check (SO_REUSEPORT needs linux >= 3.9) happens at bind time, where a
// refusal degrades to the single-socket path.
const reusePortSupported = true

// soReusePort is SO_REUSEPORT on linux. The stdlib syscall package
// predates the option and never picked the constant up (it lives in
// golang.org/x/sys/unix, which this module deliberately does not
// depend on), so it is spelled here; the value is uapi-stable across
// architectures (asm-generic/socket.h).
const soReusePort = 0xf

// reusePortControl is the net.ListenConfig.Control hook that marks the
// socket for shared binding before bind(2) runs.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}
