package ingest

// Functional options: the constructor idiom of the root swwd package
// (swwd.New, validator.New), extended to the ingestion server. New is
// the preferred constructor; the Config-struct NewServer remains as a
// deprecated thin wrapper for existing callers.

import "swwd/internal/core"

// Option configures a Server built with New. Options are applied in
// order over the zero Config, so later options win; anything expressible
// with an Option can equally be set on a Config passed to NewServer.
type Option func(*Config)

// WithShards sets the worker count frames are decoded on; a node is
// pinned to the worker node%Shards, so frames of one node always replay
// in order. Zero or negative keeps DefaultShards.
func WithShards(n int) Option {
	return func(cfg *Config) { cfg.Shards = n }
}

// WithQueueLen sets the per-worker packet queue depth. Zero or negative
// keeps DefaultQueueLen.
func WithQueueLen(n int) Option {
	return func(cfg *Config) { cfg.QueueLen = n }
}

// WithMaxPacket sets the largest accepted datagram (and pooled buffer
// size). Zero or negative keeps DefaultMaxPacket.
func WithMaxPacket(n int) Option {
	return func(cfg *Config) { cfg.MaxPacket = n }
}

// WithGraceFrames sets how many declared flush intervals a node may
// stay silent before its link runnable accumulates an aliveness error.
// Zero or negative keeps DefaultGraceFrames.
func WithGraceFrames(n int) Option {
	return func(cfg *Config) { cfg.GraceFrames = n }
}

// WithReadBuffer sets the requested SO_RCVBUF of each UDP socket. Zero
// or negative keeps DefaultReadBuffer.
func WithReadBuffer(n int) Option {
	return func(cfg *Config) { cfg.ReadBuffer = n }
}

// WithListeners sets how many UDP sockets Listen binds to the address
// via SO_REUSEPORT, each with its own batched read loop. Platforms and
// kernels without SO_REUSEPORT fall back to one socket. Zero or
// negative keeps DefaultListeners; values beyond MaxListeners are
// capped.
func WithListeners(n int) Option {
	return func(cfg *Config) { cfg.Listeners = n }
}

// WithBatchSize sets how many datagrams one read-loop receive may
// return (recvmmsg on linux/amd64 and linux/arm64). 1 disables
// batching; zero or negative keeps DefaultBatchSize; values beyond
// MaxBatchSize are capped.
func WithBatchSize(n int) Option {
	return func(cfg *Config) { cfg.BatchSize = n }
}

// WithCommandEpoch pins the server's command epoch instead of deriving
// it from the construction wall time. Tests use it to make the command
// channel deterministic; live servers should let the default stand so a
// restarted server always supersedes its predecessor.
func WithCommandEpoch(epoch uint64) Option {
	return func(cfg *Config) { cfg.CommandEpoch = epoch }
}

// WithFrameHook subscribes hook to every accepted frame: the node ID
// and whether the frame advanced the node's session epoch (reporter
// restart). The treatment controller's OnFrame is the intended
// subscriber. The hook runs on the shard worker goroutine and must be
// non-blocking.
func WithFrameHook(hook func(node uint32, restarted bool)) Option {
	return func(cfg *Config) { cfg.FrameHook = hook }
}

// New validates the options and builds an idle server ingesting into w;
// register nodes with RegisterNode, then bind it with Listen. It is the
// options-form equivalent of NewServer.
func New(w *core.Watchdog, opts ...Option) (*Server, error) {
	cfg := Config{Watchdog: w}
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg.Watchdog = w // the watchdog is New's contract, not an option
	return newServer(cfg)
}
