package swwdclient

// Functional options: the constructor idiom shared with the root swwd
// package and ingest.New, applied here to the reporter client. Dial is
// the preferred constructor; the Config-struct DialConfig remains as a
// deprecated thin wrapper for existing callers.

import (
	"net"
	"time"
)

// Option configures a Client built with Dial. Options are applied in
// order over the zero Config, so later options win; anything expressible
// with an Option can equally be set on a Config passed to DialConfig.
type Option func(*Config)

// WithNode sets this node's wire ID, as registered on the server.
// Unset means node 0.
func WithNode(node uint32) Option {
	return func(cfg *Config) { cfg.Node = node }
}

// WithRunnables sets the node-local runnable count; Beat/Exec indices
// are 0..n-1 and map to the server-side registration table. Required:
// Dial fails without a positive count.
func WithRunnables(n int) Option {
	return func(cfg *Config) { cfg.Runnables = n }
}

// WithInterval sets the flush cadence, also declared in every frame so
// the server derives the link hypothesis from it. Zero or negative
// keeps DefaultInterval.
func WithInterval(d time.Duration) Option {
	return func(cfg *Config) { cfg.Interval = d }
}

// WithMaxFlowBacklog caps buffered flow events between flushes; beyond
// it new events are dropped and counted. Zero or negative keeps
// DefaultMaxFlowBacklog.
func WithMaxFlowBacklog(n int) Option {
	return func(cfg *Config) { cfg.MaxFlowBacklog = n }
}

// WithBackoff bounds the reconnect backoff after send failures. Zeros
// keep the defaults.
func WithBackoff(min, max time.Duration) Option {
	return func(cfg *Config) {
		cfg.MinBackoff = min
		cfg.MaxBackoff = max
	}
}

// WithOnCommand subscribes fn to the server's treatment commands. fn
// runs on the background reader goroutine, one call per command record,
// in order; it must not block for long — the socket buffer is the only
// queue behind it.
func WithOnCommand(fn func(Command)) Option {
	return func(cfg *Config) { cfg.OnCommand = fn }
}

// WithDialer replaces the socket constructor used by Dial and by every
// backoff redial. The chaos campaign engine (internal/chaos) uses it to
// interpose a fault-injecting conn between reporter and server; nil
// keeps the plain net.Dial("udp", addr).
func WithDialer(fn func(addr string) (net.Conn, error)) Option {
	return func(cfg *Config) { cfg.Dialer = fn }
}
