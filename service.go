package swwd

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Service drives a Watchdog's time-triggered units from the wall clock,
// deploying it as a live dependability service for ordinary Go programs:
// goroutines play the role of runnables and call Heartbeat (or
// Monitor.Beat); the service runs the monitoring cycle on a ticker.
//
// Two driving styles are supported. Run(ctx) is the blocking,
// context-aware variant for errgroup-style lifecycles; Start/Stop manage
// a background goroutine for main-function wiring. Both share one
// exclusive monitoring loop: starting while running reports
// ErrAlreadyRunning.
type Service struct {
	w      *Watchdog
	period time.Duration

	// missed counts monitoring cycles lost to ticker overruns: when one
	// Cycle (or a scheduling stall) takes longer than the period, the
	// ticker drops the intervening ticks and the watchdog's cycle counter
	// falls behind wall time — which silently stretches every fault
	// hypothesis window. The drift is detected from the tick timestamps.
	missed  atomic.Uint64
	overrun atomic.Pointer[OverrunHandler]

	// Driver telemetry (see Stats/Snapshot): ticks actually driven,
	// overrun events observed and the worst lateness seen, cumulative
	// across restarts like missed.
	ticks    atomic.Uint64
	overruns atomic.Uint64
	maxLate  atomic.Int64 // nanoseconds

	mu      sync.Mutex
	running bool
	stop    chan struct{} // closed by Stop to end the current loop
	done    chan struct{} // closed by the loop on exit
}

// OverrunHandler observes monitoring-cycle overruns: missed is the number
// of cycles lost between two ticker deliveries, late is how far past one
// period the delivery arrived. Handlers run on the monitoring loop
// goroutine and must be fast; typical use is a log line or a metric.
type OverrunHandler func(missed uint64, late time.Duration)

// NewService wraps a watchdog; period is the monitoring cycle (zero means
// the watchdog's configured CyclePeriod).
func NewService(w *Watchdog, period time.Duration) (*Service, error) {
	if w == nil {
		return nil, errors.New("swwd: watchdog is required")
	}
	if period <= 0 {
		period = w.CyclePeriod()
	}
	return &Service{w: w, period: period}, nil
}

// Run drives the monitoring cycle on the calling goroutine until ctx is
// cancelled (returning ctx.Err()) or Stop is called (returning nil).
// It reports ErrAlreadyRunning if a loop is already active.
//
// Goroutine-leak guarantee: Run spawns no goroutines; its ticker is
// stopped and all service state is released before it returns, so a
// cancelled Run leaves nothing behind.
func (s *Service) Run(ctx context.Context) error {
	stop, done, err := s.begin()
	if err != nil {
		return err
	}
	defer s.end(done)
	return s.loop(ctx, stop)
}

// Start launches the cycle loop on a background goroutine and returns
// immediately. It reports ErrAlreadyRunning if a loop is already active.
//
// Goroutine-leak guarantee: Start spawns exactly one goroutine, which
// exits when Stop is called; Stop blocks until it has exited, so no
// goroutine outlives a completed Stop.
func (s *Service) Start() error {
	stop, done, err := s.begin()
	if err != nil {
		return err
	}
	go func() {
		defer s.end(done)
		_ = s.loop(context.Background(), stop)
	}()
	return nil
}

// Stop halts the active loop — whether launched by Start or blocked in
// Run — and waits for it to exit. It reports ErrNotRunning when no loop
// is active; callers treating Stop as idempotent may ignore the error.
func (s *Service) Stop() error {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return ErrNotRunning
	}
	select {
	case <-s.stop: // a concurrent Stop already signalled this loop
	default:
		close(s.stop)
	}
	done := s.done
	s.mu.Unlock()
	<-done
	return nil
}

// begin claims the exclusive monitoring loop.
func (s *Service) begin() (stop, done chan struct{}, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return nil, nil, ErrAlreadyRunning
	}
	s.running = true
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	return s.stop, s.done, nil
}

// end releases the loop claim and signals waiters.
func (s *Service) end(done chan struct{}) {
	s.mu.Lock()
	s.running = false
	s.mu.Unlock()
	close(done)
}

// MissedCycles reports how many monitoring cycles have been lost to
// overruns since the service was created (cumulative across restarts).
// A non-zero value means the configured period is too short for the
// sweep load — hypothesis windows were measured against fewer cycles
// than wall time would imply.
func (s *Service) MissedCycles() uint64 { return s.missed.Load() }

// SetOverrunHandler installs (or, with nil, removes) the callback invoked
// whenever ticker deliveries show that cycles were dropped. Safe to call
// concurrently with a running loop.
func (s *Service) SetOverrunHandler(h OverrunHandler) {
	if h == nil {
		s.overrun.Store(nil)
		return
	}
	s.overrun.Store(&h)
}

// noteTick accounts one ticker delivery at now given the previous
// delivery time, crediting fully skipped periods to the missed-cycle
// counter and notifying the overrun handler. Go tickers drop ticks when
// the receiver is slow, so a gap of k periods means k-1 cycles never ran.
// The half-period guard tolerates ordinary scheduling jitter.
func (s *Service) noteTick(prev, now time.Time) uint64 {
	gap := now.Sub(prev)
	if gap <= s.period+s.period/2 {
		return 0
	}
	n := uint64(gap/s.period) - 1
	if n == 0 {
		return 0
	}
	s.missed.Add(n)
	s.overruns.Add(1)
	late := gap - s.period
	for {
		old := s.maxLate.Load()
		if int64(late) <= old || s.maxLate.CompareAndSwap(old, int64(late)) {
			break
		}
	}
	if h := s.overrun.Load(); h != nil {
		(*h)(n, late)
	}
	return n
}

// loop runs monitoring cycles until ctx is cancelled or stop is closed.
func (s *Service) loop(ctx context.Context, stop <-chan struct{}) error {
	ticker := time.NewTicker(s.period)
	defer ticker.Stop()
	var last time.Time
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-stop:
			return nil
		case now := <-ticker.C:
			if !last.IsZero() {
				s.noteTick(last, now)
			}
			last = now
			s.ticks.Add(1)
			s.w.Cycle()
		}
	}
}

// Watchdog exposes the wrapped watchdog, e.g. for Register/Heartbeat
// calls.
func (s *Service) Watchdog() *Watchdog { return s.w }

// Stats reports the service's driver-level telemetry: cycles actually
// driven, cycles lost to overruns, overrun events and the worst
// observed lateness. All figures are cumulative across Start/Stop
// restarts and safe to read concurrently with a running loop.
func (s *Service) Stats() DriverStats {
	return DriverStats{
		Ticks:        s.ticks.Load(),
		MissedCycles: s.missed.Load(),
		Overruns:     s.overruns.Load(),
		MaxLateNs:    s.maxLate.Load(),
	}
}

// Snapshot returns the watchdog's telemetry snapshot with the service's
// driver stats filled in, so tick drift (missed cycles silently
// stretching every hypothesis window) is visible on the same scrape as
// the detection counters. For allocation-bounded scraping use
// SnapshotInto with a retained buffer.
func (s *Service) Snapshot() Snapshot {
	var snap Snapshot
	s.SnapshotInto(&snap)
	return snap
}

// SnapshotInto fills snap with the watchdog's telemetry plus the
// service's driver stats, reusing snap's buffers (see
// Watchdog.SnapshotInto).
func (s *Service) SnapshotInto(snap *Snapshot) {
	s.w.SnapshotInto(snap)
	snap.Driver = s.Stats()
}
