// BenchmarkCycleSweep measures the per-cycle sweep cost across monitored
// population size, due fraction and sweep implementation — the tentpole
// evidence that the due-cycle timer wheel killed the O(N) per-cycle walk
// (README §Performance, `make bench-json`).
package swwd_test

import (
	"fmt"
	"testing"
	"time"

	"swwd"
)

// buildSweepWatchdog constructs a watchdog over n runnables of which
// duePct percent have an arrival window expiring on every single cycle
// (ArrivalCycles=1); the rest carry a far deadline that never comes due
// during the benchmark, so they park in the wheel's overflow set. The
// huge MaxArrivals keeps every window closure detection-free: the bench
// measures the sweep mechanism, not the reporting path.
func buildSweepWatchdog(b *testing.B, n, duePct int, opts ...swwd.Option) *swwd.Watchdog {
	b.Helper()
	m := swwd.NewModel()
	app, err := m.AddApp("sweep", swwd.SafetyCritical)
	if err != nil {
		b.Fatalf("AddApp: %v", err)
	}
	task, err := m.AddTask(app, "sweepTask", 1)
	if err != nil {
		b.Fatalf("AddTask: %v", err)
	}
	rids := make([]swwd.RunnableID, n)
	for i := range rids {
		rids[i], err = m.AddRunnable(task, fmt.Sprintf("r%d", i), time.Millisecond, swwd.SafetyCritical)
		if err != nil {
			b.Fatalf("AddRunnable: %v", err)
		}
	}
	if err := m.Freeze(); err != nil {
		b.Fatalf("Freeze: %v", err)
	}
	w, err := swwd.New(m, append([]swwd.Option{swwd.WithClock(swwd.NewWallClock())}, opts...)...)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	// Spread the due population evenly through the ID space so sharded
	// chunks see comparable load.
	stride := 0
	if duePct > 0 {
		stride = 100 / duePct
	}
	for i, rid := range rids {
		hyp := swwd.Hypothesis{ArrivalCycles: 1 << 20, MaxArrivals: 1 << 30}
		if stride > 0 && i%stride == 0 {
			hyp.ArrivalCycles = 1 // due on every cycle
		}
		if err := w.SetHypothesis(rid, hyp); err != nil {
			b.Fatalf("SetHypothesis: %v", err)
		}
		if err := w.Activate(rid); err != nil {
			b.Fatalf("Activate: %v", err)
		}
	}
	return w
}

func BenchmarkCycleSweep(b *testing.B) {
	impls := []struct {
		name string
		opts []swwd.Option
	}{
		{"wheel", nil},
		{"wheel-shards=4", []swwd.Option{swwd.WithSweepShards(4)}},
		{"walk", []swwd.Option{swwd.WithLegacySweep()}},
	}
	for _, n := range []int{1000, 10000, 100000} {
		for _, duePct := range []int{1, 50, 100} {
			for _, impl := range impls {
				name := fmt.Sprintf("n=%d/due=%d%%/impl=%s", n, duePct, impl.name)
				b.Run(name, func(b *testing.B) {
					w := buildSweepWatchdog(b, n, duePct, impl.opts...)
					defer w.Close()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						w.Cycle()
					}
				})
			}
		}
	}
}
