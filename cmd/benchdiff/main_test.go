package main

import (
	"regexp"
	"strings"
	"testing"
)

func res(name string, ns float64, allocs ...float64) Result {
	r := Result{Name: name, Iterations: 1000, NsPerOp: ns}
	if len(allocs) > 0 {
		a := allocs[0]
		r.AllocsPerOp = &a
	}
	return r
}

func failTexts(failures []string) string { return strings.Join(failures, "\n") }

// TestGateFailsOnPerturbedBaseline is the acceptance proof for the CI
// gate: the same measurements compared against a baseline perturbed
// beyond the threshold must fail, and within it must pass.
func TestGateFailsOnPerturbedBaseline(t *testing.T) {
	zre := regexp.MustCompile(DefaultZeroAlloc)
	current := []Result{
		res("BenchmarkMonitorBeat-2", 8.0, 0),
		res("BenchmarkWireDecode-2", 128.0, 0),
		res("BenchmarkIngestFrame-2", 222.0, 0),
		res("BenchmarkCycleSweep/n=1000-2", 5000.0, 3),
	}

	// Identical baseline (recorded on a different core count): clean pass.
	baseline := []Result{
		res("BenchmarkMonitorBeat-8", 8.0, 0),
		res("BenchmarkWireDecode-8", 128.0, 0),
		res("BenchmarkIngestFrame-8", 222.0, 0),
		res("BenchmarkCycleSweep/n=1000-8", 5000.0, 3),
	}
	if _, failures := compare(baseline, current, 0.30, zre); len(failures) != 0 {
		t.Fatalf("identical results failed the gate: %s", failTexts(failures))
	}

	// Baseline perturbed so current looks >30% slower: gate must fail.
	perturbed := []Result{
		res("BenchmarkMonitorBeat-8", 8.0/1.5, 0), // current is +50%
		res("BenchmarkWireDecode-8", 128.0, 0),
		res("BenchmarkIngestFrame-8", 222.0, 0),
		res("BenchmarkCycleSweep/n=1000-8", 5000.0, 3),
	}
	rows, failures := compare(perturbed, current, 0.30, zre)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkMonitorBeat") {
		t.Fatalf("perturbed baseline: failures = %q, want one MonitorBeat regression", failures)
	}
	var found bool
	for _, r := range rows {
		if r.Name == "BenchmarkMonitorBeat" && r.Status == "REGRESSION" && r.Fail {
			found = true
		}
	}
	if !found {
		t.Fatalf("no REGRESSION row for MonitorBeat: %+v", rows)
	}

	// Perturbation inside the threshold (+25%): still passes.
	mild := []Result{
		res("BenchmarkMonitorBeat-8", 8.0/1.25, 0),
		res("BenchmarkWireDecode-8", 128.0, 0),
		res("BenchmarkIngestFrame-8", 222.0, 0),
		res("BenchmarkCycleSweep/n=1000-8", 5000.0, 3),
	}
	if _, failures := compare(mild, current, 0.30, zre); len(failures) != 0 {
		t.Fatalf("+25%% drift failed the ±30%% gate: %s", failTexts(failures))
	}
}

func TestZeroAllocGate(t *testing.T) {
	zre := regexp.MustCompile(DefaultZeroAlloc)
	baseline := []Result{res("BenchmarkWireDecode-8", 128.0, 0)}

	// Any allocation on a gated benchmark fails, even if ns/op improved.
	_, failures := compare(baseline, []Result{res("BenchmarkWireDecode-2", 100.0, 1)}, 0.30, zre)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("1 alloc/op on gated bench: failures = %q", failures)
	}

	// Missing -benchmem data on a gated benchmark fails too.
	_, failures = compare(baseline, []Result{res("BenchmarkWireDecode-2", 128.0)}, 0.30, zre)
	if len(failures) != 1 || !strings.Contains(failures[0], "-benchmem") {
		t.Fatalf("missing benchmem: failures = %q", failures)
	}

	// A bench run that matches nothing gated must not silently pass.
	_, failures = compare(nil, []Result{res("BenchmarkUnrelated-2", 1.0, 0)}, 0.30, zre)
	if len(failures) != 1 || !strings.Contains(failures[0], "zero-alloc gate") {
		t.Fatalf("regexp drift: failures = %q", failures)
	}

	// Ungated benchmarks may allocate freely.
	_, failures = compare(nil, []Result{
		res("BenchmarkWireDecode-2", 128.0, 0),
		res("BenchmarkJournalDrain-2", 900.0, 12),
	}, 0.30, zre)
	if len(failures) != 0 {
		t.Fatalf("ungated allocs failed the gate: %s", failTexts(failures))
	}

	// The snapshot gate covers only the reused-buffer variant: the
	// reuse=false path allocates the caller's buffer by design.
	_, failures = compare(nil, []Result{
		res("BenchmarkWireDecode-2", 128.0, 0),
		res("BenchmarkSnapshot/n=64/reuse=true-2", 1600.0, 0),
		res("BenchmarkSnapshot/n=64/reuse=false-2", 2700.0, 1),
	}, 0.30, zre)
	if len(failures) != 0 {
		t.Fatalf("reuse=false alloc tripped the gate: %s", failTexts(failures))
	}
	_, failures = compare(nil, []Result{
		res("BenchmarkSnapshot/n=64/reuse=true-2", 1600.0, 1),
	}, 0.30, zre)
	if len(failures) != 1 {
		t.Fatalf("reuse=true alloc escaped the gate: %q", failures)
	}
}

func TestCompareStatuses(t *testing.T) {
	baseline := []Result{
		res("BenchmarkA-8", 100.0),
		res("BenchmarkGone-8", 50.0),
	}
	current := []Result{
		res("BenchmarkA-2", 60.0),  // -40%: faster, never a failure
		res("BenchmarkNew-2", 7.0), // no baseline
	}
	rows, failures := compare(baseline, current, 0.30, nil)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %s", failTexts(failures))
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r.Name] = r.Status
	}
	want := map[string]string{"BenchmarkA": "faster", "BenchmarkNew": "new", "BenchmarkGone": "missing"}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("status[%s] = %q, want %q (all: %v)", k, got[k], v, got)
		}
	}
	table := markdown(rows, 0.30)
	for _, needle := range []string{"| BenchmarkA |", "faster", "missing", "benchmark gate", "±30%"} {
		if !strings.Contains(strings.ToLower(table), strings.ToLower(needle)) {
			t.Fatalf("markdown table lacks %q:\n%s", needle, table)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"BenchmarkMonitorBeat-8":          "BenchmarkMonitorBeat",
		"BenchmarkCycleSweep/n=1000-16":   "BenchmarkCycleSweep/n=1000",
		"BenchmarkNoSuffix":               "BenchmarkNoSuffix",
		"BenchmarkSub/case=a-b-2":         "BenchmarkSub/case=a-b",
		"BenchmarkCycleSweep/shards=4-64": "BenchmarkCycleSweep/shards=4",
	}
	for in, want := range cases {
		if got := normalize(in); got != want {
			t.Fatalf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}
