// Command frames: the server→reporter half of wire version 3.
//
// When the treatment controller (internal/treat) decides to act on a
// node, the ingestion server encodes the decision as a command frame
// and sends it as one UDP datagram back to the address the node's
// heartbeats last arrived from. Commands carry the server's *command
// epoch* (chosen once per server incarnation) and a per-node monotonic
// sequence number, mirroring the heartbeat session discipline in the
// opposite direction: the reporter drops duplicated, re-ordered and
// stale-epoch command frames, and a server restart (larger epoch) resets
// the reporter's tracking. Delivery is confirmed out of band by the
// CmdAckEpoch/CmdAckSeq pair on the reporter's next heartbeat frame —
// the command channel itself needs no extra acknowledgement datagrams.
//
// Command frame (KindCommand):
//
//	offset size field
//	0      2    magic 0x5357 ("SW")
//	2      1    version (currently 3)
//	3      1    kind (1 = command)
//	4      4    target node ID
//	8      8    server command epoch (> 0; larger epoch = newer server)
//	16     8    per-node command sequence number (first command is 1)
//	24     2    command record count
//	26     ...  command records:
//	            { op uvarint, runnable uvarint
//	              [, aliveness uvarint, minBeats uvarint,
//	                 arrival uvarint, maxArrivals uvarint  — op 4 only] }
//
// A record's runnable is the node-local runnable index the op targets;
// the sentinel CmdNodeTarget addresses the whole node (every runnable),
// the form the quarantine/resume ops are normally sent in.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Command protocol constants.
const (
	// CommandHeaderSize is the fixed command frame header length.
	CommandHeaderSize = 26
	// CmdNodeTarget is the sentinel runnable index addressing the whole
	// node rather than one runnable.
	CmdNodeTarget uint32 = MaxRunnableIndex
)

// CmdOp is a treatment command opcode.
type CmdOp uint8

// Command opcodes. Zero is deliberately invalid so an all-zero record
// never decodes as a real command.
const (
	// CmdQuarantine tells the reporter its target is quarantined: the
	// server has stopped supervising it and the reporter should halt the
	// runnable's work (or at least expect no detection coverage).
	CmdQuarantine CmdOp = 1
	// CmdResume lifts a quarantine: supervision is active again.
	CmdResume CmdOp = 2
	// CmdRestart asks the reporter to restart the target runnable (or,
	// with CmdNodeTarget, its whole workload) — the paper's task/
	// application restart treatment delegated to the node that owns the
	// process.
	CmdRestart CmdOp = 3
	// CmdSetHypothesis replaces the target runnable's local monitoring
	// hypothesis with the attached parameters.
	CmdSetHypothesis CmdOp = 4

	cmdOpMax = uint64(CmdSetHypothesis)
)

// HypothesisParams carries the CmdSetHypothesis payload: the four
// core.Hypothesis fields in wire form.
type HypothesisParams struct {
	AlivenessCycles uint32
	MinHeartbeats   uint32
	ArrivalCycles   uint32
	MaxArrivals     uint32
}

// CmdRec is one decoded command record. Hyp is meaningful only when Op
// is CmdSetHypothesis; it encodes and decodes as zero otherwise.
type CmdRec struct {
	Op       CmdOp
	Runnable uint32
	Hyp      HypothesisParams
}

// Command is the decoded form of one command frame. Recs is reused
// across DecodeCommand calls on the same Command value.
type Command struct {
	// Node is the target node's wire ID.
	Node uint32
	// Epoch is the server's command epoch, chosen once per server
	// incarnation; larger epoch = newer server. Must be non-zero.
	Epoch uint64
	// Seq is the per-node monotonic command sequence number within the
	// epoch, starting at 1.
	Seq uint64
	// Recs are the command records, applied in order.
	Recs []CmdRec
}

// AppendCommand appends the encoded form of c to dst and returns the
// extended slice. It validates c against the protocol limits and
// returns dst unmodified on error.
func AppendCommand(dst []byte, c *Command) ([]byte, error) {
	if c.Epoch == 0 {
		return dst, fmt.Errorf("%w: command epoch must be positive", ErrRange)
	}
	if c.Seq == 0 {
		return dst, fmt.Errorf("%w: command seq must be positive", ErrRange)
	}
	if len(c.Recs) > 0xFFFF {
		return dst, fmt.Errorf("%w: %d command records", ErrRange, len(c.Recs))
	}
	start := len(dst)
	var hdr [CommandHeaderSize]byte
	binary.LittleEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = KindCommand
	binary.LittleEndian.PutUint32(hdr[4:8], c.Node)
	binary.LittleEndian.PutUint64(hdr[8:16], c.Epoch)
	binary.LittleEndian.PutUint64(hdr[16:24], c.Seq)
	binary.LittleEndian.PutUint16(hdr[24:26], uint16(len(c.Recs)))
	dst = append(dst, hdr[:]...)
	for i := range c.Recs {
		r := &c.Recs[i]
		if r.Op == 0 || uint64(r.Op) > cmdOpMax {
			return dst[:start], fmt.Errorf("%w: command record %d op %d", ErrRange, i, r.Op)
		}
		if r.Runnable > CmdNodeTarget {
			return dst[:start], fmt.Errorf("%w: command record %d runnable %d", ErrRange, i, r.Runnable)
		}
		dst = binary.AppendUvarint(dst, uint64(r.Op))
		dst = binary.AppendUvarint(dst, uint64(r.Runnable))
		if r.Op == CmdSetHypothesis {
			dst = binary.AppendUvarint(dst, uint64(r.Hyp.AlivenessCycles))
			dst = binary.AppendUvarint(dst, uint64(r.Hyp.MinHeartbeats))
			dst = binary.AppendUvarint(dst, uint64(r.Hyp.ArrivalCycles))
			dst = binary.AppendUvarint(dst, uint64(r.Hyp.MaxArrivals))
		}
	}
	if len(dst)-start > MaxFrameSize {
		return dst[:start], fmt.Errorf("%w: %d bytes", ErrTooLarge, len(dst)-start)
	}
	return dst, nil
}

// DecodeCommand decodes one command frame from buf into c, reusing c's
// Recs slice. On error c's contents are unspecified but the call never
// panics, whatever buf holds; a reader loop with a retained Command
// performs zero allocations per frame in the steady state. A heartbeat
// frame is rejected with ErrKind.
func DecodeCommand(buf []byte, c *Command) error {
	if len(buf) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(buf))
	}
	if len(buf) < CommandHeaderSize {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(buf))
	}
	if binary.LittleEndian.Uint16(buf[0:2]) != Magic {
		return ErrMagic
	}
	if buf[2] != Version {
		return fmt.Errorf("%w: %d", ErrVersion, buf[2])
	}
	if buf[3] != KindCommand {
		return fmt.Errorf("%w: 0x%02x", ErrKind, buf[3])
	}
	c.Node = binary.LittleEndian.Uint32(buf[4:8])
	c.Epoch = binary.LittleEndian.Uint64(buf[8:16])
	c.Seq = binary.LittleEndian.Uint64(buf[16:24])
	if c.Epoch == 0 {
		return fmt.Errorf("%w: zero command epoch", ErrRange)
	}
	if c.Seq == 0 {
		return fmt.Errorf("%w: zero command sequence number", ErrRange)
	}
	nRecs := int(binary.LittleEndian.Uint16(buf[24:26]))
	c.Recs = c.Recs[:0]
	p := buf[CommandHeaderSize:]
	for i := 0; i < nRecs; i++ {
		op, n, err := uvarint(p, "command op")
		if err != nil {
			return err
		}
		p = p[n:]
		if op == 0 || op > cmdOpMax {
			return fmt.Errorf("%w: command record %d op %d", ErrRange, i, op)
		}
		rid, n, err := uvarint(p, "command runnable")
		if err != nil {
			return err
		}
		p = p[n:]
		if rid > uint64(CmdNodeTarget) {
			return fmt.Errorf("%w: command record %d runnable %d", ErrRange, i, rid)
		}
		rec := CmdRec{Op: CmdOp(op), Runnable: uint32(rid)}
		if rec.Op == CmdSetHypothesis {
			var fields [4]uint64
			for j := range fields {
				v, n, err := uvarint(p, "hypothesis param")
				if err != nil {
					return err
				}
				p = p[n:]
				if v > 0xFFFFFFFF {
					return fmt.Errorf("%w: command record %d hypothesis param %d", ErrRange, i, v)
				}
				fields[j] = v
			}
			rec.Hyp = HypothesisParams{
				AlivenessCycles: uint32(fields[0]),
				MinHeartbeats:   uint32(fields[1]),
				ArrivalCycles:   uint32(fields[2]),
				MaxArrivals:     uint32(fields[3]),
			}
		}
		c.Recs = append(c.Recs, rec)
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(p))
	}
	return nil
}
