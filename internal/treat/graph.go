// Package treat is the fault-treatment control plane of the networked
// Software Watchdog: the distributed analogue of the paper's Fault
// Management Framework, modeled on the prober/weeder split. The
// ingestion side (internal/ingest) *detects* — link loss, missed
// heartbeats, program-flow violations; this package decides what to do
// about it and drives the treatment: quarantine the faulty node, scale
// down its dependents so the fault does not cascade into a storm of
// secondary detections, and expedite recovery the moment heartbeats
// resume.
//
// The package is built from three pieces:
//
//   - Graph (this file): the declarative dependency graph over
//     supervised nodes — who consumes whose service, validated once at
//     construction (unknown nodes, self-dependencies, duplicates and
//     cycles are errors, not runtime surprises).
//   - Engine (engine.go): a pure, deterministic policy function. It
//     consumes fault Events (link faults from the watchdog sink, frame
//     arrivals from ingest) and produces ordered Actions. No clocks are
//     read, no goroutines run, no map iteration order leaks into the
//     output: the same event trace always yields the same action
//     sequence, which is what makes treatment replay-testable.
//   - Controller (controller.go): the asynchronous shell that feeds the
//     engine from live callbacks and hands its actions to an Executor.
//
// Determinism discipline: every decision is a function of (graph,
// policy, event history) only. Time enters exclusively as data carried
// on events (stamped by the caller from an injected sim.Clock), never
// by reading a clock inside the engine, so a recorded trace replayed
// through Replay reproduces the live action sequence bit-for-bit.
package treat

import (
	"errors"
	"fmt"
	"sort"
)

// Graph validation errors. Match with errors.Is; returned errors wrap
// these with the offending node IDs.
var (
	// ErrUnknownNode marks an edge endpoint that is not a declared node.
	ErrUnknownNode = errors.New("treat: edge references unknown node")
	// ErrSelfDependency marks a node depending on itself.
	ErrSelfDependency = errors.New("treat: node depends on itself")
	// ErrDuplicateEdge marks the same dependency declared twice.
	ErrDuplicateEdge = errors.New("treat: duplicate dependency edge")
	// ErrCycle marks a dependency cycle — treatment needs a DAG, or a
	// quarantine could scale a node down on account of itself.
	ErrCycle = errors.New("treat: dependency cycle")
)

// Edge declares one dependency: Node consumes a service of DependsOn,
// so when DependsOn is quarantined, Node is scaled down.
type Edge struct {
	Node      uint32
	DependsOn uint32
}

// Graph is a validated, immutable dependency DAG over supervised nodes.
type Graph struct {
	// dependents[n] lists the nodes that depend on n, sorted ascending —
	// the fan-out a quarantine of n scales down. Sorted once here so the
	// engine never iterates a map and action order is deterministic.
	dependents map[uint32][]uint32
	nodes      []uint32 // sorted
	nodeSet    map[uint32]struct{}
}

// NewGraph validates the node set and dependency edges and builds the
// graph. Every edge endpoint must be a declared node, self-dependencies
// and duplicate edges are rejected, and the edge set must be acyclic.
func NewGraph(nodes []uint32, edges []Edge) (*Graph, error) {
	g := &Graph{
		dependents: make(map[uint32][]uint32),
		nodeSet:    make(map[uint32]struct{}, len(nodes)),
	}
	for _, n := range nodes {
		if _, dup := g.nodeSet[n]; dup {
			continue
		}
		g.nodeSet[n] = struct{}{}
		g.nodes = append(g.nodes, n)
	}
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i] < g.nodes[j] })

	type edgeKey struct{ a, b uint32 }
	seen := make(map[edgeKey]struct{}, len(edges))
	// deps is the forward direction (node → what it depends on), used
	// only for the cycle check.
	deps := make(map[uint32][]uint32)
	for _, e := range edges {
		if _, ok := g.nodeSet[e.Node]; !ok {
			return nil, fmt.Errorf("%w: %d (in edge %d→%d)", ErrUnknownNode, e.Node, e.Node, e.DependsOn)
		}
		if _, ok := g.nodeSet[e.DependsOn]; !ok {
			return nil, fmt.Errorf("%w: %d (in edge %d→%d)", ErrUnknownNode, e.DependsOn, e.Node, e.DependsOn)
		}
		if e.Node == e.DependsOn {
			return nil, fmt.Errorf("%w: %d", ErrSelfDependency, e.Node)
		}
		k := edgeKey{e.Node, e.DependsOn}
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("%w: %d→%d", ErrDuplicateEdge, e.Node, e.DependsOn)
		}
		seen[k] = struct{}{}
		deps[e.Node] = append(deps[e.Node], e.DependsOn)
		g.dependents[e.DependsOn] = append(g.dependents[e.DependsOn], e.Node)
	}
	if cyc, ok := findCycle(g.nodes, deps); ok {
		return nil, fmt.Errorf("%w: through node %d", ErrCycle, cyc)
	}
	for _, l := range g.dependents {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
	return g, nil
}

// findCycle runs an iterative three-color DFS over the dependency
// relation and returns a node on a cycle, with ok reporting whether one
// was found (node ID 0 is valid, so the ID alone cannot signal absence).
func findCycle(nodes []uint32, deps map[uint32][]uint32) (uint32, bool) {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make(map[uint32]int, len(nodes))
	for _, start := range nodes {
		if color[start] != white {
			continue
		}
		type frame struct {
			node uint32
			next int
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			ds := deps[top.node]
			if top.next < len(ds) {
				d := ds[top.next]
				top.next++
				switch color[d] {
				case gray:
					return d, true
				case white:
					color[d] = gray
					stack = append(stack, frame{node: d})
				}
				continue
			}
			color[top.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return 0, false
}

// Nodes returns the declared node IDs, sorted ascending. The returned
// slice is shared; callers must not modify it.
func (g *Graph) Nodes() []uint32 { return g.nodes }

// HasNode reports whether n is a declared node.
func (g *Graph) HasNode(n uint32) bool {
	_, ok := g.nodeSet[n]
	return ok
}

// Dependents returns the nodes that depend on n, sorted ascending. The
// returned slice is shared; callers must not modify it.
func (g *Graph) Dependents(n uint32) []uint32 { return g.dependents[n] }
