package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// det builds a deterministic detection as a function of i — the shared
// generator of the unit tests and the crash harness, so a reference
// View can be rebuilt from the acknowledged count alone.
func det(i uint64) Detection {
	return Detection{
		JournalSeq:     i,
		SimTimeNs:      int64(i) * 1_000_000,
		Cycle:          i * 3,
		Kind:           uint8(i%3 + 1),
		Runnable:       int32(i % 7),
		Task:           int32(i % 5),
		App:            int32(i % 2),
		Predecessor:    -1,
		Observed:       int32(i % 11),
		Expected:       int32(i%11) + 1,
		Correlated:     i%4 == 0,
		Active:         i%2 == 0,
		AC:             int32(i % 13),
		ARC:            int32(i % 17),
		CCA:            int32(i % 19),
		CCAR:           int32(i % 23),
		Beats:          i * 10,
		ErrAliveness:   i / 3,
		ErrArrivalRate: i / 5,
		ErrProgramFlow: i / 7,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, TimeNs: 1111, Kind: KindDetection, Det: det(42)},
		{Seq: 2, TimeNs: 2222, Kind: KindAction, Act: Action{Kind: 3, Node: 9, Cause: 4, SimTimeNs: 77, ExecErr: true}},
		{Seq: 3, TimeNs: 3333, Kind: KindDelta, Delta: Delta{Frames: 10, Bytes: 999, Accepted: 9, CommandStaleAcks: 5}},
	}
	var buf []byte
	for i := range recs {
		buf = appendRecord(buf, &recs[i])
	}
	off := 0
	for i := range recs {
		var got Record
		n, err := decodeRecord(buf[off:], &got)
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, recs[i]) {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, got, recs[i])
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	rec := Record{Seq: 7, TimeNs: 1, Kind: KindDetection, Det: det(1)}
	good := appendRecord(nil, &rec)
	var out Record

	// Truncations anywhere inside the frame are torn, not corrupt.
	for cut := 0; cut < len(good); cut++ {
		_, err := decodeRecord(good[:cut], &out)
		if err != ErrTorn && err != ErrCorrupt {
			t.Fatalf("cut at %d: got %v", cut, err)
		}
	}
	// A flipped byte anywhere in the body fails the CRC.
	for i := frameOverhead; i < len(good); i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := decodeRecord(bad, &out); err == nil {
			t.Fatalf("flip at %d: decode accepted corrupt record", i)
		}
	}
	// An absurd length field is corruption.
	bad := append([]byte(nil), good...)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := decodeRecord(bad, &out); err != ErrCorrupt {
		t.Fatalf("oversized length: got %v", err)
	}
}

func TestRingHandOff(t *testing.T) {
	r := newRing(8)
	var rec Record
	if r.pop(&rec) {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := uint64(0); i < 8; i++ {
		if !r.push(&Record{Seq: i}) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if r.push(&Record{Seq: 99}) {
		t.Fatal("push into full ring succeeded")
	}
	for i := uint64(0); i < 8; i++ {
		if !r.pop(&rec) || rec.Seq != i {
			t.Fatalf("pop %d: got seq %d", i, rec.Seq)
		}
	}
	if r.pop(&rec) {
		t.Fatal("pop from drained ring succeeded")
	}
}

func TestRingConcurrentProducers(t *testing.T) {
	const producers, each = 4, 10_000
	r := newRing(64)
	var pushed, popped, drops [producers + 1]uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // single consumer, like the writer goroutine
		defer wg.Done()
		var rec Record
		for {
			if r.pop(&rec) {
				popped[0]++
				continue
			}
			select {
			case <-stop:
				for r.pop(&rec) {
					popped[0]++
				}
				return
			default:
			}
		}
	}()
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < each; i++ {
				if r.push(&Record{Seq: uint64(i)}) {
					pushed[p+1]++
				} else {
					drops[p+1]++
				}
			}
		}(p)
	}
	pwg.Wait()
	close(stop)
	wg.Wait()
	var totPush, totDrop uint64
	for p := 1; p <= producers; p++ {
		totPush += pushed[p]
		totDrop += drops[p]
	}
	if totPush+totDrop != producers*each {
		t.Fatalf("accounting: pushed %d + dropped %d != %d", totPush, totDrop, producers*each)
	}
	if popped[0] != totPush {
		t.Fatalf("consumer got %d of %d pushed records", popped[0], totPush)
	}
}

func TestWALAppendSyncReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, WithSyncInterval(time.Hour)) // sync only on demand
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := uint64(1); i <= n; i++ {
		if !w.AppendDetection(det(i)) {
			t.Fatalf("append %d dropped", i)
		}
	}
	w.AppendAction(Action{Kind: 1, Node: 3, Cause: 3, SimTimeNs: 5})
	w.AppendDelta(Delta{Frames: 123, Accepted: 120})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.SyncedSeq != n+2 || st.Synced != n+2 || st.Appended != n+2 || st.Dropped != 0 {
		t.Fatalf("stats after sync: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	h, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records) != n+2 || h.FirstSeq != 1 || h.LastSeq != n+2 || h.TornBytes != 0 {
		t.Fatalf("history: records=%d first=%d last=%d torn=%d",
			len(h.Records), h.FirstSeq, h.LastSeq, h.TornBytes)
	}
	for i := uint64(0); i < n; i++ {
		r := h.Records[i]
		if r.Seq != i+1 || r.Kind != KindDetection || !reflect.DeepEqual(r.Det, det(i+1)) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	v := h.View()
	if v.Detections != n || v.Actions[1] != 1 || v.Ingest.Frames != 123 || v.Deltas != 1 {
		t.Fatalf("view: %+v", v)
	}
}

func TestWALSeqContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	for round := 0; round < 3; round++ {
		w, err := Open(dir)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := 0; i < 10; i++ {
			w.AppendDetection(det(uint64(round*10 + i)))
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if got, want := w.Stats().SyncedSeq, uint64((round+1)*10); got != want {
			t.Fatalf("round %d: synced seq %d, want %d", round, got, want)
		}
		w.Close()
	}
	h, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records) != 30 || h.LastSeq != 30 {
		t.Fatalf("after 3 rounds: %d records, last seq %d", len(h.Records), h.LastSeq)
	}
}

func TestWALRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	// ~107-byte detection frames; 1 KiB segments force rotation every
	// ~9 records. Retain 3 segments.
	w, err := Open(dir, WithSegmentBytes(1024), WithRetainSegments(3), WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := uint64(1); i <= n; i++ {
		w.AppendDetection(det(i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	w.Close()
	if st.Rotations == 0 || st.SegmentsRemoved == 0 {
		t.Fatalf("expected rotations and retention removals: %+v", st)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 3 {
		t.Fatalf("%d segments retained, want <= 3", len(segs))
	}
	if got := int(st.Segments); got != len(segs) {
		t.Fatalf("Stats.Segments=%d, on disk %d", got, len(segs))
	}
	// The retained tail replays cleanly and ends at seq n.
	h, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h.LastSeq != n || h.TornBytes != 0 {
		t.Fatalf("retained replay: last=%d torn=%d", h.LastSeq, h.TornBytes)
	}
	if h.FirstSeq == 1 {
		t.Fatal("retention removed nothing: first seq still 1")
	}
	// Seqs are contiguous across the retained segments.
	for i := 1; i < len(h.Records); i++ {
		if h.Records[i].Seq != h.Records[i-1].Seq+1 {
			t.Fatalf("seq gap at %d: %d -> %d", i, h.Records[i-1].Seq, h.Records[i].Seq)
		}
	}
}

// TestWALTornTail injects the corruptions a crash can leave behind and
// asserts replay stops cleanly and recovery truncates.
func TestWALTornTail(t *testing.T) {
	cases := []struct {
		name    string
		mangle  func(t *testing.T, path string)
		lostTwo bool // whether the last record is lost too
	}{
		{"truncated-mid-record", func(t *testing.T, path string) {
			fi, _ := os.Stat(path)
			if err := os.Truncate(path, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		}, true},
		{"garbage-appended", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}, false},
		{"bitflip-in-last-record", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 0x10
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(dir, WithSyncInterval(0))
			if err != nil {
				t.Fatal(err)
			}
			const n = 20
			for i := uint64(1); i <= n; i++ {
				w.AppendDetection(det(i))
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			w.Close()
			segs, err := listSegments(dir)
			if err != nil || len(segs) != 1 {
				t.Fatalf("want 1 segment, got %d (%v)", len(segs), err)
			}
			tc.mangle(t, segs[0].path)

			wantLast := uint64(n)
			if tc.lostTwo {
				wantLast = n - 1
			}
			// Read-only replay stops at the damage and reports it.
			h, err := Replay(dir)
			if err != nil {
				t.Fatal(err)
			}
			if h.LastSeq != wantLast || h.TornBytes == 0 {
				t.Fatalf("replay after %s: last=%d (want %d) torn=%d",
					tc.name, h.LastSeq, wantLast, h.TornBytes)
			}

			// Re-opening truncates the tail and appending continues at
			// the right sequence number.
			w2, err := Open(dir, WithSyncInterval(0))
			if err != nil {
				t.Fatal(err)
			}
			rs := w2.Recovery()
			if rs.LastSeq != wantLast || rs.TornBytes == 0 {
				t.Fatalf("recovery after %s: %+v", tc.name, rs)
			}
			w2.AppendDetection(det(n + 1))
			if err := w2.Sync(); err != nil {
				t.Fatal(err)
			}
			w2.Close()
			h2, err := Replay(dir)
			if err != nil {
				t.Fatal(err)
			}
			if h2.TornBytes != 0 || h2.LastSeq != wantLast+1 {
				t.Fatalf("post-recovery replay: last=%d torn=%d", h2.LastSeq, h2.TornBytes)
			}
		})
	}
}

// TestWALCorruptMidLogDropsTail: damage in an *older* segment abandons
// everything after the corruption point on recovery.
func TestWALCorruptMidLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, WithSegmentBytes(1024), WithRetainSegments(1000), WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		w.AppendDetection(det(i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d (%v)", len(segs), err)
	}
	// Flip a byte in the middle of the second segment.
	victim := segs[1].path
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderSize+20] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rs := w2.Recovery()
	w2.Close()
	if rs.SegmentsDropped == 0 || rs.TornBytes == 0 {
		t.Fatalf("mid-log corruption not dropped: %+v", rs)
	}
	h, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if h.TornBytes != 0 {
		t.Fatalf("replay after recovery still torn: %+v", h)
	}
	// The surviving prefix is contiguous from seq 1.
	for i, r := range h.Records {
		if r.Seq != uint64(i)+1 {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestWALWindow(t *testing.T) {
	h := &History{}
	for i := int64(1); i <= 10; i++ {
		h.Records = append(h.Records, Record{Seq: uint64(i), TimeNs: i * 100})
	}
	if got := h.Window(0, 0); len(got) != 10 {
		t.Fatalf("unbounded window: %d records", len(got))
	}
	got := h.Window(300, 700)
	if len(got) != 4 || got[0].TimeNs != 300 || got[3].TimeNs != 600 {
		t.Fatalf("window [300,700): %+v", got)
	}
	if got := h.Window(2000, 0); len(got) != 0 {
		t.Fatalf("future window: %d records", len(got))
	}
}

func TestWALDroppedWhenRingFull(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, WithRingSize(2), WithSyncInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Choke the only drain: flood far faster than one writer goroutine
	// can be scheduled. Some records must be dropped-and-counted rather
	// than blocking the producer.
	total := 0
	for i := uint64(0); i < 100_000; i++ {
		w.AppendDetection(det(i))
		total++
	}
	st := w.Stats()
	if st.Appended+st.Dropped != uint64(total) {
		t.Fatalf("append accounting: %d + %d != %d", st.Appended, st.Dropped, total)
	}
	w.Close()
	if w.AppendDetection(det(1)) {
		t.Fatal("append after Close accepted")
	}
	if w.Sync() != ErrClosed {
		t.Fatal("Sync after Close did not report ErrClosed")
	}
}

func TestWALFilesAreSegmentNamed(t *testing.T) {
	if name := segmentName(0x1b); name != "000000000000001b.wal" {
		t.Fatalf("segmentName: %q", name)
	}
	if seq, ok := parseSegmentName("000000000000001b.wal"); !ok || seq != 0x1b {
		t.Fatalf("parseSegmentName: %d %v", seq, ok)
	}
	for _, bad := range []string{"x.wal", "000000000000001b.seg", "1b.wal", ""} {
		if _, ok := parseSegmentName(bad); ok {
			t.Fatalf("parseSegmentName accepted %q", bad)
		}
	}
	dir := t.TempDir()
	// Foreign files in the directory are ignored by listing and replay.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.AppendDetection(det(1))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	h, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Records) != 1 {
		t.Fatalf("replay with foreign file: %d records", len(h.Records))
	}
}
