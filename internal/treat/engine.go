package treat

import "swwd/internal/sim"

// DefaultRecoveryFrames is how many consecutive accepted frames a
// quarantined node must deliver before the engine lifts the quarantine
// when Policy.RecoveryFrames is zero. Matching the ingest default link
// grace (one hypothesis window) keeps recovery symmetric with
// detection: silent for one window → quarantined, steady for three
// frames → resumed.
const DefaultRecoveryFrames = 3

// Policy tunes the treatment engine. The zero value is the default
// policy: scale dependents down, require DefaultRecoveryFrames steady
// frames to recover, no dependent restarts.
type Policy struct {
	// RecoveryFrames is the number of consecutive accepted frames a
	// quarantined node must deliver before it is resumed — the
	// quarantine grace on the way back up. Zero means
	// DefaultRecoveryFrames; a reporter restart resets the streak.
	RecoveryFrames int
	// RestartDependents additionally asks each scaled-up dependent to
	// restart its runnables when its last quarantined dependency
	// recovers (the paper's task-restart treatment, delegated to the
	// node that owns the process).
	RestartDependents bool
	// DisableScaleDown keeps dependents running when a dependency is
	// quarantined (ablation: quarantine-only treatment).
	DisableScaleDown bool
}

// recoveryFrames resolves the zero-value default.
func (p Policy) recoveryFrames() int {
	if p.RecoveryFrames <= 0 {
		return DefaultRecoveryFrames
	}
	return p.RecoveryFrames
}

// EventKind classifies an input event.
type EventKind uint8

const (
	// EvLinkFault is an aliveness fault on a node's link runnable: the
	// node went silent for a full hypothesis window.
	EvLinkFault EventKind = iota + 1
	// EvFrame is an accepted heartbeat frame from a node. Restarted
	// marks frames whose session epoch advanced (the reporter process
	// restarted).
	EvFrame
)

// String names the kind for logs and tests.
func (k EventKind) String() string {
	switch k {
	case EvLinkFault:
		return "link-fault"
	case EvFrame:
		return "frame"
	}
	return "unknown"
}

// Event is one engine input. Time is data, stamped by the caller from
// its injected clock — the engine never reads a clock itself, which is
// what makes a recorded trace replayable.
type Event struct {
	Kind      EventKind
	Node      uint32
	Restarted bool
	Time      sim.Time
}

// ActionKind classifies an engine output.
type ActionKind uint8

const (
	// ActQuarantine isolates a faulty node: deactivate its supervision
	// (runnables and link) and send it a quarantine command.
	ActQuarantine ActionKind = iota + 1
	// ActScaleDown suspends supervision of a healthy dependent of a
	// quarantined node so the missing dependency does not cascade into
	// secondary detections. The dependent's link stays supervised.
	ActScaleDown
	// ActNotifyQuarantine re-sends the quarantine command to a node
	// whose reporter restarted mid-quarantine: the new process must
	// re-learn its state.
	ActNotifyQuarantine
	// ActResume lifts a quarantine after a steady recovery streak:
	// reactivate the node's link supervision and send a resume command.
	ActResume
	// ActScaleUp reactivates supervision of a node whose last
	// quarantined dependency recovered (or of the recovered node itself
	// when nothing else holds it down).
	ActScaleUp
	// ActRestartRunnables asks a scaled-up dependent to restart its
	// runnables (Policy.RestartDependents).
	ActRestartRunnables
)

// String names the action kind for logs, journal entries and tests.
func (k ActionKind) String() string {
	switch k {
	case ActQuarantine:
		return "quarantine"
	case ActScaleDown:
		return "scale-down"
	case ActNotifyQuarantine:
		return "notify-quarantine"
	case ActResume:
		return "resume"
	case ActScaleUp:
		return "scale-up"
	case ActRestartRunnables:
		return "restart-runnables"
	}
	return "unknown"
}

// Action is one treatment decision. Node is the node acted on; Cause is
// the faulty (or recovered) node the action traces back to — for
// ActQuarantine and ActResume the node itself, for the scale family the
// dependency that triggered it.
type Action struct {
	Kind  ActionKind
	Node  uint32
	Cause uint32
	Time  sim.Time
}

// nodeState is the engine's per-node treatment state.
type nodeState struct {
	// quarantined marks a node whose link faulted and whose recovery
	// streak has not yet run out.
	quarantined bool
	// streak counts consecutive accepted frames since the quarantine
	// (or since the last reporter restart within it).
	streak int
	// scaledBy lists the quarantined dependencies currently holding
	// this node scaled down, sorted ascending. The node's supervision
	// comes back only when the list empties.
	scaledBy []uint32
}

// holdsScaleDown reports whether cause is in s.scaledBy.
func (s *nodeState) holdsScaleDown(cause uint32) bool {
	for _, c := range s.scaledBy {
		if c == cause {
			return true
		}
	}
	return false
}

// addScaleDown inserts cause into s.scaledBy, keeping it sorted.
func (s *nodeState) addScaleDown(cause uint32) {
	i := 0
	for i < len(s.scaledBy) && s.scaledBy[i] < cause {
		i++
	}
	if i < len(s.scaledBy) && s.scaledBy[i] == cause {
		return
	}
	s.scaledBy = append(s.scaledBy, 0)
	copy(s.scaledBy[i+1:], s.scaledBy[i:])
	s.scaledBy[i] = cause
}

// removeScaleDown deletes cause from s.scaledBy if present.
func (s *nodeState) removeScaleDown(cause uint32) {
	for i, c := range s.scaledBy {
		if c == cause {
			s.scaledBy = append(s.scaledBy[:i], s.scaledBy[i+1:]...)
			return
		}
	}
}

// Engine is the deterministic treatment policy: a pure fold of Events
// into Actions over the dependency graph. It is not safe for concurrent
// use — the Controller serializes access; tests and Replay drive it
// directly.
type Engine struct {
	g     *Graph
	pol   Policy
	state map[uint32]*nodeState
}

// NewEngine builds an engine over the graph with everything healthy.
func NewEngine(g *Graph, pol Policy) *Engine {
	e := &Engine{g: g, pol: pol, state: make(map[uint32]*nodeState, len(g.Nodes()))}
	for _, n := range g.Nodes() {
		e.state[n] = &nodeState{}
	}
	return e
}

// Quarantined reports whether node n is currently quarantined.
func (e *Engine) Quarantined(n uint32) bool {
	st := e.state[n]
	return st != nil && st.quarantined
}

// ScaledDown reports whether node n is currently scaled down on account
// of a quarantined dependency.
func (e *Engine) ScaledDown(n uint32) bool {
	st := e.state[n]
	return st != nil && len(st.scaledBy) > 0
}

// Decide folds one event into the engine state and appends the
// resulting actions to dst (often zero of them — a healthy frame is a
// no-op). The output order is fixed: the acted-on node first, then its
// dependents in ascending node order. Events naming nodes outside the
// graph are ignored.
func (e *Engine) Decide(ev Event, dst []Action) []Action {
	st := e.state[ev.Node]
	if st == nil {
		return dst
	}
	switch ev.Kind {
	case EvLinkFault:
		if st.quarantined {
			// Repeated fault inside an existing quarantine (the link was
			// left supervised, or the fault raced the quarantine): the
			// recovery streak starts over, no new actions.
			st.streak = 0
			return dst
		}
		st.quarantined = true
		st.streak = 0
		dst = append(dst, Action{Kind: ActQuarantine, Node: ev.Node, Cause: ev.Node, Time: ev.Time})
		if e.pol.DisableScaleDown {
			return dst
		}
		for _, d := range e.g.Dependents(ev.Node) {
			ds := e.state[d]
			wasHeld := len(ds.scaledBy) > 0
			ds.addScaleDown(ev.Node)
			// Emit the action only on the up→down transition of a
			// non-quarantined dependent; a node already held down (or
			// itself quarantined) just gains one more cause.
			if !wasHeld && !ds.quarantined {
				dst = append(dst, Action{Kind: ActScaleDown, Node: d, Cause: ev.Node, Time: ev.Time})
			}
		}
		return dst

	case EvFrame:
		if !st.quarantined {
			return dst
		}
		if ev.Restarted {
			// The reporter process restarted mid-quarantine: the new
			// incarnation must re-learn its quarantine state, and the
			// recovery streak starts over at this frame.
			dst = append(dst, Action{Kind: ActNotifyQuarantine, Node: ev.Node, Cause: ev.Node, Time: ev.Time})
			st.streak = 1
		} else {
			st.streak++
		}
		if st.streak < e.pol.recoveryFrames() {
			return dst
		}
		// Steady heartbeats for the full recovery streak: expedited
		// recovery. Resume the node, then release its hold on every
		// dependent.
		st.quarantined = false
		st.streak = 0
		dst = append(dst, Action{Kind: ActResume, Node: ev.Node, Cause: ev.Node, Time: ev.Time})
		if len(st.scaledBy) == 0 {
			dst = append(dst, Action{Kind: ActScaleUp, Node: ev.Node, Cause: ev.Node, Time: ev.Time})
		}
		for _, d := range e.g.Dependents(ev.Node) {
			ds := e.state[d]
			if !ds.holdsScaleDown(ev.Node) {
				continue
			}
			ds.removeScaleDown(ev.Node)
			if len(ds.scaledBy) > 0 || ds.quarantined {
				continue // still held down by another cause
			}
			dst = append(dst, Action{Kind: ActScaleUp, Node: d, Cause: ev.Node, Time: ev.Time})
			if e.pol.RestartDependents {
				dst = append(dst, Action{Kind: ActRestartRunnables, Node: d, Cause: ev.Node, Time: ev.Time})
			}
		}
		return dst
	}
	return dst
}

// Replay folds a recorded event trace through a fresh engine and
// returns the full action sequence — the determinism check: replaying
// the trace a live controller recorded must reproduce its live actions
// exactly.
func Replay(g *Graph, pol Policy, trace []Event) []Action {
	e := NewEngine(g, pol)
	var out []Action
	for _, ev := range trace {
		out = e.Decide(ev, out)
	}
	return out
}
