package ingest

import (
	"net/netip"
	"testing"
	"time"

	"swwd/internal/sim"
	"swwd/internal/wire"
)

// BenchmarkIngestFrame measures the full worker-side cost of one
// accepted heartbeat frame: decode, node lookup, sequence check, the
// batched beat replay for every runnable and the link beat. The frame
// is the steady-state shape of a 10-runnable reporter; the benchmark
// re-encodes nothing and must not allocate.
func BenchmarkIngestFrame(b *testing.B) {
	const rpn = 10
	f, err := BuildFleet(FleetConfig{
		Nodes:            1,
		RunnablesPerNode: rpn,
		Interval:         100 * time.Millisecond,
		CyclePeriod:      10 * time.Millisecond,
		GraceFrames:      3,
		Clock:            sim.NewManualClock(),
	})
	if err != nil {
		b.Fatalf("BuildFleet: %v", err)
	}

	frame := wire.Frame{Node: 0, Epoch: 1, IntervalMs: 100}
	for i := 0; i < rpn; i++ {
		frame.Beats = append(frame.Beats, wire.BeatRec{Runnable: uint32(i), Beats: 5})
	}
	// Pre-encode one frame per iteration so the monotonically increasing
	// sequence number survives the duplicate-drop discipline.
	bufs := make([][]byte, b.N)
	for i := range bufs {
		frame.Seq = uint64(i + 1)
		buf, err := wire.AppendFrame(nil, &frame)
		if err != nil {
			b.Fatalf("AppendFrame: %v", err)
		}
		bufs[i] = buf
	}

	var scratch wire.Frame
	b.SetBytes(int64(len(bufs[0])))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Server.ingestFrame(bufs[i], &scratch, netip.AddrPort{})
	}
	b.StopTimer()
	if st := f.Server.Stats(); st.Accepted != uint64(b.N) {
		b.Fatalf("accepted %d of %d frames (stats %+v)", st.Accepted, b.N, st)
	}
}
