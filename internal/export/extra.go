package export

import (
	"bytes"
	"fmt"

	"swwd/internal/core"
	"swwd/internal/wal"
)

// This file holds the writers added on top of the original promtext
// set. They are separate functions — never folded into WriteSnapshot —
// so the pre-existing families stay byte-identical (golden_test.go
// pins them) while exporters opt into the new series by appending.

// WriteJournalSeq renders the fault-journal sequence head: the Seq the
// next journaled detection will carry. Monotonic over the watchdog's
// lifetime, it lets a collector detect missed detections between
// scrapes even after the ring wrapped.
func WriteJournalSeq(b *bytes.Buffer, js core.JournalStats) {
	Header(b, "swwd_journal_seq", "counter", "Fault-journal sequence head (Seq assigned to the next detection).")
	fmt.Fprintf(b, "swwd_journal_seq %d\n", js.Written)
}

// WriteWAL renders the write-ahead log's counters: hand-off and drop
// accounting on the producer side, write/fsync progress and the
// durability horizon on the writer side, and segment lifecycle.
func WriteWAL(b *bytes.Buffer, st wal.Stats) {
	Header(b, "swwd_wal_appended_total", "counter", "Records accepted into the WAL hand-off ring.")
	fmt.Fprintf(b, "swwd_wal_appended_total %d\n", st.Appended)
	Header(b, "swwd_wal_dropped_total", "counter", "Records refused because the hand-off ring was full (producers never block).")
	fmt.Fprintf(b, "swwd_wal_dropped_total %d\n", st.Dropped)
	Header(b, "swwd_wal_written_total", "counter", "Records handed to the OS.")
	fmt.Fprintf(b, "swwd_wal_written_total %d\n", st.Written)
	Header(b, "swwd_wal_synced_total", "counter", "Records covered by a completed fsync (the durability horizon).")
	fmt.Fprintf(b, "swwd_wal_synced_total %d\n", st.Synced)
	Header(b, "swwd_wal_synced_seq", "counter", "Last acknowledged WAL sequence number (records at or below survive kill -9).")
	fmt.Fprintf(b, "swwd_wal_synced_seq %d\n", st.SyncedSeq)
	Header(b, "swwd_wal_syncs_total", "counter", "Group-commit fsync calls.")
	fmt.Fprintf(b, "swwd_wal_syncs_total %d\n", st.Syncs)
	Header(b, "swwd_wal_bytes_written_total", "counter", "Record bytes written to segment files.")
	fmt.Fprintf(b, "swwd_wal_bytes_written_total %d\n", st.BytesWritten)
	Header(b, "swwd_wal_write_errors_total", "counter", "Failed writes or fsyncs (records in a failed batch are lost).")
	fmt.Fprintf(b, "swwd_wal_write_errors_total %d\n", st.WriteErrors)
	Header(b, "swwd_wal_rotations_total", "counter", "Segment rotations.")
	fmt.Fprintf(b, "swwd_wal_rotations_total %d\n", st.Rotations)
	Header(b, "swwd_wal_segments_removed_total", "counter", "Segments deleted by retention.")
	fmt.Fprintf(b, "swwd_wal_segments_removed_total %d\n", st.SegmentsRemoved)
	Header(b, "swwd_wal_segments", "gauge", "Segment files currently on disk.")
	fmt.Fprintf(b, "swwd_wal_segments %d\n", st.Segments)
	Header(b, "swwd_wal_ring_depth", "gauge", "Records waiting in the hand-off ring.")
	fmt.Fprintf(b, "swwd_wal_ring_depth %d\n", st.RingDepth)
}

// WritePush renders the push sink's delivery and drop accounting.
func WritePush(b *bytes.Buffer, st PushStats) {
	Header(b, "swwd_push_collected_total", "counter", "Payloads rendered by the push collector.")
	fmt.Fprintf(b, "swwd_push_collected_total %d\n", st.Collected)
	Header(b, "swwd_push_delivered_total", "counter", "Payloads accepted by the push endpoint (2xx).")
	fmt.Fprintf(b, "swwd_push_delivered_total %d\n", st.Delivered)
	Header(b, "swwd_push_retries_total", "counter", "Delivery re-attempts after a failure.")
	fmt.Fprintf(b, "swwd_push_retries_total %d\n", st.Retries)
	Header(b, "swwd_push_errors_total", "counter", "Failed delivery attempts (network error or non-2xx).")
	fmt.Fprintf(b, "swwd_push_errors_total %d\n", st.Errors)
	Header(b, "swwd_push_dropped_total", "counter", "Payloads lost to a full backlog or an exhausted retry budget.")
	fmt.Fprintf(b, "swwd_push_dropped_total %d\n", st.Dropped)
	Header(b, "swwd_push_backlog", "gauge", "Payloads queued for delivery.")
	fmt.Fprintf(b, "swwd_push_backlog %d\n", st.Backlog)
}
