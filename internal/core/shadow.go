package core

import (
	"errors"
	"fmt"
	"sort"

	"swwd/internal/calib"
	"swwd/internal/runnable"
)

// This file holds the two core-side halves of the online calibration
// subsystem (internal/calib):
//
//   - the estimator feed: every Config.EstimatorWindowCycles cycles the
//     per-runnable banked beat counts (hotState.lifetimeBeats) are
//     differenced into window counts and handed to a calib.Estimator —
//     on the Cycle caller's goroutine, after the sweep's locks are
//     released, exactly like the metrics sink. The heartbeat hot path
//     is untouched: a healthy beat costs what it did before
//     (pinned by BenchmarkMonitorBeatCalib vs BenchmarkMonitorBeat).
//
//   - the shadow guard: a candidate hypothesis installed with SetShadow
//     is evaluated against the live beat stream in parallel with the
//     active one. Its window deadlines ride the timer wheel
//     (kindShadow), so evaluation is due-cycle work inside the normal
//     sweep, not a second walk; window beat counts are derived as
//     lifetime-beat deltas, so the active hypothesis's AC consumption
//     is never disturbed. A shadow counts would-be faults — it never
//     raises one — and a rollout promotes it only after N consecutive
//     clean windows (ShadowStats.CleanStreak).

// shadowState is the bookkeeping of one shadow hypothesis. Guarded by
// sched.mu (the sweep evaluates while holding it).
type shadowState struct {
	hyp        Hypothesis
	startBeats uint64 // lifetimeBeats at the current window's open
	windows    uint64
	wouldAlive uint64
	wouldArr   uint64
	clean      uint64 // consecutive clean windows
}

// window is the shadow's single due period in cycles.
func (st *shadowState) window() uint64 {
	if st.hyp.AlivenessCycles > 0 {
		return uint64(st.hyp.AlivenessCycles)
	}
	return uint64(st.hyp.ArrivalCycles)
}

// ShadowStats is the verdict of a shadow hypothesis so far.
type ShadowStats struct {
	// Hyp is the candidate under evaluation.
	Hyp Hypothesis
	// Windows is how many shadow windows closed with the runnable
	// active (inactive windows are skipped, not judged).
	Windows uint64
	// WouldAliveness / WouldArrival count windows the candidate would
	// have faulted on. No live fault is ever raised by a shadow.
	WouldAliveness uint64
	WouldArrival   uint64
	// CleanStreak is the current run of consecutive clean windows —
	// the promotion criterion of the staged rollout.
	CleanStreak uint64
}

// ShadowReport is one runnable's shadow verdict, as listed by Shadows.
type ShadowReport struct {
	Runnable runnable.ID
	ShadowStats
}

// errNoShadow is the not-installed sentinel under ShadowVerdict.
var errNoShadow = errors.New("no shadow hypothesis installed")

// SetShadow installs a candidate hypothesis for shadow evaluation,
// replacing any previous candidate (the verdict counters restart). The
// candidate needs a single monitoring window: AlivenessCycles and
// ArrivalCycles must be equal when both are set, and at least one must
// be set. Requires the wheel sweep (shadow deadlines ride it).
func (w *Watchdog) SetShadow(rid runnable.ID, h Hypothesis) error {
	if err := h.Validate(); err != nil {
		return fmt.Errorf("core: SetShadow(%d): %w", rid, err)
	}
	if err := w.checkRunnable(rid); err != nil {
		return err
	}
	if h.AlivenessCycles == 0 && h.ArrivalCycles == 0 {
		return fmt.Errorf("core: SetShadow(%d): candidate monitors nothing", rid)
	}
	if h.AlivenessCycles > 0 && h.ArrivalCycles > 0 && h.AlivenessCycles != h.ArrivalCycles {
		return fmt.Errorf("core: SetShadow(%d): shadow evaluation needs one window, got %d/%d cycles",
			rid, h.AlivenessCycles, h.ArrivalCycles)
	}
	s := w.sched
	if s == nil {
		return errors.New("core: shadow evaluation requires the wheel sweep (LegacySweep is on)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.shadows == nil {
		w.shadows = make(map[runnable.ID]*shadowState)
	}
	if _, ok := w.shadows[rid]; ok {
		s.unschedule(int(rid), kindShadow)
	}
	st := &shadowState{hyp: h, startBeats: w.hot[rid].lifetimeBeats()}
	w.shadows[rid] = st
	c := w.cycle.Load()
	s.schedule(int(rid), kindShadow, c+st.window(), c)
	return nil
}

// ClearShadow removes a runnable's shadow hypothesis, if any.
func (w *Watchdog) ClearShadow(rid runnable.ID) error {
	if err := w.checkRunnable(rid); err != nil {
		return err
	}
	s := w.sched
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := w.shadows[rid]; ok {
		s.unschedule(int(rid), kindShadow)
		delete(w.shadows, rid)
	}
	return nil
}

// ShadowVerdict reports the shadow evaluation of one runnable.
func (w *Watchdog) ShadowVerdict(rid runnable.ID) (ShadowStats, error) {
	if err := w.checkRunnable(rid); err != nil {
		return ShadowStats{}, err
	}
	s := w.sched
	if s == nil {
		return ShadowStats{}, fmt.Errorf("core: ShadowVerdict(%d): %w", rid, errNoShadow)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := w.shadows[rid]
	if !ok {
		return ShadowStats{}, fmt.Errorf("core: ShadowVerdict(%d): %w", rid, errNoShadow)
	}
	return ShadowStats{
		Hyp:            st.hyp,
		Windows:        st.windows,
		WouldAliveness: st.wouldAlive,
		WouldArrival:   st.wouldArr,
		CleanStreak:    st.clean,
	}, nil
}

// Shadows lists every installed shadow hypothesis and its verdict, in
// ascending runnable order.
func (w *Watchdog) Shadows() []ShadowReport {
	s := w.sched
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(w.shadows) == 0 {
		return nil
	}
	out := make([]ShadowReport, 0, len(w.shadows))
	for rid, st := range w.shadows {
		out = append(out, ShadowReport{Runnable: rid, ShadowStats: ShadowStats{
			Hyp:            st.hyp,
			Windows:        st.windows,
			WouldAliveness: st.wouldAlive,
			WouldArrival:   st.wouldArr,
			CleanStreak:    st.clean,
		}})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Runnable < out[j].Runnable })
	return out
}

// sweepShadows judges the shadow windows expiring this cycle. Called
// from cycleWheel while holding sched.mu, after the active windows were
// processed. The window's beat count is the lifetime-beat delta since
// the window opened — exact under s.mu, because every banking site
// (window closes, counter resets) runs with s.mu held; a racing beat
// lands in this window or the next, exactly as with the active
// counters. Windows closing while the runnable is inactive are skipped:
// they resynchronize the baseline without rendering a verdict.
func (w *Watchdog) sweepShadows(c uint64) {
	s := w.sched
	for _, rid := range s.dueShadow {
		st := w.shadows[runnable.ID(rid)]
		if st == nil {
			continue // defensive: due bit without state
		}
		hs := &w.hot[rid]
		cur := hs.lifetimeBeats()
		if hs.active.Load() != 0 {
			beats := cur - st.startBeats
			st.windows++
			clean := true
			if st.hyp.AlivenessCycles > 0 && beats < uint64(st.hyp.MinHeartbeats) {
				st.wouldAlive++
				clean = false
			}
			if st.hyp.ArrivalCycles > 0 && beats > uint64(st.hyp.MaxArrivals) {
				st.wouldArr++
				clean = false
			}
			if clean {
				st.clean++
			} else {
				st.clean = 0
			}
		}
		st.startBeats = cur
		s.schedule(int(rid), kindShadow, c+st.window(), c)
	}
}

// Estimator returns the online calibration estimator, or nil when
// Config.EstimatorWindowCycles is zero.
func (w *Watchdog) Estimator() *calib.Estimator { return w.est }

// maybeSampleEstimator feeds one observation window to the estimator
// every EstimatorWindowCycles cycles: per-runnable lifetime-beat deltas
// since the previous sample, with inactive runnables excluded. Runs on
// the Cycle caller's goroutine after the sweep's locks are released,
// like maybeEmitMetrics; estMu serializes concurrent Cycle callers so
// the deltas stay consistent.
func (w *Watchdog) maybeSampleEstimator(c uint64) {
	if w.est == nil || c%w.estEvery != 0 {
		return
	}
	w.estMu.Lock()
	defer w.estMu.Unlock()
	if !w.estPrimed {
		// The first boundary only primes the per-runnable baselines: the
		// window behind it has no known left edge (beats may predate the
		// cycle driver — fleet warm-up traffic) and would inflate the
		// recorded extremes.
		for i := range w.hot {
			w.estLast[i] = w.hot[i].lifetimeBeats()
		}
		w.estPrimed = true
		return
	}
	for i := range w.hot {
		hs := &w.hot[i]
		cur := hs.lifetimeBeats()
		delta := cur - w.estLast[i]
		w.estLast[i] = cur
		if hs.active.Load() == 0 {
			w.estCounts[i] = calib.SkipWindow
		} else {
			w.estCounts[i] = delta
		}
	}
	w.est.SampleWindows(w.estCounts)
}
