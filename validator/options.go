package validator

import "time"

// Option configures a validator assembled with New. Options are applied
// in order over the zero Options value, so later options win; anything
// expressible with an Option can equally be set on an Options struct
// passed to NewFromOptions.
type Option func(*Options)

// WithCyclePeriod sets the Software Watchdog monitoring cycle; zero means
// 10ms, the tick of the paper's plots.
func WithCyclePeriod(d time.Duration) Option {
	return func(o *Options) { o.CyclePeriod = d }
}

// WithTreatment attaches the FMF's treatment executor; without it the
// framework records faults but does not act (the detection-only setup of
// the counter-trace figures).
func WithTreatment() Option {
	return func(o *Options) { o.EnableTreatment = true }
}

// WithSpeeds sets the driver's desired speed and the externally commanded
// limit in km/h; zeros mean the defaults 150 and 80.
func WithSpeeds(driverTargetKph, speedLimitKph float64) Option {
	return func(o *Options) {
		o.DriverTargetKph = driverTargetKph
		o.SpeedLimitKph = speedLimitKph
	}
}

// WithNetworks wires the CAN/FlexRay/Ethernet buses and the gateway node
// into the loop.
func WithNetworks() Option {
	return func(o *Options) { o.WithNetworks = true }
}

// WithRemoteECU adds a second ECU on the shared CAN bus with its own OSEK
// instance and Software Watchdog (implies networks are required).
func WithRemoteECU() Option {
	return func(o *Options) { o.WithRemoteECU = true }
}

// WithHardwareWatchdog adds the ECU hardware watchdog serviced by a
// lowest-priority kick task (§2 layering).
func WithHardwareWatchdog() Option {
	return func(o *Options) { o.WithHardwareWatchdog = true }
}

// WithDiagnostics adds the low-priority diagnostics task sharing the
// sensor-bus resource with SafeSpeed.
func WithDiagnostics() Option {
	return func(o *Options) { o.WithDiagnostics = true }
}

// WithFallback registers the limp-home degraded mode for SafeSpeed;
// speedKph zero means the default 60.
func WithFallback(speedKph float64) Option {
	return func(o *Options) {
		o.EnableFallback = true
		o.FallbackSpeedKph = speedKph
	}
}

// WithECUReset lets the FMF perform the §3.5 software reset.
func WithECUReset() Option {
	return func(o *Options) { o.AllowECUReset = true }
}

// WithEagerArrivalCheck enables the immediate arrival-rate trip
// (ablation).
func WithEagerArrivalCheck() Option {
	return func(o *Options) { o.EagerArrivalCheck = true }
}

// WithoutCorrelation turns off the Fig. 6 unit collaboration (ablation).
func WithoutCorrelation() Option {
	return func(o *Options) { o.DisableCorrelation = true }
}

// WithTraceRunnables lists model runnable names whose counters are
// sampled; nil traces the SafeSpeed runnables.
func WithTraceRunnables(names ...string) Option {
	return func(o *Options) { o.TraceRunnables = names }
}
