package trace

import (
	"strings"
	"testing"
	"time"

	"swwd/internal/sim"
)

func TestRecorderRequiresClock(t *testing.T) {
	if _, err := NewRecorder(nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestRecordAndQuery(t *testing.T) {
	clk := sim.NewManualClock()
	r, err := NewRecorder(clk)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	r.Record("AC", 1)
	clk.Advance(10 * time.Millisecond)
	r.Record("AC", 2)
	r.Record("CCA", 5)
	names := r.Names()
	if len(names) != 2 || names[0] != "AC" || names[1] != "CCA" {
		t.Fatalf("Names = %v", names)
	}
	s := r.Series("AC")
	if s == nil || len(s.Points) != 2 {
		t.Fatalf("Series(AC) = %+v", s)
	}
	if s.Points[1].Time != 10*sim.Millisecond || s.Points[1].Value != 2 {
		t.Fatalf("point = %+v", s.Points[1])
	}
	if s.Last() != 2 || s.Min() != 1 || s.Max() != 2 {
		t.Fatalf("Last/Min/Max = %v/%v/%v", s.Last(), s.Min(), s.Max())
	}
	if r.Series("nope") != nil {
		t.Fatal("unknown series not nil")
	}
}

func TestEmptySeriesStats(t *testing.T) {
	s := &Series{Name: "empty"}
	if s.Last() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series stats not zero")
	}
}

func TestOutOfOrderPanics(t *testing.T) {
	clk := sim.NewManualClock()
	r, _ := NewRecorder(clk)
	r.RecordAt(10*sim.Millisecond, "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order sample did not panic")
		}
	}()
	r.RecordAt(5*sim.Millisecond, "x", 2)
}

func TestWriteCSVAlignsSeries(t *testing.T) {
	clk := sim.NewManualClock()
	r, _ := NewRecorder(clk)
	r.RecordAt(0, "a", 1)
	r.RecordAt(10*sim.Millisecond, "a", 2)
	r.RecordAt(10*sim.Millisecond, "b", 7)
	r.RecordAt(20*sim.Millisecond, "b", 8)
	var sb strings.Builder
	if err := r.WriteCSV(&sb, 10*sim.Millisecond); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	want := []string{
		"tick,a,b",
		"0,1,0",
		"1,2,7",
		"2,2,8", // a holds its last value (step semantics)
	}
	if len(lines) != len(want) {
		t.Fatalf("csv = %q", sb.String())
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestWriteCSVValidatesTick(t *testing.T) {
	clk := sim.NewManualClock()
	r, _ := NewRecorder(clk)
	if err := r.WriteCSV(&strings.Builder{}, 0); err == nil {
		t.Fatal("zero tick accepted")
	}
}

func TestPlotRendersRange(t *testing.T) {
	clk := sim.NewManualClock()
	r, _ := NewRecorder(clk)
	for i := 0; i <= 10; i++ {
		r.RecordAt(sim.Time(i)*10*sim.Millisecond, "ramp", float64(i))
	}
	out := Plot(r.Series("ramp"), 40, 8)
	if out == "" {
		t.Fatal("empty plot")
	}
	if !strings.Contains(out, "ramp") || !strings.Contains(out, "[0 .. 10]") {
		t.Fatalf("plot header wrong:\n%s", out)
	}
	if strings.Count(out, "*") == 0 {
		t.Fatal("no marks plotted")
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	if Plot(nil, 40, 8) != "" {
		t.Error("nil series plotted")
	}
	if Plot(&Series{Name: "x"}, 40, 8) != "" {
		t.Error("empty series plotted")
	}
	s := &Series{Name: "x", Points: []Point{{Time: 0, Value: 5}}}
	if Plot(s, 4, 8) != "" {
		t.Error("too-narrow plot accepted")
	}
	// Constant series must not divide by zero.
	s.Points = append(s.Points, Point{Time: sim.Second, Value: 5})
	if out := Plot(s, 20, 4); out == "" {
		t.Error("constant series produced no plot")
	}
}
