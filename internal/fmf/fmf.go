// Package fmf implements the Fault Management Framework of the EASIS
// platform: the "general fault handling service" the Software Watchdog
// reports to (§3.2, [12]). It gathers detected faults, classifies their
// severity, informs subscribed applications, and carries out the
// coordinated fault treatments of §3.5 with the operating system:
//
//   - global ECU state faulty → software reset of the ECU (when the
//     applications' constraints allow it);
//   - ECU state OK but an application faulty → restart or terminate the
//     faulty application's tasks per the application's policy.
package fmf

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"swwd/internal/core"
	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// Severity classifies a detected fault for treatment and logging.
type Severity int

// Severities in increasing order of concern.
const (
	Info Severity = iota + 1
	Warning
	Critical
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Action is a fault treatment the framework can take.
type Action int

// Treatment actions.
const (
	NoAction Action = iota + 1
	RestartAppAction
	TerminateAppAction
	ResetECUAction
)

// String names the action.
func (a Action) String() string {
	switch a {
	case NoAction:
		return "none"
	case RestartAppAction:
		return "restart-application"
	case TerminateAppAction:
		return "terminate-application"
	case ResetECUAction:
		return "reset-ECU"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// AppPolicy selects the treatment for a faulty application while the ECU
// is globally OK.
type AppPolicy int

// Application fault policies.
const (
	RestartApp AppPolicy = iota + 1
	TerminateApp
)

// Executor is the operating-system surface the framework uses to carry out
// treatments; the OSEK adapter in package hil implements it.
type Executor interface {
	RestartTask(runnable.TaskID) error
	TerminateTask(runnable.TaskID) error
	ResetECU() error
}

// Monitor is the watchdog surface the framework needs to acknowledge
// treatments: resetting the TSI state of treated tasks, and suspending or
// resuming monitoring when applications are terminated or restarted (a
// deliberately stopped application must not accumulate aliveness errors).
type Monitor interface {
	ClearTask(runnable.TaskID) error
	ClearAll()
	SuspendTaskMonitoring(runnable.TaskID) error
	ResumeTaskMonitoring(runnable.TaskID) error
}

// Treatment records one executed fault treatment.
type Treatment struct {
	Time   sim.Time
	Action Action
	App    runnable.AppID // runnable.NoID for ECU-level treatments
	Cause  core.ErrorKind
	Err    error // non-nil if the executor failed
	// Escalated marks a termination that overrode the restart policy
	// because the application kept relapsing within the escalation
	// window.
	Escalated bool
}

// Notification is delivered to subscribed applications: either a detected
// fault (Report non-nil) or an executed treatment (Treatment non-nil) —
// the framework "informs the applications about the fault detection"
// (§4.4).
type Notification struct {
	Severity  Severity
	Report    *core.Report
	State     *core.StateEvent
	Treatment *Treatment
}

// Config assembles a Framework.
type Config struct {
	Model *runnable.Model
	Clock sim.Clock
	// Exec carries out treatments; nil disables treatment execution
	// (detection-only deployments).
	Exec Executor
	// Monitor is told to clear watchdog state after treatments; usually
	// the *core.Watchdog. May be nil.
	Monitor Monitor
	// Defer schedules a function to run after the current watchdog
	// callback returns. The watchdog delivers reports under its internal
	// lock, so treatments must be deferred: in simulation pass
	// func(f func()) { kernel.After(0, f) }, in live deployments
	// func(f func()) { go f() }. Required when Exec is set.
	Defer func(func())
	// AllowECUReset gates the §3.5 software reset ("the ECU might be
	// subjected to a software reset depending on the requirements and
	// constraints of applications").
	AllowECUReset bool
	// DefaultPolicy applies to applications without an explicit policy.
	// Zero value means RestartApp.
	DefaultPolicy AppPolicy
	// LogCapacity bounds the in-memory fault log. Zero means 1024.
	LogCapacity int
	// EscalationThreshold escalates a repeatedly restarted application to
	// termination: after this many restart treatments of the same app
	// within EscalationWindow, the restart policy is overridden by
	// TerminateApp (fault containment for permanent faults). Zero
	// disables escalation.
	EscalationThreshold int
	// EscalationWindow is the sliding window for EscalationThreshold.
	// Zero with a non-zero threshold means 1 second.
	EscalationWindow time.Duration
}

// Framework is the Fault Management Framework instance of one ECU.
type Framework struct {
	mu  sync.Mutex
	cfg Config

	policies    map[runnable.AppID]AppPolicy
	subscribers []func(Notification)

	faultLog   []core.Report
	treatments []Treatment

	countsByKind     map[core.ErrorKind]uint64
	countsBySeverity map[Severity]uint64

	// restartHistory holds recent restart-treatment instants per app for
	// the escalation window.
	restartHistory map[runnable.AppID][]sim.Time
	escalated      map[runnable.AppID]bool
}

var _ core.Sink = (*Framework)(nil)

// New validates the configuration and builds a framework.
func New(cfg Config) (*Framework, error) {
	if cfg.Model == nil {
		return nil, errors.New("fmf: Config.Model is required")
	}
	if cfg.Clock == nil {
		return nil, errors.New("fmf: Config.Clock is required")
	}
	if cfg.Exec != nil && cfg.Defer == nil {
		return nil, errors.New("fmf: Config.Defer is required when Exec is set")
	}
	if cfg.DefaultPolicy == 0 {
		cfg.DefaultPolicy = RestartApp
	}
	if cfg.LogCapacity <= 0 {
		cfg.LogCapacity = 1024
	}
	if cfg.EscalationThreshold < 0 {
		return nil, errors.New("fmf: negative escalation threshold")
	}
	if cfg.EscalationThreshold > 0 && cfg.EscalationWindow <= 0 {
		cfg.EscalationWindow = time.Second
	}
	return &Framework{
		cfg:              cfg,
		policies:         make(map[runnable.AppID]AppPolicy),
		countsByKind:     make(map[core.ErrorKind]uint64),
		countsBySeverity: make(map[Severity]uint64),
		restartHistory:   make(map[runnable.AppID][]sim.Time),
		escalated:        make(map[runnable.AppID]bool),
	}, nil
}

// SetMonitor attaches the watchdog surface after construction. The
// framework is the watchdog's sink and the watchdog is the framework's
// monitor; this two-step wiring breaks the construction cycle.
func (f *Framework) SetMonitor(m Monitor) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.Monitor = m
}

func (f *Framework) monitor() Monitor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.Monitor
}

// SetPolicy selects the treatment policy for one application.
func (f *Framework) SetPolicy(app runnable.AppID, p AppPolicy) error {
	if _, err := f.cfg.Model.App(app); err != nil {
		return err
	}
	if p != RestartApp && p != TerminateApp {
		return fmt.Errorf("fmf: invalid policy %d", p)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.policies[app] = p
	return nil
}

// Subscribe registers a notification callback. Callbacks run synchronously
// on the reporting path and must be fast and must not call back into the
// watchdog.
func (f *Framework) Subscribe(fn func(Notification)) {
	if fn == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.subscribers = append(f.subscribers, fn)
}

// Severity derives a fault's severity from the owning application's
// criticality and the error kind: timing errors in safety-critical
// applications are critical; flow errors are always at least warnings.
func (f *Framework) Severity(r core.Report) Severity {
	app, err := f.cfg.Model.App(r.App)
	if err != nil {
		return Warning
	}
	switch {
	case app.Criticality == runnable.SafetyCritical:
		return Critical
	case r.Kind == core.ProgramFlowError || app.Criticality == runnable.SafetyRelevant:
		return Warning
	default:
		return Info
	}
}

// Fault implements core.Sink: record, classify and notify.
func (f *Framework) Fault(r core.Report) {
	f.mu.Lock()
	sev := f.Severity(r)
	if len(f.faultLog) < f.cfg.LogCapacity {
		f.faultLog = append(f.faultLog, r)
	} else {
		copy(f.faultLog, f.faultLog[1:])
		f.faultLog[len(f.faultLog)-1] = r
	}
	f.countsByKind[r.Kind]++
	f.countsBySeverity[sev]++
	subs := make([]func(Notification), len(f.subscribers))
	copy(subs, f.subscribers)
	f.mu.Unlock()
	for _, fn := range subs {
		fn(Notification{Severity: sev, Report: &r})
	}
}

// StateChanged implements core.Sink: on faulty transitions the §3.5
// treatment decision runs (deferred past the watchdog lock).
func (f *Framework) StateChanged(e core.StateEvent) {
	f.mu.Lock()
	subs := make([]func(Notification), len(f.subscribers))
	copy(subs, f.subscribers)
	f.mu.Unlock()
	for _, fn := range subs {
		fn(Notification{Severity: Warning, State: &e})
	}
	if f.cfg.Exec == nil || e.State != core.StateFaulty {
		return
	}
	switch e.Scope {
	case core.ECUScope:
		if f.cfg.AllowECUReset {
			f.cfg.Defer(func() { f.resetECU(e.Cause) })
		}
	case core.AppScope:
		app := e.App
		cause := e.Cause
		f.cfg.Defer(func() { f.treatApp(app, cause) })
	case core.TaskScope:
		// Task-level indications are treated at application level once the
		// TSI unit lifts them; nothing to execute here.
	}
}

// treatApp restarts or terminates a faulty application's tasks.
func (f *Framework) treatApp(app runnable.AppID, cause core.ErrorKind) {
	appModel, err := f.cfg.Model.App(app)
	if err != nil {
		return
	}
	f.mu.Lock()
	policy, ok := f.policies[app]
	if !ok {
		policy = f.cfg.DefaultPolicy
	}
	now := f.cfg.Clock.Now()
	escalatedNow := false
	if policy == RestartApp && f.cfg.EscalationThreshold > 0 {
		if f.escalated[app] {
			policy = TerminateApp
		} else {
			// Keep only restarts within the sliding window.
			hist := f.restartHistory[app]
			cutoff := now - sim.Time(f.cfg.EscalationWindow)
			kept := hist[:0]
			for _, t := range hist {
				if t >= cutoff {
					kept = append(kept, t)
				}
			}
			if len(kept) >= f.cfg.EscalationThreshold {
				// The application keeps relapsing: contain it.
				policy = TerminateApp
				escalatedNow = true
				f.escalated[app] = true
			} else {
				kept = append(kept, now)
			}
			f.restartHistory[app] = kept
		}
	}
	f.mu.Unlock()
	tr := Treatment{Time: now, App: app, Cause: cause, Escalated: escalatedNow}
	mon := f.monitor()
	switch policy {
	case TerminateApp:
		tr.Action = TerminateAppAction
		for _, tid := range appModel.Tasks {
			if err := f.cfg.Exec.TerminateTask(tid); err != nil && tr.Err == nil {
				tr.Err = err
			}
			if mon != nil {
				// A deliberately terminated application is no longer
				// monitored; otherwise its silence reads as aliveness
				// faults forever.
				_ = mon.SuspendTaskMonitoring(tid)
			}
		}
	default:
		tr.Action = RestartAppAction
		for _, tid := range appModel.Tasks {
			if err := f.cfg.Exec.RestartTask(tid); err != nil && tr.Err == nil {
				tr.Err = err
			}
			if mon != nil {
				_ = mon.ResumeTaskMonitoring(tid)
			}
		}
	}
	if mon != nil {
		for _, tid := range appModel.Tasks {
			// Clearing returns the TSI state to OK so monitoring restarts
			// from a clean slate.
			_ = mon.ClearTask(tid)
		}
	}
	f.recordTreatment(tr)
}

// resetECU performs the global software reset.
func (f *Framework) resetECU(cause core.ErrorKind) {
	tr := Treatment{Time: f.cfg.Clock.Now(), Action: ResetECUAction, App: runnable.NoID, Cause: cause}
	tr.Err = f.cfg.Exec.ResetECU()
	if mon := f.monitor(); mon != nil {
		mon.ClearAll()
	}
	f.recordTreatment(tr)
}

func (f *Framework) recordTreatment(tr Treatment) {
	f.mu.Lock()
	f.treatments = append(f.treatments, tr)
	subs := make([]func(Notification), len(f.subscribers))
	copy(subs, f.subscribers)
	f.mu.Unlock()
	for _, fn := range subs {
		fn(Notification{Severity: Critical, Treatment: &tr})
	}
}

// FaultLog returns a copy of the retained fault reports, oldest first.
func (f *Framework) FaultLog() []core.Report {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]core.Report, len(f.faultLog))
	copy(out, f.faultLog)
	return out
}

// Treatments returns a copy of the executed treatments, oldest first.
func (f *Framework) Treatments() []Treatment {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Treatment, len(f.treatments))
	copy(out, f.treatments)
	return out
}

// CountByKind reports how many faults of the kind have been recorded.
func (f *Framework) CountByKind(k core.ErrorKind) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.countsByKind[k]
}

// Escalated reports whether the application's restart policy has been
// escalated to termination.
func (f *Framework) Escalated(app runnable.AppID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.escalated[app]
}

// ClearEscalation re-arms the restart policy for an application, e.g.
// after maintenance or a software update.
func (f *Framework) ClearEscalation(app runnable.AppID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.escalated, app)
	delete(f.restartHistory, app)
}

// CountBySeverity reports how many faults of the severity have been
// recorded.
func (f *Framework) CountBySeverity(s Severity) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.countsBySeverity[s]
}
