package ethernet

import (
	"testing"
	"time"

	"swwd/internal/sim"
)

func newNet(t *testing.T, cfg Config) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel()
	n, err := NewNetwork(k, cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return k, n
}

func TestValidation(t *testing.T) {
	if _, err := NewNetwork(nil, Config{}); err == nil {
		t.Error("nil kernel accepted")
	}
	k := sim.NewKernel()
	if _, err := NewNetwork(k, Config{Latency: -time.Second}); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := NewNetwork(k, Config{LossRate: 1}); err == nil {
		t.Error("loss rate 1 accepted")
	}
	n, err := NewNetwork(k, Config{})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if _, err := n.AttachNode(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := n.AttachNode("a"); err != nil {
		t.Fatalf("AttachNode: %v", err)
	}
	if _, err := n.AttachNode("a"); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestUnicastWithLatency(t *testing.T) {
	k, n := newNet(t, Config{Latency: 5 * time.Millisecond})
	a, _ := n.AttachNode("a")
	b, _ := n.AttachNode("b")
	var got []Message
	var at sim.Time
	b.Subscribe(func(m Message) { got = append(got, m); at = k.Now() })
	if err := a.Send("b", 7, []byte{1, 2}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(got) != 1 || got[0].From != "a" || got[0].Topic != 7 || len(got[0].Payload) != 2 {
		t.Fatalf("got = %+v", got)
	}
	if at != 5*sim.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", at)
	}
}

func TestUnknownDestinationRejected(t *testing.T) {
	_, n := newNet(t, Config{})
	a, _ := n.AttachNode("a")
	if err := a.Send("ghost", 1, nil); err == nil {
		t.Fatal("unknown destination accepted")
	}
}

func TestBroadcastReachesAllButSender(t *testing.T) {
	k, n := newNet(t, Config{})
	a, _ := n.AttachNode("a")
	b, _ := n.AttachNode("b")
	c, _ := n.AttachNode("c")
	var gotB, gotC, gotA int
	a.Subscribe(func(Message) { gotA++ })
	b.Subscribe(func(Message) { gotB++ })
	c.Subscribe(func(Message) { gotC++ })
	if err := a.Broadcast(1, []byte{1}); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if gotA != 0 || gotB != 1 || gotC != 1 {
		t.Fatalf("deliveries a=%d b=%d c=%d", gotA, gotB, gotC)
	}
	if n.Stats().Delivered != 2 {
		t.Fatalf("Delivered = %d", n.Stats().Delivered)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []sim.Time {
		k, n := newNet(t, Config{Latency: time.Millisecond, Jitter: time.Millisecond, Seed: seed})
		a, _ := n.AttachNode("a")
		b, _ := n.AttachNode("b")
		var times []sim.Time
		b.Subscribe(func(Message) { times = append(times, k.Now()) })
		for i := 0; i < 10; i++ {
			if err := a.Send("b", 1, nil); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		if err := k.RunUntilIdle(); err != nil {
			t.Fatalf("RunUntilIdle: %v", err)
		}
		return times
	}
	x, y := run(42), run(42)
	if len(x) != 10 || len(y) != 10 {
		t.Fatalf("lengths %d/%d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("same seed produced different delivery times")
		}
		if x[i] < sim.Millisecond || x[i] >= 2*sim.Millisecond {
			t.Fatalf("delivery %v outside latency+jitter window", x[i])
		}
	}
}

func TestLossRateDropsSome(t *testing.T) {
	k, n := newNet(t, Config{LossRate: 0.5, Seed: 7})
	a, _ := n.AttachNode("a")
	b, _ := n.AttachNode("b")
	received := 0
	b.Subscribe(func(Message) { received++ })
	for i := 0; i < 100; i++ {
		if err := a.Send("b", 1, nil); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	st := n.Stats()
	if st.Dropped == 0 || received == 0 {
		t.Fatalf("dropped=%d received=%d, want both nonzero", st.Dropped, received)
	}
	if st.Dropped+st.Delivered != 100 {
		t.Fatalf("accounting broken: %+v", st)
	}
}

func TestPayloadIsolation(t *testing.T) {
	k, n := newNet(t, Config{})
	a, _ := n.AttachNode("a")
	b, _ := n.AttachNode("b")
	var got []byte
	b.Subscribe(func(m Message) { got = m.Payload })
	buf := []byte{1, 2, 3}
	if err := a.Send("b", 1, buf); err != nil {
		t.Fatalf("Send: %v", err)
	}
	buf[0] = 99
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if got[0] != 1 {
		t.Fatal("payload not copied at send boundary")
	}
}
