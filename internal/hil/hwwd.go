package hil

import (
	"fmt"
	"time"

	"swwd/internal/hwwd"
	"swwd/internal/osek"
	"swwd/internal/runnable"
)

// The hardware watchdog layer: a lowest-priority task services the
// hardware watchdog. Per-runnable faults never starve it (SafeSpeed and
// friends leave plenty of idle CPU), so the §2 division of labour holds —
// the hardware watchdog fires only when the software as a whole
// monopolises the CPU, and the firing performs the ECU reset.

// registerHardwareWatchdog adds the kick task to the model. Must run
// before Freeze.
func (v *Validator) registerHardwareWatchdog() error {
	var err error
	if v.HWKickApp, err = v.Model.AddApp("HWWatchdogService", runnable.QM); err != nil {
		return fmt.Errorf("hil: hwwd: %w", err)
	}
	// Priority 1: below every application task, so the kick only happens
	// when the CPU has idle capacity each period.
	if v.HWKickTask, err = v.Model.AddTask(v.HWKickApp, "HWKickTask", 1); err != nil {
		return fmt.Errorf("hil: hwwd: %w", err)
	}
	if v.HWKickRunnable, err = v.Model.AddRunnable(v.HWKickTask, "HWKick",
		20*time.Microsecond, runnable.QM); err != nil {
		return fmt.Errorf("hil: hwwd: %w", err)
	}
	return nil
}

// wireHardwareWatchdog builds the watchdog and the kick task. Must run
// after the OS exists.
func (v *Validator) wireHardwareWatchdog() error {
	var err error
	if v.HWWatchdog, err = hwwd.New(hwwd.Config{
		Kernel:  v.Kernel,
		Timeout: 200 * time.Millisecond,
		OnExpire: func() {
			// The hardware reset path: everything restarts from the boot
			// configuration, and the Software Watchdog state clears.
			v.OS.ResetECU()
			v.Watchdog.ClearAll()
		},
	}); err != nil {
		return fmt.Errorf("hil: hwwd: %w", err)
	}
	if err := v.OS.DefineTask(v.HWKickTask, osek.TaskAttrs{MaxActivations: 2}, osek.Program{
		osek.Exec{Runnable: v.HWKickRunnable, OnDone: v.HWWatchdog.Kick},
	}); err != nil {
		return fmt.Errorf("hil: hwwd: %w", err)
	}
	if _, err := v.OS.CreateAlarm("HWKickAlarm",
		osek.ActivateAlarm(v.HWKickTask), true, 50*time.Millisecond, 50*time.Millisecond); err != nil {
		return fmt.Errorf("hil: hwwd: %w", err)
	}
	return nil
}
