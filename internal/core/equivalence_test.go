package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// traceOp is one step of a deterministic replay trace.
type traceOp struct {
	kind int // 0 = heartbeat, 1 = cycle, 2 = deactivate, 3 = activate
	rid  int // runnable index for kind 0/2/3
}

// makeTrace generates a deterministic pseudo-random simulation trace over
// n runnables: mostly heartbeats, regular cycles, occasional activation
// toggles — the op mix of the HIL scenarios, compressed.
func makeTrace(seed int64, n, length int) []traceOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]traceOp, length)
	for i := range ops {
		switch r := rng.Intn(20); {
		case r < 13:
			ops[i] = traceOp{kind: 0, rid: rng.Intn(n)}
		case r < 18:
			ops[i] = traceOp{kind: 1}
		case r < 19:
			ops[i] = traceOp{kind: 2, rid: rng.Intn(n)}
		default:
			ops[i] = traceOp{kind: 3, rid: rng.Intn(n)}
		}
	}
	return ops
}

// equivFixture builds one watchdog over the shared model wiring used by
// the equivalence replay.
func equivFixture(t *testing.T, eager bool) (*Watchdog, *sim.ManualClock, *collector, []runnable.ID) {
	t.Helper()
	m := runnable.NewModel()
	app, _ := m.AddApp("equiv", runnable.SafetyCritical)
	t1, _ := m.AddTask(app, "T1", 1)
	t2, _ := m.AddTask(app, "T2", 2)
	var rids []runnable.ID
	for i, task := range []runnable.TaskID{t1, t1, t1, t2, t2} {
		rid, err := m.AddRunnable(task, "r"+string(rune('0'+i)), time.Millisecond, runnable.SafetyCritical)
		if err != nil {
			t.Fatalf("AddRunnable: %v", err)
		}
		rids = append(rids, rid)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	clock := sim.NewManualClock()
	sink := &collector{}
	w, err := New(Config{Model: m, Clock: clock, Sink: sink, EagerArrivalCheck: eager})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, rid := range rids {
		if err := w.SetHypothesis(rid, Hypothesis{
			AlivenessCycles: 5, MinHeartbeats: 1,
			ArrivalCycles: 5, MaxArrivals: 7,
		}); err != nil {
			t.Fatalf("SetHypothesis: %v", err)
		}
		if err := w.Activate(rid); err != nil {
			t.Fatalf("Activate: %v", err)
		}
	}
	if err := w.AddFlowSequence(rids[0], rids[1], rids[2]); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	if err := w.AddFlowSequence(rids[3], rids[4]); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	return w, clock, sink, rids
}

// TestMonitorBeatEquivalence replays the same deterministic sim trace
// through the seed-style Heartbeat entry point and through Monitor.Beat
// handles on two identically configured watchdogs, and requires the
// detection Results, the full fault Report stream and the state-event
// stream to be identical — the tentpole's "bit-identical semantics"
// acceptance gate.
func TestMonitorBeatEquivalence(t *testing.T) {
	for _, eager := range []bool{false, true} {
		name := "period-end"
		if eager {
			name = "eager"
		}
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				wa, clockA, sinkA, ridsA := equivFixture(t, eager)
				wb, clockB, sinkB, ridsB := equivFixture(t, eager)
				monitors := make([]*Monitor, len(ridsB))
				for i, rid := range ridsB {
					var err error
					if monitors[i], err = wb.Register(rid); err != nil {
						t.Fatalf("Register: %v", err)
					}
				}
				trace := makeTrace(seed, len(ridsA), 3000)
				for _, op := range trace {
					switch op.kind {
					case 0:
						wa.Heartbeat(ridsA[op.rid])
						monitors[op.rid].Beat()
					case 1:
						clockA.Advance(10 * time.Millisecond)
						clockB.Advance(10 * time.Millisecond)
						wa.Cycle()
						wb.Cycle()
					case 2:
						_ = wa.Deactivate(ridsA[op.rid])
						_ = wb.Deactivate(ridsB[op.rid])
					case 3:
						_ = wa.Activate(ridsA[op.rid])
						_ = wb.Activate(ridsB[op.rid])
					}
				}
				if ra, rb := wa.Results(), wb.Results(); ra != rb {
					t.Fatalf("seed %d: Results diverge: Heartbeat=%+v Monitor.Beat=%+v", seed, ra, rb)
				}
				if !reflect.DeepEqual(sinkA.faults, sinkB.faults) {
					t.Fatalf("seed %d: fault report streams diverge:\n  Heartbeat:    %v\n  Monitor.Beat: %v",
						seed, sinkA.faults, sinkB.faults)
				}
				if !reflect.DeepEqual(sinkA.states, sinkB.states) {
					t.Fatalf("seed %d: state event streams diverge:\n  Heartbeat:    %v\n  Monitor.Beat: %v",
						seed, sinkA.states, sinkB.states)
				}
				// Counter snapshots agree runnable by runnable.
				for i := range ridsA {
					ca, _ := wa.CounterSnapshot(ridsA[i])
					cb, _ := wb.CounterSnapshot(ridsB[i])
					if ca != cb {
						t.Fatalf("seed %d: counters diverge for runnable %d: %+v vs %+v", seed, i, ca, cb)
					}
				}
			}
		})
	}
}

// --- Sweep equivalence: timer wheel vs the legacy full-table walk ----

// Extended op kinds for the sweep replay (the tentpole's acceptance
// gate): mid-window hypothesis swaps, activation churn and fault
// treatment interleaved with heartbeats and cycles.
const (
	opBeat = iota
	opCycle
	opDeactivate
	opActivate
	opSetHyp
	opClearTask
	opSuspend
	opResume
	opClearAll
)

// sweepHypTable is the hypothesis mix of the sweep replay: disabled
// units, periods shorter than / equal to / far beyond the 8-slot test
// wheel (exercising bucket reinsertion on the same slot and the overflow
// list across several wheel revolutions), and limits tight enough to
// produce real detections.
var sweepHypTable = []Hypothesis{
	{}, // both units disabled: counters freeze mid-window
	{AlivenessCycles: 3, MinHeartbeats: 1},
	{AlivenessCycles: 5, MinHeartbeats: 2, ArrivalCycles: 4, MaxArrivals: 3},
	{ArrivalCycles: 2, MaxArrivals: 1},
	{AlivenessCycles: 1, MinHeartbeats: 1},                                   // due every cycle
	{AlivenessCycles: 8, MinHeartbeats: 1, ArrivalCycles: 9, MaxArrivals: 2}, // == and > wheel size
	{AlivenessCycles: 40, MinHeartbeats: 1},                                  // deep overflow, several revolutions
}

// sweepOp is one step of the sweep replay trace.
type sweepOp struct {
	kind int
	rid  int // runnable index for beat/act/deact/setHyp
	hyp  int // index into sweepHypTable for opSetHyp
	tid  int // task index for clearTask/suspend/resume
}

// makeSweepTrace generates the deterministic mixed-op trace.
func makeSweepTrace(seed int64, nR, nT, length int) []sweepOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]sweepOp, length)
	for i := range ops {
		switch r := rng.Intn(100); {
		case r < 38:
			ops[i] = sweepOp{kind: opBeat, rid: rng.Intn(nR)}
		case r < 70:
			ops[i] = sweepOp{kind: opCycle}
		case r < 80:
			ops[i] = sweepOp{kind: opSetHyp, rid: rng.Intn(nR), hyp: rng.Intn(len(sweepHypTable))}
		case r < 85:
			ops[i] = sweepOp{kind: opDeactivate, rid: rng.Intn(nR)}
		case r < 90:
			ops[i] = sweepOp{kind: opActivate, rid: rng.Intn(nR)}
		case r < 94:
			ops[i] = sweepOp{kind: opClearTask, tid: rng.Intn(nT)}
		case r < 97:
			ops[i] = sweepOp{kind: opSuspend, tid: rng.Intn(nT)}
		case r < 99:
			ops[i] = sweepOp{kind: opResume, tid: rng.Intn(nT)}
		default:
			ops[i] = sweepOp{kind: opClearAll}
		}
	}
	return ops
}

// sweepFixture builds one watchdog over the shared 2-task model with an
// arbitrary Config modifier (sweep selection, wheel size, shards).
func sweepFixture(t *testing.T, eager bool, mod func(*Config)) (*Watchdog, *sim.ManualClock, *collector, []runnable.ID, []runnable.TaskID) {
	t.Helper()
	m := runnable.NewModel()
	app, _ := m.AddApp("equiv", runnable.SafetyCritical)
	t1, _ := m.AddTask(app, "T1", 1)
	t2, _ := m.AddTask(app, "T2", 2)
	tids := []runnable.TaskID{t1, t2}
	var rids []runnable.ID
	for i, task := range []runnable.TaskID{t1, t1, t1, t2, t2} {
		rid, err := m.AddRunnable(task, "r"+string(rune('0'+i)), time.Millisecond, runnable.SafetyCritical)
		if err != nil {
			t.Fatalf("AddRunnable: %v", err)
		}
		rids = append(rids, rid)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	clock := sim.NewManualClock()
	sink := &collector{}
	cfg := Config{Model: m, Clock: clock, Sink: sink, EagerArrivalCheck: eager}
	if mod != nil {
		mod(&cfg)
	}
	w, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, rid := range rids {
		if err := w.SetHypothesis(rid, sweepHypTable[1+i%(len(sweepHypTable)-1)]); err != nil {
			t.Fatalf("SetHypothesis: %v", err)
		}
		if err := w.Activate(rid); err != nil {
			t.Fatalf("Activate: %v", err)
		}
	}
	if err := w.AddFlowSequence(rids[0], rids[1], rids[2]); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	if err := w.AddFlowSequence(rids[3], rids[4]); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	return w, clock, sink, rids, tids
}

// applySweepOp replays one trace op onto a watchdog.
func applySweepOp(w *Watchdog, clock *sim.ManualClock, rids []runnable.ID, tids []runnable.TaskID, op sweepOp) {
	switch op.kind {
	case opBeat:
		w.Heartbeat(rids[op.rid])
	case opCycle:
		clock.Advance(10 * time.Millisecond)
		w.Cycle()
	case opDeactivate:
		_ = w.Deactivate(rids[op.rid])
	case opActivate:
		_ = w.Activate(rids[op.rid])
	case opSetHyp:
		_ = w.SetHypothesis(rids[op.rid], sweepHypTable[op.hyp])
	case opClearTask:
		_ = w.ClearTask(tids[op.tid])
	case opSuspend:
		_ = w.SuspendTaskMonitoring(tids[op.tid])
	case opResume:
		_ = w.ResumeTaskMonitoring(tids[op.tid])
	case opClearAll:
		w.ClearAll()
	}
}

// TestSweepEquivalence replays deterministic mixed-op traces through the
// legacy O(N) full-table sweep (kept in-tree as Config.LegacySweep) and
// through the timer-wheel sweep — serial on a deliberately tiny 8-slot
// wheel to force overflow migration and same-slot reinsertion, serial on
// the default wheel, and sharded-parallel — and requires the detection
// Results, the full fault Report stream (kind, runnable, observed,
// expected, cycle, correlation), the state-event stream and every
// per-runnable counter snapshot to be bit-identical.
func TestSweepEquivalence(t *testing.T) {
	variants := []struct {
		name string
		mod  func(*Config)
	}{
		{"wheel-8slot", func(c *Config) { c.wheelSize = 8 }},
		{"wheel-default", nil},
		{"wheel-sharded", func(c *Config) {
			c.wheelSize = 8
			c.SweepShards = 3
			c.sweepParallelMin = 1 // engage the pool on every non-empty sweep
		}},
	}
	for _, eager := range []bool{false, true} {
		name := "period-end"
		if eager {
			name = "eager"
		}
		t.Run(name, func(t *testing.T) {
			for _, v := range variants {
				t.Run(v.name, func(t *testing.T) {
					for seed := int64(1); seed <= 6; seed++ {
						ref, clockA, sinkA, ridsA, tidsA := sweepFixture(t, eager, func(c *Config) { c.LegacySweep = true })
						cand, clockB, sinkB, sinkBRids, tidsB := sweepFixture(t, eager, v.mod)
						trace := makeSweepTrace(seed, len(ridsA), len(tidsA), 5000)
						for oi, op := range trace {
							applySweepOp(ref, clockA, ridsA, tidsA, op)
							applySweepOp(cand, clockB, sinkBRids, tidsB, op)
							if op.kind == opCycle && oi%5 == 0 {
								for i := range ridsA {
									ca, _ := ref.CounterSnapshot(ridsA[i])
									cb, _ := cand.CounterSnapshot(sinkBRids[i])
									if ca != cb {
										t.Fatalf("seed %d op %d: counters diverge for runnable %d: legacy=%+v wheel=%+v",
											seed, oi, i, ca, cb)
									}
								}
							}
						}
						if ra, rb := ref.Results(), cand.Results(); ra != rb {
							t.Fatalf("seed %d: Results diverge: legacy=%+v wheel=%+v", seed, ra, rb)
						}
						if !reflect.DeepEqual(sinkA.faults, sinkB.faults) {
							na, nb := len(sinkA.faults), len(sinkB.faults)
							for i := 0; i < na && i < nb; i++ {
								if !reflect.DeepEqual(sinkA.faults[i], sinkB.faults[i]) {
									t.Fatalf("seed %d: fault streams diverge at %d/%d vs %d:\n  legacy: %+v\n  wheel:  %+v",
										seed, i, na, nb, sinkA.faults[i], sinkB.faults[i])
								}
							}
							t.Fatalf("seed %d: fault stream lengths diverge: legacy=%d wheel=%d", seed, na, nb)
						}
						if !reflect.DeepEqual(sinkA.states, sinkB.states) {
							t.Fatalf("seed %d: state event streams diverge:\n  legacy: %v\n  wheel:  %v",
								seed, sinkA.states, sinkB.states)
						}
						for i := range ridsA {
							ca, _ := ref.CounterSnapshot(ridsA[i])
							cb, _ := cand.CounterSnapshot(sinkBRids[i])
							if ca != cb {
								t.Fatalf("seed %d: final counters diverge for runnable %d: legacy=%+v wheel=%+v", seed, i, ca, cb)
							}
						}
						cand.Close()
					}
				})
			}
		})
	}
}

// TestRegisterUnknownRunnable pins the sentinel error contract of the
// handle API.
func TestRegisterUnknownRunnable(t *testing.T) {
	w, _, _, rids := equivFixture(t, false)
	if _, err := w.Register(runnable.ID(len(rids) + 7)); err == nil {
		t.Fatal("Register accepted an unknown runnable")
	}
	if _, err := w.Register(runnable.NoID); err == nil {
		t.Fatal("Register accepted NoID")
	}
	m, err := w.Register(rids[0])
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if m.ID() != rids[0] {
		t.Fatalf("ID() = %d, want %d", m.ID(), rids[0])
	}
	if err := m.Deactivate(); err != nil {
		t.Fatalf("Deactivate: %v", err)
	}
	if c := m.Counters(); c.Active {
		t.Fatal("Counters().Active after Deactivate")
	}
	if err := m.Activate(); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	m.Beat()
	if c := m.Counters(); c.AC != 1 {
		t.Fatalf("AC = %d after one Beat, want 1", c.AC)
	}
}
