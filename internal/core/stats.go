package core

import (
	"swwd/internal/runnable"
)

// This file implements the telemetry Snapshot: a point-in-time copy of
// everything a live watchdog can report about itself — per-runnable
// heartbeat counters and fault tallies, the cumulative detection
// results, the TSI-derived ECU state, journal occupancy and the
// sweep-duration histogram.
//
// Cost contract: the heartbeat hot path pays NOTHING for any of this.
// The lifetime beat series is derived by banking each closing window's
// AC into a per-runnable accumulator on the (cold) sweep and reset
// paths, and every other figure comes from state the watchdog already
// maintains. Reading a snapshot is cold: the per-runnable counters are plain
// atomic loads, and one short acquisition of the cold-path mutex copies
// the error-indication vectors, results and journal accounting
// consistently. SnapshotInto reuses the caller's buffers, so a metrics
// scraper settles into zero allocations per scrape.

// RunnableStats is the telemetry of one runnable.
type RunnableStats struct {
	ID runnable.ID
	// Active is the Activation Status (AS).
	Active bool
	// Beats is the lifetime count of heartbeats recorded while the
	// runnable was active. Unlike AC/ARC it survives window closes and
	// counter resets: closing windows bank their AC into an accumulator.
	Beats uint64
	// AC/ARC/CCA/CCAR are the live §3.3 monitoring counters.
	AC, ARC, CCA, CCAR int
	// ErrAliveness/ErrArrivalRate/ErrProgramFlow are the accumulated
	// error-indication-vector elements (fault counts by kind).
	ErrAliveness   uint64
	ErrArrivalRate uint64
	ErrProgramFlow uint64
}

// DriverStats is the cycle-driver telemetry contributed by whatever
// drives Cycle — the swwd.Service ticker in live deployments. The core
// leaves it zero; the Service fills it in its Snapshot wrapper so tick
// drift (missed cycles silently stretching every hypothesis window) is
// visible on the same scrape as the detection counters.
type DriverStats struct {
	// Ticks is the number of monitoring cycles actually driven.
	Ticks uint64
	// MissedCycles is the cumulative count of cycles lost to overruns.
	MissedCycles uint64
	// Overruns is the number of overrun events (each may lose several
	// cycles); MaxLateNs the worst observed lateness in nanoseconds.
	Overruns  uint64
	MaxLateNs int64
}

// Snapshot is a point-in-time copy of the watchdog's telemetry.
type Snapshot struct {
	// Cycle is the monitoring-cycle counter at snapshot time.
	Cycle uint64
	// Results are the cumulative detection counts (AM/AR/PFC Result).
	Results Results
	// ECUState is the TSI-derived global state.
	ECUState HealthState
	// Journal summarizes the fault-event ring (zero when disabled).
	Journal JournalStats
	// Sweep is the Cycle-duration histogram.
	Sweep HistogramSnapshot
	// Driver is filled by the Service wrapper (zero from Watchdog.Snapshot).
	Driver DriverStats
	// Runnables holds one entry per runnable, indexed by runnable ID.
	Runnables []RunnableStats
}

// Snapshot returns a freshly allocated telemetry snapshot. For repeated
// scraping prefer SnapshotInto with a reused buffer.
func (w *Watchdog) Snapshot() Snapshot {
	var s Snapshot
	w.SnapshotInto(&s)
	return s
}

// SnapshotInto fills s with the current telemetry, reusing s.Runnables
// when it has capacity: scraping with a retained Snapshot is
// allocation-free after the first call. The per-runnable counters are
// individually consistent atomic reads; the fault tallies, results, ECU
// state and journal accounting are copied jointly under one short
// cold-path lock. Safe for concurrent use with beats, cycles and
// configuration changes.
func (w *Watchdog) SnapshotInto(s *Snapshot) {
	n := len(w.hot)
	if cap(s.Runnables) < n {
		s.Runnables = make([]RunnableStats, n)
	}
	s.Runnables = s.Runnables[:n]

	s.Cycle = w.cycle.Load()
	s.Driver = DriverStats{}
	for i := range w.hot {
		rs := &s.Runnables[i]
		c := w.counters(runnable.ID(i))
		rs.ID = runnable.ID(i)
		rs.Active = c.Active
		rs.AC, rs.ARC, rs.CCA, rs.CCAR = c.AC, c.ARC, c.CCA, c.CCAR
		rs.Beats = w.hot[i].lifetimeBeats()
	}

	w.mu.Lock()
	for i := range s.Runnables {
		e := w.errv[i]
		rs := &s.Runnables[i]
		rs.ErrAliveness, rs.ErrArrivalRate, rs.ErrProgramFlow = e[0], e[1], e[2]
	}
	s.Results = w.results
	s.ECUState = w.ecuState
	s.Journal = w.journalStatsLocked()
	w.mu.Unlock()

	w.sweepHist.snapshotInto(&s.Sweep)
}

// SweepHistogram returns a copy of the Cycle-duration histogram without
// assembling a full Snapshot.
func (w *Watchdog) SweepHistogram() HistogramSnapshot {
	var s HistogramSnapshot
	w.sweepHist.snapshotInto(&s)
	return s
}

// maybeEmitMetrics invokes the configured MetricsSink every
// cfg.MetricsEveryCycles cycles, on the Cycle caller's goroutine, with
// the watchdog's reused snapshot buffer. Runs after the sweep released
// the scheduler mutex, so a slow sink delays only its own cycle's
// return, never the wheel.
func (w *Watchdog) maybeEmitMetrics(c uint64) {
	sink := w.cfg.MetricsSink
	if sink == nil || c%w.metricsEvery != 0 {
		return
	}
	w.metricsMu.Lock()
	defer w.metricsMu.Unlock()
	w.SnapshotInto(&w.metricsBuf)
	sink(&w.metricsBuf)
}
