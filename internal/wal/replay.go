package wal

import (
	"os"
	"sort"

	"swwd/internal/core"
)

// History is the result of replaying a log directory: every intact
// record in sequence order, plus an accounting of the torn tail the
// scan stopped at (if any). Replay is read-only — it never truncates —
// so it is safe against a directory another process is writing: the
// torn tail is simply that writer's not-yet-committed edge.
type History struct {
	// Records holds every intact record, ascending by Seq.
	Records []Record
	// FirstSeq/LastSeq bound the replayed range (0/0 when empty).
	FirstSeq, LastSeq uint64
	// TornBytes counts trailing bytes the scan could not validate;
	// TornSegments the whole segments abandoned past the corruption
	// point.
	TornBytes    int64
	TornSegments int
	// Segments is the number of segment files visited.
	Segments int
}

// Replay scans every segment of dir in order and returns the intact
// history. A missing directory replays as an empty history.
func Replay(dir string) (*History, error) {
	h := &History{}
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return h, nil
		}
		return nil, err
	}
	h.Segments = len(segs)
	var want uint64
	for i := range segs {
		data, err := os.ReadFile(segs[i].path)
		if err != nil {
			return nil, err
		}
		off, scanErr := scanSegment(data, &want, func(r *Record) {
			h.Records = append(h.Records, *r)
		})
		if scanErr != nil {
			h.TornBytes += segs[i].size - off
			for _, s := range segs[i+1:] {
				h.TornBytes += s.size
				h.TornSegments++
			}
			break
		}
	}
	if len(h.Records) > 0 {
		h.FirstSeq = h.Records[0].Seq
		h.LastSeq = h.Records[len(h.Records)-1].Seq
	}
	return h, nil
}

// Window returns the records whose append time falls in
// [sinceNs, untilNs) — Unix nanoseconds; untilNs <= 0 means no upper
// bound. Records are time-ordered because the single writer stamps
// them, so the window is one contiguous slice of Records (not a copy).
func (h *History) Window(sinceNs, untilNs int64) []Record {
	lo := sort.Search(len(h.Records), func(i int) bool { return h.Records[i].TimeNs >= sinceNs })
	hi := len(h.Records)
	if untilNs > 0 {
		hi = sort.Search(len(h.Records), func(i int) bool { return h.Records[i].TimeNs >= untilNs })
	}
	if lo > hi {
		lo = hi
	}
	return h.Records[lo:hi]
}

// RunnableView is the per-runnable slice of a rebuilt View: the
// cumulative error-indication vector and freeze-frame figures of the
// runnable's most recent detection.
type RunnableView struct {
	Detections     uint64 `json:"detections"`
	ErrAliveness   uint64 `json:"err_aliveness"`
	ErrArrivalRate uint64 `json:"err_arrival_rate"`
	ErrProgramFlow uint64 `json:"err_program_flow"`
	LastBeats      uint64 `json:"last_beats"`
	LastCycle      uint64 `json:"last_cycle"`
}

// View is the Snapshot-equivalent state a replay rebuilds: what a fleet
// supervisor reads after a restart erased the in-core journal. Each
// journal entry carries the runnable's cumulative error-indication
// vector after the detection, so the last record per runnable
// reconstructs the same per-runnable fault counts a live
// core.Snapshot reports, and the detection count by kind reconstructs
// the cumulative Results series over the retained window.
type View struct {
	// Detections counts replayed detection records; Aliveness/
	// ArrivalRate/ProgramFlow split them by kind (the Results series).
	Detections  uint64 `json:"detections"`
	Aliveness   uint64 `json:"aliveness"`
	ArrivalRate uint64 `json:"arrival_rate"`
	ProgramFlow uint64 `json:"program_flow"`
	// LastJournalSeq is the journal sequence of the newest replayed
	// detection; LastCycle its monitoring cycle.
	LastJournalSeq uint64 `json:"last_journal_seq"`
	LastCycle      uint64 `json:"last_cycle"`
	// Runnables maps runnable ID to its rebuilt per-runnable state.
	Runnables map[int32]RunnableView `json:"runnables"`
	// Actions counts treatment actions by treat.ActionKind.
	Actions map[uint8]uint64 `json:"actions"`
	// Ingest is the sum of every replayed counter delta: the ingest
	// counters accumulated over the replayed window.
	Ingest Delta `json:"ingest"`
	// Deltas counts the ingest delta records summed into Ingest.
	Deltas uint64 `json:"deltas"`
}

// View folds the history into the Snapshot-equivalent aggregate.
func (h *History) View() View {
	v := View{
		Runnables: make(map[int32]RunnableView),
		Actions:   make(map[uint8]uint64),
	}
	for i := range h.Records {
		v.apply(&h.Records[i])
	}
	return v
}

// apply folds one record into the view.
func (v *View) apply(r *Record) {
	switch r.Kind {
	case KindDetection:
		d := &r.Det
		v.Detections++
		switch core.ErrorKind(d.Kind) {
		case core.AlivenessError:
			v.Aliveness++
		case core.ArrivalRateError:
			v.ArrivalRate++
		case core.ProgramFlowError:
			v.ProgramFlow++
		}
		v.LastJournalSeq = d.JournalSeq
		v.LastCycle = d.Cycle
		rv := v.Runnables[d.Runnable]
		rv.Detections++
		rv.ErrAliveness = d.ErrAliveness
		rv.ErrArrivalRate = d.ErrArrivalRate
		rv.ErrProgramFlow = d.ErrProgramFlow
		rv.LastBeats = d.Beats
		rv.LastCycle = d.Cycle
		v.Runnables[d.Runnable] = rv
	case KindAction:
		v.Actions[r.Act.Kind]++
	case KindDelta:
		d := &r.Delta
		s := &v.Ingest
		s.Frames += d.Frames
		s.Bytes += d.Bytes
		s.Accepted += d.Accepted
		s.DecodeErrors += d.DecodeErrors
		s.UnknownNode += d.UnknownNode
		s.SeqGaps += d.SeqGaps
		s.SeqGapEvents += d.SeqGapEvents
		s.DuplicateDrops += d.DuplicateDrops
		s.NodeRestarts += d.NodeRestarts
		s.StaleEpochDrops += d.StaleEpochDrops
		s.IntervalMismatch += d.IntervalMismatch
		s.DroppedPackets += d.DroppedPackets
		s.BuffersExhausted += d.BuffersExhausted
		s.ReadErrors += d.ReadErrors
		s.CommandsSent += d.CommandsSent
		s.CommandsAcked += d.CommandsAcked
		s.CommandsDropped += d.CommandsDropped
		s.CommandStaleAcks += d.CommandStaleAcks
		v.Deltas++
	}
}
