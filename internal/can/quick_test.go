package can

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swwd/internal/sim"
)

// Property: on a clean bus, every sent frame is delivered exactly once,
// and whenever multiple frames contend, delivery order never inverts
// identifier priority among frames that were simultaneously pending.
func TestQuickDeliveryCompleteAndPriorityConsistent(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(count%30) + 1
		k := sim.NewKernel()
		b, err := NewBus(k, 500000)
		if err != nil {
			return false
		}
		tx1 := b.AttachNode("tx1")
		tx2 := b.AttachNode("tx2")
		rx := b.AttachNode("rx")
		received := 0
		rx.Subscribe(nil, func(Frame) { received++ })
		for i := 0; i < n; i++ {
			node := tx1
			if rng.Intn(2) == 0 {
				node = tx2
			}
			id := FrameID(rng.Intn(0x700))
			at := sim.Time(rng.Intn(2000)) * sim.Microsecond
			k.At(at, func() {
				if err := node.Send(Frame{ID: id, Data: []byte{1}}); err != nil {
					t.Errorf("Send: %v", err)
				}
			})
		}
		if err := k.RunUntilIdle(); err != nil {
			return false
		}
		return received == n && b.Stats().FramesDelivered == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: with bit errors injected at any rate < 1, every frame still
// reaches the receiver eventually (retransmission), provided no node
// bus-offs — checked by keeping per-burst error counts low.
func TestQuickLossyBusEventualDelivery(t *testing.T) {
	f := func(seed int64, rate8 uint8) bool {
		// Cap at 0.29 so the probability of 16 consecutive corruptions
		// (bus-off of the single-frame burst) is negligible (~1e-9).
		rate := float64(rate8%30) / 100
		k := sim.NewKernel()
		b, err := NewBus(k, 500000)
		if err != nil {
			return false
		}
		if err := b.SetBitErrorRate(rate, seed); err != nil {
			return false
		}
		tx := b.AttachNode("tx")
		rx := b.AttachNode("rx")
		received := 0
		rx.Subscribe(nil, func(Frame) { received++ })
		const frames = 20
		for i := 0; i < frames; i++ {
			// One frame at a time: successes between errors keep TEC low.
			if err := tx.Send(Frame{ID: 0x100, Data: []byte{byte(i)}}); err != nil {
				return false
			}
			if err := k.RunUntilIdle(); err != nil {
				return false
			}
			if tx.ErrorState() == BusOff {
				tx.Recover()
			}
		}
		return received == frames
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
