package swwd

import (
	"sync/atomic"
	"testing"
	"time"
)

func driftService(t *testing.T) *Service {
	t.Helper()
	m := NewModel()
	app, _ := m.AddApp("drift", QM)
	task, _ := m.AddTask(app, "T", 1)
	if _, err := m.AddRunnable(task, "r", time.Millisecond, QM); err != nil {
		t.Fatalf("AddRunnable: %v", err)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	w, err := New(m)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s, err := NewService(w, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return s
}

// TestNoteTickDriftAccounting drives the tick accounting directly with
// synthetic timestamps: on-time and jittery ticks are free, while a gap
// of k periods credits k-1 missed cycles and fires the overrun handler
// with the lateness.
func TestNoteTickDriftAccounting(t *testing.T) {
	s := driftService(t)
	var gotMissed atomic.Uint64
	var gotLate atomic.Int64
	s.SetOverrunHandler(func(missed uint64, late time.Duration) {
		gotMissed.Add(missed)
		gotLate.Store(int64(late))
	})

	t0 := time.Unix(1000, 0)
	period := 10 * time.Millisecond

	// On-time tick: no drift.
	if n := s.noteTick(t0, t0.Add(period)); n != 0 {
		t.Fatalf("on-time tick: missed = %d, want 0", n)
	}
	// Jitter below the half-period guard: no drift.
	if n := s.noteTick(t0, t0.Add(period+4*time.Millisecond)); n != 0 {
		t.Fatalf("jittery tick: missed = %d, want 0", n)
	}
	if s.MissedCycles() != 0 {
		t.Fatalf("MissedCycles after clean ticks = %d, want 0", s.MissedCycles())
	}

	// A 3.5-period gap means two whole cycles never ran.
	gap := period*3 + period/2
	if n := s.noteTick(t0, t0.Add(gap)); n != 2 {
		t.Fatalf("overrun tick: missed = %d, want 2", n)
	}
	if s.MissedCycles() != 2 {
		t.Fatalf("MissedCycles = %d, want 2", s.MissedCycles())
	}
	if gotMissed.Load() != 2 {
		t.Fatalf("handler missed = %d, want 2", gotMissed.Load())
	}
	if want := gap - period; time.Duration(gotLate.Load()) != want {
		t.Fatalf("handler late = %v, want %v", time.Duration(gotLate.Load()), want)
	}

	// Removing the handler keeps counting but stops callbacks.
	s.SetOverrunHandler(nil)
	if n := s.noteTick(t0, t0.Add(2*period)); n != 1 {
		t.Fatalf("second overrun: missed = %d, want 1", n)
	}
	if s.MissedCycles() != 3 {
		t.Fatalf("MissedCycles = %d, want 3", s.MissedCycles())
	}
	if gotMissed.Load() != 2 {
		t.Fatalf("handler fired after removal: missed = %d", gotMissed.Load())
	}
}

// TestServiceCleanRunNoDrift runs a real loop long enough for several
// ticks and checks a healthy sweep reports no missed cycles.
func TestServiceCleanRunNoDrift(t *testing.T) {
	s := driftService(t)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if got := s.MissedCycles(); got > 2 {
		// Allow a little CI scheduling slop, but a healthy loop must not
		// be systematically behind.
		t.Fatalf("MissedCycles after clean run = %d", got)
	}
}
