// Gateway scenario: the full cross-domain topology of the EASIS
// architecture validator.
//
// The central node runs the three ISS applications under Software
// Watchdog supervision; the sensor node publishes vehicle speed on CAN;
// the steering command travels to the actuator node over FlexRay's static
// TDMA segment; and the externally commanded speed limit originates at
// the telematics side, crossing the gateway node from TCP/IP into the CAN
// domain. Mid-scenario the telematics service lowers the limit from 80 to
// 50 km/h and the vehicle follows — the whole control path exercises real
// frames, slots and routing, not shared memory.
//
// Run with:
//
//	go run ./examples/gateway
package main

import (
	"fmt"
	"log"
	"time"

	"swwd/validator"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("gateway: %v", err)
	}
}

func run() error {
	v, err := validator.New(validator.WithNetworks())
	if err != nil {
		return err
	}

	fmt.Println("phase 1: cruise at the telematics-commanded 80 km/h limit")
	if err := v.Run(10 * time.Second); err != nil {
		return err
	}
	fmt.Printf("  t=%v speed=%.1f km/h, limit commands received=%d\n",
		v.Kernel.Now(), validator.MsToKph(v.Long.Speed()), v.Net.LimitCommandsReceived())

	fmt.Println("phase 2: telematics lowers the limit to 50 km/h")
	v.SetSpeedLimit(validator.KphToMs(50))
	if err := v.Run(20 * time.Second); err != nil {
		return err
	}
	fmt.Printf("  t=%v speed=%.1f km/h\n", v.Kernel.Now(), validator.MsToKph(v.Long.Speed()))

	fmt.Println("\nnetwork statistics:")
	canStats := v.Net.CANBus.Stats()
	fmt.Printf("  CAN:     %d frames delivered, %.1f%% utilization, %d arbitration losses\n",
		canStats.FramesDelivered, 100*v.Net.CANBus.Utilization(), canStats.ArbitrationLosses)
	frStats := v.Net.FRBus.Stats()
	fmt.Printf("  FlexRay: %d cycles, %d static frames, %d empty slots\n",
		frStats.Cycles, frStats.StaticFrames, frStats.EmptySlots)
	ethStats := v.Net.EthNet.Stats()
	fmt.Printf("  TCP/IP:  %d datagrams delivered\n", ethStats.Delivered)
	for i, rs := range v.Net.Gateway.Stats() {
		route := v.Net.Gateway.Routes()[i]
		fmt.Printf("  gateway: route %s:0x%X -> %s:0x%X forwarded %d (errors %d)\n",
			route.From, route.FromID, route.To, route.ToID, rs.Forwarded, rs.Errors)
	}

	res := v.Watchdog.Results()
	fmt.Printf("\nwatchdog: AM=%d AR=%d PFC=%d over %d cycles (healthy run)\n",
		res.Aliveness, res.ArrivalRate, res.ProgramFlow, v.Watchdog.CycleCount())

	got := validator.MsToKph(v.Long.Speed())
	if got > 55 {
		return fmt.Errorf("limit command did not propagate: speed %.1f km/h", got)
	}
	fmt.Println("scenario complete")
	return nil
}
