package osek

import (
	"swwd/internal/runnable"
)

// Program is the body of a task: a sequence of steps executed in order on
// each activation. Steps either consume simulated CPU time (Exec) or are
// instantaneous OS service calls and control flow.
//
// The step set deliberately includes Loop and Select because the paper's
// error-injection campaign manipulates exactly these: "manipulation of
// loop counters and building invalid execution branches" (§4.5).
type Program []Step

// Step is one element of a task body.
type Step interface{ isStep() }

// Exec models a runnable executing on the CPU for its configured execution
// time (scaled by any injected execution-time scalar). OnStart fires when
// the runnable first gets the CPU for this instance, OnDone when it
// completes; both run instantaneously in simulation time.
type Exec struct {
	Runnable runnable.ID
	OnStart  func()
	OnDone   func()
}

// Lock acquires an OSEK resource with the priority-ceiling protocol
// (GetResource).
type Lock struct{ Resource ResourceID }

// Unlock releases an OSEK resource (ReleaseResource); releases must be
// LIFO with respect to Lock.
type Unlock struct{ Resource ResourceID }

// Wait blocks the (extended) task until at least one event in Mask is set
// (WaitEvent). If one already is, the task continues immediately.
type Wait struct{ Mask EventMask }

// ClearEvt clears the given events of the calling task (ClearEvent).
type ClearEvt struct{ Mask EventMask }

// SetEvt sets events for another task (SetEvent).
type SetEvt struct {
	Task runnable.TaskID
	Mask EventMask
}

// Activate activates another task (ActivateTask).
type Activate struct{ Task runnable.TaskID }

// Chain terminates the calling task and activates Task (ChainTask); any
// remaining steps of the program are not executed.
type Chain struct{ Task runnable.TaskID }

// Call runs an arbitrary instantaneous action, used for application logic
// that needs no CPU-time modelling.
type Call struct{ Fn func() }

// Yield is the OSEK Schedule() service: a voluntary rescheduling point.
// For preemptable tasks it is a no-op (they are preempted immediately
// anyway); a non-preemptable task lets a higher-priority ready task run
// and resumes afterwards.
type Yield struct{}

// Loop executes Body Count() times. Count is evaluated when the loop step
// is reached, which is the seam the loop-counter error injection uses.
type Loop struct {
	Count func() int
	Body  Program
}

// Select evaluates Choose and executes the corresponding arm; an index
// outside [0,len(Arms)) executes nothing. Invalid-branch error injection
// flips the chooser to a wrong arm at run time.
type Select struct {
	Choose func() int
	Arms   []Program
}

func (Exec) isStep()     {}
func (Lock) isStep()     {}
func (Unlock) isStep()   {}
func (Wait) isStep()     {}
func (ClearEvt) isStep() {}
func (SetEvt) isStep()   {}
func (Activate) isStep() {}
func (Chain) isStep()    {}
func (Call) isStep()     {}
func (Yield) isStep()    {}
func (Loop) isStep()     {}
func (Select) isStep()   {}

// SequentialProgram builds the common task body: the task's runnables from
// the model, executed in their mapped order, with optional per-runnable
// completion actions.
func SequentialProgram(m *runnable.Model, tid runnable.TaskID, onDone map[runnable.ID]func()) (Program, error) {
	t, err := m.Task(tid)
	if err != nil {
		return nil, err
	}
	prog := make(Program, 0, len(t.Runnables))
	for _, rid := range t.Runnables {
		prog = append(prog, Exec{Runnable: rid, OnDone: onDone[rid]})
	}
	return prog, nil
}

// frame is one level of the program interpreter's control stack.
type frame struct {
	prog Program
	pc   int
	// iter holds remaining loop iterations when this frame is a Loop body
	// re-entry point.
	iter int
	loop *Loop
}
