//go:build !(linux && (amd64 || arm64))

package ingest

import "net"

// newMmsgReader has no batched implementation off linux/amd64 and
// linux/arm64 (the syscall struct layouts are per-target and this
// module takes no golang.org/x/sys dependency); newBatchReader falls
// back to the portable single-datagram reader.
func newMmsgReader(conn *net.UDPConn, batch int) datagramReader {
	return nil
}
