package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// traceOp is one step of a deterministic replay trace.
type traceOp struct {
	kind int // 0 = heartbeat, 1 = cycle, 2 = deactivate, 3 = activate
	rid  int // runnable index for kind 0/2/3
}

// makeTrace generates a deterministic pseudo-random simulation trace over
// n runnables: mostly heartbeats, regular cycles, occasional activation
// toggles — the op mix of the HIL scenarios, compressed.
func makeTrace(seed int64, n, length int) []traceOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]traceOp, length)
	for i := range ops {
		switch r := rng.Intn(20); {
		case r < 13:
			ops[i] = traceOp{kind: 0, rid: rng.Intn(n)}
		case r < 18:
			ops[i] = traceOp{kind: 1}
		case r < 19:
			ops[i] = traceOp{kind: 2, rid: rng.Intn(n)}
		default:
			ops[i] = traceOp{kind: 3, rid: rng.Intn(n)}
		}
	}
	return ops
}

// equivFixture builds one watchdog over the shared model wiring used by
// the equivalence replay.
func equivFixture(t *testing.T, eager bool) (*Watchdog, *sim.ManualClock, *collector, []runnable.ID) {
	t.Helper()
	m := runnable.NewModel()
	app, _ := m.AddApp("equiv", runnable.SafetyCritical)
	t1, _ := m.AddTask(app, "T1", 1)
	t2, _ := m.AddTask(app, "T2", 2)
	var rids []runnable.ID
	for i, task := range []runnable.TaskID{t1, t1, t1, t2, t2} {
		rid, err := m.AddRunnable(task, "r"+string(rune('0'+i)), time.Millisecond, runnable.SafetyCritical)
		if err != nil {
			t.Fatalf("AddRunnable: %v", err)
		}
		rids = append(rids, rid)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	clock := sim.NewManualClock()
	sink := &collector{}
	w, err := New(Config{Model: m, Clock: clock, Sink: sink, EagerArrivalCheck: eager})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, rid := range rids {
		if err := w.SetHypothesis(rid, Hypothesis{
			AlivenessCycles: 5, MinHeartbeats: 1,
			ArrivalCycles: 5, MaxArrivals: 7,
		}); err != nil {
			t.Fatalf("SetHypothesis: %v", err)
		}
		if err := w.Activate(rid); err != nil {
			t.Fatalf("Activate: %v", err)
		}
	}
	if err := w.AddFlowSequence(rids[0], rids[1], rids[2]); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	if err := w.AddFlowSequence(rids[3], rids[4]); err != nil {
		t.Fatalf("AddFlowSequence: %v", err)
	}
	return w, clock, sink, rids
}

// TestMonitorBeatEquivalence replays the same deterministic sim trace
// through the seed-style Heartbeat entry point and through Monitor.Beat
// handles on two identically configured watchdogs, and requires the
// detection Results, the full fault Report stream and the state-event
// stream to be identical — the tentpole's "bit-identical semantics"
// acceptance gate.
func TestMonitorBeatEquivalence(t *testing.T) {
	for _, eager := range []bool{false, true} {
		name := "period-end"
		if eager {
			name = "eager"
		}
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 8; seed++ {
				wa, clockA, sinkA, ridsA := equivFixture(t, eager)
				wb, clockB, sinkB, ridsB := equivFixture(t, eager)
				monitors := make([]*Monitor, len(ridsB))
				for i, rid := range ridsB {
					var err error
					if monitors[i], err = wb.Register(rid); err != nil {
						t.Fatalf("Register: %v", err)
					}
				}
				trace := makeTrace(seed, len(ridsA), 3000)
				for _, op := range trace {
					switch op.kind {
					case 0:
						wa.Heartbeat(ridsA[op.rid])
						monitors[op.rid].Beat()
					case 1:
						clockA.Advance(10 * time.Millisecond)
						clockB.Advance(10 * time.Millisecond)
						wa.Cycle()
						wb.Cycle()
					case 2:
						_ = wa.Deactivate(ridsA[op.rid])
						_ = wb.Deactivate(ridsB[op.rid])
					case 3:
						_ = wa.Activate(ridsA[op.rid])
						_ = wb.Activate(ridsB[op.rid])
					}
				}
				if ra, rb := wa.Results(), wb.Results(); ra != rb {
					t.Fatalf("seed %d: Results diverge: Heartbeat=%+v Monitor.Beat=%+v", seed, ra, rb)
				}
				if !reflect.DeepEqual(sinkA.faults, sinkB.faults) {
					t.Fatalf("seed %d: fault report streams diverge:\n  Heartbeat:    %v\n  Monitor.Beat: %v",
						seed, sinkA.faults, sinkB.faults)
				}
				if !reflect.DeepEqual(sinkA.states, sinkB.states) {
					t.Fatalf("seed %d: state event streams diverge:\n  Heartbeat:    %v\n  Monitor.Beat: %v",
						seed, sinkA.states, sinkB.states)
				}
				// Counter snapshots agree runnable by runnable.
				for i := range ridsA {
					ca, _ := wa.CounterSnapshot(ridsA[i])
					cb, _ := wb.CounterSnapshot(ridsB[i])
					if ca != cb {
						t.Fatalf("seed %d: counters diverge for runnable %d: %+v vs %+v", seed, i, ca, cb)
					}
				}
			}
		})
	}
}

// TestRegisterUnknownRunnable pins the sentinel error contract of the
// handle API.
func TestRegisterUnknownRunnable(t *testing.T) {
	w, _, _, rids := equivFixture(t, false)
	if _, err := w.Register(runnable.ID(len(rids) + 7)); err == nil {
		t.Fatal("Register accepted an unknown runnable")
	}
	if _, err := w.Register(runnable.NoID); err == nil {
		t.Fatal("Register accepted NoID")
	}
	m, err := w.Register(rids[0])
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if m.ID() != rids[0] {
		t.Fatalf("ID() = %d, want %d", m.ID(), rids[0])
	}
	if err := m.Deactivate(); err != nil {
		t.Fatalf("Deactivate: %v", err)
	}
	if c := m.Counters(); c.Active {
		t.Fatal("Counters().Active after Deactivate")
	}
	if err := m.Activate(); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	m.Beat()
	if c := m.Counters(); c.AC != 1 {
		t.Fatalf("AC = %d after one Beat, want 1", c.AC)
	}
}
