package calib

import "fmt"

// Stage is the staged-rollout state machine driven by the fleet
// calibration loop (ingest.CalibController):
//
//	Idle ──suggest──▶ Shadow ──N clean windows──▶ Canary ──hold clean──▶ Fleet ──all acks──▶ Idle (round++)
//	                    │                            │
//	                    └──persistent would-faults───┤──canary fault counters moved──▶ RolledBack ──▶ Idle
//	                         (candidate rejected)
//
// Shadow never touches the active hypothesis; Canary applies the
// candidate to a deterministic node subset (recording the prior
// hypothesis for rollback); Fleet extends it to every remaining node.
// Each applying stage batches CmdSetHypothesis over the command channel
// with per-node ack accounting and re-sends until acks land.
type Stage uint8

const (
	// StageIdle: no rollout in flight; the loop periodically snapshots
	// the estimator baseline and runs Suggest.
	StageIdle Stage = iota
	// StageShadow: candidates installed as shadow hypotheses, counting
	// would-be faults against the live beat stream; promotable after
	// Params.PromoteAfter consecutive clean windows per runnable.
	StageShadow
	// StageCanary: candidates active on the canary node subset, prior
	// hypotheses recorded; any movement of a canary fault counter rolls
	// back.
	StageCanary
	// StageFleet: candidates applied fleet-wide; the stage completes
	// when every node's command ack has landed.
	StageFleet
	// StageRolledBack: the canary regressed and the prior hypotheses
	// were restored; transient, returns to Idle on the next tick.
	StageRolledBack
)

// String renders the stage for status endpoints and logs.
func (s Stage) String() string {
	switch s {
	case StageIdle:
		return "idle"
	case StageShadow:
		return "shadow"
	case StageCanary:
		return "canary"
	case StageFleet:
		return "fleet"
	case StageRolledBack:
		return "rolled_back"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// Default knob values (Params.WithDefaults).
const (
	DefaultMargin         = 0.3
	DefaultPromoteAfter   = 3
	DefaultCanaryFraction = 0.25
)

// Params are the operator-facing calibration knobs, shared by the
// swwdd flags and the spec file's `calibration` section.
type Params struct {
	// WindowCycles is the estimator observation window (and shadow
	// window, and the monitoring period of every proposed hypothesis)
	// in watchdog cycles. Required.
	WindowCycles int
	// Margin is the suggestion jitter tolerance in [0,1); zero selects
	// DefaultMargin (a truly zero-margin hypothesis would flap on the
	// first jittery window anyway).
	Margin float64
	// PromoteAfter is how many consecutive clean shadow windows promote
	// a candidate to canary, and how many windows the canary is held
	// before going fleet-wide; zero selects DefaultPromoteAfter.
	PromoteAfter int
	// CanaryFraction is the node fraction of the canary stage in (0,1];
	// zero selects DefaultCanaryFraction. At least one node is always
	// canaried.
	CanaryFraction float64
}

// WithDefaults fills zero knobs with their defaults.
func (p Params) WithDefaults() Params {
	if p.Margin == 0 {
		p.Margin = DefaultMargin
	}
	if p.PromoteAfter == 0 {
		p.PromoteAfter = DefaultPromoteAfter
	}
	if p.CanaryFraction == 0 {
		p.CanaryFraction = DefaultCanaryFraction
	}
	return p
}

// Validate checks the knobs after defaulting.
func (p Params) Validate() error {
	if p.WindowCycles <= 0 {
		return fmt.Errorf("calib: WindowCycles %d must be positive", p.WindowCycles)
	}
	if p.Margin < 0 || p.Margin >= 1 {
		return fmt.Errorf("calib: Margin %v must be in [0,1)", p.Margin)
	}
	if p.PromoteAfter < 0 {
		return fmt.Errorf("calib: PromoteAfter %d must be non-negative", p.PromoteAfter)
	}
	if p.CanaryFraction < 0 || p.CanaryFraction > 1 {
		return fmt.Errorf("calib: CanaryFraction %v must be in [0,1]", p.CanaryFraction)
	}
	return nil
}

// CanaryCount is the canary subset size for a fleet of n nodes: at
// least one node, at most all of them, deterministically derived so a
// replayed rollout picks the identical subset.
func (p Params) CanaryCount(n int) int {
	if n <= 0 {
		return 0
	}
	c := int(float64(n) * p.CanaryFraction)
	if float64(c) < float64(n)*p.CanaryFraction {
		c++ // ceil without pulling in math for the common fractional case
	}
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}
