// Hot-path concurrency benchmarks for the lock-free heartbeat redesign:
// parallel throughput with and without a concurrent monitoring cycle, the
// handle fast path against the compat wrapper, and an in-file replica of
// the seed's global-mutex design as the before/after baseline.
//
// Run with: go test -bench 'Beat|Parallel' -benchmem
package swwd_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swwd"
)

// buildParallelWatchdog constructs a watchdog over nTasks tasks with
// perTask runnables each (the ISSUE's contention topology is 8 tasks x 8
// runnables = 64), one flow sequence per task, hypotheses that never trip
// during the bench, and one pre-registered Monitor handle per runnable.
// Extra options are appended after the wall clock (bench_calib_test.go
// enables the online estimator this way).
func buildParallelWatchdog(b *testing.B, nTasks, perTask int, opts ...swwd.Option) (*swwd.Watchdog, []*swwd.Monitor) {
	b.Helper()
	m := swwd.NewModel()
	app, err := m.AddApp("bench", swwd.SafetyCritical)
	if err != nil {
		b.Fatalf("AddApp: %v", err)
	}
	var rids []swwd.RunnableID
	var seqs [][]swwd.RunnableID
	for t := 0; t < nTasks; t++ {
		task, err := m.AddTask(app, fmt.Sprintf("T%d", t), t+1)
		if err != nil {
			b.Fatalf("AddTask: %v", err)
		}
		var seq []swwd.RunnableID
		for r := 0; r < perTask; r++ {
			rid, err := m.AddRunnable(task, fmt.Sprintf("r%d_%d", t, r), time.Millisecond, swwd.SafetyCritical)
			if err != nil {
				b.Fatalf("AddRunnable: %v", err)
			}
			rids = append(rids, rid)
			seq = append(seq, rid)
		}
		seqs = append(seqs, seq)
	}
	if err := m.Freeze(); err != nil {
		b.Fatalf("Freeze: %v", err)
	}
	w, err := swwd.New(m, append([]swwd.Option{swwd.WithClock(swwd.NewWallClock())}, opts...)...)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	monitors := make([]*swwd.Monitor, len(rids))
	for i, rid := range rids {
		if err := w.SetHypothesis(rid, swwd.Hypothesis{
			AlivenessCycles: 1 << 20, MinHeartbeats: 1,
			ArrivalCycles: 1 << 20, MaxArrivals: 1 << 30,
		}); err != nil {
			b.Fatalf("SetHypothesis: %v", err)
		}
		if err := w.Activate(rid); err != nil {
			b.Fatalf("Activate: %v", err)
		}
		if monitors[i], err = w.Register(rid); err != nil {
			b.Fatalf("Register: %v", err)
		}
	}
	for _, seq := range seqs {
		if len(seq) < 2 {
			continue // single-runnable tasks carry no flow table
		}
		if err := w.AddFlowSequence(seq...); err != nil {
			b.Fatalf("AddFlowSequence: %v", err)
		}
	}
	return w, monitors
}

// BenchmarkMonitorBeat measures the handle fast path single-threaded —
// directly comparable to BenchmarkHeartbeat, which goes through the
// compat wrapper's bounds check and index resolution.
func BenchmarkMonitorBeat(b *testing.B) {
	w, monitors := buildParallelWatchdog(b, 1, 3)
	_ = w
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		monitors[i%3].Beat()
	}
}

// BenchmarkHeartbeatParallel measures aggregate heartbeat throughput with
// GOMAXPROCS goroutines beating concurrently over 64 runnables in 8
// tasks. Each goroutine walks its own task's flow sequence so the PFC
// predecessor registers shard by task and the counters stay per-runnable:
// the redesign's intended zero-contention regime.
func BenchmarkHeartbeatParallel(b *testing.B) {
	const nTasks, perTask = 8, 8
	w, monitors := buildParallelWatchdog(b, nTasks, perTask)
	_ = w
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		task := int(next.Add(1)-1) % nTasks
		mine := monitors[task*perTask : (task+1)*perTask]
		i := 0
		for pb.Next() {
			mine[i].Beat()
			i++
			if i == perTask {
				i = 0
			}
		}
	})
}

// BenchmarkHeartbeatParallelContended is the adversarial layout: all
// goroutines hammer the same runnable, so every beat contends on one
// cache line. This bounds the worst case of the lock-free design (atomic
// RMW on a shared line) against the baseline's worst case (global mutex).
func BenchmarkHeartbeatParallelContended(b *testing.B) {
	w, monitors := buildParallelWatchdog(b, 1, 1)
	_ = w
	m := monitors[0]
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Beat()
		}
	})
}

// BenchmarkBeatWithConcurrentCycle measures heartbeat throughput while a
// background goroutine runs the monitoring cycle at a 100µs period — the
// live-service contention profile where the seed design serialized every
// beat against the whole Cycle sweep under one mutex.
func BenchmarkBeatWithConcurrentCycle(b *testing.B) {
	const nTasks, perTask = 8, 8
	w, monitors := buildParallelWatchdog(b, nTasks, perTask)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(100 * time.Microsecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				w.Cycle()
			}
		}
	}()
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		task := int(next.Add(1)-1) % nTasks
		mine := monitors[task*perTask : (task+1)*perTask]
		i := 0
		for pb.Next() {
			mine[i].Beat()
			i++
			if i == perTask {
				i = 0
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// mutexWatchdog replicates the seed's hot-path design: one global mutex
// serializing every heartbeat (counter updates + PFC check) and the whole
// cycle sweep. It exists purely as the before side of the before/after
// comparison in README §Performance.
type mutexWatchdog struct {
	mu        sync.Mutex
	active    []bool
	ac, arc   []uint32
	cca, ccar []uint32
	taskOf    []int
	lastExec  []int // per task; -1 = none
	monitored []bool
	allowed   map[[2]int]bool
	flowErrs  uint64
}

func newMutexWatchdog(nTasks, perTask int) *mutexWatchdog {
	n := nTasks * perTask
	w := &mutexWatchdog{
		active:    make([]bool, n),
		ac:        make([]uint32, n),
		arc:       make([]uint32, n),
		cca:       make([]uint32, n),
		ccar:      make([]uint32, n),
		taskOf:    make([]int, n),
		lastExec:  make([]int, nTasks),
		monitored: make([]bool, n),
		allowed:   make(map[[2]int]bool),
	}
	for t := 0; t < nTasks; t++ {
		w.lastExec[t] = -1
		for r := 0; r < perTask; r++ {
			rid := t*perTask + r
			w.taskOf[rid] = t
			w.active[rid] = true
			w.monitored[rid] = true
			succ := t*perTask + (r+1)%perTask
			w.allowed[[2]int{rid, succ}] = true
		}
	}
	return w
}

func (w *mutexWatchdog) Heartbeat(rid int) {
	w.mu.Lock()
	if rid < 0 || rid >= len(w.active) {
		w.mu.Unlock()
		return
	}
	if w.active[rid] {
		w.ac[rid]++
		w.arc[rid]++
	}
	if w.monitored[rid] {
		t := w.taskOf[rid]
		if last := w.lastExec[t]; last >= 0 && !w.allowed[[2]int{last, rid}] {
			w.flowErrs++
		}
		w.lastExec[t] = rid
	}
	w.mu.Unlock()
}

func (w *mutexWatchdog) Cycle() {
	w.mu.Lock()
	for rid := range w.active {
		if !w.active[rid] {
			continue
		}
		w.cca[rid]++
		if w.cca[rid] >= 1<<20 {
			w.ac[rid], w.cca[rid] = 0, 0
		}
		w.ccar[rid]++
		if w.ccar[rid] >= 1<<20 {
			w.arc[rid], w.ccar[rid] = 0, 0
		}
	}
	w.mu.Unlock()
}

// BenchmarkHeartbeatParallelMutexBaseline is BenchmarkHeartbeatParallel
// run against the global-mutex replica: the denominator of the
// throughput-multiple claim.
func BenchmarkHeartbeatParallelMutexBaseline(b *testing.B) {
	const nTasks, perTask = 8, 8
	w := newMutexWatchdog(nTasks, perTask)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		task := int(next.Add(1)-1) % nTasks
		i := 0
		for pb.Next() {
			w.Heartbeat(task*perTask + i)
			i++
			if i == perTask {
				i = 0
			}
		}
	})
	if w.flowErrs != 0 {
		// Per-task walks are legal sequences; interleaving across tasks
		// never mixes predecessor registers.
		b.Fatalf("baseline flagged %d flow errors on a legal walk", w.flowErrs)
	}
}

// BenchmarkBeatWithConcurrentCycleMutexBaseline pairs the contention
// bench with the global-mutex replica, whose Cycle holds the lock across
// the whole 64-runnable sweep.
func BenchmarkBeatWithConcurrentCycleMutexBaseline(b *testing.B) {
	const nTasks, perTask = 8, 8
	w := newMutexWatchdog(nTasks, perTask)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(100 * time.Microsecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				w.Cycle()
			}
		}
	}()
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		task := int(next.Add(1)-1) % nTasks
		i := 0
		for pb.Next() {
			w.Heartbeat(task*perTask + i)
			i++
			if i == perTask {
				i = 0
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}
