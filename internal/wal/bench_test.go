package wal

import (
	"testing"
	"time"
)

// BenchmarkWALHandoff measures the pure lock-free ring hand-off — the
// cost a producer (the journal sink, inside the watchdog's cold-path
// mutex) pays to get a record off its goroutine. Gated zero-alloc in
// cmd/benchdiff: the detection path must never allocate for history.
func BenchmarkWALHandoff(b *testing.B) {
	r := newRing(1024)
	rec := Record{Kind: KindDetection, Det: det(1)}
	var out Record
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.push(&rec)
		r.pop(&out)
	}
}

// BenchmarkWALAppend measures the full producer-side append: stamp,
// ring push, writer wake. The writer goroutine drains concurrently into
// a real segment file; a saturated ring degrades to a counted drop, so
// the figure bounds what a detection burst can ever cost the hot side.
// Gated zero-alloc in cmd/benchdiff.
func BenchmarkWALAppend(b *testing.B) {
	w, err := Open(b.TempDir(),
		WithSegmentBytes(1<<30), WithRingSize(1<<16), WithSyncInterval(time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	d := det(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.AppendDetection(d)
	}
	b.StopTimer()
	st := w.Stats()
	b.ReportMetric(float64(st.Dropped)/float64(b.N), "dropfrac")
}

// BenchmarkWALEncodeRecord measures the writer-side encode of one
// detection frame.
func BenchmarkWALEncodeRecord(b *testing.B) {
	rec := Record{Seq: 1, TimeNs: 1, Kind: KindDetection, Det: det(1)}
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendRecord(buf[:0], &rec)
	}
}

// BenchmarkWALReplay measures full-log replay throughput (MB/s) over a
// multi-segment directory of detection records.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	w, err := Open(dir, WithSegmentBytes(1<<20), WithRetainSegments(1_000_000),
		WithSyncInterval(time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	const n = 50_000
	for i := uint64(1); i <= n; i++ {
		for !w.AppendDetection(det(i)) {
		}
	}
	if err := w.Sync(); err != nil {
		b.Fatal(err)
	}
	bytes := int64(w.Stats().BytesWritten)
	w.Close()
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := Replay(dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(h.Records) != n {
			b.Fatalf("replayed %d records", len(h.Records))
		}
	}
}
