package treat

import (
	"errors"
	"testing"
)

func TestGraphDependentsSorted(t *testing.T) {
	g, err := NewGraph([]uint32{1, 2, 3, 4}, []Edge{
		{Node: 4, DependsOn: 1},
		{Node: 2, DependsOn: 1},
		{Node: 3, DependsOn: 1},
	})
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	deps := g.Dependents(1)
	want := []uint32{2, 3, 4}
	if len(deps) != len(want) {
		t.Fatalf("dependents = %v, want %v", deps, want)
	}
	for i := range want {
		if deps[i] != want[i] {
			t.Fatalf("dependents = %v, want %v", deps, want)
		}
	}
	if len(g.Dependents(2)) != 0 {
		t.Fatalf("leaf node has dependents: %v", g.Dependents(2))
	}
	if !g.HasNode(3) || g.HasNode(99) {
		t.Fatal("HasNode misreports membership")
	}
}

func TestGraphDuplicateNodesDeduped(t *testing.T) {
	g, err := NewGraph([]uint32{5, 5, 7, 5}, nil)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	if n := g.Nodes(); len(n) != 2 || n[0] != 5 || n[1] != 7 {
		t.Fatalf("Nodes = %v, want [5 7]", n)
	}
}

func TestGraphValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		nodes []uint32
		edges []Edge
		want  error
	}{
		{"unknown-node", []uint32{1}, []Edge{{Node: 2, DependsOn: 1}}, ErrUnknownNode},
		{"unknown-dependency", []uint32{1}, []Edge{{Node: 1, DependsOn: 2}}, ErrUnknownNode},
		{"self-dependency", []uint32{1}, []Edge{{Node: 1, DependsOn: 1}}, ErrSelfDependency},
		{"duplicate-edge", []uint32{1, 2}, []Edge{{Node: 1, DependsOn: 2}, {Node: 1, DependsOn: 2}}, ErrDuplicateEdge},
		{"two-cycle", []uint32{1, 2}, []Edge{{Node: 1, DependsOn: 2}, {Node: 2, DependsOn: 1}}, ErrCycle},
		// Node 0 is a valid ID; a cycle through it must still be caught.
		{"cycle-through-node-zero", []uint32{0, 1}, []Edge{{Node: 1, DependsOn: 0}, {Node: 0, DependsOn: 1}}, ErrCycle},
		{"three-cycle", []uint32{1, 2, 3}, []Edge{
			{Node: 1, DependsOn: 2}, {Node: 2, DependsOn: 3}, {Node: 3, DependsOn: 1},
		}, ErrCycle},
	}
	for _, tc := range cases {
		if _, err := NewGraph(tc.nodes, tc.edges); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// The mirrored pair A→B plus B←A is a 2-cycle, but A and B sharing a
	// dependency (a diamond) is legal.
	if _, err := NewGraph([]uint32{1, 2, 3}, []Edge{
		{Node: 2, DependsOn: 1}, {Node: 3, DependsOn: 1}, {Node: 3, DependsOn: 2},
	}); err != nil {
		t.Fatalf("diamond rejected: %v", err)
	}
}
