package can

import (
	"testing"
	"time"

	"swwd/internal/sim"
)

func newBus(t *testing.T, bitrate int) (*sim.Kernel, *Bus) {
	t.Helper()
	k := sim.NewKernel()
	b, err := NewBus(k, bitrate)
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	return k, b
}

func TestNewBusValidation(t *testing.T) {
	if _, err := NewBus(nil, 500000); err == nil {
		t.Error("nil kernel accepted")
	}
	k := sim.NewKernel()
	if _, err := NewBus(k, 0); err == nil {
		t.Error("zero bitrate accepted")
	}
}

func TestFrameValidate(t *testing.T) {
	if err := (Frame{ID: 0x7FF, Data: make([]byte, 8)}).Validate(); err != nil {
		t.Errorf("max frame rejected: %v", err)
	}
	if err := (Frame{ID: 0x800}).Validate(); err == nil {
		t.Error("12-bit id accepted")
	}
	if err := (Frame{ID: 1, Data: make([]byte, 9)}).Validate(); err == nil {
		t.Error("9-byte payload accepted")
	}
}

func TestFrameBitsMonotonic(t *testing.T) {
	prev := 0
	for n := 0; n <= 8; n++ {
		bits := FrameBits(n)
		if bits <= prev {
			t.Fatalf("FrameBits(%d) = %d not increasing", n, bits)
		}
		prev = bits
	}
	if FrameBits(0) < 47 {
		t.Errorf("FrameBits(0) = %d below framing minimum", FrameBits(0))
	}
}

func TestPointToPointDelivery(t *testing.T) {
	k, b := newBus(t, 500000)
	tx := b.AttachNode("tx")
	rx := b.AttachNode("rx")
	var got []Frame
	var at sim.Time
	rx.Subscribe(nil, func(f Frame) { got = append(got, f); at = k.Now() })
	if err := tx.Send(Frame{ID: 0x100, Data: []byte{1, 2, 3}}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(got) != 1 || got[0].ID != 0x100 || len(got[0].Data) != 3 || got[0].Data[2] != 3 {
		t.Fatalf("got = %+v", got)
	}
	wantBits := FrameBits(3)
	wantTime := sim.Time(int64(wantBits) * int64(time.Second) / 500000)
	if at != wantTime {
		t.Fatalf("delivered at %v, want %v (%d bits at 500kbit/s)", at, wantTime, wantBits)
	}
	if b.Stats().FramesDelivered != 1 {
		t.Fatalf("bus stats = %+v", b.Stats())
	}
	if tx.Stats().Sent != 1 || rx.Stats().Received != 1 {
		t.Fatalf("node stats tx=%+v rx=%+v", tx.Stats(), rx.Stats())
	}
}

func TestSenderDoesNotReceiveOwnFrame(t *testing.T) {
	k, b := newBus(t, 500000)
	tx := b.AttachNode("tx")
	echoed := false
	tx.Subscribe(nil, func(Frame) { echoed = true })
	if err := tx.Send(Frame{ID: 1}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if echoed {
		t.Fatal("sender received its own frame")
	}
}

func TestArbitrationLowestIDWins(t *testing.T) {
	k, b := newBus(t, 500000)
	n1 := b.AttachNode("n1")
	n2 := b.AttachNode("n2")
	rx := b.AttachNode("rx")
	var order []FrameID
	rx.Subscribe(nil, func(f Frame) { order = append(order, f.ID) })
	// Both enqueue while the bus is busy with a first frame.
	if err := n1.Send(Frame{ID: 0x50}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := n1.Send(Frame{ID: 0x300}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := n2.Send(Frame{ID: 0x100}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	want := []FrameID{0x50, 0x100, 0x300}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if b.Stats().ArbitrationLosses == 0 {
		t.Fatal("no arbitration losses counted despite contention")
	}
}

func TestNodeQueuePriorityOrdering(t *testing.T) {
	k, b := newBus(t, 500000)
	tx := b.AttachNode("tx")
	rx := b.AttachNode("rx")
	var order []FrameID
	rx.Subscribe(nil, func(f Frame) { order = append(order, f.ID) })
	// Enqueued in descending priority order; mailbox must reorder.
	for _, id := range []FrameID{0x400, 0x200, 0x100, 0x300} {
		if err := tx.Send(Frame{ID: id}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	// The first frame (0x400) is already on the wire when the others
	// arrive; the rest go out by priority.
	want := []FrameID{0x400, 0x100, 0x200, 0x300}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSubscribeFilter(t *testing.T) {
	k, b := newBus(t, 500000)
	tx := b.AttachNode("tx")
	rx := b.AttachNode("rx")
	var got []FrameID
	rx.Subscribe(func(id FrameID) bool { return id == 0x10 }, func(f Frame) { got = append(got, f.ID) })
	for _, id := range []FrameID{0x10, 0x20, 0x10} {
		if err := tx.Send(Frame{ID: id}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("filtered frames = %v", got)
	}
	if rx.Stats().Received != 2 {
		t.Fatalf("Received = %d, want 2 (filtered frames not counted)", rx.Stats().Received)
	}
}

func TestQueueLimitDropsFrames(t *testing.T) {
	k, b := newBus(t, 500000)
	tx := b.AttachNode("tx")
	b.AttachNode("rx")
	tx.SetQueueLimit(2)
	// First Send goes straight to the wire; two fill the queue; 4th drops.
	var errs int
	for i := 0; i < 4; i++ {
		if err := tx.Send(Frame{ID: FrameID(i + 1)}); err != nil {
			errs++
		}
	}
	if errs != 1 {
		t.Fatalf("drops = %d, want 1", errs)
	}
	if tx.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d", tx.Stats().Dropped)
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
}

func TestPayloadIsolation(t *testing.T) {
	k, b := newBus(t, 500000)
	tx := b.AttachNode("tx")
	rx := b.AttachNode("rx")
	var got Frame
	rx.Subscribe(nil, func(f Frame) { got = f })
	payload := []byte{1, 2, 3}
	if err := tx.Send(Frame{ID: 1, Data: payload}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	payload[0] = 99 // sender mutates after Send
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if got.Data[0] != 1 {
		t.Fatal("payload not copied at Send boundary")
	}
	got.Data[1] = 42 // receiver mutates its copy
	// No shared state to assert directly, but a second receiver must see
	// the original; covered by copy-per-handler in deliver.
}

func TestUtilizationGrowsUnderLoad(t *testing.T) {
	k, b := newBus(t, 125000)
	tx := b.AttachNode("tx")
	b.AttachNode("rx")
	for i := 0; i < 50; i++ {
		if err := tx.Send(Frame{ID: 0x123, Data: make([]byte, 8)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	if err := k.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if u := b.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("back-to-back utilization = %v, want ~1.0", u)
	}
}
