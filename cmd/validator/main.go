// Command validator runs one scenario on the EASIS architecture validator
// simulation: the central node with SafeSpeed, SafeLane and Steer-by-Wire
// under Software Watchdog supervision, optionally with the full
// CAN/FlexRay/telematics topology and fault treatment enabled, and an
// error injection of choice.
//
// Usage:
//
//	validator [-duration 10s] [-networks] [-treatment] [-ecu-reset]
//	          [-inject none|aliveness|arrival|flow|hang] [-inject-at 2s]
//	          [-limit-kph 80] [-driver-kph 150] [-csv trace.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swwd/internal/core"
	"swwd/internal/experiments"
	"swwd/internal/hil"
	"swwd/internal/inject"
	"swwd/internal/sim"
	"swwd/internal/vehicle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "validator: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	duration := flag.Duration("duration", 10*time.Second, "scenario length (virtual time)")
	networks := flag.Bool("networks", false, "wire the CAN/FlexRay/telematics topology")
	treatment := flag.Bool("treatment", false, "enable FMF fault treatment")
	ecuReset := flag.Bool("ecu-reset", false, "allow the ECU software reset treatment")
	remote := flag.Bool("remote", false, "add a second ECU on the CAN bus (requires -networks)")
	hwWatchdog := flag.Bool("hw-watchdog", false, "add the ECU hardware watchdog layer")
	fallback := flag.Bool("fallback", false, "enable the limp-home fallback (requires -treatment)")
	diagnostics := flag.Bool("diagnostics", false, "add the diagnostics task sharing the sensor-bus resource")
	injectKind := flag.String("inject", "none", "error injection: none|aliveness|arrival|flow|loopcount|hang")
	injectAt := flag.Duration("inject-at", 2*time.Second, "injection instant")
	canErrorRate := flag.Float64("can-error-rate", 0, "fraction of CAN frames corrupted (requires -networks)")
	limitKph := flag.Float64("limit-kph", 80, "commanded maximum speed")
	driverKph := flag.Float64("driver-kph", 150, "driver's desired speed")
	csvPath := flag.String("csv", "", "write the recorded trace to this CSV file")
	flag.Parse()

	v, err := hil.New(hil.Options{
		WithNetworks:         *networks,
		EnableTreatment:      *treatment,
		AllowECUReset:        *ecuReset,
		WithRemoteECU:        *remote,
		WithHardwareWatchdog: *hwWatchdog,
		EnableFallback:       *fallback,
		WithDiagnostics:      *diagnostics,
		SpeedLimitKph:        *limitKph,
		DriverTargetKph:      *driverKph,
	})
	if err != nil {
		return err
	}

	var injection inject.Injection
	switch *injectKind {
	case "none":
	case "aliveness":
		injection = &inject.AlarmRateScale{OS: v.OS, Alarm: v.SafeSpeedAlarm, Scale: 8}
	case "arrival":
		injection = &inject.BurstDispatch{OS: v.OS, Task: v.SafeSpeed.Task, Period: 5 * time.Millisecond}
	case "flow":
		injection = &inject.FlagFault{
			Label: "invalid-branch",
			Set:   func() { v.SafeSpeed.FaultBranch = 1 },
			Unset: func() { v.SafeSpeed.FaultBranch = 0 },
		}
	case "loopcount":
		injection = &inject.FlagFault{
			Label: "loop-counter-0",
			Set:   func() { v.SafeLane.FilterIterations = 0 },
			Unset: func() { v.SafeLane.FilterIterations = 1 },
		}
	case "hang":
		injection = &inject.ExecStretch{OS: v.OS, Runnable: v.SafeSpeed.SAFECCProcess, Scale: 200}
	default:
		return fmt.Errorf("unknown injection %q", *injectKind)
	}
	if injection != nil {
		v.Injector.ApplyAt(sim.Time(*injectAt), injection)
		fmt.Printf("arming %s at %v\n", injection.Name(), *injectAt)
	}
	if *canErrorRate > 0 {
		if v.Net == nil {
			return fmt.Errorf("-can-error-rate requires -networks")
		}
		if err := v.Net.CANBus.SetBitErrorRate(*canErrorRate, 1); err != nil {
			return err
		}
		fmt.Printf("CAN bit error rate: %.1f%%\n", *canErrorRate*100)
	}

	if err := v.Run(*duration); err != nil {
		return err
	}

	fmt.Printf("\nscenario complete at %v\n", v.Kernel.Now())
	fmt.Printf("vehicle:   speed %.1f km/h (limit %.1f), distance %.0f m\n",
		vehicle.MsToKph(v.Long.Speed()), vehicle.MsToKph(v.SpeedLimit()), v.Long.Distance())
	res := v.Watchdog.Results()
	fmt.Printf("watchdog:  cycles=%d AM=%d AR=%d PFC=%d\n",
		v.Watchdog.CycleCount(), res.Aliveness, res.ArrivalRate, res.ProgramFlow)
	printState := func(name string, st core.HealthState, err error) {
		if err == nil {
			fmt.Printf("TSI:       %s = %v\n", name, st)
		}
	}
	st, err2 := v.Watchdog.TaskState(v.SafeSpeed.Task)
	printState("SafeSpeedTask", st, err2)
	st, err2 = v.Watchdog.TaskState(v.SafeLane.Task)
	printState("SafeLaneTask", st, err2)
	st, err2 = v.Watchdog.TaskState(v.SteerByWire.Task)
	printState("SteerByWireTask", st, err2)
	fmt.Printf("ECU state: %v (resets: %d)\n", v.Watchdog.ECUState(), v.OS.ResetCount())

	if faults := v.FMF.FaultLog(); len(faults) > 0 {
		fmt.Printf("\nfault log (%d entries, showing up to 10):\n", len(faults))
		for i, f := range faults {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(faults)-10)
				break
			}
			fmt.Printf("  %v %s\n", f.Time, f.String())
		}
	}
	if trs := v.FMF.Treatments(); len(trs) > 0 {
		fmt.Printf("\ntreatments (%d):\n", len(trs))
		for _, tr := range trs {
			fmt.Printf("  %v %v (cause %v, err %v)\n", tr.Time, tr.Action, tr.Cause, tr.Err)
		}
	}
	if *networks && v.Net != nil {
		fmt.Printf("\nnetwork:   CAN frames=%d (util %.1f%%), FlexRay static frames=%d, gateway unrouted=%d\n",
			v.Net.CANBus.Stats().FramesDelivered, 100*v.Net.CANBus.Utilization(),
			v.Net.FRBus.Stats().StaticFrames, v.Net.Gateway.Unrouted())
	}
	if v.Remote != nil {
		fmt.Printf("remote:    detections=%+v, reports received centrally=%d\n",
			v.Remote.Watchdog.Results(), len(v.Net.RemoteFaults()))
	}
	if v.HWWatchdog != nil {
		fmt.Printf("hw wd:     kicks=%d expiries=%d\n", v.HWWatchdog.Kicks(), v.HWWatchdog.Expiries())
	}
	if v.Reconfig != nil {
		fmt.Printf("fallback:  engaged=%v executions=%d\n", v.FallbackEngaged(), v.FallbackExecutions())
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *csvPath, err)
		}
		defer f.Close()
		if err := v.Recorder.WriteCSV(f, experiments.Tick); err != nil {
			return fmt.Errorf("write %s: %w", *csvPath, err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}
