//go:build !linux && !darwin && !dragonfly && !freebsd && !netbsd && !openbsd

package ingest

import (
	"errors"
	"syscall"
)

// reusePortSupported: platforms without SO_REUSEPORT (windows, plan9,
// js, ...) always take the single-socket fallback; Config.Listeners is
// effectively 1 and Stats.Listeners reports it.
const reusePortSupported = false

// reusePortControl exists so the package compiles; the fallback in
// listenConns means it is never reached on these platforms.
func reusePortControl(network, address string, c syscall.RawConn) error {
	return errors.ErrUnsupported
}
