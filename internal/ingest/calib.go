// Calibration wiring: the staged, shadow-guarded fleet rollout that
// turns online estimator baselines (internal/calib) into live
// hypotheses — locally with zero supervision downtime (SetHypothesis
// preserves the in-flight window age), remotely via batched
// CmdSetHypothesis over the wire v3 command channel with per-node ack
// accounting and automatic rollback.
package ingest

import (
	"errors"
	"sync"
	"time"

	"swwd/internal/calib"
	"swwd/internal/core"
	"swwd/internal/runnable"
	"swwd/internal/wire"
)

// CalibrationConfig enables the online calibration loop on a fleet.
type CalibrationConfig struct {
	// Params are the calibration knobs; WindowCycles is required, the
	// other fields default via calib.Params.WithDefaults.
	Params calib.Params
	// Tick is the controller loop cadence; zero means one estimator
	// window (WindowCycles × CyclePeriod).
	Tick time.Duration
	// MinWindows is the observation-window evidence floor a runnable
	// needs before it is proposed for (calib.Policy.MinWindows); zero
	// means calib.DefaultMinWindows.
	MinWindows int
}

// calibCand is one candidate hypothesis in the current rollout round.
type calibCand struct {
	rid     runnable.ID
	node    uint32
	wireIdx uint32
	hyp     core.Hypothesis
	prior   core.Hypothesis
	applied bool
}

// CalibCandidate is the exported view of one rollout candidate.
type CalibCandidate struct {
	// Runnable is the model runnable ID; Node the owning fleet node.
	Runnable runnable.ID
	Node     uint32
	// Hyp is the candidate; Prior the hypothesis it replaces (valid once
	// the rollout left the shadow stage).
	Hyp   core.Hypothesis
	Prior core.Hypothesis
	// Shadow is the live shadow verdict while the candidate is under
	// evaluation (HasShadow); Applied reports whether the candidate is
	// active on the watchdog.
	Shadow    core.ShadowStats
	HasShadow bool
	Applied   bool
}

// CalibStatus is a point-in-time view of the calibration loop, serving
// the /calib endpoint and the swwd_calib_* metric families.
type CalibStatus struct {
	Stage calib.Stage
	// Rounds counts completed rollouts (fleet-wide adoptions);
	// Rollbacks canary regressions; Rejected candidates the shadow
	// guard refused.
	Rounds    uint64
	Rollbacks uint64
	Rejected  uint64
	// CanaryNodes is the canary subset size of the current round;
	// PendingAcks how many nodes still owe a command ack.
	CanaryNodes int
	PendingAcks int
	// Candidates are the current round's proposals (empty when idle).
	Candidates []CalibCandidate
}

// CalibController drives the staged rollout state machine
// (calib.Stage): Idle → Shadow → Canary → Fleet → Idle, with shadow
// rejection and canary rollback off-ramps. One goroutine ticks the
// machine; every transition is applied under the controller mutex.
type CalibController struct {
	f      *Fleet
	params calib.Params
	policy calib.Policy
	tick   time.Duration

	nodeOf map[runnable.ID]uint32
	wireOf map[runnable.ID]uint32

	mu        sync.Mutex
	stage     calib.Stage
	rounds    uint64
	rollbacks uint64
	rejected  uint64
	baseline  calib.Baseline
	cands     []calibCand
	canaryN   int
	wantSeq   map[uint32]uint64
	cmds      map[uint32][]wire.CmdRec
	preFaults uint64
	holdLeft  int

	stop     chan struct{}
	done     chan struct{}
	closeOne sync.Once
}

// giveUpFactor bounds the shadow stage: a candidate set that has not
// built its clean streak after giveUpFactor × PromoteAfter judged
// windows is rejected rather than shadowed forever.
const giveUpFactor = 8

// buildCalibration validates the configuration and starts the
// calibration controller for a fleet whose watchdog was created with
// the estimator enabled.
func buildCalibration(f *Fleet, cfg *CalibrationConfig, cyclePeriod time.Duration) (*CalibController, error) {
	p := cfg.Params.WithDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if f.Watchdog.Estimator() == nil {
		return nil, errors.New("ingest: calibration requires the estimator (EstimatorWindowCycles)")
	}
	tick := cfg.Tick
	if tick <= 0 {
		tick = time.Duration(p.WindowCycles) * cyclePeriod
	}
	c := &CalibController{
		f:      f,
		params: p,
		policy: calib.Policy{Margin: p.Margin, MinWindows: uint64(cfg.MinWindows)},
		tick:   tick,
		nodeOf: make(map[runnable.ID]uint32),
		wireOf: make(map[runnable.ID]uint32),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for n := range f.Specs {
		spec := &f.Specs[n]
		for i, rid := range spec.Runnables {
			c.nodeOf[rid] = spec.Node
			c.wireOf[rid] = uint32(i)
		}
		// Link runnables are deliberately absent: their hypotheses belong
		// to the treatment plane (quarantine/recovery), not calibration.
	}
	go c.run()
	return c, nil
}

// Close stops the controller goroutine. Idempotent.
func (c *CalibController) Close() {
	c.closeOne.Do(func() {
		close(c.stop)
		<-c.done
	})
}

func (c *CalibController) run() {
	defer close(c.done)
	t := time.NewTicker(c.tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.step()
		}
	}
}

// step advances the state machine by one tick.
func (c *CalibController) step() {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.stage {
	case calib.StageIdle:
		c.proposeLocked()
	case calib.StageShadow:
		c.checkShadowsLocked()
	case calib.StageCanary:
		c.checkCanaryLocked()
	case calib.StageFleet:
		c.checkFleetLocked()
	case calib.StageRolledBack:
		// Transient: the prior hypotheses are restored; resume watching.
		c.stage = calib.StageIdle
	}
}

// proposeLocked snapshots the estimator baseline, derives proposals and
// installs shadow candidates for every node runnable whose proposal
// differs from its active hypothesis.
func (c *CalibController) proposeLocked() {
	w := c.f.Watchdog
	b := w.Estimator().Baseline()
	props := calib.Suggest(b, c.policy)
	if len(props) == 0 {
		return
	}
	c.cands = c.cands[:0]
	for _, p := range props {
		rid := runnable.ID(p.Runnable)
		node, ok := c.nodeOf[rid]
		if !ok {
			continue // link or unmanaged runnable
		}
		hyp := core.Hypothesis{
			AlivenessCycles: p.Hyp.AlivenessCycles,
			MinHeartbeats:   p.Hyp.MinHeartbeats,
			ArrivalCycles:   p.Hyp.ArrivalCycles,
			MaxArrivals:     p.Hyp.MaxArrivals,
		}
		cur, err := w.Hypothesis(rid)
		if err != nil || cur == hyp {
			continue // already adopted (or gone)
		}
		if err := w.SetShadow(rid, hyp); err != nil {
			continue
		}
		c.cands = append(c.cands, calibCand{rid: rid, node: node, wireIdx: c.wireOf[rid], hyp: hyp, prior: cur})
	}
	if len(c.cands) == 0 {
		return
	}
	c.baseline = b
	c.stage = calib.StageShadow
}

// checkShadowsLocked promotes the candidate set to canary once every
// shadow has PromoteAfter consecutive clean windows, or rejects it when
// the evaluation has dragged on without converging.
func (c *CalibController) checkShadowsLocked() {
	w := c.f.Watchdog
	allClean := true
	var maxWindows uint64
	for i := range c.cands {
		v, err := w.ShadowVerdict(c.cands[i].rid)
		if err != nil {
			allClean = false
			continue
		}
		if v.Windows > maxWindows {
			maxWindows = v.Windows
		}
		if v.CleanStreak < uint64(c.params.PromoteAfter) {
			allClean = false
		}
	}
	if allClean {
		c.promoteLocked()
		return
	}
	if maxWindows >= uint64(giveUpFactor*c.params.PromoteAfter) {
		// The candidate set keeps tripping the shadow guard on live
		// traffic: it would false-positive. Reject without ever having
		// raised a fault.
		for i := range c.cands {
			_ = w.ClearShadow(c.cands[i].rid)
		}
		c.cands = c.cands[:0]
		c.rejected++
		c.stage = calib.StageIdle
	}
}

// promoteLocked applies the candidates on the canary node subset —
// locally first (zero supervision gap: the in-flight window age is
// preserved), then via batched CmdSetHypothesis to the canary
// reporters — and records the pre-canary fault counters the rollback
// trigger compares against.
func (c *CalibController) promoteLocked() {
	w := c.f.Watchdog
	c.canaryN = c.params.CanaryCount(len(c.f.Specs))
	c.wantSeq = make(map[uint32]uint64)
	c.cmds = make(map[uint32][]wire.CmdRec)
	for i := range c.cands {
		cand := &c.cands[i]
		_ = w.ClearShadow(cand.rid)
		if !c.isCanary(cand.node) {
			continue
		}
		if err := w.SetHypothesis(cand.rid, cand.hyp); err != nil {
			continue
		}
		cand.applied = true
		c.cmds[cand.node] = append(c.cmds[cand.node], cmdRecFor(cand.wireIdx, cand.hyp))
	}
	c.preFaults = c.faultSumLocked(true)
	c.sendBatchesLocked()
	c.holdLeft = c.params.PromoteAfter
	c.stage = calib.StageCanary
}

// checkCanaryLocked watches the canary: any movement of a canary
// runnable's fault counters rolls the round back; otherwise, once the
// hold period has passed and every canary ack has landed, the rollout
// goes fleet-wide.
func (c *CalibController) checkCanaryLocked() {
	if c.faultSumLocked(true) != c.preFaults {
		c.rollbackLocked()
		return
	}
	c.sendBatchesLocked() // re-send until acks land (loss tolerance)
	if c.holdLeft > 0 {
		c.holdLeft--
		return
	}
	if c.pendingAcksLocked() > 0 {
		return
	}
	c.extendFleetLocked()
}

// extendFleetLocked applies the candidates on every remaining node.
func (c *CalibController) extendFleetLocked() {
	w := c.f.Watchdog
	for i := range c.cands {
		cand := &c.cands[i]
		if cand.applied {
			continue
		}
		if err := w.SetHypothesis(cand.rid, cand.hyp); err != nil {
			continue
		}
		cand.applied = true
		c.cmds[cand.node] = append(c.cmds[cand.node], cmdRecFor(cand.wireIdx, cand.hyp))
	}
	c.sendBatchesLocked()
	c.stage = calib.StageFleet
}

// checkFleetLocked completes the round once every node's ack landed.
func (c *CalibController) checkFleetLocked() {
	c.sendBatchesLocked()
	if c.pendingAcksLocked() > 0 {
		return
	}
	c.rounds++
	c.cands = c.cands[:0]
	c.wantSeq = nil
	c.cmds = nil
	c.stage = calib.StageIdle
}

// rollbackLocked restores the prior hypotheses on every applied
// candidate — locally (supervision recovers immediately) and, best
// effort, on the canary reporters.
func (c *CalibController) rollbackLocked() {
	w := c.f.Watchdog
	restore := make(map[uint32][]wire.CmdRec)
	for i := range c.cands {
		cand := &c.cands[i]
		if !cand.applied {
			continue
		}
		_ = w.SetHypothesis(cand.rid, cand.prior)
		restore[cand.node] = append(restore[cand.node], cmdRecFor(cand.wireIdx, cand.prior))
	}
	for node, recs := range restore {
		_, _ = c.f.Server.SendCommand(node, recs...)
	}
	c.cands = c.cands[:0]
	c.wantSeq = nil
	c.cmds = nil
	c.rollbacks++
	c.stage = calib.StageRolledBack
}

// sendBatchesLocked (re-)sends the per-node command batches to every
// node that has not acked its batch yet. Each re-send allocates a fresh
// sequence number; applying the same hypothesis twice is idempotent on
// the reporter, and the round converges when any send's ack lands.
func (c *CalibController) sendBatchesLocked() {
	for node, recs := range c.cmds {
		if len(recs) == 0 {
			continue
		}
		want, sent := c.wantSeq[node]
		if sent && c.f.Server.NodeCommandAcked(node) >= want {
			continue
		}
		if seq, err := c.f.Server.SendCommand(node, recs...); err == nil {
			c.wantSeq[node] = seq
		}
	}
}

// pendingAcksLocked counts nodes whose batch has not been acknowledged.
func (c *CalibController) pendingAcksLocked() int {
	pending := 0
	for node, recs := range c.cmds {
		if len(recs) == 0 {
			continue
		}
		want, sent := c.wantSeq[node]
		if !sent || c.f.Server.NodeCommandAcked(node) < want {
			pending++
		}
	}
	return pending
}

// faultSumLocked sums the aliveness and arrival error-indication
// counters over the candidates (canary-only or all). Program-flow
// errors are excluded: flow checking is hypothesis-independent.
func (c *CalibController) faultSumLocked(canaryOnly bool) uint64 {
	var sum uint64
	for i := range c.cands {
		cand := &c.cands[i]
		if canaryOnly && !c.isCanary(cand.node) {
			continue
		}
		a, ar, _, err := c.f.Watchdog.RunnableErrors(cand.rid)
		if err == nil {
			sum += a + ar
		}
	}
	return sum
}

// isCanary reports whether node belongs to the canary subset: the
// CanaryCount lowest node IDs, a deterministic choice a replayed
// rollout reproduces.
func (c *CalibController) isCanary(node uint32) bool {
	return node < uint32(c.canaryN)
}

// cmdRecFor encodes one hypothesis command record.
func cmdRecFor(wireIdx uint32, h core.Hypothesis) wire.CmdRec {
	return wire.CmdRec{Op: wire.CmdSetHypothesis, Runnable: wireIdx, Hyp: wire.HypothesisParams{
		AlivenessCycles: uint32(h.AlivenessCycles),
		MinHeartbeats:   uint32(h.MinHeartbeats),
		ArrivalCycles:   uint32(h.ArrivalCycles),
		MaxArrivals:     uint32(h.MaxArrivals),
	}}
}

// Status reports the calibration loop's current state.
func (c *CalibController) Status() CalibStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CalibStatus{
		Stage:       c.stage,
		Rounds:      c.rounds,
		Rollbacks:   c.rollbacks,
		Rejected:    c.rejected,
		CanaryNodes: c.canaryN,
	}
	if c.cmds != nil {
		st.PendingAcks = c.pendingAcksLocked()
	}
	for i := range c.cands {
		cand := &c.cands[i]
		cc := CalibCandidate{
			Runnable: cand.rid,
			Node:     cand.node,
			Hyp:      cand.hyp,
			Prior:    cand.prior,
			Applied:  cand.applied,
		}
		if v, err := c.f.Watchdog.ShadowVerdict(cand.rid); err == nil {
			cc.Shadow, cc.HasShadow = v, true
		}
		st.Candidates = append(st.Candidates, cc)
	}
	return st
}

// LastBaseline returns the recorded baseline the current (or most
// recent) rollout round was suggested from — the replay input: feeding
// it through calib.Suggest with the controller's policy reproduces the
// round's proposals bit for bit.
func (c *CalibController) LastBaseline() calib.Baseline {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.baseline
	b.Runnables = append([]calib.RunnableBaseline(nil), c.baseline.Runnables...)
	return b
}

// Policy reports the suggestion policy the controller replays with.
func (c *CalibController) Policy() calib.Policy { return c.policy }
