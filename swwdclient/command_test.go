package swwdclient

import (
	"net"
	"sync"
	"testing"
	"time"

	"swwd/internal/wire"
)

// commandHarness wires a dialQuiet client to a loopback "server" and
// records every OnCommand delivery.
type commandHarness struct {
	sink   *net.UDPConn
	client *Client
	addr   *net.UDPAddr // the client's socket, learned from its first frame

	mu   sync.Mutex
	cmds []Command
}

func newCommandHarness(t *testing.T) *commandHarness {
	t.Helper()
	h := &commandHarness{sink: loopback(t)}
	h.client = dialQuiet(t, h.sink.LocalAddr().String(), 2, WithOnCommand(func(cmd Command) {
		h.mu.Lock()
		h.cmds = append(h.cmds, cmd)
		h.mu.Unlock()
	}))
	// One frame teaches the harness the client's source address, exactly
	// how the real server learns where to send commands.
	h.client.Flush()
	_ = h.sink.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, wire.MaxFrameSize)
	_, addr, err := h.sink.ReadFromUDP(buf)
	if err != nil {
		t.Fatalf("learning client address: %v", err)
	}
	h.addr = addr
	return h
}

func (h *commandHarness) send(t *testing.T, cmd *wire.Command) {
	t.Helper()
	buf, err := wire.AppendCommand(nil, cmd)
	if err != nil {
		t.Fatalf("AppendCommand: %v", err)
	}
	if _, err := h.sink.WriteToUDP(buf, h.addr); err != nil {
		t.Fatalf("WriteToUDP: %v", err)
	}
}

func (h *commandHarness) snapshot() []Command {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Command(nil), h.cmds...)
}

// waitStats polls the client's stats until cond holds.
func waitStats(t *testing.T, c *Client, what string, cond func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := c.Stats(); cond(st) {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; stats = %+v", what, c.Stats())
	return Stats{}
}

func TestClientReceivesAndAcksCommands(t *testing.T) {
	h := newCommandHarness(t)
	h.send(t, &wire.Command{Node: 7, Epoch: 50, Seq: 1, Recs: []wire.CmdRec{
		{Op: wire.CmdQuarantine, Runnable: wire.CmdNodeTarget},
	}})
	waitStats(t, h.client, "command applied", func(st Stats) bool { return st.CommandsApplied == 1 })

	cmds := h.snapshot()
	if len(cmds) != 1 || cmds[0].Op != OpQuarantine || cmds[0].Runnable != NodeTarget {
		t.Fatalf("delivered commands = %+v, want one node-target quarantine", cmds)
	}

	// The next heartbeat frame acknowledges the applied pair.
	h.client.Flush()
	f := recvFrame(t, h.sink)
	if f.CmdAckEpoch != 50 || f.CmdAckSeq != 1 {
		t.Fatalf("ack pair = %d/%d, want 50/1", f.CmdAckEpoch, f.CmdAckSeq)
	}
}

func TestClientDropsDuplicateAndStaleCommands(t *testing.T) {
	h := newCommandHarness(t)
	h.send(t, &wire.Command{Node: 7, Epoch: 50, Seq: 2, Recs: []wire.CmdRec{
		{Op: wire.CmdResume, Runnable: 1},
	}})
	waitStats(t, h.client, "first command applied", func(st Stats) bool { return st.CommandsApplied == 1 })

	// Replayed seq within the epoch: dropped.
	h.send(t, &wire.Command{Node: 7, Epoch: 50, Seq: 2, Recs: []wire.CmdRec{
		{Op: wire.CmdResume, Runnable: 1},
	}})
	// Older server incarnation: dropped.
	h.send(t, &wire.Command{Node: 7, Epoch: 49, Seq: 9, Recs: []wire.CmdRec{
		{Op: wire.CmdRestart, Runnable: 0},
	}})
	// Wrong node: dropped.
	h.send(t, &wire.Command{Node: 8, Epoch: 50, Seq: 3, Recs: []wire.CmdRec{
		{Op: wire.CmdRestart, Runnable: 0},
	}})
	st := waitStats(t, h.client, "three drops", func(st Stats) bool { return st.CommandsDropped == 3 })
	if st.CommandsApplied != 1 {
		t.Fatalf("CommandsApplied = %d after drops, want 1", st.CommandsApplied)
	}
	if got := h.snapshot(); len(got) != 1 {
		t.Fatalf("callback saw %d commands, want 1", len(got))
	}
}

// TestClientAdoptsNewServerEpoch: a restarted server starts a fresh
// epoch with seq 1; the client must reset its sequence tracking instead
// of treating the small seq as a replay.
func TestClientAdoptsNewServerEpoch(t *testing.T) {
	h := newCommandHarness(t)
	h.send(t, &wire.Command{Node: 7, Epoch: 50, Seq: 5, Recs: []wire.CmdRec{
		{Op: wire.CmdQuarantine, Runnable: wire.CmdNodeTarget},
	}})
	waitStats(t, h.client, "old-epoch command", func(st Stats) bool { return st.CommandsApplied == 1 })

	h.send(t, &wire.Command{Node: 7, Epoch: 51, Seq: 1, Recs: []wire.CmdRec{
		{Op: wire.CmdResume, Runnable: wire.CmdNodeTarget},
	}})
	waitStats(t, h.client, "new-epoch command", func(st Stats) bool { return st.CommandsApplied == 2 })

	h.client.Flush()
	f := recvFrame(t, h.sink)
	if f.CmdAckEpoch != 51 || f.CmdAckSeq != 1 {
		t.Fatalf("ack pair = %d/%d, want 51/1", f.CmdAckEpoch, f.CmdAckSeq)
	}
}

func TestClientCountsUndecodableCommands(t *testing.T) {
	h := newCommandHarness(t)
	if _, err := h.sink.WriteToUDP([]byte{0x00, 0x01, 0x02}, h.addr); err != nil {
		t.Fatalf("WriteToUDP: %v", err)
	}
	waitStats(t, h.client, "decode error counted", func(st Stats) bool { return st.CommandErrors == 1 })
}

// TestClientDeliversHypothesisParams: a set-hypothesis command carries
// its four parameters through to the callback.
func TestClientDeliversHypothesisParams(t *testing.T) {
	h := newCommandHarness(t)
	h.send(t, &wire.Command{Node: 7, Epoch: 60, Seq: 1, Recs: []wire.CmdRec{
		{Op: wire.CmdSetHypothesis, Runnable: 1, Hyp: wire.HypothesisParams{
			AlivenessCycles: 10, MinHeartbeats: 2, ArrivalCycles: 5, MaxArrivals: 9,
		}},
	}})
	waitStats(t, h.client, "hypothesis command", func(st Stats) bool { return st.CommandsApplied == 1 })
	cmds := h.snapshot()
	want := Command{Op: OpSetHypothesis, Runnable: 1, Hypothesis: Hypothesis{
		AlivenessCycles: 10, MinHeartbeats: 2, ArrivalCycles: 5, MaxArrivals: 9,
	}}
	if len(cmds) != 1 || cmds[0] != want {
		t.Fatalf("delivered = %+v, want %+v", cmds, want)
	}
}
