package vehicle

import (
	"math"
	"testing"
	"time"
)

func newLong(t *testing.T) *Longitudinal {
	t.Helper()
	l, err := NewLongitudinal(DefaultLongitudinalParams())
	if err != nil {
		t.Fatalf("NewLongitudinal: %v", err)
	}
	return l
}

func TestLongitudinalValidation(t *testing.T) {
	bad := DefaultLongitudinalParams()
	bad.Mass = 0
	if _, err := NewLongitudinal(bad); err == nil {
		t.Error("zero mass accepted")
	}
	bad = DefaultLongitudinalParams()
	bad.DragArea = -1
	if _, err := NewLongitudinal(bad); err == nil {
		t.Error("negative drag accepted")
	}
}

func TestAccelerationFromStandstill(t *testing.T) {
	l := newLong(t)
	for i := 0; i < 1000; i++ {
		l.Step(10*time.Millisecond, 1, 0)
	}
	// After 10 s full throttle, a 1500 kg car with 6 kN should be moving
	// briskly but below terminal speed.
	v := MsToKph(l.Speed())
	if v < 80 || v > 160 {
		t.Fatalf("speed after 10s full throttle = %.1f km/h, want 80..160", v)
	}
	if l.Distance() <= 0 {
		t.Fatal("no distance accumulated")
	}
}

func TestTerminalSpeedReached(t *testing.T) {
	l := newLong(t)
	for i := 0; i < 60000; i++ { // 10 minutes
		l.Step(10*time.Millisecond, 1, 0)
	}
	v1 := l.Speed()
	for i := 0; i < 1000; i++ {
		l.Step(10*time.Millisecond, 1, 0)
	}
	if math.Abs(l.Speed()-v1) > 0.01 {
		t.Fatalf("speed still changing at terminal: %v -> %v", v1, l.Speed())
	}
	// Terminal speed where drive = drag + roll.
	p := DefaultLongitudinalParams()
	drag := 0.5 * airDensity * p.DragArea * v1 * v1
	roll := p.RollCoeff * p.Mass * Gravity
	if math.Abs(drag+roll-p.MaxDriveForce) > 50 {
		t.Fatalf("force balance off: drag+roll=%.1f, drive=%.1f", drag+roll, p.MaxDriveForce)
	}
}

func TestBrakingStops(t *testing.T) {
	l := newLong(t)
	l.SetSpeed(KphToMs(100))
	for i := 0; i < 1000; i++ {
		l.Step(10*time.Millisecond, 0, 1)
	}
	if l.Speed() != 0 {
		t.Fatalf("speed after 10s full braking = %v, want 0", l.Speed())
	}
}

func TestSpeedNeverNegative(t *testing.T) {
	l := newLong(t)
	l.Step(time.Second, 0, 1)
	if l.Speed() < 0 {
		t.Fatal("negative speed")
	}
	l.SetSpeed(-5)
	if l.Speed() != 0 {
		t.Fatal("SetSpeed accepted negative")
	}
}

func TestInputClamping(t *testing.T) {
	l := newLong(t)
	l.Step(time.Second, 5, -3) // clamped to throttle=1 brake=0
	v1 := l.Speed()
	l2 := newLong(t)
	l2.Step(time.Second, 1, 0)
	if math.Abs(v1-l2.Speed()) > 1e-9 {
		t.Fatal("inputs not clamped")
	}
	l.Step(0, 1, 0) // zero dt is a no-op
	if l.Speed() != v1 {
		t.Fatal("zero dt changed state")
	}
}

func TestLateralDriftAndDeparture(t *testing.T) {
	lat, err := NewLateral(DefaultLateralParams())
	if err != nil {
		t.Fatalf("NewLateral: %v", err)
	}
	v := KphToMs(100)
	// Small constant steering drifts the car out of the lane.
	steps := 0
	for !lat.Departed() && steps < 100000 {
		lat.Step(10*time.Millisecond, v, 0.002, 0)
		steps++
	}
	if !lat.Departed() {
		t.Fatal("constant steering never departed the lane")
	}
	if lat.Offset() < DefaultLateralParams().LaneHalfWidth {
		t.Fatalf("offset %v below marking at departure", lat.Offset())
	}
}

func TestLateralCurvatureCompensation(t *testing.T) {
	lat, _ := NewLateral(DefaultLateralParams())
	v := KphToMs(80)
	curvature := 1.0 / 500 // 500 m radius curve
	// Steering that exactly matches the curvature keeps the car centred:
	// yawRate = v/L*tan(steer) must equal v*curvature.
	steer := math.Atan(DefaultLateralParams().Wheelbase * curvature)
	for i := 0; i < 10000; i++ {
		lat.Step(10*time.Millisecond, v, steer, curvature)
	}
	if math.Abs(lat.Offset()) > 0.01 {
		t.Fatalf("offset %v with matched steering, want ~0", lat.Offset())
	}
	// No steering on the same curve drifts outward.
	lat2, _ := NewLateral(DefaultLateralParams())
	for i := 0; i < 10000 && !lat2.Departed(); i++ {
		lat2.Step(10*time.Millisecond, v, 0, curvature)
	}
	if !lat2.Departed() {
		t.Fatal("unsteered car never left the curved lane")
	}
}

func TestLateralValidation(t *testing.T) {
	if _, err := NewLateral(LateralParams{}); err == nil {
		t.Error("zero params accepted")
	}
	lat, _ := NewLateral(DefaultLateralParams())
	lat.SetOffset(0.5, 0.01)
	if lat.Offset() != 0.5 || lat.Heading() != 0.01 {
		t.Error("SetOffset did not apply")
	}
	before := lat.Offset()
	lat.Step(10*time.Millisecond, 0, 0.1, 0) // zero speed: no motion
	if lat.Offset() != before {
		t.Error("zero-speed step moved the car")
	}
}

func TestProfile(t *testing.T) {
	p, err := NewProfile(10,
		Segment{Until: time.Second, Value: 1},
		Segment{Until: 3 * time.Second, Value: 2},
	)
	if err != nil {
		t.Fatalf("NewProfile: %v", err)
	}
	cases := map[time.Duration]float64{
		0:                      1,
		999 * time.Millisecond: 1,
		time.Second:            2,
		2 * time.Second:        2,
		5 * time.Second:        10,
	}
	for tm, want := range cases {
		if got := p.At(tm); got != want {
			t.Errorf("At(%v) = %v, want %v", tm, got, want)
		}
	}
	if _, err := NewProfile(0, Segment{Until: 2 * time.Second}, Segment{Until: time.Second}); err == nil {
		t.Error("out-of-order segments accepted")
	}
}

func TestDriverThrottleProportional(t *testing.T) {
	desired, _ := NewProfile(KphToMs(120))
	d, err := NewDriver(desired, nil, 0.1)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	if got := d.Throttle(0, KphToMs(120)); got != 0 {
		t.Errorf("throttle at target = %v", got)
	}
	if got := d.Throttle(0, 0); got != 1 {
		t.Errorf("throttle far below target = %v, want saturated 1", got)
	}
	if got := d.Throttle(0, KphToMs(130)); got != 0 {
		t.Errorf("throttle above target = %v, want 0", got)
	}
	if got := d.Steering(0); got != 0 {
		t.Errorf("nil steer profile → %v", got)
	}
	if _, err := NewDriver(desired, nil, 0); err == nil {
		t.Error("zero gain accepted")
	}
	empty := &Driver{ThrottleGain: 1}
	if empty.Throttle(0, 0) != 0 {
		t.Error("nil desired profile not zero")
	}
}

func TestClosedLoopDriverReachesDesiredSpeed(t *testing.T) {
	desired, _ := NewProfile(KphToMs(100))
	d, _ := NewDriver(desired, nil, 0.5)
	l := newLong(t)
	for i := 0; i < 20000; i++ {
		tm := time.Duration(i) * 10 * time.Millisecond
		l.Step(10*time.Millisecond, d.Throttle(tm, l.Speed()), 0)
	}
	if got := MsToKph(l.Speed()); math.Abs(got-100) > 5 {
		t.Fatalf("closed-loop speed = %.1f km/h, want ~100", got)
	}
}

func TestUnitConversions(t *testing.T) {
	if math.Abs(KphToMs(36)-10) > 1e-9 {
		t.Error("KphToMs")
	}
	if math.Abs(MsToKph(10)-36) > 1e-9 {
		t.Error("MsToKph")
	}
}
