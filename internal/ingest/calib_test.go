// Calibration soak: a small fleet beats through real UDP sockets while
// the online calibration loop observes it, shadow-evaluates tightened
// hypotheses and rolls them out in stages over the command channel.
//
// TestIngestCalibSoak asserts the happy path end to end: the fleet
// adopts a tightened hypothesis via shadow → canary → fleet with zero
// supervision gap (no fault is ever raised), every reporter receives
// and acks its CmdSetHypothesis batch, and the suggestion that drove
// the rollout is reproduced bit for bit from the recorded baseline.
//
// TestIngestCalibRollback asserts the safety net: a canary whose
// workload shifts under the tightened hypothesis trips its fault
// counters, the round is rolled back automatically — prior hypotheses
// restored locally and on the canary reporter — and the rest of the
// fleet never sees the bad hypothesis.
package ingest_test

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swwd"
	"swwd/internal/calib"
	"swwd/internal/ingest"
	"swwd/swwdclient"
)

// calibFleet assembles a loopback fleet with the calibration loop on,
// dials the reporters and starts the cycle service.
type calibFleet struct {
	fleet   *ingest.Fleet
	svc     *swwd.Service
	clients []*swwdclient.Client
	hypCmds []atomic.Uint64 // OpSetHypothesis deliveries per node

	stopBeats chan struct{}
	wg        sync.WaitGroup
	beatN     atomic.Int64 // beats per tick per runnable (load knob)
}

func startCalibFleet(t *testing.T, nodes, runnables int, interval, cycle, beatEvery time.Duration, ccfg ingest.CalibrationConfig) *calibFleet {
	t.Helper()
	cf := &calibFleet{stopBeats: make(chan struct{}), hypCmds: make([]atomic.Uint64, nodes)}
	cf.beatN.Store(1)
	fleet, err := ingest.BuildFleet(ingest.FleetConfig{
		Nodes:            nodes,
		RunnablesPerNode: runnables,
		Interval:         interval,
		CyclePeriod:      cycle,
		GraceFrames:      4,
		CommandEpoch:     77,
		Calibration:      &ccfg,
	})
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	cf.fleet = fleet
	t.Cleanup(fleet.Calib.Close)
	addr, err := fleet.Server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = fleet.Server.Close() })

	cf.clients = make([]*swwdclient.Client, nodes)
	for n := 0; n < nodes; n++ {
		n := n
		c, err := swwdclient.Dial(addr.String(),
			swwdclient.WithNode(uint32(n)),
			swwdclient.WithRunnables(runnables),
			swwdclient.WithInterval(interval),
			swwdclient.WithOnCommand(func(cmd swwdclient.Command) {
				if cmd.Op == swwdclient.OpSetHypothesis {
					cf.hypCmds[n].Add(1)
				}
			}))
		if err != nil {
			t.Fatalf("Dial node %d: %v", n, err)
		}
		cf.clients[n] = c
		t.Cleanup(func() { _ = c.Close() })
		cf.wg.Add(1)
		go func() {
			defer cf.wg.Done()
			tick := time.NewTicker(beatEvery)
			defer tick.Stop()
			for {
				select {
				case <-cf.stopBeats:
					return
				case <-tick.C:
					k := int(cf.beatN.Load())
					for r := 0; r < runnables; r++ {
						for i := 0; i < k; i++ {
							c.Beat(r)
						}
					}
				}
			}
		}()
	}
	t.Cleanup(func() { close(cf.stopBeats); cf.wg.Wait() })

	deadline := time.Now().Add(10 * time.Second)
	for fleet.Server.Stats().Accepted < uint64(nodes) {
		if time.Now().After(deadline) {
			t.Fatalf("fleet warm-up timed out: %+v", fleet.Server.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	svc, err := swwd.NewService(fleet.Watchdog, cycle)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	cf.svc = svc
	t.Cleanup(func() { _ = svc.Stop() })
	return cf
}

// waitCalib polls the calibration status until cond holds.
func waitCalib(t *testing.T, f *ingest.Fleet, what string, every time.Duration, cond func(ingest.CalibStatus) bool) ingest.CalibStatus {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := f.Calib.Status()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s: %+v", what, st)
		}
		time.Sleep(every)
	}
}

func TestIngestCalibSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		nodes     = 3
		runnables = 2
		interval  = 50 * time.Millisecond
		cycle     = 5 * time.Millisecond
		beatEvery = 20 * time.Millisecond
	)
	cf := startCalibFleet(t, nodes, runnables, interval, cycle, beatEvery, ingest.CalibrationConfig{
		Params: calib.Params{
			WindowCycles:   20, // 100ms estimator/shadow window
			Margin:         0.5,
			PromoteAfter:   2,
			CanaryFraction: 0.34, // 1 of 3 nodes
		},
	})
	fleet := cf.fleet

	initial, err := fleet.Watchdog.Hypothesis(fleet.Specs[0].Runnables[0])
	if err != nil {
		t.Fatalf("Hypothesis: %v", err)
	}

	// One full round: shadow clean streak, canary hold, fleet-wide acks.
	st := waitCalib(t, fleet, "first completed rollout", 10*time.Millisecond,
		func(st ingest.CalibStatus) bool { return st.Rounds >= 1 })
	if st.Rollbacks != 0 {
		t.Fatalf("rollout rolled back on a steady fleet: %+v", st)
	}

	// Zero supervision gap: not a single fault was raised anywhere —
	// not during shadow evaluation, not at the hypothesis switch.
	if r := fleet.Watchdog.Results(); r != (swwd.Results{}) {
		t.Fatalf("faults during calibration rollout: %+v", r)
	}

	// The whole fleet runs the tightened hypothesis: estimator-window
	// periods, arrival monitoring now on, and no runnable left behind.
	for n := range fleet.Specs {
		for _, rid := range fleet.Specs[n].Runnables {
			h, err := fleet.Watchdog.Hypothesis(rid)
			if err != nil {
				t.Fatalf("Hypothesis(%d): %v", rid, err)
			}
			if h == initial {
				t.Fatalf("node %d runnable %d kept the initial hypothesis %+v", n, rid, h)
			}
			if h.AlivenessCycles != 20 || h.ArrivalCycles != 20 || h.MinHeartbeats < 1 || h.MaxArrivals < h.MinHeartbeats {
				t.Fatalf("adopted hypothesis malformed: %+v", h)
			}
		}
	}

	// Every reporter received its CmdSetHypothesis batch and acked it.
	for n := 0; n < nodes; n++ {
		if cf.hypCmds[n].Load() == 0 {
			t.Fatalf("node %d never received a hypothesis command", n)
		}
	}
	ws := fleet.Server.Stats()
	if ws.CommandsSent == 0 || ws.CommandsAcked == 0 {
		t.Fatalf("command channel silent: %+v", ws)
	}

	// Replay: the recorded baseline reproduces the suggestion bit for
	// bit — twice over, and rendered identically.
	base := fleet.Calib.LastBaseline()
	if base.WindowCycles != 20 || len(base.Runnables) == 0 {
		t.Fatalf("recorded baseline empty: %+v", base)
	}
	p1 := calib.Suggest(base, fleet.Calib.Policy())
	p2 := calib.Suggest(base, fleet.Calib.Policy())
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("replayed suggestions differ structurally")
	}
	if fmt.Sprintf("%#v", p1) != fmt.Sprintf("%#v", p2) {
		t.Fatal("replayed suggestions render differently")
	}
	if len(p1) == 0 {
		t.Fatal("recorded baseline yields no proposals on replay")
	}
}

func TestIngestCalibRollback(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		nodes     = 2
		runnables = 1
		interval  = 50 * time.Millisecond
		cycle     = 5 * time.Millisecond
		beatEvery = 20 * time.Millisecond
	)
	cf := startCalibFleet(t, nodes, runnables, interval, cycle, beatEvery, ingest.CalibrationConfig{
		Params: calib.Params{
			WindowCycles:   20,
			Margin:         0.25,
			PromoteAfter:   3,
			CanaryFraction: 0.5, // node 0 canaries, node 1 follows
		},
	})
	fleet := cf.fleet
	canaryRid := fleet.Specs[0].Runnables[0]
	fleetRid := fleet.Specs[1].Runnables[0]
	prior, err := fleet.Watchdog.Hypothesis(canaryRid)
	if err != nil {
		t.Fatalf("Hypothesis: %v", err)
	}

	// Wait for the canary stage, then shift the workload: burst beats
	// exceed the tightened arrival ceiling. The prior hypothesis has no
	// arrival monitoring, so only the canary's candidate can fault.
	waitCalib(t, fleet, "canary stage", 2*time.Millisecond,
		func(st ingest.CalibStatus) bool { return st.Stage == calib.StageCanary })
	cf.beatN.Store(8)

	st := waitCalib(t, fleet, "automatic rollback", 2*time.Millisecond,
		func(st ingest.CalibStatus) bool { return st.Rollbacks >= 1 })

	// The prior hypothesis is restored on the canary.
	h, err := fleet.Watchdog.Hypothesis(canaryRid)
	if err != nil {
		t.Fatalf("Hypothesis after rollback: %v", err)
	}
	if h != prior {
		t.Fatalf("canary hypothesis after rollback = %+v, want prior %+v", h, prior)
	}

	// The canary absorbed the regression; the rest of the fleet never
	// saw the bad hypothesis — its counters are spotless and (at the
	// moment of rollback) it still ran a hypothesis without arrival
	// monitoring, so the burst load cannot have touched it.
	if _, ar, _, err := fleet.Watchdog.RunnableErrors(canaryRid); err != nil || ar == 0 {
		t.Fatalf("canary arrival errors = %d (err %v), want > 0", ar, err)
	}
	if a, ar, pf, err := fleet.Watchdog.RunnableErrors(fleetRid); err != nil || a != 0 || ar != 0 || pf != 0 {
		t.Fatalf("non-canary runnable faulted: aliveness=%d arrival=%d flow=%d err=%v", a, ar, pf, err)
	}
	if st.Rounds != 0 && st.Rollbacks == 0 {
		t.Fatalf("rollback not recorded: %+v", st)
	}
}
