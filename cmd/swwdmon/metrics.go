// Metrics endpoint for swwdmon: -metrics addr serves the watchdog's
// telemetry Snapshot in three stdlib-only forms on one listener:
//
//	/metrics     Prometheus text exposition (internal/promtext; no
//	             client library): per-runnable beat and fault counters,
//	             the cumulative detection results, journal occupancy and
//	             drop accounting, the sweep-duration histogram and the
//	             Service tick/overrun drift counters.
//	/debug/vars  expvar JSON; the full Snapshot is published under the
//	             "swwd" key next to the usual memstats.
//	/debug/pprof net/http/pprof profiles.
//
// The exporter scrapes through Service.SnapshotInto with one reused
// buffer behind a mutex, so a scrape allocates only the HTTP response
// plumbing and never touches the heartbeat hot path.
package main

import (
	"bytes"
	"expvar"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"

	"swwd"
	"swwd/internal/promtext"
)

// metricsServer renders a Service's telemetry for scraping.
type metricsServer struct {
	svc *swwd.Service
	// names[i] is the spec name of runnable i, for metric labels.
	names []string

	// mu guards snap (the reused snapshot buffer) and buf (the reused
	// exposition buffer) across concurrent scrapes.
	mu   sync.Mutex
	snap swwd.Snapshot
	buf  bytes.Buffer
}

// newMetricsServer builds the exporter and resolves runnable names.
func newMetricsServer(svc *swwd.Service, sys *swwd.System) *metricsServer {
	n := sys.Model.NumRunnables()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		if r, err := sys.Model.Runnable(swwd.RunnableID(i)); err == nil {
			names[i] = r.Name
		} else {
			names[i] = fmt.Sprintf("runnable-%d", i)
		}
	}
	return &metricsServer{svc: svc, names: names}
}

// serve mounts the handlers and blocks on the listener. The default mux
// already carries expvar's /debug/vars and pprof's /debug/pprof.
func (m *metricsServer) serve(addr string) error {
	http.HandleFunc("/metrics", m.handleMetrics)
	expvar.Publish("swwd", expvar.Func(func() any {
		return m.svc.Snapshot()
	}))
	return http.ListenAndServe(addr, nil)
}

// handleMetrics renders the Prometheus text exposition.
func (m *metricsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.svc.SnapshotInto(&m.snap)
	m.buf.Reset()
	promtext.WriteSnapshot(&m.buf, &m.snap, m.names)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(m.buf.Bytes())
}
