package chaos

import "testing"

// TestRandomScenarioDeterministic pins the generator contract: the
// scenario — template, parameters, schedule, the whole plan — is a
// pure function of the seed, and distinct seeds actually explore the
// template space.
func TestRandomScenarioDeterministic(t *testing.T) {
	names := make(map[string]bool)
	for seed := uint64(1); seed <= 64; seed++ {
		a := RandomScenario(seed)
		b := RandomScenario(seed)
		if a.Plan() != b.Plan() {
			t.Fatalf("seed %d produced two different plans:\n--- a\n%s--- b\n%s", seed, a.Plan(), b.Plan())
		}
		if a.Seed != seed {
			t.Fatalf("scenario seed = %#x, want %#x", a.Seed, seed)
		}
		names[a.Name] = true
	}
	if len(names) < 16 {
		t.Fatalf("64 seeds produced only %d distinct scenarios", len(names))
	}
}

// TestRandomScenarioOraclesSound spot-checks every generated scenario
// for the envelope invariants that keep randomized oracles flake-free.
func TestRandomScenarioOraclesSound(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		sc := RandomScenario(seed)
		tp := sc.Topology.Defaults()
		for _, st := range sc.Steps {
			lf, ok := st.Fault.(*LinkFault)
			if !ok {
				continue
			}
			r := lf.Rules
			// Probabilistic loss without a burst cap below the grace
			// window could starve a window by bad luck and fabricate a
			// false positive the oracle would flag.
			if (r.UpDrop > 0 || r.CorruptProb > 0) && (r.LossBurstCap <= 0 || r.LossBurstCap >= tp.GraceFrames) {
				t.Fatalf("seed %d: %s has uncapped loss (cap %d, grace %d)", seed, sc.Name, r.LossBurstCap, tp.GraceFrames)
			}
			// A reorder window near the grace window would delay frames
			// long enough to fault a healthy link.
			if r.ReorderWindow > 1 && r.ReorderWindow*2 > tp.GraceFrames {
				t.Fatalf("seed %d: %s reorder window %d vs grace %d", seed, sc.Name, r.ReorderWindow, tp.GraceFrames)
			}
			// A skew rule must never accidentally declare the true
			// interval — the campaign would assert a mismatch that
			// cannot happen.
			if r.SkewIntervalMs != 0 && r.SkewIntervalMs == uint32(tp.Interval.Milliseconds()) {
				t.Fatalf("seed %d: %s skews to the true interval", seed, sc.Name)
			}
		}
	}
}
