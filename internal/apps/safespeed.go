// Package apps implements the ISS applications hosted by the EASIS
// validator (§4.1): SafeSpeed ("a system to automatically limit the
// vehicle speed to an externally commanded maximum value"), SafeLane ("a
// lane departure warning application") and the Steer-by-Wire pipeline with
// redundant sensor voting. Each application registers its runnables in the
// mapping model, provides its OSEK task program — with the Select/Loop
// seams the error injector manipulates — and exposes the flow sequence and
// fault hypotheses the Software Watchdog is configured with.
package apps

import (
	"errors"
	"fmt"
	"time"

	"swwd/internal/core"
	"swwd/internal/osek"
	"swwd/internal/runnable"
	"swwd/internal/vehicle"
)

// Branch values for the fault-injection seam shared by the applications:
// the task program's Select step reads the app's FaultBranch field.
const (
	// BranchNormal executes the nominal sequence.
	BranchNormal = 0
	// BranchSkipProcess skips the middle processing runnable — the
	// "invalid execution branch" of §4.5, producing program-flow errors.
	BranchSkipProcess = 1
	// BranchDoubleProcess executes the processing runnable twice.
	BranchDoubleProcess = 2
)

// SafeSpeedConfig parametrises the SafeSpeed application.
type SafeSpeedConfig struct {
	// Plant is the longitudinal vehicle model the application controls.
	Plant *vehicle.Longitudinal
	// Driver supplies the underlying throttle demand.
	Driver *vehicle.Driver
	// MaxSpeed reports the externally commanded maximum speed in m/s
	// (from the environment/telematics side).
	MaxSpeed func() float64
	// Now reports scenario time for the driver profiles.
	Now func() time.Duration
	// Period is the task dispatch period; zero means 10ms.
	Period time.Duration
	// Priority is the OSEK task priority; zero means 10.
	Priority int
	// BrakeGain converts overspeed (m/s) to brake demand; zero means 0.2.
	BrakeGain float64
}

// SafeSpeed is the speed-limiting application of the paper's evaluation,
// divided into the three runnables of Fig. 4: sensor value reading in
// GetSensorValue, the control algorithm in SAFE_CC_process, and setting of
// the actuator in Speed_process.
type SafeSpeed struct {
	cfg SafeSpeedConfig

	// App, Task and the three runnable IDs after model registration.
	App            runnable.AppID
	Task           runnable.TaskID
	GetSensorValue runnable.ID
	SAFECCProcess  runnable.ID
	SpeedProcess   runnable.ID

	// FaultBranch is the injection seam (Branch* constants).
	FaultBranch int
	// SensorScale corrupts the sensor reading (1 = healthy), a
	// value-fault seam.
	SensorScale float64
	// SensorResource, when set before Register, guards GetSensorValue
	// with the OSEK resource (priority-ceiling protocol): the sensor bus
	// is shared with other tasks, so a peer holding it too long produces
	// the paper's category-1 timing fault ("an object hangs as a result
	// of a requested resource being blocked").
	SensorResource *osek.ResourceID

	// control state
	sensorSpeed float64
	throttle    float64
	brake       float64
	limiting    bool
	execCount   uint64
}

// NewSafeSpeed validates the configuration and registers the application
// in the mapping model.
func NewSafeSpeed(m *runnable.Model, cfg SafeSpeedConfig) (*SafeSpeed, error) {
	if m == nil {
		return nil, errors.New("apps: model is required")
	}
	if cfg.Plant == nil || cfg.Driver == nil || cfg.MaxSpeed == nil || cfg.Now == nil {
		return nil, errors.New("apps: SafeSpeed requires Plant, Driver, MaxSpeed and Now")
	}
	if cfg.Period <= 0 {
		cfg.Period = 10 * time.Millisecond
	}
	if cfg.Priority == 0 {
		cfg.Priority = 10
	}
	if cfg.BrakeGain <= 0 {
		cfg.BrakeGain = 0.2
	}
	s := &SafeSpeed{cfg: cfg, SensorScale: 1}
	var err error
	if s.App, err = m.AddApp("SafeSpeed", runnable.SafetyCritical); err != nil {
		return nil, fmt.Errorf("apps: SafeSpeed: %w", err)
	}
	if s.Task, err = m.AddTask(s.App, "SafeSpeedTask", cfg.Priority); err != nil {
		return nil, fmt.Errorf("apps: SafeSpeed: %w", err)
	}
	type reg struct {
		name string
		exec time.Duration
		dst  *runnable.ID
	}
	for _, r := range []reg{
		{"GetSensorValue", 150 * time.Microsecond, &s.GetSensorValue},
		{"SAFE_CC_process", 400 * time.Microsecond, &s.SAFECCProcess},
		{"Speed_process", 150 * time.Microsecond, &s.SpeedProcess},
	} {
		if *r.dst, err = m.AddRunnable(s.Task, r.name, r.exec, runnable.SafetyCritical); err != nil {
			return nil, fmt.Errorf("apps: SafeSpeed: %w", err)
		}
	}
	return s, nil
}

// Period reports the task dispatch period.
func (s *SafeSpeed) Period() time.Duration { return s.cfg.Period }

// FlowSequence reports the legal runnable order for the PFC look-up table.
func (s *SafeSpeed) FlowSequence() []runnable.ID {
	return []runnable.ID{s.GetSensorValue, s.SAFECCProcess, s.SpeedProcess}
}

// Hypothesis returns the fault hypothesis for each runnable given the
// watchdog cycle period: every runnable must beat at least 3 times per
// checking window of 5 task periods (nominal: 5), and at most 7 (doubling
// yields 10).
func (s *SafeSpeed) Hypothesis(cyclePeriod time.Duration) map[runnable.ID]core.Hypothesis {
	cyclesPerTask := int(s.cfg.Period / cyclePeriod)
	if cyclesPerTask < 1 {
		cyclesPerTask = 1
	}
	window := 5 * cyclesPerTask
	h := core.Hypothesis{
		AlivenessCycles: window,
		MinHeartbeats:   3,
		ArrivalCycles:   window,
		MaxArrivals:     7,
	}
	out := make(map[runnable.ID]core.Hypothesis, 3)
	for _, rid := range s.FlowSequence() {
		out[rid] = h
	}
	return out
}

// Program builds the OSEK task body with the injection seams.
func (s *SafeSpeed) Program() osek.Program {
	process := osek.Exec{Runnable: s.SAFECCProcess, OnDone: s.runControl}
	read := osek.Program{osek.Exec{Runnable: s.GetSensorValue, OnDone: s.readSensor}}
	if s.SensorResource != nil {
		read = osek.Program{
			osek.Lock{Resource: *s.SensorResource},
			read[0],
			osek.Unlock{Resource: *s.SensorResource},
		}
	}
	prog := append(osek.Program{}, read...)
	return append(prog,
		osek.Select{
			Choose: func() int { return s.FaultBranch },
			Arms: []osek.Program{
				{process},          // BranchNormal
				{},                 // BranchSkipProcess: invalid branch
				{process, process}, // BranchDoubleProcess
			},
		},
		osek.Exec{Runnable: s.SpeedProcess, OnDone: s.actuate},
	)
}

// Register defines the task and its dispatch alarm on the OS.
func (s *SafeSpeed) Register(o *osek.OS) (osek.AlarmID, error) {
	if err := o.DefineTask(s.Task, osek.TaskAttrs{MaxActivations: 3}, s.Program()); err != nil {
		return -1, fmt.Errorf("apps: SafeSpeed: %w", err)
	}
	alarm, err := o.CreateAlarm("SafeSpeedAlarm", osek.ActivateAlarm(s.Task), true, s.cfg.Period, s.cfg.Period)
	if err != nil {
		return -1, fmt.Errorf("apps: SafeSpeed: %w", err)
	}
	return alarm, nil
}

func (s *SafeSpeed) readSensor() {
	scale := s.SensorScale
	if scale == 0 {
		scale = 1
	}
	s.sensorSpeed = s.cfg.Plant.Speed() * scale
}

func (s *SafeSpeed) runControl() {
	s.execCount++
	now := s.cfg.Now()
	max := s.cfg.MaxSpeed()
	if s.sensorSpeed > max {
		// Limit: cut throttle and brake proportionally to the overspeed.
		s.throttle = 0
		s.brake = (s.sensorSpeed - max) * s.cfg.BrakeGain
		if s.brake > 1 {
			s.brake = 1
		}
		s.limiting = true
		return
	}
	s.limiting = false
	s.brake = 0
	driverDemand := s.cfg.Driver.Throttle(now, s.sensorSpeed)
	// Never accelerate beyond the commanded maximum: taper demand near it.
	headroom := (max - s.sensorSpeed) / vehicle.KphToMs(10)
	if headroom < 1 {
		if headroom < 0 {
			headroom = 0
		}
		driverDemand *= headroom
	}
	s.throttle = driverDemand
}

func (s *SafeSpeed) actuate() {
	// Speed_process publishes the actuator demand; the driving-dynamics
	// node applies it on its next integration step.
}

// Controls reports the current actuator demand (throttle, brake).
func (s *SafeSpeed) Controls() (throttle, brake float64) { return s.throttle, s.brake }

// Limiting reports whether the application is actively limiting speed.
func (s *SafeSpeed) Limiting() bool { return s.limiting }

// SensorSpeed reports the last sensed speed in m/s.
func (s *SafeSpeed) SensorSpeed() float64 { return s.sensorSpeed }

// ControlExecutions reports how often the control law ran.
func (s *SafeSpeed) ControlExecutions() uint64 { return s.execCount }
