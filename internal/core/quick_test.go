package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// refModel is an independent re-statement of the §3.3 heartbeat
// monitoring semantics used as the oracle for property tests: counters
// count heartbeats since the last reset; the aliveness check fires at
// window end when heartbeats < min; the arrival check fires at window end
// when heartbeats > max; counters reset at window end.
type refModel struct {
	hyp             Hypothesis
	ac, arc         int
	cca, ccar       int
	aliveness, rate uint64
}

func (r *refModel) beat() {
	r.ac++
	r.arc++
}

func (r *refModel) cycle() {
	if r.hyp.AlivenessCycles > 0 {
		r.cca++
		if r.cca >= r.hyp.AlivenessCycles {
			if r.ac < r.hyp.MinHeartbeats {
				r.aliveness++
			}
			r.ac, r.cca = 0, 0
		}
	}
	if r.hyp.ArrivalCycles > 0 {
		r.ccar++
		if r.ccar >= r.hyp.ArrivalCycles {
			if r.arc > r.hyp.MaxArrivals {
				r.rate++
			}
			r.arc, r.ccar = 0, 0
		}
	}
}

// TestQuickHeartbeatSemantics drives random heartbeat/cycle interleavings
// through the watchdog and the reference model and requires identical
// counters and detection counts. Thresholds are set high so TSI state
// does not interfere.
func TestQuickHeartbeatSemantics(t *testing.T) {
	f := func(seed int64, aCycles, minBeats, rCycles, maxArr uint8) bool {
		hyp := Hypothesis{
			AlivenessCycles: int(aCycles%8) + 1,
			MinHeartbeats:   int(minBeats%4) + 1,
			ArrivalCycles:   int(rCycles%8) + 1,
			MaxArrivals:     int(maxArr%6) + 1,
		}
		m := runnable.NewModel()
		app, _ := m.AddApp("A", runnable.QM)
		task, _ := m.AddTask(app, "T", 1)
		rid, err := m.AddRunnable(task, "R", time.Millisecond, runnable.QM)
		if err != nil {
			return false
		}
		if err := m.Freeze(); err != nil {
			return false
		}
		w, err := New(Config{
			Model: m, Clock: sim.NewManualClock(),
			Thresholds: Thresholds{Aliveness: 1 << 30, ArrivalRate: 1 << 30, ProgramFlow: 1 << 30},
		})
		if err != nil {
			return false
		}
		if err := w.SetHypothesis(rid, hyp); err != nil {
			return false
		}
		if err := w.Activate(rid); err != nil {
			return false
		}
		ref := &refModel{hyp: hyp}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			if rng.Intn(3) == 0 {
				w.Cycle()
				ref.cycle()
			} else {
				w.Heartbeat(rid)
				ref.beat()
			}
			c, err := w.CounterSnapshot(rid)
			if err != nil {
				return false
			}
			if c.AC != ref.ac || c.ARC != ref.arc || c.CCA != ref.cca || c.CCAR != ref.ccar {
				return false
			}
		}
		res := w.Results()
		return res.Aliveness == ref.aliveness && res.ArrivalRate == ref.rate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFlowTableSoundness: for any declared flow table, heartbeats
// that follow declared pairs are never flagged, and every undeclared
// transition between monitored runnables of the same task is flagged.
func TestQuickFlowTableSoundness(t *testing.T) {
	f := func(seed int64, nRunnables uint8, density uint8) bool {
		n := int(nRunnables%6) + 2
		rng := rand.New(rand.NewSource(seed))
		m := runnable.NewModel()
		app, _ := m.AddApp("A", runnable.QM)
		task, _ := m.AddTask(app, "T", 1)
		rids := make([]runnable.ID, n)
		for i := range rids {
			var err error
			rids[i], err = m.AddRunnable(task, "r"+string(rune('A'+i)), time.Millisecond, runnable.QM)
			if err != nil {
				return false
			}
		}
		if err := m.Freeze(); err != nil {
			return false
		}
		w, err := New(Config{Model: m, Clock: sim.NewManualClock(),
			Thresholds: Thresholds{Aliveness: 1 << 30, ArrivalRate: 1 << 30, ProgramFlow: 1 << 30}})
		if err != nil {
			return false
		}
		allowed := make(map[[2]runnable.ID]bool)
		// Random table; ensure every runnable has at least one successor.
		for i := 0; i < n; i++ {
			k := int(density%3) + 1
			for j := 0; j < k; j++ {
				succ := rids[rng.Intn(n)]
				if err := w.AddFlowPair(rids[i], succ); err != nil {
					return false
				}
				allowed[[2]runnable.ID{rids[i], succ}] = true
			}
		}
		// Also enrol all runnables even if they got no pair (AddFlowPair
		// enrolled both ends already).
		expected := uint64(0)
		var prev runnable.ID = runnable.NoID
		for i := 0; i < 300; i++ {
			next := rids[rng.Intn(n)]
			if prev != runnable.NoID && !allowed[[2]runnable.ID{prev, next}] {
				expected++
			}
			w.Heartbeat(next)
			prev = next
		}
		return w.Results().ProgramFlow == expected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTSIThresholdExactness: the task becomes faulty exactly when an
// error-indication-vector element reaches its threshold, never before.
func TestQuickTSIThresholdExactness(t *testing.T) {
	f := func(th uint8) bool {
		threshold := int(th%10) + 1
		m := runnable.NewModel()
		app, _ := m.AddApp("A", runnable.QM)
		task, _ := m.AddTask(app, "T", 1)
		a, _ := m.AddRunnable(task, "a", time.Millisecond, runnable.QM)
		b, err := m.AddRunnable(task, "b", time.Millisecond, runnable.QM)
		if err != nil {
			return false
		}
		if err := m.Freeze(); err != nil {
			return false
		}
		w, err := New(Config{Model: m, Clock: sim.NewManualClock(),
			Thresholds: Thresholds{Aliveness: threshold, ArrivalRate: threshold, ProgramFlow: threshold}})
		if err != nil {
			return false
		}
		if err := w.AddFlowPair(a, b); err != nil {
			return false
		}
		// Each a→a transition is one flow error on runnable a.
		w.Heartbeat(a)
		for i := 1; i < threshold; i++ {
			w.Heartbeat(a)
			if st, _ := w.TaskState(task); st != StateOK {
				return false // faulty too early
			}
		}
		w.Heartbeat(a) // threshold-th error
		st, _ := w.TaskState(task)
		return st == StateFaulty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
