module swwd

go 1.22
