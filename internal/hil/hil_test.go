package hil

import (
	"math"
	"testing"
	"time"

	"swwd/internal/core"
	"swwd/internal/fmf"
	"swwd/internal/inject"
	"swwd/internal/osek"
	"swwd/internal/sim"
	"swwd/internal/vehicle"
)

func newValidator(t *testing.T, opts Options) *Validator {
	t.Helper()
	v, err := New(opts)
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	return v
}

func TestHealthyRunNoDetections(t *testing.T) {
	v := newValidator(t, Options{})
	if err := v.Run(30 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	res := v.Watchdog.Results()
	if res != (core.Results{}) {
		t.Fatalf("healthy run produced detections: %+v (faults %v)", res, v.FMF.FaultLog())
	}
	// The speed limiter must actually be limiting: driver wants 150, the
	// command is 80.
	got := vehicle.MsToKph(v.Long.Speed())
	if got > 85 || got < 60 {
		t.Fatalf("speed = %.1f km/h, want limited near 80", got)
	}
	if st, _ := v.Watchdog.TaskState(v.SafeSpeed.Task); st != core.StateOK {
		t.Fatalf("task state = %v", st)
	}
	// Recorder captured the standard series.
	for _, name := range []string{"GetSensorValue.AC", "AM Result", "PFC Result", "TaskState", "speed_kph"} {
		if v.Recorder.Series(name) == nil {
			t.Fatalf("series %q not recorded", name)
		}
	}
}

func TestFig5AlivenessInjection(t *testing.T) {
	// E1: slow the SafeSpeed dispatch alarm so heartbeats fall below the
	// hypothesis → AM Result rises only after injection.
	v := newValidator(t, Options{})
	injection := &inject.AlarmRateScale{OS: v.OS, Alarm: v.SafeSpeedAlarm, Scale: 8}
	if err := v.Injector.Window(2*sim.Second, 4*sim.Second, injection); err != nil {
		t.Fatalf("Window: %v", err)
	}
	if err := v.Run(6 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	am := v.Recorder.Series("AM Result")
	if am == nil {
		t.Fatal("AM Result not recorded")
	}
	// Before injection (t < 2s): zero. After: rising.
	for _, p := range am.Points {
		if p.Time < 2*sim.Second && p.Value != 0 {
			t.Fatalf("AM Result nonzero before injection: %+v", p)
		}
	}
	if am.Last() == 0 {
		t.Fatal("AM Result never rose after aliveness injection")
	}
	res := v.Watchdog.Results()
	if res.Aliveness == 0 {
		t.Fatalf("no aliveness detections: %+v", res)
	}
	if res.ProgramFlow != 0 {
		t.Fatalf("aliveness injection produced flow errors: %+v", res)
	}
	// Detection latency: first detection within ~2 hypothesis windows
	// (50-cycle window at 10ms = 500ms) after the 2s injection.
	first := sim.Time(0)
	for _, p := range am.Points {
		if p.Value > 0 {
			first = p.Time
			break
		}
	}
	if first < 2*sim.Second || first > 3200*sim.Millisecond {
		t.Fatalf("first detection at %v, want within (2s, 3.2s]", first)
	}
}

func TestFig6CollaborationPFCRootCause(t *testing.T) {
	// E2: invalid execution branch in SafeSpeed. PFC Result rises, the
	// task goes faulty at the third flow error, and only ONE aliveness
	// error is accumulated (root-cause correlation).
	v := newValidator(t, Options{})
	branch := &inject.FlagFault{
		Label: "invalid-branch",
		Set:   func() { v.SafeSpeed.FaultBranch = 1 },
		Unset: func() { v.SafeSpeed.FaultBranch = 0 },
	}
	v.Injector.ApplyAt(2*sim.Second, branch)
	if err := v.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	res := v.Watchdog.Results()
	if res.ProgramFlow < 3 {
		t.Fatalf("ProgramFlow = %d, want >= 3", res.ProgramFlow)
	}
	if res.Aliveness != 1 {
		t.Fatalf("Aliveness = %d, want exactly 1 (Fig. 6: 'Only one accumulated aliveness error is reported')", res.Aliveness)
	}
	if st, _ := v.Watchdog.TaskState(v.SafeSpeed.Task); st != core.StateFaulty {
		t.Fatal("task not faulty after three PFC errors")
	}
	// Task state flipped when PFC Result crossed the threshold 3.
	ts := v.Recorder.Series("TaskState")
	pfc := v.Recorder.Series("PFC Result")
	var flipAt sim.Time = -1
	for _, p := range ts.Points {
		if p.Value == 1 {
			flipAt = p.Time
			break
		}
	}
	if flipAt < 0 {
		t.Fatal("TaskState never flipped in the trace")
	}
	for _, p := range pfc.Points {
		if p.Time == flipAt && p.Value < 3 {
			t.Fatalf("task flipped at %v with PFC Result %v < 3", flipAt, p.Value)
		}
	}
}

func TestArrivalRateInjection(t *testing.T) {
	// E3: burst-dispatch the SafeSpeed task → AR Result rises.
	v := newValidator(t, Options{})
	injection := &inject.BurstDispatch{OS: v.OS, Task: v.SafeSpeed.Task, Period: 5 * time.Millisecond}
	if err := v.Injector.Window(2*sim.Second, 4*sim.Second, injection); err != nil {
		t.Fatalf("Window: %v", err)
	}
	if err := v.Run(6 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	res := v.Watchdog.Results()
	if res.ArrivalRate == 0 {
		t.Fatalf("no arrival-rate detections: %+v", res)
	}
	ar := v.Recorder.Series("AR Result")
	for _, p := range ar.Points {
		if p.Time < 2*sim.Second && p.Value != 0 {
			t.Fatalf("AR Result nonzero before injection: %+v", p)
		}
	}
}

func TestExecStretchCausesAliveness(t *testing.T) {
	// Stretching SAFE_CC_process so far that the 10ms task overruns its
	// period starves heartbeats (category 1: blocked too long).
	v := newValidator(t, Options{})
	injection := &inject.ExecStretch{OS: v.OS, Runnable: v.SafeSpeed.SAFECCProcess, Scale: 200}
	v.Injector.ApplyAt(2*sim.Second, injection)
	if err := v.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res := v.Watchdog.Results(); res.Aliveness == 0 {
		t.Fatalf("stretched runnable produced no aliveness errors: %+v", res)
	}
}

func TestTreatmentRestartsFaultyApp(t *testing.T) {
	// T3: with treatment enabled, the FMF restarts the faulty SafeSpeed
	// application; after the fault window ends the system recovers.
	v := newValidator(t, Options{EnableTreatment: true})
	branch := &inject.FlagFault{
		Label: "invalid-branch",
		Set:   func() { v.SafeSpeed.FaultBranch = 1 },
		Unset: func() { v.SafeSpeed.FaultBranch = 0 },
	}
	if err := v.Injector.Window(2*sim.Second, 4*sim.Second, branch); err != nil {
		t.Fatalf("Window: %v", err)
	}
	if err := v.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	treatments := v.FMF.Treatments()
	if len(treatments) == 0 {
		t.Fatal("no treatments executed")
	}
	if treatments[0].Action != fmf.RestartAppAction {
		t.Fatalf("treatment = %+v, want restart-application", treatments[0])
	}
	// After recovery the task must be OK again and the app running.
	if st, _ := v.Watchdog.TaskState(v.SafeSpeed.Task); st != core.StateOK {
		t.Fatalf("task state after recovery = %v", st)
	}
	if as, _ := v.Watchdog.AppState(v.SafeSpeed.App); as != core.StateOK {
		t.Fatalf("app state after recovery = %v", as)
	}
	// The application is alive: control keeps executing after treatment.
	before := v.SafeSpeed.ControlExecutions()
	if err := v.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.SafeSpeed.ControlExecutions() <= before {
		t.Fatal("application dead after treatment")
	}
}

func TestECUResetTreatment(t *testing.T) {
	// Make any single faulty app an ECU-level fault and allow the reset.
	v := newValidator(t, Options{
		EnableTreatment:   true,
		AllowECUReset:     true,
		ECUFaultyAppCount: 1,
	})
	branch := &inject.FlagFault{
		Label: "invalid-branch",
		Set:   func() { v.SafeSpeed.FaultBranch = 1 },
		Unset: func() { v.SafeSpeed.FaultBranch = 0 },
	}
	if err := v.Injector.Window(2*sim.Second, 4*sim.Second, branch); err != nil {
		t.Fatalf("Window: %v", err)
	}
	if err := v.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.OS.ResetCount() == 0 {
		t.Fatal("ECU was never reset")
	}
	sawReset := false
	for _, tr := range v.FMF.Treatments() {
		if tr.Action == fmf.ResetECUAction {
			sawReset = true
		}
	}
	if !sawReset {
		t.Fatalf("no reset treatment recorded: %+v", v.FMF.Treatments())
	}
	// System is alive after reset.
	before := v.SafeSpeed.ControlExecutions()
	if err := v.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.SafeSpeed.ControlExecutions() <= before {
		t.Fatal("system dead after ECU reset")
	}
}

func TestCorrelationAblation(t *testing.T) {
	// DESIGN.md ablation: without the collaboration logic, Fig. 6's run
	// accumulates many aliveness errors instead of one.
	run := func(disable bool) uint64 {
		v := newValidator(t, Options{DisableCorrelation: disable})
		branch := &inject.FlagFault{
			Label: "invalid-branch",
			Set:   func() { v.SafeSpeed.FaultBranch = 1 },
		}
		v.Injector.ApplyAt(2*sim.Second, branch)
		if err := v.Run(8 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return v.Watchdog.Results().Aliveness
	}
	with := run(false)
	without := run(true)
	if with != 1 {
		t.Fatalf("correlated run accumulated %d aliveness errors, want 1", with)
	}
	if without <= with {
		t.Fatalf("ablation: without correlation %d should exceed with %d", without, with)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (core.Results, float64) {
		v := newValidator(t, Options{})
		injection := &inject.AlarmRateScale{OS: v.OS, Alarm: v.SafeSpeedAlarm, Scale: 8}
		if err := v.Injector.Window(2*sim.Second, 4*sim.Second, injection); err != nil {
			t.Fatalf("Window: %v", err)
		}
		if err := v.Run(6 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return v.Watchdog.Results(), v.Long.Speed()
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 || s1 != s2 {
		t.Fatalf("nondeterministic runs: %+v/%v vs %+v/%v", r1, s1, r2, s2)
	}
}

func TestNetworkedValidator(t *testing.T) {
	v := newValidator(t, Options{WithNetworks: true})
	if err := v.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.Net == nil {
		t.Fatal("network not built")
	}
	// The limit command travelled telematics → gateway → CAN.
	if v.Net.LimitCommandsReceived() == 0 {
		t.Fatal("no limit commands received over the gateway path")
	}
	// The steering command reached the actuator node over FlexRay.
	if math.IsNaN(v.Net.ActuatorSteer()) {
		t.Fatal("no steer over FlexRay")
	}
	// CAN speed frames flowed.
	if v.Net.CANBus.Stats().FramesDelivered == 0 {
		t.Fatal("no CAN traffic")
	}
	if v.Net.FRBus.Stats().StaticFrames == 0 {
		t.Fatal("no FlexRay traffic")
	}
	// Gateway forwarded on both routes.
	stats := v.Net.Gateway.Stats()
	if len(stats) != 2 || stats[0].Forwarded == 0 || stats[1].Forwarded == 0 {
		t.Fatalf("gateway stats = %+v", stats)
	}
	// The watchdog stays quiet on the healthy networked run.
	if res := v.Watchdog.Results(); res != (core.Results{}) {
		t.Fatalf("networked healthy run produced detections: %+v", res)
	}
}

func TestChangedLimitPropagatesOverNetwork(t *testing.T) {
	v := newValidator(t, Options{WithNetworks: true})
	if err := v.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	v.SetSpeedLimit(vehicle.KphToMs(50))
	if err := v.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := vehicle.MsToKph(v.Long.Speed())
	if got > 55 {
		t.Fatalf("speed = %.1f km/h after lowering limit to 50", got)
	}
}

func TestInvalidTraceRunnableRejected(t *testing.T) {
	if _, err := New(Options{TraceRunnables: []string{"NoSuchRunnable"}}); err == nil {
		t.Fatal("unknown trace runnable accepted")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	v := newValidator(t, Options{})
	if err := v.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := v.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestNetworkedValidatorTolernatesLossyCAN(t *testing.T) {
	v := newValidator(t, Options{WithNetworks: true})
	// 20% of CAN frames corrupted: retransmission keeps the limit-command
	// path alive, at the cost of error frames and bus time.
	if err := v.Net.CANBus.SetBitErrorRate(0.2, 99); err != nil {
		t.Fatalf("SetBitErrorRate: %v", err)
	}
	v.SetSpeedLimit(vehicle.KphToMs(50))
	if err := v.Run(30 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := v.Net.CANBus.Stats()
	if st.ErrorFrames == 0 || st.Retransmissions == 0 {
		t.Fatalf("lossy bus produced no error frames: %+v", st)
	}
	if v.Net.LimitCommandsReceived() == 0 {
		t.Fatal("limit commands never survived the lossy bus")
	}
	// The vehicle still obeys the lowered limit.
	if got := vehicle.MsToKph(v.Long.Speed()); got > 55 {
		t.Fatalf("speed = %.1f km/h on lossy bus, want <= 55", got)
	}
	// And the watchdog stays quiet: network-level faults are handled by
	// the protocol, not misattributed to runnable timing.
	if res := v.Watchdog.Results(); res != (core.Results{}) {
		t.Fatalf("lossy bus produced watchdog detections: %+v", res)
	}
}

func TestKitchenSinkScenario(t *testing.T) {
	// Every optional subsystem at once: networks, remote ECU, hardware
	// watchdog, diagnostics, treatment and fallback. Healthy phase, then
	// a persistent central fault under the terminate policy.
	v := newValidator(t, Options{
		WithNetworks:         true,
		WithRemoteECU:        true,
		WithHardwareWatchdog: true,
		WithDiagnostics:      true,
		EnableTreatment:      true,
		EnableFallback:       true,
	})
	if err := v.FMF.SetPolicy(v.SafeSpeed.App, fmf.TerminateApp); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	if err := v.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Healthy: nothing anywhere.
	if res := v.Watchdog.Results(); res != (core.Results{}) {
		t.Fatalf("central detections on healthy phase: %+v", res)
	}
	if v.HWWatchdog.Expiries() != 0 {
		t.Fatal("hardware watchdog fired on healthy phase")
	}
	// Central fault: SafeSpeed terminated, fallback engages; the other
	// subsystems stay healthy.
	branch := &inject.FlagFault{
		Label: "invalid-branch",
		Set:   func() { v.SafeSpeed.FaultBranch = 1 },
	}
	v.Injector.ApplyAt(6*sim.Second, branch)
	if err := v.Run(15 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.FallbackEngaged() {
		t.Fatal("fallback not engaged")
	}
	if got := vehicle.MsToKph(v.Long.Speed()); got > 62 {
		t.Fatalf("vehicle not governed in degraded mode: %.1f km/h", got)
	}
	if res := v.Remote.Watchdog.Results(); res != (core.Results{}) {
		t.Fatalf("remote ECU polluted by central fault: %+v", res)
	}
	if v.HWWatchdog.Expiries() != 0 {
		t.Fatal("hardware watchdog fired on a runnable-level fault")
	}
	if st, _ := v.OS.State(v.SteerByWire.Task); st == osek.Suspended {
		// Steer-by-wire keeps its 5ms loop through all of this (its
		// alarm keeps dispatching; Suspended is only transient between
		// activations, so sample executions instead).
		before := v.OS.ExecCount(v.SteerByWire.Vote)
		if err := v.Run(time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if v.OS.ExecCount(v.SteerByWire.Vote) <= before {
			t.Fatal("steer-by-wire stopped")
		}
	}
}
