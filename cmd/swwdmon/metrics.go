// Metrics endpoint for swwdmon: -metrics addr serves the watchdog's
// telemetry Snapshot in stdlib-only forms on one listener:
//
//	/metrics     Prometheus text exposition (internal/export; no
//	             client library): per-runnable beat and fault counters,
//	             the cumulative detection results, journal occupancy,
//	             drop accounting and sequence head, the sweep-duration
//	             histogram and the Service tick/overrun drift counters.
//	/healthz     JSON readiness: monitoring-cycle liveness and, when
//	             -push-url is set, the push sink's delivery health.
//	/debug/vars  expvar JSON; the full Snapshot is published under the
//	             "swwd" key next to the usual memstats.
//	/debug/pprof net/http/pprof profiles.
//
// The exporter scrapes through Service.SnapshotInto with one reused
// buffer behind a mutex, so a scrape allocates only the HTTP response
// plumbing and never touches the heartbeat hot path. The same rendering
// backs the optional push sink (-push-url): export.Pusher delivers the
// payload on an interval with retry, backoff and drop accounting.
package main

import (
	"bytes"
	"expvar"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"
	"time"

	"swwd"
	"swwd/internal/export"
)

// metricsServer renders a Service's telemetry for scraping and pushing.
type metricsServer struct {
	svc *swwd.Service
	// names[i] is the spec name of runnable i, for metric labels.
	names []string
	// push is the optional push sink (nil without -push-url).
	push *export.Pusher

	// mu guards snap (the reused snapshot buffer) and buf (the reused
	// exposition buffer) across concurrent scrapes.
	mu   sync.Mutex
	snap swwd.Snapshot
	buf  bytes.Buffer
}

// newMetricsServer builds the exporter and resolves runnable names.
func newMetricsServer(svc *swwd.Service, sys *swwd.System) *metricsServer {
	n := sys.Model.NumRunnables()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		if r, err := sys.Model.Runnable(swwd.RunnableID(i)); err == nil {
			names[i] = r.Name
		} else {
			names[i] = fmt.Sprintf("runnable-%d", i)
		}
	}
	return &metricsServer{svc: svc, names: names}
}

// startPush attaches a push sink delivering the /metrics payload to url
// on the given interval.
func (m *metricsServer) startPush(url string, interval time.Duration) error {
	p, err := export.NewPusher(export.PushConfig{
		URL: url, Interval: interval, Collect: m.render,
	})
	if err != nil {
		return err
	}
	m.push = p
	p.Start()
	return nil
}

// serve mounts the handlers and blocks on the listener. The default mux
// already carries expvar's /debug/vars and pprof's /debug/pprof.
func (m *metricsServer) serve(addr string) error {
	http.HandleFunc("/metrics", m.handleMetrics)
	http.Handle("/healthz", m.health())
	expvar.Publish("swwd", expvar.Func(func() any {
		return m.svc.Snapshot()
	}))
	return http.ListenAndServe(addr, nil)
}

// health assembles the /healthz probe set: the monitoring cycle must
// advance between requests, and a configured push sink must deliver.
func (m *metricsServer) health() *export.Health {
	h := &export.Health{}
	var lastMu sync.Mutex
	var lastCycle uint64
	var lastSeen time.Time
	h.Register(func() export.Check {
		s := m.svc.Snapshot()
		lastMu.Lock()
		defer lastMu.Unlock()
		now := time.Now()
		// Healthy unless the cycle counter sat still across two probes
		// spaced at least two cycle periods apart.
		healthy := true
		if !lastSeen.IsZero() && s.Cycle == lastCycle &&
			now.Sub(lastSeen) >= 2*m.svc.Watchdog().CyclePeriod() {
			healthy = false
		}
		if s.Cycle != lastCycle || healthy {
			lastCycle, lastSeen = s.Cycle, now
		}
		return export.Check{
			Name:    "cycle",
			Healthy: healthy,
			Detail:  fmt.Sprintf("cycle=%d ticks=%d overruns=%d", s.Cycle, s.Driver.Ticks, s.Driver.Overruns),
		}
	})
	if m.push != nil {
		h.Register(func() export.Check {
			st := m.push.Stats()
			return export.Check{
				Name:    "push",
				Healthy: m.push.Healthy(4 * export.DefaultPushInterval),
				Detail:  fmt.Sprintf("delivered=%d dropped=%d backlog=%d", st.Delivered, st.Dropped, st.Backlog),
			}
		})
	}
	return h
}

// render writes the full exposition into out (shared by the pull
// endpoint and the push sink).
func (m *metricsServer) render(out *bytes.Buffer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.renderLocked()
	out.Write(m.buf.Bytes())
}

// renderLocked fills m.buf; callers hold m.mu.
func (m *metricsServer) renderLocked() {
	m.svc.SnapshotInto(&m.snap)
	m.buf.Reset()
	export.WriteSnapshot(&m.buf, &m.snap, m.names)
	export.WriteJournalSeq(&m.buf, m.snap.Journal)
	if m.push != nil {
		export.WritePush(&m.buf, m.push.Stats())
	}
}

// handleMetrics renders the Prometheus text exposition.
func (m *metricsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.renderLocked()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(m.buf.Bytes())
}
