package cfc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds 0→1→…→n-1→0.
func chain(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := NewGraph(n)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := g.AddEdge(BlockID(i), BlockID((i+1)%n)); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

// diamond builds 0→{1,2}→3→0, a branch-fan-in shape.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(4)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	for _, e := range [][2]BlockID{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	if _, err := NewGraph(0); err == nil {
		t.Error("empty graph accepted")
	}
	g := diamond(t)
	if g.NumBlocks() != 4 {
		t.Errorf("NumBlocks = %d", g.NumBlocks())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Error("HasEdge wrong")
	}
	if err := g.AddEdge(0, 99); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if g.HasEdge(99, 0) || g.Successors(99) != nil {
		t.Error("out-of-range queries not safe")
	}
	// Duplicate edges are idempotent.
	if err := g.AddEdge(0, 1); err != nil {
		t.Errorf("duplicate AddEdge: %v", err)
	}
	if len(g.Successors(0)) != 2 {
		t.Errorf("Successors(0) = %v", g.Successors(0))
	}
}

func checkers(t *testing.T, g *Graph) map[string]Checker {
	t.Helper()
	cfcss, err := NewCFCSS(g, 42)
	if err != nil {
		t.Fatalf("NewCFCSS: %v", err)
	}
	return map[string]Checker{
		"table": NewTablePFC(g),
		"cfcss": cfcss,
	}
}

func TestLegalChainAccepted(t *testing.T) {
	g := chain(t, 5)
	for name, c := range checkers(t, g) {
		t.Run(name, func(t *testing.T) {
			c.Reset(0)
			for round := 0; round < 3; round++ {
				for b := 1; b < 5; b++ {
					if !c.Enter(BlockID(b)) {
						t.Fatalf("legal transition to %d flagged", b)
					}
				}
				if !c.Enter(0) {
					t.Fatal("legal wrap flagged")
				}
			}
			if c.Detected() != 0 {
				t.Fatalf("Detected = %d", c.Detected())
			}
		})
	}
}

func TestIllegalJumpDetected(t *testing.T) {
	g := chain(t, 5)
	for name, c := range checkers(t, g) {
		t.Run(name, func(t *testing.T) {
			c.Reset(0)
			c.Enter(1)
			if c.Enter(3) { // 1→3 skips 2
				t.Fatal("illegal jump 1→3 not detected")
			}
			if c.Detected() != 1 {
				t.Fatalf("Detected = %d, want 1", c.Detected())
			}
			// After resync, legal flow checks cleanly again.
			if !c.Enter(4) {
				t.Fatal("legal transition after resync flagged")
			}
		})
	}
}

func TestDiamondBothArmsLegal(t *testing.T) {
	g := diamond(t)
	for name, c := range checkers(t, g) {
		t.Run(name, func(t *testing.T) {
			c.Reset(0)
			for _, b := range []BlockID{1, 3, 0, 2, 3, 0} {
				if !c.Enter(b) {
					t.Fatalf("legal diamond path flagged at %d", b)
				}
			}
			if c.Detected() != 0 {
				t.Fatalf("Detected = %d", c.Detected())
			}
		})
	}
}

func TestDiamondIllegalCrossEdge(t *testing.T) {
	g := diamond(t)
	for name, c := range checkers(t, g) {
		t.Run(name, func(t *testing.T) {
			c.Reset(0)
			c.Enter(1)
			if c.Enter(2) { // 1→2 is not an edge
				t.Fatalf("%s: illegal 1→2 not detected", name)
			}
		})
	}
}

func TestCFCSSSignaturesDistinct(t *testing.T) {
	g := chain(t, 64)
	c, err := NewCFCSS(g, 7)
	if err != nil {
		t.Fatalf("NewCFCSS: %v", err)
	}
	seen := make(map[uint32]bool)
	for _, s := range c.sig {
		if seen[s] {
			t.Fatal("duplicate signature")
		}
		seen[s] = true
	}
}

func TestCFCSSDeterministicForSeed(t *testing.T) {
	g := diamond(t)
	a, _ := NewCFCSS(g, 99)
	b, _ := NewCFCSS(g, 99)
	for i := range a.sig {
		if a.sig[i] != b.sig[i] {
			t.Fatal("same seed produced different signatures")
		}
	}
}

func TestInstrumentationPointsTableVsCFCSS(t *testing.T) {
	g := diamond(t)
	table := NewTablePFC(g)
	cfcss, _ := NewCFCSS(g, 1)
	// CFCSS must touch every block and add D assignments in fan-in
	// predecessors; the table needs only the per-block glue call.
	if cfcss.InstrumentationPoints() <= table.InstrumentationPoints() {
		t.Fatalf("CFCSS instrumentation (%d) not greater than table (%d)",
			cfcss.InstrumentationPoints(), table.InstrumentationPoints())
	}
}

func TestCFCSSAliasingSurfaced(t *testing.T) {
	// Block 0 precedes two different fan-in blocks (3 and 4) whose base
	// predecessors differ, forcing conflicting D assignments in 0.
	g, err := NewGraph(5)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	for _, e := range [][2]BlockID{{0, 3}, {1, 3}, {0, 4}, {2, 4}, {3, 0}, {4, 0}, {0, 1}, {0, 2}, {1, 0}, {2, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	c, err := NewCFCSS(g, 5)
	if err != nil {
		t.Fatalf("NewCFCSS: %v", err)
	}
	if len(c.Aliased()) == 0 {
		t.Fatal("aliasing not surfaced for conflicting D assignments")
	}
}

func TestTableResetMidStream(t *testing.T) {
	g := chain(t, 4)
	c := NewTablePFC(g)
	c.Enter(2) // first observation without Reset: accepted, establishes prev
	if c.Detected() != 0 {
		t.Fatal("first observation flagged")
	}
	c.Reset(0)
	if !c.Enter(1) {
		t.Fatal("post-reset legal transition flagged")
	}
}

// Property: for random graphs, both mechanisms accept every walk that only
// follows edges.
func TestQuickLegalWalksAccepted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		g, err := NewGraph(n)
		if err != nil {
			return false
		}
		// Random connected-ish graph: ensure every block has at least one
		// successor.
		for i := 0; i < n; i++ {
			k := rng.Intn(3) + 1
			for j := 0; j < k; j++ {
				if err := g.AddEdge(BlockID(i), BlockID(rng.Intn(n))); err != nil {
					return false
				}
			}
		}
		table := NewTablePFC(g)
		cfcss, err := NewCFCSS(g, seed)
		if err != nil {
			return false
		}
		// CFCSS only guarantees clean checking on alias-free graphs (the
		// original construction restructures the CFG to remove aliasing);
		// the look-up table has no such restriction.
		checkCFCSS := len(cfcss.Aliased()) == 0
		cur := BlockID(rng.Intn(n))
		table.Reset(cur)
		cfcss.Reset(cur)
		for step := 0; step < 200; step++ {
			ss := g.Successors(cur)
			next := ss[rng.Intn(len(ss))]
			if !table.Enter(next) {
				return false
			}
			if !cfcss.Enter(next) && checkCFCSS {
				return false
			}
			cur = next
		}
		if checkCFCSS && cfcss.Detected() != 0 {
			return false
		}
		return table.Detected() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the table detects every single-step violation; CFCSS detects
// it unless the target aliases (rare in random graphs, tolerated).
func TestQuickIllegalStepDetectedByTable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 3
		g, err := NewGraph(n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if err := g.AddEdge(BlockID(i), BlockID((i+1)%n)); err != nil {
				return false
			}
		}
		table := NewTablePFC(g)
		cur := BlockID(rng.Intn(n))
		table.Reset(cur)
		// Pick any non-successor.
		var bad BlockID = -1
		for b := 0; b < n; b++ {
			if !g.HasEdge(cur, BlockID(b)) {
				bad = BlockID(b)
				break
			}
		}
		if bad < 0 {
			return true // fully connected row; nothing illegal exists
		}
		return !table.Enter(bad) && table.Detected() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
