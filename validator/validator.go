// Package validator is the public surface of the EASIS architecture
// validator simulation: the assembled ECU (OSEK scheduler, SafeSpeed /
// SafeLane / Steer-by-Wire applications, Software Watchdog, Fault
// Management Framework), the vehicle plant, the optional CAN / FlexRay /
// telematics topology, and the error-injection scheduler. It re-exports
// the internal assembly so downstream users can run scenarios without
// touching internal packages.
package validator

import (
	"swwd/internal/hil"
	"swwd/internal/inject"
	"swwd/internal/sim"
	"swwd/internal/trace"
	"swwd/internal/vehicle"
)

// Time is an instant on the simulation's virtual clock (nanoseconds since
// scenario start).
type Time = sim.Time

// Convenient virtual-time constants.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Re-exported assembly types.
type (
	// Options configure a validator instance.
	Options = hil.Options
	// Validator is one assembled instance.
	Validator = hil.Validator
	// Network is the communication topology (nil unless Options.WithNetworks).
	Network = hil.Network
)

// Re-exported injection types (the ControlDesk-slider equivalents).
type (
	// Injection is one reversible error-injection mechanism.
	Injection = inject.Injection
	// ExecStretch scales a runnable's execution time.
	ExecStretch = inject.ExecStretch
	// AlarmRateScale changes a dispatch alarm's period.
	AlarmRateScale = inject.AlarmRateScale
	// BurstDispatch excessively dispatches a task.
	BurstDispatch = inject.BurstDispatch
	// FlagFault flips an application fault flag (invalid branches, loop
	// counters).
	FlagFault = inject.FlagFault
	// InjectionEvent records one injection state change.
	InjectionEvent = inject.Event
)

// Re-exported trace types for consuming recorded series.
type (
	// Recorder collects named time series.
	Recorder = trace.Recorder
	// Series is one recorded signal.
	Series = trace.Series
)

// New assembles a validator configured by functional options:
//
//	v, err := validator.New(validator.WithNetworks(), validator.WithTreatment())
//
// NewFromOptions remains available for callers assembling an Options
// struct.
func New(opts ...Option) (*Validator, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return hil.New(o)
}

// NewFromOptions assembles a validator from an Options struct.
func NewFromOptions(opts Options) (*Validator, error) { return hil.New(opts) }

// Plot renders a recorded series as an ASCII chart.
func Plot(s *Series, width, height int) string { return trace.Plot(s, width, height) }

// KphToMs converts km/h to m/s.
func KphToMs(kph float64) float64 { return vehicle.KphToMs(kph) }

// MsToKph converts m/s to km/h.
func MsToKph(ms float64) float64 { return vehicle.MsToKph(ms) }
