// Specfile: configure the Software Watchdog declaratively.
//
// Deployments describe the application/task/runnable mapping, the fault
// hypotheses and the flow tables in JSON — the design-time configuration
// step of the paper's service — and the library builds the monitored
// system from it. This example loads an embedded spec, runs the service
// briefly with healthy heartbeats, then breaks the declared flow.
//
// Run with:
//
//	go run ./examples/specfile
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"swwd"
)

const spec = `{
  "apps": [
    {
      "name": "BrakeControl",
      "criticality": "safety-critical",
      "tasks": [
        {
          "name": "BrakeTask",
          "priority": 10,
          "flow": true,
          "runnables": [
            {"name": "ReadPedal", "exec_time": "100us",
             "hypothesis": {"aliveness_cycles": 10, "min_heartbeats": 2,
                            "arrival_cycles": 10, "max_arrivals": 30}},
            {"name": "ComputePressure", "exec_time": "300us",
             "hypothesis": {"aliveness_cycles": 10, "min_heartbeats": 2,
                            "arrival_cycles": 10, "max_arrivals": 30}},
            {"name": "ApplyBrake", "exec_time": "100us",
             "hypothesis": {"aliveness_cycles": 10, "min_heartbeats": 2,
                            "arrival_cycles": 10, "max_arrivals": 30}}
          ]
        }
      ]
    }
  ],
  "watchdog": {
    "cycle_period": "5ms",
    "program_flow_threshold": 3
  }
}`

// printSink logs detections as they happen.
type printSink struct{}

func (printSink) Fault(r swwd.Report) {
	fmt.Printf("  [watchdog] %s error (runnable %d)\n", r.Kind, r.Runnable)
}

func (printSink) StateChanged(e swwd.StateEvent) {
	fmt.Printf("  [watchdog] %s -> %s\n", e.Scope, e.State)
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("specfile: %v", err)
	}
}

func run() error {
	parsed, err := swwd.LoadSpec(strings.NewReader(spec))
	if err != nil {
		return err
	}
	sys, err := parsed.Build(nil, printSink{})
	if err != nil {
		return err
	}
	fmt.Printf("built system: %d apps, %d tasks, %d runnables\n",
		sys.Model.NumApps(), sys.Model.NumTasks(), sys.Model.NumRunnables())

	svc, err := swwd.NewService(sys.Watchdog, 0)
	if err != nil {
		return err
	}
	if err := svc.Start(); err != nil {
		return err
	}
	defer svc.Stop()

	fmt.Println("phase 1: healthy brake pipeline (heartbeats by name)")
	for i := 0; i < 30; i++ {
		sys.Heartbeat("ReadPedal")
		sys.Heartbeat("ComputePressure")
		sys.Heartbeat("ApplyBrake")
		time.Sleep(4 * time.Millisecond)
	}
	fmt.Printf("  results: %+v\n", sys.Watchdog.Results())

	fmt.Println("phase 2: ComputePressure is skipped (invalid branch)")
	for i := 0; i < 5; i++ {
		sys.Heartbeat("ReadPedal")
		sys.Heartbeat("ApplyBrake")
		time.Sleep(4 * time.Millisecond)
	}
	res := sys.Watchdog.Results()
	fmt.Printf("  results: %+v\n", res)
	if res.ProgramFlow == 0 {
		return fmt.Errorf("flow break not detected")
	}
	task, _ := sys.Task("BrakeTask")
	st, err := sys.Watchdog.TaskState(task)
	if err != nil {
		return err
	}
	fmt.Printf("task state: %v\n", st)
	fmt.Println("specfile example complete")
	return nil
}
