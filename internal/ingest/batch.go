// Batched datagram receives. Each listener read loop receives through a
// datagramReader, which comes in two flavours:
//
//   - mmsgReader (batch_linux.go): one recvmmsg(2) syscall returns up
//     to BatchSize datagrams, each written by the kernel directly into
//     a distinct free-list buffer. This is the manual-syscall variant
//     of golang.org/x/net's ipv4.PacketConn.ReadBatch; it is built on
//     the stdlib syscall package because this module takes no external
//     dependencies, and it integrates with the runtime netpoller via
//     syscall.RawConn.Read, so a loop waiting for traffic parks like
//     any other blocked read instead of spinning. Gated to linux on
//     64-bit targets where the syscall struct layouts are fixed.
//
//   - singleReader (below): the portable fallback, one
//     ReadFromUDPAddrPort per call. Also used when BatchSize is 1.
//
// The receive-slot contract: the caller passes per-slot buffers, and
// ReadBatch fills sizes[i] and srcs[i] for the first m slots. Buffers
// are caller-owned throughout — the reader never retains them past the
// call — which is what lets the read loop hand a filled buffer straight
// to a shard worker without a copy.
package ingest

import (
	"net"
	"net/netip"
)

// datagramReader is one listener's receive strategy.
type datagramReader interface {
	// Batch is the slot capacity: the most datagrams one ReadBatch call
	// can return, and the number of buffers the read loop keeps armed.
	Batch() int
	// ReadBatch blocks until at least one datagram (or a socket error),
	// fills up to min(len(bufs), Batch) slots and returns the count.
	ReadBatch(bufs [][]byte, sizes []int, srcs []netip.AddrPort) (int, error)
}

// newBatchReader picks the receive strategy for conn: the platform
// batch reader when batching is enabled and available, the portable
// single-datagram reader otherwise.
func newBatchReader(conn *net.UDPConn, batch int) datagramReader {
	if batch > 1 {
		if r := newMmsgReader(conn, batch); r != nil {
			return r
		}
	}
	return &singleReader{conn: conn}
}

// singleReader reads one datagram per call.
type singleReader struct {
	conn *net.UDPConn
}

func (r *singleReader) Batch() int { return 1 }

func (r *singleReader) ReadBatch(bufs [][]byte, sizes []int, srcs []netip.AddrPort) (int, error) {
	n, src, err := r.conn.ReadFromUDPAddrPort(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	srcs[0] = src
	return 1, nil
}
