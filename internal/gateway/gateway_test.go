package gateway

import (
	"testing"
	"time"

	"swwd/internal/can"
	"swwd/internal/ethernet"
	"swwd/internal/flexray"
	"swwd/internal/sim"
)

// rig wires a CAN bus, a FlexRay bus and an Ethernet segment to one
// gateway, like the validator's topology.
type rig struct {
	k       *sim.Kernel
	gw      *Gateway
	canBus  *can.Bus
	canApp  *can.Node // application node on CAN
	frBus   *flexray.Bus
	frApp   *flexray.Node // application node on FlexRay
	ethNet  *ethernet.Network
	ethApp  *ethernet.Node
	gwSlots []int
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	r := &rig{k: k}

	var err error
	r.canBus, err = can.NewBus(k, 500000)
	if err != nil {
		t.Fatalf("can.NewBus: %v", err)
	}
	r.canApp = r.canBus.AttachNode("can-app")
	canGW := r.canBus.AttachNode("gw-can")

	r.frBus, err = flexray.NewBus(k, flexray.Config{
		StaticSlots: 4, SlotDuration: 250 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("flexray.NewBus: %v", err)
	}
	r.frApp = r.frBus.AttachNode("fr-app")
	frGW := r.frBus.AttachNode("gw-fr")
	if err := r.frBus.AssignSlot(1, r.frApp); err != nil {
		t.Fatalf("AssignSlot: %v", err)
	}
	if err := r.frBus.AssignSlot(2, frGW); err != nil {
		t.Fatalf("AssignSlot: %v", err)
	}
	if err := r.frBus.Start(); err != nil {
		t.Fatalf("flexray Start: %v", err)
	}

	r.ethNet, err = ethernet.NewNetwork(k, ethernet.Config{Latency: time.Millisecond})
	if err != nil {
		t.Fatalf("ethernet.NewNetwork: %v", err)
	}
	r.ethApp, err = r.ethNet.AttachNode("telematics")
	if err != nil {
		t.Fatalf("AttachNode: %v", err)
	}
	ethGW, err := r.ethNet.AttachNode("gw-eth")
	if err != nil {
		t.Fatalf("AttachNode: %v", err)
	}

	r.gw, err = New(Config{Kernel: k, ProcessingDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	cp, err := NewCANPort("can", canGW)
	if err != nil {
		t.Fatalf("NewCANPort: %v", err)
	}
	fp, err := NewFlexRayPort("flexray", frGW)
	if err != nil {
		t.Fatalf("NewFlexRayPort: %v", err)
	}
	ep, err := NewEthernetPort("eth", ethGW)
	if err != nil {
		t.Fatalf("NewEthernetPort: %v", err)
	}
	for _, p := range []Port{cp, fp, ep} {
		if err := r.gw.AttachPort(p); err != nil {
			t.Fatalf("AttachPort: %v", err)
		}
	}
	return r
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil kernel accepted")
	}
	k := sim.NewKernel()
	if _, err := New(Config{Kernel: k, ProcessingDelay: -time.Second}); err == nil {
		t.Error("negative delay accepted")
	}
	g, err := New(Config{Kernel: k})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := g.AttachPort(nil); err == nil {
		t.Error("nil port accepted")
	}
	if err := g.AddRoute(Route{From: "x", To: "y"}); err == nil {
		t.Error("route with unknown ports accepted")
	}
	if _, err := NewCANPort("c", nil); err == nil {
		t.Error("nil CAN node accepted")
	}
	if _, err := NewFlexRayPort("f", nil); err == nil {
		t.Error("nil FlexRay node accepted")
	}
	if _, err := NewEthernetPort("e", nil); err == nil {
		t.Error("nil Ethernet node accepted")
	}
}

func TestDuplicatePortRejected(t *testing.T) {
	r := newRig(t)
	other := r.canBus.AttachNode("gw-can2")
	p, _ := NewCANPort("can", other)
	if err := r.gw.AttachPort(p); err == nil {
		t.Fatal("duplicate port name accepted")
	}
}

func TestSelfLoopRouteRejected(t *testing.T) {
	r := newRig(t)
	if err := r.gw.AddRoute(Route{From: "can", FromID: 1, To: "can", ToID: 1}); err == nil {
		t.Fatal("self-loop route accepted")
	}
}

func TestCANToFlexRayRouting(t *testing.T) {
	r := newRig(t)
	if err := r.gw.AddRoute(Route{From: "can", FromID: 0x100, To: "flexray", ToID: 2}); err != nil {
		t.Fatalf("AddRoute: %v", err)
	}
	var got []flexray.Frame
	r.frApp.Subscribe(func(f flexray.Frame) { got = append(got, f) })
	if err := r.canApp.Send(can.Frame{ID: 0x100, Data: []byte{42}}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := r.k.Run(10 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) == 0 || got[0].Slot != 2 || got[0].Data[0] != 42 {
		t.Fatalf("FlexRay app got %+v", got)
	}
	stats := r.gw.Stats()
	if stats[0].Forwarded == 0 {
		t.Fatalf("route stats = %+v", stats)
	}
}

func TestFlexRayToEthernetRouting(t *testing.T) {
	r := newRig(t)
	if err := r.gw.AddRoute(Route{From: "flexray", FromID: 1, To: "eth", ToID: 99}); err != nil {
		t.Fatalf("AddRoute: %v", err)
	}
	var got []ethernet.Message
	r.ethApp.Subscribe(func(m ethernet.Message) { got = append(got, m) })
	if err := r.frApp.WriteSlot(1, []byte{7, 8}); err != nil {
		t.Fatalf("WriteSlot: %v", err)
	}
	if err := r.k.Run(10 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 || got[0].Topic != 99 || got[0].Payload[1] != 8 {
		t.Fatalf("ethernet got %+v", got)
	}
}

func TestEthernetToCANRoutingWithTransform(t *testing.T) {
	r := newRig(t)
	if err := r.gw.AddRoute(Route{
		From: "eth", FromID: 5, To: "can", ToID: 0x200,
		Transform: func(b []byte) []byte {
			// Repack: keep first byte only (CAN payload budget).
			if len(b) > 1 {
				return b[:1]
			}
			return b
		},
	}); err != nil {
		t.Fatalf("AddRoute: %v", err)
	}
	var got []can.Frame
	r.canApp.Subscribe(nil, func(f can.Frame) { got = append(got, f) })
	if err := r.ethApp.Broadcast(5, []byte{1, 2, 3, 4}); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if err := r.k.Run(20 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 || got[0].ID != 0x200 || len(got[0].Data) != 1 {
		t.Fatalf("CAN app got %+v", got)
	}
}

func TestUnroutedCounted(t *testing.T) {
	r := newRig(t)
	if err := r.canApp.Send(can.Frame{ID: 0x300}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := r.k.Run(10 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.gw.Unrouted() != 1 {
		t.Fatalf("Unrouted = %d, want 1", r.gw.Unrouted())
	}
}

func TestFanOutOneToMany(t *testing.T) {
	r := newRig(t)
	if err := r.gw.AddRoute(Route{From: "can", FromID: 0x100, To: "flexray", ToID: 2}); err != nil {
		t.Fatalf("AddRoute: %v", err)
	}
	if err := r.gw.AddRoute(Route{From: "can", FromID: 0x100, To: "eth", ToID: 50}); err != nil {
		t.Fatalf("AddRoute: %v", err)
	}
	frGot, ethGot := 0, 0
	r.frApp.Subscribe(func(flexray.Frame) { frGot++ })
	r.ethApp.Subscribe(func(ethernet.Message) { ethGot++ })
	if err := r.canApp.Send(can.Frame{ID: 0x100, Data: []byte{1}}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := r.k.Run(20 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if frGot != 1 || ethGot != 1 {
		t.Fatalf("fan-out fr=%d eth=%d", frGot, ethGot)
	}
	if len(r.gw.Routes()) != 2 {
		t.Fatalf("Routes = %+v", r.gw.Routes())
	}
}

func TestSendErrorCounted(t *testing.T) {
	r := newRig(t)
	// Route to a FlexRay slot the gateway node does not own → Send fails.
	if err := r.gw.AddRoute(Route{From: "can", FromID: 0x100, To: "flexray", ToID: 4}); err != nil {
		t.Fatalf("AddRoute: %v", err)
	}
	if err := r.canApp.Send(can.Frame{ID: 0x100, Data: []byte{1}}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := r.k.Run(10 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	stats := r.gw.Stats()
	if stats[0].Errors != 1 || stats[0].Forwarded != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}
