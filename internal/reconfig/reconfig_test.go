package reconfig

import (
	"testing"
	"time"

	"swwd/internal/fmf"
	"swwd/internal/osek"
	"swwd/internal/runnable"
	"swwd/internal/sim"
)

// rig wires a primary task (cyclically dispatched) and a fallback task.
type rig struct {
	t            *testing.T
	k            *sim.Kernel
	os           *osek.OS
	mgr          *Manager
	app          runnable.AppID
	primary      runnable.TaskID
	primaryRID   runnable.ID
	primaryAlarm osek.AlarmID
	fbTask       runnable.TaskID
	fbRID        runnable.ID
	fbAlarm      osek.AlarmID
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{t: t, k: sim.NewKernel()}
	m := runnable.NewModel()
	var err error
	if r.app, err = m.AddApp("Primary", runnable.SafetyCritical); err != nil {
		t.Fatalf("AddApp: %v", err)
	}
	if r.primary, err = m.AddTask(r.app, "PrimaryTask", 5); err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	if r.primaryRID, err = m.AddRunnable(r.primary, "PrimaryRun", time.Millisecond, runnable.SafetyCritical); err != nil {
		t.Fatalf("AddRunnable: %v", err)
	}
	fbApp, err := m.AddApp("Fallback", runnable.SafetyRelevant)
	if err != nil {
		t.Fatalf("AddApp: %v", err)
	}
	if r.fbTask, err = m.AddTask(fbApp, "FallbackTask", 4); err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	if r.fbRID, err = m.AddRunnable(r.fbTask, "FallbackRun", time.Millisecond, runnable.SafetyRelevant); err != nil {
		t.Fatalf("AddRunnable: %v", err)
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if r.os, err = osek.New(osek.Config{Model: m, Kernel: r.k}); err != nil {
		t.Fatalf("osek.New: %v", err)
	}
	if err := r.os.DefineTask(r.primary, osek.TaskAttrs{MaxActivations: 2}, osek.Program{osek.Exec{Runnable: r.primaryRID}}); err != nil {
		t.Fatalf("DefineTask: %v", err)
	}
	if err := r.os.DefineTask(r.fbTask, osek.TaskAttrs{MaxActivations: 2}, osek.Program{osek.Exec{Runnable: r.fbRID}}); err != nil {
		t.Fatalf("DefineTask: %v", err)
	}
	if r.primaryAlarm, err = r.os.CreateAlarm("PrimaryAlarm", osek.ActivateAlarm(r.primary), true, 10*time.Millisecond, 10*time.Millisecond); err != nil {
		t.Fatalf("CreateAlarm: %v", err)
	}
	if r.fbAlarm, err = r.os.CreateAlarm("FallbackAlarm", osek.ActivateAlarm(r.fbTask), false, 0, 0); err != nil {
		t.Fatalf("CreateAlarm: %v", err)
	}
	if err := r.os.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if r.mgr, err = New(r.os); err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := r.mgr.AddFallback(Fallback{
		ForApp: r.app,
		Task:   r.fbTask,
		Alarm:  r.fbAlarm,
		Offset: 20 * time.Millisecond,
		Cycle:  20 * time.Millisecond,
	}); err != nil {
		t.Fatalf("AddFallback: %v", err)
	}
	return r
}

func terminateNotification(app runnable.AppID, at sim.Time) fmf.Notification {
	return fmf.Notification{Treatment: &fmf.Treatment{
		Time: at, Action: fmf.TerminateAppAction, App: app,
	}}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil OS accepted")
	}
	r := newRig(t)
	if err := r.mgr.AddFallback(Fallback{ForApp: r.app, Task: r.fbTask, Alarm: r.fbAlarm, Cycle: time.Second}); err == nil {
		t.Error("duplicate fallback accepted")
	}
	if err := r.mgr.AddFallback(Fallback{ForApp: runnable.AppID(5), Task: r.fbTask, Alarm: r.fbAlarm}); err == nil {
		t.Error("zero cycle accepted")
	}
}

func TestEngageOnTerminate(t *testing.T) {
	r := newRig(t)
	if err := r.k.Run(50 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.os.ExecCount(r.primaryRID) == 0 {
		t.Fatal("primary never ran")
	}
	if r.mgr.Engaged(r.app) {
		t.Fatal("engaged before termination")
	}
	// Simulate the FMF terminating the primary app.
	r.mgr.Notify(terminateNotification(r.app, r.k.Now()))
	if !r.mgr.Engaged(r.app) {
		t.Fatal("not engaged after terminate notification")
	}
	if err := r.k.Run(200 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.os.ExecCount(r.fbRID) == 0 {
		t.Fatal("fallback never dispatched after engagement")
	}
	log := r.mgr.Log()
	if len(log) != 1 || !log[0].Engaged || log[0].Err != nil {
		t.Fatalf("log = %+v", log)
	}
	// Double engage is a no-op.
	r.mgr.Notify(terminateNotification(r.app, r.k.Now()))
	if len(r.mgr.Log()) != 1 {
		t.Fatalf("double engage logged: %+v", r.mgr.Log())
	}
}

func TestRetireOnRestartTreatment(t *testing.T) {
	r := newRig(t)
	r.mgr.Notify(terminateNotification(r.app, 0))
	if !r.mgr.Engaged(r.app) {
		t.Fatal("not engaged")
	}
	r.mgr.Notify(fmf.Notification{Treatment: &fmf.Treatment{
		Action: fmf.RestartAppAction, App: r.app,
	}})
	if r.mgr.Engaged(r.app) {
		t.Fatal("still engaged after restart treatment")
	}
	before := r.os.ExecCount(r.fbRID)
	if err := r.k.Run(200 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.os.ExecCount(r.fbRID) != before {
		t.Fatal("fallback still dispatching after retirement")
	}
}

func TestRetireOnECUReset(t *testing.T) {
	r := newRig(t)
	r.mgr.Notify(terminateNotification(r.app, 0))
	r.mgr.Notify(fmf.Notification{Treatment: &fmf.Treatment{
		Action: fmf.ResetECUAction, App: runnable.NoID,
	}})
	if r.mgr.Engaged(r.app) {
		t.Fatal("still engaged after ECU reset")
	}
}

func TestNonTreatmentNotificationsIgnored(t *testing.T) {
	r := newRig(t)
	r.mgr.Notify(fmf.Notification{})
	if r.mgr.Engaged(r.app) || len(r.mgr.Log()) != 0 {
		t.Fatal("non-treatment notification acted on")
	}
	// Terminate of an app without fallback: ignored.
	r.mgr.Notify(terminateNotification(runnable.AppID(1), 0))
	if len(r.mgr.Log()) != 0 {
		t.Fatal("foreign app engaged something")
	}
}

func TestRestoreReappliesAutostart(t *testing.T) {
	r := newRig(t)
	// Terminate the primary for real (cancel its alarm + force terminate),
	// as the hil executor does, then engage.
	if err := r.os.CancelAlarm(r.primaryAlarm); err != nil {
		t.Fatalf("CancelAlarm: %v", err)
	}
	if err := r.os.ForceTerminate(r.primary); err != nil {
		t.Fatalf("ForceTerminate: %v", err)
	}
	r.mgr.Notify(terminateNotification(r.app, r.k.Now()))
	if err := r.k.Run(100 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	primaryBefore := r.os.ExecCount(r.primaryRID)
	// Restore: fallback retired, primary's autostart alarm re-armed.
	if err := r.mgr.Restore(r.app); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if r.mgr.Engaged(r.app) {
		t.Fatal("still engaged after Restore")
	}
	if err := r.k.Run(r.k.Now() + 200*sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.os.ExecCount(r.primaryRID) <= primaryBefore {
		t.Fatal("primary not dispatching after Restore")
	}
	// Restore of a not-engaged app is a no-op; unknown app errors.
	if err := r.mgr.Restore(r.app); err != nil {
		t.Fatalf("idempotent Restore: %v", err)
	}
	if err := r.mgr.Restore(runnable.AppID(7)); err == nil {
		t.Fatal("unknown app accepted")
	}
}
