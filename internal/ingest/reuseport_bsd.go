//go:build darwin || dragonfly || freebsd || netbsd || openbsd

package ingest

import "syscall"

// reusePortSupported: the BSDs (and darwin) define SO_REUSEPORT in the
// stdlib syscall package directly. Note the BSD semantics differ from
// linux — all-or-nothing delivery instead of flow-hash spreading on
// some of them — but the fan-out read loops are correct either way.
const reusePortSupported = true

// reusePortControl is the net.ListenConfig.Control hook that marks the
// socket for shared binding before bind(2) runs.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_REUSEPORT, 1)
	}); err != nil {
		return err
	}
	return serr
}
