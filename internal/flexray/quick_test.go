package flexray

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"swwd/internal/sim"
)

// Property: static-segment delivery is perfectly time-triggered — every
// frame from slot s in cycle c arrives exactly at
// c*cycleDuration + s*slotDuration, regardless of payload or load.
func TestQuickStaticSlotTiming(t *testing.T) {
	f := func(seed int64, slots8, cycles8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		slots := int(slots8%6) + 2
		cycles := int(cycles8%8) + 1
		cfg := Config{
			StaticSlots:  slots,
			SlotDuration: time.Duration(rng.Intn(400)+100) * time.Microsecond,
		}
		k := sim.NewKernel()
		b, err := NewBus(k, cfg)
		if err != nil {
			return false
		}
		tx := b.AttachNode("tx")
		rx := b.AttachNode("rx")
		slot := rng.Intn(slots) + 1
		if err := b.AssignSlot(slot, tx); err != nil {
			return false
		}
		type arrival struct {
			at    sim.Time
			cycle int
		}
		var got []arrival
		rx.Subscribe(func(f Frame) {
			got = append(got, arrival{k.Now(), f.Cycle})
		})
		k.Every(0, cfg.CycleDuration(), func() bool {
			return tx.WriteSlot(slot, []byte{1}) == nil
		})
		if err := b.Start(); err != nil {
			return false
		}
		if err := k.Run(sim.Time(cycles) * sim.Time(cfg.CycleDuration())); err != nil {
			return false
		}
		if len(got) != cycles {
			return false
		}
		for c, a := range got {
			want := sim.Time(c)*sim.Time(cfg.CycleDuration()) + sim.Time(slot)*sim.Time(cfg.SlotDuration)
			if a.at != want || a.cycle != c%64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
