package hil

import (
	"testing"
	"time"

	"swwd/internal/core"
	"swwd/internal/fmf"
	"swwd/internal/inject"
	"swwd/internal/sim"
	"swwd/internal/vehicle"
)

func TestFallbackRequiresTreatment(t *testing.T) {
	if _, err := New(Options{EnableFallback: true}); err == nil {
		t.Fatal("fallback without treatment accepted")
	}
}

func TestFallbackEngagesOnTermination(t *testing.T) {
	v := newValidator(t, Options{
		EnableTreatment: true,
		EnableFallback:  true,
	})
	if err := v.FMF.SetPolicy(v.SafeSpeed.App, fmf.TerminateApp); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	// Persistent flow fault: SafeSpeed is terminated, limp-home engages.
	branch := &inject.FlagFault{
		Label: "invalid-branch",
		Set:   func() { v.SafeSpeed.FaultBranch = 1 },
	}
	v.Injector.ApplyAt(5*sim.Second, branch)
	// Let the car reach the 80 km/h cruise first.
	if err := v.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.FallbackEngaged() {
		t.Fatal("fallback engaged before any fault")
	}
	if err := v.Run(60 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.FallbackEngaged() {
		t.Fatal("fallback never engaged after termination")
	}
	if v.FallbackExecutions() == 0 {
		t.Fatal("limp-home control never ran")
	}
	// SafeSpeed is gone...
	st, err := v.OS.State(v.SafeSpeed.Task)
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	if st.String() != "suspended" {
		t.Fatalf("SafeSpeed task state = %v, want suspended", st)
	}
	// ...but the vehicle is still governed: limp-home holds ~60 km/h
	// (driver demand is zero in degraded mode, so braking + drag
	// dominate: the car must be at or below the cap).
	got := vehicle.MsToKph(v.Long.Speed())
	if got > 62 {
		t.Fatalf("speed = %.1f km/h, want held at/below the 60 km/h limp cap", got)
	}
	// The reconfiguration was logged.
	log := v.Reconfig.Log()
	if len(log) == 0 || !log[0].Engaged || log[0].Err != nil {
		t.Fatalf("reconfig log = %+v", log)
	}
	// The degraded mode is itself supervised: its runnable is active.
	c, err := v.Watchdog.CounterSnapshot(v.FallbackRunnable)
	if err != nil {
		t.Fatalf("CounterSnapshot: %v", err)
	}
	if !c.Active {
		t.Fatal("fallback runnable not activated in the watchdog")
	}
}

func TestFallbackSupervisedAliveness(t *testing.T) {
	// Once limp-home is engaged and supervised, starving ITS dispatch
	// must produce aliveness errors too.
	v := newValidator(t, Options{
		EnableTreatment: true,
		EnableFallback:  true,
	})
	if err := v.FMF.SetPolicy(v.SafeSpeed.App, fmf.TerminateApp); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	branch := &inject.FlagFault{
		Label: "invalid-branch",
		Set:   func() { v.SafeSpeed.FaultBranch = 1 },
	}
	v.Injector.ApplyAt(2*sim.Second, branch)
	if err := v.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !v.FallbackEngaged() {
		t.Fatal("fallback not engaged")
	}
	// With SafeSpeed terminated AND its monitoring suspended, the only
	// active monitored runnable of that control path is limp-home; the
	// aliveness count must be quiet now.
	if err := v.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	before := v.Watchdog.Results().Aliveness
	if err := v.Run(2 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if quiet := v.Watchdog.Results().Aliveness; quiet != before {
		t.Fatalf("aliveness still accumulating on terminated app: %d -> %d", before, quiet)
	}
	// Starve the limp-home task: new aliveness errors must appear — the
	// degraded mode is supervised too.
	stretch := &inject.ExecStretch{OS: v.OS, Runnable: v.FallbackRunnable, Scale: 5000}
	if err := stretch.Apply(); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := v.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if after := v.Watchdog.Results().Aliveness; after == before {
		t.Fatalf("starved fallback produced no aliveness errors (still %d)", after)
	}
}

func TestFallbackRetiredOnRestartTreatment(t *testing.T) {
	// With the restart policy (and a transient fault) the fallback
	// engages never — restart treatments retire/never-engage it.
	v := newValidator(t, Options{
		EnableTreatment: true,
		EnableFallback:  true,
	})
	branch := &inject.FlagFault{
		Label: "invalid-branch",
		Set:   func() { v.SafeSpeed.FaultBranch = 1 },
		Unset: func() { v.SafeSpeed.FaultBranch = 0 },
	}
	if err := v.Injector.Window(2*sim.Second, 3*sim.Second, branch); err != nil {
		t.Fatalf("Window: %v", err)
	}
	if err := v.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.FallbackEngaged() {
		t.Fatal("fallback engaged under restart policy")
	}
	// System recovered normally.
	if st, _ := v.Watchdog.TaskState(v.SafeSpeed.Task); st != core.StateOK {
		t.Fatalf("task state = %v", st)
	}
}
