package wal

import "sync/atomic"

// ring is a bounded lock-free MPMC queue of Records (Vyukov's array
// queue): producers are the journal sink, the treatment action sink and
// the delta shipper — any goroutine, possibly inside the watchdog's
// cold-path mutex — and the consumer is the single writer goroutine.
// push never blocks and never allocates: a full ring refuses the record
// and the caller counts a drop, so the detection path can never stall
// on disk. Each cell's sequence atomic carries the acquire/release
// ordering for the plain Record copy it guards.
type ring struct {
	mask  uint64
	cells []cell

	_   [56]byte // keep enq and deq on separate cache lines
	enq atomic.Uint64
	_   [56]byte
	deq atomic.Uint64
}

type cell struct {
	seq atomic.Uint64
	rec Record
}

// newRing builds a queue with capacity size rounded up to a power of
// two (minimum 2).
func newRing(size int) *ring {
	n := 2
	for n < size {
		n <<= 1
	}
	r := &ring{mask: uint64(n) - 1, cells: make([]cell, n)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues a copy of rec, reporting false when the ring is full.
func (r *ring) push(rec *Record) bool {
	pos := r.enq.Load()
	for {
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				c.rec = *rec
				c.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case d < 0:
			return false
		default:
			pos = r.enq.Load()
		}
	}
}

// pop dequeues the oldest record into rec, reporting false when the
// ring is empty.
func (r *ring) pop(rec *Record) bool {
	pos := r.deq.Load()
	for {
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch d := int64(seq) - int64(pos+1); {
		case d == 0:
			if r.deq.CompareAndSwap(pos, pos+1) {
				*rec = c.rec
				c.seq.Store(pos + uint64(len(r.cells)))
				return true
			}
			pos = r.deq.Load()
		case d < 0:
			return false
		default:
			pos = r.deq.Load()
		}
	}
}

// depth approximates the queued record count (racy, for telemetry).
func (r *ring) depth() int {
	d := int64(r.enq.Load()) - int64(r.deq.Load())
	if d < 0 {
		d = 0
	}
	if d > int64(len(r.cells)) {
		d = int64(len(r.cells))
	}
	return int(d)
}
