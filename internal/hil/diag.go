package hil

import (
	"fmt"
	"time"

	"swwd/internal/osek"
	"swwd/internal/runnable"
)

// The diagnostics node models the paper's category-1 timing fault source:
// a low-priority task sharing the sensor-bus resource with SafeSpeed
// under the priority-ceiling protocol. Nominally its bus access is
// negligible; stretched by the error injector it holds the resource long
// enough to block GetSensorValue and starve SafeSpeed's heartbeats —
// "an object hangs as a result of a requested resource being blocked,
// either by the object itself or some other object" (§3).

// registerDiagnostics adds the diagnostics application to the model. Must
// run before Freeze.
func (v *Validator) registerDiagnostics() error {
	var err error
	if v.DiagApp, err = v.Model.AddApp("Diagnostics", runnable.QM); err != nil {
		return fmt.Errorf("hil: diagnostics: %w", err)
	}
	if v.DiagTask, err = v.Model.AddTask(v.DiagApp, "DiagTask", 2); err != nil {
		return fmt.Errorf("hil: diagnostics: %w", err)
	}
	if v.DiagRunnable, err = v.Model.AddRunnable(v.DiagTask, "DiagFlush",
		200*time.Microsecond, runnable.QM); err != nil {
		return fmt.Errorf("hil: diagnostics: %w", err)
	}
	return nil
}

// wireDiagnostics declares the shared sensor-bus resource, guards
// SafeSpeed's sensor read with it, and defines the diagnostic task. Must
// run after the OS exists and before SafeSpeed.Register.
func (v *Validator) wireDiagnostics() error {
	res, err := v.OS.DeclareResource("SensorBus", v.SafeSpeed.Task, v.DiagTask)
	if err != nil {
		return fmt.Errorf("hil: diagnostics: %w", err)
	}
	v.SensorBus = res
	v.SafeSpeed.SensorResource = &v.SensorBus
	if err := v.OS.DefineTask(v.DiagTask, osek.TaskAttrs{MaxActivations: 2}, osek.Program{
		osek.Lock{Resource: res},
		osek.Exec{Runnable: v.DiagRunnable},
		osek.Unlock{Resource: res},
	}); err != nil {
		return fmt.Errorf("hil: diagnostics: %w", err)
	}
	if v.DiagAlarm, err = v.OS.CreateAlarm("DiagAlarm",
		osek.ActivateAlarm(v.DiagTask), true, 100*time.Millisecond, 100*time.Millisecond); err != nil {
		return fmt.Errorf("hil: diagnostics: %w", err)
	}
	return nil
}
