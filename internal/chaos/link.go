package chaos

// The fault-injecting link layer. Network hands each reporter a dialer
// (via swwdclient.WithDialer) whose conns route every datagram through
// the node's active Rules: drops, duplication, reordering, partitions,
// byzantine mutation. Interposing at the conn — rather than a proxy
// socket — keeps per-node attribution trivial and adds no extra hop
// whose own scheduling could perturb timing.
//
// Soundness note: an oracle asserting "healthy nodes raise zero
// aliveness faults" is only deterministic if probabilistic loss can
// never starve a whole grace window. LossBurstCap provides that bound:
// it caps *consecutive* lost frames (drops and corruptions share the
// counter), so a window of GraceFrames > LossBurstCap frames always
// delivers at least one. Partitions deliberately have no such cap —
// starving the window is their purpose.

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"swwd/internal/wire"
)

// Rules is the active fault set on one node's link. The zero value is
// a clean link. Probabilities are per-datagram in [0, 1].
type Rules struct {
	// Partition blackholes the reporter→server direction entirely.
	Partition bool
	// UpDrop / DownDrop lose heartbeat frames (up) or command frames
	// (down) with the given probability.
	UpDrop   float64
	DownDrop float64
	// DownDup re-delivers a command frame (the server→client path's
	// duplication); DownReorder > 1 holds that many command frames back
	// and releases them shuffled. Both exercise the command channel's
	// idempotence and seq discipline rather than the heartbeat path.
	DownDup     float64
	DownReorder int
	// LossBurstCap bounds consecutive up-direction losses (drops plus
	// corruptions); 0 means unbounded. Campaigns whose oracles assert
	// zero false positives must set it below GraceFrames.
	LossBurstCap int
	// DupProb re-sends the frame just written; ReplayProb re-sends a
	// stashed frame from earlier in the session (a byzantine replay).
	DupProb    float64
	ReplayProb float64
	// ReorderWindow > 1 buffers that many frames and releases them
	// shuffled, delaying every frame by up to window×interval.
	ReorderWindow int
	// CorruptProb flips one bit in the frame's magic/version bytes — a
	// guaranteed decode error, never a reroute to another node.
	CorruptProb float64
	// StaleProb sends an extra copy of the frame stamped with the
	// previous session epoch: a stale-epoch straggler.
	StaleProb float64
	// EpochLie, when non-zero, is added to every frame's session epoch:
	// the reporter claims to be a newer incarnation than it is.
	EpochLie uint64
	// SkewIntervalMs, when non-zero, overwrites the declared flush
	// interval: the reporter lies about its cadence.
	SkewIntervalMs uint32
}

// active reports whether any fault is switched on.
func (r Rules) active() bool { return r != Rules{} }

// String renders the non-zero rules for plans and logs.
func (r Rules) String() string {
	if !r.active() {
		return "clean"
	}
	s := ""
	add := func(format string, args ...any) {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf(format, args...)
	}
	if r.Partition {
		add("partition")
	}
	if r.UpDrop > 0 {
		add("updrop=%g", r.UpDrop)
	}
	if r.DownDrop > 0 {
		add("downdrop=%g", r.DownDrop)
	}
	if r.DownDup > 0 {
		add("downdup=%g", r.DownDup)
	}
	if r.DownReorder > 1 {
		add("downreorder=%d", r.DownReorder)
	}
	if r.LossBurstCap > 0 {
		add("burstcap=%d", r.LossBurstCap)
	}
	if r.DupProb > 0 {
		add("dup=%g", r.DupProb)
	}
	if r.ReplayProb > 0 {
		add("replay=%g", r.ReplayProb)
	}
	if r.ReorderWindow > 1 {
		add("reorder=%d", r.ReorderWindow)
	}
	if r.CorruptProb > 0 {
		add("corrupt=%g", r.CorruptProb)
	}
	if r.StaleProb > 0 {
		add("stale=%g", r.StaleProb)
	}
	if r.EpochLie != 0 {
		add("epochlie=+%d", r.EpochLie)
	}
	if r.SkewIntervalMs != 0 {
		add("skew=%dms", r.SkewIntervalMs)
	}
	return s
}

// LinkStats is a snapshot of one node's link-layer fault counters —
// what the chaos layer actually did, for oracle Extra checks and run
// artifacts.
type LinkStats struct {
	UpDropped      uint64
	DownDropped    uint64
	DownDuplicated uint64
	DownReordered  uint64
	Duplicated     uint64
	Replayed       uint64
	Reordered      uint64
	Corrupted      uint64
	Stale          uint64
	Skewed         uint64
	EpochLied      uint64
}

// Network owns the per-node fault state for one campaign run.
type Network struct {
	nodes []*nodeNet
}

// NewNetwork creates the link layer for nodes reporters, deriving each
// node's RNG streams from the campaign seed.
func NewNetwork(seed uint64, nodes int) *Network {
	nw := &Network{nodes: make([]*nodeNet, nodes)}
	for n := range nw.nodes {
		nw.nodes[n] = &nodeNet{
			upRNG:   NewRNG(Derive(seed, uint64(n)*2)),
			downRNG: NewRNG(Derive(seed, uint64(n)*2+1)),
		}
	}
	return nw
}

// DialerFor returns the swwdclient dialer routing node n's traffic
// through the fault layer.
func (nw *Network) DialerFor(n uint32) func(addr string) (net.Conn, error) {
	nn := nw.nodes[n]
	return func(addr string) (net.Conn, error) {
		inner, err := net.Dial("udp", addr)
		if err != nil {
			return nil, err
		}
		return &linkConn{Conn: inner, nn: nn}, nil
	}
}

// SetRules replaces node n's active rules. Dropping the reorder rule
// flushes any buffered frames in their buffered order, so a rules
// change never strands (and thereby loses) frames.
func (nw *Network) SetRules(n uint32, r Rules) {
	nn := nw.nodes[n]
	nn.rules.Store(&r)
	if r.ReorderWindow <= 1 {
		nn.mu.Lock()
		nn.flushReorderLocked(nil, nn.lastConn)
		nn.mu.Unlock()
	}
}

// Clear resets node n to a clean link.
func (nw *Network) Clear(n uint32) { nw.SetRules(n, Rules{}) }

// Stats snapshots node n's link-layer counters.
func (nw *Network) Stats(n uint32) LinkStats {
	nn := nw.nodes[n]
	return LinkStats{
		UpDropped:      nn.upDropped.Load(),
		DownDropped:    nn.downDropped.Load(),
		DownDuplicated: nn.downDuplicated.Load(),
		DownReordered:  nn.downReordered.Load(),
		Duplicated:     nn.duplicated.Load(),
		Replayed:       nn.replayed.Load(),
		Reordered:      nn.reordered.Load(),
		Corrupted:      nn.corrupted.Load(),
		Stale:          nn.stale.Load(),
		Skewed:         nn.skewed.Load(),
		EpochLied:      nn.epochLied.Load(),
	}
}

// nodeNet is one node's fault state, shared by every conn the node
// dials (including backoff redials).
type nodeNet struct {
	rules atomic.Pointer[Rules]

	// mu guards the write path's mutable state. Holding it across the
	// inner UDP write is fine — loopback sends don't block.
	mu         sync.Mutex
	upRNG      *RNG
	stash      []byte   // last clean frame, for replay
	reorder    [][]byte // buffered frames awaiting a shuffled flush
	consecLoss int      // consecutive up-direction losses, for LossBurstCap
	lastConn   net.Conn // most recent conn, for flushing on rules changes

	// downMu guards the read path's RNG and pending buffer separately:
	// Read blocks in the kernel and must not hold the write-path lock
	// (the blocking inner Read itself runs with downMu released).
	downMu  sync.Mutex
	downRNG *RNG
	// downPending holds command frames awaiting delivery: duplicates to
	// re-serve and reorder-window frames held back. Served ahead of the
	// socket; once the reorder rule is dropped, the next Reads drain it
	// in order, so a rules change never strands a command.
	downPending [][]byte

	upDropped      atomic.Uint64
	downDropped    atomic.Uint64
	downDuplicated atomic.Uint64
	downReordered  atomic.Uint64
	duplicated     atomic.Uint64
	replayed       atomic.Uint64
	reordered      atomic.Uint64
	corrupted      atomic.Uint64
	stale          atomic.Uint64
	skewed         atomic.Uint64
	epochLied      atomic.Uint64
}

// linkConn is the connected-UDP wrapper the dialer returns.
type linkConn struct {
	net.Conn
	nn *nodeNet
}

// Write routes one outgoing heartbeat frame through the node's rules.
// A dropped frame reports success — the reporter must not observe the
// loss and enter its backoff path; UDP loss is silent by nature.
func (c *linkConn) Write(b []byte) (int, error) {
	nn := c.nn
	rp := nn.rules.Load()
	var r Rules
	if rp != nil {
		r = *rp
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.lastConn = c.Conn
	if r.ReorderWindow <= 1 {
		// The reorder rule was dropped since the last write: release
		// anything still buffered ahead of this frame.
		nn.flushReorderLocked(nil, c.Conn)
	}
	if !r.active() {
		return c.Conn.Write(b)
	}

	if r.Partition {
		nn.upDropped.Add(1)
		return len(b), nil
	}
	if r.UpDrop > 0 && nn.lossAllowedLocked(r) && nn.upRNG.Chance(r.UpDrop) {
		nn.consecLoss++
		nn.upDropped.Add(1)
		return len(b), nil
	}

	// Mutations work on a copy: the caller reuses its buffer, and the
	// replay stash and reorder buffer outlive this call anyway.
	frame := append([]byte(nil), b...)
	corrupted := false
	if len(frame) >= wire.HeaderSize {
		if r.EpochLie != 0 {
			epoch := binary.LittleEndian.Uint64(frame[8:16])
			binary.LittleEndian.PutUint64(frame[8:16], epoch+r.EpochLie)
			nn.epochLied.Add(1)
		}
		if r.SkewIntervalMs != 0 {
			binary.LittleEndian.PutUint32(frame[40:44], r.SkewIntervalMs)
			nn.skewed.Add(1)
		}
		if r.CorruptProb > 0 && nn.lossAllowedLocked(r) && nn.upRNG.Chance(r.CorruptProb) {
			// Flip one bit inside magic/version only: always a decode
			// error, never a frame rerouted to another registered node
			// (which would poison that node's sequence tracking and
			// fabricate false positives).
			bit := nn.upRNG.Intn(24)
			frame[bit/8] ^= 1 << (bit % 8)
			nn.consecLoss++
			nn.corrupted.Add(1)
			corrupted = true
		}
	}
	if !corrupted {
		nn.consecLoss = 0
	}

	if r.ReorderWindow > 1 {
		nn.reorder = append(nn.reorder, frame)
		if len(nn.reorder) >= r.ReorderWindow {
			nn.flushReorderLocked(nn.upRNG, c.Conn)
		}
		return len(b), nil
	}

	if _, err := c.Conn.Write(frame); err != nil {
		return 0, err
	}
	if r.DupProb > 0 && nn.upRNG.Chance(r.DupProb) {
		_, _ = c.Conn.Write(frame)
		nn.duplicated.Add(1)
	}
	// Replay rolls before the stash updates, so a replayed frame is
	// strictly older than the one just sent.
	if r.ReplayProb > 0 && nn.stash != nil && nn.upRNG.Chance(r.ReplayProb) {
		_, _ = c.Conn.Write(nn.stash)
		nn.replayed.Add(1)
	}
	if !corrupted {
		nn.stash = frame
	}
	if r.StaleProb > 0 && !corrupted && len(frame) >= wire.HeaderSize && nn.upRNG.Chance(r.StaleProb) {
		if epoch := binary.LittleEndian.Uint64(frame[8:16]); epoch > 1 {
			old := append([]byte(nil), frame...)
			binary.LittleEndian.PutUint64(old[8:16], epoch-1)
			_, _ = c.Conn.Write(old)
			nn.stale.Add(1)
		}
	}
	return len(b), nil
}

// Read routes incoming command frames through the down-direction
// rules: dropped datagrams are silently consumed, duplicates are
// re-served on the next call, and a reorder window holds frames back
// until it fills, then releases them shuffled — one per call, since
// each Read returns exactly one datagram.
func (c *linkConn) Read(b []byte) (int, error) {
	nn := c.nn
	for {
		// Serve held-back frames (duplicates, reorder releases) ahead of
		// the socket. While the reorder rule is on, the buffer only opens
		// once it reaches the window; with the rule off it drains in
		// order immediately.
		nn.downMu.Lock()
		var r Rules
		if rp := nn.rules.Load(); rp != nil {
			r = *rp
		}
		if len(nn.downPending) > 0 && (r.DownReorder <= 1 || len(nn.downPending) >= r.DownReorder) {
			f := nn.downPending[0]
			nn.downPending = nn.downPending[1:]
			nn.downMu.Unlock()
			return copy(b, f), nil
		}
		nn.downMu.Unlock()

		n, err := c.Conn.Read(b)
		if err != nil {
			return n, err
		}
		rp := nn.rules.Load()
		if rp == nil || !rp.active() {
			return n, nil
		}
		r = *rp
		if r.Partition {
			nn.downDropped.Add(1)
			continue
		}
		nn.downMu.Lock()
		if r.DownDrop > 0 && nn.downRNG.Chance(r.DownDrop) {
			nn.downMu.Unlock()
			nn.downDropped.Add(1)
			continue
		}
		if r.DownReorder > 1 {
			// Hold the frame back at a random position; the loop head
			// releases the buffer once it reaches the window.
			f := append([]byte(nil), b[:n]...)
			i := nn.downRNG.Intn(len(nn.downPending) + 1)
			nn.downPending = append(nn.downPending, nil)
			copy(nn.downPending[i+1:], nn.downPending[i:])
			nn.downPending[i] = f
			nn.downReordered.Add(1)
			nn.downMu.Unlock()
			continue
		}
		if r.DownDup > 0 && nn.downRNG.Chance(r.DownDup) {
			nn.downPending = append(nn.downPending, append([]byte(nil), b[:n]...))
			nn.downDuplicated.Add(1)
		}
		nn.downMu.Unlock()
		return n, nil
	}
}

// lossAllowedLocked reports whether LossBurstCap permits losing one
// more consecutive frame.
func (nn *nodeNet) lossAllowedLocked(r Rules) bool {
	return r.LossBurstCap <= 0 || nn.consecLoss < r.LossBurstCap
}

// flushReorderLocked releases the reorder buffer, shuffled by rng when
// one is supplied (the in-window flush) or in buffered order when nil
// (a rules change draining stragglers).
func (nn *nodeNet) flushReorderLocked(rng *RNG, conn net.Conn) {
	if len(nn.reorder) == 0 || conn == nil {
		return
	}
	frames := nn.reorder
	nn.reorder = nil
	if rng != nil {
		for i := len(frames) - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			frames[i], frames[j] = frames[j], frames[i]
		}
		nn.reordered.Add(uint64(len(frames)))
	}
	for _, f := range frames {
		_, _ = conn.Write(f)
	}
}
