package experiments

import (
	"fmt"
	"time"

	"swwd/internal/core"
	"swwd/internal/hil"
	"swwd/internal/sim"
)

// DistributedResult summarises X3: the Software Watchdog deployed on two
// ECUs of the validator topology, with the remote node's fault reports
// crossing the CAN bus to the central node (§5: "improving dependability
// in distributed in-vehicle embedded systems").
type DistributedResult struct {
	// RemoteDetections is the remote watchdog's local count.
	RemoteDetections uint64
	// ReportsSent counts fault frames queued onto CAN by the remote ECU.
	ReportsSent uint64
	// ReportsReceived counts reports decoded by the central node.
	ReportsReceived int
	// FirstReportLatency is the delay from injection to the first
	// centrally received report.
	FirstReportLatency time.Duration
	// CentralClean reports that the central ECU's own monitoring stayed
	// quiet (no cross-talk).
	CentralClean bool
}

// Distributed runs X3: an invalid branch on the remote ECU at t = 3 s,
// observed centrally via CAN.
func Distributed() (*DistributedResult, error) {
	v, err := hil.New(hil.Options{WithNetworks: true, WithRemoteECU: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: distributed: %w", err)
	}
	const injectAt = 3 * sim.Second
	v.Kernel.At(injectAt, func() { v.Remote.FaultBranch = 1 })
	if err := v.Run(8 * time.Second); err != nil {
		return nil, fmt.Errorf("experiments: distributed: %w", err)
	}
	res := &DistributedResult{
		RemoteDetections: v.Remote.Watchdog.Results().ProgramFlow,
		ReportsSent:      v.Remote.Reported(),
		CentralClean:     v.Watchdog.Results() == core.Results{},
	}
	remote := v.Net.RemoteFaults()
	res.ReportsReceived = len(remote)
	if len(remote) > 0 {
		res.FirstReportLatency = remote[0].Time.Sub(injectAt)
	}
	return res, nil
}
