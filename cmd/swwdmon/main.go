// Command swwdmon runs the Software Watchdog as a standalone monitoring
// process for external programs: the monitored system is described by a
// JSON spec file (see swwd.Spec), heartbeats arrive as runnable names on
// stdin (one per line, e.g. piped from the supervised process's log), and
// detections and state changes are printed as they happen.
//
// Usage:
//
//	swwdmon -spec system.json [-duration 10s] [-quiet] [-metrics :8080]
//
// Example:
//
//	my-app --heartbeat-log /dev/stdout | swwdmon -spec system.json
//
// With -metrics the process additionally serves its live telemetry (see
// metrics.go): Prometheus text on /metrics, expvar JSON on /debug/vars
// and pprof on /debug/pprof:
//
//	swwdmon -spec system.json -metrics :8080 &
//	curl -s localhost:8080/metrics | grep swwd_
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"swwd"
)

// printSink streams watchdog output to stdout.
type printSink struct {
	mu    sync.Mutex
	quiet bool

	faults uint64
	states uint64
}

func (s *printSink) Fault(r swwd.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults++
	if !s.quiet {
		fmt.Printf("%v FAULT %s runnable=%d observed=%d expected=%d\n",
			time.Duration(r.Time), r.Kind, r.Runnable, r.Observed, r.Expected)
	}
}

func (s *printSink) StateChanged(e swwd.StateEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.states++
	fmt.Printf("%v STATE %s -> %s (cause %s)\n", time.Duration(e.Time), e.Scope, e.State, e.Cause)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "swwdmon: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	specPath := flag.String("spec", "", "path to the system spec (JSON)")
	duration := flag.Duration("duration", 0, "stop after this long (0 = until stdin closes)")
	quiet := flag.Bool("quiet", false, "suppress per-fault output, print state changes and the final summary only")
	metrics := flag.String("metrics", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address (e.g. :8080)")
	pushURL := flag.String("push-url", "", "POST the /metrics payload to this URL on an interval (push export sink)")
	pushInterval := flag.Duration("push-interval", 0, "push sink delivery cadence (0 = export default)")
	flag.Parse()
	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	f, err := os.Open(*specPath)
	if err != nil {
		return err
	}
	spec, err := swwd.LoadSpec(f)
	closeErr := f.Close()
	if err != nil {
		return err
	}
	if closeErr != nil {
		return closeErr
	}

	sink := &printSink{quiet: *quiet}
	sys, err := spec.Build(nil, sink)
	if err != nil {
		return err
	}
	svc, err := swwd.NewService(sys.Watchdog, 0)
	if err != nil {
		return err
	}
	if err := svc.Start(); err != nil {
		return err
	}
	defer svc.Stop()
	fmt.Printf("monitoring %d runnables, cycle %v\n", sys.Model.NumRunnables(), sys.Watchdog.CyclePeriod())

	if *metrics != "" || *pushURL != "" {
		ms := newMetricsServer(svc, sys)
		if *pushURL != "" {
			if err := ms.startPush(*pushURL, *pushInterval); err != nil {
				return err
			}
			defer ms.push.Stop()
			fmt.Printf("pushing metrics to %s\n", *pushURL)
		}
		if *metrics != "" {
			go func() {
				if err := ms.serve(*metrics); err != nil {
					fmt.Fprintf(os.Stderr, "swwdmon: metrics server: %v\n", err)
				}
			}()
			fmt.Printf("metrics on %s (/metrics, /healthz, /debug/vars, /debug/pprof)\n", *metrics)
		}
	}

	done := make(chan error, 1)
	go func() {
		scanner := bufio.NewScanner(os.Stdin)
		for scanner.Scan() {
			sys.Heartbeat(scanner.Text())
		}
		done <- scanner.Err()
	}()

	if *duration > 0 {
		select {
		case err := <-done:
			if err != nil {
				return err
			}
		case <-time.After(*duration):
		}
	} else if err := <-done; err != nil {
		return err
	}

	res := sys.Watchdog.Results()
	fmt.Printf("summary: aliveness=%d arrival-rate=%d program-flow=%d\n",
		res.Aliveness, res.ArrivalRate, res.ProgramFlow)
	return nil
}
