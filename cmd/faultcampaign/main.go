// Command faultcampaign runs a configurable fault-injection campaign
// against the validator simulation and reports detection coverage and
// latency per fault class — the "further analysis of fault detection
// coverage" the paper's outlook calls for.
//
// Usage:
//
//	faultcampaign [-runs 20] [-horizon 5s] [-seed 1] [-class all|aliveness|arrival|flow|hang]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"swwd/internal/core"
	"swwd/internal/hil"
	"swwd/internal/inject"
	"swwd/internal/sim"
)

type classDef struct {
	name string
	kind core.ErrorKind
	// build creates the injection with an intensity drawn in [0,1); the
	// mapping from intensity to parameters is class-specific.
	build func(v *hil.Validator, intensity float64) inject.Injection
}

func classes() []classDef {
	return []classDef{
		{
			name: "aliveness",
			kind: core.AlivenessError,
			build: func(v *hil.Validator, x float64) inject.Injection {
				// scale 2..12
				return &inject.AlarmRateScale{OS: v.OS, Alarm: v.SafeSpeedAlarm, Scale: 2 + 10*x}
			},
		},
		{
			name: "arrival",
			kind: core.ArrivalRateError,
			build: func(v *hil.Validator, x float64) inject.Injection {
				// burst period 2..10ms
				period := time.Duration(2+8*x) * time.Millisecond
				return &inject.BurstDispatch{OS: v.OS, Task: v.SafeSpeed.Task, Period: period}
			},
		},
		{
			name: "flow",
			kind: core.ProgramFlowError,
			build: func(v *hil.Validator, _ float64) inject.Injection {
				return &inject.FlagFault{
					Label: "invalid-branch",
					Set:   func() { v.SafeSpeed.FaultBranch = 1 },
					Unset: func() { v.SafeSpeed.FaultBranch = 0 },
				}
			},
		},
		{
			name: "hang",
			kind: core.AlivenessError,
			build: func(v *hil.Validator, x float64) inject.Injection {
				// stretch 50x..250x
				return &inject.ExecStretch{OS: v.OS, Runnable: v.SafeSpeed.SAFECCProcess, Scale: 50 + 200*x}
			},
		},
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "faultcampaign: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	runs := flag.Int("runs", 20, "injections per fault class")
	horizon := flag.Duration("horizon", 5*time.Second, "observation window after injection")
	seed := flag.Int64("seed", 1, "campaign seed (injection instants and intensities)")
	classFilter := flag.String("class", "all", "fault class: all|aliveness|arrival|flow|hang")
	csvPath := flag.String("csv", "", "write per-run results to this CSV file")
	flag.Parse()
	if *runs <= 0 {
		return fmt.Errorf("runs must be positive")
	}

	var csvw *csv.Writer
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		csvw = csv.NewWriter(f)
		defer csvw.Flush()
		if err := csvw.Write([]string{"class", "run", "inject_at_ms", "intensity", "detected", "latency_ms"}); err != nil {
			return err
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("fault campaign: %d runs/class, horizon %v, seed %d\n\n", *runs, *horizon, *seed)
	fmt.Printf("%-10s %9s %9s %14s %14s %14s\n",
		"class", "detected", "coverage", "min latency", "mean latency", "max latency")

	for _, cd := range classes() {
		if *classFilter != "all" && *classFilter != cd.name {
			continue
		}
		detected := 0
		var minLat, maxLat, totalLat time.Duration
		for i := 0; i < *runs; i++ {
			at := sim.Time(500+rng.Intn(2500)) * sim.Millisecond
			intensity := rng.Float64()
			v, err := hil.New(hil.Options{})
			if err != nil {
				return err
			}
			v.Injector.ApplyAt(at, cd.build(v, intensity))
			if err := v.Run(at.Duration() + *horizon); err != nil {
				return err
			}
			var first sim.Time
			for _, r := range v.FMF.FaultLog() {
				if r.Kind == cd.kind {
					first = r.Time
					break
				}
			}
			var lat time.Duration
			if first > 0 {
				detected++
				lat = first.Sub(at)
				totalLat += lat
				if minLat == 0 || lat < minLat {
					minLat = lat
				}
				if lat > maxLat {
					maxLat = lat
				}
			}
			if csvw != nil {
				if err := csvw.Write([]string{
					cd.name,
					strconv.Itoa(i),
					strconv.FormatInt(at.Duration().Milliseconds(), 10),
					strconv.FormatFloat(intensity, 'f', 3, 64),
					strconv.FormatBool(first > 0),
					strconv.FormatInt(lat.Milliseconds(), 10),
				}); err != nil {
					return err
				}
			}
		}
		coverage := float64(detected) / float64(*runs) * 100
		mean := time.Duration(0)
		if detected > 0 {
			mean = totalLat / time.Duration(detected)
		}
		fmt.Printf("%-10s %6d/%-2d %8.1f%% %14v %14v %14v\n",
			cd.name, detected, *runs, coverage, minLat, mean, maxLat)
	}
	fmt.Println("\nnote: latencies are dominated by the hypothesis window (aliveness/arrival")
	fmt.Println("are checked at period end); flow errors are event-triggered and detected")
	fmt.Println(strings.TrimSpace("within one task period."))
	return nil
}
