//go:build !race

// Scaled soak: the million-node-track ingestion path — SO_REUSEPORT
// listener group, recvmmsg batching, shard fan-out — under a synthetic
// fleet far beyond what per-node swwdclient goroutines can simulate.
// Four paced sender flows synthesize frames for every node directly
// (one encoder per flow, disjoint node ranges, monotonic per-node
// sequence numbers), so the test scales by frame rate instead of by
// goroutine count.
//
// Two tiers share every assertion:
//
//   - the default tier (a few thousand nodes) runs in plain `go test`
//     as part of tier-1;
//   - SWWD_SOAK_SCALE=1 (the `make soak-scale` target and the CI soak
//     job) raises the fleet to 100k nodes on a 2s flush interval —
//     50k frames/s aggregate — which only fits the un-raced runtime.
//
// Mid-soak, three victim nodes go silent; the test asserts the wire
// stayed perfect (zero decode errors, duplicate drops, dropped packets
// or exhausted buffers at any tier) and the only faults in the system
// are the injected aliveness faults on the victims' runnables.
package ingest_test

import (
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swwd"
	"swwd/internal/core"
	"swwd/internal/ingest"
	"swwd/internal/wire"
)

func TestIngestScaledSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled soak skipped in -short mode")
	}
	// Default tier: small enough for tier-1. Scale tier: 100k nodes.
	nodes, interval, cycle := 2000, 500*time.Millisecond, 25*time.Millisecond
	if os.Getenv("SWWD_SOAK_SCALE") == "1" {
		// 100k nodes on a 5s flush interval: 20k frames/s aggregate,
		// sustained (the senders spread each pass across the whole
		// interval — see chunkFrames below).
		nodes, interval, cycle = 100_000, 5*time.Second, 250*time.Millisecond
	}
	const (
		senders     = 4
		graceFrames = 3
		victims     = 3
	)
	window := time.Duration(graceFrames) * interval

	fleet, err := ingest.BuildFleet(ingest.FleetConfig{
		Nodes:            nodes,
		RunnablesPerNode: 1,
		Interval:         interval,
		CyclePeriod:      cycle,
		GraceFrames:      graceFrames,
		Listeners:        4,
		BatchSize:        32,
		Shards:           8,
		QueueLen:         2048,
	})
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	addr, err := fleet.Server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer fleet.Server.Close()

	// dead[n] silences node n; senders skip it from the next round on.
	dead := make([]atomic.Bool, nodes)
	stop := make(chan struct{})
	var maxPassNs atomic.Int64 // slowest full sender pass, for the log
	var wg sync.WaitGroup
	for sdr := 0; sdr < senders; sdr++ {
		wg.Add(1)
		go func(sdr int) {
			defer wg.Done()
			conn, err := net.Dial("udp", addr.String())
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer conn.Close()
			own := make([]uint32, 0, nodes/senders+1)
			for n := sdr; n < nodes; n += senders {
				own = append(own, uint32(n))
			}
			seqs := make([]uint64, len(own))
			frame := wire.Frame{Epoch: 1, IntervalMs: uint32(interval / time.Millisecond),
				Beats: []wire.BeatRec{{Runnable: 0, Beats: 1}}}
			buf := make([]byte, 0, 64)
			// Pace WITHIN the pass, not only between passes: one UDP flow
			// hashes to a single socket of the reuseport group, and a
			// flat-out pass of tens of thousands of frames overruns that
			// socket's kernel receive buffer — the kernel drops the
			// overflow silently and healthy nodes read as silent. Sending
			// in small chunks on sub-interval deadlines keeps the burst
			// depth bounded by chunkFrames regardless of fleet size.
			const chunkFrames = 250
			for {
				start := time.Now()
				for base := 0; base < len(own); base += chunkFrames {
					end := base + chunkFrames
					if end > len(own) {
						end = len(own)
					}
					for k := base; k < end; k++ {
						n := own[k]
						if dead[n].Load() {
							continue
						}
						seqs[k]++
						frame.Node = n
						frame.Seq = seqs[k]
						var err error
						buf, err = wire.AppendFrame(buf[:0], &frame)
						if err != nil {
							t.Errorf("AppendFrame: %v", err)
							return
						}
						_, _ = conn.Write(buf)
					}
					// This chunk's share of the interval ends at
					// end/len(own) of it; sleep off whatever remains.
					due := start.Add(interval * time.Duration(end) / time.Duration(len(own)))
					if rest := time.Until(due); rest > 0 {
						select {
						case <-stop:
							return
						case <-time.After(rest):
						}
					} else {
						select {
						case <-stop:
							return
						default:
						}
					}
				}
				if pass := time.Since(start); int64(pass) > maxPassNs.Load() {
					maxPassNs.Store(int64(pass))
				}
			}
		}(sdr)
	}
	defer func() { close(stop); wg.Wait() }()

	// Warm-up: every node reports at least once before sweeps begin.
	warmStart := time.Now()
	deadline := warmStart.Add(2*interval + 30*time.Second)
	for fleet.Server.Stats().Accepted < uint64(nodes) {
		if time.Now().After(deadline) {
			t.Fatalf("fleet warm-up timed out: stats %+v", fleet.Server.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Logf("%d nodes warm in %v", nodes, time.Since(warmStart))

	svc, err := swwd.NewService(fleet.Watchdog, cycle)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer svc.Stop()

	// Healthy window: a full grace window with every node beating must
	// stay detection-free.
	time.Sleep(window + window/2)
	if res := fleet.Watchdog.Results(); res != (core.Results{}) {
		t.Fatalf("detections on a healthy fleet: %+v", res)
	}

	// Silence three victims spread across the sender ranges.
	victimIDs := []int{nodes / 5, nodes / 2, nodes - 1}
	killed := time.Now()
	for _, v := range victimIDs {
		dead[v].Store(true)
	}

	// Every victim's link fault must land within the grace window (plus
	// one window for a beat banked pre-kill, plus slack for a loaded
	// runner at the 100k tier).
	bound := 2*window + 10*time.Second
	for _, v := range victimIDs {
		link := fleet.Specs[v].Link
		for {
			faults, _, _, err := fleet.Watchdog.RunnableErrors(link)
			if err != nil {
				t.Fatalf("RunnableErrors: %v", err)
			}
			if faults >= 1 {
				break
			}
			if time.Since(killed) > bound {
				t.Fatalf("no link fault on victim node %d within %v", v, bound)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	t.Logf("all %d victim link faults within %v (window %v)", victims, time.Since(killed), window)

	// Let the survivors soak one more window around the corpses, then
	// stop sweeping before the senders wind down.
	time.Sleep(window)
	_ = svc.Stop()

	elapsed := time.Since(warmStart)
	st := fleet.Server.Stats()
	t.Logf("soak: %d frames accepted in %v (%.0f frames/s), listeners=%d, slowest pass %v",
		st.Accepted, elapsed, float64(st.Accepted)/elapsed.Seconds(), st.Listeners,
		time.Duration(maxPassNs.Load()))

	// The wire stayed perfect end to end at either tier.
	if st.DecodeErrors != 0 || st.UnknownNode != 0 || st.DuplicateDrops != 0 ||
		st.BuffersExhausted != 0 || st.DroppedPackets != 0 ||
		st.NodeRestarts != 0 || st.StaleEpochDrops != 0 || st.IntervalMismatch != 0 {
		t.Fatalf("wire errors during soak: %+v", st)
	}

	// Exactly the injected faults: every detection attributes to a
	// victim's runnables, and every victim faulted.
	isVictim := make(map[int]bool, victims)
	for _, v := range victimIDs {
		isVictim[v] = true
	}
	for n, spec := range fleet.Specs {
		if isVictim[n] {
			continue
		}
		rids := append([]swwd.RunnableID{spec.Link}, spec.Runnables...)
		for _, rid := range rids {
			a, ar, pf, err := fleet.Watchdog.RunnableErrors(rid)
			if err != nil {
				t.Fatalf("RunnableErrors(%d): %v", rid, err)
			}
			if a != 0 || ar != 0 || pf != 0 {
				t.Fatalf("healthy node %d runnable %d faulted: aliveness=%d arrival=%d flow=%d",
					n, rid, a, ar, pf)
			}
		}
	}
}
