package chaos

// The oracle contract. A campaign without a sharp oracle is noise: the
// run "passing" would only mean nothing crashed. Each Oracle states,
// over the fault-phase counter deltas and the end-of-run fault
// attribution, exactly what the campaign must and must not have
// caused — and the blanket rule that every node outside the victim set
// stayed completely fault-free, which is the paper's zero-false-
// positive requirement under adversarial conditions. Oracles assert
// structure (moved / stayed zero / bounded), not exact counts, because
// exact counts depend on kernel scheduling; the determinism guarantee
// lives in the plan, not the tallies.

import (
	"fmt"

	"swwd/internal/ingest"
	"swwd/internal/treat"
	"swwd/swwdclient"
)

// FaultCounts is one runnable's end-of-run error attribution.
type FaultCounts struct {
	Aliveness uint64 `json:"aliveness"`
	Arrival   uint64 `json:"arrival"`
	Flow      uint64 `json:"flow"`
}

// Any reports whether any fault was attributed.
func (f FaultCounts) Any() bool { return f.Aliveness != 0 || f.Arrival != 0 || f.Flow != 0 }

// NodeResult is one node's attribution: its link runnable and each
// monitored runnable.
type NodeResult struct {
	Node      uint32        `json:"node"`
	Link      FaultCounts   `json:"link"`
	Runnables []FaultCounts `json:"runnables"`
}

// ExecutedEvent is one schedule entry as executed. At/For are the
// *planned* offsets — the reproducible coordinates — not wall-clock
// measurements.
type ExecutedEvent struct {
	At    string `json:"at"`
	For   string `json:"for,omitempty"`
	Kind  string `json:"kind"` // "apply" or "revert"
	Fault string `json:"fault"`
	Err   string `json:"err,omitempty"`
}

// NodeRunnable addresses one monitored runnable by node and index.
type NodeRunnable struct {
	Node     uint32
	Runnable int
}

// ActionMatch is one required treatment action (kind on node).
type ActionMatch struct {
	Kind treat.ActionKind
	Node uint32
}

// Result is everything a campaign run collected, the oracle's input
// and the nightly artifact payload.
type Result struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	Plan string `json:"plan"`

	// Before/After bracket the fault phase; Delta is their difference —
	// the counters the campaign itself moved, warm-up noise excluded.
	Before ingest.Stats `json:"before"`
	After  ingest.Stats `json:"after"`
	Delta  ingest.Stats `json:"delta"`

	Nodes  []NodeResult       `json:"nodes"`
	Links  []LinkStats        `json:"links"`
	Client []swwdclient.Stats `json:"clients"`
	Events []ExecutedEvent    `json:"events"`

	// Calib is the calibration loop's final status; nil unless the
	// topology attached it.
	Calib *ingest.CalibStatus `json:"calib,omitempty"`

	// Treatment evidence; empty unless the topology attached the
	// control plane.
	HasTreatment  bool           `json:"has_treatment"`
	Actions       []treat.Action `json:"actions,omitempty"`
	Trace         []treat.Event  `json:"trace,omitempty"`
	ReplayMatches bool           `json:"replay_matches"`

	Violations []string `json:"violations,omitempty"`
}

// Oracle is a campaign's pass/fail contract, checked against the
// Result. Counter names are the ingest.CounterNames vocabulary and
// refer to fault-phase deltas.
type Oracle struct {
	// Zero lists counters that must not have moved; NonZero counters
	// that must have. Min/Max bound specific counters inclusively.
	Zero    []string
	NonZero []string
	Min     map[string]uint64
	Max     map[string]uint64

	// Victims are the nodes the campaign targets. Every node *not*
	// listed must finish with zero faults on its link and all its
	// runnables — the blanket no-false-positives rule.
	Victims []uint32

	// MustFaultLink / NoLinkFault pin link aliveness on specific nodes
	// (victims included: a victim in NoLinkFault asserts its link
	// survived the fault, as in the hang-under-loss campaign).
	MustFaultLink []uint32
	NoLinkFault   []uint32
	// MustFaultRunnable pins aliveness on specific monitored runnables.
	MustFaultRunnable []NodeRunnable

	// MustAct lists treatment actions that must appear in the action
	// log; ReplayTreatment additionally requires treat.Replay of the
	// recorded trace to reproduce the live actions exactly.
	MustAct         []ActionMatch
	ReplayTreatment bool

	// Extra runs arbitrary additional checks, returning violations.
	// Excluded from JSON artifacts.
	Extra func(*Result) []string `json:"-"`
}

// Check evaluates the oracle, returning one message per violation; an
// empty slice is a pass. Unknown counter names are violations — a
// misspelled oracle must fail loudly, never pass vacuously.
func (o *Oracle) Check(res *Result) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	counter := func(name string) (uint64, bool) {
		c, ok := res.Delta.Counter(name)
		if !ok {
			fail("oracle references unknown counter %q", name)
		}
		return c, ok
	}
	for _, name := range o.Zero {
		if c, ok := counter(name); ok && c != 0 {
			fail("counter %s = %d, want 0", name, c)
		}
	}
	for _, name := range o.NonZero {
		if c, ok := counter(name); ok && c == 0 {
			fail("counter %s = 0, want > 0", name)
		}
	}
	for name, min := range o.Min {
		if c, ok := counter(name); ok && c < min {
			fail("counter %s = %d, want >= %d", name, c, min)
		}
	}
	for name, max := range o.Max {
		if c, ok := counter(name); ok && c > max {
			fail("counter %s = %d, want <= %d", name, c, max)
		}
	}

	victims := make(map[uint32]bool, len(o.Victims))
	for _, n := range o.Victims {
		victims[n] = true
	}
	node := func(id uint32) *NodeResult {
		for i := range res.Nodes {
			if res.Nodes[i].Node == id {
				return &res.Nodes[i]
			}
		}
		fail("oracle references unknown node %d", id)
		return nil
	}
	for i := range res.Nodes {
		nr := &res.Nodes[i]
		if victims[nr.Node] {
			continue
		}
		if nr.Link.Any() {
			fail("healthy node %d link faulted: %+v", nr.Node, nr.Link)
		}
		for r, fc := range nr.Runnables {
			if fc.Any() {
				fail("healthy node %d runnable %d faulted: %+v", nr.Node, r, fc)
			}
		}
	}
	for _, id := range o.MustFaultLink {
		if nr := node(id); nr != nil && nr.Link.Aliveness == 0 {
			fail("node %d link raised no aliveness fault, want >= 1", id)
		}
	}
	for _, id := range o.NoLinkFault {
		if nr := node(id); nr != nil && nr.Link.Aliveness != 0 {
			fail("node %d link raised %d aliveness faults, want 0", id, nr.Link.Aliveness)
		}
	}
	for _, mr := range o.MustFaultRunnable {
		nr := node(mr.Node)
		if nr == nil {
			continue
		}
		if mr.Runnable < 0 || mr.Runnable >= len(nr.Runnables) {
			fail("oracle references unknown runnable %d on node %d", mr.Runnable, mr.Node)
			continue
		}
		if nr.Runnables[mr.Runnable].Aliveness == 0 {
			fail("node %d runnable %d raised no aliveness fault, want >= 1", mr.Node, mr.Runnable)
		}
	}

	if len(o.MustAct) > 0 && !res.HasTreatment {
		fail("oracle requires treatment actions but the topology has no treatment plane")
	}
	for _, m := range o.MustAct {
		found := false
		for _, a := range res.Actions {
			if a.Kind == m.Kind && a.Node == m.Node {
				found = true
				break
			}
		}
		if !found {
			fail("missing treatment action %v on node %d", m.Kind, m.Node)
		}
	}
	if o.ReplayTreatment {
		if !res.HasTreatment {
			fail("oracle requires treatment replay but the topology has no treatment plane")
		} else if !res.ReplayMatches {
			fail("treat.Replay of the recorded trace diverged from the live actions")
		}
	}

	if o.Extra != nil {
		v = append(v, o.Extra(res)...)
	}
	return v
}
