package swwd

import (
	"errors"
	"sync"
	"time"
)

// Service drives a Watchdog's time-triggered units from the wall clock,
// deploying it as a live dependability service for ordinary Go programs:
// goroutines play the role of runnables and call Heartbeat; the service
// runs the monitoring cycle on a ticker.
type Service struct {
	w      *Watchdog
	period time.Duration

	mu      sync.Mutex
	stop    chan struct{}
	stopped chan struct{}
	running bool
}

// NewService wraps a watchdog; period is the monitoring cycle (zero means
// the watchdog's configured CyclePeriod).
func NewService(w *Watchdog, period time.Duration) (*Service, error) {
	if w == nil {
		return nil, errors.New("swwd: watchdog is required")
	}
	if period <= 0 {
		period = w.CyclePeriod()
	}
	return &Service{w: w, period: period}, nil
}

// Start launches the cycle goroutine. It is an error to start a running
// service.
func (s *Service) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return errors.New("swwd: service already running")
	}
	s.running = true
	s.stop = make(chan struct{})
	s.stopped = make(chan struct{})
	go s.loop(s.stop, s.stopped)
	return nil
}

func (s *Service) loop(stop <-chan struct{}, stopped chan<- struct{}) {
	defer close(stopped)
	ticker := time.NewTicker(s.period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			s.w.Cycle()
		}
	}
}

// Stop halts the cycle goroutine and waits for it to exit. Stopping a
// stopped service is a no-op.
func (s *Service) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	close(s.stop)
	stopped := s.stopped
	s.mu.Unlock()
	<-stopped
}

// Watchdog exposes the wrapped watchdog, e.g. for Heartbeat calls.
func (s *Service) Watchdog() *Watchdog { return s.w }
