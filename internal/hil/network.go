package hil

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"swwd/internal/can"
	"swwd/internal/ethernet"
	"swwd/internal/flexray"
	"swwd/internal/gateway"
	"swwd/internal/osek"
	"swwd/internal/vehicle"
)

// Message identifiers of the validator's communication matrix.
const (
	// CANSpeedID carries the measured vehicle speed (sensor node → all).
	CANSpeedID can.FrameID = 0x100
	// CANLimitID carries the commanded speed limit after gateway
	// translation from telematics.
	CANLimitID can.FrameID = 0x200
	// EthLimitTopic is the telematics topic commanding the speed limit.
	EthLimitTopic uint32 = 50
	// FlexRaySteerSlot is the static slot carrying the steering command
	// from the central node to the actuator node.
	FlexRaySteerSlot = 1
	// FlexRayGatewaySlot is the gateway's own static slot.
	FlexRayGatewaySlot = 2
)

// Network is the validator's communication topology: CAN, FlexRay, the
// TCP/IP telematics segment and the gateway node joining them.
type Network struct {
	v *Validator

	CANBus  *can.Bus
	FRBus   *flexray.Bus
	EthNet  *ethernet.Network
	Gateway *gateway.Gateway

	// Nodes.
	sensorCAN  *can.Node // sensor node publishing speed on CAN
	centralCAN *can.Node // central node's CAN controller
	centralFR  *flexray.Node
	actuatorFR *flexray.Node
	telematics *ethernet.Node
	gatewayCAN *can.Node
	gatewayFR  *flexray.Node
	gatewayEth *ethernet.Node

	// lastSteer is the steering command as received by the actuator node
	// over FlexRay (applied to the lateral plant instead of the direct
	// value when networks are enabled).
	lastSteer float64
	// lastLimitRx counts received limit commands on the central node.
	lastLimitRx uint64
	// command is the speed limit as held by the telematics source; the
	// central node's v.speedLimit is only ever updated by reception, so
	// the command genuinely travels telematics → gateway → CAN.
	command float64
	// rxISR is the central node's CAN receive interrupt: frame payloads
	// are buffered by the controller and decoded in interrupt context,
	// consuming CPU like a real driver would.
	rxISR     osek.ISRID
	rxPending [][]byte
	// remoteFaults collects the fault reports of remote ECUs (see
	// remote.go).
	remoteFaults []RemoteFault
}

// newNetwork builds the buses, nodes and routing table.
func newNetwork(v *Validator) (*Network, error) {
	n := &Network{v: v, command: v.speedLimit}
	var err error
	if n.CANBus, err = can.NewBus(v.Kernel, 500000); err != nil {
		return nil, err
	}
	if n.FRBus, err = flexray.NewBus(v.Kernel, flexray.Config{
		StaticSlots:  8,
		SlotDuration: 250 * time.Microsecond,
	}); err != nil {
		return nil, err
	}
	if n.EthNet, err = ethernet.NewNetwork(v.Kernel, ethernet.Config{
		Latency: 2 * time.Millisecond,
		Jitter:  500 * time.Microsecond,
		Seed:    1,
	}); err != nil {
		return nil, err
	}

	n.sensorCAN = n.CANBus.AttachNode("sensor-node")
	n.centralCAN = n.CANBus.AttachNode("central-node")
	n.gatewayCAN = n.CANBus.AttachNode("gateway")

	n.centralFR = n.FRBus.AttachNode("central-node")
	n.actuatorFR = n.FRBus.AttachNode("actuator-node")
	n.gatewayFR = n.FRBus.AttachNode("gateway")
	if err := n.FRBus.AssignSlot(FlexRaySteerSlot, n.centralFR); err != nil {
		return nil, err
	}
	if err := n.FRBus.AssignSlot(FlexRayGatewaySlot, n.gatewayFR); err != nil {
		return nil, err
	}

	if n.telematics, err = n.EthNet.AttachNode("telematics"); err != nil {
		return nil, err
	}
	if n.gatewayEth, err = n.EthNet.AttachNode("gateway"); err != nil {
		return nil, err
	}

	if n.Gateway, err = gateway.New(gateway.Config{
		Kernel:          v.Kernel,
		ProcessingDelay: 200 * time.Microsecond,
	}); err != nil {
		return nil, err
	}
	cp, err := gateway.NewCANPort("can", n.gatewayCAN)
	if err != nil {
		return nil, err
	}
	fp, err := gateway.NewFlexRayPort("flexray", n.gatewayFR)
	if err != nil {
		return nil, err
	}
	ep, err := gateway.NewEthernetPort("eth", n.gatewayEth)
	if err != nil {
		return nil, err
	}
	for _, p := range []gateway.Port{cp, fp, ep} {
		if err := n.Gateway.AttachPort(p); err != nil {
			return nil, err
		}
	}
	// Telematics speed-limit command crosses into the CAN domain.
	if err := n.Gateway.AddRoute(gateway.Route{
		From: "eth", FromID: EthLimitTopic,
		To: "can", ToID: uint32(CANLimitID),
	}); err != nil {
		return nil, err
	}
	// Vehicle speed is mirrored to telematics for remote monitoring.
	if err := n.Gateway.AddRoute(gateway.Route{
		From: "can", FromID: uint32(CANSpeedID),
		To: "eth", ToID: uint32(CANSpeedID),
	}); err != nil {
		return nil, err
	}

	// Central node consumes the limit command through its CAN receive
	// ISR: the controller buffers the payload and raises the interrupt;
	// decoding happens in interrupt context on the ECU's CPU.
	if n.rxISR, err = v.OS.DeclareISR("CanRxISR", 20*time.Microsecond, func() {
		for _, data := range n.rxPending {
			if len(data) >= 2 {
				n.lastLimitRx++
				v.speedLimit = decodeSpeed(data)
			}
		}
		n.rxPending = n.rxPending[:0]
	}); err != nil {
		return nil, err
	}
	n.centralCAN.Subscribe(func(id can.FrameID) bool { return id == CANLimitID }, func(f can.Frame) {
		n.rxPending = append(n.rxPending, f.Data)
		_ = v.OS.RaiseISR(n.rxISR)
	})
	// Actuator node consumes the steering command.
	n.actuatorFR.Subscribe(func(f flexray.Frame) {
		if f.Slot == FlexRaySteerSlot && len(f.Data) >= 4 {
			n.lastSteer = decodeSteer(f.Data)
		}
	})
	return n, nil
}

// start launches the periodic node activities.
func (n *Network) start() error {
	if err := n.FRBus.Start(); err != nil {
		return fmt.Errorf("hil: %w", err)
	}
	// Sensor node: publish measured speed on CAN every 10ms.
	n.v.Kernel.Every(0, 10*time.Millisecond, func() bool {
		frame := can.Frame{ID: CANSpeedID, Data: encodeSpeed(n.v.Long.Speed())}
		// A full queue under bus overload is a legitimate condition; the
		// frame is simply lost, as on the real bus.
		_ = n.sensorCAN.Send(frame)
		return true
	})
	// Central node: publish the steering command on its FlexRay slot
	// every communication cycle.
	n.v.Kernel.Every(0, n.FRBus.Config().CycleDuration(), func() bool {
		_ = n.centralFR.WriteSlot(FlexRaySteerSlot, encodeSteer(n.v.SteerByWire.SteerCommand()))
		return true
	})
	// Telematics: re-command the current speed limit once a second.
	n.v.Kernel.Every(0, time.Second, func() bool {
		_ = n.telematics.Broadcast(EthLimitTopic, encodeSpeed(n.command))
		return true
	})
	return nil
}

// ActuatorSteer reports the steering command as received over FlexRay.
func (n *Network) ActuatorSteer() float64 { return n.lastSteer }

// LimitCommandsReceived reports how many limit commands reached the
// central node over the gateway path.
func (n *Network) LimitCommandsReceived() uint64 { return n.lastLimitRx }

// encodeSpeed packs a speed (m/s) as big-endian centi-m/s.
func encodeSpeed(ms float64) []byte {
	v := uint16(math.Round(ms * 100))
	buf := make([]byte, 2)
	binary.BigEndian.PutUint16(buf, v)
	return buf
}

// decodeSpeed unpacks encodeSpeed's format.
func decodeSpeed(b []byte) float64 {
	return float64(binary.BigEndian.Uint16(b)) / 100
}

// encodeSteer packs a steering angle (rad) as big-endian micro-rad,
// signed.
func encodeSteer(rad float64) []byte {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf, uint32(int32(math.Round(rad*1e6))))
	return buf
}

// decodeSteer unpacks encodeSteer's format.
func decodeSteer(b []byte) float64 {
	return float64(int32(binary.BigEndian.Uint32(b))) / 1e6
}

// SpeedLimitKph is a convenience accessor for traces.
func (n *Network) SpeedLimitKph() float64 { return vehicle.MsToKph(n.v.speedLimit) }
