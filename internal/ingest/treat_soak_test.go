// Treatment soak: a small fleet with a dependency graph beats through
// real UDP sockets while the fault-treatment control plane supervises
// it. One reporter is killed mid-run; the test asserts the full
// prober/weeder story end to end:
//
//   - the healthy phase produces zero treatment actions;
//   - the kill produces exactly one quarantine plus one scale-down per
//     declared dependent, and the affected reporters receive their state
//     over the wire v3 command channel;
//   - restarting the reporter (a new session epoch) expedites recovery:
//     one resume, every dependent scaled back up, no quarantines left;
//   - the independent node is never touched by any action;
//   - replaying the recorded event trace through the pure engine
//     reproduces the live action sequence exactly.
package ingest_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swwd"
	"swwd/internal/ingest"
	"swwd/internal/treat"
	"swwd/swwdclient"
)

func TestIngestTreatSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		nodes        = 4
		runnables    = 4
		interval     = 50 * time.Millisecond
		cycle        = 5 * time.Millisecond
		graceFrames  = 3
		beatEvery    = 20 * time.Millisecond
		healthyPhase = 1 * time.Second
		waitBound    = 10 * time.Second
	)
	// Nodes 1 and 2 consume node 0's service; node 3 is independent and
	// must sail through the whole incident untouched.
	edges := []treat.Edge{{Node: 1, DependsOn: 0}, {Node: 2, DependsOn: 0}}
	policy := treat.Policy{RecoveryFrames: 3}

	fleet, err := ingest.BuildFleet(ingest.FleetConfig{
		Nodes:            nodes,
		RunnablesPerNode: runnables,
		Interval:         interval,
		CyclePeriod:      cycle,
		GraceFrames:      graceFrames,
		CommandEpoch:     1234,
		Treatment:        &ingest.TreatmentConfig{Edges: edges, Policy: policy},
	})
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	defer fleet.Treat.Close()
	addr, err := fleet.Server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer fleet.Server.Close()

	// Each reporter records the treatment commands it receives; beats
	// continue regardless (beats into deactivated runnables are simply
	// ignored, which is the point of scale-down).
	var quarCmds, resumeCmds [nodes]atomic.Uint64
	dial := func(n int) *swwdclient.Client {
		c, err := swwdclient.Dial(addr.String(),
			swwdclient.WithNode(uint32(n)),
			swwdclient.WithRunnables(runnables),
			swwdclient.WithInterval(interval),
			swwdclient.WithOnCommand(func(cmd swwdclient.Command) {
				switch cmd.Op {
				case swwdclient.OpQuarantine:
					quarCmds[n].Add(1)
				case swwdclient.OpResume:
					resumeCmds[n].Add(1)
				}
			}))
		if err != nil {
			t.Fatalf("Dial node %d: %v", n, err)
		}
		return c
	}

	stopBeats := make(chan struct{})
	var wg sync.WaitGroup
	var clientMu sync.Mutex
	clients := make([]*swwdclient.Client, nodes)
	for n := 0; n < nodes; n++ {
		clients[n] = dial(n)
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			tick := time.NewTicker(beatEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopBeats:
					return
				case <-tick.C:
					clientMu.Lock()
					c := clients[n]
					clientMu.Unlock()
					if c == nil {
						continue
					}
					for r := 0; r < runnables; r++ {
						c.Beat(r)
					}
				}
			}
		}(n)
	}
	closeAll := func() {
		clientMu.Lock()
		defer clientMu.Unlock()
		for i, c := range clients {
			if c != nil {
				_ = c.Close()
				clients[i] = nil
			}
		}
	}
	defer closeAll()

	deadline := time.Now().Add(waitBound)
	for fleet.Server.Stats().Accepted < nodes {
		if time.Now().After(deadline) {
			t.Fatalf("fleet warm-up timed out: stats %+v", fleet.Server.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	svc, err := swwd.NewService(fleet.Watchdog, cycle)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	if err := svc.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() { _ = svc.Stop() }()

	// Healthy phase: the control plane must stay completely silent.
	time.Sleep(healthyPhase)
	if st := fleet.Treat.Stats(); st.Quarantines != 0 || st.ScaleDowns != 0 ||
		st.Resumes != 0 || st.ScaleUps != 0 || st.NotifyQuarantine != 0 {
		t.Fatalf("treatment actions on a healthy fleet: %+v", st)
	}

	// waitTreat polls the controller until cond holds.
	waitTreat := func(what string, cond func(treat.Stats) bool) treat.Stats {
		deadline := time.Now().Add(waitBound)
		for {
			st := fleet.Treat.Stats()
			if cond(st) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: %+v", what, st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Kill node 0. Its link goes silent, the fault is treated: exactly
	// one quarantine, and both dependents scaled down.
	clientMu.Lock()
	_ = clients[0].Close()
	clients[0] = nil
	clientMu.Unlock()
	st := waitTreat("quarantine + scale-down", func(st treat.Stats) bool {
		return st.Quarantines == 1 && st.ScaleDowns == 2
	})
	if st.ActiveQuarantines != 1 || st.ActiveScaledDown != 2 {
		t.Fatalf("gauges after kill: %+v", st)
	}

	// The live dependents learn their scale-down over the command
	// channel (node 0's own quarantine command lands on a dead socket).
	waitTreat("dependent quarantine commands", func(treat.Stats) bool {
		return quarCmds[1].Load() >= 1 && quarCmds[2].Load() >= 1
	})

	// Restart the reporter: a fresh session epoch, then a steady streak
	// of frames. Recovery must be expedited — one resume, node 0 and
	// both dependents scaled back up, nothing left quarantined.
	clientMu.Lock()
	clients[0] = dial(0)
	clientMu.Unlock()
	st = waitTreat("resume + scale-up", func(st treat.Stats) bool {
		return st.Resumes == 1 && st.ScaleUps == 3
	})
	if st.Quarantines != 1 {
		t.Fatalf("recovery re-quarantined: %+v", st)
	}
	if st.ActiveQuarantines != 0 || st.ActiveScaledDown != 0 {
		t.Fatalf("gauges after recovery: %+v", st)
	}
	waitTreat("resume command on node 0", func(treat.Stats) bool {
		return resumeCmds[0].Load() >= 1
	})

	// Let the recovered fleet soak a moment: no further treatment, no
	// new faults anywhere.
	time.Sleep(healthyPhase)
	end := fleet.Treat.Stats()
	if end.Quarantines != 1 || end.Resumes != 1 || end.ScaleDowns != 2 || end.ScaleUps != 3 {
		t.Fatalf("treatment did not stay settled after recovery: %+v", end)
	}
	if end.EventsDropped != 0 {
		t.Fatalf("treatment events dropped: %+v", end)
	}

	// The independent node was never touched by any action, and its
	// supervision never faulted.
	for _, a := range fleet.Treat.Actions() {
		if a.Node == 3 || a.Cause == 3 {
			t.Fatalf("independent node 3 touched by treatment: %+v", a)
		}
	}
	for n := 1; n < nodes; n++ {
		rids := append([]swwd.RunnableID{fleet.Specs[n].Link}, fleet.Specs[n].Runnables...)
		for _, rid := range rids {
			a, ar, pf, err := fleet.Watchdog.RunnableErrors(rid)
			if err != nil {
				t.Fatalf("RunnableErrors(%d): %v", rid, err)
			}
			if a != 0 || ar != 0 || pf != 0 {
				t.Fatalf("node %d runnable %d faulted during treatment: aliveness=%d arrival=%d flow=%d",
					n, rid, a, ar, pf)
			}
		}
	}

	// The dependents acked their quarantine commands and the restarted
	// reporter acked its resume: the channel round-tripped.
	wireDeadline := time.Now().Add(waitBound)
	for fleet.Server.Stats().CommandsAcked < 2 {
		if time.Now().After(wireDeadline) {
			t.Fatalf("commands never acked: %+v", fleet.Server.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ws := fleet.Server.Stats()
	if ws.NodeRestarts != 1 {
		t.Fatalf("NodeRestarts = %d, want 1 (the node 0 restart)", ws.NodeRestarts)
	}
	if ws.CommandsSent == 0 || ws.DecodeErrors != 0 || ws.UnknownNode != 0 {
		t.Fatalf("wire stats: %+v", ws)
	}

	// Determinism: replaying the recorded trace through the pure engine
	// reproduces the live action sequence exactly.
	graph, err := treat.NewGraph([]uint32{0, 1, 2, 3}, edges)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	live := fleet.Treat.Actions()
	replayed := treat.Replay(graph, policy, fleet.Treat.Trace())
	if len(replayed) != len(live) {
		t.Fatalf("replay produced %d actions, live %d", len(replayed), len(live))
	}
	for i := range live {
		if replayed[i] != live[i] {
			t.Fatalf("replay diverged at action %d: live %+v, replayed %+v", i, live[i], replayed[i])
		}
	}
}
