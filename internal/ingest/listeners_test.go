package ingest

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swwd/internal/sim"
	"swwd/internal/wire"
)

// mtFleet builds a fleet wired for the multi-listener front end on a
// manual clock (no sweeps run, so no faults can fire mid-test).
func mtFleet(t *testing.T, nodes, listeners, batch, shards, queueLen int) *Fleet {
	t.Helper()
	f, err := BuildFleet(FleetConfig{
		Nodes:            nodes,
		RunnablesPerNode: 2,
		Interval:         100 * time.Millisecond,
		CyclePeriod:      10 * time.Millisecond,
		GraceFrames:      3,
		Listeners:        listeners,
		BatchSize:        batch,
		Shards:           shards,
		QueueLen:         queueLen,
		Clock:            sim.NewManualClock(),
	})
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	return f
}

// sendFrames sends seq 1..count frames for node over conn, beating both
// runnables once per frame.
func sendFrames(t *testing.T, conn net.Conn, node uint32, count int) {
	t.Helper()
	frame := wire.Frame{Node: node, Epoch: 1, IntervalMs: 100,
		Beats: []wire.BeatRec{{Runnable: 0, Beats: 1}, {Runnable: 1, Beats: 1}}}
	buf := make([]byte, 0, 128)
	for seq := 1; seq <= count; seq++ {
		frame.Seq = uint64(seq)
		var err error
		buf, err = wire.AppendFrame(buf[:0], &frame)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		if _, err := conn.Write(buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
}

// waitStat polls fn until it returns true or the deadline passes.
func waitStat(t *testing.T, srv *Server, what string, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !fn() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats %+v", what, srv.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestIngestMultiListener is the happy path of the reuseport front end:
// N sockets bound to one address, frames from several flows accepted in
// full, listener counters accounting for every received packet.
func TestIngestMultiListener(t *testing.T) {
	// Queues must absorb the whole burst even if the workers never get
	// scheduled while the senders run (single-core CI): each shard owns
	// nodes/shards nodes and can face perNode frames for each at once.
	const nodes, perNode, senders = 32, 50, 4
	f := mtFleet(t, nodes, 4, 8, 4, 1024)
	addr, err := f.Server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer f.Server.Close()

	wantListeners := 4
	if !reusePortSupported {
		wantListeners = 1
	}
	if got := f.Server.Stats().Listeners; got != wantListeners {
		t.Fatalf("active listeners = %d, want %d", got, wantListeners)
	}

	var wg sync.WaitGroup
	for sdr := 0; sdr < senders; sdr++ {
		wg.Add(1)
		go func(sdr int) {
			defer wg.Done()
			conn, err := net.Dial("udp", addr.String())
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer conn.Close()
			for n := sdr; n < nodes; n += senders {
				sendFrames(t, conn, uint32(n), perNode)
			}
		}(sdr)
	}
	wg.Wait()

	const want = uint64(nodes * perNode)
	waitStat(t, f.Server, "all frames accepted", func() bool {
		return f.Server.Stats().Accepted == want
	})
	st := f.Server.Stats()
	if st.DecodeErrors != 0 || st.DuplicateDrops != 0 || st.DroppedPackets != 0 ||
		st.BuffersExhausted != 0 || st.SeqGaps != 0 {
		t.Fatalf("wire errors on a clean run: %+v", st)
	}
	var packets, batches uint64
	for _, ls := range f.Server.ListenerStats() {
		packets += ls.Packets
		batches += ls.Batches
		if ls.MaxBatch > 8 {
			t.Fatalf("listener MaxBatch %d exceeds configured batch size 8", ls.MaxBatch)
		}
	}
	if packets != st.Frames {
		t.Fatalf("listener packets %d != frames %d", packets, st.Frames)
	}
	if batches == 0 || batches > packets {
		t.Fatalf("listener batches %d out of range (packets %d)", batches, packets)
	}
	sh := f.Server.ShardStats()
	if len(sh) != 4 {
		t.Fatalf("shard stats len %d, want 4", len(sh))
	}
	var hwm int
	for _, s := range sh {
		if s.Capacity != 1024 {
			t.Fatalf("shard capacity %d, want 1024", s.Capacity)
		}
		hwm += s.DepthHWM
	}
	if hwm == 0 {
		t.Fatal("no shard recorded a queue-depth high-water mark")
	}
}

// TestIngestListenerSocketCloseDoesNotWedgeClose kills one socket of
// the group out from under the server: the surviving loops keep
// serving, and Close still completes.
func TestIngestListenerSocketCloseDoesNotWedgeClose(t *testing.T) {
	f := mtFleet(t, 8, 4, 8, 2, 128)
	addr, err := f.Server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if n := len(f.Server.snapshotListeners()); n > 1 {
		// Close a victim socket directly — not via Server.Close.
		_ = f.Server.snapshotListeners()[n-1].conn.Close()
	}
	// The remaining sockets still accept traffic (the kernel rebalances
	// the reuseport group away from the closed socket).
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	sendFrames(t, conn, 3, 20)
	waitStat(t, f.Server, "frames accepted after socket loss", func() bool {
		return f.Server.Stats().Accepted >= 20
	})

	done := make(chan error, 1)
	go func() { done <- f.Server.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close wedged after one listener socket died")
	}
}

// TestIngestReusePortFallback forces the no-SO_REUSEPORT path: a
// Listeners=4 server degrades to one socket and serves identically.
func TestIngestReusePortFallback(t *testing.T) {
	old := reusePortEnabled
	reusePortEnabled = false
	defer func() { reusePortEnabled = old }()

	f := mtFleet(t, 8, 4, 8, 2, 128)
	addr, err := f.Server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer f.Server.Close()
	if got := f.Server.Stats().Listeners; got != 1 {
		t.Fatalf("fallback bound %d listeners, want 1", got)
	}
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	sendFrames(t, conn, 5, 40)
	waitStat(t, f.Server, "frames accepted on fallback", func() bool {
		return f.Server.Stats().Accepted == 40
	})
	st := f.Server.Stats()
	if st.DecodeErrors != 0 || st.DuplicateDrops != 0 || st.SeqGaps != 0 {
		t.Fatalf("wire errors on fallback path: %+v", st)
	}
}

// TestIngestExplicitSingleListener pins Listeners=1: the plain bind
// path, no reuseport group, behaviour unchanged from the PR 4 server.
func TestIngestExplicitSingleListener(t *testing.T) {
	f := mtFleet(t, 4, 1, 1, 2, 128)
	addr, err := f.Server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer f.Server.Close()
	if got := f.Server.Stats().Listeners; got != 1 {
		t.Fatalf("listeners = %d, want 1", got)
	}
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	sendFrames(t, conn, 2, 25)
	waitStat(t, f.Server, "frames accepted", func() bool {
		return f.Server.Stats().Accepted == 25
	})
}

// TestIngestBuffersExhausted starves the free list (a thief goroutine
// keeps draining it) and asserts the scratch path is accounted in
// BuffersExhausted and DroppedPackets instead of silently discarded.
func TestIngestBuffersExhausted(t *testing.T) {
	f := mtFleet(t, 4, 1, 1, 1, 4)
	addr, err := f.Server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer f.Server.Close()

	stop := make(chan struct{})
	var stolen []*packet
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case p := <-f.Server.free:
				mu.Lock()
				stolen = append(stolen, p)
				mu.Unlock()
			}
		}
	}()

	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	deadline := time.Now().Add(10 * time.Second)
	for f.Server.Stats().BuffersExhausted == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no BuffersExhausted despite a starved free list: %+v", f.Server.Stats())
		}
		sendFrames(t, conn, 1, 4)
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	// Give the pool its buffers back so Close can drain cleanly.
	mu.Lock()
	for _, p := range stolen {
		f.Server.free <- p
	}
	mu.Unlock()

	st := f.Server.Stats()
	if st.BuffersExhausted == 0 {
		t.Fatal("BuffersExhausted stayed 0")
	}
	if st.DroppedPackets < st.BuffersExhausted {
		t.Fatalf("DroppedPackets %d < BuffersExhausted %d: exhausted reads must also count as drops",
			st.DroppedPackets, st.BuffersExhausted)
	}
}

// TestIngestMultiListenerShardAffinity race-stresses the single-writer
// discipline across concurrent listeners: frames for overlapping node
// sets arrive over many flows, and a FrameHook guard asserts no node is
// ever inside the replay path on two workers at once. Run under -race
// in CI (the ingest race-stress step matches TestIngest*).
func TestIngestMultiListenerShardAffinity(t *testing.T) {
	const nodes, perSender, senders = 64, 200, 8
	inFlight := make([]atomic.Int32, nodes)
	var violations atomic.Uint64
	f, err := BuildFleet(FleetConfig{
		Nodes:            nodes,
		RunnablesPerNode: 2,
		Interval:         100 * time.Millisecond,
		CyclePeriod:      10 * time.Millisecond,
		GraceFrames:      3,
		Listeners:        4,
		BatchSize:        16,
		Shards:           4,
		QueueLen:         512,
		Clock:            sim.NewManualClock(),
	})
	if err != nil {
		t.Fatalf("BuildFleet: %v", err)
	}
	// The hook runs on the shard worker inside the frame path; a node
	// observed concurrently on two goroutines is a pinning violation.
	f.Server.cfg.FrameHook = func(node uint32, restarted bool) {
		if inFlight[node].Add(1) != 1 {
			violations.Add(1)
		}
		inFlight[node].Add(-1)
	}
	addr, err := f.Server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer f.Server.Close()

	var wg sync.WaitGroup
	for sdr := 0; sdr < senders; sdr++ {
		wg.Add(1)
		go func(sdr int) {
			defer wg.Done()
			conn, err := net.Dial("udp", addr.String())
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer conn.Close()
			frame := wire.Frame{Epoch: uint64(sdr + 1), IntervalMs: 100,
				Beats: []wire.BeatRec{{Runnable: 0, Beats: 1}}}
			buf := make([]byte, 0, 64)
			seqs := make([]uint64, nodes)
			for i := 0; i < perSender; i++ {
				// Every sender walks every node: two senders share each
				// node, so frames of one node arrive over several flows
				// (and thus sockets) concurrently.
				n := uint32((i + sdr) % nodes)
				seqs[n]++
				frame.Node = n
				frame.Seq = seqs[n]
				var err error
				buf, err = wire.AppendFrame(buf[:0], &frame)
				if err != nil {
					t.Errorf("AppendFrame: %v", err)
					return
				}
				if _, err := conn.Write(buf); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
			}
		}(sdr)
	}
	wg.Wait()

	// Quiesce: every sent datagram is either counted or dropped by the
	// kernel; wait for the frame counter to go stable.
	var last uint64
	stable := 0
	for stable < 25 {
		cur := f.Server.Stats().Frames
		if cur == last {
			stable++
		} else {
			stable, last = 0, cur
		}
		time.Sleep(4 * time.Millisecond)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d concurrent replays of one node across workers", v)
	}
	st := f.Server.Stats()
	if st.Accepted == 0 {
		t.Fatal("no frames accepted")
	}
	if st.DecodeErrors != 0 || st.UnknownNode != 0 {
		t.Fatalf("decode/unknown errors under stress: %+v", st)
	}
	t.Logf("affinity stress: %+v", st)
}

// TestListenConnsEphemeralGroup asserts that a ":0" multi-listen binds
// every socket to the same resolved port, not N fresh ephemeral ports.
func TestListenConnsEphemeralGroup(t *testing.T) {
	if !reusePortSupported {
		t.Skip("no SO_REUSEPORT on this platform")
	}
	conns, err := listenConns("127.0.0.1:0", 3)
	if err != nil {
		t.Fatalf("listenConns: %v", err)
	}
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	if len(conns) != 3 {
		t.Fatalf("bound %d sockets, want 3", len(conns))
	}
	want := conns[0].LocalAddr().String()
	for i, c := range conns[1:] {
		if got := c.LocalAddr().String(); got != want {
			t.Fatalf("socket %d bound %s, want %s", i+1, got, want)
		}
	}
}
