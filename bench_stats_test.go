// Telemetry benchmarks for the observability layer (BENCH_stats.json):
// the healthy-path cost of a beat with the always-on stats counter, the
// cost of taking a full Snapshot, and the journal append/read paths.
//
// Run with: make bench-json  (or: go test -bench 'Snapshot|BeatWithStats|Journal' -benchmem)
package swwd_test

import (
	"fmt"
	"testing"
	"time"

	"swwd"
)

// BenchmarkBeatWithStats measures the handle fast path with the
// telemetry layer in place. The lifetime beat counter is *banked*, not
// counted per beat: every beat already lands in AC, and the cold paths
// (window close, counter reset) fold outgoing AC into an accumulator —
// so this must match BenchmarkMonitorBeat to within noise. The
// acceptance bound is ≤ 2 ns/beat of added cost versus the recorded
// baseline (~22-25 ns single-threaded on the reference host).
func BenchmarkBeatWithStats(b *testing.B) {
	w, monitors := buildParallelWatchdog(b, 1, 3)
	_ = w
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		monitors[i%3].Beat()
	}
}

// BenchmarkSnapshot measures a full telemetry snapshot over n runnables.
// reuse=true retains the buffer across scrapes (the steady state of a
// metrics endpoint; must be 0 allocs/op), reuse=false allocates a fresh
// Snapshot per call (the worst case: one slice per scrape).
func BenchmarkSnapshot(b *testing.B) {
	for _, n := range []int{64, 1024} {
		nTasks := 8
		perTask := n / nTasks
		w, monitors := buildParallelWatchdog(b, nTasks, perTask)
		for _, m := range monitors {
			m.Beat()
		}
		w.Cycle()
		b.Run(fmt.Sprintf("n=%d/reuse=true", n), func(b *testing.B) {
			var s swwd.Snapshot
			w.SnapshotInto(&s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.SnapshotInto(&s)
			}
		})
		b.Run(fmt.Sprintf("n=%d/reuse=false", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = w.Snapshot()
			}
		})
		w.Close()
	}
}

// buildJournalWatchdog builds n starved runnables whose aliveness window
// expires every cycle, so each Cycle produces n journaled detections.
func buildJournalWatchdog(b *testing.B, n int, journalSize int) *swwd.Watchdog {
	b.Helper()
	m := swwd.NewModel()
	app, err := m.AddApp("bench", swwd.SafetyCritical)
	if err != nil {
		b.Fatalf("AddApp: %v", err)
	}
	task, err := m.AddTask(app, "T", 1)
	if err != nil {
		b.Fatalf("AddTask: %v", err)
	}
	var rids []swwd.RunnableID
	for i := 0; i < n; i++ {
		rid, err := m.AddRunnable(task, fmt.Sprintf("r%d", i), time.Millisecond, swwd.SafetyCritical)
		if err != nil {
			b.Fatalf("AddRunnable: %v", err)
		}
		rids = append(rids, rid)
	}
	if err := m.Freeze(); err != nil {
		b.Fatalf("Freeze: %v", err)
	}
	opts := []swwd.Option{swwd.WithClock(swwd.NewWallClock())}
	if journalSize < 0 {
		opts = append(opts, swwd.WithoutJournal())
	} else {
		opts = append(opts, swwd.WithJournalSize(journalSize))
	}
	w, err := swwd.New(m, opts...)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	for _, rid := range rids {
		if err := w.SetHypothesis(rid, swwd.Hypothesis{AlivenessCycles: 1, MinHeartbeats: 1}); err != nil {
			b.Fatalf("SetHypothesis: %v", err)
		}
		if err := w.Activate(rid); err != nil {
			b.Fatalf("Activate: %v", err)
		}
	}
	return w
}

// BenchmarkJournalAppend measures the detection cold path's journal
// cost: every benched Cycle closes 64 starved aliveness windows and
// journals all 64 detections (freeze-frame included), wrapping a
// 256-entry ring. journal=off is the same detection storm with the
// journal disabled — the difference is the per-detection append cost.
func BenchmarkJournalAppend(b *testing.B) {
	const n = 64
	for _, mode := range []struct {
		name string
		size int
	}{{"journal=on", 256}, {"journal=off", -1}} {
		b.Run(mode.name, func(b *testing.B) {
			w := buildJournalWatchdog(b, n, mode.size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Cycle()
			}
			b.StopTimer()
			if res := w.Results(); res.Aliveness == 0 {
				b.Fatalf("no detections generated")
			}
		})
	}
}

// BenchmarkJournalRead measures copying a full 256-entry ring out with a
// reused destination slice (the scrape path; must be 0 allocs/op in
// steady state).
func BenchmarkJournalRead(b *testing.B) {
	w := buildJournalWatchdog(b, 64, 256)
	for i := 0; i < 8; i++ { // 8 cycles × 64 detections fill and wrap the ring
		w.Cycle()
	}
	if st := w.JournalStats(); st.Len != st.Cap {
		b.Fatalf("ring not full: %+v", st)
	}
	buf := w.JournalInto(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = w.JournalInto(buf[:0])
	}
}
