package swwdclient

// The reporter side of the wire v3 command channel: a background reader
// on the (connected) UDP socket decodes server command frames, applies
// the epoch+seq discipline and forwards each record to the OnCommand
// callback. Acknowledgement is implicit — the highest applied pair is
// stamped on every outgoing heartbeat frame by the flusher.

import (
	"time"

	"swwd/internal/wire"
)

// CommandOp identifies a treatment command delivered to OnCommand.
type CommandOp uint8

const (
	// OpQuarantine announces that the server quarantined the target:
	// server-side supervision is suspended and the node should park the
	// affected workload.
	OpQuarantine CommandOp = CommandOp(wire.CmdQuarantine)
	// OpResume lifts a quarantine or scale-down; supervision is active
	// again and the workload should run.
	OpResume CommandOp = CommandOp(wire.CmdResume)
	// OpRestartRunnable asks the node to restart the target runnable
	// (or its whole workload for a node-target command) — the paper's
	// task/µC-reset escalation delegated to the node's own facilities.
	OpRestartRunnable CommandOp = CommandOp(wire.CmdRestart)
	// OpSetHypothesis replaces the target's local monitoring hypothesis
	// with Command.Hypothesis.
	OpSetHypothesis CommandOp = CommandOp(wire.CmdSetHypothesis)
)

// String names the opcode for logs.
func (op CommandOp) String() string {
	switch op {
	case OpQuarantine:
		return "quarantine"
	case OpResume:
		return "resume"
	case OpRestartRunnable:
		return "restart-runnable"
	case OpSetHypothesis:
		return "set-hypothesis"
	}
	return "unknown"
}

// NodeTarget is the Command.Runnable value addressing the whole node
// rather than one runnable.
const NodeTarget = -1

// Hypothesis carries the OpSetHypothesis payload: the aliveness and
// arrival-rate monitoring parameters in wire form.
type Hypothesis struct {
	AlivenessCycles uint32
	MinHeartbeats   uint32
	ArrivalCycles   uint32
	MaxArrivals     uint32
}

// Command is one treatment command record as delivered to OnCommand.
type Command struct {
	// Op is what to do.
	Op CommandOp
	// Runnable is the node-local runnable index the command targets, or
	// NodeTarget for the whole node.
	Runnable int
	// Hypothesis is meaningful only when Op is OpSetHypothesis.
	Hypothesis Hypothesis
}

// readLoop receives and applies server command frames until Close. It
// deliberately holds no lock while blocked in Read; after any read
// error it re-fetches the connection under flushMu, because the flusher
// replaces the socket on send failures and Close nils it out.
func (c *Client) readLoop() {
	defer close(c.readDone)
	buf := make([]byte, 2048)
	var cmd wire.Command
	for {
		c.flushMu.Lock()
		conn := c.conn
		closed := c.closed
		c.flushMu.Unlock()
		if closed {
			return
		}
		if conn == nil {
			// The flusher is backing off before a redial; wait it out.
			select {
			case <-c.stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		n, err := conn.Read(buf)
		if err != nil {
			select {
			case <-c.stop:
				return
			default:
			}
			// The socket was replaced or produced a transient error
			// (connected UDP surfaces ICMP unreachable here). Pause so a
			// persistently erroring socket cannot spin this goroutine.
			select {
			case <-c.stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		c.handleCommand(buf[:n], &cmd)
	}
}

// handleCommand decodes one datagram and applies the epoch+seq
// discipline: a command of an older server incarnation is stale and
// dropped; a newer incarnation resets the sequence tracking; within an
// incarnation each sequence number is applied at most once and only
// moving forward.
func (c *Client) handleCommand(buf []byte, cmd *wire.Command) {
	if err := wire.DecodeCommand(buf, cmd); err != nil {
		c.cmdErrs.Add(1)
		return
	}
	if cmd.Node != c.cfg.Node {
		c.cmdDropped.Add(1)
		return
	}
	c.ackMu.Lock()
	if cmd.Epoch < c.cmdEpoch {
		c.ackMu.Unlock()
		c.cmdDropped.Add(1)
		return
	}
	if cmd.Epoch > c.cmdEpoch {
		// A new server incarnation supersedes the old one's numbering.
		c.cmdEpoch = cmd.Epoch
		c.cmdSeq = 0
	}
	if cmd.Seq <= c.cmdSeq {
		c.ackMu.Unlock()
		c.cmdDropped.Add(1)
		return
	}
	c.cmdSeq = cmd.Seq
	c.ackMu.Unlock()
	for i := range cmd.Recs {
		r := &cmd.Recs[i]
		if c.cfg.OnCommand != nil {
			c.cfg.OnCommand(clientCommand(r))
		}
		c.cmdApplied.Add(1)
	}
}

// clientCommand converts a wire record to the client-facing form.
func clientCommand(r *wire.CmdRec) Command {
	out := Command{Op: CommandOp(r.Op), Runnable: int(r.Runnable)}
	if r.Runnable == wire.CmdNodeTarget {
		out.Runnable = NodeTarget
	}
	if r.Op == wire.CmdSetHypothesis {
		out.Hypothesis = Hypothesis{
			AlivenessCycles: r.Hyp.AlivenessCycles,
			MinHeartbeats:   r.Hyp.MinHeartbeats,
			ArrivalCycles:   r.Hyp.ArrivalCycles,
			MaxArrivals:     r.Hyp.MaxArrivals,
		}
	}
	return out
}
