package swwd

import (
	"strings"
	"testing"
	"time"
)

// telemetryFixture builds a 3-runnable watchdog through the facade.
func telemetryFixture(t *testing.T, opts ...Option) (*Watchdog, [3]RunnableID, TaskID) {
	t.Helper()
	m := NewModel()
	app, err := m.AddApp("telemetry", SafetyCritical)
	if err != nil {
		t.Fatalf("AddApp: %v", err)
	}
	task, err := m.AddTask(app, "T", 1)
	if err != nil {
		t.Fatalf("AddTask: %v", err)
	}
	var rids [3]RunnableID
	for i, name := range []string{"a", "b", "c"} {
		if rids[i], err = m.AddRunnable(task, name, time.Millisecond, SafetyCritical); err != nil {
			t.Fatalf("AddRunnable: %v", err)
		}
	}
	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	w, err := New(m, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, rid := range rids {
		if err := w.SetHypothesis(rid, Hypothesis{
			AlivenessCycles: 4, MinHeartbeats: 1,
			ArrivalCycles: 4, MaxArrivals: 16,
		}); err != nil {
			t.Fatalf("SetHypothesis: %v", err)
		}
		if err := w.Activate(rid); err != nil {
			t.Fatalf("Activate: %v", err)
		}
	}
	return w, rids, task
}

// TestServiceDriverStatsWiring checks the satellite requirement that
// tick drift is visible on the telemetry snapshot: MissedCycles, the
// overrun event count and the worst lateness all surface in
// Snapshot.Driver, while the bare Watchdog snapshot leaves Driver zero.
func TestServiceDriverStatsWiring(t *testing.T) {
	w, _, _ := telemetryFixture(t)
	s, err := NewService(w, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}

	// Drive the drift accounting deterministically with synthetic tick
	// timestamps: a 3.5-period gap = one overrun event, two lost cycles.
	t0 := time.Unix(1000, 0)
	period := 10 * time.Millisecond
	s.noteTick(t0, t0.Add(period*3+period/2))
	s.noteTick(t0, t0.Add(period*2)) // second event, one more lost cycle

	st := s.Stats()
	if st.MissedCycles != 3 {
		t.Fatalf("Stats.MissedCycles = %d, want 3", st.MissedCycles)
	}
	if st.Overruns != 2 {
		t.Fatalf("Stats.Overruns = %d, want 2", st.Overruns)
	}
	if want := period*2 + period/2; st.MaxLateNs != int64(want) {
		t.Fatalf("Stats.MaxLateNs = %v, want %v", time.Duration(st.MaxLateNs), want)
	}

	snap := s.Snapshot()
	if snap.Driver != st {
		t.Fatalf("Snapshot.Driver = %+v, want %+v", snap.Driver, st)
	}
	if bare := w.Snapshot(); bare.Driver != (DriverStats{}) {
		t.Fatalf("bare Watchdog snapshot carries driver stats: %+v", bare.Driver)
	}

	// A short real run makes Ticks advance and flows into the snapshot.
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	time.Sleep(35 * time.Millisecond)
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if got := s.Stats().Ticks; got == 0 {
		t.Fatalf("Ticks = 0 after a 35ms run at 10ms period")
	}
	var reused Snapshot
	s.SnapshotInto(&reused)
	if reused.Driver.Ticks != s.Stats().Ticks {
		t.Fatalf("SnapshotInto.Driver.Ticks = %d, want %d", reused.Driver.Ticks, s.Stats().Ticks)
	}
}

// TestFacadeJournalOptions exercises WithJournalSize / WithoutJournal
// through the public API.
func TestFacadeJournalOptions(t *testing.T) {
	w, rids, _ := telemetryFixture(t, WithJournalSize(3)) // rounds up to 4
	if got := w.JournalStats().Cap; got != 4 {
		t.Fatalf("journal Cap = %d, want 4", got)
	}
	for i := 0; i < 12; i++ { // starved runnables trip every 4th cycle
		w.Cycle()
	}
	st := w.JournalStats()
	if st.Written != 9 || st.Dropped != 5 || st.Len != 4 {
		t.Fatalf("JournalStats = %+v, want Written 9 Dropped 5 Len 4", st)
	}
	entries := w.Journal()
	if len(entries) != 4 || entries[0].Seq != 5 {
		t.Fatalf("journal = %d entries starting at seq %d, want 4 from seq 5",
			len(entries), entries[0].Seq)
	}
	if entries[3].Runnable != rids[2] {
		t.Fatalf("newest entry runnable = %d, want %d", entries[3].Runnable, rids[2])
	}

	off, _, _ := telemetryFixture(t, WithoutJournal())
	for i := 0; i < 8; i++ {
		off.Cycle()
	}
	if off.Journal() != nil || off.JournalStats() != (JournalStats{}) {
		t.Fatalf("WithoutJournal still journals: %+v", off.JournalStats())
	}
	if off.Results().Aliveness == 0 {
		t.Fatalf("detections must not depend on the journal")
	}
}

// TestFacadeMetricsSink exercises WithMetricsSink through the public
// API: emissions every 2 cycles, snapshot contents visible to the sink.
func TestFacadeMetricsSink(t *testing.T) {
	var cycles []uint64
	var faults uint64
	w, _, _ := telemetryFixture(t, WithMetricsSink(func(s *Snapshot) {
		cycles = append(cycles, s.Cycle)
		faults = s.Results.Aliveness
	}, 2))
	for i := 0; i < 8; i++ {
		w.Cycle()
	}
	if len(cycles) != 4 {
		t.Fatalf("sink fired %d times over 8 cycles with period 2, want 4: %v", len(cycles), cycles)
	}
	if faults == 0 {
		t.Fatalf("sink never observed the aliveness detections")
	}
}

// TestSpecJournalSize checks the JSON spec passthrough.
func TestSpecJournalSize(t *testing.T) {
	const specJSON = `{
	  "apps": [{
	    "name": "A", "criticality": "safety-critical",
	    "tasks": [{
	      "name": "T", "priority": 1,
	      "runnables": [
	        {"name": "r1", "exec_time": "100us",
	         "hypothesis": {"aliveness_cycles": 5, "min_heartbeats": 1,
	                        "arrival_cycles": 5, "max_arrivals": 8}},
	        {"name": "r2", "exec_time": "100us"}
	      ]
	    }]
	  }],
	  "watchdog": {"cycle_period": "5ms", "journal_size": 7}
	}`
	spec, err := LoadSpec(strings.NewReader(specJSON))
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	sys, err := spec.Build(nil, nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := sys.Watchdog.JournalStats().Cap; got != 8 {
		t.Fatalf("spec journal Cap = %d, want 8 (7 rounded up)", got)
	}
	for i := 0; i < 5; i++ {
		sys.Watchdog.Cycle()
	}
	entries := sys.Watchdog.Journal()
	if len(entries) != 1 {
		t.Fatalf("journal = %d entries, want 1 (only r1 is monitored)", len(entries))
	}
	if name, _ := sys.Runnable("r1"); entries[0].Runnable != name {
		t.Fatalf("journaled runnable %d, want r1", entries[0].Runnable)
	}
}
