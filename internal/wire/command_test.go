package wire

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// sampleCommand builds a representative command frame: a quarantine of
// the whole node plus a per-runnable restart and a hypothesis update —
// every opcode shape the treatment controller emits.
func sampleCommand() *Command {
	return &Command{
		Node:  42,
		Epoch: 1700000099,
		Seq:   3,
		Recs: []CmdRec{
			{Op: CmdQuarantine, Runnable: CmdNodeTarget},
			{Op: CmdRestart, Runnable: 4},
			{Op: CmdResume, Runnable: CmdNodeTarget},
			{Op: CmdSetHypothesis, Runnable: 2, Hyp: HypothesisParams{
				AlivenessCycles: 10, MinHeartbeats: 1, ArrivalCycles: 5, MaxArrivals: 3,
			}},
		},
	}
}

func mustEncodeCommand(t testing.TB, c *Command) []byte {
	t.Helper()
	buf, err := AppendCommand(nil, c)
	if err != nil {
		t.Fatalf("AppendCommand: %v", err)
	}
	return buf
}

func assertCommandsEqual(t *testing.T, want, got *Command) {
	t.Helper()
	if got.Node != want.Node || got.Epoch != want.Epoch || got.Seq != want.Seq {
		t.Fatalf("header mismatch: got %d/%d/%d want %d/%d/%d",
			got.Node, got.Epoch, got.Seq, want.Node, want.Epoch, want.Seq)
	}
	if len(got.Recs) != len(want.Recs) {
		t.Fatalf("rec count %d, want %d", len(got.Recs), len(want.Recs))
	}
	for i := range want.Recs {
		if got.Recs[i] != want.Recs[i] {
			t.Fatalf("rec %d = %+v, want %+v", i, got.Recs[i], want.Recs[i])
		}
	}
}

func TestCommandRoundTrip(t *testing.T) {
	in := sampleCommand()
	buf := mustEncodeCommand(t, in)
	var out Command
	if err := DecodeCommand(buf, &out); err != nil {
		t.Fatalf("DecodeCommand: %v", err)
	}
	assertCommandsEqual(t, in, &out)
}

func TestCommandRoundTripEmpty(t *testing.T) {
	// A record-less command is legal on the wire (a pure sequence-number
	// placeholder); the controller never sends one but the codec must
	// not treat it specially.
	in := &Command{Node: 1, Epoch: 1, Seq: 1}
	buf := mustEncodeCommand(t, in)
	if len(buf) != CommandHeaderSize {
		t.Fatalf("empty command = %d bytes, want %d", len(buf), CommandHeaderSize)
	}
	var out Command
	out.Recs = append(out.Recs, CmdRec{Op: CmdRestart}) // prove reuse truncates
	if err := DecodeCommand(buf, &out); err != nil {
		t.Fatalf("DecodeCommand: %v", err)
	}
	assertCommandsEqual(t, in, &out)
}

// TestCommandDecodeTruncated chops the encoded command at every length;
// each prefix must fail cleanly.
func TestCommandDecodeTruncated(t *testing.T) {
	buf := mustEncodeCommand(t, sampleCommand())
	var c Command
	for cut := 0; cut < len(buf); cut++ {
		if err := DecodeCommand(buf[:cut], &c); err == nil {
			t.Fatalf("decode of %d-byte prefix (of %d) succeeded", cut, len(buf))
		}
	}
}

func TestCommandDecodeHeaderErrors(t *testing.T) {
	base := mustEncodeCommand(t, sampleCommand())
	mut := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), base...)
		mutate(b)
		return b
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"magic", mut(func(b []byte) { b[0] = 0 }), ErrMagic},
		{"version", mut(func(b []byte) { b[2] = 2 }), ErrVersion},
		// A heartbeat frame handed to the command decoder is a kind
		// error, and vice versa (see TestDecodeHeaderErrors).
		{"kind-heartbeat", mut(func(b []byte) { b[3] = KindHeartbeat }), ErrKind},
		{"kind-unknown", mut(func(b []byte) { b[3] = 9 }), ErrKind},
		{"zero-epoch", mut(func(b []byte) { binary.LittleEndian.PutUint64(b[8:16], 0) }), ErrRange},
		{"zero-seq", mut(func(b []byte) { binary.LittleEndian.PutUint64(b[16:24], 0) }), ErrRange},
		{"trailing", append(append([]byte(nil), base...), 0x00), ErrTrailing},
		{"count-beyond-payload", mut(func(b []byte) { binary.LittleEndian.PutUint16(b[24:26], 0xFFFF) }), nil},
		{"oversize", make([]byte, MaxFrameSize+1), ErrTooLarge},
	}
	var c Command
	for _, tc := range cases {
		err := DecodeCommand(tc.buf, &c)
		if err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestCommandDecodeRangeErrors(t *testing.T) {
	header := func(nRecs int) []byte {
		b := make([]byte, CommandHeaderSize)
		binary.LittleEndian.PutUint16(b[0:2], Magic)
		b[2] = Version
		b[3] = KindCommand
		binary.LittleEndian.PutUint32(b[4:8], 1)
		binary.LittleEndian.PutUint64(b[8:16], 1)
		binary.LittleEndian.PutUint64(b[16:24], 1)
		binary.LittleEndian.PutUint16(b[24:26], uint16(nRecs))
		return b
	}
	var c Command

	// Opcode zero and beyond the defined range.
	for _, op := range []uint64{0, cmdOpMax + 1} {
		b := header(1)
		b = binary.AppendUvarint(b, op)
		b = binary.AppendUvarint(b, 1)
		if err := DecodeCommand(b, &c); !errors.Is(err, ErrRange) {
			t.Errorf("op %d: err = %v, want ErrRange", op, err)
		}
	}

	// Runnable beyond the node-target sentinel.
	b := header(1)
	b = binary.AppendUvarint(b, uint64(CmdQuarantine))
	b = binary.AppendUvarint(b, uint64(CmdNodeTarget)+1)
	if err := DecodeCommand(b, &c); !errors.Is(err, ErrRange) {
		t.Errorf("oversized runnable: err = %v, want ErrRange", err)
	}

	// Hypothesis parameter beyond uint32.
	b = header(1)
	b = binary.AppendUvarint(b, uint64(CmdSetHypothesis))
	b = binary.AppendUvarint(b, 1)
	b = binary.AppendUvarint(b, 1<<33)
	b = binary.AppendUvarint(b, 1)
	b = binary.AppendUvarint(b, 0)
	b = binary.AppendUvarint(b, 0)
	if err := DecodeCommand(b, &c); !errors.Is(err, ErrRange) {
		t.Errorf("oversized hypothesis param: err = %v, want ErrRange", err)
	}

	// SetHypothesis with its parameters missing is truncated.
	b = header(1)
	b = binary.AppendUvarint(b, uint64(CmdSetHypothesis))
	b = binary.AppendUvarint(b, 1)
	if err := DecodeCommand(b, &c); !errors.Is(err, ErrTruncated) {
		t.Errorf("hypothesis params missing: err = %v, want ErrTruncated", err)
	}
}

func TestCommandEncodeValidation(t *testing.T) {
	for i, cmd := range []*Command{
		{Node: 1, Epoch: 0, Seq: 1},
		{Node: 1, Epoch: 1, Seq: 0},
		{Node: 1, Epoch: 1, Seq: 1, Recs: []CmdRec{{Op: 0, Runnable: 1}}},
		{Node: 1, Epoch: 1, Seq: 1, Recs: []CmdRec{{Op: CmdOp(cmdOpMax + 1), Runnable: 1}}},
		{Node: 1, Epoch: 1, Seq: 1, Recs: []CmdRec{{Op: CmdQuarantine, Runnable: CmdNodeTarget + 1}}},
	} {
		out, err := AppendCommand(nil, cmd)
		if !errors.Is(err, ErrRange) {
			t.Errorf("case %d: err = %v, want ErrRange", i, err)
		}
		if len(out) != 0 {
			t.Errorf("case %d: AppendCommand returned %d bytes alongside error", i, len(out))
		}
	}
}

// TestCommandDecodeReuseZeroAlloc pins the reporter-side cost contract:
// decoding into a retained Command allocates nothing, same as the
// server's heartbeat decode.
func TestCommandDecodeReuseZeroAlloc(t *testing.T) {
	buf := mustEncodeCommand(t, sampleCommand())
	var c Command
	if err := DecodeCommand(buf, &c); err != nil { // warm the slice
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeCommand(buf, &c); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeCommand allocates %.1f/op, want 0", allocs)
	}
}

// FuzzCommandRoundTrip mirrors FuzzWireRoundTrip for the command kind:
// DecodeCommand never panics, and whatever it accepts re-encodes to the
// same value.
func FuzzCommandRoundTrip(f *testing.F) {
	f.Add(mustEncodeCommand(f, sampleCommand()))
	f.Add(mustEncodeCommand(f, &Command{Node: 1, Epoch: 1, Seq: 1}))
	f.Add([]byte{})
	f.Add(make([]byte, CommandHeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Command
		if err := DecodeCommand(data, &c); err != nil {
			return
		}
		out, err := AppendCommand(nil, &c)
		if err != nil {
			t.Fatalf("re-encode of decoded command failed: %v", err)
		}
		var c2 Command
		if err := DecodeCommand(out, &c2); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		assertCommandsEqual(t, &c, &c2)
	})
}

// FuzzCommandRandomFrames drives the generator side with pseudo-random
// valid commands.
func FuzzCommandRandomFrames(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, nRecs uint8) {
		rng := rand.New(rand.NewSource(seed))
		in := &Command{
			Node:  rng.Uint32(),
			Epoch: rng.Uint64()>>1 + 1,
			Seq:   rng.Uint64()>>1 + 1,
		}
		for i := 0; i < int(nRecs); i++ {
			rec := CmdRec{
				Op:       CmdOp(rng.Intn(int(cmdOpMax)) + 1),
				Runnable: uint32(rng.Intn(int(CmdNodeTarget) + 1)),
			}
			if rec.Op == CmdSetHypothesis {
				rec.Hyp = HypothesisParams{
					AlivenessCycles: rng.Uint32(),
					MinHeartbeats:   rng.Uint32(),
					ArrivalCycles:   rng.Uint32(),
					MaxArrivals:     rng.Uint32(),
				}
			}
			in.Recs = append(in.Recs, rec)
		}
		buf, err := AppendCommand(nil, in)
		if err != nil {
			t.Fatalf("AppendCommand: %v", err)
		}
		var out Command
		if err := DecodeCommand(buf, &out); err != nil {
			t.Fatalf("DecodeCommand: %v", err)
		}
		assertCommandsEqual(t, in, &out)
	})
}

// BenchmarkCommandDecode measures the reporter-side per-command decode
// cost (retained Command, reused slice). The benchdiff CI gate holds
// this to 0 allocs/op, same as the heartbeat decode.
func BenchmarkCommandDecode(b *testing.B) {
	buf := mustEncodeCommand(b, sampleCommand())
	var c Command
	if err := DecodeCommand(buf, &c); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeCommand(buf, &c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCommandEncode measures AppendCommand into a reused buffer.
func BenchmarkCommandEncode(b *testing.B) {
	c := sampleCommand()
	buf, err := AppendCommand(nil, c)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		if buf, err = AppendCommand(buf, c); err != nil {
			b.Fatal(err)
		}
	}
}
