package apps

import (
	"errors"
	"fmt"
	"math"
	"time"

	"swwd/internal/core"
	"swwd/internal/osek"
	"swwd/internal/runnable"
	"swwd/internal/vehicle"
)

// SafeLaneConfig parametrises the lane-departure-warning application.
type SafeLaneConfig struct {
	// Plant is the lateral vehicle model observed by the camera sensor.
	Plant *vehicle.Lateral
	// WarnMargin is how close (m) to the lane marking the warning fires;
	// zero means 0.3 m.
	WarnMargin float64
	// Period is the task dispatch period; zero means 20ms (camera rate).
	Period time.Duration
	// Priority is the OSEK task priority; zero means 8.
	Priority int
}

// SafeLane is the lane departure warning application: read the lane
// position, detect impending departure, drive the warning actuator.
type SafeLane struct {
	cfg SafeLaneConfig

	App             runnable.AppID
	Task            runnable.TaskID
	GetLanePosition runnable.ID
	LaneDetect      runnable.ID
	WarnActuate     runnable.ID

	// FaultBranch is the injection seam (Branch* constants).
	FaultBranch int
	// FilterIterations is how many times the LaneDetect filter pass runs
	// per activation (nominally 1). It is the paper's loop-counter
	// injection seam (§4.5 "manipulation of loop counters"): 0 starves
	// the runnable's heartbeats, large values dispatch it excessively.
	FilterIterations int

	offset   float64
	warning  bool
	warnings uint64
}

// NewSafeLane validates the configuration and registers the application.
func NewSafeLane(m *runnable.Model, cfg SafeLaneConfig) (*SafeLane, error) {
	if m == nil {
		return nil, errors.New("apps: model is required")
	}
	if cfg.Plant == nil {
		return nil, errors.New("apps: SafeLane requires Plant")
	}
	if cfg.WarnMargin <= 0 {
		cfg.WarnMargin = 0.3
	}
	if cfg.Period <= 0 {
		cfg.Period = 20 * time.Millisecond
	}
	if cfg.Priority == 0 {
		cfg.Priority = 8
	}
	s := &SafeLane{cfg: cfg, FilterIterations: 1}
	var err error
	if s.App, err = m.AddApp("SafeLane", runnable.SafetyRelevant); err != nil {
		return nil, fmt.Errorf("apps: SafeLane: %w", err)
	}
	if s.Task, err = m.AddTask(s.App, "SafeLaneTask", cfg.Priority); err != nil {
		return nil, fmt.Errorf("apps: SafeLane: %w", err)
	}
	type reg struct {
		name string
		exec time.Duration
		dst  *runnable.ID
	}
	for _, r := range []reg{
		{"GetLanePosition", 300 * time.Microsecond, &s.GetLanePosition},
		{"LaneDetect", 500 * time.Microsecond, &s.LaneDetect},
		{"WarnActuate", 100 * time.Microsecond, &s.WarnActuate},
	} {
		if *r.dst, err = m.AddRunnable(s.Task, r.name, r.exec, runnable.SafetyRelevant); err != nil {
			return nil, fmt.Errorf("apps: SafeLane: %w", err)
		}
	}
	return s, nil
}

// Period reports the task dispatch period.
func (s *SafeLane) Period() time.Duration { return s.cfg.Period }

// FlowSequence reports the legal runnable order.
func (s *SafeLane) FlowSequence() []runnable.ID {
	return []runnable.ID{s.GetLanePosition, s.LaneDetect, s.WarnActuate}
}

// Hypothesis mirrors SafeSpeed's construction at this task's period.
func (s *SafeLane) Hypothesis(cyclePeriod time.Duration) map[runnable.ID]core.Hypothesis {
	cyclesPerTask := int(s.cfg.Period / cyclePeriod)
	if cyclesPerTask < 1 {
		cyclesPerTask = 1
	}
	window := 5 * cyclesPerTask
	h := core.Hypothesis{
		AlivenessCycles: window,
		MinHeartbeats:   3,
		ArrivalCycles:   window,
		MaxArrivals:     7,
	}
	out := make(map[runnable.ID]core.Hypothesis, 3)
	for _, rid := range s.FlowSequence() {
		out[rid] = h
	}
	return out
}

// Program builds the OSEK task body. The LaneDetect filter pass is a
// Loop whose count is read at run time — the loop-counter injection seam.
func (s *SafeLane) Program() osek.Program {
	detect := osek.Program{osek.Loop{
		Count: func() int { return s.FilterIterations },
		Body:  osek.Program{osek.Exec{Runnable: s.LaneDetect, OnDone: s.detect}},
	}}
	return osek.Program{
		osek.Exec{Runnable: s.GetLanePosition, OnDone: s.readPosition},
		osek.Select{
			Choose: func() int { return s.FaultBranch },
			Arms: []osek.Program{
				detect,
				{},
				append(append(osek.Program{}, detect...), detect...),
			},
		},
		osek.Exec{Runnable: s.WarnActuate, OnDone: s.actuate},
	}
}

// Register defines the task and its dispatch alarm.
func (s *SafeLane) Register(o *osek.OS) (osek.AlarmID, error) {
	if err := o.DefineTask(s.Task, osek.TaskAttrs{MaxActivations: 3}, s.Program()); err != nil {
		return -1, fmt.Errorf("apps: SafeLane: %w", err)
	}
	alarm, err := o.CreateAlarm("SafeLaneAlarm", osek.ActivateAlarm(s.Task), true, s.cfg.Period, s.cfg.Period)
	if err != nil {
		return -1, fmt.Errorf("apps: SafeLane: %w", err)
	}
	return alarm, nil
}

func (s *SafeLane) readPosition() { s.offset = s.cfg.Plant.Offset() }

func (s *SafeLane) detect() {
	limit := vehicle.DefaultLateralParams().LaneHalfWidth - s.cfg.WarnMargin
	s.warning = math.Abs(s.offset) >= limit
}

func (s *SafeLane) actuate() {
	if s.warning {
		s.warnings++
	}
}

// Warning reports whether the departure warning is active.
func (s *SafeLane) Warning() bool { return s.warning }

// Warnings reports the cumulative number of warning actuations.
func (s *SafeLane) Warnings() uint64 { return s.warnings }
