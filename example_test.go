package swwd_test

import (
	"fmt"
	"strings"
	"time"

	"swwd"
)

// Example shows the minimal monitored system: one runnable with an
// aliveness hypothesis, driven by a manual sequence of heartbeats and
// cycles (a live deployment would use swwd.Service instead of calling
// Cycle directly).
func Example() {
	model := swwd.NewModel()
	app, _ := model.AddApp("demo", swwd.SafetyCritical)
	task, _ := model.AddTask(app, "demoTask", 1)
	worker, _ := model.AddRunnable(task, "worker", time.Millisecond, swwd.SafetyCritical)
	if err := model.Freeze(); err != nil {
		fmt.Println(err)
		return
	}
	w, _ := swwd.New(model)
	_ = w.SetHypothesis(worker, swwd.Hypothesis{AlivenessCycles: 2, MinHeartbeats: 1})
	_ = w.Activate(worker)

	// Healthy: a heartbeat inside every 2-cycle window.
	w.Heartbeat(worker)
	w.Cycle()
	w.Cycle()
	// Silent: the next window expires without a heartbeat.
	w.Cycle()
	w.Cycle()

	fmt.Printf("aliveness errors: %d\n", w.Results().Aliveness)
	// Output: aliveness errors: 1
}

// ExampleWatchdog_AddFlowSequence shows program flow checking: the
// look-up table allows producer→consumer (and the wrap-around), so a
// repeated producer is flagged.
func ExampleWatchdog_AddFlowSequence() {
	model := swwd.NewModel()
	app, _ := model.AddApp("pipeline", swwd.SafetyCritical)
	task, _ := model.AddTask(app, "t", 1)
	producer, _ := model.AddRunnable(task, "producer", time.Millisecond, swwd.SafetyCritical)
	consumer, _ := model.AddRunnable(task, "consumer", time.Millisecond, swwd.SafetyCritical)
	_ = model.Freeze()
	w, _ := swwd.New(model)
	_ = w.AddFlowSequence(producer, consumer)

	w.Heartbeat(producer)
	w.Heartbeat(consumer) // legal
	w.Heartbeat(producer) // legal wrap-around
	w.Heartbeat(producer) // illegal: producer after producer

	fmt.Printf("flow errors: %d\n", w.Results().ProgramFlow)
	// Output: flow errors: 1
}

// ExampleLoadSpec builds a monitored system from its JSON description.
func ExampleLoadSpec() {
	const spec = `{
	  "apps": [{
	    "name": "app", "criticality": "safety-critical",
	    "tasks": [{
	      "name": "task", "priority": 1, "flow": true,
	      "runnables": [
	        {"name": "read",  "exec_time": "100us"},
	        {"name": "write", "exec_time": "100us"}
	      ]
	    }]
	  }]
	}`
	parsed, err := swwd.LoadSpec(strings.NewReader(spec))
	if err != nil {
		fmt.Println(err)
		return
	}
	sys, err := parsed.Build(nil, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	sys.Heartbeat("read")
	sys.Heartbeat("read") // breaks the declared read→write flow
	fmt.Printf("flow errors: %d\n", sys.Watchdog.Results().ProgramFlow)
	// Output: flow errors: 1
}

// ExampleCalibrator derives a fault hypothesis from observation instead of
// hand-estimating arrival rates: observe a healthy phase, then Suggest.
func ExampleCalibrator() {
	model := swwd.NewModel()
	app, _ := model.AddApp("app", swwd.SafetyCritical)
	task, _ := model.AddTask(app, "task", 1)
	worker, _ := model.AddRunnable(task, "worker", time.Millisecond, swwd.SafetyCritical)
	_ = model.Freeze()

	cal, _ := swwd.NewCalibrator(model, 10)
	for window := 0; window < 4; window++ {
		for beat := 0; beat < 5; beat++ {
			cal.Heartbeat(worker)
		}
		for cycle := 0; cycle < 10; cycle++ {
			cal.Cycle()
		}
	}
	h, _ := cal.Suggest(worker, 0.3)
	fmt.Printf("min %d, max %d per %d cycles\n", h.MinHeartbeats, h.MaxArrivals, h.AlivenessCycles)
	// Output: min 3, max 7 per 10 cycles
}
