package experiments

import (
	"fmt"
	"time"

	"swwd/internal/hil"
	"swwd/internal/inject"
	"swwd/internal/sim"
)

// HWWDResult compares the two watchdog layers on two fault classes (X2,
// the §2 division of labour): a runnable-level invalid branch and a
// whole-CPU monopolisation.
type HWWDResult struct {
	// Runnable-level fault (invalid branch).
	BranchHWExpiries uint64
	BranchSWFlow     uint64
	// CPU monopolisation.
	HogHWExpiries uint64
	HogResets     int
	HogRecovered  bool
}

// HardwareWatchdog runs X2: each fault class on a fresh validator with
// the hardware watchdog layer enabled.
func HardwareWatchdog() (*HWWDResult, error) {
	res := &HWWDResult{}

	// Case 1: invalid branch — only the Software Watchdog sees it.
	v, err := hil.New(hil.Options{WithHardwareWatchdog: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: hwwd: %w", err)
	}
	branch := &inject.FlagFault{
		Label: "invalid-branch",
		Set:   func() { v.SafeSpeed.FaultBranch = 1 },
	}
	v.Injector.ApplyAt(2*sim.Second, branch)
	if err := v.Run(8 * time.Second); err != nil {
		return nil, fmt.Errorf("experiments: hwwd: %w", err)
	}
	res.BranchHWExpiries = v.HWWatchdog.Expiries()
	res.BranchSWFlow = v.Watchdog.Results().ProgramFlow

	// Case 2: CPU monopolisation — the hardware watchdog fires and resets.
	v2, err := hil.New(hil.Options{WithHardwareWatchdog: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: hwwd: %w", err)
	}
	hog := &inject.ExecStretch{OS: v2.OS, Runnable: v2.SteerByWire.Vote, Scale: 10000}
	if err := v2.Injector.Window(2*sim.Second, 4*sim.Second, hog); err != nil {
		return nil, fmt.Errorf("experiments: hwwd: %w", err)
	}
	if err := v2.Run(10 * time.Second); err != nil {
		return nil, fmt.Errorf("experiments: hwwd: %w", err)
	}
	res.HogHWExpiries = v2.HWWatchdog.Expiries()
	res.HogResets = v2.OS.ResetCount()
	// Recovered: control executing again after the window.
	before := v2.SafeSpeed.ControlExecutions()
	if err := v2.Run(time.Second); err != nil {
		return nil, fmt.Errorf("experiments: hwwd: %w", err)
	}
	res.HogRecovered = v2.SafeSpeed.ControlExecutions() > before
	return res, nil
}
