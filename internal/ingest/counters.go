// Name-indexed access to the Stats counters: the test hook the chaos
// campaign engine (internal/chaos) builds its oracles on. An oracle
// asserts *exactly which* ingestion counters a fault campaign moved —
// "a duplication storm moves duplicate_drops and nothing else" — and
// doing that by field would couple every campaign to the Stats struct
// shape. The string names double as the stable vocabulary campaigns
// are written and reported in; they mirror the swwd_ingest_* metric
// families of internal/export with the prefix and _total suffix
// stripped.
package ingest

// CounterNames lists every name Stats.Counter resolves, in the Stats
// declaration order. Gauges (nodes, listeners) are excluded: oracles
// reason about campaign-window deltas, and differencing a gauge is
// meaningless.
func CounterNames() []string {
	return []string{
		"frames",
		"bytes",
		"accepted",
		"decode_errors",
		"unknown_node",
		"seq_gaps",
		"seq_gap_events",
		"duplicate_drops",
		"node_restarts",
		"stale_epoch_drops",
		"interval_mismatch",
		"dropped_packets",
		"buffers_exhausted",
		"read_errors",
		"commands_sent",
		"commands_acked",
		"commands_dropped",
		"command_stale_acks",
	}
}

// Counter resolves one counter by name. The second result reports
// whether the name is known; asking for an unknown name is a campaign
// authoring bug the caller should surface, never a zero.
func (s Stats) Counter(name string) (uint64, bool) {
	switch name {
	case "frames":
		return s.Frames, true
	case "bytes":
		return s.Bytes, true
	case "accepted":
		return s.Accepted, true
	case "decode_errors":
		return s.DecodeErrors, true
	case "unknown_node":
		return s.UnknownNode, true
	case "seq_gaps":
		return s.SeqGaps, true
	case "seq_gap_events":
		return s.SeqGapEvents, true
	case "duplicate_drops":
		return s.DuplicateDrops, true
	case "node_restarts":
		return s.NodeRestarts, true
	case "stale_epoch_drops":
		return s.StaleEpochDrops, true
	case "interval_mismatch":
		return s.IntervalMismatch, true
	case "dropped_packets":
		return s.DroppedPackets, true
	case "buffers_exhausted":
		return s.BuffersExhausted, true
	case "read_errors":
		return s.ReadErrors, true
	case "commands_sent":
		return s.CommandsSent, true
	case "commands_acked":
		return s.CommandsAcked, true
	case "commands_dropped":
		return s.CommandsDropped, true
	case "command_stale_acks":
		return s.CommandStaleAcks, true
	}
	return 0, false
}
